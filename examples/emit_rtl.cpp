// Emit the synthesisable Verilog for a configured Winograd engine — the
// full path from the paper's schematics to RTL: Cook-Toom transform
// generation -> CSE'd straight-line program -> fixed-point netlist ->
// Verilog (shared data transform + PE array, Figs 4/5/7).
//
// Usage: ./examples/emit_rtl [m] [pes] [out.v]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "rtl/verilog.hpp"

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t pes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  const std::string path = argc > 3 ? argv[3] : "winograd_engine.v";

  wino::hw::EngineConfig cfg;
  cfg.m = m;
  cfg.r = 3;
  cfg.parallel_pes = pes;

  const wino::rtl::FixedFormat fmt{24, 10, 12};
  const std::string verilog = wino::rtl::emit_engine(cfg, fmt);

  std::ofstream out(path);
  out << verilog;
  out.close();

  // Companion self-checking testbench for the shared data transform,
  // with expectations baked in from the bit-exact netlist evaluator.
  const auto& transforms = wino::winograd::transforms(m, 3);
  const auto data_prog =
      wino::winograd::LinearProgram::from_matrix(transforms.bt, true);
  const auto data_netlist =
      wino::rtl::Netlist::from_program(data_prog, fmt);
  const std::string tb_path = path + ".tb.v";
  std::ofstream tb(tb_path);
  tb << wino::rtl::emit_transform_module("data_transform_1d", data_netlist);
  tb << "\n"
     << wino::rtl::emit_transform_testbench("data_transform_1d",
                                            data_netlist, 32);
  tb.close();
  std::printf("wrote %s (self-checking testbench)\n", tb_path.c_str());

  // Resource summary from the lowered netlists, for a quick sanity check
  // against the fpga estimator's LUT accounting.
  const auto& t = wino::winograd::transforms(m, 3);
  const auto data = wino::winograd::LinearProgram::from_matrix(t.bt, true);
  const auto inv = wino::winograd::LinearProgram::from_matrix(t.at, true);
  const auto dn = wino::rtl::Netlist::from_program(data, fmt).summary();
  const auto in = wino::rtl::Netlist::from_program(inv, fmt).summary();

  std::printf("wrote %s (%zu bytes)\n", path.c_str(), verilog.size());
  std::printf("F(%dx%d,3x3), %zu PEs, fixed point Q%d.%d\n", m, m, pes,
              fmt.width, fmt.frac_bits);
  std::printf("1-D data transform: %zu adders, %zu shifters, %zu constant "
              "multipliers (x%d instances in the shared 2-D block)\n",
              dn.adders, dn.shifters, dn.multipliers, 2 * t.tile());
  std::printf("1-D inverse transform: %zu adders, %zu shifters, %zu constant "
              "multipliers (x%d instances per PE)\n",
              in.adders, in.shifters, in.multipliers, t.tile() + m);
  std::printf("element-wise stage: %d multipliers per PE\n",
              t.tile() * t.tile());
  return 0;
}
