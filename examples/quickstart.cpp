// Quickstart: the library in ~60 lines.
//
//  1. Generate a Winograd minimal filtering algorithm F(4x4, 3x3).
//  2. Convolve a random feature map with it and check against direct
//     (spatial) convolution.
//  3. Ask the DSE models what that algorithm buys on VGG16-D.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "common/random.hpp"
#include "conv/spatial.hpp"
#include "dse/complexity.hpp"
#include "dse/performance.hpp"
#include "nn/network.hpp"
#include "winograd/cook_toom.hpp"
#include "winograd/kernels.hpp"

int main() {
  // --- 1. Transforms -----------------------------------------------------
  const auto& f43 = wino::winograd::transforms(4, 3);
  std::printf("F(4x4, 3x3): tile %dx%d, %d multiplies per 1-D application\n",
              f43.tile(), f43.tile(), f43.tile());
  std::printf("interpolation points:");
  for (const auto& p : f43.points) std::printf(" %s", p.to_string().c_str());
  std::printf("\n\n");

  // --- 2. Convolve and verify -------------------------------------------
  wino::common::Rng rng;
  wino::tensor::Tensor4f image(1, 8, 32, 32);
  wino::tensor::Tensor4f kernels(16, 8, 3, 3);
  rng.fill_uniform(image.flat());
  rng.fill_uniform(kernels.flat());

  wino::winograd::WinogradConvOptions opt;
  opt.pad = 1;
  const auto fast = wino::winograd::conv2d_winograd(image, kernels, 4, opt);
  const auto ref = wino::conv::conv2d_spatial(image, kernels,
                                              {.pad = 1, .stride = 1});
  const float err = wino::tensor::max_abs_diff(fast, ref);
  std::printf("32x32x8 -> 16 kernels: max |winograd - spatial| = %.2e\n\n",
              static_cast<double>(err));

  // --- 3. What does it buy? ----------------------------------------------
  const auto& vgg = wino::nn::vgg16_d();
  const auto spatial = wino::dse::mult_complexity(vgg, 1);
  const auto wino4 = wino::dse::mult_complexity(vgg, 4);
  std::printf("VGG16-D multiplications: spatial %.2fG, F(4x4,3x3) %.2fG "
              "(%.2fx fewer)\n",
              static_cast<double>(spatial) / 1e9,
              static_cast<double>(wino4) / 1e9,
              static_cast<double>(spatial) / static_cast<double>(wino4));

  const auto alloc = wino::dse::allocate_pes(4, 3, 700);
  const wino::dse::ClockModel clk{200e6, 12};
  std::printf("On a 700-multiplier FPGA at 200 MHz: %zu PEs, %.2f ms, "
              "%.0f GOPS\n",
              alloc.parallel_pes,
              wino::dse::workload_latency_s(vgg, 4, alloc.parallel_pes, clk) *
                  1e3,
              wino::dse::throughput_ops(vgg, 4, alloc.parallel_pes, clk) /
                  1e9);
  return 0;
}
