// Serving a scaled VGG16-D with the dynamic-batching InferenceServer.
//
// Four client threads fire single-image requests at one server; the
// batcher coalesces them into batches of up to 8, the batch-parallel
// forward pass executes them on the global ThreadPool, and the cross-call
// transformed-kernel cache means the Winograd filter transforms are paid
// once for the whole traffic stream. The example finishes by cross-checking
// one served output against direct nn::forward — bit-identical by the
// library's determinism contract.
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/forward.hpp"
#include "nn/plan.hpp"
#include "serve/inference_server.hpp"
#include "tensor/tensor.hpp"

using wino::tensor::Tensor4f;

// Usage: ./examples/serve_vgg16 [algo]
//   algo  convolution algorithm for the served session, parsed by
//         nn::parse_conv_algo (e.g. "w4", "im2col"); the special name
//         "planned" registers the session through the cost-model planner
//         (per-layer mixed algorithms). Default: winograd2.
int main(int argc, char** argv) {
  const auto layers = wino::nn::vgg16_d_scaled(7, 8);  // 32x32 input
  auto weights = wino::nn::random_weights(layers, 42);

  const std::string algo_name = argc > 1 ? argv[1] : "w2";
  wino::nn::ExecutionPlan plan;
  try {
    plan = algo_name == "planned"
               ? wino::nn::plan_execution(layers)
               : wino::nn::uniform_plan(
                     layers, wino::nn::parse_conv_algo(algo_name));
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  wino::serve::ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 2000;
  cfg.max_inflight = 128;
  cfg.backpressure = wino::serve::BackpressurePolicy::kBlock;

  wino::serve::InferenceServer server(cfg);
  const auto vgg = server.add_model("vgg16-d/7", plan, weights);
  std::printf("session plan (%s):\n%s\n",
              plan.uniform() ? "uniform" : "mixed",
              server.model_plan(vgg).to_string().c_str());

  // Four clients, 16 requests each, submitted concurrently.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 16;
  std::vector<Tensor4f> inputs;
  std::vector<std::future<Tensor4f>> futures(kClients * kPerClient);
  wino::common::Rng rng(7);
  for (std::size_t i = 0; i < kClients * kPerClient; ++i) {
    Tensor4f img(1, 3, 32, 32);
    rng.fill_uniform(img.flat(), -1.0F, 1.0F);
    inputs.push_back(std::move(img));
  }

  {
    std::vector<std::jthread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = 0; i < kPerClient; ++i) {
          const std::size_t idx = c * kPerClient + i;
          futures[idx] = server.submit(vgg, inputs[idx]);
        }
      });
    }
  }

  std::vector<Tensor4f> outputs;
  for (auto& f : futures) outputs.push_back(f.get());
  server.drain();

  const auto stats = server.stats();
  wino::common::TextTable table;
  table.header({"metric", "value"});
  table.row({"requests completed", std::to_string(stats.completed)});
  table.row({"batches dispatched", std::to_string(stats.batches)});
  table.row({"mean batch size",
             wino::common::TextTable::num(stats.mean_batch_size)});
  table.row({"p50 latency (us)",
             wino::common::TextTable::num(stats.p50_latency_us)});
  table.row({"p99 latency (us)",
             wino::common::TextTable::num(stats.p99_latency_us)});
  table.row({"throughput (req/s)",
             wino::common::TextTable::num(stats.throughput_rps)});
  table.print();

  std::printf("\nbatch-size histogram:");
  for (std::size_t s = 1; s < stats.batch_size_histogram.size(); ++s) {
    if (stats.batch_size_histogram[s] != 0) {
      std::printf("  size %zu x%llu", s,
                  static_cast<unsigned long long>(
                      stats.batch_size_histogram[s]));
    }
  }
  const auto cache = wino::nn::transform_cache_stats();
  std::printf("\ntransform cache: %llu hits, %llu misses, %llu entries\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.entries));

  // Served output == direct forward of the same plan, bit for bit.
  const Tensor4f direct =
      wino::nn::forward(server.model_plan(vgg), weights, inputs[0]);
  const bool identical =
      direct.shape() == outputs[0].shape() &&
      std::memcmp(direct.flat().data(), outputs[0].flat().data(),
                  direct.size() * sizeof(float)) == 0;
  std::printf("served output vs direct forward: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  server.shutdown();
  return identical ? 0 : 1;
}
