// End-to-end CNN inference with swappable convolution engines.
//
// Runs a spatially scaled VGG16-D (same layer structure and channel
// progression as the paper's workload, reduced resolution/channels so it
// finishes in seconds) with every convolution algorithm in the library,
// verifying that the logits agree and reporting wall-clock time per
// algorithm — the software analogue of the paper's engine comparison.
//
// Usage: ./examples/vgg16_inference [scale] [channel_div] [threads] [algo]
//   scale       divides the 224x224 input (default 7 -> 32x32)
//   channel_div divides the channel counts (default 8)
//   threads     runtime thread-pool size (default: WINO_THREADS or cores)
//   algo        run only this algorithm against the spatial reference
//               (nn::parse_conv_algo names, e.g. "w4"); default: all, plus
//               the cost-model planner's per-layer mix.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/forward.hpp"
#include "nn/plan.hpp"
#include "runtime/thread_pool.hpp"

int main(int argc, char** argv) {
  const std::size_t scale =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 7;
  const std::size_t channel_div =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  if (argc > 3) {
    const int threads = std::atoi(argv[3]);
    if (threads < 1) {
      std::fprintf(stderr, "threads must be a positive integer, got '%s'\n",
                   argv[3]);
      return 1;
    }
    wino::runtime::ThreadPool::set_global_threads(
        static_cast<std::size_t>(threads));
  }
  std::optional<wino::nn::ConvAlgo> only;
  if (argc > 4) {
    try {
      only = wino::nn::parse_conv_algo(argv[4]);
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "%s\n", err.what());
      return 1;
    }
  }

  const auto layers = wino::nn::vgg16_d_scaled(scale, channel_div);
  const auto weights = wino::nn::random_weights(layers, 42);

  wino::tensor::Tensor4f input(1, 3, 224 / scale, 224 / scale);
  wino::common::Rng rng(7);
  rng.fill_uniform(input.flat());

  std::printf("VGG16-D (scaled 1/%zu, channels 1/%zu): input %zux%zu, "
              "%zu layers, %zu threads\n\n",
              scale, channel_div, input.shape().h, input.shape().w,
              layers.size(), wino::runtime::ThreadPool::global().threads());

  using Clock = std::chrono::steady_clock;
  const auto run = [&](wino::nn::ConvAlgo algo) {
    const auto t0 = Clock::now();
    auto out = wino::nn::forward(layers, weights, input, algo);
    const auto dt = std::chrono::duration<double, std::milli>(
        Clock::now() - t0);
    return std::pair{std::move(out), dt.count()};
  };

  const auto [ref, ref_ms] = run(wino::nn::ConvAlgo::kSpatial);
  const float ref_scale = std::max(1.0F, wino::tensor::max_abs(ref));

  wino::common::TextTable t;
  t.header({"Algorithm", "time (ms)", "speedup", "max rel err vs spatial"});
  t.row({"spatial", wino::common::TextTable::num(ref_ms, 1), "1.00", "-"});
  std::vector<wino::nn::ConvAlgo> algos;
  if (only) {
    algos = {*only};
  } else {
    algos = {wino::nn::ConvAlgo::kIm2col, wino::nn::ConvAlgo::kFft,
             wino::nn::ConvAlgo::kWinograd2, wino::nn::ConvAlgo::kWinograd3,
             wino::nn::ConvAlgo::kWinograd4};
  }
  for (const auto algo : algos) {
    const auto [out, ms] = run(algo);
    const float err = wino::tensor::max_abs_diff(out, ref) / ref_scale;
    t.row({wino::nn::to_string(algo), wino::common::TextTable::num(ms, 1),
           wino::common::TextTable::num(ref_ms / ms, 2),
           wino::common::TextTable::num(static_cast<double>(err), 7)});
  }
  if (!only) {
    // The execution planner's per-layer mix (measured microbenchmark
    // scoring; probes are cached per process).
    const auto plan = wino::nn::plan_execution(layers);
    const auto t0 = Clock::now();
    const auto out = wino::nn::forward(plan, weights, input);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const float err = wino::tensor::max_abs_diff(out, ref) / ref_scale;
    t.row({plan.uniform() ? "planned (uniform)" : "planned (mixed)",
           wino::common::TextTable::num(ms, 1),
           wino::common::TextTable::num(ref_ms / ms, 2),
           wino::common::TextTable::num(static_cast<double>(err), 7)});
  }
  t.print();

  // Top prediction, to show the classifier head end to end.
  std::size_t best = 0;
  for (std::size_t i = 1; i < ref.shape().c; ++i) {
    if (ref(0, i, 0, 0) > ref(0, best, 0, 0)) best = i;
  }
  std::printf("\nargmax logit: class %zu (%.4f) — identical across "
              "algorithms by the error bound above\n",
              best, static_cast<double>(ref(0, best, 0, 0)));
  return 0;
}
