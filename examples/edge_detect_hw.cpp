// Image filtering on the simulated accelerator.
//
// Drives the cycle-level Winograd engine (src/hw) with a classic filter
// bank — Sobel-x, Sobel-y, Laplacian, Gaussian blur — over a synthetic
// image, writes the results as PGM files, and reports the cycle counts the
// engine took, comparing against the paper's Eq 9. This is the
// "accelerator as a component" view: a host prepares kernels/tiles, the
// engine computes, statistics come back with the data.
//
// Usage: ./examples/edge_detect_hw [out_dir]
#include <cfloat>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "hw/winograd_engine.hpp"
#include "tensor/tensor.hpp"

namespace {

using wino::tensor::Tensor4f;

/// Synthetic test card: gradient background, bright circle, dark square.
Tensor4f make_test_image(std::size_t size) {
  Tensor4f img(1, 1, size, size);
  const auto s = static_cast<double>(size);
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      double v = 0.25 + 0.5 * static_cast<double>(x) / s;
      const double dx = static_cast<double>(x) - 0.35 * s;
      const double dy = static_cast<double>(y) - 0.4 * s;
      if (std::sqrt(dx * dx + dy * dy) < 0.18 * s) v = 0.95;
      if (x > 0.6 * s && x < 0.85 * s && y > 0.55 * s && y < 0.8 * s) {
        v = 0.05;
      }
      img(0, 0, y, x) = static_cast<float>(v);
    }
  }
  return img;
}

void write_pgm(const std::string& path, const Tensor4f& t, std::size_t k) {
  const auto& s = t.shape();
  float lo = FLT_MAX;
  float hi = -FLT_MAX;
  for (std::size_t y = 0; y < s.h; ++y) {
    for (std::size_t x = 0; x < s.w; ++x) {
      lo = std::min(lo, t(0, k, y, x));
      hi = std::max(hi, t(0, k, y, x));
    }
  }
  const float range = hi > lo ? hi - lo : 1.0F;
  std::ofstream out(path, std::ios::binary);
  out << "P5\n" << s.w << " " << s.h << "\n255\n";
  for (std::size_t y = 0; y < s.h; ++y) {
    for (std::size_t x = 0; x < s.w; ++x) {
      const float v = (t(0, k, y, x) - lo) / range;
      out.put(static_cast<char>(std::lround(255.0F * v)));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const Tensor4f image = make_test_image(128);

  // The filter bank: one engine pass applies all four kernels in parallel
  // PEs, exactly as the paper's engine applies P kernel tiles per cycle.
  Tensor4f kernels(4, 1, 3, 3);
  const float sobel_x[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  const float sobel_y[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
  const float laplace[9] = {0, 1, 0, 1, -4, 1, 0, 1, 0};
  const float gauss[9] = {1 / 16.0F, 2 / 16.0F, 1 / 16.0F,
                          2 / 16.0F, 4 / 16.0F, 2 / 16.0F,
                          1 / 16.0F, 2 / 16.0F, 1 / 16.0F};
  const float* banks[4] = {sobel_x, sobel_y, laplace, gauss};
  const char* names[4] = {"sobel_x", "sobel_y", "laplace", "gauss"};
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t i = 0; i < 9; ++i) {
      kernels(k, 0, i / 3, i % 3) = banks[k][i];
    }
  }

  wino::hw::EngineConfig cfg;
  cfg.m = 4;
  cfg.r = 3;
  cfg.parallel_pes = 4;  // one PE per filter
  const wino::hw::WinogradEngine engine(cfg);

  const auto result = engine.run_layer(image, kernels, /*pad=*/1);
  const auto& st = result.stats;

  std::printf("Winograd engine F(4x4,3x3), %zu PEs @ %.0f MHz\n",
              cfg.parallel_pes, cfg.frequency_hz / 1e6);
  std::printf("image 128x128, 4 filters in one pass:\n");
  std::printf("  tiles %-6llu issue cycles %-6llu pipeline fill %llu\n",
              static_cast<unsigned long long>(st.tiles),
              static_cast<unsigned long long>(st.issue_cycles),
              static_cast<unsigned long long>(st.pipeline_fill));
  std::printf("  total %llu cycles = %.1f us; Eq 9 predicts %.0f issue "
              "cycles\n",
              static_cast<unsigned long long>(st.total_cycles),
              st.latency_s(cfg.frequency_hz) * 1e6,
              128.0 * 128.0 * 1.0 * 4.0 / (16.0 * 4.0));
  std::printf("  PE utilisation %.0f%%, DRAM traffic %.1f KiB\n\n",
              100.0 * st.pe_utilization, st.dram_bytes / 1024.0);

  for (std::size_t k = 0; k < 4; ++k) {
    const std::string path = out_dir + "/edge_" + names[k] + ".pgm";
    write_pgm(path, result.output, k);
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("\n(The outputs are computed by the simulated datapath — the "
              "same arithmetic the RTL would perform.)\n");
  return 0;
}
