// Datapath viewer: prints the straight-line add/shift/multiply programs the
// library generates for the three transforms of F(m, r) — the textual
// equivalent of the paper's Fig 4 1-D convolution engine schematic — along
// with operation counts and pipeline (DAG) depth.
//
// Usage: ./examples/print_datapath [m] [r]
#include <cstdio>
#include <cstdlib>

#include "winograd/cook_toom.hpp"
#include "winograd/op_report.hpp"
#include "winograd/program.hpp"

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 3;
  const int r = argc > 2 ? std::atoi(argv[2]) : 3;

  const auto& t = wino::winograd::transforms(m, r);
  std::printf("F(%d, %d): tile n = %d, interpolation points:", m, r,
              t.tile());
  for (const auto& p : t.points) std::printf(" %s", p.to_string().c_str());
  std::printf("\n\n");

  struct Stage {
    const char* name;
    const wino::winograd::RMatrix* matrix;
  };
  const Stage stages[] = {{"data transform B^T (Fig 4 left stage)", &t.bt},
                          {"filter transform G (precomputed)", &t.g},
                          {"inverse transform A^T (Fig 4 right stage)",
                           &t.at}};
  for (const auto& s : stages) {
    const auto prog =
        wino::winograd::LinearProgram::from_matrix(*s.matrix, true);
    const auto& c = prog.counts();
    std::printf("--- %s ---\n", s.name);
    std::printf("%s", prog.to_string().c_str());
    std::printf("cost: %zu adds, %zu shifts (x2^k), %zu const mults, "
                "%zu negs | DAG depth %zu\n\n",
                c.adds, c.shifts, c.const_mults, c.negs, prog.dag_depth());
  }

  const auto rep = wino::winograd::transform_op_report(m, r);
  std::printf("2-D per-tile op counts (Eq 5 inputs): beta = %zu, "
              "gamma = %zu, delta = %zu\n",
              rep.beta(), rep.gamma(), rep.delta());
  std::printf("element-wise stage: %d fp32 multipliers per PE "
              "(4 DSP48 each on Virtex-7)\n",
              t.tile() * t.tile());
  return 0;
}
