// Interactive design-space exploration: sweep the Winograd order m on a
// chosen device, print every Table-II-style metric, and mark the Pareto
// front under (throughput, power efficiency) — the decision the paper's
// Section III walks through for VGG16-D.
//
// Usage: ./examples/dse_explorer [device] [m_max]
//   device: v485 (default) | v690 | stratix | zynq
//   m_max : highest output tile size to sweep (default 7)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.hpp"
#include "dse/design_space.hpp"
#include "dse/roofline.hpp"
#include "nn/network.hpp"

namespace {

const wino::fpga::FpgaDevice& pick_device(const char* name) {
  if (std::strcmp(name, "v690") == 0) return wino::fpga::virtex7_690t();
  if (std::strcmp(name, "stratix") == 0) return wino::fpga::stratix_v_gt();
  if (std::strcmp(name, "zynq") == 0) return wino::fpga::zynq_7045();
  return wino::fpga::virtex7_485t();
}

}  // namespace

int main(int argc, char** argv) {
  const auto& device = pick_device(argc > 1 ? argv[1] : "v485");
  const int m_max = argc > 2 ? std::atoi(argv[2]) : 7;

  const auto& net = wino::nn::vgg16_d();
  const wino::dse::DesignSpaceExplorer dse(net, device);

  std::printf("Design space exploration on %s (%zu LUTs, %zu FFs, %zu DSPs "
              "-> %zu fp32 multipliers), workload VGG16-D\n\n",
              device.name.c_str(), device.luts, device.registers,
              device.dsps, device.fp32_multipliers());

  const auto evals = dse.sweep_m(2, m_max);
  const auto front = wino::dse::DesignSpaceExplorer::pareto_front(evals);
  const auto on_front = [&front](int m) {
    for (const auto& f : front) {
      if (f.point.m == m) return true;
    }
    return false;
  };

  wino::common::TextTable t;
  t.header({"m", "PEs", "mults", "LUTs", "latency ms", "GOPS", "GOPS/mult",
            "W", "GOPS/W", "Pareto"});
  for (const auto& ev : evals) {
    t.row({std::to_string(ev.point.m), std::to_string(ev.parallel_pes),
           std::to_string(ev.multipliers), std::to_string(ev.resources.luts),
           wino::common::TextTable::num(ev.total_latency_s * 1e3, 2),
           wino::common::TextTable::num(ev.throughput_ops / 1e9, 1),
           wino::common::TextTable::num(ev.mult_efficiency / 1e9, 2),
           wino::common::TextTable::num(ev.power_w, 2),
           wino::common::TextTable::num(ev.power_efficiency / 1e9, 2),
           on_front(ev.point.m) ? "*" : ""});
  }
  t.print();

  std::printf("\nWorst-layer bandwidth requirement per design "
              "(Section V-B feasibility):\n");
  const auto layers = net.all_layers();
  for (const auto& ev : evals) {
    double worst = 0;
    std::string worst_name;
    for (const auto& l : layers) {
      const double bw = wino::dse::required_bandwidth(
          l, ev.point.m, 3, ev.parallel_pes, ev.point.frequency_hz);
      if (bw > worst) {
        worst = bw;
        worst_name = l.name;
      }
    }
    std::printf("  m=%d: %.1f GB/s (%s)\n", ev.point.m, worst / 1e9,
                worst_name.c_str());
  }
  std::printf("\n'*' marks the (throughput, power-efficiency) Pareto "
              "front; the paper implements m = 2, 3, 4 and picks m = 4 "
              "for throughput.\n");
  return 0;
}
