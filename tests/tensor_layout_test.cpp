// Layout descriptor + pack/unpack conversion kernels: exhaustive
// round-trip identity sweeps (ragged tile edges, stride > 1, asymmetric
// padding), cross-checks against the conv-layer im2col, and the
// layout-aware Winograd conv's bit-identity to the NCHW path.
#include "tensor/layout.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hpp"
#include "conv/im2col.hpp"
#include "hw/engine_config.hpp"
#include "hw/winograd_engine.hpp"
#include "winograd/kernels.hpp"

namespace wino::tensor {
namespace {

using common::Rng;

Tensor4f random_tensor(Shape4 s, std::uint64_t seed) {
  Tensor4f t(s);
  Rng rng(seed);
  rng.fill_uniform(t.flat(), -1.0F, 1.0F);
  return t;
}

bool bit_identical(const Tensor4f& a, const Tensor4f& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.flat().size() * sizeof(float)) == 0;
}

TEST(Layout, DescribesItself) {
  const Shape4 s{1, 3, 8, 8};
  EXPECT_EQ(to_string(Layout::nchw(s)), "nchw");
  EXPECT_EQ(to_string(Layout::winograd_tile(s, 4)), "winograd-tile(m=4)");
  EXPECT_EQ(to_string(Layout::im2col_panel(s, 3, 1, 2, 1)),
            "im2col-panel(r=3,pad=1x2,stride=1)");
}

TEST(Layout, VolumeAccountsForRaggedTiles) {
  // 7x5 map with m = 4: 2x2 tiles of 16 floats each per (n, c) plane.
  const Layout l = Layout::winograd_tile({2, 3, 7, 5}, 4);
  EXPECT_EQ(l.tiles_h(), 2u);
  EXPECT_EQ(l.tiles_w(), 2u);
  EXPECT_EQ(l.volume(), 2u * 3u * 2u * 2u * 16u);
  EXPECT_GE(l.volume(), l.shape.volume());
}

TEST(Layout, RejectsBadParameters) {
  EXPECT_THROW((void)Layout::winograd_tile({1, 1, 4, 4}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)Layout::im2col_panel({1, 1, 4, 4}, 0, 0, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)Layout::im2col_panel({1, 1, 4, 4}, 3, -1, 0, 1),
               std::invalid_argument);
  // Window never fits: r = 5 on a 2-pixel extent without padding.
  EXPECT_THROW((void)Layout::im2col_panel({1, 1, 2, 2}, 5, 0, 0, 1),
               std::invalid_argument);
}

TEST(WinogradTileLayout, RoundTripIsIdentityAcrossShapes) {
  // Exhaustive small sweep: every (h, w) from exact multiples to maximally
  // ragged edges, several tile sizes, multi-image multi-channel.
  std::uint64_t seed = 1;
  for (const std::size_t m : {2u, 3u, 4u}) {
    for (std::size_t h = 1; h <= 9; ++h) {
      for (std::size_t w = 1; w <= 9; ++w) {
        const Shape4 s{2, 3, h, w};
        const Tensor4f t = random_tensor(s, seed++);
        const PackedActivation packed = pack(t, Layout::winograd_tile(s, m));
        EXPECT_EQ(packed.data.size(), packed.layout.volume());
        const Tensor4f back = unpack(packed);
        ASSERT_TRUE(bit_identical(t, back))
            << "m=" << m << " h=" << h << " w=" << w;
      }
    }
  }
}

TEST(WinogradTileLayout, RaggedTilePositionsHoldZero) {
  const Shape4 s{1, 1, 3, 3};
  const Tensor4f t = random_tensor(s, 7);
  const Layout l = Layout::winograd_tile(s, 2);
  const PackedActivation packed = pack(t, l);
  // Tile (1, 1) covers rows/cols {2, 3}; position (3, 3) is outside the
  // 3x3 map and must be zero-filled.
  const std::size_t off = winograd_tile_offset(l, 0, 0, 1, 1);
  EXPECT_FLOAT_EQ(packed.data[off + 3], 0.0F);  // (i=1, j=1) of the tile
}

TEST(Im2colPanelLayout, RoundTripIsIdentityWherePanelsCoverInput) {
  // Sweep kernel sizes, strides and asymmetric padding; whenever the
  // panel samples every input pixel the round trip must be exact.
  std::uint64_t seed = 100;
  std::size_t covered_cases = 0;
  for (const std::size_t r : {1u, 2u, 3u}) {
    for (const int stride : {1, 2, 3}) {
      for (const int pad_h : {0, 1, 2}) {
        for (const int pad_w : {0, 1}) {
          for (std::size_t hw = r; hw <= r + 4; ++hw) {
            const Shape4 s{2, 2, hw, hw + 1};
            Layout l;
            try {
              l = Layout::im2col_panel(s, r, pad_h, pad_w, stride);
            } catch (const std::invalid_argument&) {
              continue;  // window never fits this tiny extent
            }
            const Tensor4f t = random_tensor(s, seed++);
            const PackedActivation packed = pack(t, l);
            EXPECT_EQ(packed.data.size(), l.volume());
            const Tensor4f back = unpack(packed);
            if (im2col_covers_input(l)) {
              ++covered_cases;
              ASSERT_TRUE(bit_identical(t, back))
                  << to_string(l) << " hw=" << hw;
            } else {
              // Unsampled pixels (stride > 1 only) come back as zero;
              // sampled pixels are still exact.
              ASSERT_GT(stride, 1) << to_string(l);
              const Tensor4f again = unpack(pack(back, l));
              ASSERT_TRUE(bit_identical(back, again)) << to_string(l);
            }
          }
        }
      }
    }
  }
  EXPECT_GT(covered_cases, 50u);  // the sweep exercised the identity path
}

TEST(Im2colPanelLayout, StrideOneAlwaysCovers) {
  for (std::size_t r = 1; r <= 4; ++r) {
    const Layout l = Layout::im2col_panel({1, 1, 8, 8}, r, 1, 0, 1);
    EXPECT_TRUE(im2col_covers_input(l));
  }
}

TEST(Im2colPanelLayout, MatchesConvLayerIm2col) {
  // The tensor-layer pack and the conv-layer lowering must produce the
  // same panel: conv2d_im2col's GEMM consumes either interchangeably.
  const Shape4 s{2, 3, 6, 5};
  const Tensor4f t = random_tensor(s, 11);
  const std::size_t r = 3;
  const int pad_h = 1;
  const int pad_w = 2;
  const int stride = 1;
  const Layout l = Layout::im2col_panel(s, r, pad_h, pad_w, stride);
  const PackedActivation packed = pack(t, l);
  const std::size_t panel = l.shape.c * r * r * l.panel_out_h() *
                            l.panel_out_w();
  std::vector<float> reference(panel);
  for (std::size_t img = 0; img < s.n; ++img) {
    conv::im2col(t, img, r, pad_h, pad_w, stride, reference);
    EXPECT_EQ(std::memcmp(reference.data(), packed.data.data() + img * panel,
                          panel * sizeof(float)),
              0)
        << "image " << img;
  }
}

TEST(Im2colPanelLayout, PackedPanelConvBitIdenticalToNCHWConv) {
  const Shape4 s{3, 4, 7, 6};
  const Tensor4f t = random_tensor(s, 13);
  Tensor4f kernels(8, 4, 3, 3);
  Rng rng(17);
  rng.fill_normal(kernels.flat(), 0.0F, 0.2F);
  const conv::SpatialConvOptions opt{.pad = 1, .stride = 1};
  const Tensor4f direct = conv::conv2d_im2col(t, kernels, opt);
  const PackedActivation panel =
      pack(t, Layout::im2col_panel(s, 3, 1, 1, 1));
  const Tensor4f via_panel = conv::conv2d_im2col(panel, kernels, opt);
  EXPECT_TRUE(bit_identical(direct, via_panel));
}

TEST(Im2colPanelLayout, PanelConvRejectsMismatchedOptions) {
  const Shape4 s{1, 2, 6, 6};
  const Tensor4f t = random_tensor(s, 19);
  Tensor4f kernels(4, 2, 3, 3);
  const PackedActivation panel =
      pack(t, Layout::im2col_panel(s, 3, 1, 1, 1));
  const conv::SpatialConvOptions other{.pad = 0, .stride = 1};
  EXPECT_THROW(conv::conv2d_im2col(panel, kernels, other),
               std::invalid_argument);
}

TEST(Pack, RejectsShapeMismatch) {
  const Tensor4f t = random_tensor({1, 2, 4, 4}, 23);
  EXPECT_THROW(pack(t, Layout::winograd_tile({1, 2, 5, 4}, 2)),
               std::invalid_argument);
}

// --- The layout-aware Winograd conv against the NCHW reference ----------

class WinogradLayoutConv : public ::testing::TestWithParam<int> {};

TEST_P(WinogradLayoutConv, AllLayoutCombinationsBitIdenticalToNCHWPath) {
  const int m = GetParam();
  // Shapes chosen so the tile grid has ragged right/bottom edges for at
  // least one of the m values.
  const Shape4 s{2, 3, 9, 7};
  const Tensor4f input = random_tensor(s, 29);
  Tensor4f kernels(4, 3, 3, 3);
  Rng rng(31);
  rng.fill_normal(kernels.flat(), 0.0F, 0.3F);

  const winograd::TileTransformer xf(winograd::transforms(m, 3));
  const winograd::TransformedKernels tk(xf, kernels);
  winograd::WinogradConvOptions opt;
  opt.pad = 1;

  Tensor4f reference = winograd::conv2d_winograd(input, tk, xf, opt);
  const PackedActivation nchw_in =
      pack(input, Layout::nchw(s));
  const PackedActivation tiled_in =
      pack(input, Layout::winograd_tile(s, static_cast<std::size_t>(m)));

  for (const auto* in : {&nchw_in, &tiled_in}) {
    for (const LayoutKind out_kind :
         {LayoutKind::kNCHW, LayoutKind::kWinogradTile}) {
      const PackedActivation out = winograd::conv2d_winograd_layout(
          *in, tk, xf, opt, out_kind, /*fuse_relu=*/false);
      EXPECT_EQ(out.layout.kind, out_kind);
      ASSERT_TRUE(bit_identical(reference, unpack(out)))
          << "in=" << to_string(in->layout)
          << " out=" << to_string(Layout{out_kind});
    }
  }

  // Fused ReLU == separate ReLU pass, on both output layouts.
  Tensor4f relued = reference;
  for (float& v : relued.flat()) v = v > 0.0F ? v : 0.0F;
  for (const LayoutKind out_kind :
       {LayoutKind::kNCHW, LayoutKind::kWinogradTile}) {
    const PackedActivation out = winograd::conv2d_winograd_layout(
        tiled_in, tk, xf, opt, out_kind, /*fuse_relu=*/true);
    ASSERT_TRUE(bit_identical(relued, unpack(out)))
        << "out=" << to_string(Layout{out_kind});
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, WinogradLayoutConv,
                         ::testing::Values(2, 3, 4));

TEST(WinogradLayoutConvGuards, RejectsPanelInputAndChannelMismatch) {
  const Shape4 s{1, 2, 6, 6};
  const Tensor4f input = random_tensor(s, 37);
  Tensor4f kernels(2, 2, 3, 3);
  Rng rng(41);
  rng.fill_normal(kernels.flat(), 0.0F, 0.3F);
  const winograd::TileTransformer xf(winograd::transforms(2, 3));
  const winograd::TransformedKernels tk(xf, kernels);
  const winograd::WinogradConvOptions opt;

  const PackedActivation panel =
      pack(input, Layout::im2col_panel(s, 3, 1, 1, 1));
  EXPECT_THROW(winograd::conv2d_winograd_layout(
                   panel, tk, xf, opt, LayoutKind::kNCHW, false),
               std::invalid_argument);

  const Tensor4f wrong_c = random_tensor({1, 3, 6, 6}, 43);
  const PackedActivation wrong =
      pack(wrong_c, Layout::nchw(wrong_c.shape()));
  EXPECT_THROW(winograd::conv2d_winograd_layout(
                   wrong, tk, xf, opt, LayoutKind::kNCHW, false),
               std::invalid_argument);
}

TEST(HwEngineLayoutEntry, PackedInputMatchesNCHWEntry) {
  const Shape4 s{1, 3, 10, 10};
  const Tensor4f input = random_tensor(s, 47);
  Tensor4f kernels(4, 3, 3, 3);
  Rng rng(53);
  rng.fill_normal(kernels.flat(), 0.0F, 0.3F);
  hw::EngineConfig cfg;
  cfg.m = 2;
  cfg.r = 3;
  cfg.parallel_pes = 2;
  const hw::WinogradEngine engine(cfg);
  const Tensor4f direct = engine.run_layer(input, kernels, 1).output;
  const PackedActivation tiled = pack(input, Layout::winograd_tile(s, 2));
  const Tensor4f via_layout = engine.run_layer(tiled, kernels, 1).output;
  EXPECT_TRUE(bit_identical(direct, via_layout));
}

}  // namespace
}  // namespace wino::tensor
