// Tests for the per-layer execution planner (nn/plan.hpp): the tiled
// maxpool's bit-identity to NCHW pooling across every layout/thread
// combination, the cost model's complexity-driven ordering, plan
// determinism, mixed-m tile handoffs and repacks, the plan executor's
// memcmp contract against the per-layer reference composition, the
// planned serving session, and the hw engine's per-layer m hook.
#include "nn/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "conv/spatial.hpp"
#include "hw/engine_config.hpp"
#include "hw/winograd_engine.hpp"
#include "nn/forward.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/inference_server.hpp"
#include "tensor/layout.hpp"

namespace wino::nn {
namespace {

using common::Rng;
using tensor::Layout;
using tensor::LayoutKind;
using tensor::PackedActivation;
using tensor::Tensor4f;

bool same_bits(const Tensor4f& a, const Tensor4f& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.flat().size() * sizeof(float)) == 0;
}

ConvLayerSpec conv_spec(std::size_t hw, std::size_t c, std::size_t k) {
  ConvLayerSpec l;
  l.h = hw;
  l.w = hw;
  l.c = c;
  l.k = k;
  l.r = 3;
  l.pad = 1;
  return l;
}

TEST(ParseConvAlgo, RoundTripsAndShortNames) {
  for (const ConvAlgo algo :
       {ConvAlgo::kSpatial, ConvAlgo::kIm2col, ConvAlgo::kFft,
        ConvAlgo::kWinograd2, ConvAlgo::kWinograd3, ConvAlgo::kWinograd4}) {
    EXPECT_EQ(parse_conv_algo(to_string(algo)), algo);
  }
  EXPECT_EQ(parse_conv_algo("w2"), ConvAlgo::kWinograd2);
  EXPECT_EQ(parse_conv_algo("winograd3"), ConvAlgo::kWinograd3);
  EXPECT_EQ(parse_conv_algo("w4"), ConvAlgo::kWinograd4);
  EXPECT_EQ(parse_conv_algo("im2col"), ConvAlgo::kIm2col);
  EXPECT_THROW(parse_conv_algo("winograd5"), std::invalid_argument);
  EXPECT_THROW(parse_conv_algo(""), std::invalid_argument);
}

TEST(WinogradM, TiledFormPredicate) {
  EXPECT_EQ(winograd_m(ConvAlgo::kWinograd2), 2);
  EXPECT_EQ(winograd_m(ConvAlgo::kWinograd3), 3);
  EXPECT_EQ(winograd_m(ConvAlgo::kWinograd4), 4);
  EXPECT_EQ(winograd_m(ConvAlgo::kSpatial), 0);
  EXPECT_EQ(winograd_m(ConvAlgo::kIm2col), 0);
  EXPECT_EQ(winograd_m(ConvAlgo::kFft), 0);
}

// The satellite's exhaustive sweep: every odd/even extent (ragged tile
// edges on both sides), every in/out layout pairing incl. mismatched tile
// edges, at 1/2/7 threads — all memcmp-identical to NCHW maxpool2x2.
TEST(TiledMaxpool, BitIdenticalToNchwAcrossLayoutsAndThreads) {
  Rng rng(321);
  const std::vector<std::size_t> in_tiles = {0, 2, 3, 4};   // 0 = NCHW
  const std::vector<std::size_t> out_tiles = {0, 2, 4};
  for (const std::size_t h : {2u, 3u, 5u, 8u, 9u}) {
    for (const std::size_t w : {2u, 4u, 7u, 9u}) {
      Tensor4f nchw(2, 3, h, w);
      rng.fill_uniform(nchw.flat(), -1.0F, 1.0F);
      const Tensor4f expect = maxpool2x2(nchw);
      for (const std::size_t in_m : in_tiles) {
        const PackedActivation in =
            in_m == 0 ? tensor::pack(nchw, Layout::nchw(nchw.shape()))
                      : tensor::pack(
                            nchw, Layout::winograd_tile(nchw.shape(), in_m));
        for (const std::size_t out_m : out_tiles) {
          const LayoutKind out_kind =
              out_m == 0 ? LayoutKind::kNCHW : LayoutKind::kWinogradTile;
          std::vector<std::vector<float>> per_thread;
          for (const std::size_t threads : {1u, 2u, 7u}) {
            runtime::ThreadPool::set_global_threads(threads);
            const PackedActivation got =
                maxpool2x2_packed(in, out_kind, out_m);
            ASSERT_TRUE(same_bits(tensor::unpack(got), expect))
                << "h=" << h << " w=" << w << " in_m=" << in_m
                << " out_m=" << out_m << " threads=" << threads;
            per_thread.push_back(got.data);
          }
          // The packed buffer itself (incl. ragged zero fill) must not
          // depend on the thread count either.
          EXPECT_EQ(per_thread[0], per_thread[1]);
          EXPECT_EQ(per_thread[0], per_thread[2]);
        }
      }
    }
  }
  runtime::ThreadPool::set_global_threads(
      std::max(1u, std::thread::hardware_concurrency()));
}

TEST(TiledMaxpool, RejectsBadInputs) {
  Tensor4f tiny(1, 1, 1, 4);
  EXPECT_THROW(maxpool2x2_packed(PackedActivation::from_nchw(std::move(tiny)),
                                 LayoutKind::kNCHW),
               std::invalid_argument);
  Tensor4f ok(1, 1, 4, 4);
  const auto panel = tensor::pack(
      ok, Layout::im2col_panel(ok.shape(), 3, 1, 1, 1));
  EXPECT_THROW(maxpool2x2_packed(panel, LayoutKind::kNCHW),
               std::invalid_argument);
  EXPECT_THROW(maxpool2x2_packed(PackedActivation::from_nchw(std::move(ok)),
                                 LayoutKind::kIm2colPanel),
               std::invalid_argument);
}

TEST(CostModel, OrderingFollowsComplexity) {
  // Flat injected rates: the ordering must come from the dse:: op counts.
  Calibration cal = default_calibration();
  // Big feature map, m divides the extent: W4 does strictly less work
  // than W2 per output, so at equal rates it must be predicted faster.
  const ConvLayerSpec big = conv_spec(56, 32, 32);
  EXPECT_LT(predict_layer_ms(big, ConvAlgo::kWinograd4, cal),
            predict_layer_ms(big, ConvAlgo::kWinograd2, cal));
  // Tiny late-network map: one ragged W4 tile costs 36 multiplies per
  // (c, k) where W2's single tile costs 16 — the exact-tile model must
  // flip the preference.
  const ConvLayerSpec tiny = conv_spec(2, 64, 64);
  EXPECT_LT(predict_layer_ms(tiny, ConvAlgo::kWinograd2, cal),
            predict_layer_ms(tiny, ConvAlgo::kWinograd4, cal));
  // Same op count, different calibrated rate: im2col (8 GFLOP/s default)
  // beats spatial (1 GFLOP/s default).
  EXPECT_LT(predict_layer_ms(big, ConvAlgo::kIm2col, cal),
            predict_layer_ms(big, ConvAlgo::kSpatial, cal));
  // Batch scales every prediction linearly.
  EXPECT_NEAR(predict_layer_ms(big, ConvAlgo::kWinograd4, cal, 4),
              4 * predict_layer_ms(big, ConvAlgo::kWinograd4, cal, 1),
              1e-9);
  // The work-size interpolation clamps at the anchors and moves
  // monotonically between them.
  AlgoCalibration interp;
  interp.ops_small = 1e4;
  interp.gflops_small = 1.0;
  interp.ops_big = 1e6;
  interp.gflops_big = 3.0;
  EXPECT_DOUBLE_EQ(interp.gflops_at(1e3), 1.0);
  EXPECT_DOUBLE_EQ(interp.gflops_at(1e7), 3.0);
  EXPECT_DOUBLE_EQ(interp.gflops_at(1e5), 2.0);  // log midpoint
}

TEST(Planner, DeterministicPlansAndUniformFallback) {
  const auto layers = vgg16_d_scaled(7, 16);
  PlannerOptions opts;
  opts.calibration = default_calibration();
  const ExecutionPlan a = plan_execution(layers, opts);
  const ExecutionPlan b = plan_execution(layers, opts);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i], b.steps[i]) << "layer " << i;
  }
  EXPECT_EQ(a.nchw_boundaries, b.nchw_boundaries);
  // A single candidate degenerates to the uniform plan's decisions.
  PlannerOptions only_w2;
  only_w2.candidates = {ConvAlgo::kWinograd2};
  only_w2.calibration = default_calibration();
  const ExecutionPlan w2 = plan_execution(layers, only_w2);
  const ExecutionPlan uni = uniform_plan(layers, ConvAlgo::kWinograd2);
  EXPECT_TRUE(w2.uniform());
  for (std::size_t i = 0; i < w2.steps.size(); ++i) {
    EXPECT_EQ(w2.steps[i].algo, uni.steps[i].algo);
    EXPECT_EQ(w2.steps[i].output_kind, uni.steps[i].output_kind);
    EXPECT_EQ(w2.steps[i].out_tile_m, uni.steps[i].out_tile_m);
  }
  EXPECT_THROW(plan_execution(layers, PlannerOptions{.candidates = {}}),
               std::invalid_argument);
}

TEST(Planner, MeasuredModeIsCachedAndDeterministic) {
  // The measured path probes each (layer geometry, algo) once per process
  // and re-reads the cache afterwards, so re-planning is identical.
  const auto layers = vgg16_d_scaled(28, 16);  // 8x8 input, tiny probe cost
  PlannerOptions opts;
  opts.candidates = {ConvAlgo::kWinograd2, ConvAlgo::kWinograd4,
                     ConvAlgo::kIm2col};
  const ExecutionPlan a = plan_execution(layers, opts);
  const ExecutionPlan b = plan_execution(layers, opts);
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i], b.steps[i]) << "layer " << i;
  }
  // Cached measurements are stable verbatim.
  const auto& l0 = layers.front().conv;
  EXPECT_EQ(measure_layer_ms(l0, ConvAlgo::kWinograd2),
            measure_layer_ms(l0, ConvAlgo::kWinograd2));
  EXPECT_GT(measure_layer_ms(l0, ConvAlgo::kWinograd2), 0.0);
}

TEST(Planner, MeasuredCalibrationIsCachedAndPositive) {
  const Calibration& a = measured_calibration();
  const Calibration& b = measured_calibration();
  EXPECT_EQ(&a, &b);  // one probe per process
  for (const AlgoCalibration* c :
       {&a.spatial, &a.im2col, &a.fft, &a.winograd2, &a.winograd3,
        &a.winograd4}) {
    EXPECT_GT(c->gflops_small, 0.0);
    EXPECT_GT(c->gflops_big, 0.0);
    EXPECT_GT(c->ops_big, c->ops_small);
  }
}

TEST(Planner, TiledLayoutsCloseEveryPoolBoundary) {
  // All-Winograd candidates: every conv -> conv, conv -> pool and
  // pool -> conv boundary stays in tile form; only the last pool -> FC
  // handoff (and the final output) materialises NCHW. This is the
  // structural "conv -> pool -> conv chains execute with zero NCHW
  // round-trips" acceptance check.
  const auto layers = vgg16_d_scaled(7, 16);
  PlannerOptions opts;
  opts.candidates = {ConvAlgo::kWinograd2, ConvAlgo::kWinograd4};
  opts.calibration = default_calibration();
  const ExecutionPlan plan = plan_execution(layers, opts);
  EXPECT_EQ(plan.boundaries, layers.size() - 1);
  EXPECT_EQ(plan.nchw_boundaries, 1u);  // pool5 -> fc only
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    const LayerPlan& step = plan.steps[i];
    if (layers[i].kind == LayerKind::kMaxPool &&
        layers[i + 1].kind == LayerKind::kConv) {
      // Pools emit tiles sized for their consumer.
      ASSERT_EQ(step.output_kind, LayoutKind::kWinogradTile);
      EXPECT_EQ(step.out_tile_m, static_cast<std::size_t>(winograd_m(
                                     plan.steps[i + 1].algo)));
    }
    if (layers[i].kind == LayerKind::kConv) {
      // Winograd convs emit their own m.
      ASSERT_EQ(step.output_kind, LayoutKind::kWinogradTile);
      EXPECT_EQ(step.out_tile_m,
                static_cast<std::size_t>(winograd_m(step.algo)));
      EXPECT_TRUE(step.fused_relu);
    }
  }
  EXPECT_EQ(plan.steps.back().output_kind, LayoutKind::kNCHW);
}

TEST(Repack, MixedMTileRoundTripIsExact) {
  Rng rng(99);
  for (const std::size_t h : {4u, 5u, 7u, 8u}) {
    for (const std::size_t w : {4u, 6u, 9u}) {
      Tensor4f nchw(2, 3, h, w);
      rng.fill_uniform(nchw.flat(), -1.0F, 1.0F);
      const Layout t4 = Layout::winograd_tile(nchw.shape(), 4);
      const Layout t2 = Layout::winograd_tile(nchw.shape(), 2);
      const PackedActivation w4 = tensor::pack(nchw, t4);
      // W4 -> W2 -> W4: the producer-side repack a consumer that insisted
      // on its own tile edge would trigger, round-tripped. Bit-exact
      // including the zero ragged fill.
      const PackedActivation back =
          tensor::repack(tensor::repack(w4, t2), t4);
      EXPECT_EQ(w4.data, back.data) << "h=" << h << " w=" << w;
      // Repacking into NCHW is exactly unpack.
      const PackedActivation as_nchw =
          tensor::repack(w4, Layout::nchw(nchw.shape()));
      EXPECT_TRUE(same_bits(Tensor4f(nchw.shape(),
                                     std::vector<float>(as_nchw.data)),
                            nchw));
    }
  }
  Tensor4f a(1, 1, 4, 4);
  const auto packed = tensor::pack(a, Layout::winograd_tile(a.shape(), 2));
  EXPECT_THROW(
      tensor::repack(packed, Layout::winograd_tile({1, 1, 6, 6}, 2)),
      std::invalid_argument);
}

// The acceptance pin: a mixed-m plan (different Winograd m per layer plus
// an im2col layer, tiled pools in between) is memcmp-identical to
// composing the same per-layer algorithms through the always-NCHW
// reference path — at every batch size and thread count.
TEST(ForwardPlan, MixedMBitIdenticalToReferenceComposition) {
  const auto layers = vgg16_d_scaled(/*scale=*/14, /*channel_div=*/16);
  const WeightBank weights = random_weights(layers, 77);
  ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kWinograd4);
  // Force a mixed assignment: cycle W4 -> W2 -> W3 -> im2col over the
  // conv layers, so the walk crosses W4->W2 and W2->W3 tile handoffs,
  // pool boundaries inside Winograd chains, and a tile -> NCHW -> panel
  // transition into the im2col layer.
  const ConvAlgo cycle[4] = {ConvAlgo::kWinograd4, ConvAlgo::kWinograd2,
                             ConvAlgo::kWinograd3, ConvAlgo::kIm2col};
  std::size_t conv_idx = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != LayerKind::kConv) continue;
    plan.steps[i].algo = cycle[conv_idx % 4];
    ++conv_idx;
  }
  replan_layouts(plan);
  EXPECT_FALSE(plan.uniform());
  EXPECT_GT(plan.mixed_m_handoffs, 0u);

  Rng rng(79);
  for (const std::size_t batch : {1u, 5u}) {
    Tensor4f input(batch, 3, 16, 16);
    rng.fill_uniform(input.flat(), -1.0F, 1.0F);
    const Tensor4f reference = forward_reference(plan, weights, input);
    for (const std::size_t threads : {1u, 2u, 7u}) {
      runtime::ThreadPool::set_global_threads(threads);
      const Tensor4f planned = forward(plan, weights, input);
      ASSERT_TRUE(same_bits(planned, reference))
          << "batch=" << batch << " threads=" << threads;
    }
  }
  runtime::ThreadPool::set_global_threads(
      std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ForwardPlan, UniformWrapperMatchesPlanExecutor) {
  const auto layers = vgg16_d_scaled(14, 16);
  const WeightBank weights = random_weights(layers, 5);
  Rng rng(31);
  Tensor4f input(3, 3, 16, 16);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  for (const ConvAlgo algo :
       {ConvAlgo::kWinograd2, ConvAlgo::kWinograd4, ConvAlgo::kIm2col}) {
    const Tensor4f via_algo = forward(layers, weights, input, algo);
    const Tensor4f via_plan =
        forward(uniform_plan(layers, algo), weights, input);
    EXPECT_TRUE(same_bits(via_algo, via_plan)) << to_string(algo);
  }
}

TEST(ForwardPlan, NonWinogradPlanBatchedAcrossManyThreads) {
  // Regression pin: a plan with no Winograd layer has no cache-budgeted
  // sub-batch cap, and the cap handed to the chunk walk must be the batch
  // itself — an unbounded sentinel used to overflow `i += cap` when a
  // worker's range started past zero, marching workers into each other's
  // output slots. More worker chunks than images exercises exactly that.
  const auto layers = vgg16_d_scaled(28, 16);
  const WeightBank weights = random_weights(layers, 3);
  Rng rng(41);
  Tensor4f input(5, 3, 8, 8);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  const ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kIm2col);
  const Tensor4f reference = forward_reference(plan, weights, input);
  for (const std::size_t threads : {2u, 7u}) {
    runtime::ThreadPool::set_global_threads(threads);
    EXPECT_TRUE(same_bits(forward(plan, weights, input), reference))
        << "threads=" << threads;
  }
  runtime::ThreadPool::set_global_threads(
      std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ForwardPlan, RejectsMalformedPlan) {
  const auto layers = vgg16_d_scaled(28, 16);
  const WeightBank weights = random_weights(layers, 1);
  ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kWinograd2);
  plan.steps.pop_back();
  const Tensor4f input(1, 3, 8, 8);
  EXPECT_THROW(forward(plan, weights, input), std::invalid_argument);
}

TEST(Serve, PlannedSessionServesBitIdenticalResults) {
  const auto layers = vgg16_d_scaled(14, 16);
  WeightBank weights = random_weights(layers, 21);
  ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kWinograd4);
  // A genuinely mixed session plan, built without timing dependence.
  std::size_t conv_idx = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != LayerKind::kConv) continue;
    plan.steps[i].algo = (conv_idx % 2 == 0) ? ConvAlgo::kWinograd4
                                             : ConvAlgo::kWinograd2;
    ++conv_idx;
  }
  replan_layouts(plan);

  serve::ServerConfig cfg;
  cfg.max_batch = 4;
  serve::InferenceServer server(cfg);
  const auto id = server.add_model("mixed", plan, weights);
  EXPECT_FALSE(server.model_plan(id).uniform());
  EXPECT_EQ(server.model_layers(id).size(), layers.size());

  Rng rng(17);
  std::vector<Tensor4f> images;
  std::vector<std::future<Tensor4f>> futures;
  for (int i = 0; i < 6; ++i) {
    Tensor4f img(1, 3, 16, 16);
    rng.fill_uniform(img.flat(), -1.0F, 1.0F);
    images.push_back(std::move(img));
  }
  futures.reserve(images.size());
  for (auto& img : images) futures.push_back(server.submit(id, img));
  for (std::size_t i = 0; i < images.size(); ++i) {
    const Tensor4f served = futures[i].get();
    const Tensor4f direct =
        forward(server.model_plan(id), server.model_weights(id), images[i]);
    EXPECT_TRUE(same_bits(served, direct)) << "image " << i;
  }
  server.shutdown();
}

TEST(HwEngine, RetiledRunsThePlannedPerLayerM) {
  hw::EngineConfig cfg;
  cfg.m = 4;
  cfg.r = 3;
  cfg.parallel_pes = 4;
  const hw::WinogradEngine engine(cfg);

  const hw::WinogradEngine w2 = engine.retiled(2);
  EXPECT_EQ(w2.config().m, 2);
  EXPECT_EQ(w2.config().r, 3);
  // The multiplier budget (4 PEs x 6^2) re-divides into 16-wide PEs.
  EXPECT_EQ(w2.config().parallel_pes, 4u * 36u / 16u);
  EXPECT_THROW(engine.retiled(0), std::invalid_argument);

  Rng rng(55);
  Tensor4f input(1, 3, 8, 8);
  Tensor4f kernels(4, 3, 3, 3);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  rng.fill_normal(kernels.flat(), 0.0F, 0.2F);
  const auto act = PackedActivation::from_nchw(Tensor4f(input));

  // The per-layer-m overload is exactly the retiled engine's run.
  const auto direct = w2.run_layer(input, kernels, /*pad=*/1);
  const auto via_m = engine.run_layer(act, kernels, /*pad=*/1, /*m=*/2);
  ASSERT_TRUE(same_bits(direct.output, via_m.output));
  EXPECT_EQ(direct.stats.total_cycles, via_m.stats.total_cycles);

  // And the simulated datapath still computes the right convolution.
  const Tensor4f ref = conv::conv2d_spatial(
      input, kernels, {.pad = 1, .stride = 1});
  EXPECT_LE(tensor::max_abs_diff(via_m.output, ref), 2e-4F);
}

}  // namespace
}  // namespace wino::nn
