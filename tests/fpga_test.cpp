// Validates the resource estimator against the paper's Table I (exactly)
// and the power model's calibration quality and monotonicity.
#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "fpga/power.hpp"
#include "fpga/resources.hpp"

namespace wino::fpga {
namespace {

TEST(Device, Virtex7MatchesTable1AvailableRow) {
  const FpgaDevice& d = virtex7_485t();
  EXPECT_EQ(d.luts, 303600u);
  EXPECT_EQ(d.registers, 607200u);
  EXPECT_EQ(d.dsps, 2800u);
  EXPECT_EQ(d.fp32_multipliers(), 700u);
}

TEST(ResourceEstimator, Table1OursExact) {
  const ResourceEstimator est;
  const ResourceReport r =
      est.estimate(4, 3, 19, EngineStyle::kSharedDataTransform);
  EXPECT_EQ(r.luts, 107839u);
  EXPECT_EQ(r.registers, 76500u);
  EXPECT_EQ(r.dsps, 2736u);
  EXPECT_EQ(r.fp32_multipliers, 684u);
}

TEST(ResourceEstimator, Table1ReferenceExact) {
  const ResourceEstimator est;
  const ResourceReport r =
      est.estimate(4, 3, 19, EngineStyle::kPerPeDataTransform);
  EXPECT_EQ(r.luts, 232256u);
  EXPECT_EQ(r.registers, 97052u);
  EXPECT_EQ(r.dsps, 2736u);
}

TEST(ResourceEstimator, LutSavingsAbout53Percent) {
  // The paper's headline: "53.6% logic resource reduction".
  const ResourceEstimator est;
  const auto ours = est.estimate(4, 3, 19, EngineStyle::kSharedDataTransform);
  const auto ref = est.estimate(4, 3, 19, EngineStyle::kPerPeDataTransform);
  const double saving =
      1.0 - static_cast<double>(ours.luts) / static_cast<double>(ref.luts);
  EXPECT_NEAR(saving, 0.536, 0.002);
}

TEST(ResourceEstimator, PerPeMarginalCostsMatchPaperText) {
  // "increases by about 12224 LUTs per PE ... our implementation ... about
  // 5312 LUTs per PE" (Section V-A).
  const ResourceEstimator est;
  const auto ours = est.estimate(4, 3, 19, EngineStyle::kSharedDataTransform);
  const auto ref = est.estimate(4, 3, 19, EngineStyle::kPerPeDataTransform);
  EXPECT_NEAR(static_cast<double>(ours.luts_per_pe), 5312.0, 1.0);
  EXPECT_NEAR(static_cast<double>(ref.luts_per_pe), 12224.0, 1.0);
}

TEST(ResourceEstimator, MaxPesMatchesTable2) {
  const ResourceEstimator est;
  EXPECT_EQ(est.max_pes(2, 3, EngineStyle::kSharedDataTransform), 43u);
  EXPECT_EQ(est.max_pes(3, 3, EngineStyle::kSharedDataTransform), 28u);
  EXPECT_EQ(est.max_pes(4, 3, EngineStyle::kSharedDataTransform), 19u);
}

TEST(ResourceEstimator, SharedStyleNeverWorse) {
  const ResourceEstimator est;
  for (int m = 2; m <= 6; ++m) {
    for (const std::size_t pes : {1u, 4u, 16u}) {
      const auto shared =
          est.estimate(m, 3, pes, EngineStyle::kSharedDataTransform);
      const auto per_pe =
          est.estimate(m, 3, pes, EngineStyle::kPerPeDataTransform);
      EXPECT_LE(shared.luts, per_pe.luts) << "m=" << m << " P=" << pes;
      EXPECT_EQ(shared.dsps, per_pe.dsps);
    }
  }
}

TEST(ResourceEstimator, SavingsGrowWithPes) {
  // "higher savings in slice logic utilisation for high number of parallel
  // PEs" — the shared block amortises.
  const ResourceEstimator est;
  double prev = 0;
  for (const std::size_t pes : {2u, 8u, 19u}) {
    const auto ours =
        est.estimate(4, 3, pes, EngineStyle::kSharedDataTransform);
    const auto ref =
        est.estimate(4, 3, pes, EngineStyle::kPerPeDataTransform);
    const double saving =
        1.0 - static_cast<double>(ours.luts) / static_cast<double>(ref.luts);
    EXPECT_GT(saving, prev);
    prev = saving;
  }
}

TEST(ResourceEstimator, ScalesLinearlyInPes) {
  const ResourceEstimator est;
  const auto one = est.estimate(3, 3, 1, EngineStyle::kSharedDataTransform);
  const auto ten = est.estimate(3, 3, 10, EngineStyle::kSharedDataTransform);
  EXPECT_EQ(ten.dsps, 10 * one.dsps);
  // LUTs: fixed shared block + linear per-PE part.
  const std::size_t shared = one.luts - one.luts_per_pe;
  EXPECT_NEAR(static_cast<double>(ten.luts),
              static_cast<double>(shared + 10 * one.luts_per_pe), 5.0);
}

TEST(ResourceEstimator, RejectsZeroPes) {
  const ResourceEstimator est;
  EXPECT_THROW(
      static_cast<void>(est.estimate(2, 3, 0,
                                     EngineStyle::kSharedDataTransform)),
      std::invalid_argument);
}

TEST(PowerModel, CalibrationErrorBounded) {
  const ResourceEstimator est;
  const PowerModel pm(est);
  // Documented model fidelity: within 30% on every calibrated design point
  // (see EXPERIMENTS.md for the per-point numbers).
  EXPECT_LE(pm.max_calibration_rel_error(), 0.30);
}

TEST(PowerModel, CoefficientsNonNegative) {
  const ResourceEstimator est;
  const PowerModel pm(est);
  for (const double c : pm.coefficients()) EXPECT_GE(c, 0.0);
}

TEST(PowerModel, MonotoneInUtilisation) {
  const ResourceEstimator est;
  const PowerModel pm(est);
  double prev = 0;
  for (const std::size_t pes : {5u, 10u, 15u, 19u}) {
    const double w = pm.predict_w(
        est.estimate(4, 3, pes, EngineStyle::kSharedDataTransform));
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(PowerModel, PreservesPaperPowerOrdering) {
  // Published: ours m=2 (13.03) < ours m=3 (23.96) < ours m=4 (36.32).
  const ResourceEstimator est;
  const PowerModel pm(est);
  const double w2 = pm.predict_w(
      est.estimate(2, 3, 43, EngineStyle::kSharedDataTransform));
  const double w3 = pm.predict_w(
      est.estimate(3, 3, 28, EngineStyle::kSharedDataTransform));
  const double w4 = pm.predict_w(
      est.estimate(4, 3, 19, EngineStyle::kSharedDataTransform));
  EXPECT_LT(w2, w3);
  EXPECT_LT(w3, w4);
}

TEST(PowerModel, FrequencyScalesDynamicOnly) {
  const ResourceEstimator est;
  const PowerModel pm(est);
  const auto r = est.estimate(3, 3, 10, EngineStyle::kSharedDataTransform);
  const double at200 = pm.predict_w(r, 200e6);
  const double at100 = pm.predict_w(r, 100e6);
  const double static_w = pm.coefficients()[0];
  EXPECT_NEAR(at100 - static_w, (at200 - static_w) / 2, 1e-9);
}

TEST(PowerModel, ScaledReferenceRule) {
  // [3]a power in Table II: 8.04 W * 688 / 256 = 21.61 W.
  EXPECT_NEAR(scaled_reference_power_w(688), 21.61, 0.01);
  EXPECT_NEAR(scaled_reference_power_w(256), 8.04, 1e-9);
}

TEST(PowerModel, RejectsTooFewSamples) {
  EXPECT_THROW(PowerModel(std::vector<PowerSample>(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wino::fpga
