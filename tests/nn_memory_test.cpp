// Tests for the arena memory planner (nn/memory_plan.hpp): the ByteCarver
// measure/carve contract, linear-scan slab assignment (alignment, lifetime
// overlap-freedom, peak == high-water mark, genuine reuse on a deep
// stack), the workspace slab's monotonic growth, the runtime fallback for
// stacks the plan-time walk cannot shape, and the acceptance-critical
// property that a warm forward(plan) performs zero heap allocations while
// staying bit-identical across calls.
#include "nn/memory_plan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/random.hpp"
#include "nn/forward.hpp"
#include "nn/plan.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"

// --------------------------------------------------------------------------
// Counting allocator: global operator new/delete replacements (must live at
// global scope), malloc-backed so they compose with the sanitizer jobs'
// interceptors. Counting is gated so only the windows a test opens are
// measured; every thread's allocations count (the forward pass fans out
// over the pool, and a worker allocating in the hot loop is exactly the
// regression this pins).
// --------------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_malloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) { return counted_malloc(size); }
void* operator new[](std::size_t size) { return counted_malloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace wino::nn {
namespace {

using common::Rng;
using tensor::Layout;
using tensor::Tensor4f;

TEST(ByteCarver, MeasureAndCarveShareOneLayout) {
  ByteCarver measure;
  const std::span<float> mf = measure.take<float>(10);
  EXPECT_EQ(mf.data(), nullptr);  // measure mode: null spans, sizes only
  EXPECT_EQ(mf.size(), 10u);
  (void)measure.take<std::size_t>(3);
  const std::size_t need = measure.used();
  EXPECT_EQ(need % kSlabAlign, 0u);
  EXPECT_EQ(need, 2 * kSlabAlign);  // 40 B + 24 B, each aligned up

  std::vector<std::byte> slab(need);
  ByteCarver carve(std::span<std::byte>(slab.data(), slab.size()));
  const std::span<float> cf = carve.take<float>(10);
  ASSERT_NE(cf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::byte*>(cf.data()), slab.data());
  const std::span<std::size_t> cs = carve.take<std::size_t>(3);
  EXPECT_EQ(reinterpret_cast<std::byte*>(cs.data()),
            slab.data() + kSlabAlign);
  EXPECT_EQ(carve.used(), need);
  // The carver refuses to hand out bytes past its range.
  EXPECT_THROW((void)carve.take<float>(1), std::logic_error);
}

TEST(MemoryPlanTest, OffsetsAlignedLifetimesDisjointPeakIsHighWater) {
  const auto layers = vgg16_d_scaled(14, 16);
  const ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kWinograd4);
  const MemoryPlan& mp = plan.memory;
  ASSERT_FALSE(mp.empty());
  ASSERT_EQ(mp.act_layout.size(), layers.size());
  ASSERT_EQ(mp.step_activation.back(), -1);  // last step writes caller's out

  for (const std::size_t images : {std::size_t{1}, std::size_t{3}}) {
    const MemoryPlan::Resolved r = mp.resolve(images);
    ASSERT_EQ(r.offsets.size(), mp.buffers.size());
    std::size_t high_water = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < mp.buffers.size(); ++i) {
      EXPECT_EQ(r.offsets[i] % kSlabAlign, 0u);
      EXPECT_EQ(r.sizes[i] % kSlabAlign, 0u);
      const PlannedBuffer& b = mp.buffers[i];
      EXPECT_EQ(r.sizes[i],
                (b.per_image_bytes * images + b.fixed_bytes + kSlabAlign - 1) /
                    kSlabAlign * kSlabAlign);
      high_water = std::max(high_water, r.offsets[i] + r.sizes[i]);
      total += r.sizes[i];
      // Buffers whose lifetimes overlap must occupy disjoint byte ranges.
      for (std::size_t j = 0; j < i; ++j) {
        const PlannedBuffer& a = mp.buffers[j];
        const bool overlap = a.step_first <= b.step_last &&
                             b.step_first <= a.step_last;
        if (!overlap) continue;
        const bool disjoint =
            r.offsets[i] + r.sizes[i] <= r.offsets[j] ||
            r.offsets[j] + r.sizes[j] <= r.offsets[i];
        EXPECT_TRUE(disjoint) << "buffers " << j << " and " << i;
      }
    }
    EXPECT_EQ(r.peak_bytes, high_water);
    EXPECT_EQ(mp.peak_bytes(images), r.peak_bytes);
    // A 14-layer stack must reuse expired ranges, not stack every buffer.
    EXPECT_LT(r.peak_bytes, total);
  }
}

// Satellite pin: the im2col lowering panel is planned per-layer fixed
// scratch — one slab range per layer, its size independent of how many
// images the chunk walks through the stack (the old code resized a
// heap-owned panel once per image).
TEST(MemoryPlanTest, Im2colPanelIsFixedPerLayerScratch) {
  const auto layers = vgg16_d_scaled(14, 16);
  const ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kIm2col);
  const MemoryPlan& mp = plan.memory;
  ASSERT_FALSE(mp.empty());
  ASSERT_GE(mp.step_scratch.size(), 1u);
  ASSERT_GE(mp.step_scratch[0], 0);  // first layer is a conv: has a panel
  const auto id = static_cast<std::size_t>(mp.step_scratch[0]);
  const PlannedBuffer& panel = mp.buffers[id];
  EXPECT_EQ(panel.per_image_bytes, 0u);
  const auto& c = layers.front().conv;
  const Layout pl = Layout::im2col_panel({1, c.c, c.h, c.w}, c.r, c.pad,
                                         c.pad, /*stride=*/1);
  EXPECT_EQ(panel.fixed_bytes,
            (pl.volume() * sizeof(float) + kSlabAlign - 1) / kSlabAlign *
                kSlabAlign);
  // Image-count invariance of the resolved range (capacity never changes
  // across the images of a chunk).
  EXPECT_EQ(mp.resolve(1).sizes[id], mp.resolve(8).sizes[id]);
}

TEST(MemoryPlanTest, PoolFirstStackHasNoPlanTimeShape) {
  LayerSpec pool;
  pool.kind = LayerKind::kMaxPool;
  const ExecutionPlan plan = uniform_plan({pool}, ConvAlgo::kIm2col);
  // No derivable input shape: the plan carries no memory plan and the
  // builder refuses outright...
  EXPECT_TRUE(plan.memory.empty());
  EXPECT_THROW((void)build_memory_plan(plan), std::invalid_argument);
  // ...but forward() rebuilds from the live input and still serves.
  Rng rng(11);
  Tensor4f in(2, 3, 6, 6);
  rng.fill_uniform(in.flat());
  const Tensor4f got = forward(plan, WeightBank{}, in);
  const Tensor4f want = maxpool2x2(in);
  ASSERT_TRUE(got.shape() == want.shape());
  EXPECT_EQ(std::memcmp(got.flat().data(), want.flat().data(),
                        got.size() * sizeof(float)),
            0);
}

TEST(WorkspaceTest, SlabGrowsMonotonicallyAndBoundsViews) {
  const auto layers = vgg16_d_scaled(14, 16);
  const ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kWinograd4);
  ASSERT_FALSE(plan.memory.empty());
  Workspace ws;
  ws.prepare(plan.memory, 4);
  EXPECT_GE(ws.slab_bytes(), plan.memory.peak_bytes(4));
  const std::size_t big = ws.slab_bytes();

  const MemoryPlan::Resolved r = plan.memory.resolve(4);
  ASSERT_FALSE(r.sizes.empty());
  const std::span<float> view =
      ws.span_of<float>(0, r.sizes[0] / sizeof(float));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.data()) % kSlabAlign, 0u);
  EXPECT_THROW(
      (void)ws.span_of<float>(0, r.sizes[0] / sizeof(float) + 1),
      std::logic_error);

  // A smaller follow-up preparation keeps the big slab (no shrink churn).
  ws.prepare(plan.memory, 1);
  EXPECT_EQ(ws.slab_bytes(), big);
}

TEST(WorkspaceExecution, CallerThreadSlabCoversPlannedPeak) {
  const auto layers = vgg16_d_scaled(14, 16);
  const ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kWinograd4);
  ASSERT_FALSE(plan.memory.empty());
  const auto weights = random_weights(layers, 21);
  Rng rng(22);
  Tensor4f in(1, 3, 16, 16);
  rng.fill_uniform(in.flat());
  (void)forward(plan, weights, in);  // single image runs on this thread
  EXPECT_GE(thread_workspace_bytes(), plan.memory.peak_bytes(1));
}

// The acceptance-critical pin: after warmup (slabs sized, filter
// transforms cached, GEMM packing buffers grown), a batched forward(plan)
// performs ZERO heap allocations on any thread — and stays bit-identical
// call over call. The plan mixes Winograd with an im2col layer so both
// slab-backed conv paths are inside the counted window.
TEST(WorkspaceExecution, WarmForwardPerformsZeroHeapAllocations) {
  runtime::ThreadPool::set_global_threads(2);
  const auto layers = vgg16_d_scaled(14, 16);
  ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kWinograd4);
  for (std::size_t li = 0; li < plan.layers.size(); ++li) {
    if (plan.layers[li].kind == LayerKind::kConv) {
      plan.steps[li].algo = ConvAlgo::kIm2col;  // first conv: panel path
      break;
    }
  }
  replan_layouts(plan);
  ASSERT_FALSE(plan.memory.empty());
  const auto weights = random_weights(layers, 31);
  Rng rng(32);
  Tensor4f in(5, 3, 16, 16);
  rng.fill_uniform(in.flat());

  Tensor4f out;
  forward(plan, weights, in, out);  // cold: allocates out, slabs, caches
  forward(plan, weights, in, out);  // warm every pool participant
  std::vector<float> want(out.flat().begin(), out.flat().end());

  g_allocation_count.store(0);
  g_count_allocations.store(true);
  for (int call = 0; call < 3; ++call) forward(plan, weights, in, out);
  g_count_allocations.store(false);

  EXPECT_EQ(g_allocation_count.load(), 0u);
  EXPECT_EQ(std::memcmp(out.flat().data(), want.data(),
                        want.size() * sizeof(float)),
            0);
  runtime::ThreadPool::set_global_threads(4);
}

}  // namespace
}  // namespace wino::nn
