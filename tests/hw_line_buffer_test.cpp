#include "hw/line_buffer.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "tensor/tensor.hpp"

namespace wino::hw {
namespace {

using tensor::Tensor4f;

struct LbCase {
  int m;
  std::size_t h, w;
  int pad;
};

class LineBufferTiles : public ::testing::TestWithParam<LbCase> {};

// The streaming line buffer must emit exactly the tiles a random-access
// padded gather produces — for every tile position, including the padded
// borders and ragged bottom rows.
TEST_P(LineBufferTiles, MatchesPaddedGather) {
  const auto p = GetParam();
  common::Rng rng(p.m * 100 + p.h);
  Tensor4f img(1, 1, p.h, p.w);
  rng.fill_uniform(img.flat());

  LineBuffer lb(p.w, p.m, 3, p.pad);
  const std::size_t n = static_cast<std::size_t>(p.m) + 2;
  std::vector<float> row(p.w);
  std::vector<float> tile(n * n);

  std::size_t emitted_rows = 0;
  for (std::size_t y = 0; y < p.h; ++y) {
    for (std::size_t x = 0; x < p.w; ++x) row[x] = img(0, 0, y, x);
    lb.push_row(row);

    // Consume tile rows as they become ready (streaming discipline).
    while (emitted_rows < lb.tile_rows_ready()) {
      for (std::size_t tc = 0; tc < lb.tiles_per_row(); ++tc) {
        lb.extract_tile(emitted_rows, tc, tile);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            const auto want = img.padded(
                0, 0,
                static_cast<std::ptrdiff_t>(emitted_rows * p.m) - p.pad +
                    static_cast<std::ptrdiff_t>(i),
                static_cast<std::ptrdiff_t>(tc * p.m) - p.pad +
                    static_cast<std::ptrdiff_t>(j));
            ASSERT_FLOAT_EQ(tile[i * n + j], want)
                << "tile(" << emitted_rows << "," << tc << ") elem " << i
                << "," << j;
          }
        }
      }
      ++emitted_rows;
    }
  }
  // Remaining tile rows touch only below-image padding rows; extract them
  // after the stream ends.
  const std::size_t total = lb.tile_rows_total(p.h);
  for (; emitted_rows < total; ++emitted_rows) {
    for (std::size_t tc = 0; tc < lb.tiles_per_row(); ++tc) {
      lb.extract_tile(emitted_rows, tc, tile);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          const auto want = img.padded(
              0, 0,
              static_cast<std::ptrdiff_t>(emitted_rows * p.m) - p.pad +
                  static_cast<std::ptrdiff_t>(i),
              static_cast<std::ptrdiff_t>(tc * p.m) - p.pad +
                  static_cast<std::ptrdiff_t>(j));
          ASSERT_FLOAT_EQ(tile[i * n + j], want);
        }
      }
    }
  }
  EXPECT_GE(emitted_rows, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LineBufferTiles,
    ::testing::Values(LbCase{2, 8, 8, 1}, LbCase{2, 7, 9, 1},
                      LbCase{3, 9, 9, 1}, LbCase{3, 10, 7, 0},
                      LbCase{4, 8, 8, 1}, LbCase{4, 13, 11, 2},
                      LbCase{2, 4, 4, 0}),
    [](const auto& info) {
      const auto& p = info.param;
      std::string name = "m";
      name += std::to_string(p.m);
      name += "_h";
      name += std::to_string(p.h);
      name += "w";
      name += std::to_string(p.w);
      name += "p";
      name += std::to_string(p.pad);
      return name;
    });

TEST(LineBuffer, StorageIsNRows) {
  const LineBuffer lb(224, 4, 3, 1);
  EXPECT_EQ(lb.storage_elements(), 6u * 224u);
}

TEST(LineBuffer, RejectsBadGeometry) {
  EXPECT_THROW(LineBuffer(0, 2, 3, 1), std::invalid_argument);
  EXPECT_THROW(LineBuffer(8, 0, 3, 1), std::invalid_argument);
  EXPECT_THROW(LineBuffer(8, 2, 3, 3), std::invalid_argument);  // pad >= r
}

TEST(LineBuffer, RejectsWrongRowWidth) {
  LineBuffer lb(8, 2, 3, 1);
  std::vector<float> bad(7);
  EXPECT_THROW(lb.push_row(bad), std::invalid_argument);
}

TEST(LineBuffer, NonSequentialAccessDetected) {
  LineBuffer lb(8, 2, 3, 0);
  std::vector<float> row(8, 1.0F);
  for (int y = 0; y < 8; ++y) lb.push_row(row);
  std::vector<float> tile(16);
  // Tile row 0 needs image rows 0..3, long evicted after 8 pushes.
  EXPECT_THROW(lb.extract_tile(0, 0, tile), std::logic_error);
}

TEST(DoubleBuffer, NoStallWhenLoadFitsUnderCompute) {
  const DoubleBufferController db(/*load=*/100, /*compute=*/300);
  EXPECT_EQ(db.steady_stall(), 0u);
  // 4 groups: initial fill 100, then 4 x 300 back to back.
  EXPECT_EQ(db.run(4), 100u + 4u * 300u);
}

TEST(DoubleBuffer, StallsWhenLoadDominates) {
  const DoubleBufferController db(/*load=*/500, /*compute=*/300);
  EXPECT_EQ(db.steady_stall(), 200u);
  // Compute of group g cannot start before bank g is loaded at
  // (g+1)*500; with compute 300 the loader is the bottleneck:
  // end = 4*500 + 300.
  EXPECT_EQ(db.run(4), 4u * 500u + 300u);
}

TEST(DoubleBuffer, SingleGroupIsFillPlusCompute) {
  const DoubleBufferController db(120, 300);
  EXPECT_EQ(db.run(1), 420u);
  EXPECT_EQ(db.run(0), 0u);
}

}  // namespace
}  // namespace wino::hw
