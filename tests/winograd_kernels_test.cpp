#include "winograd/kernels.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "conv/spatial.hpp"

namespace wino::winograd {
namespace {

using common::Rng;
using conv::conv2d_spatial;
using tensor::Tensor4f;

Tensor4f random_tensor(std::size_t n, std::size_t c, std::size_t h,
                       std::size_t w, Rng& rng) {
  Tensor4f t(n, c, h, w);
  rng.fill_uniform(t.flat());
  return t;
}

// Error tolerance scaled to data magnitude; higher-order transforms have
// larger constants and thus larger float error.
float tol_for(int m) { return m <= 4 ? 2e-4F : 5e-3F; }

TEST(TileTransformer, OneDMatchesDirectCorrelation) {
  Rng rng;
  for (int m = 2; m <= 7; ++m) {
    const TileTransformer xf(transforms(m, 3));
    const auto n = static_cast<std::size_t>(xf.tile());
    std::vector<float> d(n);
    std::vector<float> g(3);
    std::vector<float> y(static_cast<std::size_t>(m));
    rng.fill_uniform(d);
    rng.fill_uniform(g);
    xf.convolve_1d(d, g, y);
    for (std::size_t k = 0; k < y.size(); ++k) {
      float want = 0.0F;
      for (std::size_t j = 0; j < 3; ++j) want += g[j] * d[k + j];
      EXPECT_NEAR(y[k], want, tol_for(m)) << "m=" << m << " k=" << k;
    }
  }
}

TEST(TileTransformer, TileConvolutionMatchesSpatialSingleTile) {
  Rng rng;
  for (int m = 2; m <= 5; ++m) {
    const TileTransformer xf(transforms(m, 3));
    const auto n = static_cast<std::size_t>(xf.tile());
    const auto mm = static_cast<std::size_t>(m);
    std::vector<float> d(n * n);
    std::vector<float> g(9);
    std::vector<float> y(mm * mm);
    rng.fill_uniform(d);
    rng.fill_uniform(g);
    xf.convolve_tile(d, g, y);
    for (std::size_t oy = 0; oy < mm; ++oy) {
      for (std::size_t ox = 0; ox < mm; ++ox) {
        float want = 0.0F;
        for (std::size_t u = 0; u < 3; ++u) {
          for (std::size_t v = 0; v < 3; ++v) {
            want += d[(oy + u) * n + (ox + v)] * g[u * 3 + v];
          }
        }
        EXPECT_NEAR(y[oy * mm + ox], want, tol_for(m)) << "m=" << m;
      }
    }
  }
}

TEST(TileTransformer, FilterTransformIdentityKernel) {
  // A centre-tap delta kernel convolved with anything returns the centre
  // crop; checks transform_filter and inverse wiring end to end.
  const TileTransformer xf(transforms(2, 3));
  std::vector<float> g(9, 0.0F);
  g[4] = 1.0F;  // centre tap
  std::vector<float> d(16);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = static_cast<float>(i);
  std::vector<float> y(4);
  xf.convolve_tile(d, g, y);
  EXPECT_NEAR(y[0], d[1 * 4 + 1], 1e-4F);
  EXPECT_NEAR(y[1], d[1 * 4 + 2], 1e-4F);
  EXPECT_NEAR(y[2], d[2 * 4 + 1], 1e-4F);
  EXPECT_NEAR(y[3], d[2 * 4 + 2], 1e-4F);
}

struct LayerCase {
  int m;
  std::size_t h, w, c, k;
  int pad;
};

class WinogradLayerConv : public ::testing::TestWithParam<LayerCase> {};

TEST_P(WinogradLayerConv, MatchesSpatialConvolution) {
  const auto p = GetParam();
  Rng rng(p.m * 1000 + p.h);
  const Tensor4f input = random_tensor(1, p.c, p.h, p.w, rng);
  const Tensor4f kernels = random_tensor(p.k, p.c, 3, 3, rng);

  const Tensor4f ref =
      conv2d_spatial(input, kernels, {.pad = p.pad, .stride = 1});
  WinogradConvOptions opt;
  opt.pad = p.pad;
  const Tensor4f fast = conv2d_winograd(input, kernels, p.m, opt);

  ASSERT_EQ(fast.shape(), ref.shape());
  const float scale = std::max(1.0F, tensor::max_abs(ref));
  EXPECT_LE(tensor::max_abs_diff(fast, ref) / scale, tol_for(p.m));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WinogradLayerConv,
    ::testing::Values(
        // Exact multiples of m, with and without padding.
        LayerCase{2, 8, 8, 3, 4, 1}, LayerCase{2, 8, 8, 1, 1, 0},
        LayerCase{3, 11, 11, 2, 3, 1}, LayerCase{4, 10, 10, 4, 2, 1},
        LayerCase{4, 6, 6, 1, 1, 0},
        // Ragged sizes exercising edge-tile clipping.
        LayerCase{2, 7, 9, 2, 2, 1}, LayerCase{3, 7, 5, 3, 2, 1},
        LayerCase{4, 9, 7, 2, 2, 1}, LayerCase{5, 13, 11, 2, 2, 1},
        LayerCase{6, 14, 9, 1, 2, 1}, LayerCase{7, 15, 10, 2, 1, 1},
        // Non-square images.
        LayerCase{2, 4, 16, 2, 2, 1}, LayerCase{4, 16, 4, 2, 2, 0}),
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.m) + "_h" + std::to_string(p.h) + "w" +
             std::to_string(p.w) + "c" + std::to_string(p.c) + "k" +
             std::to_string(p.k) + "p" + std::to_string(p.pad);
    });

TEST(WinogradLayer, FiveByFiveKernelsMatchSpatial) {
  // AlexNet's conv2 regime: r = 5, pad = 2 (see nn::alexnet()). The
  // generator, tiling and padding logic must all be r-generic.
  Rng rng(55);
  const Tensor4f input = random_tensor(1, 3, 13, 13, rng);
  const Tensor4f kernels = random_tensor(2, 3, 5, 5, rng);
  const Tensor4f ref =
      conv2d_spatial(input, kernels, {.pad = 2, .stride = 1});
  for (const int m : {2, 4}) {
    WinogradConvOptions opt;
    opt.pad = 2;
    const TileTransformer xf(transforms(m, 5));
    const Tensor4f fast = conv2d_winograd(input, kernels, xf, opt);
    ASSERT_EQ(fast.shape(), ref.shape()) << "m=" << m;
    const float scale = std::max(1.0F, tensor::max_abs(ref));
    EXPECT_LE(tensor::max_abs_diff(fast, ref) / scale, 2e-3F) << "m=" << m;
  }
}

TEST(WinogradLayer, AccumulationOrdersAgree) {
  // Transform-domain accumulation (software) and post-inverse accumulation
  // (the paper's hardware, Fig 7) must agree by linearity of A^T . A.
  Rng rng(99);
  const Tensor4f input = random_tensor(1, 5, 12, 12, rng);
  const Tensor4f kernels = random_tensor(3, 5, 3, 3, rng);
  WinogradConvOptions a;
  a.pad = 1;
  a.accumulation = AccumulationOrder::kTransformDomain;
  WinogradConvOptions b;
  b.pad = 1;
  b.accumulation = AccumulationOrder::kPostInverse;
  const Tensor4f ya = conv2d_winograd(input, kernels, 3, a);
  const Tensor4f yb = conv2d_winograd(input, kernels, 3, b);
  const float scale = std::max(1.0F, tensor::max_abs(ya));
  EXPECT_LE(tensor::max_abs_diff(ya, yb) / scale, 1e-4F);
}

TEST(WinogradLayer, BatchedInputsIndependent) {
  Rng rng(7);
  const Tensor4f batch = random_tensor(3, 2, 8, 8, rng);
  const Tensor4f kernels = random_tensor(2, 2, 3, 3, rng);
  WinogradConvOptions opt;
  opt.pad = 1;
  const Tensor4f all = conv2d_winograd(batch, kernels, 2, opt);

  // Each image processed alone must equal its slice of the batch result.
  for (std::size_t img = 0; img < 3; ++img) {
    Tensor4f one(1, 2, 8, 8);
    for (std::size_t c = 0; c < 2; ++c) {
      for (std::size_t y = 0; y < 8; ++y) {
        for (std::size_t x = 0; x < 8; ++x) {
          one(0, c, y, x) = batch(img, c, y, x);
        }
      }
    }
    const Tensor4f single = conv2d_winograd(one, kernels, 2, opt);
    for (std::size_t k = 0; k < 2; ++k) {
      for (std::size_t y = 0; y < 8; ++y) {
        for (std::size_t x = 0; x < 8; ++x) {
          EXPECT_FLOAT_EQ(single(0, k, y, x), all(img, k, y, x));
        }
      }
    }
  }
}

TEST(WinogradLayer, RejectsChannelMismatch) {
  const Tensor4f input(1, 3, 8, 8);
  const Tensor4f kernels(2, 4, 3, 3);
  EXPECT_THROW(conv2d_winograd(input, kernels, 2), std::invalid_argument);
}

TEST(WinogradLayer, RejectsTooSmallInput) {
  const Tensor4f input(1, 1, 2, 2);
  const Tensor4f kernels(1, 1, 3, 3);
  WinogradConvOptions opt;  // no padding: 2x2 input cannot fit a 3x3 kernel
  EXPECT_THROW(conv2d_winograd(input, kernels, 2, opt),
               std::invalid_argument);
}

TEST(TransformedKernels, LayoutAndValues) {
  Rng rng(3);
  const TileTransformer xf(transforms(2, 3));
  const Tensor4f kernels = random_tensor(2, 3, 3, 3, rng);
  const TransformedKernels tk(xf, kernels);
  EXPECT_EQ(tk.kernel_count(), 2u);
  EXPECT_EQ(tk.channels(), 3u);

  // Spot-check one (k, c) against a direct transform.
  std::vector<float> g(9);
  for (std::size_t u = 0; u < 3; ++u) {
    for (std::size_t v = 0; v < 3; ++v) g[u * 3 + v] = kernels(1, 2, u, v);
  }
  std::vector<float> want(16);
  xf.transform_filter(g, want);
  const auto got = tk.v(1, 2);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_FLOAT_EQ(got[i], want[i]);
  }
}

TEST(Conv2dWinograd, RejectsKernelBankFromDifferentTile) {
  // The cached-transform overload must refuse a TransformedKernels bank
  // built for another F(m): the tile areas differ and reading it with the
  // wrong transformer would run past the per-kernel spans.
  const TileTransformer xf2(transforms(2, 3));
  const TileTransformer xf4(transforms(4, 3));
  tensor::Tensor4f kernels(2, 3, 3, 3, 0.5F);
  const TransformedKernels tk2(xf2, kernels);
  const tensor::Tensor4f input(1, 3, 8, 8, 1.0F);
  EXPECT_THROW(conv2d_winograd(input, tk2, xf4, {}),
               std::invalid_argument);
  EXPECT_NO_THROW(conv2d_winograd(input, tk2, xf2, {}));
}

}  // namespace
}  // namespace wino::winograd
