// Validates the Section III complexity models against the paper's published
// numbers (Fig 1 values, Section IV-C ratios) and their structural
// properties.
#include "dse/complexity.hpp"

#include <gtest/gtest.h>

#include "nn/network.hpp"

namespace wino::dse {
namespace {

// Fig 1 of the paper: multiplications (x 10^9) per VGG16-D group for
// spatial convolution and F(m x m, 3 x 3), m = 2..7. Values transcribed
// from the figure's data labels.
struct Fig1Row {
  int m;
  double conv[5];
};
constexpr Fig1Row kFig1[] = {
    {1, {1.936, 2.775, 4.624, 4.624, 1.387}},
    {2, {0.861, 1.233, 2.055, 2.055, 0.617}},
    {3, {0.598, 0.857, 1.428, 1.428, 0.429}},
    {4, {0.484, 0.694, 1.156, 1.156, 0.347}},
    {5, {0.422, 0.604, 1.007, 1.007, 0.302}},
    {6, {0.383, 0.549, 0.915, 0.915, 0.274}},
    {7, {0.356, 0.510, 0.849, 0.849, 0.255}},
};

class Fig1MultComplexity : public ::testing::TestWithParam<Fig1Row> {};

TEST_P(Fig1MultComplexity, MatchesPaperValues) {
  const auto& row = GetParam();
  const auto& net = nn::vgg16_d();
  for (std::size_t g = 0; g < 5; ++g) {
    const double got =
        static_cast<double>(mult_complexity(net.groups[g], row.m)) / 1e9;
    EXPECT_NEAR(got, row.conv[g], 0.002)
        << "m=" << row.m << " group=" << net.groups[g].name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, Fig1MultComplexity,
                         ::testing::ValuesIn(kFig1),
                         [](const auto& info) {
                           std::string n = "m";
                           n += std::to_string(info.param.m);
                           return n;
                         });

TEST(MultComplexity, SpatialEqualsLayerFormula) {
  for (const auto& l : nn::vgg16_d().all_layers()) {
    EXPECT_EQ(mult_complexity(l, 1), l.spatial_mults());
  }
}

TEST(MultComplexity, DecreasesMonotonicallyWithM) {
  const auto& net = nn::vgg16_d();
  std::size_t prev = mult_complexity(net, 1);
  for (int m = 2; m <= 8; ++m) {
    const std::size_t cur = mult_complexity(net, m);
    EXPECT_LT(cur, prev) << "m=" << m;
    prev = cur;
  }
}

TEST(MultComplexity, RejectsBadM) {
  EXPECT_THROW(mult_complexity(nn::vgg16_d().all_layers()[0], 0),
               std::invalid_argument);
}

TEST(TransformCosts, GeneratedF23MatchesLavinBetaDelta) {
  const TransformCosts c = TransformCosts::from_generated(2, 3);
  EXPECT_EQ(c.beta, 32u);
  EXPECT_EQ(c.delta, 24u);
}

TEST(TransformComplexity, Eq5Structure) {
  // T(D) must not depend on K, T(I) not on C, T(F) not on H*W.
  nn::ConvLayerSpec a;
  a.h = a.w = 28;
  a.c = 16;
  a.k = 32;
  a.r = 3;
  a.pad = 1;
  nn::ConvLayerSpec b = a;
  b.k = 64;
  const TransformCosts costs = TransformCosts::lavin_f2x2_3x3();
  const auto ta = transform_complexity(a, 2, costs);
  const auto tb = transform_complexity(b, 2, costs);
  EXPECT_DOUBLE_EQ(ta.data, tb.data);        // K changed: T(D) invariant
  EXPECT_DOUBLE_EQ(tb.inverse, 2 * ta.inverse);  // T(I) linear in K
  EXPECT_DOUBLE_EQ(tb.filter, 2 * ta.filter);    // T(F) linear in K
}

TEST(TransformComplexity, GrowsWithM) {
  // The paper's Fig 2: net transform complexity increases with m.
  const auto& net = nn::vgg16_d();
  double prev = 0;
  for (int m = 2; m <= 7; ++m) {
    const auto costs = TransformCosts::from_generated(m, 3);
    const double total = transform_complexity(net, m, costs).total();
    EXPECT_GT(total, prev) << "m=" << m;
    prev = total;
  }
}

TEST(ImplementationComplexity, SharedTransformAmortises) {
  // Eq 7: more PEs amortise the data transform; delta dominates as
  // P -> infinity.
  const auto& net = nn::vgg16_d();
  const TransformCosts costs = TransformCosts::lavin_f2x2_3x3();
  const double p1 = implementation_transform_complexity(net, 2, costs, 1);
  const double p16 = implementation_transform_complexity(net, 2, costs, 16);
  const double p64 = implementation_transform_complexity(net, 2, costs, 64);
  EXPECT_GT(p1, p16);
  EXPECT_GT(p16, p64);
  EXPECT_DOUBLE_EQ(p1, reference_transform_complexity(net, 2, costs));
}

TEST(ImplementationComplexity, RejectsZeroPes) {
  EXPECT_THROW(implementation_transform_complexity(
                   nn::vgg16_d(), 2, TransformCosts::lavin_f2x2_3x3(), 0),
               std::invalid_argument);
}

TEST(OverheadRatio, ReproducesSection4CNumbers) {
  // Paper Section IV-C: "for F(2x2, 3x3) using 16 parallel PEs, the
  // increase in transform complexity of our design relative to spatial
  // convolutions is only 1.5x while for the state-of-the-art design [3],
  // this increase is 2.33x."
  const TransformCosts lavin = TransformCosts::lavin_f2x2_3x3();
  EXPECT_NEAR(transform_overhead_ratio(2, 3, lavin, 16, true), 1.5, 1e-9);
  EXPECT_NEAR(transform_overhead_ratio(2, 3, lavin, 16, false), 2.3333,
              1e-3);
}

TEST(TiledComplexity, MatchesContinuousModelOnDivisibleExtents) {
  // When m divides the output extents the exact-tile count equals the
  // paper's continuous H*W/m^2 model; on ragged extents the edge tiles
  // are charged in full, so the tiled count is strictly larger. This gap
  // is what makes the best m layer-dependent for the execution planner.
  nn::ConvLayerSpec layer;
  layer.h = 16;
  layer.w = 16;
  layer.c = 8;
  layer.k = 8;
  layer.r = 3;
  layer.pad = 1;
  for (const int m : {1, 2, 4}) {
    EXPECT_EQ(mult_complexity_tiled(layer, m), mult_complexity(layer, m))
        << "m=" << m;
  }
  layer.h = layer.w = 7;  // ragged for every m > 1
  for (const int m : {2, 3, 4}) {
    EXPECT_GT(mult_complexity_tiled(layer, m), mult_complexity(layer, m))
        << "m=" << m;
  }
  // Exact count for one hand-checked case: 7x7 output under F(4x4) is
  // 2x2 tiles of 6^2 multiplies per (c, k) pair.
  EXPECT_EQ(mult_complexity_tiled(layer, 4),
            4u * 36u * layer.c * layer.k);
  EXPECT_EQ(mult_complexity_tiled(layer, 2, /*batch=*/3),
            3u * mult_complexity_tiled(layer, 2));
  EXPECT_THROW(mult_complexity_tiled(layer, 0), std::invalid_argument);
}

TEST(TiledComplexity, TransformCountsScaleWithExactTiles) {
  nn::ConvLayerSpec layer;
  layer.h = 7;
  layer.w = 7;
  layer.c = 4;
  layer.k = 16;
  layer.r = 3;
  layer.pad = 1;
  const auto costs = TransformCosts::from_generated(4, 3);
  const auto t = transform_complexity_tiled(layer, 4, costs);
  const double tiles = 4.0;  // ceil(7/4)^2
  EXPECT_DOUBLE_EQ(t.data, tiles * static_cast<double>(costs.beta * layer.c));
  EXPECT_DOUBLE_EQ(t.inverse,
                   tiles * static_cast<double>(costs.delta * layer.k));
  EXPECT_DOUBLE_EQ(t.filter,
                   static_cast<double>(costs.gamma * layer.c * layer.k));
  // Data + inverse scale with batch; the filter transform does not (it is
  // precomputed once per weight bank).
  const auto t2 = transform_complexity_tiled(layer, 4, costs, 2);
  EXPECT_DOUBLE_EQ(t2.data, 2 * t.data);
  EXPECT_DOUBLE_EQ(t2.inverse, 2 * t.inverse);
  EXPECT_DOUBLE_EQ(t2.filter, t.filter);
}

TEST(OverheadRatio, SharedAlwaysCheaper) {
  for (int m = 2; m <= 6; ++m) {
    const auto costs = TransformCosts::from_generated(m, 3);
    EXPECT_LT(transform_overhead_ratio(m, 3, costs, 8, true),
              transform_overhead_ratio(m, 3, costs, 8, false))
        << "m=" << m;
  }
}

}  // namespace
}  // namespace wino::dse
