#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace wino::tensor {
namespace {

TEST(Tensor4, ShapeAndVolume) {
  const Tensor4f t(2, 3, 4, 5);
  EXPECT_EQ(t.shape().volume(), 120u);
  EXPECT_EQ(t.size(), 120u);
}

TEST(Tensor4, RowMajorLayout) {
  Tensor4f t(1, 2, 2, 2);
  float v = 0.0F;
  for (auto& x : t.flat()) x = v++;
  // w is fastest, then h, then c.
  EXPECT_FLOAT_EQ(t(0, 0, 0, 1), 1.0F);
  EXPECT_FLOAT_EQ(t(0, 0, 1, 0), 2.0F);
  EXPECT_FLOAT_EQ(t(0, 1, 0, 0), 4.0F);
}

TEST(Tensor4, AtBoundsChecked) {
  Tensor4f t(1, 1, 2, 2);
  EXPECT_THROW(t.at(0, 0, 2, 0), std::out_of_range);
  EXPECT_THROW(t.at(1, 0, 0, 0), std::out_of_range);
}

TEST(Tensor4, PaddedReads) {
  Tensor4f t(1, 1, 2, 2, 1.0F);
  EXPECT_FLOAT_EQ(t.padded(0, 0, -1, 0), 0.0F);
  EXPECT_FLOAT_EQ(t.padded(0, 0, 0, -3), 0.0F);
  EXPECT_FLOAT_EQ(t.padded(0, 0, 2, 0), 0.0F);
  EXPECT_FLOAT_EQ(t.padded(0, 0, 1, 1), 1.0F);
}

TEST(Tensor4, MaxAbsDiff) {
  Tensor4f a(1, 1, 2, 2, 1.0F);
  Tensor4f b(1, 1, 2, 2, 1.0F);
  b(0, 0, 1, 1) = -2.0F;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 3.0F);
  EXPECT_FLOAT_EQ(max_abs(b), 2.0F);
}

TEST(Tensor4, MaxAbsDiffShapeMismatchThrows) {
  const Tensor4f a(1, 1, 2, 2);
  const Tensor4f b(1, 1, 2, 3);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
}

TEST(Tensor4, Equality) {
  Tensor4f a(1, 1, 2, 2, 0.5F);
  Tensor4f b = a;
  EXPECT_EQ(a, b);
  b(0, 0, 0, 0) = 0.25F;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace wino::tensor
