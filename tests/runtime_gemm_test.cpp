// The shared cache-blocked SIMD GEMM core: exhaustive small-shape
// equivalence with the naive reference (bit-for-bit inside one reduction
// panel), alpha/beta paths, SIMD-vs-scalar micro-kernel identity, and
// thread-count determinism.
#include "runtime/gemm.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "runtime/thread_pool.hpp"

namespace wino::runtime {
namespace {

using common::Rng;

// Restores the global pool so test order cannot leak thread counts.
class RuntimeGemm : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::set_global_threads(4); }
};

std::vector<float> random_vec(std::size_t size, Rng& rng) {
  std::vector<float> v(size);
  rng.fill_uniform(v);
  return v;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

TEST_F(RuntimeGemm, ExhaustiveSmallShapesMatchNaiveBitForBit) {
  // Every K here fits one Kc reduction panel, where the contract promises
  // exact equality with the naive local-accumulator loop — across ragged
  // edges (non-multiples of MR/NR), K = 1, single rows and columns, and
  // shapes large enough to leave the direct path for the blocked one.
  const auto [mr, nr, kc, nc] = sgemm_blocking();
  const std::vector<std::size_t> ms = {1, 2, 3, mr - 1, mr, mr + 1,
                                       2 * mr + 1, 33, 48};
  const std::vector<std::size_t> ns = {1, 2, nr - 1, nr, nr + 1,
                                       3 * nr + 5, 64};
  const std::vector<std::size_t> ks = {1, 2, 3, 9, 31, 64, kc};
  Rng rng(101);
  for (const std::size_t m : ms) {
    for (const std::size_t n : ns) {
      for (const std::size_t k : ks) {
        const auto a = random_vec(m * k, rng);
        const auto b = random_vec(k * n, rng);
        std::vector<float> got(m * n, -1.0F);
        std::vector<float> want(m * n, -1.0F);
        sgemm(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F, got.data(), n);
        sgemm_naive(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F,
                    want.data(), n);
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(float)),
                  0)
            << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST_F(RuntimeGemm, AlphaBetaAccumulatePathsMatchNaive) {
  Rng rng(102);
  const std::size_t m = 21;
  const std::size_t n = 37;
  const std::size_t k = 64;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);
  for (const float alpha : {1.0F, 0.5F, -2.0F, 0.0F}) {
    for (const float beta : {0.0F, 1.0F, -0.25F}) {
      auto got = c0;
      auto want = c0;
      sgemm(m, n, k, alpha, a.data(), k, b.data(), n, beta, got.data(), n);
      sgemm_naive(m, n, k, alpha, a.data(), k, b.data(), n, beta,
                  want.data(), n);
      ASSERT_EQ(
          std::memcmp(got.data(), want.data(), got.size() * sizeof(float)),
          0)
          << "alpha=" << alpha << " beta=" << beta;
    }
  }
}

TEST_F(RuntimeGemm, BetaZeroOverwritesStaleContents) {
  Rng rng(103);
  const std::size_t m = 5;
  const std::size_t n = 7;
  const auto a = random_vec(m * 3, rng);
  const auto b = random_vec(3 * n, rng);
  std::vector<float> got(m * n, std::numeric_limits<float>::quiet_NaN());
  std::vector<float> want(m * n);
  sgemm(m, n, 3, 1.0F, a.data(), 3, b.data(), n, 0.0F, got.data(), n);
  sgemm_naive(m, n, 3, 1.0F, a.data(), 3, b.data(), n, 0.0F, want.data(), n);
  expect_bitwise_equal(got, want, "beta=0 must ignore stale C");
}

TEST_F(RuntimeGemm, KZeroScalesByBeta) {
  std::vector<float> c{1.0F, 2.0F, 3.0F, 4.0F};
  sgemm(2, 2, 0, 1.0F, nullptr, 0, nullptr, 0, 0.5F, c.data(), 2);
  EXPECT_EQ(c[0], 0.5F);
  EXPECT_EQ(c[3], 2.0F);
  sgemm(2, 2, 0, 1.0F, nullptr, 0, nullptr, 0, 0.0F, c.data(), 2);
  for (const float v : c) EXPECT_EQ(v, 0.0F);
}

TEST_F(RuntimeGemm, StridedOperandsRespectLeadingDimensions) {
  // Submatrix views: lda/ldb/ldc larger than the logical widths.
  Rng rng(104);
  const std::size_t m = 9;
  const std::size_t n = 11;
  const std::size_t k = 13;
  const std::size_t lda = k + 3;
  const std::size_t ldb = n + 5;
  const std::size_t ldc = n + 2;
  const auto a = random_vec(m * lda, rng);
  const auto b = random_vec(k * ldb, rng);
  std::vector<float> got(m * ldc, 7.0F);
  std::vector<float> want = got;
  sgemm(m, n, k, 1.0F, a.data(), lda, b.data(), ldb, 0.0F, got.data(), ldc);
  sgemm_naive(m, n, k, 1.0F, a.data(), lda, b.data(), ldb, 0.0F,
              want.data(), ldc);
  expect_bitwise_equal(got, want, "strided");
  // Padding columns beyond n must be untouched.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = n; j < ldc; ++j) EXPECT_EQ(got[i * ldc + j], 7.0F);
  }
}

TEST_F(RuntimeGemm, SimdAndScalarKernelsBitIdentical) {
  // The whole point of mul+add (no FMA) micro-kernels: forcing the scalar
  // fallback must reproduce the vectorized result exactly, including the
  // multi-panel K > Kc bracketing. Exercised for real when the suite is
  // compiled with -march=native (the CI native-simd job).
  Rng rng(105);
  const auto [mr, nr, kc, nc] = sgemm_blocking();
  const std::size_t m = 3 * mr + 2;
  const std::size_t n = 2 * nr + 9;
  const std::size_t k = 2 * kc + 17;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> auto_c(m * n);
  std::vector<float> scalar_c(m * n);
  sgemm(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F, auto_c.data(), n,
        GemmKernel::kAuto);
  sgemm(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F, scalar_c.data(), n,
        GemmKernel::kScalar);
  expect_bitwise_equal(auto_c, scalar_c, sgemm_kernel_name());
}

TEST_F(RuntimeGemm, MultiPanelReductionStaysCloseToNaive) {
  // K > Kc brackets the reduction differently from the naive full-K
  // accumulator; the results are equal up to float reassociation error.
  Rng rng(106);
  const std::size_t m = 16;
  const std::size_t n = 24;
  const std::size_t k = 1000;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> got(m * n);
  std::vector<float> want(m * n);
  sgemm(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F, got.data(), n);
  sgemm_naive(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F, want.data(), n);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 64.0F * 1.19209290e-7F * k);
  }
}

TEST_F(RuntimeGemm, ThreadCountInvariantIncludingMultiPanel) {
  Rng rng(107);
  const auto [mr, nr, kc, nc] = sgemm_blocking();
  const std::size_t m = 64;
  const std::size_t n = nc + 33;  // forces a second Nc column block
  const std::size_t k = kc + 64;  // forces a second reduction panel
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  ThreadPool::set_global_threads(1);
  std::vector<float> ref(m * n);
  sgemm(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F, ref.data(), n);
  for (const std::size_t t : {2u, 4u, 7u}) {
    ThreadPool::set_global_threads(t);
    std::vector<float> got(m * n);
    sgemm(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F, got.data(), n);
    ASSERT_EQ(std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)),
              0)
        << "non-deterministic at " << t << " threads";
  }
}

TEST_F(RuntimeGemm, BatchedMatchesPerMemberCalls) {
  Rng rng(108);
  const std::size_t count = 9;
  const std::size_t m = 7;
  const std::size_t n = 31;
  const std::size_t k = 12;
  const auto a = random_vec(count * m * k, rng);
  const auto b = random_vec(count * k * n, rng);
  std::vector<float> got(count * m * n);
  std::vector<float> want(count * m * n);
  sgemm_batched(count, m, n, k, 1.0F, a.data(), k, m * k, b.data(), n, k * n,
                0.0F, got.data(), n, m * n);
  for (std::size_t e = 0; e < count; ++e) {
    sgemm(m, n, k, 1.0F, a.data() + e * m * k, k, b.data() + e * k * n, n,
          0.0F, want.data() + e * m * n, n);
  }
  expect_bitwise_equal(got, want, "batched");
}

TEST_F(RuntimeGemm, NestedInsideParallelForStaysCorrect) {
  // Consumers call sgemm from inside parallel_for bodies (per-image conv,
  // per-tile hw engine); the nested call runs inline and must still equal
  // the top-level result bit-for-bit.
  Rng rng(109);
  const std::size_t m = 40;
  const std::size_t n = 50;
  const std::size_t k = 30;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> ref(m * n);
  sgemm(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F, ref.data(), n);
  std::vector<std::vector<float>> per_slot(4, std::vector<float>(m * n));
  parallel_for(per_slot.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      sgemm(m, n, k, 1.0F, a.data(), k, b.data(), n, 0.0F,
            per_slot[i].data(), n);
    }
  });
  for (const auto& got : per_slot) {
    expect_bitwise_equal(ref, got, "nested");
  }
}

TEST_F(RuntimeGemm, BlockingAndKernelNameAreSane) {
  const auto blocking = sgemm_blocking();
  EXPECT_GE(blocking.mr, 4u);
  EXPECT_GE(blocking.nr, 8u);
  EXPECT_EQ(blocking.kc, 256u);
  const std::string name = sgemm_kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
}

}  // namespace
}  // namespace wino::runtime
