// Property-based (randomised) tests of the core invariants: rational field
// axioms, Cook-Toom correctness over random interpolation points, program/
// matrix equivalence over random matrices, and linearity properties of the
// convolution paths.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "common/rational.hpp"
#include "conv/spatial.hpp"
#include "winograd/cook_toom.hpp"
#include "winograd/kernels.hpp"
#include "winograd/program.hpp"

namespace wino {
namespace {

using common::Matrix;
using common::Rational;
using common::Rng;

Rational random_rational(Rng& rng) {
  const std::int64_t num = rng.uniform_int(-12, 12);
  const std::int64_t den = rng.uniform_int(1, 8);
  return Rational(num, den);
}

TEST(RationalProperties, FieldAxiomsHoldOnRandomTriples) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const Rational a = random_rational(rng);
    const Rational b = random_rational(rng);
    const Rational c = random_rational(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) {
      EXPECT_EQ(a / b * b, a);
    }
  }
}

TEST(RationalProperties, OrderingConsistentWithDoubles) {
  Rng rng(102);
  for (int trial = 0; trial < 500; ++trial) {
    const Rational a = random_rational(rng);
    const Rational b = random_rational(rng);
    if (a.to_double() < b.to_double() - 1e-12) {
      EXPECT_LT(a, b);
    } else if (a.to_double() > b.to_double() + 1e-12) {
      EXPECT_GT(a, b);
    }
  }
}

TEST(CookToomProperties, RandomDistinctPointsAlwaysExact) {
  // Any set of pairwise distinct rational points yields a correct minimal
  // algorithm — exactness is structural, not a property of nice points.
  Rng rng(103);
  for (int trial = 0; trial < 30; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 5));
    const int r = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<Rational> pts;
    while (pts.size() < static_cast<std::size_t>(m + r - 2)) {
      const Rational cand = random_rational(rng);
      bool dup = false;
      for (const auto& p : pts) dup = dup || p == cand;
      if (!dup) pts.push_back(cand);
    }
    const auto t = winograd::cook_toom(m, r, pts);
    // Bilinear check on the full basis.
    const auto n = static_cast<std::size_t>(t.tile());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < static_cast<std::size_t>(r); ++j) {
        std::vector<Rational> d(n);
        std::vector<Rational> g(static_cast<std::size_t>(r));
        d[i] = Rational(1);
        g[j] = Rational(1);
        EXPECT_EQ(winograd::apply_1d_exact(t, d, g),
                  winograd::direct_correlation(d, g, m))
            << "m=" << m << " r=" << r << " trial=" << trial;
      }
    }
  }
}

TEST(ProgramProperties, RandomMatricesMatchOnRandomInputs) {
  Rng rng(104);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const std::size_t cols = static_cast<std::size_t>(rng.uniform_int(1, 6));
    Matrix<Rational> m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        // Sparse-ish random entries including awkward rationals.
        if (rng.uniform_int(0, 2) == 0) continue;
        m(i, j) = random_rational(rng);
      }
    }
    for (const bool cse : {false, true}) {
      const auto prog = winograd::LinearProgram::from_matrix(m, cse);
      std::vector<double> in(cols);
      for (auto& v : in) v = rng.uniform(-3.0F, 3.0F);
      std::vector<double> got(rows);
      prog.execute(in, got);
      for (std::size_t i = 0; i < rows; ++i) {
        double want = 0;
        for (std::size_t j = 0; j < cols; ++j) {
          want += m(i, j).to_double() * in[j];
        }
        EXPECT_NEAR(got[i], want, 1e-9)
            << "trial=" << trial << " cse=" << cse << " row=" << i;
      }
    }
  }
}

TEST(ConvolutionProperties, LinearityInInput) {
  // conv(a*x + y) == a*conv(x) + conv(y) for every path, within float
  // tolerance — the property that justifies transform-domain channel
  // accumulation in the engine.
  Rng rng(105);
  tensor::Tensor4f x(1, 2, 8, 8);
  tensor::Tensor4f y(1, 2, 8, 8);
  tensor::Tensor4f k(2, 2, 3, 3);
  rng.fill_uniform(x.flat());
  rng.fill_uniform(y.flat());
  rng.fill_uniform(k.flat());
  const float alpha = 0.75F;

  tensor::Tensor4f combo(1, 2, 8, 8);
  for (std::size_t i = 0; i < combo.size(); ++i) {
    combo.flat()[i] = alpha * x.flat()[i] + y.flat()[i];
  }
  winograd::WinogradConvOptions opt;
  opt.pad = 1;
  const auto cx = winograd::conv2d_winograd(x, k, 3, opt);
  const auto cy = winograd::conv2d_winograd(y, k, 3, opt);
  const auto cc = winograd::conv2d_winograd(combo, k, 3, opt);
  for (std::size_t i = 0; i < cc.size(); ++i) {
    EXPECT_NEAR(cc.flat()[i], alpha * cx.flat()[i] + cy.flat()[i], 1e-4F);
  }
}

TEST(ConvolutionProperties, ShiftedDeltaKernelTranslates) {
  // Convolving with a one-hot kernel at (u, v) shifts the image; checks
  // the index arithmetic of the tiled path against first principles.
  Rng rng(106);
  tensor::Tensor4f img(1, 1, 9, 9);
  rng.fill_uniform(img.flat());
  for (std::size_t u = 0; u < 3; ++u) {
    for (std::size_t v = 0; v < 3; ++v) {
      tensor::Tensor4f k(1, 1, 3, 3);
      k(0, 0, u, v) = 1.0F;
      winograd::WinogradConvOptions opt;
      opt.pad = 1;
      const auto y = winograd::conv2d_winograd(img, k, 2, opt);
      for (std::size_t oy = 0; oy < 9; ++oy) {
        for (std::size_t ox = 0; ox < 9; ++ox) {
          const auto want = img.padded(
              0, 0,
              static_cast<std::ptrdiff_t>(oy + u) - 1,
              static_cast<std::ptrdiff_t>(ox + v) - 1);
          ASSERT_NEAR(y(0, 0, oy, ox), want, 1e-4F)
              << "u=" << u << " v=" << v;
        }
      }
    }
  }
}

TEST(ConvolutionProperties, ConstantImageYieldsKernelSum) {
  // A constant image convolved (interior pixels) gives sum(kernel) * c.
  tensor::Tensor4f img(1, 1, 10, 10, 2.0F);
  Rng rng(107);
  tensor::Tensor4f k(1, 1, 3, 3);
  rng.fill_uniform(k.flat());
  float ksum = 0;
  for (const float v : k.flat()) ksum += v;
  winograd::WinogradConvOptions opt;
  opt.pad = 0;
  const auto y = winograd::conv2d_winograd(img, k, 4, opt);
  for (std::size_t oy = 0; oy < y.shape().h; ++oy) {
    for (std::size_t ox = 0; ox < y.shape().w; ++ox) {
      ASSERT_NEAR(y(0, 0, oy, ox), 2.0F * ksum, 1e-4F);
    }
  }
}

}  // namespace
}  // namespace wino
