#include <gtest/gtest.h>

#include <sstream>

#include "common/random.hpp"
#include "common/table.hpp"

namespace wino::common {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"a", "long-header", "c"});
  t.row({"12345", "x", "yy"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  // Header, rule, one row.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  // Column 0 width driven by the row value (5 chars + 2 padding).
  EXPECT_EQ(s.find("long-header"), 7u);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-1.5, 3), "-1.500");
}

TEST(TextTable, RowsWithoutHeader) {
  TextTable t;
  t.row({"only", "body"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), "only  body  \n");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DefaultSeedIsFixed) {
  Rng a;
  Rng b(Rng::kDefaultSeed);
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
    const auto n = rng.uniform_int(-5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
  }
}

TEST(Rng, FillUniformCoversSpan) {
  Rng rng(9);
  std::vector<float> v(64, 99.0F);
  rng.fill_uniform(v, 0.0F, 1.0F);
  for (const float x : v) {
    EXPECT_GE(x, 0.0F);
    EXPECT_LT(x, 1.0F);
  }
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(1.0F, 2.0F);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

}  // namespace
}  // namespace wino::common
