// Validates Eqs 8-10 against the paper's published Fig 6 and Table II
// numbers.
#include "dse/performance.hpp"

#include <gtest/gtest.h>

#include "nn/network.hpp"

namespace wino::dse {
namespace {

TEST(PeAllocation, Eq8Flooring) {
  // Table II: 684 = 19 PEs * 36 multipliers for m = 4 on a 700-multiplier
  // budget; 700 = 28 * 25 for m = 3; 688 = 43 * 16 for m = 2.
  const PeAllocation m4 = allocate_pes(4, 3, 700);
  EXPECT_EQ(m4.parallel_pes, 19u);
  EXPECT_EQ(m4.multipliers_used, 684u);
  const PeAllocation m3 = allocate_pes(3, 3, 700);
  EXPECT_EQ(m3.parallel_pes, 28u);
  EXPECT_EQ(m3.multipliers_used, 700u);
  const PeAllocation m2 = allocate_pes(2, 3, 700);
  EXPECT_EQ(m2.parallel_pes, 43u);
  EXPECT_EQ(m2.multipliers_used, 688u);
  // The reference design's budget: 256 -> 16 PEs (Table II column [3]).
  EXPECT_EQ(allocate_pes(2, 3, 256).parallel_pes, 16u);
}

TEST(PeAllocation, ContinuousRelaxation) {
  EXPECT_DOUBLE_EQ(allocate_pes_continuous(2, 3, 256), 16.0);
  EXPECT_NEAR(allocate_pes_continuous(3, 3, 256), 10.24, 1e-9);
}

// Fig 6 of the paper: throughput (GOPS) at 200 MHz. Spatial bars use
// floored P; Winograd bars the continuous relaxation (the published
// values are only consistent with that convention — see DESIGN.md).
struct Fig6Case {
  int m;
  std::size_t mults;
  double gops;
};

class Fig6Throughput : public ::testing::TestWithParam<Fig6Case> {};

TEST_P(Fig6Throughput, MatchesPaper) {
  const auto& c = GetParam();
  const double got = fig6_throughput_ops(c.m, 3, c.mults, 200e6) / 1e9;
  // Relative tolerance absorbs the paper's own 2-decimal rounding.
  EXPECT_NEAR(got / c.gops, 1.0, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Fig6Throughput,
    ::testing::Values(
        Fig6Case{1, 256, 100.80}, Fig6Case{2, 256, 230.40},
        Fig6Case{3, 256, 331.78}, Fig6Case{4, 256, 409.60},
        Fig6Case{5, 256, 470.21}, Fig6Case{6, 256, 518.40},
        Fig6Case{7, 256, 557.56}, Fig6Case{1, 512, 201.60},
        Fig6Case{4, 512, 819.19}, Fig6Case{7, 512, 1115.11},
        Fig6Case{1, 1024, 403.20}, Fig6Case{2, 1024, 921.59},
        Fig6Case{7, 1024, 2230.23}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "_mt" +
             std::to_string(info.param.mults);
    });

// Table II latency rows (ms). Pipeline depth contributes ~ns and is
// invisible at this precision, matching the paper's arithmetic.
struct Table2Latency {
  int m;
  std::size_t pes;
  double conv_ms[5];
  double total_ms;
};

class Table2LatencyTest : public ::testing::TestWithParam<Table2Latency> {};

TEST_P(Table2LatencyTest, MatchesPaper) {
  const auto& c = GetParam();
  const ClockModel clk{200e6, 12};
  const auto& net = nn::vgg16_d();
  double total = 0;
  for (std::size_t g = 0; g < 5; ++g) {
    const double ms =
        group_latency_s(net.groups[g], c.m, c.pes, clk) * 1e3;
    EXPECT_NEAR(ms, c.conv_ms[g], 0.01)
        << "m=" << c.m << " " << net.groups[g].name;
    total += ms;
  }
  EXPECT_NEAR(total, c.total_ms, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table2LatencyTest,
    ::testing::Values(
        // [3]: m=2, 16 PEs (256 multipliers)
        Table2Latency{2, 16, {16.81, 24.08, 40.14, 40.14, 12.04}, 133.22},
        // ours m=2, 43 PEs
        Table2Latency{2, 43, {6.25, 8.96, 14.94, 14.94, 4.48}, 49.57},
        // ours m=3, 28 PEs
        Table2Latency{3, 28, {4.27, 6.12, 10.19, 10.19, 3.06}, 33.83},
        // ours m=4, 19 PEs
        Table2Latency{4, 19, {3.54, 5.07, 8.45, 8.45, 2.54}, 28.05}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "_p" +
             std::to_string(info.param.pes);
    });

TEST(Throughput, Table2Values) {
  const ClockModel clk{200e6, 12};
  const auto& net = nn::vgg16_d();
  EXPECT_NEAR(throughput_ops(net, 2, 16, clk) / 1e9, 230.4, 0.5);
  EXPECT_NEAR(throughput_ops(net, 2, 43, clk) / 1e9, 619.2, 0.5);
  EXPECT_NEAR(throughput_ops(net, 3, 28, clk) / 1e9, 907.2, 0.5);
  EXPECT_NEAR(throughput_ops(net, 4, 19, clk) / 1e9, 1094.3, 0.5);
}

TEST(Throughput, MultiplierEfficiencyTable2) {
  // 0.90 / 1.29 / 1.60 GOPS per multiplier (Table II bottom).
  const ClockModel clk{200e6, 12};
  const auto& net = nn::vgg16_d();
  EXPECT_NEAR(throughput_ops(net, 2, 43, clk) / 1e9 / 688.0, 0.90, 0.01);
  EXPECT_NEAR(throughput_ops(net, 3, 28, clk) / 1e9 / 700.0, 1.29, 0.01);
  EXPECT_NEAR(throughput_ops(net, 4, 19, clk) / 1e9 / 684.0, 1.60, 0.01);
}

TEST(Throughput, HeadlineSpeedup) {
  // "4.75x higher throughput while using only 2.67x more multipliers."
  const ClockModel clk{200e6, 12};
  const auto& net = nn::vgg16_d();
  const double ours = throughput_ops(net, 4, 19, clk);
  const double ref = throughput_ops(net, 2, 16, clk);
  EXPECT_NEAR(ours / ref, 4.75, 0.01);
  EXPECT_NEAR(684.0 / 256.0, 2.67, 0.01);
}

TEST(Latency, PipelineDepthContributesOncePerLayer) {
  nn::ConvLayerSpec tiny;
  tiny.h = tiny.w = 4;
  tiny.c = tiny.k = 1;
  tiny.r = 3;
  tiny.pad = 1;
  const ClockModel clk{1e6, 10};
  // 16 outputs / (4 * 1) = 4 cycles + (10 - 1) fill = 13 cycles.
  EXPECT_NEAR(layer_latency_s(tiny, 2, 1, clk) * 1e6, 13.0, 1e-9);
}

TEST(Latency, RejectsZeroPes) {
  EXPECT_THROW(layer_cycles(nn::vgg16_d().all_layers()[0], 2, 0),
               std::invalid_argument);
}

TEST(SteadyState, LinearInPandQuadraticInM) {
  const double base = steady_state_throughput_ops(2, 3, 4, 200e6);
  EXPECT_DOUBLE_EQ(steady_state_throughput_ops(2, 3, 8, 200e6), 2 * base);
  EXPECT_DOUBLE_EQ(steady_state_throughput_ops(4, 3, 4, 200e6), 4 * base);
}

}  // namespace
}  // namespace wino::dse
