// Cross-module integration tests: compose the micro-architecture
// components the way the full engine does and check end-to-end numerics
// against the spatial-convolution ground truth.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "conv/spatial.hpp"
#include "hw/line_buffer.hpp"
#include "hw/winograd_engine.hpp"
#include "nn/forward.hpp"
#include "quant/fixed_point.hpp"
#include "rtl/netlist.hpp"
#include "tensor/tensor.hpp"
#include "winograd/kernels.hpp"

namespace wino {
namespace {

using common::Rng;
using tensor::Tensor4f;

Tensor4f random_tensor(std::size_t n, std::size_t c, std::size_t h,
                       std::size_t w, Rng& rng) {
  Tensor4f t(n, c, h, w);
  rng.fill_uniform(t.flat());
  return t;
}

// Front end built from LineBuffers (one per channel) feeding the tile
// transformer and a transform-domain accumulator — the Fig 7 pipeline
// assembled by hand from its components — must equal spatial convolution.
TEST(Integration, LineBufferFedWinogradMatchesSpatial) {
  constexpr int kM = 3;
  constexpr int kPad = 1;
  Rng rng(31);
  const std::size_t C = 3;
  const std::size_t K = 2;
  const std::size_t H = 12;
  const std::size_t W = 10;
  const Tensor4f input = random_tensor(1, C, H, W, rng);
  const Tensor4f kernels = random_tensor(K, C, 3, 3, rng);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = kPad, .stride = 1});

  const winograd::TileTransformer xf(winograd::transforms(kM, 3));
  const winograd::TransformedKernels tk(xf, kernels);
  const auto n = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n * n;

  // Stream rows into per-channel line buffers, consuming each tile row as
  // soon as it is ready — the streaming discipline the hardware enforces
  // (the buffer retains only the current (m+r-1)-row window).
  std::vector<hw::LineBuffer> lbs;
  lbs.reserve(C);
  for (std::size_t c = 0; c < C; ++c) lbs.emplace_back(W, kM, 3, kPad);

  Tensor4f out(1, K, H, W);
  const std::size_t tile_rows = lbs[0].tile_rows_total(H);
  const std::size_t tile_cols = lbs[0].tiles_per_row();
  std::vector<float> row(W);
  std::vector<float> d(nsq);
  std::vector<float> u(nsq);
  std::vector<float> acc(nsq);
  std::vector<float> y_tile(static_cast<std::size_t>(kM) * kM);
  std::size_t consumed = 0;

  const auto consume_tile_row = [&](std::size_t tr) {
    for (std::size_t tc = 0; tc < tile_cols; ++tc) {
      // Data transforms once per channel, shared across the K kernels.
      std::vector<std::vector<float>> u_c(C, std::vector<float>(nsq));
      for (std::size_t c = 0; c < C; ++c) {
        lbs[c].extract_tile(tr, tc, d);
        xf.transform_data(d, u_c[c]);
      }
      for (std::size_t k = 0; k < K; ++k) {
        std::fill(acc.begin(), acc.end(), 0.0F);
        for (std::size_t c = 0; c < C; ++c) {
          const auto v = tk.v(k, c);
          for (std::size_t i = 0; i < nsq; ++i) acc[i] += u_c[c][i] * v[i];
        }
        xf.inverse(acc, y_tile);
        for (std::size_t i = 0; i < static_cast<std::size_t>(kM); ++i) {
          const std::size_t oy = tr * kM + i;
          if (oy >= H) break;
          for (std::size_t j = 0; j < static_cast<std::size_t>(kM); ++j) {
            const std::size_t ox = tc * kM + j;
            if (ox >= W) break;
            out(0, k, oy, ox) = y_tile[i * kM + j];
          }
        }
      }
    }
  };

  for (std::size_t y = 0; y < H; ++y) {
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t x = 0; x < W; ++x) row[x] = input(0, c, y, x);
      lbs[c].push_row(row);
    }
    while (consumed < lbs[0].tile_rows_ready()) consume_tile_row(consumed++);
  }
  // Bottom tile rows that only needed below-image padding.
  while (consumed < tile_rows) consume_tile_row(consumed++);

  EXPECT_LE(tensor::max_abs_diff(out, ref), 2e-4F);
}

// The RTL netlist datapath (fixed-point, bit-exact evaluation) assembled
// into a full tile convolution must track spatial convolution within the
// quantisation bound.
TEST(Integration, RtlNetlistTileConvMatchesSpatial) {
  constexpr int kM = 2;
  const auto& t = winograd::transforms(kM, 3);
  const rtl::FixedFormat fmt{30, 14, 14};
  const rtl::Netlist data_nl = rtl::Netlist::from_program(
      winograd::LinearProgram::from_matrix(t.bt, true), fmt);
  const rtl::Netlist filt_nl = rtl::Netlist::from_program(
      winograd::LinearProgram::from_matrix(t.g, true), fmt);
  const rtl::Netlist inv_nl = rtl::Netlist::from_program(
      winograd::LinearProgram::from_matrix(t.at, true), fmt);

  const std::size_t n = 4;
  Rng rng(41);
  std::vector<double> d(n * n);
  std::vector<double> g(9);
  for (auto& v : d) v = rng.uniform();
  for (auto& v : g) v = rng.uniform();

  // 2-D transforms as row pass + column pass of the 1-D netlists.
  const auto apply2d = [](const rtl::Netlist& nl, std::size_t in_n,
                          std::size_t out_n, std::vector<double> grid) {
    // Row pass: out[out_n x in_n].
    std::vector<double> mid(out_n * in_n);
    std::vector<double> vec_in(in_n);
    std::vector<double> vec_out(out_n);
    for (std::size_t col = 0; col < in_n; ++col) {
      for (std::size_t i = 0; i < in_n; ++i) vec_in[i] = grid[i * in_n + col];
      nl.evaluate_real(vec_in, vec_out);
      for (std::size_t i = 0; i < out_n; ++i) mid[i * in_n + col] = vec_out[i];
    }
    std::vector<double> out(out_n * out_n);
    for (std::size_t r = 0; r < out_n; ++r) {
      for (std::size_t i = 0; i < in_n; ++i) vec_in[i] = mid[r * in_n + i];
      nl.evaluate_real(vec_in, vec_out);
      for (std::size_t i = 0; i < out_n; ++i) out[r * out_n + i] = vec_out[i];
    }
    return out;
  };

  // Filter transform operates on a 3x3 grid -> 4x4.
  std::vector<double> v_grid(9);
  {
    // row pass on 3 columns then column pass: reuse apply2d semantics by
    // hand since in/out extents differ per axis.
    std::vector<double> mid(n * 3);
    std::vector<double> in3(3);
    std::vector<double> out4(n);
    for (std::size_t col = 0; col < 3; ++col) {
      for (std::size_t i = 0; i < 3; ++i) in3[i] = g[i * 3 + col];
      filt_nl.evaluate_real(in3, out4);
      for (std::size_t i = 0; i < n; ++i) mid[i * 3 + col] = out4[i];
    }
    v_grid.assign(n * n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < 3; ++i) in3[i] = mid[r * 3 + i];
      filt_nl.evaluate_real(in3, out4);
      for (std::size_t i = 0; i < n; ++i) v_grid[r * n + i] = out4[i];
    }
  }

  const auto u_grid = apply2d(data_nl, n, n, d);
  std::vector<double> m_grid(n * n);
  for (std::size_t i = 0; i < n * n; ++i) m_grid[i] = u_grid[i] * v_grid[i];

  // Inverse: 4x4 -> 2x2 (row pass then column pass, mixed extents).
  std::vector<double> y(4);
  {
    std::vector<double> mid(2 * n);
    std::vector<double> in4(n);
    std::vector<double> out2(2);
    for (std::size_t col = 0; col < n; ++col) {
      for (std::size_t i = 0; i < n; ++i) in4[i] = m_grid[i * n + col];
      inv_nl.evaluate_real(in4, out2);
      for (std::size_t i = 0; i < 2; ++i) mid[i * n + col] = out2[i];
    }
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t i = 0; i < n; ++i) in4[i] = mid[r * n + i];
      inv_nl.evaluate_real(in4, out2);
      for (std::size_t i = 0; i < 2; ++i) y[r * 2 + i] = out2[i];
    }
  }

  for (std::size_t oy = 0; oy < 2; ++oy) {
    for (std::size_t ox = 0; ox < 2; ++ox) {
      double want = 0;
      for (std::size_t u = 0; u < 3; ++u) {
        for (std::size_t v = 0; v < 3; ++v) {
          want += d[(oy + u) * n + (ox + v)] * g[u * 3 + v];
        }
      }
      EXPECT_NEAR(y[oy * 2 + ox], want, 2e-3) << oy << "," << ox;
    }
  }
}

// Simulated hardware vs software Winograd vs quantised datapath on the
// same layer: hardware == software (both fp32), quantised within its
// wordlength bound.
TEST(Integration, AllThreeDatapathsAgree) {
  Rng rng(53);
  const Tensor4f input = random_tensor(1, 4, 12, 12, rng);
  const Tensor4f kernels = random_tensor(3, 4, 3, 3, rng);

  winograd::WinogradConvOptions opt;
  opt.pad = 1;
  const Tensor4f sw = winograd::conv2d_winograd(input, kernels, 2, opt);

  hw::EngineConfig cfg;
  cfg.m = 2;
  cfg.r = 3;
  cfg.parallel_pes = 3;
  const Tensor4f hw_out =
      hw::WinogradEngine(cfg).run_layer(input, kernels, 1).output;

  const quant::FixedPointFormat fmt{20, 12};
  const Tensor4f q =
      quant::conv2d_winograd_quantized(input, kernels, 2, fmt, 1);

  EXPECT_LE(tensor::max_abs_diff(sw, hw_out), 2e-5F);
  const auto e = quant::compare(q, sw);
  EXPECT_LE(e.relative_max(), 0.01F);
}

// Whole scaled network through the simulated hardware, layer by layer,
// against the software forward pass.
TEST(Integration, SimulatedHardwareRunsScaledVggConvStack) {
  Rng rng(61);
  const auto layers = nn::vgg16_d_scaled(14, 32);  // 16x16 input, tiny
  const auto weights = nn::random_weights(layers, 5);
  Tensor4f act(1, 3, 16, 16);
  rng.fill_uniform(act.flat());
  Tensor4f hw_act = act;

  hw::EngineConfig cfg;
  cfg.m = 2;
  cfg.r = 3;
  cfg.parallel_pes = 4;
  const hw::WinogradEngine engine(cfg);

  std::size_t conv_idx = 0;
  std::uint64_t total_cycles = 0;
  for (const auto& l : layers) {
    if (l.kind != nn::LayerKind::kConv) break;  // conv prefix only
    act = nn::run_conv(nn::ConvAlgo::kSpatial, act,
                       weights.conv_kernels[conv_idx], l.conv.pad);
    const auto sim =
        engine.run_layer(hw_act, weights.conv_kernels[conv_idx], l.conv.pad);
    hw_act = sim.output;
    total_cycles += sim.stats.total_cycles;
    ++conv_idx;
    const float scale = std::max(1.0F, tensor::max_abs(act));
    ASSERT_LE(tensor::max_abs_diff(act, hw_act) / scale, 1e-4F)
        << "layer " << conv_idx;
  }
  EXPECT_GE(conv_idx, 2u);
  EXPECT_GT(total_cycles, 0u);
}

}  // namespace
}  // namespace wino
