// Edge-case cross-checks between the spatial, im2col and FFT convolution
// backends: stride > 1, asymmetric padding, and 1x1 / 5x5 kernels. The
// spatial path is ground truth; the others must agree everywhere to fp32
// accumulation tolerance.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "conv/fft.hpp"
#include "conv/im2col.hpp"
#include "conv/spatial.hpp"

namespace wino::conv {
namespace {

using common::Rng;
using tensor::Tensor4f;

Tensor4f random_tensor(std::size_t n, std::size_t c, std::size_t h,
                       std::size_t w, Rng& rng) {
  Tensor4f t(n, c, h, w);
  rng.fill_uniform(t.flat());
  return t;
}

void expect_all_backends_match(const Tensor4f& in, const Tensor4f& k,
                               const SpatialConvOptions& opt,
                               float tol = 1e-4F) {
  const Tensor4f ref = conv2d_spatial(in, k, opt);
  const Tensor4f gemm = conv2d_im2col(in, k, opt);
  const Tensor4f fft = conv2d_fft(in, k, opt);
  ASSERT_EQ(ref.shape(), gemm.shape());
  ASSERT_EQ(ref.shape(), fft.shape());
  EXPECT_LE(tensor::max_abs_diff(ref, gemm), tol);
  EXPECT_LE(tensor::max_abs_diff(ref, fft), tol);
}

TEST(ConvEdgeCases, StrideTwoAndThreeAcrossBackends) {
  Rng rng(31);
  const Tensor4f in = random_tensor(2, 3, 13, 11, rng);
  const Tensor4f k = random_tensor(4, 3, 3, 3, rng);
  for (const int stride : {2, 3}) {
    for (const int pad : {0, 1}) {
      expect_all_backends_match(in, k,
                                {.pad = pad, .stride = stride});
    }
  }
}

TEST(ConvEdgeCases, AsymmetricPaddingAcrossBackends) {
  Rng rng(32);
  const Tensor4f in = random_tensor(1, 2, 9, 9, rng);
  const Tensor4f k = random_tensor(3, 2, 3, 3, rng);
  for (const auto [ph, pw] : {std::pair{0, 1}, {1, 0}, {2, 1}}) {
    SpatialConvOptions opt;
    opt.pad_h = ph;
    opt.pad_w = pw;
    expect_all_backends_match(in, k, opt);
  }
}

TEST(ConvEdgeCases, AsymmetricPaddingOutputShape) {
  const Tensor4f in(1, 1, 8, 8, 1.0F);
  const Tensor4f k(1, 1, 3, 3, 1.0F);
  SpatialConvOptions opt;
  opt.pad_h = 2;
  opt.pad_w = 0;
  const Tensor4f y = conv2d_spatial(in, k, opt);
  EXPECT_EQ(y.shape().h, 10u);
  EXPECT_EQ(y.shape().w, 6u);
  // Fully interior element sees all 9 unit taps.
  EXPECT_FLOAT_EQ(y(0, 0, 4, 2), 9.0F);
  // Top row reads two padded rows: only the kernel's bottom row overlaps.
  EXPECT_FLOAT_EQ(y(0, 0, 0, 2), 3.0F);
}

TEST(ConvEdgeCases, PadFieldStillSymmetricDefault) {
  Rng rng(33);
  const Tensor4f in = random_tensor(1, 1, 7, 7, rng);
  const Tensor4f k = random_tensor(1, 1, 3, 3, rng);
  SpatialConvOptions sym{.pad = 1, .stride = 1};
  SpatialConvOptions expl;
  expl.pad_h = 1;
  expl.pad_w = 1;
  EXPECT_EQ(conv2d_spatial(in, k, sym), conv2d_spatial(in, k, expl));
}

TEST(ConvEdgeCases, OneByOneKernelAcrossBackends) {
  Rng rng(34);
  const Tensor4f in = random_tensor(2, 4, 6, 6, rng);
  const Tensor4f k = random_tensor(3, 4, 1, 1, rng);
  expect_all_backends_match(in, k, {.pad = 0, .stride = 1});
  expect_all_backends_match(in, k, {.pad = 0, .stride = 2});
}

TEST(ConvEdgeCases, OneByOneIsChannelMix) {
  // A 1x1 convolution is a per-pixel channel mix; check one pixel by hand.
  Rng rng(35);
  const Tensor4f in = random_tensor(1, 3, 4, 4, rng);
  const Tensor4f k = random_tensor(2, 3, 1, 1, rng);
  const Tensor4f y = conv2d_spatial(in, k);
  float want = 0.0F;
  for (std::size_t c = 0; c < 3; ++c) {
    want += in(0, c, 2, 1) * k(1, c, 0, 0);
  }
  EXPECT_FLOAT_EQ(y(0, 1, 2, 1), want);
}

TEST(ConvEdgeCases, FiveByFiveAcrossBackends) {
  Rng rng(36);
  const Tensor4f in = random_tensor(1, 2, 12, 12, rng);
  const Tensor4f k = random_tensor(2, 2, 5, 5, rng);
  for (const int pad : {0, 2}) {
    expect_all_backends_match(in, k, {.pad = pad, .stride = 1});
  }
  expect_all_backends_match(in, k, {.pad = 2, .stride = 2});
}

TEST(ConvEdgeCases, PaddingLargerThanKernelAcrossBackends) {
  // pad > r-1 makes border outputs pure zero-padding products; the FFT
  // path must zero-fill samples outside its linear-convolution grid.
  Rng rng(38);
  const Tensor4f in = random_tensor(1, 2, 6, 6, rng);
  const Tensor4f k1 = random_tensor(2, 2, 1, 1, rng);
  expect_all_backends_match(in, k1, {.pad = 1, .stride = 1});
  const Tensor4f k3 = random_tensor(2, 2, 3, 3, rng);
  expect_all_backends_match(in, k3, {.pad = 4, .stride = 1});
  expect_all_backends_match(in, k3, {.pad = 4, .stride = 3});
}

TEST(ConvEdgeCases, FiveByFiveAsymmetricStrided) {
  Rng rng(37);
  const Tensor4f in = random_tensor(1, 2, 14, 10, rng);
  const Tensor4f k = random_tensor(2, 2, 5, 5, rng);
  SpatialConvOptions opt;
  opt.pad_h = 1;
  opt.pad_w = 2;
  opt.stride = 2;
  expect_all_backends_match(in, k, opt);
}

}  // namespace
}  // namespace wino::conv
