// Calibration-persistence contract (nn/calibration_io.*): exact round-trip
// of the measured state through the versioned on-disk format, refusal of
// files keyed to a different CPU signature / code hash / format version,
// graceful fallback on corruption (load fails, nothing half-imported,
// never crashes) — and the acceptance-critical pin that a warm cache lets
// a server register a planned model without running a single
// microbenchmark measurement.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nn/calibration_io.hpp"
#include "nn/network.hpp"
#include "nn/plan.hpp"
#include "serve/inference_server.hpp"

namespace {

using wino::nn::AlgoCalibration;
using wino::nn::Calibration;
using wino::nn::ConvAlgo;
using wino::nn::MeasuredLayerTime;
using wino::nn::MeasuredState;

/// Each test works against its own file in the build directory and starts
/// from cleared in-process caches (they are process-global).
class CalibrationIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wino::nn::clear_measured_state();
    path_ = std::string("calibio_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".winocal";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    wino::nn::clear_measured_state();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string path_;
};

/// A synthetic state with awkward doubles (non-terminating binary
/// fractions, subnormal-ish magnitudes) — exactly what hexfloat
/// serialisation must round-trip bit-for-bit.
MeasuredState synthetic_state() {
  MeasuredState state;
  Calibration cal;
  AlgoCalibration* entries[] = {&cal.spatial,   &cal.im2col,    &cal.fft,
                                &cal.winograd2, &cal.winograd3, &cal.winograd4};
  double base = 1.0 / 3.0;
  for (AlgoCalibration* e : entries) {
    e->ops_small = 1e5 * base;
    e->gflops_small = base;
    e->ops_big = 5e6 * base;
    e->gflops_big = 7.0 * base;
    base *= 1.1;
  }
  state.calibration = cal;
  state.layer_times = {
      {8, 8, 3, 4, 3, 1, ConvAlgo::kIm2col, 1.0 / 7.0},
      {8, 8, 3, 4, 3, 1, ConvAlgo::kWinograd2, 2.5e-4},
      {16, 16, 32, 32, 3, 1, ConvAlgo::kFft, 9.87654321e-3},
  };
  return state;
}

/// Replace one header line of a saved cache file (corruption harness).
void rewrite_line(const std::string& path, const std::string& prefix,
                  const std::string& replacement) {
  std::ifstream in(path);
  std::ostringstream edited;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      edited << replacement << '\n';
    } else {
      edited << line << '\n';
    }
  }
  in.close();
  std::ofstream out(path, std::ios::trunc);
  out << edited.str();
}

TEST_F(CalibrationIoTest, RoundTripIsBitExact) {
  wino::nn::import_measured_state(synthetic_state());
  ASSERT_TRUE(wino::nn::save_measured_state(path_));

  wino::nn::clear_measured_state();
  ASSERT_TRUE(wino::nn::load_measured_state(path_));

  const MeasuredState loaded = wino::nn::export_measured_state();
  const MeasuredState expect = synthetic_state();
  ASSERT_TRUE(loaded.calibration.has_value());
  EXPECT_EQ(*loaded.calibration, *expect.calibration);  // bit-exact doubles
  ASSERT_EQ(loaded.layer_times.size(), expect.layer_times.size());
  // export_measured_state sorts by key; compare as sets via sorted copies.
  auto sorted = expect.layer_times;
  std::sort(sorted.begin(), sorted.end(),
            [](const MeasuredLayerTime& a, const MeasuredLayerTime& b) {
              return std::tie(a.h, a.w, a.c, a.k, a.r, a.pad, a.algo) <
                     std::tie(b.h, b.w, b.c, b.k, b.r, b.pad, b.algo);
            });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(loaded.layer_times[i], sorted[i]);
  }
}

TEST_F(CalibrationIoTest, RejectsMismatchedCpuSignature) {
  wino::nn::import_measured_state(synthetic_state());
  ASSERT_TRUE(wino::nn::save_measured_state(path_));
  rewrite_line(path_, "cpu ", "cpu some other machine | cores=96 | isa=avx512");

  wino::nn::clear_measured_state();
  EXPECT_FALSE(wino::nn::load_measured_state(path_));
  EXPECT_FALSE(wino::nn::plan_cache_stats().calibration_loaded);
  EXPECT_EQ(wino::nn::plan_cache_stats().layer_entries, 0u);
}

TEST_F(CalibrationIoTest, RejectsMismatchedCodeHash) {
  wino::nn::import_measured_state(synthetic_state());
  ASSERT_TRUE(wino::nn::save_measured_state(path_));
  rewrite_line(path_, "code ", "code planner-v0 | some other compiler");

  wino::nn::clear_measured_state();
  EXPECT_FALSE(wino::nn::load_measured_state(path_));
  EXPECT_FALSE(wino::nn::plan_cache_stats().calibration_loaded);
}

TEST_F(CalibrationIoTest, RejectsMismatchedFormatVersion) {
  wino::nn::import_measured_state(synthetic_state());
  ASSERT_TRUE(wino::nn::save_measured_state(path_));
  rewrite_line(path_, "winocal ", "winocal 2");

  wino::nn::clear_measured_state();
  EXPECT_FALSE(wino::nn::load_measured_state(path_));
}

TEST_F(CalibrationIoTest, RejectsCorruptionWithoutPartialImport) {
  wino::nn::import_measured_state(synthetic_state());
  ASSERT_TRUE(wino::nn::save_measured_state(path_));

  // Each corruption: load must fail and import nothing — even when valid
  // lines precede the damage (no half-imported state).
  const auto corrupt_and_check = [&](const std::string& mutation) {
    std::ifstream in(path_);
    std::stringstream content;
    content << in.rdbuf();
    in.close();
    std::string text = content.str();

    std::string damaged;
    if (mutation == "truncate") {
      damaged = text.substr(0, text.find("end"));  // missing sentinel
    } else if (mutation == "garbage_line") {
      const auto pos = text.find("layer ");
      damaged = text.substr(0, pos) + "gibberish 1 2 3\n" + text.substr(pos);
    } else if (mutation == "bad_algo") {
      damaged = text;
      const auto pos = damaged.find("layer ");
      const auto eol = damaged.find('\n', pos);
      damaged.replace(pos, eol - pos, "layer 8 8 3 4 3 1 99 0x1p-4");
    } else {  // negative seconds
      damaged = text;
      const auto pos = damaged.find("layer ");
      const auto eol = damaged.find('\n', pos);
      damaged.replace(pos, eol - pos, "layer 8 8 3 4 3 1 1 -0x1p-4");
    }
    std::ofstream out(path_, std::ios::trunc);
    out << damaged;
    out.close();

    wino::nn::clear_measured_state();
    EXPECT_FALSE(wino::nn::load_measured_state(path_)) << mutation;
    EXPECT_FALSE(wino::nn::plan_cache_stats().calibration_loaded) << mutation;
    EXPECT_EQ(wino::nn::plan_cache_stats().layer_entries, 0u) << mutation;

    // Restore the pristine file for the next mutation.
    std::ofstream restore(path_, std::ios::trunc);
    restore << text;
  };
  corrupt_and_check("truncate");
  corrupt_and_check("garbage_line");
  corrupt_and_check("bad_algo");
  corrupt_and_check("negative_seconds");
}

TEST_F(CalibrationIoTest, MissingFileLoadsNothing) {
  EXPECT_FALSE(wino::nn::load_measured_state("no_such_file.winocal"));
  EXPECT_FALSE(wino::nn::plan_cache_stats().calibration_loaded);
}

TEST_F(CalibrationIoTest, ImportedCalibrationPreemptsProbe) {
  MeasuredState state = synthetic_state();
  wino::nn::import_measured_state(state);
  const auto before = wino::nn::plan_cache_stats();
  // The resident calibration answers without probing.
  const Calibration& cal = wino::nn::measured_calibration();
  EXPECT_EQ(cal, *state.calibration);
  const auto after = wino::nn::plan_cache_stats();
  EXPECT_EQ(after.calibration_probes, before.calibration_probes);
  EXPECT_TRUE(after.calibration_loaded);
}

/// The acceptance pin: a server restarted onto a warm calibration cache
/// registers a planned model without running a single layer measurement —
/// add_model_planned is near-instant.
TEST_F(CalibrationIoTest, WarmServerStartSkipsEveryMeasurement) {
  // One tiny conv layer; its six candidate timings are the entire
  // measured surface plan_execution touches.
  wino::nn::LayerSpec l;
  l.kind = wino::nn::LayerKind::kConv;
  l.conv.name = "tiny";
  l.conv.h = 8;
  l.conv.w = 8;
  l.conv.c = 3;
  l.conv.k = 4;
  const std::vector<wino::nn::LayerSpec> layers = {l};

  // "First boot": a server with a cache path plans the model cold —
  // measuring each candidate — and persists what it learned.
  {
    wino::serve::ServerConfig cfg;
    cfg.calibration_cache_path = path_;
    wino::serve::InferenceServer server(cfg);
    (void)server.add_model_planned("tiny", layers,
                                   wino::nn::random_weights(layers));
    server.shutdown();
  }
  const auto cold = wino::nn::plan_cache_stats();
  EXPECT_GT(cold.layer_measurements, 0u);  // the cold boot really measured

  // "Restart": drop the in-process caches (a new process), boot another
  // server on the same cache file, register the same architecture.
  wino::nn::clear_measured_state();
  {
    wino::serve::ServerConfig cfg;
    cfg.calibration_cache_path = path_;
    wino::serve::InferenceServer server(cfg);
    const auto warm_before = wino::nn::plan_cache_stats();
    EXPECT_GT(warm_before.layer_entries, 0u);  // cache loaded on construct
    (void)server.add_model_planned("tiny", layers,
                                   wino::nn::random_weights(layers));
    const auto warm_after = wino::nn::plan_cache_stats();
    // The acceptance criterion: zero new measurements on the warm path.
    EXPECT_EQ(warm_after.layer_measurements, warm_before.layer_measurements);
    EXPECT_EQ(warm_after.calibration_probes, warm_before.calibration_probes);
    server.shutdown();
  }
}

TEST_F(CalibrationIoTest, SaveIsAtomicReplace) {
  wino::nn::import_measured_state(synthetic_state());
  ASSERT_TRUE(wino::nn::save_measured_state(path_));
  // Saving again over an existing file must succeed (rename replaces) and
  // leave no .tmp sibling behind.
  ASSERT_TRUE(wino::nn::save_measured_state(path_));
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good());
  wino::nn::clear_measured_state();
  EXPECT_TRUE(wino::nn::load_measured_state(path_));
}

TEST_F(CalibrationIoTest, KeysDescribeThisMachineAndBuild) {
  const std::string cpu = wino::nn::calibration_cpu_signature();
  const std::string code = wino::nn::calibration_code_hash();
  EXPECT_NE(cpu.find("cores="), std::string::npos);
  EXPECT_NE(cpu.find("isa="), std::string::npos);
  EXPECT_NE(code.find("planner-v"), std::string::npos);
  // Stable within a process: the same process must accept its own file.
  EXPECT_EQ(cpu, wino::nn::calibration_cpu_signature());
  EXPECT_EQ(code, wino::nn::calibration_code_hash());
}

}  // namespace
