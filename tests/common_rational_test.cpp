#include "common/rational.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace wino::common {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalisesOnConstruction) {
  const Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalisesNegativeDenominator) {
  const Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), RationalError);
}

TEST(Rational, ZeroNumeratorCanonical) {
  const Rational r(0, 17);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), RationalError);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, Reciprocal) {
  EXPECT_EQ(Rational(3, 4).reciprocal(), Rational(4, 3));
  EXPECT_EQ(Rational(-2).reciprocal(), Rational(-1, 2));
  EXPECT_THROW(static_cast<void>(Rational(0).reciprocal()), RationalError);
}

TEST(Rational, Pow) {
  EXPECT_EQ(Rational(2).pow(10), Rational(1024));
  EXPECT_EQ(Rational(1, 2).pow(3), Rational(1, 8));
  EXPECT_EQ(Rational(0).pow(0), Rational(1));  // Vandermonde convention
  EXPECT_EQ(Rational(-2).pow(3), Rational(-8));
  EXPECT_THROW(static_cast<void>(Rational(2).pow(-1)), RationalError);
}

TEST(Rational, Abs) {
  EXPECT_EQ(Rational(-3, 2).abs(), Rational(3, 2));
  EXPECT_EQ(Rational(3, 2).abs(), Rational(3, 2));
}

TEST(Rational, IsPow2Scaled) {
  EXPECT_TRUE(Rational(2).is_pow2_scaled());
  EXPECT_TRUE(Rational(1).is_pow2_scaled());
  EXPECT_TRUE(Rational(-4).is_pow2_scaled());
  EXPECT_TRUE(Rational(1, 2).is_pow2_scaled());
  EXPECT_TRUE(Rational(-1, 8).is_pow2_scaled());
  EXPECT_FALSE(Rational(3).is_pow2_scaled());
  EXPECT_FALSE(Rational(1, 6).is_pow2_scaled());
  EXPECT_FALSE(Rational(0).is_pow2_scaled());
  EXPECT_FALSE(Rational(3, 2).is_pow2_scaled());
}

TEST(Rational, OverflowDetected) {
  const Rational big(std::numeric_limits<std::int64_t>::max());
  EXPECT_THROW(big * big, RationalError);
  EXPECT_THROW(big + Rational(1), RationalError);
}

TEST(Rational, LargeIntermediatesThatCancelAreFine) {
  // (2^40 / 3) * (3 / 2^40) == 1 — intermediates exceed int64 only before
  // gcd reduction, which the __int128 path must absorb.
  const Rational a(std::int64_t{1} << 40, 3);
  const Rational b(3, std::int64_t{1} << 40);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-1, 2).to_string(), "-1/2");
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

}  // namespace
}  // namespace wino::common
