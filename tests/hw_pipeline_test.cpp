#include "hw/pipeline.hpp"

#include <gtest/gtest.h>

#include "winograd/cook_toom.hpp"
#include "winograd/program.hpp"

namespace wino::hw {
namespace {

using winograd::LinearProgram;

TEST(AsapSchedule, DepthMatchesProgramDagDepth) {
  for (int m = 2; m <= 6; ++m) {
    const auto& t = winograd::transforms(m, 3);
    for (const auto* mat : {&t.bt, &t.at}) {
      const LinearProgram prog = LinearProgram::from_matrix(*mat, true);
      const StageSchedule s = asap_schedule(prog);
      EXPECT_EQ(s.stages, prog.dag_depth()) << "m=" << m;
      EXPECT_EQ(s.ops_per_stage.size(), s.stages);
      EXPECT_EQ(s.regs_per_stage.size(), s.stages);
    }
  }
}

TEST(AsapSchedule, OpsPerStageSumToArithmeticOps) {
  const auto& t = winograd::transforms(4, 3);
  const LinearProgram prog = LinearProgram::from_matrix(t.bt, true);
  const StageSchedule s = asap_schedule(prog);
  std::size_t scheduled = 0;
  for (const std::size_t n : s.ops_per_stage) scheduled += n;
  const auto& c = prog.counts();
  EXPECT_EQ(scheduled, c.adds + c.shifts + c.const_mults + c.negs);
}

TEST(AsapSchedule, F23DataTransformIsSingleStage) {
  // Four independent adds: depth 1, all ops in stage 0, four registered
  // outputs at the single boundary.
  const LinearProgram prog =
      LinearProgram::from_matrix(winograd::lavin_f2x2_3x3().bt, true);
  const StageSchedule s = asap_schedule(prog);
  EXPECT_EQ(s.stages, 1u);
  EXPECT_EQ(s.ops_per_stage[0], 4u);
  EXPECT_EQ(s.regs_per_stage[0], 4u);
}

TEST(AsapSchedule, RegistersCoverLiveRanges) {
  // In a chain a -> b -> c with an input also used at the last level, the
  // input must be registered through the intermediate boundaries.
  common::Matrix<common::Rational> m{{1, 1, 0}, {0, 0, 1}};
  // row0 = x0 + x1 (level 1); row1 = x2 (wire). Deepen: use a matrix with
  // forced chaining instead.
  const common::Matrix<common::Rational> chain{{1, 1, 1, 1}};
  const LinearProgram prog = LinearProgram::from_matrix(chain, true);
  const StageSchedule s = asap_schedule(prog);
  // Three chained adds: depth 3; x3 stays live until the last add, so the
  // early boundaries must register it.
  EXPECT_EQ(s.stages, 3u);
  EXPECT_GE(s.regs_per_stage[0], 2u);  // partial sum + at least one operand
  EXPECT_GE(s.total_registers(), 5u);
}

TEST(SteppedPipeline, MatchesAnalyticWhenUncontended) {
  SteppedPipeline::Config c;
  c.issue_count = 1000;
  c.dt_latency = 4;
  c.pe_latency = 8;
  c.outputs_per_issue = 4;
  c.fifo_depth = 256;
  c.writeback_width = 16;  // drains 4x the production rate
  const auto r = SteppedPipeline::run(c);
  EXPECT_EQ(r.issue_stall_cycles, 0u);
  // Issue for 1000 cycles, + pipeline latency, + one drain cycle.
  EXPECT_NEAR(static_cast<double>(r.cycles), 1000.0 + 12.0 + 1.0, 2.0);
}

TEST(SteppedPipeline, NarrowWritebackThrottlesIssue) {
  SteppedPipeline::Config c;
  c.issue_count = 1000;
  c.outputs_per_issue = 4;
  c.writeback_width = 2;  // half the production rate
  c.fifo_depth = 64;
  const auto r = SteppedPipeline::run(c);
  EXPECT_GT(r.issue_stall_cycles, 0u);
  // Steady state limited by writeback: ~2 cycles per issue.
  EXPECT_GT(r.cycles, 1900u);
  EXPECT_LT(r.cycles, 2100u);
}

TEST(SteppedPipeline, FifoNeverOverflows) {
  SteppedPipeline::Config c;
  c.issue_count = 500;
  c.outputs_per_issue = 8;
  c.fifo_depth = 32;
  c.writeback_width = 1;
  const auto r = SteppedPipeline::run(c);
  EXPECT_LE(r.fifo_peak, c.fifo_depth);
}

TEST(SteppedPipeline, MatchedRatesRunStallFreeAtMinimalFifo) {
  SteppedPipeline::Config c;
  c.issue_count = 200;
  c.outputs_per_issue = 4;
  c.writeback_width = 4;  // exactly the production rate
  c.fifo_depth = 64;
  const auto r = SteppedPipeline::run(c);
  EXPECT_EQ(r.issue_stall_cycles, 0u);
}

TEST(SteppedPipeline, RejectsFifoSmallerThanBurst) {
  SteppedPipeline::Config c;
  c.outputs_per_issue = 16;
  c.fifo_depth = 8;
  EXPECT_THROW(SteppedPipeline::run(c), std::invalid_argument);
}

TEST(SteppedPipeline, ZeroIssuesCompleteImmediately) {
  SteppedPipeline::Config c;
  c.issue_count = 0;
  EXPECT_EQ(SteppedPipeline::run(c).cycles, 0u);
}

}  // namespace
}  // namespace wino::hw
