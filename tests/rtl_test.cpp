// RTL backend: netlist lowering correctness (bit-exact fixed-point
// evaluation against the double-precision transform programs) and Verilog
// emission structure.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "rtl/netlist.hpp"
#include "rtl/verilog.hpp"
#include "winograd/cook_toom.hpp"

namespace wino::rtl {
namespace {

using winograd::LinearProgram;

// Quantisation error bound for one netlist evaluation: inputs are exact on
// the grid; every constant multiply contributes <= 2^-cfb relative to its
// operand, every arithmetic shift-right floors once. A loose but safe
// bound is (ops) * (input magnitude) * 2^-frac_bits.
double error_bound(const Netlist& nl, double in_magnitude) {
  const auto s = nl.summary();
  const double ulp = std::pow(2.0, -nl.format().frac_bits);
  const double cq = std::pow(2.0, -nl.format().constant_frac_bits);
  return static_cast<double>(s.adders + s.shifters + 4 * s.multipliers) *
             std::max(1.0, in_magnitude) * 8.0 * (ulp + cq) +
         ulp;
}

class NetlistVsProgram : public ::testing::TestWithParam<int> {};

TEST_P(NetlistVsProgram, DataTransformMatchesProgram) {
  const int m = GetParam();
  const auto& t = winograd::transforms(m, 3);
  for (const auto* mat : {&t.bt, &t.g, &t.at}) {
    const LinearProgram prog = LinearProgram::from_matrix(*mat, true);
    const FixedFormat fmt{28, 12, 14};
    const Netlist nl = Netlist::from_program(prog, fmt);
    common::Rng rng(m);
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<double> in(prog.inputs());
      for (auto& v : in) v = rng.uniform(-4.0F, 4.0F);
      std::vector<double> want(prog.outputs());
      prog.execute(in, want);
      std::vector<double> got(prog.outputs());
      nl.evaluate_real(in, got);
      const double bound = error_bound(nl, 4.0);
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_NEAR(got[i], want[i], bound)
            << "m=" << m << " rows=" << mat->rows() << " out=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, NetlistVsProgram,
                         ::testing::Values(2, 3, 4, 5, 6),
                         [](const auto& info) {
                           std::string n = "m";
                           n += std::to_string(info.param);
                           return n;
                         });

TEST(Netlist, SummaryCountsResources) {
  const auto& t = winograd::transforms(2, 3);
  const LinearProgram prog = LinearProgram::from_matrix(t.bt, true);
  const Netlist nl = Netlist::from_program(prog, FixedFormat{});
  const auto s = nl.summary();
  // F(2,3) B^T is pure adds: 4 adders, nothing else (zero-wire folded).
  EXPECT_EQ(s.adders, 4u);
  EXPECT_EQ(s.multipliers, 0u);
}

TEST(Netlist, ZeroRowReadsZero) {
  common::Matrix<common::Rational> m(2, 2);
  m(1, 1) = common::Rational(1);
  const LinearProgram prog = LinearProgram::from_matrix(m, true);
  const Netlist nl = Netlist::from_program(prog, FixedFormat{});
  std::vector<std::int64_t> in{1024, -2048};
  std::vector<std::int64_t> out(2);
  nl.evaluate(in, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], -2048);
}

TEST(Netlist, WrapsAtWidth) {
  // 8-bit wires: 127 + 1 wraps to -128, as hardware would.
  common::Matrix<common::Rational> m{{1, 1}};
  const LinearProgram prog = LinearProgram::from_matrix(m, true);
  const Netlist nl = Netlist::from_program(prog, FixedFormat{8, 0, 8});
  std::vector<std::int64_t> in{127, 1};
  std::vector<std::int64_t> out(1);
  nl.evaluate(in, out);
  EXPECT_EQ(out[0], -128);
}

TEST(Netlist, RejectsBadFormat) {
  const auto& t = winograd::transforms(2, 3);
  const LinearProgram prog = LinearProgram::from_matrix(t.bt, true);
  EXPECT_THROW(Netlist::from_program(prog, FixedFormat{1, 0, 8}),
               std::invalid_argument);
  EXPECT_THROW(Netlist::from_program(prog, FixedFormat{24, 10, 0}),
               std::invalid_argument);
}

TEST(Netlist, EvaluateSizeChecked) {
  const auto& t = winograd::transforms(2, 3);
  const Netlist nl = Netlist::from_program(
      LinearProgram::from_matrix(t.bt, true), FixedFormat{});
  std::vector<std::int64_t> in(3);  // needs 4
  std::vector<std::int64_t> out(4);
  EXPECT_THROW(nl.evaluate(in, out), std::invalid_argument);
}

TEST(Verilog, TransformModuleStructure) {
  const auto& t = winograd::transforms(2, 3);
  const LinearProgram prog = LinearProgram::from_matrix(t.bt, true);
  const Netlist nl = Netlist::from_program(prog, FixedFormat{24, 10, 12});
  const std::string v = emit_transform_module("bt_f2", nl);
  EXPECT_NE(v.find("module bt_f2"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input  signed [23:0] in_0"), std::string::npos);
  EXPECT_NE(v.find("output signed [23:0] out_3"), std::string::npos);
  // Four adders -> at least four +/- assigns.
  std::size_t ops = 0;
  for (std::size_t pos = 0;
       (pos = v.find(" = t", pos)) != std::string::npos; ++pos) {
    ++ops;
  }
  std::size_t pluses = 0;
  for (const char c : v) pluses += (c == '+' || c == '-');
  EXPECT_GE(pluses, 4u);
}

TEST(Verilog, PeModuleContainsMultArrayAndInverseInstances) {
  const std::string v = emit_pe_module("pe_f4", 4, 3, FixedFormat{});
  EXPECT_NE(v.find("module pe_f4_inverse"), std::string::npos);
  EXPECT_NE(v.find("module pe_f4 ("), std::string::npos);
  // Fig 5's nesting: n row instances + m column instances.
  EXPECT_NE(v.find("for (gr = 0; gr < 6;"), std::string::npos);
  EXPECT_NE(v.find("for (gc = 0; gc < 4;"), std::string::npos);
  EXPECT_NE(v.find("(u[i] * v[i])"), std::string::npos);
}

TEST(Verilog, EngineTopSharesDataTransform) {
  hw::EngineConfig cfg;
  cfg.m = 2;
  cfg.r = 3;
  cfg.parallel_pes = 8;
  const std::string v = emit_engine(cfg, FixedFormat{});
  EXPECT_NE(v.find("module data_transform_1d"), std::string::npos);
  EXPECT_NE(v.find("module winograd_engine #(parameter PES = 8)"),
            std::string::npos);
  // Exactly one shared U bus wired into all PEs.
  EXPECT_NE(v.find("winograd_pe pe_i (.clk(clk), .u(u),"),
            std::string::npos);
  // Both data-transform passes present.
  EXPECT_NE(v.find("begin : dt_rows"), std::string::npos);
  EXPECT_NE(v.find("begin : dt_cols"), std::string::npos);
}

TEST(Verilog, TestbenchIsSelfChecking) {
  const auto& t = winograd::transforms(3, 3);
  const LinearProgram prog = LinearProgram::from_matrix(t.bt, true);
  const Netlist nl = Netlist::from_program(prog, FixedFormat{24, 10, 12});
  const std::string tb =
      emit_transform_testbench("bt_f3", nl, /*vector_count=*/8, /*seed=*/3);
  EXPECT_NE(tb.find("module bt_f3_tb;"), std::string::npos);
  EXPECT_NE(tb.find("bt_f3 dut ("), std::string::npos);
  EXPECT_NE(tb.find("$fatal"), std::string::npos);
  EXPECT_NE(tb.find("TB PASS"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // Eight vectors -> eight settle delays.
  std::size_t settles = 0;
  for (std::size_t pos = 0; (pos = tb.find("#1;", pos)) != std::string::npos;
       ++pos) {
    ++settles;
  }
  EXPECT_EQ(settles, 8u);
  // Every output of every vector is checked.
  std::size_t checks = 0;
  for (std::size_t pos = 0;
       (pos = tb.find("!==", pos)) != std::string::npos; ++pos) {
    ++checks;
  }
  EXPECT_EQ(checks, 8u * nl.outputs().size());
}

TEST(Verilog, TestbenchDeterministicInSeed) {
  const auto& t = winograd::transforms(2, 3);
  const Netlist nl = Netlist::from_program(
      LinearProgram::from_matrix(t.bt, true), FixedFormat{});
  EXPECT_EQ(emit_transform_testbench("x", nl, 4, 7),
            emit_transform_testbench("x", nl, 4, 7));
  EXPECT_NE(emit_transform_testbench("x", nl, 4, 7),
            emit_transform_testbench("x", nl, 4, 8));
}

TEST(Verilog, GeneratedFileIsSelfContained) {
  hw::EngineConfig cfg;
  cfg.m = 3;
  cfg.r = 3;
  cfg.parallel_pes = 4;
  const std::string v = emit_engine(cfg, FixedFormat{});
  // Every instantiated module is defined in the same string.
  for (const char* mod :
       {"data_transform_1d", "winograd_pe_inverse", "winograd_pe",
        "winograd_engine"}) {
    std::string query = "module ";
    query.append(mod);
    EXPECT_NE(v.find(query), std::string::npos) << mod;
  }
  // Balanced module/endmodule.
  std::size_t mods = 0;
  std::size_t ends = 0;
  for (std::size_t pos = 0;
       (pos = v.find("\nmodule ", pos)) != std::string::npos; ++pos) {
    ++mods;
  }
  for (std::size_t pos = 0;
       (pos = v.find("endmodule", pos)) != std::string::npos; ++pos) {
    ++ends;
  }
  // Every module in the emitted file follows a comment line, so counting
  // line-start "module " matches the endmodule count exactly.
  EXPECT_EQ(mods, ends);
}

}  // namespace
}  // namespace wino::rtl
