#include "dse/design_space.hpp"

#include <gtest/gtest.h>

#include "dse/roofline.hpp"
#include "nn/network.hpp"

namespace wino::dse {
namespace {

class DesignSpaceFixture : public ::testing::Test {
 protected:
  DesignSpaceExplorer explorer_{nn::vgg16_d(), fpga::virtex7_485t()};
};

TEST_F(DesignSpaceFixture, EvaluateOursM4MatchesTable2) {
  DesignPoint p;
  p.m = 4;
  const DesignEvaluation ev = explorer_.evaluate(p);
  EXPECT_EQ(ev.parallel_pes, 19u);
  EXPECT_EQ(ev.multipliers, 684u);
  EXPECT_NEAR(ev.total_latency_s * 1e3, 28.05, 0.05);
  EXPECT_NEAR(ev.throughput_ops / 1e9, 1094.3, 1.0);
  EXPECT_NEAR(ev.mult_efficiency / 1e9, 1.60, 0.01);
  EXPECT_EQ(ev.resources.luts, 107839u);
}

TEST_F(DesignSpaceFixture, EvaluateFitsPesWhenUnspecified) {
  DesignPoint p;
  p.m = 2;
  const DesignEvaluation ev = explorer_.evaluate(p);
  EXPECT_EQ(ev.parallel_pes, 43u);
  EXPECT_EQ(ev.multipliers, 688u);
}

TEST_F(DesignSpaceFixture, ExplicitPesRespected) {
  DesignPoint p;
  p.m = 2;
  p.parallel_pes = 16;
  const DesignEvaluation ev = explorer_.evaluate(p);
  EXPECT_EQ(ev.multipliers, 256u);
  EXPECT_NEAR(ev.total_latency_s * 1e3, 133.22, 0.1);  // [3] row
}

TEST_F(DesignSpaceFixture, SweepCoversRequestedRange) {
  const auto evals = explorer_.sweep_m(2, 6);
  EXPECT_EQ(evals.size(), 5u);
  // Throughput grows with m across the paper's studied range.
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_GT(evals[i].throughput_ops, evals[i - 1].throughput_ops);
  }
}

TEST_F(DesignSpaceFixture, GroupLatenciesSumToTotal) {
  DesignPoint p;
  p.m = 3;
  const DesignEvaluation ev = explorer_.evaluate(p);
  ASSERT_EQ(ev.group_latency_s.size(), 5u);
  double sum = 0;
  for (const double g : ev.group_latency_s) sum += g;
  EXPECT_NEAR(sum, ev.total_latency_s, 1e-12);
}

TEST_F(DesignSpaceFixture, ParetoFrontNonDominated) {
  const auto evals = explorer_.sweep_m(2, 6);
  const auto front = DesignSpaceExplorer::pareto_front(evals);
  ASSERT_FALSE(front.empty());
  for (const auto& f : front) {
    for (const auto& e : evals) {
      const bool dominates = e.throughput_ops > f.throughput_ops &&
                             e.power_efficiency > f.power_efficiency;
      EXPECT_FALSE(dominates);
    }
  }
  // The m=4 design has the highest throughput; it must be on the front.
  const auto max_tp = std::max_element(
      evals.begin(), evals.end(), [](const auto& a, const auto& b) {
        return a.throughput_ops < b.throughput_ops;
      });
  EXPECT_TRUE(std::any_of(front.begin(), front.end(), [&](const auto& f) {
    return f.point.m == max_tp->point.m;
  }));
}

TEST_F(DesignSpaceFixture, RejectsUnfittableDesign) {
  DesignPoint p;
  p.m = 40;  // tile 42^2 = 1764 multipliers per PE > device budget
  EXPECT_THROW(explorer_.evaluate(p), std::invalid_argument);
}

TEST(Roofline, ComputeBoundAtHighBandwidth) {
  const auto layer = nn::vgg16_d().all_layers()[1];  // conv1_2
  const RooflinePoint p =
      roofline(layer, 2, 3, 43, 200e6, /*dram=*/1e12);
  EXPECT_FALSE(p.memory_bound);
  EXPECT_DOUBLE_EQ(p.attainable, p.compute_roof);
}

TEST(Roofline, MemoryBoundAtLowBandwidth) {
  const auto layer = nn::vgg16_d().all_layers()[1];
  const RooflinePoint p = roofline(layer, 2, 3, 43, 200e6, /*dram=*/1e6);
  EXPECT_TRUE(p.memory_bound);
  EXPECT_DOUBLE_EQ(p.attainable, p.memory_roof);
  EXPECT_LT(p.attainable, p.compute_roof);
}

TEST(Roofline, RequiredBandwidthIsCrossover) {
  const auto layer = nn::vgg16_d().all_layers()[5];
  const double bw = required_bandwidth(layer, 3, 3, 28, 200e6);
  const RooflinePoint at = roofline(layer, 3, 3, 28, 200e6, bw * 1.001);
  const RooflinePoint below = roofline(layer, 3, 3, 28, 200e6, bw * 0.999);
  EXPECT_FALSE(at.memory_bound);
  EXPECT_TRUE(below.memory_bound);
}

TEST(Roofline, FirstLayerHasHighestIntensityPressure) {
  // conv1_1 has only 3 input channels: few ops per byte of input traffic,
  // so it needs disproportionate bandwidth — the known Winograd corner.
  const auto layers = nn::vgg16_d().all_layers();
  const double ai_first = arithmetic_intensity(layers[0], 4);
  const double ai_mid = arithmetic_intensity(layers[6], 4);
  EXPECT_LT(ai_first, ai_mid);
}

TEST(Roofline, TrafficComponentsPositive) {
  const auto layer = nn::vgg16_d().all_layers()[3];
  const TrafficModel t = layer_traffic(layer, 3);
  EXPECT_GT(t.bytes_in, 0.0);
  EXPECT_GT(t.bytes_kernels, 0.0);
  EXPECT_GT(t.bytes_out, 0.0);
  EXPECT_DOUBLE_EQ(t.total(), t.bytes_in + t.bytes_kernels + t.bytes_out);
}

}  // namespace
}  // namespace wino::dse
