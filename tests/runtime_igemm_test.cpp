#include "runtime/igemm.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "runtime/thread_pool.hpp"

namespace wino::runtime {
namespace {

using common::Rng;

/// Deterministic int8 fill covering the full [-127, 127] range (and a few
/// -128s, which the GEMM must handle even though the quantizer never emits
/// them).
void fill_int8(std::vector<std::int8_t>& v, Rng& rng) {
  for (std::int8_t& x : v) {
    x = static_cast<std::int8_t>(
        static_cast<int>(rng.uniform(-128.0F, 128.0F)));
  }
}

TEST(IGemm, MatchesReferenceExhaustively) {
  // Every (m, n, k) combination memcmp'd against the widening scalar
  // reference: ragged SIMD tails (k % 16 != 0), K=1, single-row/column
  // edges. Exact integer accumulation makes bitwise equality the right
  // oracle — any mismatch is a kernel bug, not a rounding difference.
  Rng rng(42);
  for (const std::size_t m : {1U, 2U, 3U, 5U, 8U, 13U}) {
    for (const std::size_t n : {1U, 2U, 7U, 16U, 33U}) {
      for (const std::size_t k : {1U, 2U, 3U, 31U, 32U, 33U, 64U, 100U}) {
        std::vector<std::int8_t> a(m * k);
        std::vector<std::int8_t> b(n * k);
        fill_int8(a, rng);
        fill_int8(b, rng);
        std::vector<std::int32_t> c(m * n, -1);
        std::vector<std::int32_t> ref(m * n, -2);
        igemm_nt(m, n, k, a.data(), k, b.data(), k, c.data(), n);
        igemm_nt_ref(m, n, k, a.data(), k, b.data(), k, ref.data(), n);
        ASSERT_EQ(0, std::memcmp(c.data(), ref.data(),
                                 c.size() * sizeof(std::int32_t)))
            << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(IGemm, ScalarKernelBitIdenticalToAuto) {
  Rng rng(7);
  const std::size_t m = 9;
  const std::size_t n = 29;
  const std::size_t k = 77;
  std::vector<std::int8_t> a(m * k);
  std::vector<std::int8_t> b(n * k);
  fill_int8(a, rng);
  fill_int8(b, rng);
  std::vector<std::int32_t> c_auto(m * n);
  std::vector<std::int32_t> c_scalar(m * n);
  igemm_nt(m, n, k, a.data(), k, b.data(), k, c_auto.data(), n,
           IGemmKernel::kAuto);
  igemm_nt(m, n, k, a.data(), k, b.data(), k, c_scalar.data(), n,
           IGemmKernel::kScalar);
  EXPECT_EQ(0, std::memcmp(c_auto.data(), c_scalar.data(),
                           c_auto.size() * sizeof(std::int32_t)));
}

TEST(IGemm, ExtremeOperandsExact) {
  // All-(+/-127) operands at a deep K: the largest magnitudes the
  // symmetric quantizer produces, accumulated without wrap.
  const std::size_t k = 4608;  // 512 channels * 3 * 3, the realistic max
  std::vector<std::int8_t> a(k, 127);
  std::vector<std::int8_t> b(k, -127);
  std::int32_t c = 0;
  igemm_nt(1, 1, k, a.data(), k, b.data(), k, &c, 1);
  EXPECT_EQ(c, -127 * 127 * static_cast<std::int32_t>(k));
}

TEST(IGemm, BitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const std::size_t m = 16;
  const std::size_t n = 201;  // enough columns that chunking actually splits
  const std::size_t k = 65;
  std::vector<std::int8_t> a(m * k);
  std::vector<std::int8_t> b(n * k);
  fill_int8(a, rng);
  fill_int8(b, rng);
  std::vector<std::int32_t> base(m * n);
  ThreadPool::set_global_threads(1);
  igemm_nt(m, n, k, a.data(), k, b.data(), k, base.data(), n);
  for (const std::size_t threads : {2U, 7U}) {
    ThreadPool::set_global_threads(threads);
    std::vector<std::int32_t> got(m * n, 0);
    igemm_nt(m, n, k, a.data(), k, b.data(), k, got.data(), n);
    EXPECT_EQ(0, std::memcmp(base.data(), got.data(),
                             base.size() * sizeof(std::int32_t)))
        << "threads=" << threads;
  }
  ThreadPool::set_global_threads(4);  // restore the suite's usual size
}

TEST(IGemm, StridedOperands) {
  // lda/ldb/ldc larger than the logical extents (panels carved from wider
  // buffers) must address identically to the packed case.
  Rng rng(23);
  const std::size_t m = 3;
  const std::size_t n = 5;
  const std::size_t k = 10;
  const std::size_t lda = 13;
  const std::size_t ldb = 17;
  const std::size_t ldc = 8;
  std::vector<std::int8_t> a(m * lda);
  std::vector<std::int8_t> b(n * ldb);
  fill_int8(a, rng);
  fill_int8(b, rng);
  std::vector<std::int32_t> c(m * ldc, 99);
  std::vector<std::int32_t> ref(m * ldc, 99);
  igemm_nt(m, n, k, a.data(), lda, b.data(), ldb, c.data(), ldc);
  igemm_nt_ref(m, n, k, a.data(), lda, b.data(), ldb, ref.data(), ldc);
  EXPECT_EQ(0, std::memcmp(c.data(), ref.data(),
                           c.size() * sizeof(std::int32_t)));
  // Elements past column n in each row are untouched.
  EXPECT_EQ(c[n], 99);
}

TEST(IGemm, RejectsOverdeepReduction) {
  const std::size_t k = kMaxInner + 1;
  std::vector<std::int8_t> a(k, 1);
  std::vector<std::int8_t> b(k, 1);
  std::int32_t c = 0;
  EXPECT_THROW(igemm_nt(1, 1, k, a.data(), k, b.data(), k, &c, 1),
               std::invalid_argument);
}

TEST(IGemm, EmptyExtentsAreNoOps) {
  std::int32_t sentinel = 123;
  igemm_nt(0, 0, 0, nullptr, 0, nullptr, 0, &sentinel, 1);
  EXPECT_EQ(sentinel, 123);
}

TEST(IGemm, KernelNameIsKnown) {
  const std::string name = igemm_kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
}

}  // namespace
}  // namespace wino::runtime
