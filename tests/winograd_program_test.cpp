#include "winograd/program.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "winograd/cook_toom.hpp"
#include "winograd/op_report.hpp"

namespace wino::winograd {
namespace {

using common::Matrix;
using common::Rational;

// Programs must compute exactly the defining matrix-vector product (up to
// float rounding; here entries are small so results are exact in double).
void expect_program_matches_matrix(const Matrix<Rational>& m, bool cse) {
  const LinearProgram p = LinearProgram::from_matrix(m, cse);
  ASSERT_EQ(p.inputs(), m.cols());
  ASSERT_EQ(p.outputs(), m.rows());
  common::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> in(m.cols());
    for (auto& v : in) v = rng.uniform_int(-8, 8);
    std::vector<double> got(m.rows());
    p.execute(in, got);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      double want = 0.0;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        want += m(r, c).to_double() * in[c];
      }
      EXPECT_NEAR(got[r], want, 1e-9) << "row " << r << " cse=" << cse;
    }
  }
}

TEST(LinearProgram, NaiveMatchesMatrix) {
  expect_program_matches_matrix(cook_toom(2, 3).bt, false);
  expect_program_matches_matrix(cook_toom(4, 3).g, false);
  expect_program_matches_matrix(cook_toom(4, 3).at, false);
}

TEST(LinearProgram, CseMatchesMatrix) {
  for (int m = 2; m <= 7; ++m) {
    const TransformSet t = cook_toom(m, 3);
    expect_program_matches_matrix(t.bt, true);
    expect_program_matches_matrix(t.g, true);
    expect_program_matches_matrix(t.at, true);
  }
}

TEST(LinearProgram, ZeroRowYieldsZero) {
  Matrix<Rational> m(2, 3);
  m(1, 0) = Rational(1);
  const LinearProgram p = LinearProgram::from_matrix(m, true);
  std::vector<double> in{3.0, 4.0, 5.0};
  std::vector<double> out(2);
  p.execute(in, out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(LinearProgram, AllNegativeRowUsesSingleNegation) {
  const Matrix<Rational> m{{-1, -1, -1}};
  const LinearProgram p = LinearProgram::from_matrix(m, true);
  EXPECT_EQ(p.counts().adds, 2u);
  EXPECT_EQ(p.counts().negs, 1u);
  std::vector<double> in{1.0, 2.0, 3.0};
  std::vector<double> out(1);
  p.execute(in, out);
  EXPECT_DOUBLE_EQ(out[0], -6.0);
}

TEST(LinearProgram, LavinF23DataTransformCosts4Adds) {
  // B^T rows of F(2,3) each cost one add: the canonical 4-add transform.
  const LinearProgram p =
      LinearProgram::from_matrix(lavin_f2x2_3x3().bt, true);
  EXPECT_EQ(p.counts().adds, 4u);
  EXPECT_EQ(p.counts().shifts, 0u);
  EXPECT_EQ(p.counts().const_mults, 0u);
}

TEST(LinearProgram, LavinF23InverseTransformCosts4Adds) {
  const LinearProgram p =
      LinearProgram::from_matrix(lavin_f2x2_3x3().at, true);
  EXPECT_EQ(p.counts().adds, 4u);
  EXPECT_EQ(p.counts().const_mults, 0u);
}

TEST(LinearProgram, LavinF23FilterTransformSharesG0PlusG2) {
  // Rows (g0 +- g1 + g2)/2 share g0+g2: 3 adds + 2 halvings (shifts).
  const LinearProgram p = LinearProgram::from_matrix(lavin_f2x2_3x3().g, true);
  EXPECT_EQ(p.counts().adds, 3u);
  EXPECT_EQ(p.counts().shifts, 2u);
  EXPECT_EQ(p.counts().const_mults, 0u);
}

TEST(LinearProgram, CseNeverCostsMoreThanNaive) {
  for (int m = 2; m <= 7; ++m) {
    const TransformSet t = cook_toom(m, 3);
    for (const auto* mat : {&t.bt, &t.g, &t.at}) {
      const auto naive = LinearProgram::from_matrix(*mat, false).counts();
      const auto cse = LinearProgram::from_matrix(*mat, true).counts();
      EXPECT_LE(cse.flops(), naive.flops())
          << "m=" << m << " rows=" << mat->rows();
    }
  }
}

TEST(LinearProgram, DagDepthPositiveAndBounded) {
  const LinearProgram p =
      LinearProgram::from_matrix(cook_toom(4, 3).bt, true);
  EXPECT_GE(p.dag_depth(), 1u);
  // Depth can never exceed the op count.
  EXPECT_LE(p.dag_depth(), p.ops().size());
}

TEST(LinearProgram, PowerOfTwoConstantsClassifiedAsShifts) {
  const Matrix<Rational> m{{Rational(4), Rational(1, 2)},
                           {Rational(3), Rational(0)}};
  const LinearProgram p = LinearProgram::from_matrix(m, false);
  EXPECT_EQ(p.counts().shifts, 2u);       // *4 and *1/2
  EXPECT_EQ(p.counts().const_mults, 1u);  // *3
}

TEST(OpReport, TwoDCountsScaleFromOneD) {
  const TransformOpReport rep = transform_op_report(2, 3);
  const auto n = 4u;  // tile
  EXPECT_EQ(rep.data_2d.adds, rep.data_1d.adds * 2 * n);
  EXPECT_EQ(rep.inverse_2d.adds, rep.inverse_1d.adds * (n + 2));
  EXPECT_EQ(rep.filter_2d.adds, rep.filter_1d.adds * (n + 3));
}

TEST(OpReport, F23MatchesLavinPublishedBetaDelta) {
  // Lavin's Table: beta = 32, delta = 24 for F(2x2, 3x3).
  const TransformOpReport rep = transform_op_report(2, 3);
  EXPECT_EQ(rep.beta(), 32u);
  EXPECT_EQ(rep.delta(), 24u);
}

TEST(OpReport, ComplexityGrowsWithM) {
  std::size_t prev_beta = 0;
  std::size_t prev_delta = 0;
  for (int m = 2; m <= 7; ++m) {
    const TransformOpReport rep = transform_op_report(m, 3);
    EXPECT_GT(rep.beta(), prev_beta) << "m=" << m;
    EXPECT_GT(rep.delta(), prev_delta) << "m=" << m;
    prev_beta = rep.beta();
    prev_delta = rep.delta();
  }
}

TEST(OpReport, ToStringListsOps) {
  const LinearProgram p =
      LinearProgram::from_matrix(lavin_f2x2_3x3().bt, true);
  const std::string s = p.to_string();
  EXPECT_NE(s.find("outputs:"), std::string::npos);
  EXPECT_NE(s.find(" - "), std::string::npos);
}

}  // namespace
}  // namespace wino::winograd
