// The cycle-level engine simulator: functional correctness against spatial
// convolution, and cycle accounting against the paper's Eq 9.
#include "hw/winograd_engine.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "conv/spatial.hpp"
#include "dse/performance.hpp"

namespace wino::hw {
namespace {

using common::Rng;
using tensor::Tensor4f;

Tensor4f random_tensor(std::size_t n, std::size_t c, std::size_t h,
                       std::size_t w, Rng& rng) {
  Tensor4f t(n, c, h, w);
  rng.fill_uniform(t.flat());
  return t;
}

EngineConfig small_engine(int m, std::size_t pes) {
  EngineConfig c;
  c.m = m;
  c.r = 3;
  c.parallel_pes = pes;
  return c.resolved();
}

struct HwCase {
  int m;
  std::size_t pes;
  std::size_t h, w, c, k;
  int pad;
};

class EngineFunctional : public ::testing::TestWithParam<HwCase> {};

TEST_P(EngineFunctional, OutputMatchesSpatialConvolution) {
  const auto p = GetParam();
  Rng rng(p.m * 31 + p.k);
  const Tensor4f input = random_tensor(1, p.c, p.h, p.w, rng);
  const Tensor4f kernels = random_tensor(p.k, p.c, 3, 3, rng);

  const WinogradEngine engine(small_engine(p.m, p.pes));
  const SimResult sim = engine.run_layer(input, kernels, p.pad);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = p.pad, .stride = 1});

  ASSERT_EQ(sim.output.shape(), ref.shape());
  const float scale = std::max(1.0F, tensor::max_abs(ref));
  EXPECT_LE(tensor::max_abs_diff(sim.output, ref) / scale, 5e-4F);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineFunctional,
    ::testing::Values(
        HwCase{2, 2, 8, 8, 3, 4, 1},    // K multiple of P
        HwCase{2, 3, 8, 8, 2, 7, 1},    // partial last group
        HwCase{3, 4, 9, 9, 3, 4, 1},    // m=3 exact tiling
        HwCase{3, 2, 10, 7, 2, 5, 1},   // ragged tiles + partial group
        HwCase{4, 4, 8, 8, 4, 8, 1},    // m=4
        HwCase{4, 1, 6, 10, 2, 3, 0},   // single PE, no padding
        HwCase{2, 8, 12, 12, 1, 2, 1}), // more PEs than kernels
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.m) + "p" + std::to_string(p.pes) + "_h" +
             std::to_string(p.h) + "w" + std::to_string(p.w) + "c" +
             std::to_string(p.c) + "k" + std::to_string(p.k) + "pad" +
             std::to_string(p.pad);
    });

TEST(EngineTiming, MatchesEq9WhenDivisible) {
  // H = W = 8, m = 2, C = 4, K = 8, P = 4:
  // Eq 9 cycles = NHWCK/(m^2 P) + Dp - 1 = 8*8*4*8/(4*4) + Dp - 1.
  const EngineConfig cfg = small_engine(2, 4);
  const WinogradEngine engine(cfg);
  nn::ConvLayerSpec layer;
  layer.h = layer.w = 8;
  layer.c = 4;
  layer.k = 8;
  layer.r = 3;
  layer.pad = 1;
  const SimStats s = engine.run_layer_timing(layer);
  const std::uint64_t eq9_issue = 8 * 8 * 4 * 8 / (4 * 4);
  EXPECT_EQ(s.issue_cycles, eq9_issue);
  EXPECT_EQ(s.stall_cycles, 0u);
  EXPECT_EQ(s.total_cycles, eq9_issue + cfg.pipeline_depth() - 1);
}

TEST(EngineTiming, VggTotalCyclesMatchAnalyticModel) {
  // Whole-VGG timing-only simulation must agree with the Eq 9 analytic
  // latency model (both at ample bandwidth): issue cycles identical,
  // pipeline fill once per layer.
  for (const auto& [m, pes] : {std::pair{2, 43u}, {3, 28u}, {4, 19u}}) {
    EngineConfig cfg = small_engine(m, pes);
    const WinogradEngine engine(cfg);
    const auto& net = nn::vgg16_d();
    const SimStats s = engine.run_workload_timing(net);

    double analytic_cycles = 0;
    for (const auto& l : net.all_layers()) {
      analytic_cycles += dse::layer_cycles(l, m, pes);
    }
    // Simulated issue cycles >= analytic: the simulator pays for edge
    // tiles (224/3 does not divide) and partial kernel groups (VGG's K of
    // 64..512 is never a multiple of P = 28) that Eq 9's continuous model
    // ignores. Measured overheads: ~4% (m=2, P=43), ~18% (m=3, P=28),
    // ~7% (m=4, P=19) — recorded in EXPERIMENTS.md as a deviation of the
    // paper's analytic latency from a cycle-exact execution.
    EXPECT_GE(static_cast<double>(s.issue_cycles), analytic_cycles * 0.999);
    EXPECT_LE(static_cast<double>(s.issue_cycles), analytic_cycles * 1.20)
        << "m=" << m;
    EXPECT_EQ(s.pipeline_fill, 13 * (cfg.pipeline_depth() - 1));
  }
}

TEST(EngineTiming, Table2LatencyReproducedBySimulator) {
  // m = 2, P = 43 on VGG16-D: paper reports 49.57 ms; the simulator's
  // exact tiling (224/2 divides) reproduces it.
  const WinogradEngine engine(small_engine(2, 43));
  const SimStats s = engine.run_workload_timing(nn::vgg16_d());
  // 688 multipliers is not 43 whole kernel groups everywhere: K of 64..512
  // is not divisible by 43, so the simulator charges idle PE slots that
  // Eq 9's continuous model ignores. Check the Eq-9-comparable bound.
  const double ms = s.latency_s(200e6) * 1e3;
  EXPECT_GT(ms, 49.0);
  EXPECT_LT(ms, 54.0);
}

TEST(EngineTiming, PartialGroupsWastePes) {
  nn::ConvLayerSpec layer;
  layer.h = layer.w = 8;
  layer.c = 2;
  layer.k = 5;  // P = 4 -> 2 groups, 3 idle PEs in the second
  layer.r = 3;
  layer.pad = 1;
  const WinogradEngine engine(small_engine(2, 4));
  const SimStats s = engine.run_layer_timing(layer);
  EXPECT_EQ(s.kernel_groups, 2u);
  EXPECT_EQ(s.wasted_pe_slots, 3u * s.tiles * 2u);
  EXPECT_NEAR(s.pe_utilization, 5.0 / 8.0, 1e-12);
}

TEST(EngineTiming, BandwidthStallsAppearWhenStarved) {
  nn::ConvLayerSpec layer;
  layer.h = layer.w = 32;
  layer.c = 8;
  layer.k = 8;
  layer.r = 3;
  layer.pad = 1;
  EngineConfig cfg = small_engine(2, 8);
  cfg.dram_bytes_per_cycle = 1e18;
  const SimStats ample = WinogradEngine(cfg).run_layer_timing(layer);
  EXPECT_EQ(ample.stall_cycles, 0u);

  cfg.dram_bytes_per_cycle = 1.0;  // 1 byte/cycle: severely starved
  const SimStats starved = WinogradEngine(cfg).run_layer_timing(layer);
  EXPECT_GT(starved.stall_cycles, 0u);
  EXPECT_GT(starved.total_cycles, ample.total_cycles);
}

TEST(EngineTiming, DoubleBufferingHidesRefills) {
  nn::ConvLayerSpec layer;
  layer.h = layer.w = 32;
  layer.c = 8;
  layer.k = 16;
  layer.r = 3;
  layer.pad = 1;
  EngineConfig cfg = small_engine(2, 8);
  cfg.dram_bytes_per_cycle = 64.0;
  cfg.double_buffering = true;
  const SimStats with_db = WinogradEngine(cfg).run_layer_timing(layer);
  cfg.double_buffering = false;
  const SimStats without = WinogradEngine(cfg).run_layer_timing(layer);
  EXPECT_LE(with_db.stall_cycles, without.stall_cycles);
  EXPECT_GT(without.stall_cycles, 0u);
}

TEST(EngineTiming, DramTrafficAccounted) {
  nn::ConvLayerSpec layer;
  layer.h = layer.w = 8;
  layer.c = 2;
  layer.k = 4;
  layer.r = 3;
  layer.pad = 1;
  const WinogradEngine engine(small_engine(2, 4));
  const SimStats s = engine.run_layer_timing(layer);
  // One group: input (8*8*2) + kernels (4*2*16) + output (8*8*4), fp32.
  const double expect = (8 * 8 * 2 + 4 * 2 * 16 + 8 * 8 * 4) * 4.0;
  EXPECT_DOUBLE_EQ(s.dram_bytes, expect);
}

TEST(EngineConfigTest, PipelineDepthDerivedFromDagDepths) {
  const EngineConfig cfg = small_engine(2, 1);
  // F(2,3): data depth 1, inverse depth 2 -> 2*1 + 3 + 2*2 + 1 = 10.
  EXPECT_EQ(cfg.pipeline_depth(), 10u);
}

TEST(EngineConfigTest, ProposedEngineUsesEq8) {
  const EngineConfig cfg = proposed_engine(4, 700);
  EXPECT_EQ(cfg.parallel_pes, 19u);
  EXPECT_EQ(cfg.m, 4);
  const EngineConfig ref = reference_engine(256);
  EXPECT_EQ(ref.parallel_pes, 16u);
  EXPECT_EQ(ref.style, fpga::EngineStyle::kPerPeDataTransform);
}

TEST(EngineConfigTest, RejectsInvalid) {
  EngineConfig cfg;
  cfg.parallel_pes = 0;
  EXPECT_THROW(WinogradEngine{cfg}, std::invalid_argument);
  EXPECT_THROW(proposed_engine(4, 10), std::invalid_argument);
}

TEST(Engine, TimingOnlyModeSkipsOutput) {
  Rng rng(1);
  const Tensor4f input = random_tensor(1, 2, 8, 8, rng);
  const Tensor4f kernels = random_tensor(2, 2, 3, 3, rng);
  const WinogradEngine engine(small_engine(2, 2));
  const SimResult r =
      engine.run_layer(input, kernels, 1, SimMode::kTimingOnly);
  EXPECT_TRUE(r.output.empty());
  EXPECT_GT(r.stats.total_cycles, 0u);
}

TEST(Engine, RejectsMismatchedKernels) {
  const WinogradEngine engine(small_engine(2, 2));
  const Tensor4f input(1, 2, 8, 8);
  const Tensor4f bad_c(2, 3, 3, 3);
  EXPECT_THROW(engine.run_layer(input, bad_c, 1), std::invalid_argument);
  const Tensor4f bad_r(2, 2, 5, 5);
  EXPECT_THROW(engine.run_layer(input, bad_r, 1), std::invalid_argument);
}

TEST(Engine, FiveByFiveKernelEngine) {
  // An F(2x2, 5x5) engine (AlexNet conv2 class): datapath must stay
  // correct with the larger tile and 49-multiplier PEs.
  Rng rng(57);
  const Tensor4f input = random_tensor(1, 2, 10, 10, rng);
  const Tensor4f kernels = random_tensor(3, 2, 5, 5, rng);
  EngineConfig cfg;
  cfg.m = 2;
  cfg.r = 5;
  cfg.parallel_pes = 2;
  const WinogradEngine engine(cfg);
  const SimResult sim = engine.run_layer(input, kernels, /*pad=*/2);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = 2, .stride = 1});
  const float scale = std::max(1.0F, tensor::max_abs(ref));
  EXPECT_LE(tensor::max_abs_diff(sim.output, ref) / scale, 2e-3F);
  // Tile is (2 + 5 - 1)^2 = 36 multipliers per PE.
  EXPECT_EQ(cfg.tile(), 6u);
}

TEST(Engine, BatchProcessing) {
  Rng rng(9);
  const Tensor4f input = random_tensor(2, 2, 8, 8, rng);
  const Tensor4f kernels = random_tensor(3, 2, 3, 3, rng);
  const WinogradEngine engine(small_engine(2, 2));
  const SimResult sim = engine.run_layer(input, kernels, 1);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = 1, .stride = 1});
  EXPECT_LE(tensor::max_abs_diff(sim.output, ref), 1e-3F);
  // Batch doubles the tiles.
  nn::ConvLayerSpec layer;
  layer.h = layer.w = 8;
  layer.c = 2;
  layer.k = 3;
  layer.r = 3;
  layer.pad = 1;
  EXPECT_EQ(engine.run_layer_timing(layer, 2).tiles,
            2 * engine.run_layer_timing(layer, 1).tiles);
}

}  // namespace
}  // namespace wino::hw
