// Fused tile-block pipeline contract (the cache-resident Winograd
// executor): the blocked scratch engages a gather -> coordinate-GEMM ->
// inverse pipeline that must stay BIT-identical to the per-tile walk —
// same per-element accumulation chains, only regrouped across independent
// tile columns — at every tile edge, ragged shape, batch size, thread
// count and block boundary placement, in fp32 and int8 forms. Also pins
// the planner side: peak-neutral block sizing (fused scratch never grows
// the slab high-water mark) and the per-model batch ceiling the serving
// layer clamps assembly to.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "common/random.hpp"
#include "nn/forward.hpp"
#include "nn/memory_plan.hpp"
#include "nn/plan.hpp"
#include "quant/int8.hpp"
#include "runtime/clock.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/inference_server.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"
#include "winograd/kernels.hpp"

namespace {

using wino::common::Rng;
using wino::runtime::ManualClock;
using wino::runtime::ThreadPool;
using wino::tensor::Layout;
using wino::tensor::Tensor4f;
using wino::winograd::AccumulationOrder;
using wino::winograd::conv2d_winograd;
using wino::winograd::conv2d_winograd_layout;
using wino::winograd::conv2d_winograd_layout_into;
using wino::winograd::TileTransformer;
using wino::winograd::TransformedKernels;
using wino::winograd::transforms;
using wino::winograd::WinogradConvOptions;
using wino::winograd::WinogradScratch;

Tensor4f random_tensor(std::size_t n, std::size_t c, std::size_t h,
                       std::size_t w, Rng& rng) {
  Tensor4f t(n, c, h, w);
  rng.fill_uniform(t.flat());
  return t;
}

bool bit_identical(const Tensor4f& a, const Tensor4f& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.size() * sizeof(float)) == 0;
}

/// Heap-backed WinogradScratch in either executor mode: block == 0 builds
/// the per-tile spans (u_all/prod), block >= 2 the fused blocked bank
/// (u_blk/acc_blk) — the same extents nn::carve_winograd_scratch hands out.
struct OwnedScratch {
  std::vector<float> f;
  std::vector<std::size_t> idx;
  WinogradScratch s;
};

OwnedScratch make_scratch(std::size_t channels, std::size_t n,
                          std::size_t mm, std::size_t block) {
  const std::size_t nsq = n * n;
  const std::size_t bank =
      block >= 2 ? channels * nsq * block + nsq * block : channels * nsq + nsq;
  OwnedScratch o;
  o.f.resize(nsq + bank + nsq + 2 * mm * mm);
  o.idx.resize(3 * n);
  float* f = o.f.data();
  o.s.d = {f, nsq};
  f += nsq;
  if (block >= 2) {
    o.s.u_blk = {f, channels * nsq * block};
    f += channels * nsq * block;
    o.s.acc_blk = {f, nsq * block};
    f += nsq * block;
  } else {
    o.s.u_all = {f, channels * nsq};
    f += channels * nsq;
    o.s.prod = {f, nsq};
    f += nsq;
  }
  o.s.acc_m = {f, nsq};
  f += nsq;
  o.s.y = {f, mm * mm};
  f += mm * mm;
  o.s.acc_y = {f, mm * mm};
  o.s.row_tile = {o.idx.data(), n};
  o.s.row_in = {o.idx.data() + n, n};
  o.s.col_off = {o.idx.data() + 2 * n, n};
  return o;
}

// -------------------------------------------------------------------------
// Fused wrapper vs the independent per-tile reference implementation
// -------------------------------------------------------------------------

TEST(FusedPipeline, WrapperBitIdenticalToPerTileReferenceEverywhere) {
  struct Case {
    int m;
    std::size_t h, w;
  };
  // Ragged shapes: every m leaves a clipped right/bottom tile edge.
  const Case cases[] = {{2, 7, 9}, {3, 7, 5}, {4, 9, 7}};
  WinogradConvOptions opt;
  opt.pad = 1;
  Rng rng(4242);
  for (const Case& cs : cases) {
    const TileTransformer xf(transforms(cs.m, 3));
    for (const std::size_t batch : {1u, 3u, 5u}) {
      const Tensor4f input = random_tensor(batch, 3, cs.h, cs.w, rng);
      const Tensor4f kernels = random_tensor(4, 3, 3, 3, rng);
      const TransformedKernels tk(xf, kernels);
      // Independent per-tile implementation: the memcmp anchor.
      const Tensor4f want = conv2d_winograd(input, tk, xf, opt);
      for (const std::size_t threads : {1u, 2u, 7u}) {
        ThreadPool::set_global_threads(threads);
        const Tensor4f got = wino::tensor::unpack(conv2d_winograd_layout(
            wino::tensor::PackedActivation::from_nchw(Tensor4f(input)), tk,
            xf, opt, wino::tensor::LayoutKind::kNCHW, false));
        EXPECT_TRUE(bit_identical(got, want))
            << "m=" << cs.m << " batch=" << batch << " threads=" << threads;
      }
    }
  }
  ThreadPool::set_global_threads(4);
}

// -------------------------------------------------------------------------
// Blocked vs legacy scratch through the allocation-free entry point
// -------------------------------------------------------------------------

TEST(FusedPipeline, BlockedScratchBitIdenticalToLegacyScratch) {
  // 7x9 at m=2, pad 1 -> 4x5 = 20 tile columns per image; B in {2, 3, 8}
  // exercises exact division, a ragged final block and B > remaining.
  const TileTransformer xf(transforms(2, 3));
  const std::size_t n = static_cast<std::size_t>(xf.tile());
  Rng rng(7);
  const Tensor4f input = random_tensor(2, 3, 7, 9, rng);
  const Tensor4f kernels = random_tensor(4, 3, 3, 3, rng);
  const TransformedKernels tk(xf, kernels);
  WinogradConvOptions opt;
  opt.pad = 1;
  const Layout il = Layout::nchw(input.shape());
  const Layout ol = Layout::nchw({2, 4, 7, 9});

  for (const bool relu : {false, true}) {
    std::vector<float> legacy(ol.volume());
    OwnedScratch ls = make_scratch(3, n, 2, 0);
    conv2d_winograd_layout_into(il, input.flat(), tk, xf, opt, ol, legacy,
                                relu, ls.s);
    for (const std::size_t block : {2u, 3u, 8u}) {
      std::vector<float> blocked(ol.volume(), -1.0F);
      OwnedScratch bs = make_scratch(3, n, 2, block);
      conv2d_winograd_layout_into(il, input.flat(), tk, xf, opt, ol, blocked,
                                  relu, bs.s);
      EXPECT_EQ(std::memcmp(blocked.data(), legacy.data(),
                            legacy.size() * sizeof(float)),
                0)
          << "B=" << block << " relu=" << relu;
    }
  }
}

TEST(FusedPipeline, BlockedScratchRejectsPostInverseAccumulation) {
  const TileTransformer xf(transforms(2, 3));
  const std::size_t n = static_cast<std::size_t>(xf.tile());
  const Tensor4f input(1, 2, 6, 6, 0.5F);
  const Tensor4f kernels(1, 2, 3, 3, 0.25F);
  const TransformedKernels tk(xf, kernels);
  WinogradConvOptions opt;
  opt.pad = 1;
  opt.accumulation = AccumulationOrder::kPostInverse;
  const Layout il = Layout::nchw(input.shape());
  const Layout ol = Layout::nchw({1, 1, 6, 6});
  std::vector<float> out(ol.volume());
  OwnedScratch bs = make_scratch(2, n, 2, 4);
  EXPECT_THROW(conv2d_winograd_layout_into(il, input.flat(), tk, xf, opt, ol,
                                           out, false, bs.s),
               std::invalid_argument);
}

// -------------------------------------------------------------------------
// Int8 Winograd form: blocked vs per-tile walk
// -------------------------------------------------------------------------

TEST(FusedPipeline, Int8BlockedScratchBitIdenticalToLegacy) {
  using wino::quant::conv2d_winograd_int8_into;
  using wino::quant::QuantWinogradScratch;
  for (const int m : {2, 4}) {
    const TileTransformer xf(transforms(m, 3));
    const std::size_t n = static_cast<std::size_t>(xf.tile());
    const std::size_t nsq = n * n;
    const auto mm = static_cast<std::size_t>(m);
    Rng rng(100 + m);
    const Tensor4f input = random_tensor(2, 3, 9, 7, rng);
    const Tensor4f kernels = random_tensor(4, 3, 3, 3, rng);
    const auto qk = wino::quant::quantize_winograd_kernels(xf, kernels);
    const wino::tensor::Tensor4fView view(input.shape(), input.flat());
    const std::size_t out_elems = 2 * 4 * 9 * 7;

    for (const bool relu : {false, true}) {
      std::vector<float> want(out_elems);
      {
        std::vector<float> f(nsq + 3 * nsq + nsq + nsq + nsq + mm * mm);
        std::vector<std::int8_t> q(3 * nsq);
        std::vector<std::int32_t> a(nsq);
        float* p = f.data();
        QuantWinogradScratch s;
        s.d = {p, nsq};
        p += nsq;
        s.u_all = {p, 3 * nsq};
        p += 3 * nsq;
        s.sv = {p, nsq};
        p += nsq;
        s.m_f = {p, nsq};
        p += nsq;
        s.y = {p, mm * mm};
        s.uq_all = {q.data(), q.size()};
        s.acc = {a.data(), a.size()};
        conv2d_winograd_int8_into(view, qk, xf, 1, 0.0F, relu, want, s);
      }
      for (const std::size_t block : {2u, 5u}) {
        std::vector<float> got(out_elems, -2.0F);
        std::vector<float> f(nsq + 3 * nsq * block + nsq * block + nsq +
                             mm * mm);
        std::vector<std::int8_t> q(3 * nsq * block);
        std::vector<std::int32_t> a(nsq * block);
        float* p = f.data();
        QuantWinogradScratch s;
        s.d = {p, nsq};
        p += nsq;
        s.u_blk = {p, 3 * nsq * block};
        p += 3 * nsq * block;
        s.sv_blk = {p, nsq * block};
        p += nsq * block;
        s.m_f = {p, nsq};
        p += nsq;
        s.y = {p, mm * mm};
        s.uq_blk = {q.data(), q.size()};
        s.acc_blk = {a.data(), a.size()};
        conv2d_winograd_int8_into(view, qk, xf, 1, 0.0F, relu, got, s);
        EXPECT_EQ(std::memcmp(got.data(), want.data(),
                              want.size() * sizeof(float)),
                  0)
            << "m=" << m << " B=" << block << " relu=" << relu;
      }
    }
  }
}

// -------------------------------------------------------------------------
// Planned forward: fused blocks under the slab, still the reference values
// -------------------------------------------------------------------------

TEST(FusedPipeline, PlannedForwardBitIdenticalToReferenceAcrossSweep) {
  const auto layers = wino::nn::vgg16_d_scaled(14, 16);
  const wino::nn::ExecutionPlan plan =
      wino::nn::uniform_plan(layers, wino::nn::ConvAlgo::kWinograd4);
  ASSERT_FALSE(plan.memory.empty());
  // The tentpole must actually engage: at least one Winograd step runs the
  // fused pipeline out of the planned slab.
  std::size_t fused_steps = 0;
  for (const std::size_t b : plan.memory.step_block_columns) {
    if (b >= 2) ++fused_steps;
  }
  EXPECT_GE(fused_steps, 1u);

  const auto weights = wino::nn::random_weights(layers, 17);
  Rng rng(18);
  for (const std::size_t batch : {1u, 3u, 5u}) {
    Tensor4f in(batch, 3, 16, 16);
    rng.fill_uniform(in.flat());
    const Tensor4f want = wino::nn::forward_reference(plan, weights, in);
    for (const std::size_t threads : {1u, 2u, 7u}) {
      ThreadPool::set_global_threads(threads);
      const Tensor4f got = wino::nn::forward(plan, weights, in);
      EXPECT_TRUE(bit_identical(got, want))
          << "batch=" << batch << " threads=" << threads;
    }
  }
  ThreadPool::set_global_threads(4);
}

TEST(FusedPipeline, PlannerBlockSizingIsPeakNeutral) {
  const auto layers = wino::nn::vgg16_d_scaled(14, 16);
  const wino::nn::ExecutionPlan plan =
      wino::nn::uniform_plan(layers, wino::nn::ConvAlgo::kWinograd4);
  const wino::nn::MemoryPlan unfused =
      wino::nn::build_memory_plan(plan, /*fuse_blocks=*/false);
  const wino::nn::MemoryPlan& fused = plan.memory;
  ASSERT_FALSE(fused.empty());
  for (const std::size_t b : unfused.step_block_columns) {
    EXPECT_EQ(b, 1u);  // sizing disabled: every step stays per-tile
  }
  // Fused block scratch may never raise the slab high-water mark, at the
  // single-image point or deep into a batch.
  for (const std::size_t images : {1u, 2u, 4u, 8u}) {
    EXPECT_LE(fused.peak_bytes(images), unfused.peak_bytes(images))
        << "images=" << images;
  }
}

// -------------------------------------------------------------------------
// Plan-aware batch ceiling: the working-set math and the serving clamp
// -------------------------------------------------------------------------

/// One 32x32 c=16 k=16 conv: transform-domain working set at m=4 is
/// 32*32*(16+16)*4 * (6/4)^2 = 294912 bytes per image, so the 768 KiB
/// fused cache budget holds exactly two images.
std::vector<wino::nn::LayerSpec> ceiling_model() {
  wino::nn::LayerSpec l;
  l.kind = wino::nn::LayerKind::kConv;
  l.conv.name = "ceiling";
  l.conv.h = 32;
  l.conv.w = 32;
  l.conv.c = 16;
  l.conv.k = 16;
  return {l};
}

TEST(BatchCeiling, MatchesTransformDomainWorkingSetMath) {
  const wino::nn::ExecutionPlan w4 = wino::nn::uniform_plan(
      ceiling_model(), wino::nn::ConvAlgo::kWinograd4);
  EXPECT_EQ(wino::nn::plan_batch_ceiling(w4), 2u);
  EXPECT_EQ(w4.batch_ceiling, 2u);
  // No Winograd layer -> no transform-domain working set -> unlimited (0).
  const wino::nn::ExecutionPlan im2col = wino::nn::uniform_plan(
      ceiling_model(), wino::nn::ConvAlgo::kIm2col);
  EXPECT_EQ(wino::nn::plan_batch_ceiling(im2col), 0u);
  EXPECT_EQ(im2col.batch_ceiling, 0u);
}

TEST(BatchCeiling, ServeClampsAssemblyAndStaysBitIdentical) {
  ManualClock clock;  // frozen: only the ceiling can trigger dispatch
  std::mutex mutex;
  std::vector<std::size_t> batch_sizes;
  wino::serve::ServerConfig cfg;
  cfg.max_batch = 8;  // global cap far above the per-model ceiling
  cfg.clock = &clock;
  cfg.batch_detail_observer =
      [&](wino::serve::ModelId,
          const std::vector<wino::serve::BatchRequestInfo>& info) {
        std::lock_guard lock(mutex);
        batch_sizes.push_back(info.size());
      };
  wino::serve::InferenceServer server(cfg);
  wino::nn::ExecutionPlan plan = wino::nn::uniform_plan(
      ceiling_model(), wino::nn::ConvAlgo::kWinograd4);
  ASSERT_EQ(plan.batch_ceiling, 2u);
  const auto weights = wino::nn::random_weights(ceiling_model(), 5);
  const auto model = server.add_model("ceiling", plan, weights);

  Rng rng(6);
  std::vector<Tensor4f> images;
  std::vector<std::future<Tensor4f>> futures;
  for (std::size_t i = 0; i < 4; ++i) {
    images.push_back(random_tensor(1, 16, 32, 32, rng));
  }
  for (const Tensor4f& img : images) {
    futures.push_back(server.submit(model, img));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    // Each served output equals the direct single-image forward bit for
    // bit, whatever ceiling-capped batch carried it.
    const Tensor4f got = futures[i].get();
    const Tensor4f want = wino::nn::forward(plan, weights, images[i]);
    EXPECT_TRUE(bit_identical(got, want)) << "request " << i;
  }
  std::lock_guard lock(mutex);
  ASSERT_EQ(batch_sizes.size(), 2u);  // 4 requests under ceiling 2
  EXPECT_EQ(batch_sizes[0], 2u);
  EXPECT_EQ(batch_sizes[1], 2u);
}

}  // namespace
