// Exact (rational-arithmetic) verification of the Cook-Toom generator: for
// every supported F(m, r), the generated bilinear algorithm must equal
// direct correlation symbolically — checked on a spanning set of inputs,
// which by bilinearity proves equality for all inputs.
#include "winograd/cook_toom.hpp"

#include <gtest/gtest.h>

#include "common/rational.hpp"

namespace wino::winograd {
namespace {

using common::Rational;

std::vector<Rational> unit(std::size_t size, std::size_t hot) {
  std::vector<Rational> v(size);
  v[hot] = Rational(1);
  return v;
}

// Bilinearity: checking equality on all (e_i, e_j) basis pairs proves the
// two bilinear forms identical.
void expect_equals_direct(const TransformSet& t) {
  const auto n = static_cast<std::size_t>(t.tile());
  const auto r = static_cast<std::size_t>(t.r);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      const auto d = unit(n, i);
      const auto g = unit(r, j);
      const auto fast = apply_1d_exact(t, d, g);
      const auto ref = direct_correlation(d, g, t.m);
      ASSERT_EQ(fast.size(), ref.size());
      for (std::size_t k = 0; k < ref.size(); ++k) {
        EXPECT_EQ(fast[k], ref[k])
            << "F(" << t.m << "," << t.r << ") output " << k << " basis ("
            << i << "," << j << ")";
      }
    }
  }
}

struct MrCase {
  int m;
  int r;
};

class CookToomExactness : public ::testing::TestWithParam<MrCase> {};

TEST_P(CookToomExactness, MatchesDirectCorrelationExactly) {
  const auto [m, r] = GetParam();
  expect_equals_direct(cook_toom(m, r));
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperConfigs, CookToomExactness,
    ::testing::Values(MrCase{2, 3}, MrCase{3, 3}, MrCase{4, 3}, MrCase{5, 3},
                      MrCase{6, 3}, MrCase{7, 3}, MrCase{8, 3}, MrCase{2, 2},
                      MrCase{3, 2}, MrCase{2, 5}, MrCase{4, 5}, MrCase{6, 5},
                      MrCase{1, 3}, MrCase{2, 7}, MrCase{4, 7}),
    [](const auto& info) {
      return "F" + std::to_string(info.param.m) + "x" +
             std::to_string(info.param.r);
    });

TEST(CookToom, TileSizeIsMPlusRMinus1) {
  const TransformSet t = cook_toom(4, 3);
  EXPECT_EQ(t.tile(), 6);
  EXPECT_EQ(t.bt.rows(), 6u);
  EXPECT_EQ(t.bt.cols(), 6u);
  EXPECT_EQ(t.g.rows(), 6u);
  EXPECT_EQ(t.g.cols(), 3u);
  EXPECT_EQ(t.at.rows(), 4u);
  EXPECT_EQ(t.at.cols(), 6u);
}

TEST(CookToom, RejectsBadParameters) {
  EXPECT_THROW(cook_toom(0, 3), std::invalid_argument);
  EXPECT_THROW(cook_toom(2, 0), std::invalid_argument);
  EXPECT_THROW(cook_toom(2, 3, {Rational(0), Rational(1)}),
               std::invalid_argument);  // too few points
  EXPECT_THROW(cook_toom(2, 3, {Rational(0), Rational(1), Rational(1)}),
               std::invalid_argument);  // duplicate
}

TEST(CookToom, CustomPointsAlsoExact) {
  const std::vector<Rational> pts{Rational(0), Rational(2), Rational(-1, 3),
                                  Rational(5)};
  expect_equals_direct(cook_toom(3, 3, pts));
}

TEST(CookToom, LavinCanonicalMatricesAreValidAlgorithms) {
  expect_equals_direct(lavin_f2x2_3x3());
  expect_equals_direct(lavin_f4x4_3x3());
}

TEST(CookToom, GeneratorAgreesWithLavinBilinearForm) {
  // Our generator and Lavin's published matrices may differ in row signs
  // and scalings, but must implement the same function.
  for (const auto& [ours, lavin] :
       {std::pair{cook_toom(2, 3), lavin_f2x2_3x3()},
        std::pair{cook_toom(4, 3), lavin_f4x4_3x3()}}) {
    const auto n = static_cast<std::size_t>(ours.tile());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < 3u; ++j) {
        const auto d = unit(n, i);
        const auto g = unit(3, j);
        EXPECT_EQ(apply_1d_exact(ours, d, g), apply_1d_exact(lavin, d, g));
      }
    }
  }
}

TEST(CookToom, BtRowsAreLagrangeNumerators) {
  // For F(2,3) with points {0, 1, -1}: L_0(x) = (x-1)(x+1) = x^2 - 1.
  const TransformSet t = cook_toom(2, 3);
  EXPECT_EQ(t.bt(0, 0), Rational(-1));
  EXPECT_EQ(t.bt(0, 1), Rational(0));
  EXPECT_EQ(t.bt(0, 2), Rational(1));
  EXPECT_EQ(t.bt(0, 3), Rational(0));
  // Last row is M(x) = x^3 - x.
  EXPECT_EQ(t.bt(3, 0), Rational(0));
  EXPECT_EQ(t.bt(3, 1), Rational(-1));
  EXPECT_EQ(t.bt(3, 2), Rational(0));
  EXPECT_EQ(t.bt(3, 3), Rational(1));
}

TEST(CookToom, DefaultPointsDistinctAndSmall) {
  const auto pts = default_points(12);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_FALSE(pts[i] == pts[j]);
    }
    EXPECT_LE(pts[i].abs(), Rational(8));
  }
  EXPECT_THROW(default_points(-1), std::invalid_argument);
}

TEST(CookToom, TransformsCacheReturnsStableReference) {
  const TransformSet& a = transforms(4, 3);
  const TransformSet& b = transforms(4, 3);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.m, 4);
  EXPECT_EQ(a.r, 3);
}

TEST(CookToom, FloatProjectionsMatchRationals) {
  const TransformSet t = cook_toom(3, 3);
  const auto f = t.g_f();
  for (std::size_t i = 0; i < t.g.rows(); ++i) {
    for (std::size_t j = 0; j < t.g.cols(); ++j) {
      EXPECT_FLOAT_EQ(f(i, j), static_cast<float>(t.g(i, j).to_double()));
    }
  }
}

TEST(CookToom, MultiplicationCountIsMinimal) {
  // The whole point of the algorithm: m + r - 1 multiplications per 1-D
  // application — the element-wise stage has exactly tile() entries.
  for (int m = 2; m <= 7; ++m) {
    const TransformSet t = cook_toom(m, 3);
    EXPECT_EQ(t.tile(), m + 2);
  }
}

}  // namespace
}  // namespace wino::winograd
