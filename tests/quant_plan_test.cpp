// Tests for the int8 quantized execution path and the planner's quality
// axis: int8 conv correctness against fp32 references, the exact
// bit-identity contracts (SIMD vs scalar, thread counts, planned vs
// reference composition), the analytic error model's ordering, the error
// budget's demotion chain (int8 Winograd -> int8 im2col -> fp32), and the
// quantized serving session. See docs/QUANTIZATION.md for the contract
// under test.
#include "nn/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "conv/spatial.hpp"
#include "nn/forward.hpp"
#include "quant/int8.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/inference_server.hpp"
#include "winograd/error_model.hpp"

namespace wino::nn {
namespace {

using common::Rng;
using tensor::Tensor4f;

bool same_bits(const Tensor4f& a, const Tensor4f& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.flat().size() * sizeof(float)) == 0;
}

float rel_max_error(const Tensor4f& got, const Tensor4f& ref) {
  float max_diff = 0;
  float max_ref = 0;
  const auto g = got.flat();
  const auto r = ref.flat();
  for (std::size_t i = 0; i < g.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(g[i] - r[i]));
    max_ref = std::max(max_ref, std::abs(r[i]));
  }
  return max_ref > 0 ? max_diff / max_ref : max_diff;
}

ConvLayerSpec conv_spec(std::size_t hw, std::size_t c, std::size_t k) {
  ConvLayerSpec l;
  l.h = hw;
  l.w = hw;
  l.c = c;
  l.k = k;
  l.r = 3;
  l.pad = 1;
  return l;
}

TEST(Int8Algos, PredicatesAndNames) {
  for (const ConvAlgo algo : {ConvAlgo::kInt8Im2col, ConvAlgo::kInt8Winograd2,
                              ConvAlgo::kInt8Winograd4}) {
    EXPECT_TRUE(is_int8(algo));
    EXPECT_EQ(winograd_m(algo), 0);  // never participates in tile handoffs
    EXPECT_EQ(parse_conv_algo(to_string(algo)), algo);
  }
  EXPECT_FALSE(is_int8(ConvAlgo::kIm2col));
  EXPECT_FALSE(is_int8(ConvAlgo::kWinograd4));
  EXPECT_EQ(int8_winograd_m(ConvAlgo::kInt8Im2col), 0);
  EXPECT_EQ(int8_winograd_m(ConvAlgo::kInt8Winograd2), 2);
  EXPECT_EQ(int8_winograd_m(ConvAlgo::kInt8Winograd4), 4);
  EXPECT_EQ(parse_conv_algo("int8"), ConvAlgo::kInt8Im2col);
  EXPECT_EQ(parse_conv_algo("i8w2"), ConvAlgo::kInt8Winograd2);
  EXPECT_EQ(parse_conv_algo("i8w4"), ConvAlgo::kInt8Winograd4);
}

TEST(Int8Conv, Im2colTracksFp32Reference) {
  Rng rng(101);
  Tensor4f input(2, 5, 9, 7);  // ragged extents, multi-image
  Tensor4f kernels(4, 5, 3, 3);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  rng.fill_normal(kernels.flat(), 0.0F, 0.2F);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = 1, .stride = 1});
  const Tensor4f got = quant::conv2d_im2col_int8(input, kernels, /*pad=*/1);
  // ~1% of the output range is the expected int8 grid error for
  // uniform-ish inputs; 5% is a generous ceiling that still catches any
  // scale/transpose/dequant bug (those produce O(100%) errors).
  EXPECT_LE(rel_max_error(got, ref), 0.05F);
}

TEST(Int8Conv, WinogradFormsStayUnderModelPrediction) {
  // The numerics contract: predict_layer_rel_error upper-bounds each int8
  // Winograd form's observed error. F(2x2, 3x3) is also absolutely tight
  // (~1% here); F(4x4, 3x3) is genuinely coarse (kappa_1d = 200 prices it
  // near-unusable, and it is) — the planner's budget gate, not a tighter
  // kernel, is what keeps it out of real plans.
  Rng rng(103);
  Tensor4f input(1, 4, 7, 9);  // ragged tiles for both m
  Tensor4f kernels(3, 4, 3, 3);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  rng.fill_normal(kernels.flat(), 0.0F, 0.2F);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = 1, .stride = 1});
  LayerActivationStats stats;
  double sq = 0;
  for (const float v : input.flat()) {
    stats.max_abs = std::max(stats.max_abs, static_cast<double>(std::abs(v)));
    sq += static_cast<double>(v) * v;
  }
  stats.rms = std::sqrt(sq / static_cast<double>(input.flat().size()));
  ConvLayerSpec spec = conv_spec(7, 4, 3);
  spec.w = 9;
  for (const int m : {2, 4}) {
    const Tensor4f got =
        quant::conv2d_winograd_int8(input, kernels, m, /*pad=*/1);
    const ConvAlgo algo =
        m == 2 ? ConvAlgo::kInt8Winograd2 : ConvAlgo::kInt8Winograd4;
    EXPECT_LE(rel_max_error(got, ref),
              static_cast<float>(predict_layer_rel_error(spec, algo, &stats)))
        << "m=" << m;
  }
  EXPECT_LE(rel_max_error(
                quant::conv2d_winograd_int8(input, kernels, 2, /*pad=*/1),
                ref),
            0.05F);
}

TEST(Int8Conv, StaticScaleMatchesDynamicForSingleImage) {
  // With one image, the dynamic path derives exactly max|x| / 127 — so
  // passing that same value as the static calibration scale must be
  // bit-identical. Pins the act_scale plumbing end to end.
  Rng rng(107);
  Tensor4f input(1, 3, 8, 8);
  Tensor4f kernels(2, 3, 3, 3);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  rng.fill_normal(kernels.flat(), 0.0F, 0.2F);
  float max_abs = 0;
  for (const float v : input.flat()) max_abs = std::max(max_abs, std::abs(v));
  const float scale = max_abs / 127.0F;
  for (const ConvAlgo algo : {ConvAlgo::kInt8Im2col, ConvAlgo::kInt8Winograd2,
                              ConvAlgo::kInt8Winograd4}) {
    const Tensor4f dynamic = run_conv(algo, input, kernels, 1);
    const Tensor4f fixed = run_conv(algo, input, kernels, 1, scale);
    EXPECT_TRUE(same_bits(dynamic, fixed)) << to_string(algo);
  }
}

TEST(Int8Conv, BitIdenticalAcrossThreadCounts) {
  Rng rng(109);
  Tensor4f input(3, 6, 12, 12);
  Tensor4f kernels(5, 6, 3, 3);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  rng.fill_normal(kernels.flat(), 0.0F, 0.2F);
  for (const ConvAlgo algo : {ConvAlgo::kInt8Im2col, ConvAlgo::kInt8Winograd2,
                              ConvAlgo::kInt8Winograd4}) {
    runtime::ThreadPool::set_global_threads(1);
    const Tensor4f base = run_conv(algo, input, kernels, 1);
    for (const std::size_t threads : {2u, 7u}) {
      runtime::ThreadPool::set_global_threads(threads);
      EXPECT_TRUE(same_bits(run_conv(algo, input, kernels, 1), base))
          << to_string(algo) << " threads=" << threads;
    }
  }
  runtime::ThreadPool::set_global_threads(
      std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ErrorModel, AmplificationGrowsWithTileSize) {
  const winograd::ErrorModel e2 = winograd::error_model(2, 3);
  const winograd::ErrorModel e4 = winograd::error_model(4, 3);
  EXPECT_GT(e4.kappa_2d, e2.kappa_2d);
  EXPECT_GT(e2.kappa_2d, 1.0);
  // The estimate is linear in the input magnitude.
  EXPECT_DOUBLE_EQ(e4.fp32_error_estimate(2.0),
                   2.0 * e4.fp32_error_estimate(1.0));
}

TEST(ErrorModel, PredictedLayerErrorOrdering) {
  const ConvLayerSpec layer = conv_spec(16, 8, 8);
  const LayerActivationStats stats{.max_abs = 2.0, .rms = 0.5};
  const double fp32_direct =
      predict_layer_rel_error(layer, ConvAlgo::kIm2col, &stats);
  const double fp32_w4 =
      predict_layer_rel_error(layer, ConvAlgo::kWinograd4, &stats);
  const double i8_im2col =
      predict_layer_rel_error(layer, ConvAlgo::kInt8Im2col, &stats);
  const double i8_w2 =
      predict_layer_rel_error(layer, ConvAlgo::kInt8Winograd2, &stats);
  const double i8_w4 =
      predict_layer_rel_error(layer, ConvAlgo::kInt8Winograd4, &stats);
  // fp32 rounding sits orders of magnitude below the int8 grid; within
  // int8, transform-domain quantization costs more as m grows.
  EXPECT_LT(fp32_direct, fp32_w4);
  EXPECT_LT(fp32_w4, i8_im2col);
  EXPECT_LT(i8_im2col, i8_w2);
  EXPECT_LT(i8_w2, i8_w4);
  // fp32 predictions work without stats; int8 without calibration is
  // unbounded so a budgeted planner can never pick it blind.
  EXPECT_GT(predict_layer_rel_error(layer, ConvAlgo::kWinograd2, nullptr),
            0.0);
  EXPECT_TRUE(std::isinf(
      predict_layer_rel_error(layer, ConvAlgo::kInt8Im2col, nullptr)));
}

TEST(Planner, CalibrationRecordsPerConvLayerStats) {
  const auto layers = vgg16_d_scaled(28, 16);
  const WeightBank weights = random_weights(layers, 9);
  std::size_t conv_count = 0;
  for (const LayerSpec& l : layers) {
    conv_count += l.kind == LayerKind::kConv ? 1 : 0;
  }
  Rng rng(11);
  Tensor4f sample(2, 3, 8, 8);
  rng.fill_uniform(sample.flat(), -1.0F, 1.0F);
  const QuantCalibration cal = calibrate_activations(layers, weights, sample);
  ASSERT_EQ(cal.conv_inputs.size(), conv_count);
  for (std::size_t i = 0; i < cal.conv_inputs.size(); ++i) {
    EXPECT_GT(cal.conv_inputs[i].max_abs, 0.0) << "conv " << i;
    EXPECT_GT(cal.conv_inputs[i].rms, 0.0) << "conv " << i;
    EXPECT_GE(cal.conv_inputs[i].max_abs, cal.conv_inputs[i].rms);
  }
}

TEST(Planner, ErrorBudgetDemotionChain) {
  // One conv layer, analytic scoring, candidates spanning the precision
  // ladder. As the budget tightens through the predicted-error midpoints
  // the planner demotes: int8 Winograd -> int8 im2col -> fp32 — and
  // throws when even fp32 cannot meet it.
  const ConvLayerSpec conv = conv_spec(16, 8, 8);
  std::vector<LayerSpec> layers(1);
  layers[0].kind = LayerKind::kConv;
  layers[0].conv = conv;

  const LayerActivationStats stats{.max_abs = 2.0, .rms = 0.5};
  PlannerOptions opts;
  opts.calibration = default_calibration();
  opts.quant = QuantCalibration{{stats}};
  opts.candidates = {ConvAlgo::kInt8Winograd4, ConvAlgo::kInt8Winograd2,
                     ConvAlgo::kInt8Im2col, ConvAlgo::kIm2col};

  const double e_fp32 = predict_layer_rel_error(conv, ConvAlgo::kIm2col,
                                                &stats);
  const double e_i8 =
      predict_layer_rel_error(conv, ConvAlgo::kInt8Im2col, &stats);
  const double e_w2 =
      predict_layer_rel_error(conv, ConvAlgo::kInt8Winograd2, &stats);
  const double e_w4 =
      predict_layer_rel_error(conv, ConvAlgo::kInt8Winograd4, &stats);
  ASSERT_LT(e_fp32, e_i8);
  ASSERT_LT(e_i8, e_w2);
  ASSERT_LT(e_w2, e_w4);

  // Budget above every candidate: int8 wins on (analytic) speed.
  opts.constraints.max_rel_error = e_w4 * 1.01;
  ExecutionPlan plan = plan_execution(layers, opts);
  EXPECT_TRUE(is_int8(plan.steps[0].algo));
  EXPECT_EQ(plan.int8_layers, 1u);
  EXPECT_LE(plan.predicted_max_rel_error, opts.constraints.max_rel_error);
  EXPECT_GT(plan.predicted_max_rel_error, 0.0);
  // The chosen int8 layer carries the calibration's static scale.
  EXPECT_FLOAT_EQ(plan.steps[0].act_scale,
                  static_cast<float>(stats.max_abs / 127.0));

  // Between int8-W2 and int8-W4: F(4,3) is out.
  opts.constraints.max_rel_error = (e_w2 + e_w4) / 2;
  plan = plan_execution(layers, opts);
  EXPECT_NE(plan.steps[0].algo, ConvAlgo::kInt8Winograd4);
  EXPECT_TRUE(is_int8(plan.steps[0].algo));

  // Between int8-im2col and int8-W2: only the spatial-domain int8 form
  // survives the gate, and it beats fp32 im2col on speed.
  opts.constraints.max_rel_error = (e_i8 + e_w2) / 2;
  plan = plan_execution(layers, opts);
  EXPECT_EQ(plan.steps[0].algo, ConvAlgo::kInt8Im2col);

  // Between fp32 and int8: every int8 form is out; the plan goes fp32.
  opts.constraints.max_rel_error = (e_fp32 + e_i8) / 2;
  plan = plan_execution(layers, opts);
  EXPECT_EQ(plan.steps[0].algo, ConvAlgo::kIm2col);
  EXPECT_EQ(plan.int8_layers, 0u);

  // Below even fp32's rounding floor: nothing fits.
  opts.constraints.max_rel_error = 1e-12;
  EXPECT_THROW(plan_execution(layers, opts), std::invalid_argument);
}

TEST(Planner, BudgetWithoutCalibrationNeverPicksInt8) {
  const auto layers = vgg16_d_scaled(28, 16);
  PlannerOptions opts;
  opts.calibration = default_calibration();
  opts.candidates = quantized_candidates();
  opts.candidates.push_back(ConvAlgo::kIm2col);
  opts.constraints.max_rel_error = 0.5;  // generous — but int8 is unproven
  const ExecutionPlan plan = plan_execution(layers, opts);
  EXPECT_EQ(plan.int8_layers, 0u);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != LayerKind::kConv) continue;
    EXPECT_EQ(plan.steps[i].algo, ConvAlgo::kIm2col);
  }
}

TEST(Planner, UniformInt8PlanKeepsNchwBoundariesAndFusesRelu) {
  const auto layers = vgg16_d_scaled(28, 16);
  const ExecutionPlan plan = uniform_plan(layers, ConvAlgo::kInt8Im2col);
  std::size_t conv_count = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    EXPECT_EQ(plan.steps[i].output_kind, tensor::LayoutKind::kNCHW);
    if (layers[i].kind == LayerKind::kConv) {
      EXPECT_TRUE(plan.steps[i].fused_relu);
      ++conv_count;
    }
  }
  EXPECT_EQ(plan.int8_layers, conv_count);
  EXPECT_EQ(plan.nchw_boundaries, plan.boundaries);
}

// The tentpole acceptance pin: a quantized mixed-precision plan executes
// bit-identically to the per-layer reference composition at every batch
// size and thread count, and its end-to-end error against the all-fp32
// network stays within the planner's budget.
TEST(ForwardPlan, QuantizedPlanBitIdenticalAndWithinBudget) {
  const auto layers = vgg16_d_scaled(14, 16);
  const WeightBank weights = random_weights(layers, 55);
  Rng rng(57);
  Tensor4f sample(2, 3, 16, 16);
  rng.fill_uniform(sample.flat(), -1.0F, 1.0F);

  PlannerOptions opts;
  opts.calibration = default_calibration();
  opts.quant = calibrate_activations(layers, weights, sample);
  opts.constraints.max_rel_error = 0.1;
  opts.candidates = {ConvAlgo::kWinograd2, ConvAlgo::kWinograd4,
                     ConvAlgo::kIm2col};
  for (const ConvAlgo algo : quantized_candidates()) {
    opts.candidates.push_back(algo);
  }
  const ExecutionPlan plan = plan_execution(layers, opts);
  EXPECT_GT(plan.int8_layers, 0u);
  EXPECT_LE(plan.predicted_max_rel_error, 0.1);

  for (const std::size_t batch : {1u, 3u}) {
    Tensor4f input(batch, 3, 16, 16);
    rng.fill_uniform(input.flat(), -1.0F, 1.0F);
    const Tensor4f reference = forward_reference(plan, weights, input);
    for (const std::size_t threads : {1u, 2u, 7u}) {
      runtime::ThreadPool::set_global_threads(threads);
      ASSERT_TRUE(same_bits(forward(plan, weights, input), reference))
          << "batch=" << batch << " threads=" << threads;
    }
    // End-to-end accuracy: the quantized network against the all-fp32 one.
    const Tensor4f fp32 =
        forward(layers, weights, input, ConvAlgo::kIm2col);
    EXPECT_LE(rel_max_error(reference, fp32),
              static_cast<float>(opts.constraints.max_rel_error))
        << "batch=" << batch;
  }
  runtime::ThreadPool::set_global_threads(
      std::max(1u, std::thread::hardware_concurrency()));
}

TEST(Serve, QuantizedSessionServesBitIdenticalResults) {
  const auto layers = vgg16_d_scaled(14, 16);
  WeightBank weights = random_weights(layers, 63);
  Rng rng(65);
  Tensor4f sample(1, 3, 16, 16);
  rng.fill_uniform(sample.flat(), -1.0F, 1.0F);

  serve::ServerConfig cfg;
  cfg.max_batch = 4;
  serve::InferenceServer server(cfg);
  PlannerOptions opts;
  opts.calibration = default_calibration();  // deterministic registration
  const auto id = server.add_model_quantized(
      "quantized", layers, weights, sample, /*max_rel_error=*/0.1, opts);
  EXPECT_GT(server.model_plan(id).int8_layers, 0u);

  std::vector<Tensor4f> images;
  for (int i = 0; i < 5; ++i) {
    Tensor4f img(1, 3, 16, 16);
    rng.fill_uniform(img.flat(), -1.0F, 1.0F);
    images.push_back(std::move(img));
  }
  std::vector<std::future<Tensor4f>> futures;
  futures.reserve(images.size());
  for (auto& img : images) futures.push_back(server.submit(id, img));
  for (std::size_t i = 0; i < images.size(); ++i) {
    const Tensor4f served = futures[i].get();
    const Tensor4f direct =
        forward(server.model_plan(id), server.model_weights(id), images[i]);
    EXPECT_TRUE(same_bits(served, direct)) << "image " << i;
  }
  server.shutdown();
}

}  // namespace
}  // namespace wino::nn
