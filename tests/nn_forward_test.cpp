#include "nn/forward.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/random.hpp"
#include "runtime/thread_pool.hpp"

namespace wino::nn {
namespace {

using common::Rng;
using tensor::Tensor4f;

TEST(Relu, ClampsNegatives) {
  Tensor4f t(1, 1, 1, 4);
  t(0, 0, 0, 0) = -1.0F;
  t(0, 0, 0, 1) = 0.0F;
  t(0, 0, 0, 2) = 2.5F;
  t(0, 0, 0, 3) = -0.1F;
  relu_inplace(t);
  EXPECT_FLOAT_EQ(t(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(t(0, 0, 0, 1), 0.0F);
  EXPECT_FLOAT_EQ(t(0, 0, 0, 2), 2.5F);
  EXPECT_FLOAT_EQ(t(0, 0, 0, 3), 0.0F);
}

TEST(MaxPool, TwoByTwo) {
  Tensor4f t(1, 1, 4, 4);
  float v = 0.0F;
  for (auto& x : t.flat()) x = v++;
  const Tensor4f p = maxpool2x2(t);
  EXPECT_EQ(p.shape().h, 2u);
  EXPECT_EQ(p.shape().w, 2u);
  EXPECT_FLOAT_EQ(p(0, 0, 0, 0), 5.0F);
  EXPECT_FLOAT_EQ(p(0, 0, 1, 1), 15.0F);
}

TEST(MaxPool, RejectsTinyInput) {
  const Tensor4f t(1, 1, 1, 4);
  EXPECT_THROW(maxpool2x2(t), std::invalid_argument);
}

TEST(FullyConnected, SmallExact) {
  Tensor4f x(1, 3, 1, 1);
  x(0, 0, 0, 0) = 1.0F;
  x(0, 1, 0, 0) = 2.0F;
  x(0, 2, 0, 0) = 3.0F;
  const std::vector<float> w{1, 0, 0, 0, 1, 1};  // 2x3
  const std::vector<float> b{0.5F, -0.5F};
  const Tensor4f y = fully_connected(x, w, b, 2);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 1.5F);
  EXPECT_FLOAT_EQ(y(0, 1, 0, 0), 4.5F);
}

TEST(FullyConnected, SizeMismatchThrows) {
  const Tensor4f x(1, 3, 1, 1);
  EXPECT_THROW(fully_connected(x, std::vector<float>(5), {0.0F}, 1),
               std::invalid_argument);
}

TEST(Forward, AllAlgorithmsAgreeOnScaledVgg) {
  // End-to-end inference on a scaled-down VGG16-D: all conv algorithms
  // must produce (numerically) the same logits.
  const auto layers = vgg16_d_scaled(/*scale=*/7, /*channel_div=*/16);
  const WeightBank weights = random_weights(layers, 42);
  Tensor4f input(1, 3, 32, 32);
  Rng rng(17);
  rng.fill_uniform(input.flat());

  const Tensor4f ref = forward(layers, weights, input, ConvAlgo::kSpatial);
  ASSERT_GT(tensor::max_abs(ref), 0.0F);
  for (const ConvAlgo algo :
       {ConvAlgo::kIm2col, ConvAlgo::kFft, ConvAlgo::kWinograd2,
        ConvAlgo::kWinograd3, ConvAlgo::kWinograd4}) {
    const Tensor4f got = forward(layers, weights, input, algo);
    ASSERT_EQ(got.shape(), ref.shape()) << to_string(algo);
    const float rel = tensor::max_abs_diff(got, ref) /
                      std::max(1.0F, tensor::max_abs(ref));
    EXPECT_LE(rel, 2e-3F) << to_string(algo);
  }
}

TEST(Forward, ScaledVggShapeInference) {
  const auto layers = vgg16_d_scaled(7, 16);
  const WeightBank weights = random_weights(layers);
  Tensor4f input(1, 3, 32, 32, 0.1F);
  const Tensor4f out =
      forward(layers, weights, input, ConvAlgo::kSpatial);
  EXPECT_EQ(out.shape().c, 10u);  // classifier head
  EXPECT_EQ(out.shape().h, 1u);
}

TEST(Forward, MissingWeightsThrow) {
  const auto layers = vgg16_d_scaled(7, 16);
  const WeightBank empty;
  const Tensor4f input(1, 3, 32, 32);
  EXPECT_THROW(forward(layers, empty, input, ConvAlgo::kSpatial),
               std::invalid_argument);
}

TEST(Forward, ScaledModelRejectsBadScale) {
  EXPECT_THROW(vgg16_d_scaled(5), std::invalid_argument);
  EXPECT_THROW(vgg16_d_scaled(0), std::invalid_argument);
  EXPECT_THROW(vgg16_d_scaled(7, 0), std::invalid_argument);
}

TEST(ConvAlgoNames, AllDistinct) {
  EXPECT_EQ(to_string(ConvAlgo::kWinograd4), "winograd-F(4x4,3x3)");
  EXPECT_NE(to_string(ConvAlgo::kSpatial), to_string(ConvAlgo::kIm2col));
}

TEST(TransformCache, RepeatedForwardHitsInsteadOfRetransforming) {
  const auto layers = vgg16_d_scaled(28, 16);  // 8x8 input, tiny
  const WeightBank weights = random_weights(layers, 7);
  Tensor4f input(2, 3, 8, 8);
  Rng rng(19);
  rng.fill_uniform(input.flat());

  clear_transform_cache();
  const Tensor4f first =
      forward(layers, weights, input, ConvAlgo::kWinograd2);
  const auto after_first = transform_cache_stats();
  const std::size_t conv_layers = weights.conv_kernels.size();
  EXPECT_EQ(after_first.misses, conv_layers);
  EXPECT_EQ(after_first.entries, conv_layers);

  // The serving shape: same weights, another call. No new transforms.
  const Tensor4f second =
      forward(layers, weights, input, ConvAlgo::kWinograd2);
  const auto after_second = transform_cache_stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(tensor::max_abs_diff(first, second), 0.0F);

  // Distinct F(m) tiles are distinct cache entries, not collisions.
  forward(layers, weights, input, ConvAlgo::kWinograd4);
  EXPECT_EQ(transform_cache_stats().misses, 2 * conv_layers);
  clear_transform_cache();
  EXPECT_EQ(transform_cache_stats().entries, 0u);
}

TEST(LayoutPlan, ElidesWinogradChainsAndStopsAtPools) {
  const auto layers = vgg16_d_scaled(7, 16);
  const LayoutPlan plan = plan_layouts(layers, ConvAlgo::kWinograd2);
  ASSERT_EQ(plan.output_kind.size(), layers.size());
  EXPECT_EQ(plan.boundaries, layers.size() - 1);
  // VGG16-D groups: 2+2+3+3+3 conv layers -> 1+1+2+2+2 = 8 conv->conv
  // handoffs stay in tile form; every boundary into a pool/FC is NCHW.
  EXPECT_EQ(plan.elided, 8u);
  EXPECT_GT(plan.nchw_floats_elided, 0u);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (plan.output_kind[i] == tensor::LayoutKind::kWinogradTile) {
      EXPECT_EQ(layers[i].kind, LayerKind::kConv);
      ASSERT_LT(i + 1, layers.size());
      EXPECT_EQ(layers[i + 1].kind, LayerKind::kConv);
    }
    if (layers[i].kind == LayerKind::kMaxPool ||
        layers[i].kind == LayerKind::kFullyConnected) {
      EXPECT_EQ(plan.output_kind[i], tensor::LayoutKind::kNCHW);
    }
  }
  // Non-Winograd algos have no tiled form: nothing elides.
  const LayoutPlan im2col_plan = plan_layouts(layers, ConvAlgo::kIm2col);
  EXPECT_EQ(im2col_plan.elided, 0u);
}

TEST(LayoutPolicy, ElidedChainsBitIdenticalToAlwaysNCHW) {
  // The pinned determinism-contract extension: the layout-planned path
  // (tile-form handoffs, fused ReLU, packed im2col panels) must reproduce
  // the always-NCHW path bit-for-bit — per algorithm, per batch size, per
  // thread count.
  const auto layers = vgg16_d_scaled(/*scale=*/14, /*channel_div=*/16);
  const WeightBank weights = random_weights(layers, 77);
  Rng rng(79);
  for (const ConvAlgo algo :
       {ConvAlgo::kWinograd2, ConvAlgo::kWinograd3, ConvAlgo::kWinograd4,
        ConvAlgo::kIm2col}) {
    for (const std::size_t batch : {1u, 5u}) {
      Tensor4f input(batch, 3, 16, 16);
      rng.fill_uniform(input.flat(), -1.0F, 1.0F);
      const Tensor4f nchw =
          forward(layers, weights, input, algo, LayoutPolicy::kAlwaysNCHW);
      for (const std::size_t threads : {1u, 4u}) {
        runtime::ThreadPool::set_global_threads(threads);
        const Tensor4f elided =
            forward(layers, weights, input, algo, LayoutPolicy::kAuto);
        ASSERT_EQ(elided.shape(), nchw.shape()) << to_string(algo);
        ASSERT_EQ(std::memcmp(elided.flat().data(), nchw.flat().data(),
                              nchw.flat().size() * sizeof(float)),
                  0)
            << to_string(algo) << " batch=" << batch
            << " threads=" << threads;
      }
    }
  }
  runtime::ThreadPool::set_global_threads(
      std::max(1u, std::thread::hardware_concurrency()));  // restore
}

TEST(LayoutPolicyNames, AllDistinct) {
  EXPECT_EQ(to_string(LayoutPolicy::kAuto), "auto-layout");
  EXPECT_EQ(to_string(LayoutPolicy::kAlwaysNCHW), "always-nchw");
}

TEST(TransformCache, BumpVersionInvalidatesStaleTransforms) {
  const auto layers = vgg16_d_scaled(28, 16);
  WeightBank weights = random_weights(layers, 9);
  Tensor4f input(1, 3, 8, 8);
  Rng rng(23);
  rng.fill_uniform(input.flat());

  clear_transform_cache();
  const Tensor4f before =
      forward(layers, weights, input, ConvAlgo::kWinograd2);
  const auto cold = transform_cache_stats();

  // Mutate a kernel in place; without a version bump the cache would keep
  // serving transforms of the old values.
  for (float& v : weights.conv_kernels[0].flat()) v *= 2.0F;
  weights.bump_version();
  const Tensor4f after =
      forward(layers, weights, input, ConvAlgo::kWinograd2);
  EXPECT_GT(transform_cache_stats().misses, cold.misses);
  EXPECT_GT(tensor::max_abs_diff(before, after), 0.0F);
}

}  // namespace
}  // namespace wino::nn
