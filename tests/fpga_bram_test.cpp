#include "fpga/bram.hpp"

#include <gtest/gtest.h>

#include "nn/network.hpp"

namespace wino::fpga {
namespace {

nn::ConvLayerSpec layer(std::size_t hw, std::size_t c, std::size_t k) {
  nn::ConvLayerSpec l;
  l.h = l.w = hw;
  l.c = c;
  l.k = k;
  l.r = 3;
  l.pad = 1;
  return l;
}

TEST(Bram, BufferSizesFollowGeometry) {
  const auto b = buffer_requirements(4, 3, 19, layer(14, 512, 512));
  // Image window: 6 rows x 14 x 512 x 4 B.
  EXPECT_EQ(b.image_bytes, 6u * 14u * 512u * 4u);
  // Kernel banks: 2 x 19 x 512 x 36 x 4 B.
  EXPECT_EQ(b.kernel_bytes, 2u * 19u * 512u * 36u * 4u);
  // Accumulators: 2 x 19 x 16 x 4 B.
  EXPECT_EQ(b.accum_bytes, 2u * 19u * 16u * 4u);
}

TEST(Bram, KernelBuffersDominateDeepLayers) {
  const auto b = buffer_requirements(4, 3, 19, layer(14, 512, 512));
  EXPECT_GT(b.kernel_bytes, b.image_bytes);
  EXPECT_GT(b.kernel_bytes, b.accum_bytes);
}

TEST(Bram, ImageBufferDominatesWideShallowLayers) {
  // conv1_1: 224 wide, only 3 channels.
  const auto b = buffer_requirements(4, 3, 19, layer(224, 3, 64));
  EXPECT_GT(b.image_bytes, b.accum_bytes);
}

TEST(Bram, Bram36Blocks) {
  EXPECT_EQ(bram36_blocks(0), 0u);
  EXPECT_EQ(bram36_blocks(1), 1u);
  EXPECT_EQ(bram36_blocks(4608), 1u);   // exactly one 36 Kb block
  EXPECT_EQ(bram36_blocks(4609), 2u);
}

TEST(Bram, PaperDesignsFitVirtex7) {
  // The paper's three proposed configurations must be BRAM-feasible on
  // the target device, worst VGG16-D layer included.
  const auto& net = nn::vgg16_d();
  EXPECT_TRUE(buffers_fit(virtex7_485t(), 2, 3, 43, net));
  EXPECT_TRUE(buffers_fit(virtex7_485t(), 3, 3, 28, net));
  EXPECT_TRUE(buffers_fit(virtex7_485t(), 4, 3, 19, net));
}

TEST(Bram, TinyDeviceDoesNotFit) {
  FpgaDevice tiny = virtex7_485t();
  tiny.bram_kb = 128;  // 16 KiB of BRAM
  EXPECT_FALSE(buffers_fit(tiny, 4, 3, 19, nn::vgg16_d()));
}

TEST(Bram, WorstLayerIsDeepConv) {
  // For the m=4 design the worst buffer demand comes from a 512-channel
  // layer (kernel banks scale with C and P).
  const auto& net = nn::vgg16_d();
  const auto worst = worst_buffer_requirements(4, 3, 19, net);
  const auto conv5 = buffer_requirements(4, 3, 19, layer(14, 512, 512));
  EXPECT_GE(worst.total(), conv5.total());
}

}  // namespace
}  // namespace wino::fpga
