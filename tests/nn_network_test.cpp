#include "nn/network.hpp"

#include <gtest/gtest.h>

namespace wino::nn {
namespace {

TEST(Vgg16D, ThirteenConvLayersInFiveGroups) {
  const ConvWorkload& net = vgg16_d();
  EXPECT_EQ(net.groups.size(), 5u);
  EXPECT_EQ(net.all_layers().size(), 13u);
  EXPECT_EQ(net.groups[0].layers.size(), 2u);
  EXPECT_EQ(net.groups[2].layers.size(), 3u);
}

TEST(Vgg16D, AllKernelsAre3x3Pad1) {
  for (const auto& l : vgg16_d().all_layers()) {
    EXPECT_EQ(l.r, 3u) << l.name;
    EXPECT_EQ(l.pad, 1) << l.name;
    EXPECT_EQ(l.out_h(), l.h) << l.name;  // same-size convolution
    EXPECT_EQ(l.out_w(), l.w) << l.name;
  }
}

TEST(Vgg16D, ChannelProgression) {
  const auto layers = vgg16_d().all_layers();
  EXPECT_EQ(layers[0].c, 3u);
  EXPECT_EQ(layers[0].k, 64u);
  EXPECT_EQ(layers[1].c, 64u);
  EXPECT_EQ(layers.back().c, 512u);
  EXPECT_EQ(layers.back().k, 512u);
  EXPECT_EQ(layers.back().h, 14u);
}

// The paper's Fig 1 "Spatial Conv" bars, in multiplications. These are the
// exact NHWCK*r^2 values for VGG16-D (verified by hand in DESIGN.md).
TEST(Vgg16D, SpatialMultiplicationsMatchFig1) {
  const ConvWorkload& net = vgg16_d();
  const double expected[] = {1.936e9, 2.775e9, 4.624e9, 4.624e9, 1.387e9};
  for (std::size_t g = 0; g < 5; ++g) {
    const double got = static_cast<double>(net.groups[g].spatial_mults());
    EXPECT_NEAR(got / 1e9, expected[g] / 1e9, 0.001)
        << net.groups[g].name;
  }
}

TEST(Vgg16D, TotalSpatialOpsAbout30p7GOps) {
  // O_S = 2 * 15.346G multiplications = 30.69 GOP, the Eq 10 numerator
  // behind every throughput figure in Table II.
  const double ops = static_cast<double>(vgg16_d().spatial_ops());
  EXPECT_NEAR(ops / 1e9, 30.69, 0.01);
}

TEST(Vgg16D, FullModelHasPoolsAndFcs) {
  const auto layers = vgg16_d_full();
  std::size_t convs = 0;
  std::size_t pools = 0;
  std::size_t fcs = 0;
  for (const auto& l : layers) {
    switch (l.kind) {
      case LayerKind::kConv:
        ++convs;
        break;
      case LayerKind::kMaxPool:
        ++pools;
        break;
      case LayerKind::kFullyConnected:
        ++fcs;
        break;
    }
  }
  EXPECT_EQ(convs, 13u);
  EXPECT_EQ(pools, 5u);
  EXPECT_EQ(fcs, 3u);
  EXPECT_EQ(layers.back().fc_out, 1000u);
}

TEST(ConvLayerSpec, OutExtentWithoutPadding) {
  ConvLayerSpec l;
  l.h = 10;
  l.w = 8;
  l.c = 1;
  l.k = 1;
  l.r = 3;
  l.pad = 0;
  EXPECT_EQ(l.out_h(), 8u);
  EXPECT_EQ(l.out_w(), 6u);
  EXPECT_EQ(l.spatial_mults(), 8u * 6u * 9u);
}

TEST(ConvWorkload, BatchScalesLinearly) {
  const ConvWorkload& net = vgg16_d();
  EXPECT_EQ(net.spatial_mults(4), 4 * net.spatial_mults(1));
  EXPECT_EQ(net.spatial_ops(2), 2 * net.spatial_ops(1));
}

}  // namespace
}  // namespace wino::nn
