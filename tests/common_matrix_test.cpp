#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/rational.hpp"

namespace wino::common {
namespace {

using RMat = Matrix<Rational>;

TEST(Matrix, InitializerList) {
  const RMat m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(1, 0), Rational(3));
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RMat{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  RMat m(2, 3);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 3), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 2));
}

TEST(Matrix, Transpose) {
  const RMat m{{1, 2, 3}, {4, 5, 6}};
  const RMat t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), Rational(6));
}

TEST(Matrix, Product) {
  const RMat a{{1, 2}, {3, 4}};
  const RMat b{{5, 6}, {7, 8}};
  const RMat c = a * b;
  EXPECT_EQ(c, (RMat{{19, 22}, {43, 50}}));
}

TEST(Matrix, ProductDimensionMismatchThrows) {
  const RMat a(2, 3);
  const RMat b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, Identity) {
  const RMat i = RMat::identity(3);
  const RMat m{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}};
  EXPECT_EQ(i * m, m);
  EXPECT_EQ(m * i, m);
}

TEST(Matrix, ExactInverse) {
  const RMat m{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}};
  const RMat inv = m.inverse();
  EXPECT_EQ(m * inv, RMat::identity(3));
  EXPECT_EQ(inv * m, RMat::identity(3));
}

TEST(Matrix, InverseNeedsPivoting) {
  // Leading zero forces a row swap in Gauss-Jordan.
  const RMat m{{0, 1}, {1, 0}};
  EXPECT_EQ(m.inverse(), m);
}

TEST(Matrix, SingularInverseThrows) {
  const RMat m{{1, 2}, {2, 4}};
  EXPECT_THROW(m.inverse(), std::invalid_argument);
}

TEST(Matrix, VandermondeInverseExact) {
  // The Cook-Toom core operation: invert a Vandermonde at the default
  // points {0, 1, -1, 2}. Must be exact.
  const std::vector<Rational> pts{Rational(0), Rational(1), Rational(-1),
                                  Rational(2)};
  RMat v(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      v(i, j) = pts[i].pow(static_cast<int>(j));
    }
  }
  EXPECT_EQ(v * v.inverse(), RMat::identity(4));
}

TEST(Matrix, MapProjection) {
  const RMat m{{Rational(1, 2), Rational(3, 4)}};
  const auto d = m.map<double>([](const Rational& r) { return r.to_double(); });
  EXPECT_DOUBLE_EQ(d(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.75);
}

TEST(Matrix, LargeFloatProductUsesGemmAndMatchesTripleLoop) {
  // Above the dispatch threshold operator* routes float products to the
  // shared blocked SIMD GEMM core. K fits one reduction panel, so the
  // result must be bit-identical to the incremental triple loop (each
  // element accumulates in ascending k either way).
  const std::size_t n = 80;  // 80^3 > 64^3 threshold
  Matrix<float> a(n, n);
  Matrix<float> b(n, n);
  std::uint32_t state = 1;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<float>(state >> 8) / static_cast<float>(1u << 24) -
           0.5F;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = next();
      b(i, j) = next();
    }
  }
  const Matrix<float> got = a * b;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float want = 0.0F;
      for (std::size_t k = 0; k < n; ++k) {
        // Two statements so no compiler contracts the multiply-add into
        // an FMA (the GEMM core promises one rounding per op).
        const float p = a(i, k) * b(k, j);
        want += p;
      }
      ASSERT_EQ(got(i, j), want) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace wino::common
