// Property/stress coverage for runtime::BoundedQueue — the MPMC hand-off
// primitive every serving thread crosses — and its deterministic-clock
// wait path (pop_until + ManualClock + kick). The randomized MPMC tests
// reconcile totals (every pushed value pops exactly once, nothing
// invented, nothing lost) rather than asserting interleavings, so they
// hold under any scheduler — and give TSan real concurrency to chew on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/bounded_queue.hpp"
#include "runtime/clock.hpp"

namespace {

using wino::runtime::BoundedQueue;
using wino::runtime::ClockSource;
using wino::runtime::ManualClock;

// ---------------------------------------------------------------------------
// Randomized MPMC with totals reconciliation
// ---------------------------------------------------------------------------

/// N producers push disjoint value ranges, M consumers drain until the
/// close() signal; union of consumed values must be exactly the union of
/// produced ones. Capacity far below the item count forces constant
/// blocking on both condvars.
void mpmc_reconciles(std::size_t producers, std::size_t consumers,
                     std::size_t per_producer, std::size_t capacity) {
  BoundedQueue<std::uint64_t> q(capacity);
  std::vector<std::vector<std::uint64_t>> consumed(consumers);

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      while (auto v = q.pop()) consumed[c].push_back(*v);
    });
  }
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(q.push(p * per_producer + i));
      }
    });
  }
  // Join producers (they are the last `producers` threads), then close so
  // consumers drain the tail and exit.
  for (std::size_t t = consumers; t < threads.size(); ++t) threads[t].join();
  q.close();
  for (std::size_t t = 0; t < consumers; ++t) threads[t].join();

  std::vector<std::uint64_t> all;
  for (const auto& v : consumed) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), producers * per_producer);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i);  // every value exactly once, none invented
  }
}

TEST(BoundedQueueStressTest, MpmcTotalsReconcile) {
  mpmc_reconciles(/*producers=*/4, /*consumers=*/4, /*per_producer=*/500,
                  /*capacity=*/8);
}

TEST(BoundedQueueStressTest, MpmcTotalsReconcileCapacityOne) {
  // Capacity 1 maximises condvar churn: every push waits for a pop and
  // vice versa, the tightest interleaving the queue supports.
  mpmc_reconciles(/*producers=*/3, /*consumers=*/3, /*per_producer=*/200,
                  /*capacity=*/1);
}

TEST(BoundedQueueStressTest, SingleProducerOrderPreservedAcrossBlocking) {
  // FIFO is global: with one producer and one consumer across a tiny
  // capacity, the consumed sequence must equal the produced sequence.
  BoundedQueue<int> q(2);
  constexpr int kItems = 1000;
  std::vector<int> seen;
  std::thread consumer([&] {
    while (auto v = q.pop()) seen.push_back(*v);
  });
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(seen[i], i);
}

// ---------------------------------------------------------------------------
// close() while blocked
// ---------------------------------------------------------------------------

TEST(BoundedQueueStressTest, CloseWakesBlockedProducersAndConsumers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));  // full: further pushes block

  constexpr std::size_t kBlocked = 4;
  std::atomic<int> push_failures{0};
  std::atomic<int> pop_values{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kBlocked; ++i) {
    threads.emplace_back([&] {
      if (!q.push(1)) ++push_failures;  // blocked full -> woken by close
    });
  }
  // One consumer takes the only item; the rest of the pops happen after
  // close and must observe drained-empty, not hang.
  threads.emplace_back([&] {
    while (auto v = q.pop()) ++pop_values;
  });
  q.close();
  for (auto& t : threads) t.join();

  // Every blocked producer was woken and reported failure (close() rejects
  // pushes, even those already parked); the consumer drained exactly the
  // one pre-close item (capacity was 1, all post-close pushes failed).
  EXPECT_EQ(push_failures.load(), static_cast<int>(kBlocked));
  EXPECT_EQ(pop_values.load(), 1);
}

// ---------------------------------------------------------------------------
// pop_until against the two clock kinds
// ---------------------------------------------------------------------------

TEST(BoundedQueuePopUntilTest, SteadyClockDeadlineExpires) {
  BoundedQueue<int> q(2);
  const auto& clock = wino::runtime::steady_clock_source();
  const auto got =
      q.pop_until(clock, clock.now() + std::chrono::milliseconds(5));
  EXPECT_FALSE(got.has_value());
  EXPECT_FALSE(q.closed());
}

TEST(BoundedQueuePopUntilTest, ReturnsQueuedItemImmediately) {
  BoundedQueue<int> q(2);
  ManualClock clock;
  ASSERT_TRUE(q.push(42));
  // Deadline already reached — the queued item still wins over timeout.
  const auto got = q.pop_until(clock, clock.now());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

TEST(BoundedQueuePopUntilTest, ManualClockAdvanceWakesWaiter) {
  BoundedQueue<int> q(2);
  ManualClock clock;
  const auto deadline = clock.now() + std::chrono::milliseconds(10);
  const auto token = clock.add_wake_hook([&q] { q.kick(); });

  std::promise<bool> timed_out;
  std::thread waiter([&] {
    // Blocks untimed (manual clock): only the kick from advance() can
    // deliver the deadline.
    timed_out.set_value(!q.pop_until(clock, deadline).has_value());
  });
  auto fut = timed_out.get_future();
  // An advance short of the deadline must NOT release the waiter.
  clock.advance(std::chrono::milliseconds(9));
  EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  // Reaching the deadline exactly must.
  clock.advance(std::chrono::milliseconds(1));
  EXPECT_TRUE(fut.get());
  waiter.join();
  clock.remove_wake_hook(token);
}

TEST(BoundedQueuePopUntilTest, PushBeatsManualDeadline) {
  BoundedQueue<int> q(2);
  ManualClock clock;
  const auto token = clock.add_wake_hook([&q] { q.kick(); });
  std::promise<std::optional<int>> result;
  std::thread waiter([&] {
    result.set_value(
        q.pop_until(clock, clock.now() + std::chrono::hours(1)));
  });
  ASSERT_TRUE(q.push(7));  // wakes the waiter without any time movement
  const auto got = result.get_future().get();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  waiter.join();
  clock.remove_wake_hook(token);
}

TEST(BoundedQueuePopUntilTest, ManualAdvanceRaceNeverLosesWakeup) {
  // Hammer the advance-vs-wait race: a waiter enters pop_until with a
  // deadline one tick ahead while another thread concurrently advances
  // past it. The kick() handshake (lock, unlock, notify after the time
  // moved) must guarantee the waiter never parks forever.
  for (int round = 0; round < 200; ++round) {
    BoundedQueue<int> q(1);
    ManualClock clock;
    const auto token = clock.add_wake_hook([&q] { q.kick(); });
    const auto deadline = clock.now() + std::chrono::microseconds(1);
    std::thread advancer(
        [&] { clock.advance(std::chrono::microseconds(2)); });
    const auto got = q.pop_until(clock, deadline);
    EXPECT_FALSE(got.has_value());
    advancer.join();
    clock.remove_wake_hook(token);
  }
}

// ---------------------------------------------------------------------------
// kick() and wake-hook registry semantics
// ---------------------------------------------------------------------------

TEST(BoundedQueuePopUntilTest, KickIsContentNeutral) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  q.kick();
  EXPECT_EQ(q.size(), 1u);  // spurious wake changes nothing
  EXPECT_EQ(q.pop().value(), 1);
}

TEST(ClockSourceTest, RemovedHookNeverFiresAgain) {
  ManualClock clock;
  std::atomic<int> fired{0};
  const auto token = clock.add_wake_hook([&] { ++fired; });
  clock.advance(std::chrono::seconds(1));
  EXPECT_EQ(fired.load(), 1);
  clock.remove_wake_hook(token);
  clock.advance(std::chrono::seconds(1));
  EXPECT_EQ(fired.load(), 1);  // the teardown guarantee servers rely on
}

TEST(ClockSourceTest, ManualClockNeverMovesBackwards) {
  ManualClock clock;
  const auto t0 = clock.now();
  clock.advance(std::chrono::seconds(-5));
  EXPECT_EQ(clock.now(), t0);
  clock.set_time(t0 - std::chrono::seconds(1));
  EXPECT_EQ(clock.now(), t0);
  clock.set_time(t0 + std::chrono::seconds(3));
  EXPECT_EQ(clock.now(), t0 + std::chrono::seconds(3));
}

TEST(ClockSourceTest, SteadySourceTracksRealTime) {
  const auto& clock = wino::runtime::steady_clock_source();
  EXPECT_FALSE(clock.manual());
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_LE(a, b);  // monotone, and usable interchangeably with
                    // std::chrono::steady_clock time points
}

}  // namespace
