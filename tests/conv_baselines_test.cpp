#include <gtest/gtest.h>

#include "common/random.hpp"
#include "conv/fft.hpp"
#include "conv/im2col.hpp"
#include "conv/spatial.hpp"

namespace wino::conv {
namespace {

using common::Rng;
using tensor::Tensor4f;

Tensor4f random_tensor(std::size_t n, std::size_t c, std::size_t h,
                       std::size_t w, Rng& rng) {
  Tensor4f t(n, c, h, w);
  rng.fill_uniform(t.flat());
  return t;
}

TEST(SpatialConv, HandComputedExample) {
  // 3x3 image, 2x2 kernel, no padding -> 2x2 output.
  Tensor4f in(1, 1, 3, 3);
  float v = 1.0F;
  for (auto& x : in.flat()) x = v++;  // 1..9
  Tensor4f k(1, 1, 2, 2);
  k(0, 0, 0, 0) = 1.0F;
  k(0, 0, 0, 1) = 2.0F;
  k(0, 0, 1, 0) = 3.0F;
  k(0, 0, 1, 1) = 4.0F;
  const Tensor4f y = conv2d_spatial(in, k);
  // y(0,0) = 1*1 + 2*2 + 4*3 + 5*4 = 37
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 37.0F);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 1), 47.0F);
  EXPECT_FLOAT_EQ(y(0, 0, 1, 0), 67.0F);
  EXPECT_FLOAT_EQ(y(0, 0, 1, 1), 77.0F);
}

TEST(SpatialConv, PaddingGrowsOutput) {
  const Tensor4f in(1, 1, 4, 4, 1.0F);
  const Tensor4f k(1, 1, 3, 3, 1.0F);
  const Tensor4f same = conv2d_spatial(in, k, {.pad = 1, .stride = 1});
  EXPECT_EQ(same.shape().h, 4u);
  EXPECT_EQ(same.shape().w, 4u);
  // Interior output: full 9-tap sum; corner: only 4 taps inside.
  EXPECT_FLOAT_EQ(same(0, 0, 1, 1), 9.0F);
  EXPECT_FLOAT_EQ(same(0, 0, 0, 0), 4.0F);
}

TEST(SpatialConv, StrideTwo) {
  Tensor4f in(1, 1, 5, 5);
  float v = 0.0F;
  for (auto& x : in.flat()) x = v++;
  Tensor4f k(1, 1, 1, 1);
  k(0, 0, 0, 0) = 1.0F;
  const Tensor4f y = conv2d_spatial(in, k, {.pad = 0, .stride = 2});
  EXPECT_EQ(y.shape().h, 3u);
  EXPECT_FLOAT_EQ(y(0, 0, 1, 1), in(0, 0, 2, 2));
  EXPECT_FLOAT_EQ(y(0, 0, 2, 2), in(0, 0, 4, 4));
}

TEST(SpatialConv, OutExtentFormula) {
  EXPECT_EQ(conv_out_extent(224, 3, 1, 1), 224u);
  EXPECT_EQ(conv_out_extent(224, 3, 0, 1), 222u);
  EXPECT_EQ(conv_out_extent(5, 3, 0, 2), 2u);
  EXPECT_THROW(conv_out_extent(2, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(8, 3, 0, 0), std::invalid_argument);
}

TEST(Im2colConv, MatchesSpatial) {
  Rng rng(11);
  const Tensor4f in = random_tensor(2, 3, 9, 7, rng);
  const Tensor4f k = random_tensor(4, 3, 3, 3, rng);
  for (const int pad : {0, 1}) {
    const SpatialConvOptions opt{.pad = pad, .stride = 1};
    const Tensor4f a = conv2d_spatial(in, k, opt);
    const Tensor4f b = conv2d_im2col(in, k, opt);
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_LE(tensor::max_abs_diff(a, b), 1e-4F);
  }
}

TEST(Im2colConv, StridedMatchesSpatial) {
  Rng rng(12);
  const Tensor4f in = random_tensor(1, 2, 11, 11, rng);
  const Tensor4f k = random_tensor(3, 2, 3, 3, rng);
  const SpatialConvOptions opt{.pad = 1, .stride = 2};
  EXPECT_LE(tensor::max_abs_diff(conv2d_spatial(in, k, opt),
                                 conv2d_im2col(in, k, opt)),
            1e-4F);
}

TEST(Gemm, SmallExact) {
  const std::vector<float> a{1, 2, 3, 4};        // 2x2
  const std::vector<float> b{5, 6, 7, 8};        // 2x2
  std::vector<float> c(4);
  gemm(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19.0F);
  EXPECT_FLOAT_EQ(c[1], 22.0F);
  EXPECT_FLOAT_EQ(c[2], 43.0F);
  EXPECT_FLOAT_EQ(c[3], 50.0F);
}

TEST(Gemm, SizeMismatchThrows) {
  std::vector<float> a(4), b(4), c(3);
  EXPECT_THROW(gemm(a, b, c, 2, 2, 2), std::invalid_argument);
}

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng(5);
  std::vector<std::complex<double>> data(64);
  for (auto& x : data) x = {rng.uniform(), rng.uniform()};
  auto copy = data;
  fft_pow2(copy, false);
  fft_pow2(copy, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), data[i].real(), 1e-12);
    EXPECT_NEAR(copy[i].imag(), data[i].imag(), 1e-12);
  }
}

TEST(Fft, MatchesNaiveDft) {
  Rng rng(6);
  const std::size_t n = 16;
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.uniform(), rng.uniform()};
  auto fast = data;
  fft_pow2(fast, false);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> want{};
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      want += data[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(fast[k].real(), want.real(), 1e-9);
    EXPECT_NEAR(fast[k].imag(), want.imag(), 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(fft_pow2(data, false), std::invalid_argument);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(226), 256u);
}

TEST(FftConv, MatchesSpatial) {
  Rng rng(21);
  const Tensor4f in = random_tensor(1, 3, 10, 10, rng);
  const Tensor4f k = random_tensor(2, 3, 3, 3, rng);
  for (const int pad : {0, 1}) {
    const SpatialConvOptions opt{.pad = pad, .stride = 1};
    const Tensor4f a = conv2d_spatial(in, k, opt);
    const Tensor4f b = conv2d_fft(in, k, opt);
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_LE(tensor::max_abs_diff(a, b), 1e-4F);
  }
}

TEST(FftConv, LargeKernelMatchesSpatial) {
  // FFT's favourable regime per the paper's related-work discussion.
  Rng rng(22);
  const Tensor4f in = random_tensor(1, 1, 16, 16, rng);
  const Tensor4f k = random_tensor(1, 1, 7, 7, rng);
  const SpatialConvOptions opt{.pad = 3, .stride = 1};
  EXPECT_LE(tensor::max_abs_diff(conv2d_spatial(in, k, opt),
                                 conv2d_fft(in, k, opt)),
            1e-4F);
}

TEST(FftConv, BatchAndMultiKernel) {
  Rng rng(23);
  const Tensor4f in = random_tensor(2, 2, 8, 8, rng);
  const Tensor4f k = random_tensor(3, 2, 3, 3, rng);
  const SpatialConvOptions opt{.pad = 1, .stride = 1};
  EXPECT_LE(tensor::max_abs_diff(conv2d_spatial(in, k, opt),
                                 conv2d_fft(in, k, opt)),
            1e-4F);
}

}  // namespace
}  // namespace wino::conv
