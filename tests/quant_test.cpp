#include "quant/fixed_point.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.hpp"
#include "conv/spatial.hpp"

namespace wino::quant {
namespace {

using common::Rng;
using tensor::Tensor4f;

TEST(FixedPointFormat, QuantizesToGrid) {
  const FixedPointFormat q8{.total_bits = 8, .frac_bits = 4};
  EXPECT_FLOAT_EQ(q8.quantize(0.25F), 0.25F);   // exactly representable
  EXPECT_FLOAT_EQ(q8.quantize(0.26F), 0.25F);   // rounds to 4/16
  EXPECT_FLOAT_EQ(q8.quantize(0.21F), 0.1875F); // rounds to 3/16
  EXPECT_FLOAT_EQ(q8.quantize(-0.25F), -0.25F);
}

TEST(FixedPointFormat, Saturates) {
  const FixedPointFormat q8{.total_bits = 8, .frac_bits = 4};
  EXPECT_FLOAT_EQ(q8.quantize(100.0F), q8.max_value());
  EXPECT_FLOAT_EQ(q8.quantize(-100.0F), q8.min_value());
  EXPECT_FLOAT_EQ(static_cast<float>(q8.max_value()), 127.0F / 16.0F);
  EXPECT_FLOAT_EQ(static_cast<float>(q8.min_value()), -8.0F);
}

TEST(FixedPointFormat, RejectsBadWidths) {
  const FixedPointFormat bad{.total_bits = 4, .frac_bits = 8};
  EXPECT_THROW(static_cast<void>(bad.quantize(1.0F)),
               std::invalid_argument);
}

TEST(FixedPointFormat, RejectsDegenerateWidths) {
  // A 1-bit two's-complement format has no magnitude bits, >32 overflows
  // the int64 shifts, and frac_bits must leave at least the sign bit.
  for (const FixedPointFormat fmt :
       {FixedPointFormat{.total_bits = 1, .frac_bits = 0},
        FixedPointFormat{.total_bits = 0, .frac_bits = 0},
        FixedPointFormat{.total_bits = 33, .frac_bits = 8},
        FixedPointFormat{.total_bits = 16, .frac_bits = 16},
        FixedPointFormat{.total_bits = 16, .frac_bits = -1}}) {
    EXPECT_THROW(static_cast<void>(fmt.quantize(0.0F)),
                 std::invalid_argument)
        << "total=" << fmt.total_bits << " frac=" << fmt.frac_bits;
  }
}

TEST(FixedPointFormat, InfinitiesSaturate) {
  const FixedPointFormat q8{.total_bits = 8, .frac_bits = 4};
  constexpr float kInf = std::numeric_limits<float>::infinity();
  EXPECT_FLOAT_EQ(q8.quantize(kInf), static_cast<float>(q8.max_value()));
  EXPECT_FLOAT_EQ(q8.quantize(-kInf), static_cast<float>(q8.min_value()));
}

TEST(FixedPointFormat, NanMapsToZero) {
  // A naive min/max clamp funnels NaN to the most negative code (every
  // comparison is false); the contract pins it to 0 instead.
  const FixedPointFormat q8{.total_bits = 8, .frac_bits = 4};
  EXPECT_FLOAT_EQ(q8.quantize(std::numeric_limits<float>::quiet_NaN()),
                  0.0F);
}

TEST(FixedPointFormat, NegativeSaturationIsExactCode) {
  // The most negative code is -2^(total-1) / 2^frac — asymmetric (one step
  // deeper than max_value); values below must pin to it exactly.
  const FixedPointFormat q8{.total_bits = 8, .frac_bits = 4};
  EXPECT_FLOAT_EQ(q8.quantize(-8.0F), -8.0F);         // exactly min_value
  EXPECT_FLOAT_EQ(q8.quantize(-8.03125F), -8.0F);     // half step below
  EXPECT_FLOAT_EQ(q8.quantize(-1.0e20F), -8.0F);      // far below
  EXPECT_FLOAT_EQ(static_cast<float>(q8.min_value()), -8.0F);
}

TEST(FixedPointFormat, WideFormatsNearLossless) {
  const FixedPointFormat q24{.total_bits = 24, .frac_bits = 16};
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const float v = rng.uniform(-2.0F, 2.0F);
    EXPECT_NEAR(q24.quantize(v), v, 1.0F / 65536.0F);
  }
}

TEST(QuantizedConv, MatchesFp32ForWideWordlength) {
  Rng rng(11);
  Tensor4f input(1, 3, 8, 8);
  Tensor4f kernels(2, 3, 3, 3);
  rng.fill_uniform(input.flat());
  rng.fill_uniform(kernels.flat());
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = 1, .stride = 1});
  const FixedPointFormat q24{.total_bits = 24, .frac_bits = 16};
  const Tensor4f got = conv2d_winograd_quantized(input, kernels, 2, q24, 1);
  const QuantError e = compare(got, ref);
  EXPECT_LE(e.relative_max(), 1e-3F);
}

TEST(QuantizedConv, ErrorGrowsAsWordlengthShrinks) {
  Rng rng(13);
  Tensor4f input(1, 4, 12, 12);
  Tensor4f kernels(3, 4, 3, 3);
  rng.fill_uniform(input.flat());
  rng.fill_uniform(kernels.flat(), -0.5F, 0.5F);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = 1, .stride = 1});
  float prev = -1.0F;
  for (const int bits : {24, 18, 12}) {
    const FixedPointFormat fmt{.total_bits = bits, .frac_bits = bits - 6};
    const Tensor4f got =
        conv2d_winograd_quantized(input, kernels, 2, fmt, 1);
    const float err = compare(got, ref).rms;
    EXPECT_GT(err, prev) << "bits=" << bits;
    prev = err;
  }
}

TEST(QuantizedConv, HigherOrderNeedsMoreBits) {
  // The F(4,3) transform constants (1/24 etc.) amplify quantisation noise
  // relative to F(2,3) at equal wordlength.
  Rng rng(17);
  Tensor4f input(1, 2, 8, 8);
  Tensor4f kernels(2, 2, 3, 3);
  rng.fill_uniform(input.flat());
  rng.fill_uniform(kernels.flat(), -0.5F, 0.5F);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = 1, .stride = 1});
  const FixedPointFormat fmt{.total_bits = 16, .frac_bits = 10};
  const float err2 =
      compare(conv2d_winograd_quantized(input, kernels, 2, fmt, 1), ref).rms;
  const float err4 =
      compare(conv2d_winograd_quantized(input, kernels, 4, fmt, 1), ref).rms;
  EXPECT_GT(err4, err2);
}

TEST(QuantizedConv, GuardBitsRescueSaturation) {
  // F(4,3)'s transform constants push intermediates past the external
  // range; without guard bits the datapath saturates and the result is
  // garbage, with them it tracks the reference.
  Rng rng(19);
  Tensor4f input(1, 2, 8, 8);
  Tensor4f kernels(1, 2, 3, 3);
  rng.fill_uniform(input.flat());
  rng.fill_uniform(kernels.flat(), -0.5F, 0.5F);
  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = 1, .stride = 1});
  const FixedPointFormat fmt{.total_bits = 16, .frac_bits = 10};
  const float with_guard =
      compare(conv2d_winograd_quantized(input, kernels, 4, fmt, 1, 8), ref)
          .relative_max();
  const float without =
      compare(conv2d_winograd_quantized(input, kernels, 4, fmt, 1, 0), ref)
          .relative_max();
  EXPECT_LT(with_guard, 0.05F);
  EXPECT_GT(without, with_guard * 10);
}

TEST(QuantizedConv, RejectsExcessGuardBits) {
  const Tensor4f in(1, 1, 4, 4);
  const Tensor4f k(1, 1, 3, 3);
  const FixedPointFormat q32{.total_bits = 32, .frac_bits = 20};
  EXPECT_THROW(conv2d_winograd_quantized(in, k, 2, q32, 1),  // 32 + 8 > 32
               std::invalid_argument);
  EXPECT_NO_THROW(conv2d_winograd_quantized(in, k, 2, q32, 1, 0));
}

TEST(QuantizeTensor, InPlace) {
  Tensor4f t(1, 1, 1, 3);
  t(0, 0, 0, 0) = 0.26F;
  t(0, 0, 0, 1) = -0.22F;
  t(0, 0, 0, 2) = 99.0F;
  const FixedPointFormat q8{.total_bits = 8, .frac_bits = 4};
  quantize_tensor(t, q8);
  EXPECT_FLOAT_EQ(t(0, 0, 0, 0), 0.25F);
  EXPECT_FLOAT_EQ(t(0, 0, 0, 2), q8.max_value());
}

TEST(Compare, ShapeMismatchThrows) {
  const Tensor4f a(1, 1, 2, 2);
  const Tensor4f b(1, 1, 2, 3);
  EXPECT_THROW(compare(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace wino::quant
