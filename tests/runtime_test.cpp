// Unit tests for the deterministic runtime (ThreadPool + parallel_for) and
// end-to-end determinism of the threaded hot paths: any thread count must
// produce bit-identical results to the single-threaded run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/random.hpp"
#include "conv/fft.hpp"
#include "conv/im2col.hpp"
#include "conv/spatial.hpp"
#include "hw/engine_config.hpp"
#include "hw/winograd_engine.hpp"
#include "nn/forward.hpp"
#include "runtime/thread_pool.hpp"

namespace wino::runtime {
namespace {

using tensor::Tensor4f;

// Restores the global pool so test order cannot leak thread counts.
class RuntimeTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::set_global_threads(4); }
};

TEST_F(RuntimeTest, ChunksCoverRangeExactlyOnce) {
  for (const std::size_t count : {0u, 1u, 3u, 7u, 64u, 1000u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 8u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      const std::size_t effective = std::min<std::size_t>(count, chunks);
      for (std::size_t i = 0; i < effective; ++i) {
        const std::size_t b = ThreadPool::chunk_begin(i, count, effective);
        const std::size_t e = ThreadPool::chunk_begin(i + 1, count, effective);
        EXPECT_EQ(b, prev_end);
        EXPECT_LE(e, count);
        covered += e - b;
        prev_end = e;
      }
      if (effective > 0) EXPECT_EQ(covered, count);
    }
  }
}

TEST_F(RuntimeTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(RuntimeTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(RuntimeTest, OversubscribedPoolStillCoversSmallRange) {
  // More threads than work: only `count` chunks are issued, each size 1.
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(end - begin, 1u);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(RuntimeTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> hits(10, 0);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST_F(RuntimeTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.parallel_for(8, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      pool.parallel_for(8, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t i = ib; i < ie; ++i) hits[o * 8 + i].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(RuntimeTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 0) {
                            throw std::runtime_error("chunk failure");
                          }
                        }),
      std::runtime_error);
  // The pool must stay usable after an exception round.
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST_F(RuntimeTest, SetGlobalThreadsRejectsZero) {
  EXPECT_THROW(ThreadPool::set_global_threads(0), std::invalid_argument);
}

TEST_F(RuntimeTest, GlobalParallelForEachSums) {
  ThreadPool::set_global_threads(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------------------------------------------------------------------
// Determinism of the threaded hot paths: 1 thread vs N threads must be
// bit-identical (the runtime only parallelises independent outputs).
// ---------------------------------------------------------------------------

template <typename Fn>
void expect_thread_invariant(Fn&& fn) {
  ThreadPool::set_global_threads(1);
  const Tensor4f ref = fn();
  for (const std::size_t t : {2u, 4u, 7u}) {
    ThreadPool::set_global_threads(t);
    const Tensor4f got = fn();
    ASSERT_EQ(ref.shape(), got.shape());
    EXPECT_EQ(tensor::max_abs_diff(ref, got), 0.0F)
        << "non-deterministic at " << t << " threads";
  }
}

TEST_F(RuntimeTest, ConvBackendsAreThreadCountInvariant) {
  common::Rng rng(41);
  Tensor4f in(2, 3, 12, 12);
  Tensor4f k(5, 3, 3, 3);
  rng.fill_uniform(in.flat());
  rng.fill_normal(k.flat(), 0.0F, 0.5F);
  const conv::SpatialConvOptions opt{.pad = 1, .stride = 1};
  expect_thread_invariant([&] { return conv::conv2d_spatial(in, k, opt); });
  expect_thread_invariant([&] { return conv::conv2d_im2col(in, k, opt); });
  expect_thread_invariant([&] { return conv::conv2d_fft(in, k, opt); });
}

TEST_F(RuntimeTest, HwEngineIsThreadCountInvariant) {
  common::Rng rng(42);
  Tensor4f in(1, 4, 14, 14);
  Tensor4f k(6, 4, 3, 3);
  rng.fill_uniform(in.flat());
  rng.fill_normal(k.flat(), 0.0F, 0.5F);
  hw::EngineConfig cfg;
  cfg.m = 2;
  cfg.r = 3;
  cfg.parallel_pes = 4;
  const hw::WinogradEngine engine(cfg);
  expect_thread_invariant(
      [&] { return engine.run_layer(in, k, 1).output; });
}

TEST_F(RuntimeTest, ForwardIsThreadCountInvariant) {
  const auto layers = nn::vgg16_d_scaled(28, 16);  // 8x8 input, tiny
  const auto weights = nn::random_weights(layers, 43);
  common::Rng rng(44);
  Tensor4f batch(5, 3, 8, 8);
  rng.fill_uniform(batch.flat());
  for (const auto algo : {nn::ConvAlgo::kSpatial, nn::ConvAlgo::kIm2col,
                          nn::ConvAlgo::kWinograd2}) {
    expect_thread_invariant(
        [&] { return nn::forward(layers, weights, batch, algo); });
  }
}

TEST_F(RuntimeTest, BatchForwardMatchesPerImageForward) {
  // The batch-parallel split must agree with slicing the batch by hand.
  const auto layers = nn::vgg16_d_scaled(28, 16);
  const auto weights = nn::random_weights(layers, 45);
  common::Rng rng(46);
  Tensor4f batch(3, 3, 8, 8);
  rng.fill_uniform(batch.flat());
  const Tensor4f all =
      nn::forward(layers, weights, batch, nn::ConvAlgo::kIm2col);
  const std::size_t vol = 3 * 8 * 8;
  for (std::size_t img = 0; img < 3; ++img) {
    Tensor4f single(1, 3, 8, 8);
    const auto src = batch.flat().subspan(img * vol, vol);
    std::copy(src.begin(), src.end(), single.flat().begin());
    const Tensor4f one =
        nn::forward(layers, weights, single, nn::ConvAlgo::kIm2col);
    const auto os = all.shape();
    const std::size_t ovol = os.c * os.h * os.w;
    const auto got = all.flat().subspan(img * ovol, ovol);
    const auto want = one.flat();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]);
    }
  }
}

}  // namespace
}  // namespace wino::runtime
