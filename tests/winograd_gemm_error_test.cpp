// The batched-GEMM Winograd formulation and the analytic error model.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "conv/spatial.hpp"
#include "winograd/error_model.hpp"
#include "winograd/gemm_form.hpp"

namespace wino::winograd {
namespace {

using common::Rng;
using tensor::Tensor4f;

Tensor4f random_tensor(std::size_t n, std::size_t c, std::size_t h,
                       std::size_t w, Rng& rng) {
  Tensor4f t(n, c, h, w);
  rng.fill_uniform(t.flat());
  return t;
}

struct GemmCase {
  int m;
  std::size_t n, c, h, w, k;
  int pad;
};

class GemmForm : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmForm, MatchesSpatialAndTiledWinograd) {
  const auto p = GetParam();
  Rng rng(p.m * 7 + p.k);
  const Tensor4f input = random_tensor(p.n, p.c, p.h, p.w, rng);
  const Tensor4f kernels = random_tensor(p.k, p.c, 3, 3, rng);

  const Tensor4f ref =
      conv::conv2d_spatial(input, kernels, {.pad = p.pad, .stride = 1});
  WinogradConvOptions opt;
  opt.pad = p.pad;
  const Tensor4f tiled = conv2d_winograd(input, kernels, p.m, opt);
  const Tensor4f gemm = conv2d_winograd_gemm(input, kernels, p.m, opt);

  ASSERT_EQ(gemm.shape(), ref.shape());
  const float scale = std::max(1.0F, tensor::max_abs(ref));
  EXPECT_LE(tensor::max_abs_diff(gemm, ref) / scale, 5e-4F);
  // Same math as the tiled path up to accumulation order.
  EXPECT_LE(tensor::max_abs_diff(gemm, tiled) / scale, 5e-4F);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmForm,
    ::testing::Values(GemmCase{2, 1, 3, 8, 8, 4, 1},
                      GemmCase{2, 2, 2, 7, 9, 3, 1},
                      GemmCase{3, 1, 4, 9, 9, 2, 1},
                      GemmCase{4, 1, 2, 10, 6, 5, 1},
                      GemmCase{4, 1, 1, 8, 8, 1, 0}),
    [](const auto& info) {
      const auto& p = info.param;
      std::string name = "m";
      name += std::to_string(p.m);
      name += "_c";
      name += std::to_string(p.c);
      name += "k";
      name += std::to_string(p.k);
      name += "pad";
      name += std::to_string(p.pad);
      return name;
    });

TEST(GemmForm, RejectsChannelMismatch) {
  const Tensor4f input(1, 3, 8, 8);
  const Tensor4f kernels(2, 4, 3, 3);
  EXPECT_THROW(conv2d_winograd_gemm(input, kernels, 2),
               std::invalid_argument);
}

TEST(ErrorModel, InfNormExact) {
  const RMatrix m{{1, -2, 3}, {{1, 2}, {1, 2}, {0, 1}}};
  EXPECT_EQ(inf_norm(m), common::Rational(6));
}

TEST(ErrorModel, KappaGrowsWithM) {
  double prev = 0;
  for (int m = 2; m <= 7; ++m) {
    const ErrorModel e = error_model(m, 3);
    EXPECT_GT(e.kappa_2d, prev) << "m=" << m;
    EXPECT_DOUBLE_EQ(e.kappa_2d, e.kappa_1d * e.kappa_1d);
    prev = e.kappa_2d;
  }
}

TEST(ErrorModel, PredictsMeasuredErrorOrder) {
  // The analytic estimate must upper-bound (loosely) and rank the
  // empirical max error of random tile convolutions. Note: the ranking is
  // only asserted for m = 2 -> 4; the interpolation-point search can find
  // gentler constants for larger even tiles (F(6,3) measures *below*
  // F(4,3) with the searched points), so monotonicity in m is not a law.
  Rng rng(71);
  double prev_measured = 0;
  for (const int m : {2, 4}) {
    const TileTransformer xf(transforms(m, 3));
    const auto n = static_cast<std::size_t>(xf.tile());
    std::vector<float> d(n * n);
    std::vector<float> g(9);
    std::vector<float> y(static_cast<std::size_t>(m) * m);
    double worst = 0;
    for (int trial = 0; trial < 50; ++trial) {
      rng.fill_uniform(d);
      rng.fill_uniform(g);
      xf.convolve_tile(d, g, y);
      for (int oy = 0; oy < m; ++oy) {
        for (int ox = 0; ox < m; ++ox) {
          double want = 0;
          for (std::size_t u = 0; u < 3; ++u) {
            for (std::size_t v = 0; v < 3; ++v) {
              want += static_cast<double>(
                          d[(static_cast<std::size_t>(oy) + u) * n +
                            static_cast<std::size_t>(ox) + v]) *
                      g[u * 3 + v];
            }
          }
          worst = std::max(
              worst, std::abs(want - y[static_cast<std::size_t>(
                                          oy * m + ox)]));
        }
      }
    }
    const ErrorModel e = error_model(m, 3);
    EXPECT_GT(e.fp32_error_estimate(1.0) * 64, worst) << "m=" << m;
    EXPECT_GT(worst, prev_measured) << "m=" << m;  // same ranking
    prev_measured = worst;
  }
}

TEST(ErrorModel, GuardBitsCoverQuantSaturation) {
  // F(4,3) needed guard bits in the quantised datapath (see quant tests);
  // the model must demand a positive number of them, more for F(4,3) than
  // F(2,3). (F(6,3) demands *fewer* than F(4,3): the point search lands
  // on smaller constants there — same non-monotonicity as above.)
  const int g2 = error_model(2, 3).required_guard_bits();
  const int g4 = error_model(4, 3).required_guard_bits();
  const int g6 = error_model(6, 3).required_guard_bits();
  EXPECT_GE(g2, 1);
  EXPECT_GT(g4, g2);
  EXPECT_GE(g6, 1);
}

}  // namespace
}  // namespace wino::winograd
