// Serving-layer contract: the bounded MPMC queue primitive, dynamic
// batcher coalescing, max_wait timeout flush, block-vs-reject
// backpressure, drain-on-shutdown (no dropped futures), multi-model
// isolation — and the acceptance-critical property that a served output
// is bit-identical to direct nn::forward on the same image.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <mutex>
#include <semaphore>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "nn/forward.hpp"
#include "runtime/bounded_queue.hpp"
#include "serve/inference_server.hpp"
#include "tensor/tensor.hpp"

namespace {

using wino::nn::ConvAlgo;
using wino::serve::BackpressurePolicy;
using wino::serve::InferenceServer;
using wino::serve::ServerConfig;
using wino::serve::ServerOverloaded;
using wino::tensor::Tensor4f;

/// A single tiny conv layer — enough model for the batching mechanics
/// tests to run in microseconds.
std::vector<wino::nn::LayerSpec> tiny_model() {
  wino::nn::LayerSpec l;
  l.kind = wino::nn::LayerKind::kConv;
  l.conv.name = "tiny";
  l.conv.h = 8;
  l.conv.w = 8;
  l.conv.c = 3;
  l.conv.k = 4;
  return {l};
}

Tensor4f tiny_image(std::uint64_t seed) {
  wino::common::Rng rng(seed);
  Tensor4f img(1, 3, 8, 8);
  rng.fill_uniform(img.flat(), -1.0F, 1.0F);
  return img;
}

bool bit_identical(const Tensor4f& a, const Tensor4f& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// BoundedQueue primitive
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrderAndCapacity) {
  wino::runtime::BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueTest, PopForTimesOutOnEmpty) {
  wino::runtime::BoundedQueue<int> q(4);
  const auto got = q.pop_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.has_value());
  EXPECT_FALSE(q.closed());
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsExit) {
  wino::runtime::BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));      // rejected after close
  EXPECT_FALSE(q.try_push(9));
  EXPECT_EQ(q.pop().value(), 7);       // remaining items still drain
  EXPECT_FALSE(q.pop().has_value());   // then nullopt forever
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  wino::runtime::BoundedQueue<int> q(1);
  std::promise<bool> woke;
  std::thread consumer([&] { woke.set_value(!q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  EXPECT_TRUE(woke.get_future().get());
  consumer.join();
}

// ---------------------------------------------------------------------------
// nn batch-entry API
// ---------------------------------------------------------------------------

TEST(StackImagesTest, RoundTripsThroughBatch) {
  const Tensor4f a = tiny_image(1);
  const Tensor4f b = tiny_image(2);
  const Tensor4f c = tiny_image(3);
  const Tensor4f batch = wino::nn::stack_images({&a, &b, &c});
  ASSERT_EQ(batch.shape().n, 3u);
  const auto split = wino::nn::unstack_images(batch);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_TRUE(bit_identical(split[0], a));
  EXPECT_TRUE(bit_identical(split[1], b));
  EXPECT_TRUE(bit_identical(split[2], c));
}

TEST(StackImagesTest, RejectsMismatchedShapes) {
  const Tensor4f a = tiny_image(1);
  const Tensor4f wrong(1, 3, 4, 4);
  EXPECT_THROW((void)wino::nn::stack_images({&a, &wrong}),
               std::invalid_argument);
  EXPECT_THROW((void)wino::nn::stack_images({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dynamic batching
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, CoalescesConcurrentSubmitsIntoFullBatches) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 5000000;  // 5 s — far beyond any plausible CI stall,
                              // so flushes can only come from max_batch
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  constexpr std::size_t kRequests = 8;
  std::vector<std::future<Tensor4f>> futures(kRequests);
  {
    std::vector<std::jthread> clients;
    for (std::size_t i = 0; i < kRequests; ++i) {
      clients.emplace_back(
          [&, i] { futures[i] = server.submit(model, tiny_image(i)); });
    }
  }
  for (auto& f : futures) (void)f.get();

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  // With max_wait far beyond the test's runtime, the only flush trigger is
  // a full batch: exactly two batches of four.
  EXPECT_EQ(stats.batches, 2u);
  ASSERT_GT(stats.batch_size_histogram.size(), 4u);
  EXPECT_EQ(stats.batch_size_histogram[4], 2u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 4.0);
  server.shutdown();
}

// Pins serve/stats.cpp percentile()'s empty-sample guard: a snapshot
// taken before any request completed must report zeroed quantiles, not
// read samples[0] of an empty vector.
TEST(InferenceServerTest, FreshServerSnapshotReportsZeroedStats) {
  InferenceServer server(ServerConfig{});
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_DOUBLE_EQ(stats.p50_latency_us, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99_latency_us, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_latency_us, 0.0);
  server.shutdown();
}

TEST(InferenceServerTest, MaxWaitFlushesPartialBatch) {
  ServerConfig cfg;
  cfg.max_batch = 8;         // never reached by 3 requests
  cfg.max_wait_us = 20000;   // 20 ms timeout flush
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  std::vector<std::future<Tensor4f>> futures;
  for (std::size_t i = 0; i < 3; ++i) {
    futures.push_back(server.submit(model, tiny_image(i)));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    (void)f.get();
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GE(stats.batches, 1u);
  // No flush came from a full batch — every dispatched batch was partial.
  for (std::size_t s = cfg.max_batch; s < stats.batch_size_histogram.size();
       ++s) {
    EXPECT_EQ(stats.batch_size_histogram[s], 0u);
  }
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, RejectPolicyThrowsAtMaxInflight) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 1000000;  // pending requests sit in the batcher window
  cfg.max_inflight = 2;
  cfg.backpressure = BackpressurePolicy::kReject;
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  auto f1 = server.submit(model, tiny_image(1));
  auto f2 = server.submit(model, tiny_image(2));
  // Neither request can complete (batch of 4 never fills, 1 s deadline far
  // away), so the third submit deterministically hits the bound.
  EXPECT_THROW((void)server.submit(model, tiny_image(3)), ServerOverloaded);
  EXPECT_EQ(server.stats().rejected, 1u);

  server.shutdown();  // flushes the pending pair — futures still complete
  EXPECT_NO_THROW((void)f1.get());
  EXPECT_NO_THROW((void)f2.get());
}

TEST(InferenceServerTest, BlockPolicyWaitsForCapacity) {
  std::counting_semaphore<8> gate(0);
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait_us = 20000;
  cfg.max_inflight = 2;
  cfg.backpressure = BackpressurePolicy::kBlock;
  cfg.batch_observer = [&](wino::serve::ModelId, std::size_t) {
    gate.acquire();  // freeze the worker until the test releases it
  };
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  // Fill capacity: these two form a full batch whose worker is frozen.
  auto f1 = server.submit(model, tiny_image(1));
  auto f2 = server.submit(model, tiny_image(2));

  std::atomic<bool> third_admitted{false};
  std::future<Tensor4f> f3;
  std::thread blocked([&] {
    f3 = server.submit(model, tiny_image(3));
    third_admitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Still blocked: capacity can only free when the frozen batch completes.
  EXPECT_FALSE(third_admitted.load());

  // Generous release: if a scheduling stall split the first two submits
  // into separate timeout-flushed batches, more than two batches need
  // unfreezing — never leave a token short (the test would hang).
  gate.release(8);
  blocked.join();
  EXPECT_TRUE(third_admitted.load());
  EXPECT_NO_THROW((void)f1.get());
  EXPECT_NO_THROW((void)f2.get());
  EXPECT_NO_THROW((void)f3.get());
  EXPECT_EQ(server.stats().rejected, 0u);
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Shutdown / drain
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, ShutdownDrainsPendingWithoutDroppingFutures) {
  ServerConfig cfg;
  cfg.max_batch = 16;
  cfg.max_wait_us = 10000000;  // 10 s: nothing flushes on its own
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  std::vector<std::future<Tensor4f>> futures;
  for (std::size_t i = 0; i < 5; ++i) {
    futures.push_back(server.submit(model, tiny_image(i)));
  }
  server.shutdown();  // must flush the pending window, not drop it

  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const Tensor4f out = f.get();  // no broken_promise, no exception
    EXPECT_EQ(out.shape().n, 1u);
    EXPECT_EQ(out.shape().c, 4u);
  }
  EXPECT_EQ(server.stats().completed, 5u);
  EXPECT_THROW((void)server.submit(model, tiny_image(9)),
               std::runtime_error);
}

TEST(InferenceServerTest, DrainWaitsForAllInflight) {
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait_us = 5000;
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);
  std::vector<std::future<Tensor4f>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    futures.push_back(server.submit(model, tiny_image(i)));
  }
  server.drain();
  EXPECT_EQ(server.stats().inflight, 0u);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, RejectsBadSubmissions) {
  InferenceServer server;
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);
  EXPECT_THROW((void)server.submit(model + 1, tiny_image(1)),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit(model, Tensor4f(2, 3, 8, 8)),
               std::invalid_argument);  // n != 1
  EXPECT_THROW((void)server.submit(model, Tensor4f(1, 3, 4, 4)),
               std::invalid_argument);  // wrong spatial extent
  EXPECT_THROW((void)server.add_model("empty", {}, {}, ConvAlgo::kIm2col),
               std::invalid_argument);
}

TEST(InferenceServerTest, BatchFailureDoesNotPoisonOtherRequests) {
  // A maxpool-only model: submit() cannot fully validate input shapes for
  // it, so a mismatched image reaches the batcher and makes stack_images
  // throw for the whole batch — the server must then retry per request so
  // only the culprit's future fails.
  wino::nn::LayerSpec pool;
  pool.kind = wino::nn::LayerKind::kMaxPool;
  ServerConfig cfg;
  cfg.max_batch = 3;
  cfg.max_wait_us = 50000;
  InferenceServer server(cfg);
  const auto model =
      server.add_model("pool", {pool}, {}, ConvAlgo::kIm2col);

  auto good1 = server.submit(model, tiny_image(1));
  auto good2 = server.submit(model, tiny_image(2));
  auto odd = server.submit(model, Tensor4f(1, 3, 4, 4));  // mismatched h/w

  // The mixed batch fails stack_images as a whole; the per-request retry
  // then serves every request (each is individually valid here).
  EXPECT_EQ(good1.get().shape().h, 4u);  // 8x8 pooled to 4x4
  EXPECT_EQ(good2.get().shape().h, 4u);
  EXPECT_EQ(odd.get().shape().h, 2u);    // 4x4 pooled to 2x2, not poisoned
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Numerical contract and multi-model sessions
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, ServedOutputsBitIdenticalToDirectForward) {
  const auto layers = wino::nn::vgg16_d_scaled(14, 8);  // 16x16 input
  const auto weights = wino::nn::random_weights(layers, 5);

  constexpr std::size_t kImages = 6;
  std::vector<Tensor4f> images;
  std::vector<Tensor4f> expected;
  wino::common::Rng rng(17);
  for (std::size_t i = 0; i < kImages; ++i) {
    Tensor4f img(1, 3, 16, 16);
    rng.fill_uniform(img.flat(), -1.0F, 1.0F);
    expected.push_back(
        wino::nn::forward(layers, weights, img, ConvAlgo::kWinograd2));
    images.push_back(std::move(img));
  }

  ServerConfig cfg;
  cfg.max_batch = 3;  // forces coalescing into multi-image batches
  cfg.max_wait_us = 50000;
  InferenceServer server(cfg);
  const auto model =
      server.add_model("vgg", layers, weights, ConvAlgo::kWinograd2);

  std::vector<std::future<Tensor4f>> futures;
  for (const Tensor4f& img : images) {
    futures.push_back(server.submit(model, img));
  }
  for (std::size_t i = 0; i < kImages; ++i) {
    const Tensor4f served = futures[i].get();
    EXPECT_TRUE(bit_identical(served, expected[i]))
        << "served output " << i << " differs from direct forward";
  }
  // The point of batching: requests actually shared batches.
  EXPECT_LT(server.stats().batches, kImages);
  server.shutdown();
}

TEST(InferenceServerTest, MultiModelSessionsStayIsolated) {
  const auto layers = tiny_model();
  const auto weights_a = wino::nn::random_weights(layers, 100);
  const auto weights_b = wino::nn::random_weights(layers, 200);

  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 30000;
  std::mutex seen_mutex;
  std::vector<std::pair<wino::serve::ModelId, std::size_t>> seen_batches;
  cfg.batch_observer = [&](wino::serve::ModelId m, std::size_t n) {
    std::lock_guard lock(seen_mutex);
    seen_batches.emplace_back(m, n);
  };
  InferenceServer server(cfg);
  const auto a =
      server.add_model("a", layers, weights_a, ConvAlgo::kWinograd2);
  const auto b =
      server.add_model("b", layers, weights_b, ConvAlgo::kWinograd2);

  std::vector<std::future<Tensor4f>> fa;
  std::vector<std::future<Tensor4f>> fb;
  std::vector<Tensor4f> images;
  for (std::size_t i = 0; i < 4; ++i) images.push_back(tiny_image(i));
  for (std::size_t i = 0; i < 4; ++i) {
    fa.push_back(server.submit(a, images[i]));
    fb.push_back(server.submit(b, images[i]));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    const Tensor4f expect_a =
        wino::nn::forward(layers, weights_a, images[i], ConvAlgo::kWinograd2);
    const Tensor4f expect_b =
        wino::nn::forward(layers, weights_b, images[i], ConvAlgo::kWinograd2);
    EXPECT_TRUE(bit_identical(fa[i].get(), expect_a));
    EXPECT_TRUE(bit_identical(fb[i].get(), expect_b));
  }
  server.shutdown();

  // Every dispatched batch belongs to exactly one model by construction;
  // both models' streams were actually served.
  bool saw_a = false;
  bool saw_b = false;
  for (const auto& [m, n] : seen_batches) {
    EXPECT_LE(n, cfg.max_batch);
    saw_a = saw_a || m == a;
    saw_b = saw_b || m == b;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

}  // namespace
