// Serving-layer contract: the bounded MPMC queue primitive, dynamic
// batcher coalescing, deadline-aware EDF scheduling (ordering, shedding,
// starvation promotion), cost-based admission, max_wait timeout flush,
// block-vs-reject backpressure, drain-on-shutdown (no dropped futures),
// multi-model isolation — and the acceptance-critical property that a
// served output is bit-identical to direct nn::forward on the same image,
// whatever position EDF assembly gave its request.
//
// Every time-dependent scenario runs on a runtime::ManualClock: the test
// scripts time explicitly (submit -> wait for the scheduler to pool the
// requests -> advance), so there are no sleeps and no scheduler-dependent
// flakiness — deterministic under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <mutex>
#include <semaphore>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "nn/forward.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/clock.hpp"
#include "serve/inference_server.hpp"
#include "tensor/tensor.hpp"

namespace {

using wino::nn::ConvAlgo;
using wino::runtime::ManualClock;
using wino::serve::AdmissionRejected;
using wino::serve::BackpressurePolicy;
using wino::serve::BatchRequestInfo;
using wino::serve::DeadlineMissed;
using wino::serve::InferenceServer;
using wino::serve::ServerConfig;
using wino::serve::ServerOverloaded;
using wino::serve::SubmitOptions;
using wino::tensor::Tensor4f;

/// A single tiny conv layer — enough model for the batching mechanics
/// tests to run in microseconds.
std::vector<wino::nn::LayerSpec> tiny_model() {
  wino::nn::LayerSpec l;
  l.kind = wino::nn::LayerKind::kConv;
  l.conv.name = "tiny";
  l.conv.h = 8;
  l.conv.w = 8;
  l.conv.c = 3;
  l.conv.k = 4;
  return {l};
}

Tensor4f tiny_image(std::uint64_t seed) {
  wino::common::Rng rng(seed);
  Tensor4f img(1, 3, 8, 8);
  rng.fill_uniform(img.flat(), -1.0F, 1.0F);
  return img;
}

bool bit_identical(const Tensor4f& a, const Tensor4f& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.size() * sizeof(float)) == 0;
}

/// Deterministic-clock test rig: counts requests reaching the batcher's
/// pending pool and lets the test block until N have, which is the safe
/// moment to advance the ManualClock (advancing earlier could catch some
/// requests still in the submission queue and split a flush).
class PendingBarrier {
 public:
  void arm(std::size_t target) {
    std::lock_guard lock(mutex_);
    target_ = target;
    if (count_ >= target_) promise_.set_value();
  }

  std::function<void(wino::serve::ModelId, std::size_t)> observer() {
    return [this](wino::serve::ModelId, std::size_t) {
      std::lock_guard lock(mutex_);
      ++count_;
      if (target_ != 0 && count_ == target_) promise_.set_value();
    };
  }

  void wait() { promise_.get_future().wait(); }

 private:
  std::mutex mutex_;
  std::size_t count_ = 0;
  std::size_t target_ = 0;
  std::promise<void> promise_;
};

/// Collects assembled batches' request metadata in assembly order.
class BatchLog {
 public:
  std::function<void(wino::serve::ModelId,
                     const std::vector<BatchRequestInfo>&)>
  observer() {
    return [this](wino::serve::ModelId,
                  const std::vector<BatchRequestInfo>& info) {
      std::lock_guard lock(mutex_);
      batches_.push_back(info);
    };
  }

  std::vector<std::vector<BatchRequestInfo>> snapshot() {
    std::lock_guard lock(mutex_);
    return batches_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::vector<BatchRequestInfo>> batches_;
};

// ---------------------------------------------------------------------------
// BoundedQueue primitive (randomized MPMC stress lives in
// tests/runtime_queue_test.cpp; these pin the single-threaded contract)
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrderAndCapacity) {
  wino::runtime::BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueTest, PopForTimesOutOnEmpty) {
  wino::runtime::BoundedQueue<int> q(4);
  const auto got = q.pop_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.has_value());
  EXPECT_FALSE(q.closed());
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsExit) {
  wino::runtime::BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));      // rejected after close
  EXPECT_FALSE(q.try_push(9));
  EXPECT_EQ(q.pop().value(), 7);       // remaining items still drain
  EXPECT_FALSE(q.pop().has_value());   // then nullopt forever
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  wino::runtime::BoundedQueue<int> q(1);
  std::promise<bool> woke;
  std::thread consumer([&] { woke.set_value(!q.pop().has_value()); });
  q.close();  // wakes the consumer whether it parked yet or not
  EXPECT_TRUE(woke.get_future().get());
  consumer.join();
}

// ---------------------------------------------------------------------------
// nn batch-entry API
// ---------------------------------------------------------------------------

TEST(StackImagesTest, RoundTripsThroughBatch) {
  const Tensor4f a = tiny_image(1);
  const Tensor4f b = tiny_image(2);
  const Tensor4f c = tiny_image(3);
  const Tensor4f batch = wino::nn::stack_images({&a, &b, &c});
  ASSERT_EQ(batch.shape().n, 3u);
  const auto split = wino::nn::unstack_images(batch);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_TRUE(bit_identical(split[0], a));
  EXPECT_TRUE(bit_identical(split[1], b));
  EXPECT_TRUE(bit_identical(split[2], c));
}

TEST(StackImagesTest, RejectsMismatchedShapes) {
  const Tensor4f a = tiny_image(1);
  const Tensor4f wrong(1, 3, 4, 4);
  EXPECT_THROW((void)wino::nn::stack_images({&a, &wrong}),
               std::invalid_argument);
  EXPECT_THROW((void)wino::nn::stack_images({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dynamic batching
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, CoalescesConcurrentSubmitsIntoFullBatches) {
  ManualClock clock;  // time never moves: flushes can only come from
                      // max_batch, whatever the CI machine is doing
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.clock = &clock;
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  constexpr std::size_t kRequests = 8;
  std::vector<std::future<Tensor4f>> futures(kRequests);
  {
    std::vector<std::jthread> clients;
    for (std::size_t i = 0; i < kRequests; ++i) {
      clients.emplace_back(
          [&, i] { futures[i] = server.submit(model, tiny_image(i)); });
    }
  }
  for (auto& f : futures) (void)f.get();

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  // With time frozen, the only flush trigger is a full batch: exactly two
  // batches of four.
  EXPECT_EQ(stats.batches, 2u);
  ASSERT_GT(stats.batch_size_histogram.size(), 4u);
  EXPECT_EQ(stats.batch_size_histogram[4], 2u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 4.0);
  server.shutdown();
}

// Pins serve/stats.cpp percentile()'s empty-sample guard: a snapshot
// taken before any request completed must report zeroed quantiles, not
// read samples[0] of an empty vector.
TEST(InferenceServerTest, FreshServerSnapshotReportsZeroedStats) {
  InferenceServer server(ServerConfig{});
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_DOUBLE_EQ(stats.p50_latency_us, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99_latency_us, 0.0);
  EXPECT_DOUBLE_EQ(stats.p999_latency_us, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_latency_us, 0.0);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.admission_rejected, 0u);
  server.shutdown();
}

TEST(InferenceServerTest, MaxWaitFlushesPartialBatchOnManualClock) {
  ManualClock clock;
  PendingBarrier pooled;
  ServerConfig cfg;
  cfg.max_batch = 8;        // never reached by 3 requests
  cfg.max_wait_us = 20000;  // 20 ms of *scripted* time
  cfg.clock = &clock;
  cfg.pending_observer = pooled.observer();
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  pooled.arm(3);
  std::vector<std::future<Tensor4f>> futures;
  for (std::size_t i = 0; i < 3; ++i) {
    futures.push_back(server.submit(model, tiny_image(i)));
  }
  pooled.wait();  // all three are in the batcher's pool...
  // ...and nothing has flushed: scripted time hasn't moved.
  EXPECT_EQ(server.stats().batches, 0u);

  clock.advance(std::chrono::microseconds(20001));  // past max_wait
  for (auto& f : futures) (void)f.get();

  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.batches, 1u);  // one partial flush with all three
  ASSERT_GT(stats.batch_size_histogram.size(), 3u);
  EXPECT_EQ(stats.batch_size_histogram[3], 1u);
  server.shutdown();
}

// ---------------------------------------------------------------------------
// EDF scheduling, shedding, admission (all on the manual clock)
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, EdfOrdersBatchByPriorityThenDeadline) {
  ManualClock clock;
  BatchLog log;
  ServerConfig cfg;
  cfg.max_batch = 4;  // the fourth submit triggers assembly
  cfg.clock = &clock;
  cfg.batch_detail_observer = log.observer();
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  // Arrival order 1..4; expected execution order:
  //   tag 3 (priority 1), then within priority 0 by deadline: tag 4
  //   (10 ms) before tag 2 (50 ms), best-effort tag 1 last.
  std::vector<std::future<Tensor4f>> futures;
  futures.push_back(server.submit(model, tiny_image(1), {.tag = 1}));
  futures.push_back(
      server.submit(model, tiny_image(2), {.deadline_us = 50000, .tag = 2}));
  futures.push_back(
      server.submit(model, tiny_image(3), {.priority = 1, .tag = 3}));
  futures.push_back(
      server.submit(model, tiny_image(4), {.deadline_us = 10000, .tag = 4}));
  for (auto& f : futures) (void)f.get();

  const auto batches = log.snapshot();
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[0][0].tag, 3u);
  EXPECT_EQ(batches[0][1].tag, 4u);
  EXPECT_EQ(batches[0][2].tag, 2u);
  EXPECT_EQ(batches[0][3].tag, 1u);
  EXPECT_EQ(server.stats().shed, 0u);
  server.shutdown();
}

TEST(InferenceServerTest, ShedsRequestsWhoseDeadlinePassed) {
  ManualClock clock;
  PendingBarrier pooled;
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100000;  // flush trigger far beyond the deadlines
  cfg.clock = &clock;
  cfg.pending_observer = pooled.observer();
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  pooled.arm(2);
  auto doomed = server.submit(model, tiny_image(1), {.deadline_us = 2000});
  auto survivor =
      server.submit(model, tiny_image(2), {.deadline_us = 500000});
  pooled.wait();

  clock.advance(std::chrono::milliseconds(3));  // past the 2 ms deadline
  EXPECT_THROW((void)doomed.get(), DeadlineMissed);

  server.shutdown();  // flushes the survivor
  EXPECT_NO_THROW((void)survivor.get());
  const auto stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(InferenceServerTest, ShedsPredictedlyInfeasibleRequestUpFront) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.max_wait_us = 1000000;  // 1 s: launch-by, not max_wait, dispatches
  cfg.clock = &clock;
  InferenceServer server(cfg);
  // A plan that predicts 10 ms per request: a 5 ms deadline is infeasible
  // the moment the scheduler sees it — shed without advancing time at all.
  auto plan = wino::nn::uniform_plan(tiny_model(), ConvAlgo::kIm2col);
  plan.predicted_total_ms = 10.0;
  const auto model = server.add_model(
      "tiny", std::move(plan), wino::nn::random_weights(tiny_model()));

  auto infeasible =
      server.submit(model, tiny_image(1), {.deadline_us = 5000});
  EXPECT_THROW((void)infeasible.get(), DeadlineMissed);
  // A deadline with headroom (50 ms > 10 ms predicted) is dispatched at
  // its launch-by point — deadline minus predicted cost — instead of
  // waiting out max_wait. At exactly launch-by the predicted completion
  // lands exactly on the deadline, which still counts as feasible
  // (shedding is strict), so the request executes.
  auto feasible =
      server.submit(model, tiny_image(2), {.deadline_us = 50000});
  clock.advance(std::chrono::milliseconds(40));  // launch-by = 50 - 10
  EXPECT_NO_THROW((void)feasible.get());

  const auto stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  server.shutdown();
}

TEST(InferenceServerTest, AdmissionBudgetRejectsPredictedOverload) {
  ManualClock clock;
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 1000000;  // requests pool; backlog stays resident
  cfg.admission_budget_ms = 25.0;
  cfg.clock = &clock;
  InferenceServer server(cfg);
  auto plan = wino::nn::uniform_plan(tiny_model(), ConvAlgo::kIm2col);
  plan.predicted_total_ms = 10.0;
  const auto model = server.add_model(
      "tiny", std::move(plan), wino::nn::random_weights(tiny_model()));

  auto f1 = server.submit(model, tiny_image(1));  // backlog 10 ms
  auto f2 = server.submit(model, tiny_image(2));  // backlog 20 ms
  // 30 ms > 25 ms budget: rejected at submit with the distinct outcome.
  EXPECT_THROW((void)server.submit(model, tiny_image(3)), AdmissionRejected);

  auto stats = server.stats();
  EXPECT_EQ(stats.admission_rejected, 1u);
  EXPECT_EQ(stats.rejected, 0u);  // capacity rejections are a separate count
  EXPECT_DOUBLE_EQ(stats.backlog_predicted_ms, 20.0);

  server.shutdown();  // completes the two admitted requests
  EXPECT_NO_THROW((void)f1.get());
  EXPECT_NO_THROW((void)f2.get());
  stats = server.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_DOUBLE_EQ(stats.backlog_predicted_ms, 0.0);  // released on finish
}

TEST(InferenceServerTest, StarvationBoundPromotesBestEffortRequest) {
  ManualClock clock;
  PendingBarrier pooled;
  BatchLog log;
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait_us = 100000;        // 100 ms
  cfg.starvation_bound_us = 50000;  // promoted after 50 ms
  cfg.clock = &clock;
  cfg.pending_observer = pooled.observer();
  cfg.batch_detail_observer = log.observer();
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  // A best-effort request waits alone past the starvation bound...
  pooled.arm(1);
  auto best_effort = server.submit(model, tiny_image(1), {.tag = 1});
  pooled.wait();
  clock.advance(std::chrono::milliseconds(60));

  // ...then urgent traffic arrives. Without promotion the priority-1
  // requests would fill the batch ahead of it; the starved request must
  // lead the next assembly instead.
  auto urgent1 =
      server.submit(model, tiny_image(2), {.priority = 1, .tag = 2});
  auto urgent2 =
      server.submit(model, tiny_image(3), {.priority = 1, .tag = 3});
  (void)best_effort.get();
  (void)urgent1.get();

  const auto batches = log.snapshot();
  ASSERT_GE(batches.size(), 1u);
  ASSERT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[0][0].tag, 1u);  // promoted past both priority-1 peers
  EXPECT_EQ(batches[0][1].tag, 2u);
  server.shutdown();
  EXPECT_NO_THROW((void)urgent2.get());
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, RejectPolicyThrowsAtMaxInflight) {
  ManualClock clock;  // frozen time: pending requests sit in the batcher
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_inflight = 2;
  cfg.backpressure = BackpressurePolicy::kReject;
  cfg.clock = &clock;
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  auto f1 = server.submit(model, tiny_image(1));
  auto f2 = server.submit(model, tiny_image(2));
  // Neither request can complete (batch of 4 never fills, time never
  // moves), so the third submit deterministically hits the bound.
  EXPECT_THROW((void)server.submit(model, tiny_image(3)), ServerOverloaded);
  EXPECT_EQ(server.stats().rejected, 1u);

  server.shutdown();  // flushes the pending pair — futures still complete
  EXPECT_NO_THROW((void)f1.get());
  EXPECT_NO_THROW((void)f2.get());
}

TEST(InferenceServerTest, BlockPolicyWaitsForCapacity) {
  ManualClock clock;
  std::counting_semaphore<8> gate(0);
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.max_inflight = 2;
  cfg.backpressure = BackpressurePolicy::kBlock;
  cfg.clock = &clock;
  cfg.batch_observer = [&](wino::serve::ModelId, std::size_t) {
    gate.acquire();  // freeze the worker until the test releases it
  };
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  // Fill capacity: these two form a full batch whose worker is frozen.
  auto f1 = server.submit(model, tiny_image(1));
  auto f2 = server.submit(model, tiny_image(2));

  std::atomic<bool> third_admitted{false};
  std::future<Tensor4f> f3;
  std::thread blocked([&] {
    f3 = server.submit(model, tiny_image(3));
    third_admitted = true;
  });
  // The blocked_submitters gauge turning 1 *is* the "submitter is parked"
  // event — no sleep-and-hope: the loop exits exactly when the submitter
  // has entered the backpressure wait, and can't exit any earlier.
  while (server.stats().blocked_submitters != 1) std::this_thread::yield();
  EXPECT_FALSE(third_admitted.load());

  // Generous release: every dispatched batch (including the third
  // request's own, flushed by shutdown below) needs a token — never leave
  // one short (the test would hang).
  gate.release(8);
  blocked.join();
  EXPECT_TRUE(third_admitted.load());
  EXPECT_NO_THROW((void)f1.get());
  EXPECT_NO_THROW((void)f2.get());
  EXPECT_EQ(server.stats().rejected, 0u);
  server.shutdown();  // flushes the third request's partial batch
  EXPECT_NO_THROW((void)f3.get());
}

// ---------------------------------------------------------------------------
// Shutdown / drain
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, ShutdownDrainsPendingWithoutDroppingFutures) {
  ManualClock clock;  // frozen: nothing flushes on its own
  ServerConfig cfg;
  cfg.max_batch = 16;
  cfg.clock = &clock;
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);

  std::vector<std::future<Tensor4f>> futures;
  for (std::size_t i = 0; i < 5; ++i) {
    futures.push_back(server.submit(model, tiny_image(i)));
  }
  server.shutdown();  // must flush the pending window, not drop it

  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const Tensor4f out = f.get();  // no broken_promise, no exception
    EXPECT_EQ(out.shape().n, 1u);
    EXPECT_EQ(out.shape().c, 4u);
  }
  EXPECT_EQ(server.stats().completed, 5u);
  EXPECT_THROW((void)server.submit(model, tiny_image(9)),
               std::runtime_error);
}

TEST(InferenceServerTest, DrainWaitsForAllInflight) {
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait_us = 5000;
  InferenceServer server(cfg);
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);
  std::vector<std::future<Tensor4f>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    futures.push_back(server.submit(model, tiny_image(i)));
  }
  server.drain();
  EXPECT_EQ(server.stats().inflight, 0u);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, RejectsBadSubmissions) {
  InferenceServer server;
  const auto model = server.add_model("tiny", tiny_model(),
                                      wino::nn::random_weights(tiny_model()),
                                      ConvAlgo::kIm2col);
  EXPECT_THROW((void)server.submit(model + 1, tiny_image(1)),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit(model, Tensor4f(2, 3, 8, 8)),
               std::invalid_argument);  // n != 1
  EXPECT_THROW((void)server.submit(model, Tensor4f(1, 3, 4, 4)),
               std::invalid_argument);  // wrong spatial extent
  EXPECT_THROW((void)server.add_model("empty", {}, {}, ConvAlgo::kIm2col),
               std::invalid_argument);
}

TEST(InferenceServerTest, BatchFailureDoesNotPoisonOtherRequests) {
  // A maxpool-only model: submit() cannot fully validate input shapes for
  // it, so a mismatched image reaches the batcher and makes stack_images
  // throw for the whole batch — the server must then retry per request so
  // only the culprit's future fails.
  wino::nn::LayerSpec pool;
  pool.kind = wino::nn::LayerKind::kMaxPool;
  ServerConfig cfg;
  cfg.max_batch = 3;
  cfg.max_wait_us = 50000;
  InferenceServer server(cfg);
  const auto model =
      server.add_model("pool", {pool}, {}, ConvAlgo::kIm2col);

  auto good1 = server.submit(model, tiny_image(1));
  auto good2 = server.submit(model, tiny_image(2));
  auto odd = server.submit(model, Tensor4f(1, 3, 4, 4));  // mismatched h/w

  // The mixed batch fails stack_images as a whole; the per-request retry
  // then serves every request (each is individually valid here).
  EXPECT_EQ(good1.get().shape().h, 4u);  // 8x8 pooled to 4x4
  EXPECT_EQ(good2.get().shape().h, 4u);
  EXPECT_EQ(odd.get().shape().h, 2u);    // 4x4 pooled to 2x2, not poisoned
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Numerical contract and multi-model sessions
// ---------------------------------------------------------------------------

TEST(InferenceServerTest, ServedOutputsBitIdenticalToDirectForward) {
  const auto layers = wino::nn::vgg16_d_scaled(14, 8);  // 16x16 input
  const auto weights = wino::nn::random_weights(layers, 5);

  constexpr std::size_t kImages = 6;
  std::vector<Tensor4f> images;
  std::vector<Tensor4f> expected;
  wino::common::Rng rng(17);
  for (std::size_t i = 0; i < kImages; ++i) {
    Tensor4f img(1, 3, 16, 16);
    rng.fill_uniform(img.flat(), -1.0F, 1.0F);
    expected.push_back(
        wino::nn::forward(layers, weights, img, ConvAlgo::kWinograd2));
    images.push_back(std::move(img));
  }

  ServerConfig cfg;
  cfg.max_batch = 3;  // forces coalescing into multi-image batches
  cfg.max_wait_us = 50000;
  InferenceServer server(cfg);
  const auto model =
      server.add_model("vgg", layers, weights, ConvAlgo::kWinograd2);

  // Mixed priorities and deadlines make EDF genuinely reorder requests
  // inside their batches — the bit-identity contract must hold through
  // any assembly order (each image is computed independently).
  std::vector<std::future<Tensor4f>> futures;
  for (std::size_t i = 0; i < kImages; ++i) {
    SubmitOptions opt;
    opt.priority = static_cast<int>(i % 3);
    opt.deadline_us = (i % 2 == 0) ? 5000000 - i * 100000 : 0;
    opt.tag = i;
    futures.push_back(server.submit(model, images[i], opt));
  }
  for (std::size_t i = 0; i < kImages; ++i) {
    const Tensor4f served = futures[i].get();
    EXPECT_TRUE(bit_identical(served, expected[i]))
        << "served output " << i << " differs from direct forward";
  }
  // The point of batching: requests actually shared batches.
  EXPECT_LT(server.stats().batches, kImages);
  EXPECT_EQ(server.stats().shed, 0u);
  server.shutdown();
}

TEST(InferenceServerTest, MultiModelSessionsStayIsolated) {
  const auto layers = tiny_model();
  const auto weights_a = wino::nn::random_weights(layers, 100);
  const auto weights_b = wino::nn::random_weights(layers, 200);

  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 30000;
  std::mutex seen_mutex;
  std::vector<std::pair<wino::serve::ModelId, std::size_t>> seen_batches;
  cfg.batch_observer = [&](wino::serve::ModelId m, std::size_t n) {
    std::lock_guard lock(seen_mutex);
    seen_batches.emplace_back(m, n);
  };
  InferenceServer server(cfg);
  const auto a =
      server.add_model("a", layers, weights_a, ConvAlgo::kWinograd2);
  const auto b =
      server.add_model("b", layers, weights_b, ConvAlgo::kWinograd2);

  std::vector<std::future<Tensor4f>> fa;
  std::vector<std::future<Tensor4f>> fb;
  std::vector<Tensor4f> images;
  for (std::size_t i = 0; i < 4; ++i) images.push_back(tiny_image(i));
  for (std::size_t i = 0; i < 4; ++i) {
    fa.push_back(server.submit(a, images[i]));
    fb.push_back(server.submit(b, images[i]));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    const Tensor4f expect_a =
        wino::nn::forward(layers, weights_a, images[i], ConvAlgo::kWinograd2);
    const Tensor4f expect_b =
        wino::nn::forward(layers, weights_b, images[i], ConvAlgo::kWinograd2);
    EXPECT_TRUE(bit_identical(fa[i].get(), expect_a));
    EXPECT_TRUE(bit_identical(fb[i].get(), expect_b));
  }
  server.shutdown();

  // Every dispatched batch belongs to exactly one model by construction;
  // both models' streams were actually served.
  bool saw_a = false;
  bool saw_b = false;
  for (const auto& [m, n] : seen_batches) {
    EXPECT_LE(n, cfg.max_batch);
    saw_a = saw_a || m == a;
    saw_b = saw_b || m == b;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

}  // namespace
