// Reproduces Fig 2: net arithmetic complexity Ot of the data, filter and
// inverse transforms (Eqs 5-6) over the whole of VGG16-D, as a function of
// the output tile size m.
//
// The paper's absolute MFLOP values depend on the authors' hand-optimised
// per-tile operation counts (beta, gamma, delta), which are not published;
// we print both our generated CSE-optimised counts and, for F(2,3), the
// Lavin-published counts the paper builds on. The reproduced *shape* —
// monotone, roughly quadratic growth with m — is the figure's claim.
#include <cstdio>

#include "common/table.hpp"
#include "dse/complexity.hpp"
#include "nn/network.hpp"

int main() {
  using wino::common::TextTable;
  using wino::dse::TransformCosts;
  const auto& net = wino::nn::vgg16_d();

  std::printf("Fig 2 — net transform complexity Ot (Mega FLOPs), VGG16-D\n");
  std::printf("Ot = T(D) + T(F) + T(I)  (paper Eqs 5-6)\n\n");

  const double paper[] = {156, 196, 207, 272, 304, 408};

  TextTable t;
  t.header({"Algorithm", "beta", "gamma", "delta", "T(D) M", "T(F) M",
            "T(I) M", "Ot (MFLOPs)", "paper Fig2"});
  for (int m = 2; m <= 7; ++m) {
    const TransformCosts costs = TransformCosts::from_generated(m, 3);
    const auto tc = wino::dse::transform_complexity(net, m, costs);
    t.row({"F(" + std::to_string(m) + "x" + std::to_string(m) + ", 3x3)",
           std::to_string(costs.beta), std::to_string(costs.gamma),
           std::to_string(costs.delta), TextTable::num(tc.data / 1e6, 1),
           TextTable::num(tc.filter / 1e6, 1),
           TextTable::num(tc.inverse / 1e6, 1),
           TextTable::num(tc.total() / 1e6, 1),
           TextTable::num(paper[m - 2], 0)});
  }
  t.print();

  std::printf(
      "\nNote: our beta/delta for F(2,3) equal Lavin's published 32/24;\n"
      "gamma differs (35 vs 28) by the counting of the shared halving\n"
      "constants. Shape check: Ot grows monotonically with m in both\n"
      "series, with the same inflection at m = 5 (see Fig 3 bench).\n");
  return 0;
}
