// Reproduces Table II: the performance comparison on VGG16-D — per-group
// latency, overall latency, throughput, multiplier efficiency, power and
// power efficiency for the reference designs and the proposed engines.
//
// Cells show "model (paper)". The [12] column is a cited measurement from
// Qiu et al. (Zynq, 16-bit) and is reproduced as published constants; [3]'s
// power is cited from Podili et al. (Stratix V). [3]a's power follows the
// paper's own multiplier-count normalisation rule. Everything else is
// computed by the calibrated models, and the "cycle-sim" row cross-checks
// the Eq 9 latency against the cycle-exact simulator.
#include <cstdio>

#include "common/table.hpp"
#include "dse/design_space.hpp"
#include "fpga/power.hpp"
#include "hw/winograd_engine.hpp"
#include "nn/network.hpp"

namespace {

struct PaperColumn {
  const char* name;
  double conv_ms[5];
  double total_ms;
  double gops;
  double mult_eff;
  double power_w;
  double power_eff;
};

std::string cell(double model, double paper, int prec = 2) {
  return wino::common::TextTable::num(model, prec) + " (" +
         wino::common::TextTable::num(paper, prec) + ")";
}

}  // namespace

int main() {
  using wino::common::TextTable;
  using wino::dse::DesignPoint;
  using wino::fpga::EngineStyle;

  const auto& net = wino::nn::vgg16_d();
  const wino::dse::DesignSpaceExplorer dse(net,
                                           wino::fpga::virtex7_485t());

  // Published Table II columns ([12]'s cited constants are printed in the
  // footer below the table).
  const PaperColumn p3 = {"[3]",
                          {16.81, 24.08, 40.14, 40.14, 12.04},
                          133.22,
                          230.4,
                          0.90,
                          8.04,
                          28.66};
  const PaperColumn p3a = {"[3]a",
                           {6.25, 8.96, 14.94, 14.94, 4.48},
                           49.57,
                           619.2,
                           0.90,
                           21.61,
                           28.66};
  const PaperColumn ours2 = {"ours m=2",
                             {6.25, 8.96, 14.94, 14.94, 4.48},
                             49.57,
                             619.2,
                             0.90,
                             13.03,
                             41.34};
  const PaperColumn ours3 = {"ours m=3",
                             {4.27, 6.12, 10.19, 10.19, 3.06},
                             33.83,
                             907.2,
                             1.29,
                             23.96,
                             37.87};
  const PaperColumn ours4 = {"ours m=4",
                             {3.54, 5.07, 8.45, 8.45, 2.54},
                             28.05,
                             1094.3,
                             1.60,
                             36.32,
                             30.13};

  // Power provenance per column: [3]'s 8.04 W is cited from Podili et al.
  // (Stratix V — outside our Virtex-7 power model's domain); [3]a follows
  // the paper's multiplier normalisation; ours come from the fitted model.
  enum class PowerSource { kCited, kScaledReference, kModel };
  struct Design {
    PaperColumn paper;
    DesignPoint point;
    PowerSource power;
  };
  std::vector<Design> designs;
  designs.push_back({p3,
                     {2, 3, 16, EngineStyle::kPerPeDataTransform, 200e6},
                     PowerSource::kCited});
  designs.push_back({p3a,
                     {2, 3, 43, EngineStyle::kPerPeDataTransform, 200e6},
                     PowerSource::kScaledReference});
  designs.push_back({ours2,
                     {2, 3, 43, EngineStyle::kSharedDataTransform, 200e6},
                     PowerSource::kModel});
  designs.push_back({ours3,
                     {3, 3, 28, EngineStyle::kSharedDataTransform, 200e6},
                     PowerSource::kModel});
  designs.push_back({ours4,
                     {4, 3, 19, EngineStyle::kSharedDataTransform, 200e6},
                     PowerSource::kModel});

  std::printf("Table II — performance comparison for VGG16-D\n");
  std::printf("cells: model (paper); [12] column: published constants\n\n");

  std::vector<wino::dse::DesignEvaluation> evals;
  std::vector<double> watts;
  for (const auto& d : designs) {
    auto ev = dse.evaluate(d.point);
    switch (d.power) {
      case PowerSource::kCited:
        watts.push_back(d.paper.power_w);
        break;
      case PowerSource::kScaledReference:
        watts.push_back(
            wino::fpga::scaled_reference_power_w(ev.multipliers));
        break;
      case PowerSource::kModel:
        watts.push_back(ev.power_w);
        break;
    }
    evals.push_back(std::move(ev));
  }

  TextTable t;
  {
    std::vector<std::string> h{"Metric", "[12] (cited)"};
    for (const auto& d : designs) h.emplace_back(d.paper.name);
    t.header(std::move(h));
  }
  const auto add_row = [&](const std::string& metric, auto getter,
                           auto paper_getter, int prec) {
    std::vector<std::string> row{metric, ""};
    for (std::size_t i = 0; i < designs.size(); ++i) {
      row.push_back(
          cell(getter(i), paper_getter(designs[i].paper), prec));
    }
    t.row(std::move(row));
  };

  {
    std::vector<std::string> row{"Multipliers", "780"};
    for (const auto& ev : evals) row.push_back(std::to_string(ev.multipliers));
    t.row(std::move(row));
    row = {"PEs", "-"};
    for (const auto& ev : evals) {
      row.push_back(std::to_string(ev.parallel_pes));
    }
    t.row(std::move(row));
    row = {"Precision (bits)", "16"};
    for (std::size_t i = 0; i < designs.size(); ++i) row.emplace_back("32");
    t.row(std::move(row));
    row = {"Frequency (MHz)", "150"};
    for (std::size_t i = 0; i < designs.size(); ++i) row.emplace_back("200");
    t.row(std::move(row));
  }

  for (std::size_t g = 0; g < 5; ++g) {
    add_row(
        "Conv" + std::to_string(g + 1) + " (ms)",
        [&](std::size_t i) { return evals[i].group_latency_s[g] * 1e3; },
        [&, g](const PaperColumn& p) { return p.conv_ms[g]; }, 2);
  }
  // Patch in the [12] cited latencies for readability.
  add_row(
      "Overall latency (ms)",
      [&](std::size_t i) { return evals[i].total_latency_s * 1e3; },
      [](const PaperColumn& p) { return p.total_ms; }, 2);
  add_row(
      "Throughput (GOPS)",
      [&](std::size_t i) { return evals[i].throughput_ops / 1e9; },
      [](const PaperColumn& p) { return p.gops; }, 1);
  add_row(
      "GOPS/multiplier",
      [&](std::size_t i) { return evals[i].mult_efficiency / 1e9; },
      [](const PaperColumn& p) { return p.mult_eff; }, 2);
  add_row(
      "Power (W)", [&](std::size_t i) { return watts[i]; },
      [](const PaperColumn& p) { return p.power_w; }, 2);
  add_row(
      "GOPS/W",
      [&](std::size_t i) {
        return evals[i].throughput_ops / 1e9 / watts[i];
      },
      [](const PaperColumn& p) { return p.power_eff; }, 2);
  // Extension row: energy per inference (power x latency) — the figure of
  // merit an embedded deployment would optimise; derived from the paper's
  // own columns for the "(paper)" half.
  add_row(
      "Energy/image (mJ)",
      [&](std::size_t i) {
        return watts[i] * evals[i].total_latency_s * 1e3;
      },
      [](const PaperColumn& p) { return p.power_w * p.total_ms / 1e3; }, 1);
  t.print();

  std::printf("\n[12] cited: Conv1..5 = 31.29 23.58 39.29 36.30 32.95 ms, "
              "163.4 ms total, 187.8 GOPS, 0.24 GOPS/mult, 9.63 W, "
              "19.50 GOPS/W\n");

  std::printf("\nHeadline ratios (ours m=4 vs [3]):\n");
  const double tp_ratio = evals[4].throughput_ops / evals[0].throughput_ops;
  std::printf("  throughput  %.2fx (paper 4.75x)\n", tp_ratio);
  std::printf("  multipliers %.2fx (paper 2.67x)\n",
              static_cast<double>(evals[4].multipliers) /
                  static_cast<double>(evals[0].multipliers));
  const double pe2 = evals[2].throughput_ops / 1e9 / watts[2];
  std::printf("  power-eff ours m=2 vs [3]a: %.2fx (paper 1.44x; note the\n"
              "  paper's printed 41.34 GOPS/W for ours m=2 is inconsistent\n"
              "  with its own 619.2 GOPS / 13.03 W = 47.52 — see "
              "EXPERIMENTS.md)\n",
              pe2 / (evals[1].throughput_ops / 1e9 / watts[1]));

  // Cycle-exact cross-check of the Eq 9 latency model.
  std::printf("\nCycle-simulator cross-check (exact tiling/grouping):\n");
  for (const auto& d : designs) {
    wino::hw::EngineConfig cfg;
    cfg.m = d.point.m;
    cfg.r = 3;
    cfg.parallel_pes = d.point.parallel_pes;
    cfg.style = d.point.style;
    const wino::hw::WinogradEngine engine(cfg);
    const auto stats = engine.run_workload_timing(net);
    std::printf("  %-9s m=%d P=%-3zu  sim %.2f ms (Eq 9 model %.2f ms, "
                "PE util %.1f%%)\n",
                d.paper.name, d.point.m, d.point.parallel_pes,
                stats.latency_s(200e6) * 1e3,
                dse.evaluate(d.point).total_latency_s * 1e3,
                100.0 * stats.pe_utilization);
  }
  return 0;
}
