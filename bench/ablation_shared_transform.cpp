// Ablation A: what the paper's first contribution (hoisting the data
// transform out of the PEs) buys, as a function of the PE count.
//
// Reproduces the Section IV-C ratios — with Lavin's F(2,3) counts and
// P = 16 the transform overhead relative to spatial convolution is 1.5x
// shared versus 2.33x per-PE — and extends the sweep over P and m.
#include <cstdio>

#include "common/table.hpp"
#include "dse/complexity.hpp"
#include "fpga/power.hpp"
#include "fpga/resources.hpp"

int main() {
  using wino::common::TextTable;
  using wino::dse::TransformCosts;
  using wino::dse::transform_overhead_ratio;
  using wino::fpga::EngineStyle;

  std::printf("Ablation A — shared vs per-PE data transform\n\n");

  std::printf("Section IV-C check, F(2x2,3x3), Lavin counts, P = 16:\n");
  const TransformCosts lavin = TransformCosts::lavin_f2x2_3x3();
  std::printf("  shared: %.2fx (paper 1.5x)   per-PE: %.2fx (paper 2.33x)\n\n",
              transform_overhead_ratio(2, 3, lavin, 16, true),
              transform_overhead_ratio(2, 3, lavin, 16, false));

  std::printf("Transform overhead ratio vs P (generated op counts):\n\n");
  TextTable t;
  t.header({"m", "P=1", "P=4", "P=16", "P=43", "per-PE (any P)"});
  for (int m = 2; m <= 4; ++m) {
    const TransformCosts costs = TransformCosts::from_generated(m, 3);
    std::vector<std::string> row{std::to_string(m)};
    for (const std::size_t p : {1u, 4u, 16u, 43u}) {
      row.push_back(
          TextTable::num(transform_overhead_ratio(m, 3, costs, p, true), 3));
    }
    row.push_back(
        TextTable::num(transform_overhead_ratio(m, 3, costs, 1, false), 3));
    t.row(std::move(row));
  }
  t.print();

  std::printf("\nLUT and power savings of the shared design vs PE count "
              "(F(4x4,3x3)):\n\n");
  const wino::fpga::ResourceEstimator est;
  const wino::fpga::PowerModel pm(est);
  TextTable t2;
  t2.header({"PEs", "LUTs shared", "LUTs per-PE", "saving %", "W shared",
             "W per-PE"});
  for (const std::size_t pes : {1u, 4u, 8u, 12u, 16u, 19u}) {
    const auto a = est.estimate(4, 3, pes, EngineStyle::kSharedDataTransform);
    const auto b = est.estimate(4, 3, pes, EngineStyle::kPerPeDataTransform);
    t2.row({std::to_string(pes), std::to_string(a.luts),
            std::to_string(b.luts),
            TextTable::num(100.0 * (1.0 - static_cast<double>(a.luts) /
                                              static_cast<double>(b.luts)),
                           1),
            TextTable::num(pm.predict_w(a), 2),
            TextTable::num(pm.predict_w(b), 2)});
  }
  t2.print();
  std::printf("\nAt 19 PEs the saving reaches the paper's 53.6%%; it grows\n"
              "with P because the shared block amortises (Eq 7).\n");
  return 0;
}
