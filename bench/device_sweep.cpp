// Device sweep (extension): the paper's DSE on other FPGA families — how
// the optimal order m and the achievable throughput move with the DSP
// budget and the DSP-per-multiplier policy (Stratix V implements an fp32
// multiply in 2 DSP blocks, Xilinx 7-series in 4).
//
// Caveat (documented): LUT/FF coefficients are calibrated on the paper's
// Virtex-7 synthesis points and carried across families as-is; the DSP-
// limited PE counts (the binding constraint everywhere here) are exact
// per family.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "dse/design_space.hpp"
#include "fpga/bram.hpp"
#include "nn/network.hpp"

int main() {
  using wino::common::TextTable;
  const auto& net = wino::nn::vgg16_d();

  const wino::fpga::FpgaDevice* devices[] = {
      &wino::fpga::virtex7_485t(), &wino::fpga::virtex7_690t(),
      &wino::fpga::stratix_v_gt(), &wino::fpga::zynq_7045()};

  std::printf("Device sweep — best Winograd engine per FPGA, VGG16-D @ "
              "200 MHz\n\n");

  TextTable t;
  t.header({"Device", "fp32 mults", "best m", "PEs", "latency ms", "GOPS",
            "GOPS/mult", "BRAM ok"});
  for (const auto* dev : devices) {
    const wino::dse::DesignSpaceExplorer dse(net, *dev);
    // Restricted to m <= 4: Fig 3's marginal analysis rules out higher
    // orders (transform logic and power grow faster than the multiplier
    // savings), so "best" means best within the paper's feasible set.
    const auto evals = dse.sweep_m(2, 4);
    if (evals.empty()) {
      t.row({dev->name, std::to_string(dev->fp32_multipliers()),
             std::string("-"), std::string("-"), std::string("-"),
             std::string("-"), std::string("-"), std::string("-")});
      continue;
    }
    const auto best = std::max_element(
        evals.begin(), evals.end(), [](const auto& a, const auto& b) {
          return a.throughput_ops < b.throughput_ops;
        });
    const bool bram_ok = wino::fpga::buffers_fit(
        *dev, best->point.m, 3, best->parallel_pes, net);
    t.row({dev->name, std::to_string(dev->fp32_multipliers()),
           std::to_string(best->point.m), std::to_string(best->parallel_pes),
           TextTable::num(best->total_latency_s * 1e3, 2),
           TextTable::num(best->throughput_ops / 1e9, 1),
           TextTable::num(best->mult_efficiency / 1e9, 2),
           std::string(bram_ok ? "yes" : "NO")});
  }
  t.print();

  std::printf("\nPer-m breakdown on the two Virtex-7 parts:\n\n");
  TextTable t2;
  t2.header({"Device", "m=2 GOPS", "m=3 GOPS", "m=4 GOPS", "m=5 GOPS"});
  for (const auto* dev :
       {&wino::fpga::virtex7_485t(), &wino::fpga::virtex7_690t()}) {
    const wino::dse::DesignSpaceExplorer dse(net, *dev);
    std::vector<std::string> row{dev->name};
    for (int m = 2; m <= 5; ++m) {
      wino::dse::DesignPoint p;
      p.m = m;
      row.push_back(TextTable::num(dse.evaluate(p).throughput_ops / 1e9, 1));
    }
    t2.row(std::move(row));
  }
  t2.print();
  std::printf("\nReading: within the DSE-feasible set (m <= 4) the optimal\n"
              "order is m = 4 on every part — device size moves the PE\n"
              "count and absolute GOPS, not the choice of m, which is why\n"
              "the paper's conclusions transfer across parts.\n");
  return 0;
}
