// Ablation E — int8 quantized inference vs the best uniform fp32 plan.
//
// The planner's quality axis in action: calibrate activation statistics on
// a sample batch, hand plan_execution an error budget plus the int8
// candidates (im2col GEMM and error-model-gated Winograd), and race the
// resulting mixed-precision plan against every uniform fp32 plan — same
// executor, same caches, interleaved paired reps so drift cancels. Three
// verdicts ride in the JSON for CI:
//
//   * speedup_quant_vs_fp32  — quantized plan vs the BEST uniform fp32
//     plan (the planner may keep layers fp32 where int8 loses, so >= 1.0
//     up to noise by construction; the gate pins it);
//   * under_budget           — observed end-to-end max relative error vs
//     the all-fp32 network stays within the planner's budget (the
//     error-model contract, measured rather than predicted);
//   * bit_identical / bit_identical_across_threads — the quantized plan
//     reproduces the per-layer reference composition exactly, at 1/2/7
//     threads (int8 accumulation is exact in int32, so determinism is
//     bitwise, not approximate).
//
// Emits BENCH_quant.json next to the binary (or at --out); gated by
// bench/baselines/BENCH_quant_baseline.json.
//
// Usage: quant_ablation [--quick] [--out <path>]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_io.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/forward.hpp"
#include "nn/plan.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::tensor::Tensor4f;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> samples) {
  const auto mid =
      samples.begin() + static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

bool same_bits(const Tensor4f& a, const Tensor4f& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.flat().size() * sizeof(float)) == 0;
}

double rel_max_error(const Tensor4f& got, const Tensor4f& ref) {
  double max_diff = 0;
  double max_ref = 0;
  const auto g = got.flat();
  const auto r = ref.flat();
  for (std::size_t i = 0; i < g.size(); ++i) {
    max_diff = std::max(
        max_diff, static_cast<double>(std::abs(g[i] - r[i])));
    max_ref = std::max(max_ref, static_cast<double>(std::abs(r[i])));
  }
  return max_ref > 0 ? max_diff / max_ref : max_diff;
}

}  // namespace

int main(int argc, char** argv) {
  if (!wino::common::validate_bench_args(
          argc, argv, {"--quick"}, {},
          "quant_ablation [--quick] [--out <path>]")) {
    return 2;
  }
  const bool quick = wino::common::has_flag(argc, argv, "--quick");

  const std::size_t scale = quick ? 14 : 7;
  const std::size_t hw = 224 / scale;
  const auto layers = wino::nn::vgg16_d_scaled(scale, 8);
  const auto weights = wino::nn::random_weights(layers, 7);
  const std::size_t batch = 8;
  const int reps = quick ? 7 : 9;  // plus one discarded cold rep
  const double budget = 0.1;

  wino::common::Rng rng(11);
  Tensor4f input(batch, 3, hw, hw);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  Tensor4f sample(2, 3, hw, hw);
  rng.fill_uniform(sample.flat(), -1.0F, 1.0F);

  // The quantized plan: measured per-layer scoring (the default), an
  // error budget, activation statistics from the calibration sample, and
  // the int8 candidates alongside the fp32 ones.
  wino::nn::PlannerOptions opts;
  opts.batch = batch;
  opts.quant = wino::nn::calibrate_activations(layers, weights, sample);
  opts.constraints.max_rel_error = budget;
  opts.candidates = {
      wino::nn::ConvAlgo::kIm2col, wino::nn::ConvAlgo::kWinograd2,
      wino::nn::ConvAlgo::kWinograd3, wino::nn::ConvAlgo::kWinograd4};
  for (const auto algo : wino::nn::quantized_candidates()) {
    opts.candidates.push_back(algo);
  }
  const wino::nn::ExecutionPlan plan =
      wino::nn::plan_execution(layers, opts);

  const std::vector<wino::nn::ConvAlgo> uniform_algos = {
      wino::nn::ConvAlgo::kIm2col, wino::nn::ConvAlgo::kWinograd2,
      wino::nn::ConvAlgo::kWinograd3, wino::nn::ConvAlgo::kWinograd4};

  std::printf("quant_ablation — int8 quantized plan (budget %.2f) vs best "
              "uniform fp32\nscaled VGG16-D (%zux%zu input, batch %zu), %d "
              "interleaved reps, %zu threads\n\n",
              budget, hw, hw, batch, reps,
              wino::runtime::ThreadPool::global().threads());

  wino::common::TextTable plan_table;
  plan_table.header({"layer", "planned algo", "act scale", "predicted ms"});
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != wino::nn::LayerKind::kConv) continue;
    const auto& step = plan.steps[i];
    plan_table.row(
        {layers[i].conv.name, wino::nn::to_string(step.algo),
         step.act_scale > 0
             ? wino::common::TextTable::num(step.act_scale, 5)
             : "-",
         wino::common::TextTable::num(step.predicted_ms, 3)});
  }
  plan_table.print();
  std::printf("\nplan: %zu int8 conv layers, predicted max rel error %.4f "
              "(budget %.2f)\n\n",
              plan.int8_layers, plan.predicted_max_rel_error, budget);

  // Index 0 is the quantized plan; the rest are the fp32 uniforms it
  // races.
  std::vector<wino::nn::ExecutionPlan> modes{plan};
  std::vector<std::string> mode_names{"quantized"};
  for (const auto algo : uniform_algos) {
    modes.push_back(wino::nn::uniform_plan(layers, algo));
    mode_names.push_back(wino::nn::to_string(algo));
  }

  // Warm every mode (filter transforms and quantized banks land in the
  // cross-call caches, workspace slabs hit their high-water marks).
  for (const auto& m : modes) {
    (void)wino::nn::forward(m, weights, input);
  }

  // Interleaved reps with rotating order; the cold rep is discarded.
  std::vector<std::vector<double>> secs(modes.size());
  Tensor4f quant_out;
  for (int rep = 0; rep <= reps; ++rep) {
    std::vector<double> this_rep(modes.size(), 0.0);
    for (std::size_t off = 0; off < modes.size(); ++off) {
      const std::size_t mode =
          (off + static_cast<std::size_t>(rep)) % modes.size();
      const auto t0 = Clock::now();
      Tensor4f out = wino::nn::forward(modes[mode], weights, input);
      this_rep[mode] = seconds_since(t0);
      if (mode == 0) quant_out = std::move(out);
    }
    if (rep == 0) continue;
    for (std::size_t mode = 0; mode < modes.size(); ++mode) {
      secs[mode].push_back(this_rep[mode]);
    }
  }

  // Determinism verdicts: the executor must reproduce the per-layer
  // reference composition bit-for-bit, and the result must not depend on
  // the thread count.
  const Tensor4f reference =
      wino::nn::forward_reference(plan, weights, input);
  const bool bit_identical = same_bits(reference, quant_out);
  bool threads_identical = true;
  const std::size_t saved_threads =
      wino::runtime::ThreadPool::global().threads();
  for (const std::size_t threads : {1U, 2U, 7U}) {
    wino::runtime::ThreadPool::set_global_threads(threads);
    threads_identical =
        threads_identical &&
        same_bits(wino::nn::forward(plan, weights, input), quant_out);
  }
  wino::runtime::ThreadPool::set_global_threads(saved_threads);

  // Accuracy verdict: quantized network vs the all-fp32 one.
  const Tensor4f fp32_out =
      wino::nn::forward(modes[1], weights, input);
  const double observed_err = rel_max_error(quant_out, fp32_out);
  const bool under_budget = observed_err <= budget;

  const double quant_ms = median(secs[0]) * 1e3;
  wino::common::TextTable results;
  results.header({"mode", "median ms", "img/s", "quantized speedup"});
  results.row({"quantized", wino::common::TextTable::num(quant_ms, 2),
               wino::common::TextTable::num(
                   static_cast<double>(batch) / (quant_ms / 1e3)),
               "1.00"});
  double best_speedup = 1e30;
  std::string best_uniform = "-";
  std::vector<double> uniform_ms(modes.size(), 0.0);
  std::vector<double> uniform_speedup(modes.size(), 0.0);
  for (std::size_t mode = 1; mode < modes.size(); ++mode) {
    uniform_ms[mode] = median(secs[mode]) * 1e3;
    std::vector<double> ratios;
    for (std::size_t rep = 0; rep < secs[mode].size(); ++rep) {
      ratios.push_back(secs[mode][rep] / secs[0][rep]);
    }
    uniform_speedup[mode] = median(ratios);
    if (uniform_speedup[mode] < best_speedup) {
      best_speedup = uniform_speedup[mode];
      best_uniform = mode_names[mode];
    }
    results.row({mode_names[mode],
                 wino::common::TextTable::num(uniform_ms[mode], 2),
                 wino::common::TextTable::num(
                     static_cast<double>(batch) / (uniform_ms[mode] / 1e3)),
                 wino::common::TextTable::num(uniform_speedup[mode])});
  }
  results.print();

  std::printf("\nquantized vs best uniform fp32 (%s): %.3fx; observed rel "
              "error %.4f (budget %.2f, %s); reference composition: %s; "
              "threads 1/2/7: %s\n",
              best_uniform.c_str(), best_speedup, observed_err, budget,
              under_budget ? "under" : "OVER — error-model regression",
              bit_identical ? "bit-identical" : "MISMATCH",
              threads_identical ? "bit-identical" : "MISMATCH");
  if (!bit_identical || !threads_identical) return 1;

  // --- BENCH_quant.json ----------------------------------------------------
  const std::string json_path =
      wino::common::bench_output_path(argc, argv, "BENCH_quant.json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not open %s for writing\n",
                json_path.c_str());
    return 0;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"quant\",\n  \"quick\": %s,\n"
               "  \"model\": \"vgg16-d-scaled-%zu\",\n  \"batch\": %zu,\n"
               "  \"reps\": %d,\n  \"budget_max_rel_error\": %.4f,\n"
               "  \"plan\": {\"int8_layers\": %zu,\n"
               "    \"predicted_max_rel_error\": %.6f,\n    \"layers\": [\n",
               quick ? "true" : "false", scale, batch, reps, budget,
               plan.int8_layers, plan.predicted_max_rel_error);
  bool first_layer = true;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != wino::nn::LayerKind::kConv) continue;
    std::fprintf(json,
                 "%s      {\"layer\": \"%s\", \"algo\": \"%s\", "
                 "\"act_scale\": %.6f}",
                 first_layer ? "" : ",\n", layers[i].conv.name.c_str(),
                 wino::nn::to_string(plan.steps[i].algo).c_str(),
                 static_cast<double>(plan.steps[i].act_scale));
    first_layer = false;
  }
  std::fprintf(json, "\n    ]},\n  \"quantized_ms\": %.4f,\n"
                     "  \"quantized_img_per_s\": %.4f,\n  \"uniform\": [\n",
               quant_ms, static_cast<double>(batch) / (quant_ms / 1e3));
  for (std::size_t mode = 1; mode < modes.size(); ++mode) {
    std::fprintf(json,
                 "    {\"algo\": \"%s\", \"median_ms\": %.4f, "
                 "\"img_per_s\": %.4f, \"speedup_quant_vs_this\": %.4f}%s\n",
                 mode_names[mode].c_str(), uniform_ms[mode],
                 static_cast<double>(batch) / (uniform_ms[mode] / 1e3),
                 uniform_speedup[mode],
                 mode + 1 < modes.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"best_uniform_algo\": \"%s\",\n"
               "  \"speedup_quant_vs_fp32\": %.4f,\n"
               "  \"observed_rel_error\": %.6f,\n"
               "  \"under_budget\": %s,\n"
               "  \"bit_identical\": %s,\n"
               "  \"bit_identical_across_threads\": %s\n}\n",
               best_uniform.c_str(), best_speedup, observed_err,
               under_budget ? "true" : "false",
               bit_identical ? "true" : "false",
               threads_identical ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
