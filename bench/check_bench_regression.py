#!/usr/bin/env python3
"""Generic CI gate over a BENCH_*.json artifact.

Usage: check_bench_regression.py <BENCH_json> <baseline_json>

Generalises the original GEMM-only gate: the committed baseline file
declares a list of checks, each resolving a value out of the bench JSON
by path and comparing it against a floor or a boolean verdict. One script
gates every system bench (GEMM, serving, layout pipeline) so new benches
add a baseline file, not a new gate script.

Baseline schema:

  {
    "bench": "serving_throughput",       // must match the artifact's "bench"
    "note": "free-form provenance",
    "checks": [
      {"name": "batched wins",
       "path": "batched_beats_serial", "expect_true": true},
      {"name": "batched throughput",
       "path": "modes[name=serve-batched].img_per_s",
       "min": 800.0, "allowed_regression": 0.20},
      {"name": "512^3 GFLOP/s",
       "path": "shapes[name=square-512].blocked_simd_gflops",
       "min_by": {"path": "kernel",
                  "values": {"avx2": 14.0, "neon": 7.0, "scalar": 6.0}},
       "allowed_regression": 0.20}
    ]
  }

Path syntax: dot-separated keys into nested objects; a `list[key=value]`
segment selects the first element of `list` whose `key` stringifies to
`value`. A path that does not resolve fails the check (the gated
reference point was dropped from the bench).

Check kinds:
  expect_true  the resolved value must be truthy.
  min          value >= min * (1 - allowed_regression)   [default 0.0].
  min_by       like min, but the floor is chosen by the value found at
               min_by.path (e.g. per compiled micro-kernel). An unknown
               selector value warns and skips instead of failing, so
               exotic build configs don't break CI.
  max          value <= max * (1 + allowed_regression): a ceiling for
               costs (e.g. the memory planner's peak slab bytes) where
               growth, not shrinkage, is the regression.

Exit status: 0 all checks pass, 1 any check fails, 2 usage/schema error.
"""
import json
import re
import sys

_SEGMENT = re.compile(r"^([^\[\]]+)(?:\[([^=\]]+)=([^\]]+)\])?$")


def resolve(doc, path):
    """Walk `path` into `doc`; raises KeyError with context on a miss."""
    cur = doc
    for segment in path.split("."):
        match = _SEGMENT.match(segment)
        if match is None:
            raise KeyError(f"malformed path segment '{segment}'")
        key, sel_key, sel_value = match.groups()
        if not isinstance(cur, dict) or key not in cur:
            raise KeyError(f"'{key}' not found resolving '{path}'")
        cur = cur[key]
        if sel_key is not None:
            if not isinstance(cur, list):
                raise KeyError(f"'{key}' is not a list resolving '{path}'")
            for element in cur:
                if isinstance(element, dict) and \
                        str(element.get(sel_key)) == sel_value:
                    cur = element
                    break
            else:
                raise KeyError(
                    f"no element with {sel_key}={sel_value} in '{key}'")
    return cur


def run_check(bench, check):
    """Returns (ok, skipped, message) for one baseline check."""
    name = check.get("name", check.get("path", "?"))
    try:
        got = resolve(bench, check["path"])
    except KeyError as err:
        return False, False, f"FAIL: {name}: {err}"

    if check.get("expect_true") is not None:
        want = check["expect_true"]
        ok = bool(got) == bool(want)
        return ok, False, (f"{'OK' if ok else 'FAIL'}: {name}: "
                           f"{check['path']} = {got} (expected {want})")

    if "max" in check:
        base = check["max"]
        ceiling = base * (1.0 + check.get("allowed_regression", 0.0))
        ok = got <= ceiling
        return ok, False, (f"{'OK' if ok else 'FAIL'}: {name}: "
                           f"{check['path']} = {got:.2f} "
                           f"(baseline {base:.2f}, ceiling {ceiling:.2f})")

    if "min_by" in check:
        selector = check["min_by"]
        try:
            key = resolve(bench, selector["path"])
        except KeyError as err:
            return False, False, f"FAIL: {name}: {err}"
        base = selector["values"].get(str(key))
        if base is None:
            return True, True, (f"WARNING: {name}: no committed floor for "
                                f"{selector['path']}='{key}'; skipping")
    elif "min" in check:
        base = check["min"]
    else:
        return False, False, (f"FAIL: {name}: baseline check has no "
                              "expect_true/min/min_by/max")

    floor = base * (1.0 - check.get("allowed_regression", 0.0))
    ok = got >= floor
    return ok, False, (f"{'OK' if ok else 'FAIL'}: {name}: "
                       f"{check['path']} = {got:.2f} "
                       f"(baseline {base:.2f}, floor {floor:.2f})")


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    expected = baseline.get("bench")
    if expected is not None and bench.get("bench") != expected:
        print(f"FAIL: artifact is '{bench.get('bench')}', baseline gates "
              f"'{expected}' — wrong file pairing")
        return 1

    checks = baseline.get("checks", [])
    if not checks:
        print("FAIL: baseline declares no checks")
        return 2

    failed = 0
    for check in checks:
        ok, _, message = run_check(bench, check)
        print(message)
        if not ok:
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
