// Reproduces Fig 1: multiplication complexity Om (x 10^9) of the VGG16-D
// convolution groups for spatial convolution and F(m x m, 3 x 3),
// m = 2..7 (paper Eq 4).
#include <cstdio>

#include "common/table.hpp"
#include "dse/complexity.hpp"
#include "nn/network.hpp"

int main() {
  using wino::common::TextTable;
  const auto& net = wino::nn::vgg16_d();

  std::printf("Fig 1 — multiplication complexity Om (x 10^9), VGG16-D\n");
  std::printf("Om = N*H*W*C*K/m^2 * (m+r-1)^2, r = 3 (paper Eq 4)\n\n");

  TextTable t;
  t.header({"Method", "Conv1", "Conv2", "Conv3", "Conv4", "Conv5", "Total"});
  for (int m = 1; m <= 7; ++m) {
    std::vector<std::string> row;
    row.push_back(m == 1 ? "Spatial Conv"
                         : "F(" + std::to_string(m) + "x" +
                               std::to_string(m) + ", 3x3)");
    double total = 0;
    for (const auto& group : net.groups) {
      const double bn =
          static_cast<double>(wino::dse::mult_complexity(group, m)) / 1e9;
      total += bn;
      row.push_back(TextTable::num(bn, 3));
    }
    row.push_back(TextTable::num(total, 3));
    t.row(std::move(row));
  }
  t.print();

  std::printf(
      "\nPaper values (Fig 1 data labels), spatial row: "
      "1.936 2.775 4.624 4.624 1.387 — reproduced exactly.\n");
  return 0;
}
