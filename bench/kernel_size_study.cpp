// Kernel-size study: substantiates the paper's Section II-C positioning —
// "FFT-based schemes ... are only feasible for large kernel sizes whereas
// modern CNNs mostly involve smaller kernels", while Winograd wins
// precisely there.
//
// Part 1: per-output multiplication cost of spatial vs F(m x m, r x r)
// vs FFT as the kernel size r grows.
// Part 2: the same economics on AlexNet's real mixed-kernel conv stack.
#include <cmath>
#include <cstdio>

#include "common/table.hpp"
#include "conv/fft.hpp"
#include "dse/complexity.hpp"
#include "nn/network.hpp"
#include "winograd/cook_toom.hpp"

namespace {

// FFT cost model per output pixel for a tiled FFT convolution with tile T
// (power of two >= 2r): two real 2-D FFTs amortised + pointwise complex
// products. Standard operation count: ~ (T^2 log2(T^2) * 2) for the
// transforms per T - r + 1 square of outputs, plus 4 mults per point for
// the complex product (one input FFT amortised over K kernels; kernel
// FFTs precomputed; inverse amortised over C channels — we charge the
// per-(c,k) pointwise product plus the non-amortisable transform share).
double fft_mults_per_output(std::size_t r) {
  const std::size_t t = wino::conv::next_pow2(4 * r);
  const double outputs =
      static_cast<double>((t - r + 1) * (t - r + 1));
  const double points = static_cast<double>(t * t);
  const double log_term = std::log2(points);
  // Complex pointwise product: 4 real mults per frequency point.
  const double pointwise = 4.0 * points / outputs;
  // Transform share per (c, k) pair, generously amortised by a factor 8
  // (batched images and channel reuse).
  const double transforms = 2.0 * points * log_term / outputs / 8.0;
  return pointwise + transforms;
}

}  // namespace

int main() {
  using wino::common::TextTable;

  std::printf("Kernel-size study — multiplications per output pixel per "
              "(c, k) pair\n\n");

  TextTable t;
  t.header({"r", "spatial", "F(2x2)", "F(4x4)", "F(6x6)", "FFT(tiled)"});
  for (const std::size_t r : {3u, 5u, 7u, 9u, 11u}) {
    std::vector<std::string> row{std::to_string(r)};
    row.push_back(TextTable::num(static_cast<double>(r * r), 1));
    for (const int m : {2, 4, 6}) {
      const double tile = static_cast<double>(m + r - 1);
      row.push_back(TextTable::num(
          tile * tile / static_cast<double>(m * m), 1));
    }
    row.push_back(TextTable::num(fft_mults_per_output(r), 1));
    t.row(std::move(row));
  }
  t.print();

  std::printf(
      "\nReading: at r = 3 (VGG) Winograd needs 2.25-4x fewer mults than\n"
      "spatial while FFT still pays ~2x more than spatial; FFT only\n"
      "crosses below spatial around r >= 7 — the paper's Section II-C\n"
      "argument, quantified.\n\n");

  std::printf("AlexNet conv stack (mixed kernels, mults x 10^6):\n\n");
  TextTable t2;
  t2.header({"layer", "r", "stride", "spatial", "best F(m)", "note"});
  for (const auto& group : wino::nn::alexnet().groups) {
    for (const auto& l : group.layers) {
      std::vector<std::string> row{l.name, std::to_string(l.r),
                                   std::to_string(l.stride)};
      row.push_back(
          TextTable::num(static_cast<double>(l.spatial_mults()) / 1e6, 1));
      if (l.stride != 1) {
        row.push_back("-");
        row.push_back("stride > 1: spatial/im2col path");
      } else {
        // Best m in 2..6 by Eq 4.
        double best = 1e30;
        int best_m = 0;
        for (int m = 2; m <= 6; ++m) {
          const double v = static_cast<double>(
              wino::dse::mult_complexity(l, m));
          if (v < best) {
            best = v;
            best_m = m;
          }
        }
        row.push_back(TextTable::num(best / 1e6, 1) + " (m=" +
                      std::to_string(best_m) + ")");
        row.push_back(l.r == 5 ? "5x5: Winograd still wins" : "");
      }
      t2.row(std::move(row));
    }
  }
  t2.print();
  std::printf("\nWinograd covers every stride-1 layer of AlexNet including "
              "the 5x5 conv2;\nonly the stride-4 conv1 falls back to "
              "spatial convolution.\n");
  return 0;
}
