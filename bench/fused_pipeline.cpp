// Cache-resident fused Winograd tile pipeline vs the per-tile walk, layer
// by layer over the scaled VGG16-D conv chain at uniform F(4x4, 3x3).
//
// Both modes run winograd::conv2d_winograd_layout_into on identical
// inputs with fused ReLU; the only difference is the scratch handed in —
// the legacy per-tile bank (one gather -> transform -> K elementwise
// reductions -> inverse per tile column) versus the blocked bank sized by
// winograd::fused_block_columns (gather B columns, run the per-position
// coordinate GEMMs across the block, inverse-transform while the block is
// hot in cache). The per-element accumulation chains are identical, so
// the outputs must memcmp equal — asserted per layer and carried in the
// bit_identical gate field.
//
// Emits BENCH_fused.json next to the binary (or at --out); the CI gate
// (bench/baselines/BENCH_fused_baseline.json) checks the chain speedup,
// bit-identity and the planned uniform-W4 slab peak, which the fused
// scratch must never raise.
//
// Usage: fused_pipeline [--quick] [--out <path>]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_io.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/forward.hpp"
#include "nn/plan.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"
#include "winograd/kernels.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::tensor::Layout;
using wino::tensor::Tensor4f;
using wino::winograd::WinogradScratch;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> samples) {
  const auto mid =
      samples.begin() + static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

/// Heap-backed WinogradScratch in either executor mode (block == 0: the
/// per-tile bank; block >= 2: the fused blocked bank) — the same extents
/// nn::carve_winograd_scratch hands out of the planned slab.
struct OwnedScratch {
  std::vector<float> f;
  std::vector<std::size_t> idx;
  WinogradScratch s;
};

OwnedScratch make_scratch(std::size_t channels, std::size_t n,
                          std::size_t mm, std::size_t block) {
  const std::size_t nsq = n * n;
  const std::size_t bank =
      block >= 2 ? channels * nsq * block + nsq * block : channels * nsq + nsq;
  OwnedScratch o;
  o.f.resize(nsq + bank + nsq + 2 * mm * mm);
  o.idx.resize(3 * n);
  float* f = o.f.data();
  o.s.d = {f, nsq};
  f += nsq;
  if (block >= 2) {
    o.s.u_blk = {f, channels * nsq * block};
    f += channels * nsq * block;
    o.s.acc_blk = {f, nsq * block};
    f += nsq * block;
  } else {
    o.s.u_all = {f, channels * nsq};
    f += channels * nsq;
    o.s.prod = {f, nsq};
    f += nsq;
  }
  o.s.acc_m = {f, nsq};
  f += nsq;
  o.s.y = {f, mm * mm};
  f += mm * mm;
  o.s.acc_y = {f, mm * mm};
  o.s.row_tile = {o.idx.data(), n};
  o.s.row_in = {o.idx.data() + n, n};
  o.s.col_off = {o.idx.data() + 2 * n, n};
  return o;
}

struct LayerResult {
  std::string name;
  std::size_t channels = 0;
  std::size_t kernels = 0;
  std::size_t block = 0;  // fused block columns (cache budget, clamped)
  double unfused_ms = 0;
  double fused_ms = 0;
  double speedup = 0;  // median of paired per-rep ratios
  bool bit_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  if (!wino::common::validate_bench_args(
          argc, argv, {"--quick"},
          "fused_pipeline [--quick] [--out <path>]")) {
    return 2;
  }
  const bool quick = wino::common::has_flag(argc, argv, "--quick");

  const std::size_t scale = quick ? 14 : 7;
  const auto layers = wino::nn::vgg16_d_scaled(scale, 8);
  // Deep layers collapse to one tile per image at these resolutions, so
  // the batch is the only column supply there: 16 images give every layer
  // at least two full register tiles of block columns.
  const std::size_t batch = 16;
  const int reps = quick ? 9 : 11;  // plus one discarded cold pair
  constexpr int kM = 4;

  const wino::winograd::TileTransformer xf(
      wino::winograd::transforms(kM, 3));
  const auto n = static_cast<std::size_t>(xf.tile());
  const auto mm = static_cast<std::size_t>(kM);

  std::printf("fused_pipeline — blocked tile pipeline vs per-tile walk, "
              "F(4x4, 3x3)\nscaled VGG16-D conv layers (%zux%zu input, "
              "batch %zu), %d interleaved reps, cache budget %zu KiB\n\n",
              224 / scale, 224 / scale, batch, reps,
              wino::winograd::kFusedCacheBudgetBytes / 1024);

  wino::common::Rng rng(23);
  std::vector<LayerResult> results;
  std::vector<double> all_ratios;
  bool all_identical = true;

  for (const auto& spec : layers) {
    if (spec.kind != wino::nn::LayerKind::kConv) continue;
    const auto& c = spec.conv;
    Tensor4f input(batch, c.c, c.h, c.w);
    Tensor4f kernels(c.k, c.c, 3, 3);
    rng.fill_uniform(input.flat(), -1.0F, 1.0F);
    rng.fill_uniform(kernels.flat(), -0.5F, 0.5F);
    const wino::winograd::TransformedKernels tk(xf, kernels);
    wino::winograd::WinogradConvOptions opt;
    opt.pad = c.pad;
    const Layout il = Layout::nchw(input.shape());
    const Layout ol = Layout::nchw({batch, c.k, c.out_h(), c.out_w()});

    LayerResult r;
    r.name = c.name;
    r.channels = c.c;
    r.kernels = c.k;
    const std::size_t columns = batch * ((c.out_h() + mm - 1) / mm) *
                                ((c.out_w() + mm - 1) / mm);
    r.block = std::min(wino::winograd::fused_block_columns(
                           c.c, n, wino::winograd::kFusedCacheBudgetBytes),
                       columns);
    if (r.block < 2) continue;  // geometry too small to fuse: skip

    OwnedScratch unfused = make_scratch(c.c, n, mm, 0);
    OwnedScratch fused = make_scratch(c.c, n, mm, r.block);
    std::vector<float> out_unfused(ol.volume());
    std::vector<float> out_fused(ol.volume());

    // Warm both paths (page in scratch, settle the branch predictors).
    wino::winograd::conv2d_winograd_layout_into(
        il, input.flat(), tk, xf, opt, ol, out_unfused, true, unfused.s);
    wino::winograd::conv2d_winograd_layout_into(
        il, input.flat(), tk, xf, opt, ol, out_fused, true, fused.s);

    // Interleave the two modes and alternate which runs first each rep so
    // drift and cache-residency ordering effects cancel in the median;
    // the first (cold) pair is measured but discarded.
    std::vector<double> unfused_secs;
    std::vector<double> fused_secs;
    for (int rep = 0; rep <= reps; ++rep) {
      double u_s = 0;
      double f_s = 0;
      if (rep % 2 == 0) {
        auto t0 = Clock::now();
        wino::winograd::conv2d_winograd_layout_into(
            il, input.flat(), tk, xf, opt, ol, out_unfused, true, unfused.s);
        u_s = seconds_since(t0);
        t0 = Clock::now();
        wino::winograd::conv2d_winograd_layout_into(
            il, input.flat(), tk, xf, opt, ol, out_fused, true, fused.s);
        f_s = seconds_since(t0);
      } else {
        auto t0 = Clock::now();
        wino::winograd::conv2d_winograd_layout_into(
            il, input.flat(), tk, xf, opt, ol, out_fused, true, fused.s);
        f_s = seconds_since(t0);
        t0 = Clock::now();
        wino::winograd::conv2d_winograd_layout_into(
            il, input.flat(), tk, xf, opt, ol, out_unfused, true, unfused.s);
        u_s = seconds_since(t0);
      }
      if (rep == 0) continue;
      unfused_secs.push_back(u_s);
      fused_secs.push_back(f_s);
    }

    r.bit_identical =
        std::memcmp(out_fused.data(), out_unfused.data(),
                    out_unfused.size() * sizeof(float)) == 0;
    all_identical = all_identical && r.bit_identical;
    r.unfused_ms = median(unfused_secs) * 1e3;
    r.fused_ms = median(fused_secs) * 1e3;
    std::vector<double> ratios;
    for (std::size_t rep = 0; rep < fused_secs.size(); ++rep) {
      ratios.push_back(unfused_secs[rep] / fused_secs[rep]);
      all_ratios.push_back(ratios.back());
    }
    r.speedup = median(ratios);
    results.push_back(r);
  }

  double total_unfused_ms = 0;
  double total_fused_ms = 0;
  wino::common::TextTable table;
  table.header({"layer", "c", "k", "block", "unfused ms", "fused ms",
                "speedup", "bit-identical"});
  for (const LayerResult& r : results) {
    total_unfused_ms += r.unfused_ms;
    total_fused_ms += r.fused_ms;
    table.row({r.name, std::to_string(r.channels), std::to_string(r.kernels),
               std::to_string(r.block),
               wino::common::TextTable::num(r.unfused_ms, 3),
               wino::common::TextTable::num(r.fused_ms, 3),
               wino::common::TextTable::num(r.speedup),
               r.bit_identical ? "yes" : "NO"});
  }
  table.print();

  // Chain-level numbers: total of per-layer medians (the whole conv
  // chain's wall time under each executor) and the paired-rep median.
  const double chain_speedup =
      total_fused_ms > 0 ? total_unfused_ms / total_fused_ms : 0.0;
  const double paired_speedup = median(all_ratios);
  // The fused scratch must never raise the planned slab peak: the planner
  // carves blocks only where the unfused high-water mark already has room.
  const std::size_t w4_peak =
      wino::nn::uniform_plan(layers, wino::nn::ConvAlgo::kWinograd4)
          .memory.peak_bytes(1);

  std::printf("\nconv chain: unfused %.3f ms, fused %.3f ms -> %.3fx "
              "(paired-rep median %.3fx)\nuniform-W4 planned slab peak: "
              "%zu bytes/image\nbit-identity: %s\n",
              total_unfused_ms, total_fused_ms, chain_speedup,
              paired_speedup, w4_peak,
              all_identical ? "all layers memcmp-equal"
                            : "VIOLATION — fused != unfused");
  if (!all_identical) return 1;

  // --- BENCH_fused.json ----------------------------------------------------
  const std::string json_path =
      wino::common::bench_output_path(argc, argv, "BENCH_fused.json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not open %s for writing\n",
                json_path.c_str());
    return 0;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"fused_pipeline\",\n  \"quick\": %s,\n"
               "  \"model\": \"vgg16-d-scaled-%zu\",\n  \"m\": %d,\n"
               "  \"batch\": %zu,\n  \"reps\": %d,\n"
               "  \"cache_budget_bytes\": %zu,\n  \"layers\": [\n",
               quick ? "true" : "false", scale, kM, batch, reps,
               static_cast<std::size_t>(
                   wino::winograd::kFusedCacheBudgetBytes));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LayerResult& r = results[i];
    std::fprintf(json,
                 "    {\"layer\": \"%s\", \"c\": %zu, \"k\": %zu, "
                 "\"block_columns\": %zu,\n     \"unfused_ms\": %.4f, "
                 "\"fused_ms\": %.4f, \"speedup\": %.4f, "
                 "\"bit_identical\": %s}%s\n",
                 r.name.c_str(), r.channels, r.kernels, r.block,
                 r.unfused_ms, r.fused_ms, r.speedup,
                 r.bit_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"chain_unfused_ms\": %.4f,\n"
               "  \"chain_fused_ms\": %.4f,\n"
               "  \"speedup_fused_vs_unfused\": %.4f,\n"
               "  \"paired_rep_speedup\": %.4f,\n"
               "  \"uniform_w4_peak_bytes_per_image\": %zu,\n"
               "  \"bit_identical\": %s\n}\n",
               total_unfused_ms, total_fused_ms, chain_speedup,
               paired_speedup, w4_peak, all_identical ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
