// SLO traffic replay: the same seeded open-loop arrival trace is played
// against a kFifo server and a kEdf server (deadline shedding, cost-based
// admission, starvation bound), and the deadline outcomes are compared.
// Two trace shapes — Poisson at moderate utilisation and on/off bursts at
// high utilisation — over a mix of two model sizes and three traffic
// classes:
//
//   premium    priority 2, deadline 10x the model's measured per-image ms
//   standard   priority 1, deadline 25x
//   besteffort priority 0, no deadline (the slack EDF pushes delay into)
//
// The replay is open-loop (submission times come from the trace, not from
// completions), so an overloaded server cannot slow its own arrival
// process down — exactly the regime where FIFO completes everything late
// while EDF front-loads deadline'd traffic, sheds the doomed and rejects
// past the admission budget. A harvester thread polls the outstanding
// futures and timestamps completions client-side, giving per-class
// p50/p99/p999 latency plus deadline-miss and shed rates.
//
// Emits BENCH_slo.json next to the binary (or at --out); CI gates the
// bursty-trace verdict (EDF beats FIFO on deadline-miss rate) and miss
// ceilings via check_bench_regression.py.
//
// Usage: traffic_replay [--quick] [--out <path>]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_io.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/forward.hpp"
#include "nn/plan.hpp"
#include "serve/inference_server.hpp"
#include "tensor/tensor.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::tensor::Tensor4f;

constexpr int kNumClasses = 3;
const char* const kClassNames[kNumClasses] = {"premium", "standard",
                                              "besteffort"};
constexpr int kClassPriority[kNumClasses] = {2, 1, 0};
/// Deadline as a multiple of the request's own model's measured per-image
/// cost (0 = best-effort). 20x leaves premium room for one batching window
/// plus a short queue; 50x survives moderate queueing but not a burst
/// tail behind FIFO.
constexpr double kClassDeadlineX[kNumClasses] = {20.0, 50.0, 0.0};

/// Traffic mix: 20% premium / 40% standard / 40% best-effort; 25% of
/// requests go to the large model.
constexpr int kPremiumPct = 20;
constexpr int kStandardPct = 40;
constexpr int kLargePct = 25;

struct TraceEvent {
  std::uint64_t t_us = 0;  ///< arrival offset from replay start
  int model = 0;           ///< 0 = small, 1 = large
  int klass = 0;
};

struct ClassStats {
  // Written by the submitter thread.
  std::uint64_t attempts = 0;
  std::uint64_t admission_rejected = 0;
  std::uint64_t capacity_rejected = 0;
  // Written by the harvester thread (after submitter/harvester join, safe
  // to read together with the above).
  std::uint64_t completed = 0;
  std::uint64_t late = 0;
  std::uint64_t shed = 0;
  std::uint64_t other_failures = 0;
  std::vector<double> latencies_us;  ///< completed requests only

  void accumulate(const ClassStats& o) {
    attempts += o.attempts;
    admission_rejected += o.admission_rejected;
    capacity_rejected += o.capacity_rejected;
    completed += o.completed;
    late += o.late;
    shed += o.shed;
    other_failures += o.other_failures;
    latencies_us.insert(latencies_us.end(), o.latencies_us.begin(),
                        o.latencies_us.end());
  }

  /// A deadline miss is any outcome other than completing on time.
  [[nodiscard]] std::uint64_t misses() const {
    return late + shed + admission_rejected + capacity_rejected;
  }
};

struct RunResult {
  std::string name;  ///< "<trace>-<policy>", the JSON selector key
  std::string trace;
  std::string policy;
  ClassStats classes[kNumClasses];
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  double wall_s = 0.0;

  /// Miss rate over the deadline-carrying classes (premium + standard).
  [[nodiscard]] double deadline_miss_rate() const {
    std::uint64_t miss = 0;
    std::uint64_t attempts = 0;
    for (int k = 0; k < kNumClasses; ++k) {
      if (kClassDeadlineX[k] <= 0) continue;
      miss += classes[k].misses();
      attempts += classes[k].attempts;
    }
    return attempts == 0 ? 0.0
                         : static_cast<double>(miss) /
                               static_cast<double>(attempts);
  }

  [[nodiscard]] double shed_rate() const {
    std::uint64_t shed = 0;
    std::uint64_t attempts = 0;
    for (const ClassStats& c : classes) {
      shed += c.shed;
      attempts += c.attempts;
    }
    return attempts == 0 ? 0.0
                         : static_cast<double>(shed) /
                               static_cast<double>(attempts);
  }
};

double median(std::vector<double> samples) {
  const auto mid =
      samples.begin() + static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  return samples[idx];
}

/// Median per-image forward time for one plan, in ms — the cost signal
/// written into the plan's predicted_total_ms and the unit deadlines and
/// trace load are expressed in.
double measure_image_ms(const wino::nn::ExecutionPlan& plan,
                        const wino::nn::WeightBank& weights,
                        const Tensor4f& image) {
  (void)wino::nn::forward(plan, weights, image);  // warm transforms
  std::vector<double> secs;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = Clock::now();
    (void)wino::nn::forward(plan, weights, image);
    secs.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return median(secs) * 1e3;
}

void draw_model_and_class(std::mt19937_64& engine, TraceEvent& ev) {
  std::uniform_int_distribution<int> pct(0, 99);
  ev.model = pct(engine) < kLargePct ? 1 : 0;
  const int c = pct(engine);
  ev.klass = c < kPremiumPct ? 0 : (c < kPremiumPct + kStandardPct ? 1 : 2);
}

/// Poisson arrivals at `utilization` of the measured service capacity.
std::vector<TraceEvent> poisson_trace(std::size_t n, double mean_cost_ms,
                                      double utilization,
                                      std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  std::exponential_distribution<double> gap_us(
      utilization / (mean_cost_ms * 1e3));
  std::vector<TraceEvent> trace(n);
  double t = 0.0;
  for (TraceEvent& ev : trace) {
    t += gap_us(engine);
    ev.t_us = static_cast<std::uint64_t>(t);
    draw_model_and_class(engine, ev);
  }
  return trace;
}

/// On/off bursts: inside a burst arrivals run at `kBurstIntensity` times
/// service capacity; the off-gap after each burst restores `utilization`
/// on average. The burst tails are what separates EDF from FIFO.
std::vector<TraceEvent> bursty_trace(std::size_t n, double mean_cost_ms,
                                     double utilization,
                                     std::uint64_t seed) {
  constexpr double kBurstIntensity = 5.0;
  std::mt19937_64 engine(seed);
  std::exponential_distribution<double> intra_us(
      kBurstIntensity / (mean_cost_ms * 1e3));
  std::uniform_int_distribution<int> burst_len(32, 64);
  std::uniform_real_distribution<double> gap_jitter(0.8, 1.2);
  std::vector<TraceEvent> trace;
  trace.reserve(n);
  double t = 0.0;
  while (trace.size() < n) {
    const int len = burst_len(engine);
    for (int i = 0; i < len && trace.size() < n; ++i) {
      t += intra_us(engine);
      TraceEvent ev;
      ev.t_us = static_cast<std::uint64_t>(t);
      draw_model_and_class(engine, ev);
      trace.push_back(ev);
    }
    // Off period sized so the burst's work amortises to `utilization`.
    t += static_cast<double>(len) * mean_cost_ms * 1e3 *
         (1.0 / utilization - 1.0 / kBurstIntensity) * gap_jitter(engine);
  }
  return trace;
}

struct ModelSet {
  wino::nn::ExecutionPlan plan[2];
  wino::nn::WeightBank weights[2];
  Tensor4f image[2];  ///< one representative input per model
  double cost_ms[2] = {0.0, 0.0};
};

/// Replay one trace against one policy: open-loop submission on this
/// thread, completion harvesting (poll + client-side timestamps) on a
/// helper thread.
RunResult replay(const std::string& trace_name,
                 wino::serve::SchedulingPolicy policy,
                 const std::vector<TraceEvent>& trace, const ModelSet& models,
                 double mean_cost_ms) {
  RunResult result;
  result.trace = trace_name;
  result.policy =
      policy == wino::serve::SchedulingPolicy::kEdf ? "edf" : "fifo";
  result.name = trace_name + "-" + result.policy;

  wino::serve::ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 2000;
  cfg.max_inflight = 512;
  cfg.backpressure = wino::serve::BackpressurePolicy::kReject;
  cfg.scheduling = policy;
  if (policy == wino::serve::SchedulingPolicy::kEdf) {
    // Budget ~60 mean requests of predicted backlog: far above steady
    // Poisson occupancy, clipping only the deepest burst tails (where
    // even the standard deadline is already hopeless). The starvation
    // bound keeps best-effort moving even then.
    cfg.admission_budget_ms = 60.0 * mean_cost_ms;
    cfg.starvation_bound_us =
        static_cast<std::uint64_t>(100.0 * mean_cost_ms * 1e3);
  }
  wino::serve::InferenceServer server(cfg);
  wino::serve::ModelId ids[2];
  ids[0] = server.add_model("small", models.plan[0], models.weights[0]);
  ids[1] = server.add_model("large", models.plan[1], models.weights[1]);

  struct Outstanding {
    std::future<Tensor4f> future;
    Clock::time_point submit{};
    Clock::time_point deadline{};
    bool has_deadline = false;
    int klass = 0;
  };
  std::mutex live_mutex;
  std::vector<Outstanding> live;
  std::atomic<bool> submitting_done{false};

  std::thread harvester([&] {
    std::vector<Outstanding> ready;
    for (;;) {
      ready.clear();
      {
        std::lock_guard<std::mutex> lock(live_mutex);
        for (auto it = live.begin(); it != live.end();) {
          if (it->future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
            ready.push_back(std::move(*it));
            it = live.erase(it);
          } else {
            ++it;
          }
        }
        if (ready.empty() && live.empty() && submitting_done.load()) return;
      }
      const auto now = Clock::now();
      for (Outstanding& o : ready) {
        ClassStats& c = result.classes[o.klass];
        try {
          (void)o.future.get();
          ++c.completed;
          c.latencies_us.push_back(
              std::chrono::duration<double, std::micro>(now - o.submit)
                  .count());
          if (o.has_deadline && now > o.deadline) ++c.late;
        } catch (const wino::serve::DeadlineMissed&) {
          ++c.shed;
        } catch (...) {
          ++c.other_failures;
        }
      }
      if (ready.empty()) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
  });

  const auto t0 = Clock::now();
  for (const TraceEvent& ev : trace) {
    std::this_thread::sleep_until(t0 + std::chrono::microseconds(ev.t_us));
    ClassStats& c = result.classes[ev.klass];
    ++c.attempts;
    wino::serve::SubmitOptions opt;
    opt.priority = kClassPriority[ev.klass];
    opt.deadline_us = static_cast<std::uint64_t>(
        kClassDeadlineX[ev.klass] * models.cost_ms[ev.model] * 1e3);
    Outstanding o;
    o.submit = Clock::now();
    o.has_deadline = opt.deadline_us != 0;
    o.deadline = o.submit + std::chrono::microseconds(opt.deadline_us);
    o.klass = ev.klass;
    try {
      o.future = server.submit(ids[ev.model], models.image[ev.model], opt);
    } catch (const wino::serve::AdmissionRejected&) {
      ++c.admission_rejected;
      continue;
    } catch (const wino::serve::ServerOverloaded&) {
      ++c.capacity_rejected;
      continue;
    }
    std::lock_guard<std::mutex> lock(live_mutex);
    live.push_back(std::move(o));
  }
  server.drain();  // every admitted future resolves before we stop polling
  submitting_done.store(true);
  harvester.join();
  result.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  const auto stats = server.stats();
  result.batches = stats.batches;
  result.mean_batch = stats.mean_batch_size;
  server.shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  if (!wino::common::validate_bench_args(
          argc, argv, {"--quick"},
          "traffic_replay [--quick] [--out <path>]")) {
    return 2;
  }
  const bool quick = wino::common::has_flag(argc, argv, "--quick");
  const std::size_t kRequests = quick ? 240 : 480;
  const int kReps = quick ? 2 : 3;
  // Utilisations are nominal (arrival work / measured single-image cost);
  // the serving threads themselves consume a share of the machine, so
  // effective utilisation runs higher and varies with the host's moment-
  // to-moment speed. The Poisson trace at 0.55 stays in the stable-queue
  // regime (the "both policies do fine" control); the bursty trace at
  // 1.15 is overloaded by construction — deadline triage is then a
  // necessity, not a tiebreak, which keeps the EDF-vs-FIFO verdict
  // independent of how fast the host happens to be during the run.
  constexpr double kPoissonUtil = 0.55;
  constexpr double kBurstyUtil = 1.15;

  // Two model sizes; each plan carries its measured per-image cost so the
  // server's admission/shedding predictions line up with reality.
  ModelSet models;
  {
    const auto small_layers = wino::nn::vgg16_d_scaled(28, 8);  // 8x8 input
    const auto large_layers = wino::nn::vgg16_d_scaled(14, 8);  // 16x16
    models.weights[0] = wino::nn::random_weights(small_layers, 7);
    models.weights[1] = wino::nn::random_weights(large_layers, 13);
    models.plan[0] = wino::nn::uniform_plan(small_layers,
                                            wino::nn::ConvAlgo::kWinograd2);
    models.plan[1] = wino::nn::uniform_plan(large_layers,
                                            wino::nn::ConvAlgo::kWinograd2);
    wino::common::Rng rng(11);
    models.image[0] = Tensor4f(1, 3, 8, 8);
    models.image[1] = Tensor4f(1, 3, 16, 16);
    rng.fill_uniform(models.image[0].flat(), -1.0F, 1.0F);
    rng.fill_uniform(models.image[1].flat(), -1.0F, 1.0F);
    for (int m = 0; m < 2; ++m) {
      models.cost_ms[m] =
          measure_image_ms(models.plan[m], models.weights[m], models.image[m]);
      models.plan[m].predicted_total_ms = models.cost_ms[m];
    }
  }
  const double mean_cost_ms =
      (1.0 - kLargePct / 100.0) * models.cost_ms[0] +
      (kLargePct / 100.0) * models.cost_ms[1];

  std::printf("traffic_replay — %zu requests/run, %d rep(s); "
              "small %.3f ms/img, large %.3f ms/img, mix mean %.3f ms\n\n",
              kRequests, kReps, models.cost_ms[0], models.cost_ms[1],
              mean_cost_ms);

  // Each rep generates one Poisson and one bursty trace, then replays the
  // IDENTICAL trace under both policies — the comparison is paired, so
  // trace-shape luck cancels out of the verdict. Counts aggregate across
  // reps; latencies pool.
  std::vector<RunResult> runs;
  for (const char* trace_name : {"poisson", "bursty"}) {
    for (const char* policy_name : {"fifo", "edf"}) {
      RunResult agg;
      agg.trace = trace_name;
      agg.policy = policy_name;
      agg.name = std::string(trace_name) + "-" + policy_name;
      runs.push_back(agg);
    }
  }
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t seed = 100 + static_cast<std::uint64_t>(rep);
    const auto poisson =
        poisson_trace(kRequests, mean_cost_ms, kPoissonUtil, seed);
    const auto bursty =
        bursty_trace(kRequests, mean_cost_ms, kBurstyUtil, seed);
    const struct {
      const char* name;
      const std::vector<TraceEvent>* trace;
    } traces[] = {{"poisson", &poisson}, {"bursty", &bursty}};
    for (const auto& t : traces) {
      for (const auto policy : {wino::serve::SchedulingPolicy::kFifo,
                                wino::serve::SchedulingPolicy::kEdf}) {
        RunResult one =
            replay(t.name, policy, *t.trace, models, mean_cost_ms);
        for (RunResult& agg : runs) {
          if (agg.name == one.name) {
            for (int k = 0; k < kNumClasses; ++k) {
              agg.classes[k].accumulate(one.classes[k]);
            }
            agg.batches += one.batches;
            agg.wall_s += one.wall_s;
            agg.mean_batch += one.mean_batch / kReps;
          }
        }
      }
    }
  }

  wino::common::TextTable table;
  table.header({"run", "class", "attempts", "on-time", "late", "shed",
                "adm-rej", "p50 ms", "p99 ms", "p999 ms"});
  for (const RunResult& r : runs) {
    for (int k = 0; k < kNumClasses; ++k) {
      const ClassStats& c = r.classes[k];
      table.row(
          {r.name, kClassNames[k], std::to_string(c.attempts),
           std::to_string(c.completed - c.late), std::to_string(c.late),
           std::to_string(c.shed), std::to_string(c.admission_rejected),
           wino::common::TextTable::num(
               percentile(c.latencies_us, 0.5) / 1e3),
           wino::common::TextTable::num(
               percentile(c.latencies_us, 0.99) / 1e3),
           wino::common::TextTable::num(
               percentile(c.latencies_us, 0.999) / 1e3)});
    }
  }
  table.print();

  const auto find_run = [&](const std::string& name) -> const RunResult& {
    for (const RunResult& r : runs) {
      if (r.name == name) return r;
    }
    std::abort();  // unreachable: runs is built from the same name grid
  };
  const double fifo_poisson = find_run("poisson-fifo").deadline_miss_rate();
  const double edf_poisson = find_run("poisson-edf").deadline_miss_rate();
  const double fifo_bursty = find_run("bursty-fifo").deadline_miss_rate();
  const double edf_bursty = find_run("bursty-edf").deadline_miss_rate();
  const bool edf_beats_fifo_bursty = edf_bursty < fifo_bursty;

  std::printf("\ndeadline-miss rate (premium+standard): poisson fifo %.3f / "
              "edf %.3f; bursty fifo %.3f / edf %.3f (%s)\n",
              fifo_poisson, edf_poisson, fifo_bursty, edf_bursty,
              edf_beats_fifo_bursty ? "EDF wins"
                                    : "FIFO WINS — regression");

  // --- BENCH_slo.json ------------------------------------------------------
  const std::string json_path =
      wino::common::bench_output_path(argc, argv, "BENCH_slo.json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not open %s for writing\n",
                json_path.c_str());
    return 0;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"traffic_replay\",\n"
               "  \"quick\": %s,\n  \"requests_per_run\": %zu,\n"
               "  \"reps\": %d,\n"
               "  \"model_cost_ms\": {\"small\": %.4f, \"large\": %.4f},\n"
               "  \"runs\": [\n",
               quick ? "true" : "false", kRequests, kReps,
               models.cost_ms[0], models.cost_ms[1]);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"trace\": \"%s\", "
                 "\"policy\": \"%s\",\n"
                 "     \"deadline_miss_rate\": %.4f, \"shed_rate\": %.4f,\n"
                 "     \"batches\": %llu, \"mean_batch\": %.3f, "
                 "\"wall_s\": %.3f,\n     \"classes\": [\n",
                 r.name.c_str(), r.trace.c_str(), r.policy.c_str(),
                 r.deadline_miss_rate(), r.shed_rate(),
                 static_cast<unsigned long long>(r.batches), r.mean_batch,
                 r.wall_s);
    for (int k = 0; k < kNumClasses; ++k) {
      const ClassStats& c = r.classes[k];
      const double miss_rate =
          c.attempts == 0 ? 0.0
                          : static_cast<double>(c.misses()) /
                                static_cast<double>(c.attempts);
      std::fprintf(
          json,
          "      {\"name\": \"%s\", \"priority\": %d, "
          "\"attempts\": %llu, \"completed\": %llu, \"late\": %llu, "
          "\"shed\": %llu, \"admission_rejected\": %llu, "
          "\"capacity_rejected\": %llu, \"other_failures\": %llu,\n"
          "       \"miss_rate\": %.4f, \"p50_us\": %.1f, "
          "\"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
          kClassNames[k], kClassPriority[k],
          static_cast<unsigned long long>(c.attempts),
          static_cast<unsigned long long>(c.completed),
          static_cast<unsigned long long>(c.late),
          static_cast<unsigned long long>(c.shed),
          static_cast<unsigned long long>(c.admission_rejected),
          static_cast<unsigned long long>(c.capacity_rejected),
          static_cast<unsigned long long>(c.other_failures), miss_rate,
          percentile(c.latencies_us, 0.5), percentile(c.latencies_us, 0.99),
          percentile(c.latencies_us, 0.999),
          k + 1 < kNumClasses ? "," : "");
    }
    std::fprintf(json, "     ]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"miss_rate\": {\"fifo_poisson\": %.4f, "
               "\"edf_poisson\": %.4f, \"fifo_bursty\": %.4f, "
               "\"edf_bursty\": %.4f},\n"
               "  \"edf_beats_fifo_bursty\": %s\n}\n",
               fifo_poisson, edf_poisson, fifo_bursty, edf_bursty,
               edf_beats_fifo_bursty ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
