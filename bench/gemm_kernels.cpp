// Naive vs blocked vs blocked+SIMD SGEMM across VGG-16 layer shapes, plus
// thread scaling — the perf trajectory for the shared GEMM core under every
// conv backend. Emits a machine-readable BENCH_gemm.json next to the
// stdout tables.
//
//   variants (single thread):
//     naive      sgemm_naive — the triple loop with a per-element
//                accumulator (the correctness reference)
//     ikj        the pre-PR2 in-repo GEMM loop order (row-streaming,
//                auto-vectorisable) for an honest middle baseline
//     blocked    the cache-blocked packed core, scalar micro-kernel forced
//     blocked+SIMD  the same core with the compiled-in micro-kernel
//                   (sgemm_kernel_name(): avx2/neon; equals "blocked" when
//                   only the scalar fallback is compiled in)
//
// Usage: gemm_kernels [--quick] [--out <path>]
//   --quick shrinks the VGG shapes for CI smoke (the square-512 reference
//           point is kept full-size so the perf-regression gate always
//           tracks the same 512^3 number)
//   --out   overrides the JSON artifact path (default: next to the binary)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_io.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "runtime/gemm.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::runtime::GemmKernel;

struct Shape {
  std::string name;
  std::size_t m, n, k;
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-`reps` wall time for fn().
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

/// The pre-PR2 in-repo GEMM: i-k-j loop order, C row kept hot.
void gemm_ikj(std::size_t m, std::size_t n, std::size_t k, const float* a,
              const float* b, float* c) {
  std::fill(c, c + m * n, 0.0F);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      const float* brow = b + kk * n;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

struct ShapeResult {
  Shape shape;
  double naive_gflops = 0;
  double ikj_gflops = 0;
  double blocked_gflops = 0;
  double simd_gflops = 0;
};

struct ThreadResult {
  std::size_t threads;
  double gflops;
  double speedup;
};

}  // namespace

int main(int argc, char** argv) {
  if (!wino::common::validate_bench_args(
          argc, argv, {"--quick"},
          "gemm_kernels [--quick] [--out <path>]")) {
    return 2;
  }
  const bool quick = wino::common::has_flag(argc, argv, "--quick");

  // Representative VGG-16 im2col GEMM shapes (M = output channels,
  // K = C * 3 * 3, N = output pixels) plus the square reference point the
  // CI regression gate tracks (bench/check_bench_regression.py). --quick
  // scales the VGG pixel counts down 4x but keeps square-512 intact so the
  // gated number is comparable between quick and full runs.
  std::vector<Shape> shapes = {
      {"square-512", 512, 512, 512},
      {"vgg-conv1_2", 64, quick ? 12544u : 50176u, 576},
      {"vgg-conv2_2", 128, quick ? 3136u : 12544u, 1152},
      {"vgg-conv3_2", 256, quick ? 784u : 3136u, 2304},
      {"vgg-conv4_2", 512, 784, 2304},
      {"vgg-conv5_2", 512, 196, 4608},
  };

  std::printf("gemm_kernels — naive vs blocked vs blocked+SIMD "
              "(compiled kernel: %s)\n\n",
              wino::runtime::sgemm_kernel_name());

  wino::common::Rng rng(3);
  wino::common::TextTable table;
  table.header({"shape", "M", "N", "K", "naive GF/s", "ikj GF/s",
                "blocked GF/s", "simd GF/s", "simd/naive", "simd/ikj"});

  std::vector<ShapeResult> results;
  double square_speedup_vs_naive = 0;
  double square_speedup_vs_ikj = 0;
  wino::runtime::ThreadPool::set_global_threads(1);
  for (const Shape& s : shapes) {
    std::vector<float> a(s.m * s.k);
    std::vector<float> b(s.k * s.n);
    std::vector<float> c(s.m * s.n);
    std::vector<float> ref(s.m * s.n);
    rng.fill_uniform(a);
    rng.fill_uniform(b);
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.n) *
                         static_cast<double>(s.k);
    const int reps = quick ? 2 : 3;

    ShapeResult r;
    r.shape = s;
    r.naive_gflops =
        flops / best_seconds(1, [&] {
          wino::runtime::sgemm_naive(s.m, s.n, s.k, 1.0F, a.data(), s.k,
                                     b.data(), s.n, 0.0F, ref.data(), s.n);
        }) /
        1e9;
    r.ikj_gflops = flops / best_seconds(reps, [&] {
                     gemm_ikj(s.m, s.n, s.k, a.data(), b.data(), c.data());
                   }) /
                   1e9;
    r.blocked_gflops =
        flops / best_seconds(reps, [&] {
          wino::runtime::sgemm(s.m, s.n, s.k, 1.0F, a.data(), s.k, b.data(),
                               s.n, 0.0F, c.data(), s.n,
                               GemmKernel::kScalar);
        }) /
        1e9;
    r.simd_gflops =
        flops / best_seconds(reps, [&] {
          wino::runtime::sgemm(s.m, s.n, s.k, 1.0F, a.data(), s.k, b.data(),
                               s.n, 0.0F, c.data(), s.n, GemmKernel::kAuto);
        }) /
        1e9;

    // Guard: the timed kernel must agree with the reference (to rounding;
    // bit-exact when K fits one reduction panel).
    double worst = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      worst = std::max(worst, std::abs(static_cast<double>(c[i]) -
                                       static_cast<double>(ref[i])));
    }
    if (worst > 1e-2) {
      std::printf("CORRECTNESS FAILURE on %s: max|diff| = %g\n",
                  s.name.c_str(), worst);
      return 1;
    }

    if (&s == &shapes.front()) {
      square_speedup_vs_naive = r.simd_gflops / r.naive_gflops;
      square_speedup_vs_ikj = r.simd_gflops / r.ikj_gflops;
    }
    table.row({s.name, std::to_string(s.m), std::to_string(s.n),
               std::to_string(s.k),
               wino::common::TextTable::num(r.naive_gflops),
               wino::common::TextTable::num(r.ikj_gflops),
               wino::common::TextTable::num(r.blocked_gflops),
               wino::common::TextTable::num(r.simd_gflops),
               wino::common::TextTable::num(r.simd_gflops / r.naive_gflops),
               wino::common::TextTable::num(r.simd_gflops / r.ikj_gflops)});
    results.push_back(r);
  }
  table.print();
  std::printf("\n%s single-thread speedup: %.2fx vs naive, %.2fx vs ikj\n\n",
              shapes.front().name.c_str(), square_speedup_vs_naive,
              square_speedup_vs_ikj);

  // --- Thread scaling on the square shape, best kernel ---------------------
  const Shape& sq = shapes.front();
  std::vector<float> a(sq.m * sq.k);
  std::vector<float> b(sq.k * sq.n);
  std::vector<float> c(sq.m * sq.n);
  rng.fill_uniform(a);
  rng.fill_uniform(b);
  const double flops = 2.0 * static_cast<double>(sq.m) *
                       static_cast<double>(sq.n) * static_cast<double>(sq.k);

  wino::common::TextTable scaling;
  scaling.header({"threads", "GF/s", "speedup", "bit-identical"});
  std::vector<ThreadResult> thread_results;
  std::vector<float> ref1;
  double base_gflops = 0;
  bool deterministic = true;
  for (const std::size_t t : {1u, 2u, 4u, 8u}) {
    wino::runtime::ThreadPool::set_global_threads(t);
    const double sec = best_seconds(quick ? 2 : 3, [&] {
      wino::runtime::sgemm(sq.m, sq.n, sq.k, 1.0F, a.data(), sq.k, b.data(),
                           sq.n, 0.0F, c.data(), sq.n);
    });
    const double gflops = flops / sec / 1e9;
    if (t == 1) {
      base_gflops = gflops;
      ref1 = c;
    }
    const bool same =
        std::memcmp(ref1.data(), c.data(), c.size() * sizeof(float)) == 0;
    deterministic = deterministic && same;
    thread_results.push_back({t, gflops, gflops / base_gflops});
    scaling.row({std::to_string(t), wino::common::TextTable::num(gflops),
                 wino::common::TextTable::num(gflops / base_gflops),
                 same ? "yes" : "NO"});
  }
  scaling.print();
  if (!deterministic) {
    std::printf("DETERMINISM VIOLATION in thread scaling\n");
    return 1;
  }

  // --- BENCH_gemm.json -----------------------------------------------------
  const std::string json_path =
      wino::common::bench_output_path(argc, argv, "BENCH_gemm.json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not open %s for writing\n",
                json_path.c_str());
    return 0;
  }
  const auto blocking = wino::runtime::sgemm_blocking();
  std::fprintf(json,
               "{\n  \"bench\": \"gemm_kernels\",\n"
               "  \"kernel\": \"%s\",\n  \"quick\": %s,\n"
               "  \"blocking\": {\"mr\": %zu, \"nr\": %zu, \"kc\": %zu, "
               "\"nc\": %zu},\n  \"shapes\": [\n",
               wino::runtime::sgemm_kernel_name(), quick ? "true" : "false",
               blocking.mr, blocking.nr, blocking.kc, blocking.nc);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& r = results[i];
    std::fprintf(
        json,
        "    {\"name\": \"%s\", \"m\": %zu, \"n\": %zu, \"k\": %zu,\n"
        "     \"naive_gflops\": %.4f, \"ikj_gflops\": %.4f,\n"
        "     \"blocked_scalar_gflops\": %.4f, \"blocked_simd_gflops\": "
        "%.4f,\n"
        "     \"speedup_simd_vs_naive\": %.4f, \"speedup_simd_vs_ikj\": "
        "%.4f}%s\n",
        r.shape.name.c_str(), r.shape.m, r.shape.n, r.shape.k,
        r.naive_gflops, r.ikj_gflops, r.blocked_gflops, r.simd_gflops,
        r.simd_gflops / r.naive_gflops, r.simd_gflops / r.ikj_gflops,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"thread_scaling\": {\"shape\": \"%s\", "
                     "\"points\": [\n",
               sq.name.c_str());
  for (std::size_t i = 0; i < thread_results.size(); ++i) {
    const ThreadResult& t = thread_results[i];
    std::fprintf(json,
                 "    {\"threads\": %zu, \"gflops\": %.4f, \"speedup\": "
                 "%.4f}%s\n",
                 t.threads, t.gflops, t.speedup,
                 i + 1 < thread_results.size() ? "," : "");
  }
  std::fprintf(json, "  ]},\n  \"deterministic\": %s\n}\n",
               deterministic ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
