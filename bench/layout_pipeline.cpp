// Layout-planned vs always-NCHW activation flow through the VGG-16 layer
// chain: what eliding the NCHW round-trip between consecutive Winograd
// layers (tile-form handoffs + ReLU fused into the output scatter) buys
// over repacking at every layer boundary. Both modes run the identical
// arithmetic (bit-identical outputs, asserted here and pinned by
// tests/nn_forward_test.cpp), so the delta is pure data-movement cost.
//
// Emits BENCH_layout.json next to the binary (or at --out); the
// elided_beats_nchw field carries the CI gate's verdict
// (bench/baselines/BENCH_layout_baseline.json).
//
// Usage: layout_pipeline [--quick] [--out <path>]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_io.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/forward.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::tensor::Tensor4f;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> samples) {
  const auto mid =
      samples.begin() + static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

struct AlgoResult {
  std::string algo;
  double nchw_img_per_s = 0;
  double elided_img_per_s = 0;
  double speedup = 0;  // median of paired per-rep time ratios
  std::size_t elided_boundaries = 0;
  std::size_t boundaries = 0;
  std::uint64_t nchw_floats_elided = 0;  // per image
  bool bit_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  if (!wino::common::validate_bench_args(
          argc, argv, {"--quick"},
          "layout_pipeline [--quick] [--out <path>]")) {
    return 2;
  }
  const bool quick = wino::common::has_flag(argc, argv, "--quick");

  // The scaled VGG16-D chain: all 13 conv layers (the elision target),
  // pools and the classifier head. --quick halves the resolution.
  const std::size_t scale = quick ? 14 : 7;
  const std::size_t hw = 224 / scale;
  const auto layers = wino::nn::vgg16_d_scaled(scale, 8);
  const auto weights = wino::nn::random_weights(layers, 7);
  const std::size_t batch = 8;
  // One extra rep runs cold and is discarded: even after the explicit
  // warm-up, the first timed pair occasionally carries one-off allocator /
  // icache effects that would pollute a 9-sample median.
  const int reps = quick ? 9 : 11;

  wino::common::Rng rng(11);
  Tensor4f input(batch, 3, hw, hw);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);

  std::printf("layout_pipeline — layout-planned vs always-NCHW activation "
              "flow\nscaled VGG16-D (%zux%zu input, batch %zu), %d "
              "interleaved reps, %zu threads\n\n",
              hw, hw, batch, reps,
              wino::runtime::ThreadPool::global().threads());

  const std::vector<wino::nn::ConvAlgo> algos = {
      wino::nn::ConvAlgo::kWinograd2, wino::nn::ConvAlgo::kWinograd4};

  std::vector<AlgoResult> results;
  std::vector<double> all_ratios;
  bool all_identical = true;
  for (const auto algo : algos) {
    const auto plan = wino::nn::plan_layouts(layers, algo);
    AlgoResult r;
    r.algo = wino::nn::to_string(algo);
    r.elided_boundaries = plan.elided;
    r.boundaries = plan.boundaries;
    r.nchw_floats_elided = plan.nchw_floats_elided;

    // Warm the transform cache so neither mode pays filter transforms.
    (void)wino::nn::forward(layers, weights, input, algo,
                            wino::nn::LayoutPolicy::kAlwaysNCHW);
    (void)wino::nn::forward(layers, weights, input, algo,
                            wino::nn::LayoutPolicy::kAuto);

    // Interleave the two modes so frequency/scheduler drift hits both
    // alike, and alternate which mode runs first each rep so ordering
    // effects (allocator arenas, cache residency left by the previous
    // call) cancel in the median instead of biasing one side. The first
    // (cold) pair is measured but discarded.
    std::vector<double> nchw_secs;
    std::vector<double> elided_secs;
    Tensor4f out_nchw;
    Tensor4f out_elided;
    for (int rep = 0; rep <= reps; ++rep) {
      double nchw_s = 0;
      double elided_s = 0;
      if (rep % 2 == 0) {
        auto t0 = Clock::now();
        out_nchw = wino::nn::forward(layers, weights, input, algo,
                                     wino::nn::LayoutPolicy::kAlwaysNCHW);
        nchw_s = seconds_since(t0);
        t0 = Clock::now();
        out_elided = wino::nn::forward(layers, weights, input, algo,
                                       wino::nn::LayoutPolicy::kAuto);
        elided_s = seconds_since(t0);
      } else {
        auto t0 = Clock::now();
        out_elided = wino::nn::forward(layers, weights, input, algo,
                                       wino::nn::LayoutPolicy::kAuto);
        elided_s = seconds_since(t0);
        t0 = Clock::now();
        out_nchw = wino::nn::forward(layers, weights, input, algo,
                                     wino::nn::LayoutPolicy::kAlwaysNCHW);
        nchw_s = seconds_since(t0);
      }
      if (rep == 0) continue;  // cold pair
      nchw_secs.push_back(nchw_s);
      elided_secs.push_back(elided_s);
    }
    r.bit_identical =
        out_nchw.shape() == out_elided.shape() &&
        std::memcmp(out_nchw.flat().data(), out_elided.flat().data(),
                    out_nchw.flat().size() * sizeof(float)) == 0;
    all_identical = all_identical && r.bit_identical;

    r.nchw_img_per_s = static_cast<double>(batch) / median(nchw_secs);
    r.elided_img_per_s = static_cast<double>(batch) / median(elided_secs);
    std::vector<double> ratios;
    for (int rep = 0; rep < reps; ++rep) {
      ratios.push_back(nchw_secs[rep] / elided_secs[rep]);
      all_ratios.push_back(ratios.back());
    }
    r.speedup = median(ratios);
    results.push_back(r);
  }

  wino::common::TextTable table;
  table.header({"algo", "nchw img/s", "elided img/s", "speedup",
                "elided/boundaries", "bit-identical"});
  for (const AlgoResult& r : results) {
    table.row({r.algo, wino::common::TextTable::num(r.nchw_img_per_s),
               wino::common::TextTable::num(r.elided_img_per_s),
               wino::common::TextTable::num(r.speedup),
               std::to_string(r.elided_boundaries) + "/" +
                   std::to_string(r.boundaries),
               r.bit_identical ? "yes" : "NO"});
  }
  table.print();

  const double overall = median(all_ratios);
  const bool elided_wins = overall > 1.0;
  std::printf("\nelided vs always-NCHW speedup (median of %zu paired "
              "reps): %.3fx (%s)\n",
              all_ratios.size(), overall,
              elided_wins ? "elided wins" : "NCHW WINS — regression");
  if (!all_identical) {
    std::printf("BIT-IDENTITY VIOLATION between layout policies\n");
    return 1;
  }

  // --- BENCH_layout.json ---------------------------------------------------
  const std::string json_path =
      wino::common::bench_output_path(argc, argv, "BENCH_layout.json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not open %s for writing\n",
                json_path.c_str());
    return 0;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"layout_pipeline\",\n  \"quick\": %s,\n"
               "  \"model\": \"vgg16-d-scaled-%zu\",\n  \"batch\": %zu,\n"
               "  \"reps\": %d,\n  \"algos\": [\n",
               quick ? "true" : "false", scale, batch, reps);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AlgoResult& r = results[i];
    std::fprintf(
        json,
        "    {\"algo\": \"%s\", \"nchw_img_per_s\": %.4f,\n"
        "     \"elided_img_per_s\": %.4f, \"speedup\": %.4f,\n"
        "     \"elided_boundaries\": %zu, \"boundaries\": %zu,\n"
        "     \"nchw_floats_elided_per_img\": %llu, "
        "\"bit_identical\": %s}%s\n",
        r.algo.c_str(), r.nchw_img_per_s, r.elided_img_per_s, r.speedup,
        r.elided_boundaries, r.boundaries,
        static_cast<unsigned long long>(r.nchw_floats_elided),
        r.bit_identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"speedup_elided_vs_nchw\": %.4f,\n"
               "  \"elided_beats_nchw\": %s,\n  \"deterministic\": %s\n}\n",
               overall, elided_wins ? "true" : "false",
               all_identical ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
