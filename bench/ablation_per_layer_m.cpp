// Ablation C — per-layer algorithm selection, now executed for real.
//
// The paper deploys ONE engine (one m) for the whole network; ROADMAP
// queued per-layer mixed-m selection on top of the layout planner. This
// bench drives nn::plan_execution (the cost-model planner calibrated by
// the one-shot microbenchmark probe) over the scaled VGG16-D stack and
// measures what the planned per-layer mix buys over the best *uniform*
// algorithm — same executor, same transform cache, interleaved paired
// reps so drift cancels. The planned run must also be bit-identical to
// composing the same per-layer algorithms through the always-NCHW
// reference path (nn::forward_reference), which is the executor's
// determinism contract.
//
// Emits BENCH_plan.json next to the binary (or at --out); the
// speedup_planned_vs_uniform and bit_identical fields carry the CI gate's
// verdict (bench/baselines/BENCH_plan_baseline.json).
//
// Usage: ablation_per_layer_m [--quick] [--algo <name>]
//                             [--cal-cache <path>] [--out <path>]
//   --algo       restrict the uniform comparison to one algorithm
//                (default: im2col and Winograd m in {2, 3, 4}); parsed by
//                nn::parse_conv_algo, e.g. "w4" or "winograd-F(4x4,3x3)".
//   --cal-cache  winocal measurement cache (default: winocal.cache next
//                to the JSON artifact). When the file is warm — present
//                and keyed to this machine + build — the planner scores
//                from it and NO layer microbenchmark re-runs; when cold,
//                the probe measurements are persisted there for the next
//                run. The header line states which mode this run used.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/bench_io.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/calibration_io.hpp"
#include "nn/forward.hpp"
#include "nn/plan.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::tensor::Tensor4f;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> samples) {
  const auto mid =
      samples.begin() + static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

/// Resident-set size from /proc/self/status (Linux; -1 elsewhere): the
/// measured, machine-dependent companion to the memory plan's
/// deterministic peak_bytes — reported for context, not gated.
long long vm_rss_bytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %lld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb < 0 ? -1 : kb * 1024;
#else
  return -1;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (!wino::common::validate_bench_args(
          argc, argv, {"--quick"}, {"--algo", "--cal-cache"},
          "ablation_per_layer_m [--quick] [--algo <name>] "
          "[--cal-cache <path>] [--out <path>]")) {
    return 2;
  }
  const bool quick = wino::common::has_flag(argc, argv, "--quick");
  const std::string algo_flag =
      wino::common::flag_value(argc, argv, "--algo", "");

  const std::size_t scale = quick ? 14 : 7;
  const std::size_t hw = 224 / scale;
  const auto layers = wino::nn::vgg16_d_scaled(scale, 8);
  const auto weights = wino::nn::random_weights(layers, 7);
  const std::size_t batch = 8;
  const int reps = quick ? 7 : 9;  // plus one discarded cold rep

  std::vector<wino::nn::ConvAlgo> uniform_algos;
  if (!algo_flag.empty()) {
    try {
      uniform_algos.push_back(wino::nn::parse_conv_algo(algo_flag));
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "error: %s\n", err.what());
      return 2;
    }
  } else {
    uniform_algos = {
        wino::nn::ConvAlgo::kIm2col, wino::nn::ConvAlgo::kWinograd2,
        wino::nn::ConvAlgo::kWinograd3, wino::nn::ConvAlgo::kWinograd4};
  }

  wino::common::Rng rng(11);
  Tensor4f input(batch, 3, hw, hw);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);

  // Honor an on-disk winocal cache before planning: a warm cache (same
  // machine, same build) feeds every per-layer score, so NO layer
  // microbenchmark re-runs — previously this bench silently re-measured
  // every (layer, candidate) pair on every invocation even with the cache
  // sitting next to the artifact.
  std::string cal_cache =
      wino::common::flag_value(argc, argv, "--cal-cache", "");
  if (cal_cache.empty()) {
    const std::filesystem::path out(
        wino::common::bench_output_path(argc, argv, "winocal.cache"));
    cal_cache = out.has_parent_path()
                    ? (out.parent_path() / "winocal.cache").string()
                    : std::string("winocal.cache");
  }
  const bool cal_warm = wino::nn::load_measured_state(cal_cache);
  std::printf("calibration source: %s (%s)\n",
              cal_warm ? "warm winocal cache — no microbenchmarks re-run"
                       : "cold probe — measuring every layer candidate",
              cal_cache.c_str());

  // Plan in the default measured mode: each candidate is timed at each
  // layer's exact geometry (cached per process). The two-anchor
  // calibration below does NOT drive these decisions — it is the analytic
  // model's probe, reported for context alongside the plan.
  const wino::nn::Calibration& cal = wino::nn::measured_calibration();
  wino::nn::PlannerOptions opts;
  opts.batch = batch;
  const wino::nn::ExecutionPlan plan =
      wino::nn::plan_execution(layers, opts);
  if (!cal_warm && wino::nn::save_measured_state(cal_cache)) {
    std::printf("calibration persisted to %s for the next run\n", cal_cache.c_str());
  }

  std::printf("ablation_per_layer_m — cost-model planner vs best uniform "
              "algorithm\nscaled VGG16-D (%zux%zu input, batch %zu), %d "
              "interleaved reps, %zu threads\n",
              hw, hw, batch, reps,
              wino::runtime::ThreadPool::global().threads());
  std::printf("calibration (GFLOP/s big/small probe): spatial %.2f/%.2f, "
              "im2col %.2f/%.2f, fft %.2f/%.2f,\n  winograd m=2 %.2f/%.2f, "
              "m=3 %.2f/%.2f, m=4 %.2f/%.2f\n\n",
              cal.spatial.gflops_big, cal.spatial.gflops_small,
              cal.im2col.gflops_big, cal.im2col.gflops_small,
              cal.fft.gflops_big, cal.fft.gflops_small,
              cal.winograd2.gflops_big, cal.winograd2.gflops_small,
              cal.winograd3.gflops_big, cal.winograd3.gflops_small,
              cal.winograd4.gflops_big, cal.winograd4.gflops_small);

  // Per-layer decisions.
  wino::common::TextTable plan_table;
  plan_table.header({"layer", "planned algo", "predicted ms", "handoff"});
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != wino::nn::LayerKind::kConv) continue;
    const auto& step = plan.steps[i];
    plan_table.row(
        {layers[i].conv.name, wino::nn::to_string(step.algo),
         wino::common::TextTable::num(step.predicted_ms, 3),
         wino::tensor::to_string(step.output_kind) +
             (step.out_tile_m != 0
                  ? "(m=" + std::to_string(step.out_tile_m) + ")"
                  : "")});
  }
  plan_table.print();
  std::printf("\nplan: %s, %zu/%zu boundaries NCHW, %zu mixed-m tile "
              "handoffs\n\n",
              plan.uniform() ? "uniform" : "mixed",
              plan.nchw_boundaries, plan.boundaries,
              plan.mixed_m_handoffs);

  // One execution recipe per mode: index 0 is the planned mix, the rest
  // are the uniform plans it is raced against.
  std::vector<wino::nn::ExecutionPlan> modes{plan};
  std::vector<std::string> mode_names{"planned"};
  for (const auto algo : uniform_algos) {
    modes.push_back(wino::nn::uniform_plan(layers, algo));
    mode_names.push_back(wino::nn::to_string(algo));
  }

  // Warm every mode once (filter transforms land in the cross-call cache,
  // per-thread workspace slabs reach their high-water mark; neither side
  // pays them in the timed reps). RSS bracketing the warmup + timed reps
  // measures what the arena actually costs the process.
  const long long rss_before = vm_rss_bytes();
  for (const auto& m : modes) {
    (void)wino::nn::forward(m, weights, input);
  }

  // Interleaved reps with rotating mode order, so frequency/scheduler
  // drift and cache-residency ordering effects cancel in the medians. The
  // first (cold) rep is measured but discarded.
  std::vector<std::vector<double>> secs(modes.size());
  Tensor4f planned_out;
  for (int rep = 0; rep <= reps; ++rep) {
    std::vector<double> this_rep(modes.size(), 0.0);
    for (std::size_t off = 0; off < modes.size(); ++off) {
      const std::size_t mode =
          (off + static_cast<std::size_t>(rep)) % modes.size();
      const auto t0 = Clock::now();
      Tensor4f out = wino::nn::forward(modes[mode], weights, input);
      this_rep[mode] = seconds_since(t0);
      if (mode == 0) planned_out = std::move(out);
    }
    if (rep == 0) continue;
    for (std::size_t mode = 0; mode < modes.size(); ++mode) {
      secs[mode].push_back(this_rep[mode]);
    }
  }

  // Bit-identity: the planned run must reproduce the per-layer always-NCHW
  // composition of the same algorithms exactly.
  const Tensor4f reference =
      wino::nn::forward_reference(plan, weights, input);
  const bool bit_identical =
      reference.shape() == planned_out.shape() &&
      std::memcmp(reference.flat().data(), planned_out.flat().data(),
                  reference.flat().size() * sizeof(float)) == 0;

  const double planned_ms = median(secs[0]) * 1e3;
  wino::common::TextTable results;
  results.header({"mode", "median ms", "img/s", "planned speedup"});
  results.row({"planned", wino::common::TextTable::num(planned_ms, 2),
               wino::common::TextTable::num(
                   static_cast<double>(batch) / (planned_ms / 1e3)),
               "1.00"});
  double best_speedup = 1e30;
  std::string best_uniform = "-";
  std::vector<double> uniform_ms(modes.size(), 0.0);
  std::vector<double> uniform_speedup(modes.size(), 0.0);
  for (std::size_t mode = 1; mode < modes.size(); ++mode) {
    uniform_ms[mode] = median(secs[mode]) * 1e3;
    std::vector<double> ratios;
    for (std::size_t rep = 0; rep < secs[mode].size(); ++rep) {
      ratios.push_back(secs[mode][rep] / secs[0][rep]);
    }
    uniform_speedup[mode] = median(ratios);
    if (uniform_speedup[mode] < best_speedup) {
      best_speedup = uniform_speedup[mode];
      best_uniform = mode_names[mode];
    }
    results.row({mode_names[mode],
                 wino::common::TextTable::num(uniform_ms[mode], 2),
                 wino::common::TextTable::num(
                     static_cast<double>(batch) / (uniform_ms[mode] / 1e3)),
                 wino::common::TextTable::num(uniform_speedup[mode])});
  }
  results.print();

  // Planned per-worker memory: deterministic plan geometry (gated via the
  // uniform-W4 plan, whose peak is independent of the measured planner's
  // per-machine algorithm picks), plus the live RSS delta for context.
  const long long rss_delta =
      rss_before < 0 ? -1 : std::max(0LL, vm_rss_bytes() - rss_before);
  const std::size_t planned_peak =
      plan.memory.empty() ? 0 : plan.memory.peak_bytes(1);
  const std::size_t w4_peak =
      wino::nn::uniform_plan(layers, wino::nn::ConvAlgo::kWinograd4)
          .memory.peak_bytes(1);
  std::printf("\nplanned slab peak: %.1f KiB/image (uniform w4: %.1f KiB); "
              "measured RSS delta over warmup+reps: %.1f KiB\n",
              static_cast<double>(planned_peak) / 1024.0,
              static_cast<double>(w4_peak) / 1024.0,
              static_cast<double>(rss_delta) / 1024.0);

  std::printf("\nplanned vs best uniform (%s): %.3fx (%s); planned vs "
              "reference composition: %s\n",
              best_uniform.c_str(), best_speedup,
              best_speedup >= 1.0 ? "planned wins or ties"
                                  : "UNIFORM WINS — planner regression",
              bit_identical ? "bit-identical" : "MISMATCH");
  if (!bit_identical) return 1;

  // --- BENCH_plan.json -----------------------------------------------------
  const std::string json_path =
      wino::common::bench_output_path(argc, argv, "BENCH_plan.json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not open %s for writing\n",
                json_path.c_str());
    return 0;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"plan\",\n  \"quick\": %s,\n"
               "  \"model\": \"vgg16-d-scaled-%zu\",\n  \"batch\": %zu,\n"
               "  \"reps\": %d,\n  \"calibration_warm\": %s,\n"
               "  \"calibration_gflops_big\": {\"spatial\": %.3f, "
               "\"im2col\": %.3f, \"fft\": %.3f,\n"
               "    \"winograd2\": %.3f, \"winograd3\": %.3f, "
               "\"winograd4\": %.3f},\n"
               "  \"calibration_gflops_small\": {\"spatial\": %.3f, "
               "\"im2col\": %.3f, \"fft\": %.3f,\n"
               "    \"winograd2\": %.3f, \"winograd3\": %.3f, "
               "\"winograd4\": %.3f},\n",
               quick ? "true" : "false", scale, batch, reps,
               cal_warm ? "true" : "false",
               cal.spatial.gflops_big, cal.im2col.gflops_big,
               cal.fft.gflops_big, cal.winograd2.gflops_big,
               cal.winograd3.gflops_big, cal.winograd4.gflops_big,
               cal.spatial.gflops_small, cal.im2col.gflops_small,
               cal.fft.gflops_small, cal.winograd2.gflops_small,
               cal.winograd3.gflops_small, cal.winograd4.gflops_small);
  std::fprintf(json,
               "  \"plan\": {\"mixed\": %s, \"nchw_boundaries\": %zu,\n"
               "    \"boundaries\": %zu, \"mixed_m_handoffs\": %zu,\n"
               "    \"predicted_total_ms\": %.4f,\n    \"layers\": [\n",
               plan.uniform() ? "false" : "true", plan.nchw_boundaries,
               plan.boundaries, plan.mixed_m_handoffs,
               plan.predicted_total_ms);
  bool first_layer = true;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != wino::nn::LayerKind::kConv) continue;
    std::fprintf(json, "%s      {\"layer\": \"%s\", \"algo\": \"%s\", "
                       "\"predicted_ms\": %.4f}",
                 first_layer ? "" : ",\n", layers[i].conv.name.c_str(),
                 wino::nn::to_string(plan.steps[i].algo).c_str(),
                 plan.steps[i].predicted_ms);
    first_layer = false;
  }
  std::fprintf(json, "\n    ]},\n  \"planned_ms\": %.4f,\n"
                     "  \"planned_img_per_s\": %.4f,\n  \"uniform\": [\n",
               planned_ms, static_cast<double>(batch) / (planned_ms / 1e3));
  for (std::size_t mode = 1; mode < modes.size(); ++mode) {
    std::fprintf(json,
                 "    {\"algo\": \"%s\", \"median_ms\": %.4f, "
                 "\"img_per_s\": %.4f, \"speedup_planned_vs_this\": %.4f}%s\n",
                 mode_names[mode].c_str(), uniform_ms[mode],
                 static_cast<double>(batch) / (uniform_ms[mode] / 1e3),
                 uniform_speedup[mode],
                 mode + 1 < modes.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"memory\": {\"planned_peak_bytes_per_image\": %zu,\n"
               "    \"uniform_w4_peak_bytes_per_image\": %zu,\n"
               "    \"measured_rss_delta_bytes\": %lld},\n",
               planned_peak, w4_peak, rss_delta);
  std::fprintf(json,
               "  \"best_uniform_algo\": \"%s\",\n"
               "  \"speedup_planned_vs_uniform\": %.4f,\n"
               "  \"bit_identical\": %s\n}\n",
               best_uniform.c_str(), best_speedup,
               bit_identical ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
