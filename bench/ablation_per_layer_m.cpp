// Ablation C (extension): per-layer engine selection.
//
// The paper deploys ONE engine (one m) for the whole network. Under the
// continuous Eq 9 model that is optimal — latency scales as 1/(m^2 P(m))
// identically for every layer. The cycle-exact simulator disagrees: edge
// tiles (H % m) and partial kernel groups (K % P) make the best m
// layer-dependent. This bench quantifies what per-layer reconfiguration
// (or a multi-engine chip) would buy over the best fixed engine.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "fpga/resources.hpp"
#include "hw/winograd_engine.hpp"
#include "nn/network.hpp"

int main() {
  using wino::common::TextTable;
  const auto& net = wino::nn::vgg16_d();
  const wino::fpga::ResourceEstimator est;

  struct Engine {
    int m;
    std::size_t pes;
  };
  std::vector<Engine> engines;
  for (int m = 2; m <= 4; ++m) {
    engines.push_back(
        {m, est.max_pes(m, 3, wino::fpga::EngineStyle::kSharedDataTransform)});
  }

  std::printf("Ablation C — per-layer engine selection (cycle-exact), "
              "VGG16-D @ 200 MHz\n\n");

  TextTable t;
  t.header({"Layer", "m=2 ms", "m=3 ms", "m=4 ms", "best", "vs m=4"});
  std::vector<double> fixed_total(engines.size(), 0.0);
  double mixed_total = 0;
  for (const auto& layer : net.all_layers()) {
    std::vector<std::string> row{layer.name};
    double best = 1e30;
    int best_m = 0;
    double m4 = 0;
    for (std::size_t e = 0; e < engines.size(); ++e) {
      wino::hw::EngineConfig cfg;
      cfg.m = engines[e].m;
      cfg.r = 3;
      cfg.parallel_pes = engines[e].pes;
      const auto stats =
          wino::hw::WinogradEngine(cfg).run_layer_timing(layer);
      const double ms = stats.latency_s(200e6) * 1e3;
      fixed_total[e] += ms;
      row.push_back(TextTable::num(ms, 3));
      if (ms < best) {
        best = ms;
        best_m = engines[e].m;
      }
      if (engines[e].m == 4) m4 = ms;
    }
    mixed_total += best;
    row.push_back("m=" + std::to_string(best_m));
    row.push_back(TextTable::num(m4 / best, 2) + "x");
    t.row(std::move(row));
  }
  t.print();

  std::printf("\nTotals: fixed m=2 %.2f ms, m=3 %.2f ms, m=4 %.2f ms; "
              "per-layer mix %.2f ms\n",
              fixed_total[0], fixed_total[1], fixed_total[2], mixed_total);
  const double best_fixed =
      std::min({fixed_total[0], fixed_total[1], fixed_total[2]});
  std::printf("Per-layer selection gains %.1f%% over the best fixed "
              "engine.\n\n",
              100.0 * (best_fixed / mixed_total - 1.0));
  std::printf(
      "Finding: the m^2 throughput factor dominates the ceil losses, so\n"
      "m = 4 wins every VGG16-D layer even cycle-exactly — the paper's\n"
      "single-engine choice is validated. But the margin erodes where\n"
      "tiling is ragged: on the 14x14 Conv5 layers m=4 beats m=3 by only\n"
      "~1.10x against the 1.21x the continuous model predicts.\n");
  return 0;
}
