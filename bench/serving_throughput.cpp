// Throughput of the serving layer: one-request-at-a-time submission vs
// dynamically batched submission of the same request stream, against the
// direct batched nn::forward upper bound. The batched mode is where the
// paper's amortisation story lands in software: every request shares one
// WeightBank, so the cross-call transformed-kernel cache pays the Winograd
// filter transforms once while the dynamic batcher keeps the batch-parallel
// forward fan-out busy.
//
// Emits BENCH_serving.json next to the binary (or at --out).
//
// Usage: serving_throughput [--quick] [--out <path>]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "common/bench_io.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/forward.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/inference_server.hpp"
#include "tensor/tensor.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::tensor::Tensor4f;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Median over a sample copy; the noise-robust summary for rep times on
/// shared machines (a CPU-steal spike corrupts a few reps, not the middle
/// of the distribution).
double median(std::vector<double> samples) {
  const auto mid = samples.begin() +
                   static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

struct ModeResult {
  std::string name;
  double img_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_batch = 0;
  std::uint64_t batches = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (!wino::common::validate_bench_args(
          argc, argv, {"--quick"},
          "serving_throughput [--quick] [--out <path>]")) {
    return 2;
  }
  const bool quick = wino::common::has_flag(argc, argv, "--quick");
  const std::size_t kImages = quick ? 128 : 320;
  const int kReps = 9;  // aggregated, interleaved across modes
  constexpr std::size_t kMaxBatch = 8;

  const auto layers = wino::nn::vgg16_d_scaled(28, 8);  // 8x8 input
  const auto weights = wino::nn::random_weights(layers, 7);
  const auto algo = wino::nn::ConvAlgo::kWinograd2;

  wino::common::Rng rng(11);
  std::vector<Tensor4f> images;
  images.reserve(kImages);
  for (std::size_t i = 0; i < kImages; ++i) {
    Tensor4f img(1, 3, 8, 8);
    rng.fill_uniform(img.flat(), -1.0F, 1.0F);
    images.push_back(std::move(img));
  }

  std::printf("serving_throughput — %zu images, scaled VGG16-D, %s, "
              "aggregated over %d interleaved reps\n\n",
              kImages, wino::nn::to_string(algo).c_str(), kReps);

  // Warm-up: populate the transform cache and settle CPU frequency before
  // anything is timed (every mode then serves from a warm cache, which is
  // the steady serving state the bench is about).
  (void)wino::nn::forward(layers, weights, images[0], algo);

  // One-request-at-a-time vs batched submission of the same stream,
  // through a fresh server per rep. Appends the rep's wall time to
  // `rep_secs` and accumulates latency percentiles, batch counts and
  // histogram into `result` / `out_hist`, so reported stats aggregate all
  // kReps reps (percentiles as a mean of per-rep percentiles).
  const auto serve_rep = [&](std::size_t max_batch, ModeResult& result,
                             std::vector<double>& rep_secs,
                             std::vector<std::uint64_t>* out_hist) {
    wino::serve::ServerConfig cfg;
    cfg.max_batch = max_batch;
    cfg.max_wait_us = 2000;
    cfg.max_inflight = kImages;  // admit the whole burst
    wino::serve::InferenceServer server(cfg);
    const auto model = server.add_model("vgg", layers, weights, algo);
    const auto t0 = Clock::now();
    if (max_batch == 1) {
      // Serial client: wait for each result before the next submit.
      for (const Tensor4f& img : images) {
        (void)server.submit(model, img).get();
      }
    } else {
      std::vector<std::future<Tensor4f>> futures;
      futures.reserve(kImages);
      for (const Tensor4f& img : images) {
        futures.push_back(server.submit(model, img));
      }
      for (auto& f : futures) (void)f.get();
    }
    rep_secs.push_back(seconds_since(t0));
    const auto s = server.stats();
    result.p50_us += s.p50_latency_us / kReps;
    result.p99_us += s.p99_latency_us / kReps;
    result.batches += s.batches;
    if (out_hist != nullptr) {
      if (out_hist->size() < s.batch_size_histogram.size()) {
        out_hist->resize(s.batch_size_histogram.size(), 0);
      }
      for (std::size_t i = 0; i < s.batch_size_histogram.size(); ++i) {
        (*out_hist)[i] += s.batch_size_histogram[i];
      }
    }
    server.shutdown();
  };

  std::vector<ModeResult> modes;

  // --- Upper bound: direct forward on pre-assembled full batches ----------
  {
    ModeResult direct;
    direct.name = "direct-batch";
    direct.mean_batch = static_cast<double>(kMaxBatch);
    direct.batches =
        (kImages + kMaxBatch - 1) / kMaxBatch * kReps;  // all reps, like
                                                        // the serve modes
    std::vector<double> rep_secs;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < kImages; i += kMaxBatch) {
        std::vector<const Tensor4f*> chunk;
        for (std::size_t j = i; j < std::min(i + kMaxBatch, kImages); ++j) {
          chunk.push_back(&images[j]);
        }
        const Tensor4f in = wino::nn::stack_images(chunk);
        (void)wino::nn::forward(layers, weights, in, algo);
      }
      rep_secs.push_back(seconds_since(t0));
    }
    direct.img_per_s = static_cast<double>(kImages) / median(rep_secs);
    modes.push_back(direct);
  }

  // Serial and batched reps interleave so CPU-frequency / scheduler drift
  // over the bench's lifetime hits both modes alike, and the summary is
  // the median rep (for throughput) and the median of paired per-rep
  // ratios (for the verdict): on a shared machine a multi-second steal
  // spike corrupts a few adjacent reps, which means/best-ofs absorb but a
  // paired median shrugs off.
  ModeResult serial_result;
  serial_result.name = "serve-serial";
  ModeResult batched_result;
  batched_result.name = "serve-batched";
  std::vector<double> serial_secs;
  std::vector<double> batched_secs;
  std::vector<std::uint64_t> batched_hist;
  wino::nn::clear_transform_cache();  // count the serving modes' hits alone
  for (int rep = 0; rep < kReps; ++rep) {
    serve_rep(1, serial_result, serial_secs, nullptr);
    serve_rep(kMaxBatch, batched_result, batched_secs, &batched_hist);
  }
  const double total_images = static_cast<double>(kImages) * kReps;
  serial_result.img_per_s =
      static_cast<double>(kImages) / median(serial_secs);
  serial_result.mean_batch =
      total_images / static_cast<double>(serial_result.batches);
  batched_result.img_per_s =
      static_cast<double>(kImages) / median(batched_secs);
  batched_result.mean_batch =
      total_images / static_cast<double>(batched_result.batches);
  modes.push_back(serial_result);
  modes.push_back(batched_result);
  std::vector<double> pair_ratios;
  for (int rep = 0; rep < kReps; ++rep) {
    pair_ratios.push_back(serial_secs[rep] / batched_secs[rep]);
  }
  const auto cache = wino::nn::transform_cache_stats();

  wino::common::TextTable table;
  table.header({"mode", "img/s", "p50 us", "p99 us", "mean batch",
                "batches"});
  for (const ModeResult& m : modes) {
    table.row({m.name, wino::common::TextTable::num(m.img_per_s),
               wino::common::TextTable::num(m.p50_us),
               wino::common::TextTable::num(m.p99_us),
               wino::common::TextTable::num(m.mean_batch),
               std::to_string(m.batches)});
  }
  table.print();

  const double speedup = median(pair_ratios);
  const bool batched_wins = speedup > 1.0;
  std::printf("\nbatched vs one-at-a-time speedup (median of %d paired "
              "reps): %.2fx (%s)\n",
              kReps, speedup,
              batched_wins ? "batched wins" : "SERIAL WINS — regression");
  std::printf("transform cache across both serving modes: %llu hits / "
              "%llu misses / %llu entries\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.entries));

  std::printf("batch-size histogram (batched mode, all reps):");
  for (std::size_t s = 1; s < batched_hist.size(); ++s) {
    if (batched_hist[s] != 0) {
      std::printf("  %zu:%llu", s,
                  static_cast<unsigned long long>(batched_hist[s]));
    }
  }
  std::printf("\n");

  // --- BENCH_serving.json --------------------------------------------------
  const std::string json_path =
      wino::common::bench_output_path(argc, argv, "BENCH_serving.json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not open %s for writing\n",
                json_path.c_str());
    return 0;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"serving_throughput\",\n"
               "  \"quick\": %s,\n  \"model\": \"vgg16-d-scaled-28\",\n"
               "  \"algo\": \"%s\",\n  \"images\": %zu,\n"
               "  \"max_batch\": %zu,\n  \"modes\": [\n",
               quick ? "true" : "false",
               wino::nn::to_string(algo).c_str(), kImages, kMaxBatch);
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"img_per_s\": %.4f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"mean_batch\": %.3f, \"batches\": %llu}%s\n",
                 m.name.c_str(), m.img_per_s, m.p50_us, m.p99_us,
                 m.mean_batch, static_cast<unsigned long long>(m.batches),
                 i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"batch_size_histogram\": [");
  for (std::size_t s = 0; s < batched_hist.size(); ++s) {
    std::fprintf(json, "%s%llu", s == 0 ? "" : ", ",
                 static_cast<unsigned long long>(batched_hist[s]));
  }
  std::fprintf(json,
               "],\n  \"speedup_batched_vs_serial\": %.4f,\n"
               "  \"batched_beats_serial\": %s,\n"
               "  \"transform_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"entries\": %llu}\n}\n",
               speedup, batched_wins ? "true" : "false",
               static_cast<unsigned long long>(cache.hits),
               static_cast<unsigned long long>(cache.misses),
               static_cast<unsigned long long>(cache.entries));
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  // Deliberately not a hard gate: JSON's batched_beats_serial carries the
  // verdict, and CI treats this bench as smoke (a sub-1% scheduling fluke
  // on a loaded runner must not cascade into a red build).
  return 0;
}
