#!/usr/bin/env python3
"""CI gate: fail when the 512^3 GEMM throughput in a BENCH_gemm.json falls
more than the allowed fraction below the committed per-kernel baseline.

Usage: check_gemm_regression.py <BENCH_gemm.json> <baseline.json>

The baseline file (bench/baselines/BENCH_gemm_baseline.json) pins one
number per compiled micro-kernel (avx2/neon/scalar) for the shape named in
its "shape" field; the gate compares baseline["metric"] of that shape and
fails below baseline * (1 - allowed_regression). Unknown kernels skip the
gate with a warning rather than failing, so exotic build configs don't
break CI.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    kernel = bench.get("kernel", "unknown")
    shape_name = baseline["shape"]
    metric = baseline["metric"]
    shape = next(
        (s for s in bench.get("shapes", []) if s.get("name") == shape_name),
        None,
    )
    if shape is None:
        print(f"FAIL: shape '{shape_name}' missing from {sys.argv[1]} — "
              "the gated reference point was dropped from the bench")
        return 1

    base = baseline["kernels"].get(kernel)
    if base is None:
        print(f"WARNING: no committed baseline for kernel '{kernel}'; "
              "skipping the regression gate")
        return 0

    floor = base * (1.0 - baseline["allowed_regression"])
    got = shape[metric]
    verdict = "OK" if got >= floor else "FAIL"
    print(f"{verdict}: {shape_name} {metric} = {got:.2f} GFLOP/s on "
          f"'{kernel}' (baseline {base:.2f}, floor {floor:.2f})")
    return 0 if got >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
