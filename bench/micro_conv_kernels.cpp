// google-benchmark microbenchmarks of the software convolution kernels:
// spatial vs im2col+GEMM vs FFT vs Winograd F(2..4), on a VGG16-D-shaped
// (scaled) layer. This is the software-side analogue of the paper's
// arithmetic-complexity argument: Winograd's advantage should track the
// multiplication-count reduction of Fig 1, and FFT should only pay off for
// large kernels (the paper's Section II-C argument against FFT for 3x3).
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "conv/fft.hpp"
#include "conv/im2col.hpp"
#include "conv/spatial.hpp"
#include "tensor/tensor.hpp"
#include "winograd/kernels.hpp"

namespace {

using wino::tensor::Tensor4f;

struct LayerData {
  Tensor4f input;
  Tensor4f kernels;
};

LayerData make_layer(std::size_t hw, std::size_t c, std::size_t k) {
  wino::common::Rng rng(7);
  LayerData d{Tensor4f(1, c, hw, hw), Tensor4f(k, c, 3, 3)};
  rng.fill_uniform(d.input.flat());
  rng.fill_uniform(d.kernels.flat());
  return d;
}

// A conv3_x-shaped tile of work, scaled to keep iterations sub-second:
// 28x28, 32 channels, 32 kernels.
constexpr std::size_t kHw = 28;
constexpr std::size_t kC = 32;
constexpr std::size_t kK = 32;

void BM_SpatialConv(benchmark::State& state) {
  const LayerData d = make_layer(kHw, kC, kK);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wino::conv::conv2d_spatial(d.input, d.kernels, {.pad = 1}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kHw * kHw * kC * kK * 9);
}
BENCHMARK(BM_SpatialConv)->Unit(benchmark::kMillisecond);

void BM_Im2colConv(benchmark::State& state) {
  const LayerData d = make_layer(kHw, kC, kK);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wino::conv::conv2d_im2col(d.input, d.kernels, {.pad = 1}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kHw * kHw * kC * kK * 9);
}
BENCHMARK(BM_Im2colConv)->Unit(benchmark::kMillisecond);

void BM_FftConv(benchmark::State& state) {
  const LayerData d = make_layer(kHw, kC, kK);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wino::conv::conv2d_fft(d.input, d.kernels, {.pad = 1}));
  }
}
BENCHMARK(BM_FftConv)->Unit(benchmark::kMillisecond);

void BM_WinogradConv(benchmark::State& state) {
  const LayerData d = make_layer(kHw, kC, kK);
  const int m = static_cast<int>(state.range(0));
  const wino::winograd::TileTransformer xf(wino::winograd::transforms(m, 3));
  wino::winograd::WinogradConvOptions opt;
  opt.pad = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wino::winograd::conv2d_winograd(d.input, d.kernels, xf, opt));
  }
  state.SetLabel("F(" + std::to_string(m) + "x" + std::to_string(m) +
                 ",3x3)");
}
BENCHMARK(BM_WinogradConv)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The FFT-vs-kernel-size crossover (paper Section II-C): a single-channel
// convolution at growing kernel size r on a 64x64 image.
void BM_SpatialLargeKernel(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  wino::common::Rng rng(9);
  Tensor4f input(1, 4, 64, 64);
  Tensor4f kernels(4, 4, r, r);
  rng.fill_uniform(input.flat());
  rng.fill_uniform(kernels.flat());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wino::conv::conv2d_spatial(input, kernels, {.pad = 0}));
  }
}
BENCHMARK(BM_SpatialLargeKernel)->Arg(3)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMillisecond);

void BM_FftLargeKernel(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  wino::common::Rng rng(9);
  Tensor4f input(1, 4, 64, 64);
  Tensor4f kernels(4, 4, r, r);
  rng.fill_uniform(input.flat());
  rng.fill_uniform(kernels.flat());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wino::conv::conv2d_fft(input, kernels, {.pad = 0}));
  }
}
BENCHMARK(BM_FftLargeKernel)->Arg(3)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMillisecond);

// Transform-stage cost per tile: the hardware's critical path components.
void BM_TileTransforms(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const wino::winograd::TileTransformer xf(wino::winograd::transforms(m, 3));
  const auto n = static_cast<std::size_t>(xf.tile());
  std::vector<float> d(n * n, 0.5F);
  std::vector<float> u(n * n);
  for (auto _ : state) {
    xf.transform_data(d, u);
    benchmark::DoNotOptimize(u.data());
  }
  state.SetLabel("data transform F(" + std::to_string(m) + ",3)");
}
BENCHMARK(BM_TileTransforms)->DenseRange(2, 7)->Unit(benchmark::kNanosecond);

}  // namespace

BENCHMARK_MAIN();
