// Reproduces Table I: resource utilisation of the 19-PE F(4x4, 3x3)
// engines on the Virtex-7 — the proposed shared-data-transform design
// versus the reference style of [3] — plus the per-PE marginal costs the
// paper quotes in Section V-A.
#include <cstdio>

#include "common/table.hpp"
#include "fpga/device.hpp"
#include "fpga/resources.hpp"

int main() {
  using wino::common::TextTable;
  using wino::fpga::EngineStyle;

  const auto& device = wino::fpga::virtex7_485t();
  const wino::fpga::ResourceEstimator est(device);

  std::printf("Table I — resource utilisation, 19 PEs, F(4x4, 3x3), fp32\n");
  std::printf("(model calibrated on this table's two design rows; all\n");
  std::printf("other configurations below are predictions)\n\n");

  const auto ours = est.estimate(4, 3, 19, EngineStyle::kSharedDataTransform);
  const auto ref = est.estimate(4, 3, 19, EngineStyle::kPerPeDataTransform);

  TextTable t;
  t.header({"Design", "Registers", "LUTs", "DSPs", "Multipliers"});
  t.row({"Design based on [3]", std::to_string(ref.registers),
         std::to_string(ref.luts), std::to_string(ref.dsps),
         std::to_string(ref.fp32_multipliers)});
  t.row({"Our proposed design", std::to_string(ours.registers),
         std::to_string(ours.luts), std::to_string(ours.dsps),
         std::to_string(ours.fp32_multipliers)});
  t.row({"Available resources", std::to_string(device.registers),
         std::to_string(device.luts), std::to_string(device.dsps),
         std::to_string(device.fp32_multipliers())});
  t.print();

  const double saving =
      100.0 * (1.0 - static_cast<double>(ours.luts) /
                         static_cast<double>(ref.luts));
  std::printf("\nLUT saving: %.1f%% (paper: ~53.6%%)\n", saving);
  std::printf("Marginal LUTs per PE: ours %zu (paper ~5312), ref %zu "
              "(paper ~12224)\n\n",
              ours.luts_per_pe, ref.luts_per_pe);

  std::printf("Model predictions for the other Table II design points:\n\n");
  TextTable t2;
  t2.header({"Design", "PEs", "Registers", "LUTs", "DSPs", "Multipliers"});
  struct Cfg {
    const char* name;
    int m;
    std::size_t pes;
    EngineStyle style;
  };
  const Cfg cfgs[] = {
      {"ref [3]  F(2x2,3x3)", 2, 16, EngineStyle::kPerPeDataTransform},
      {"ref [3]a F(2x2,3x3)", 2, 43, EngineStyle::kPerPeDataTransform},
      {"ours     F(2x2,3x3)", 2, 43, EngineStyle::kSharedDataTransform},
      {"ours     F(3x3,3x3)", 3, 28, EngineStyle::kSharedDataTransform},
  };
  for (const auto& c : cfgs) {
    const auto r = est.estimate(c.m, 3, c.pes, c.style);
    t2.row({c.name, std::to_string(c.pes), std::to_string(r.registers),
            std::to_string(r.luts), std::to_string(r.dsps),
            std::to_string(r.fp32_multipliers)});
  }
  t2.print();
  return 0;
}
