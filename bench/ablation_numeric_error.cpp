// Ablation B: fp32 numerical error of F(m x m, 3 x 3) versus m.
//
// The paper picks m <= 4 on complexity grounds (Fig 3); this ablation
// shows the numerics agree: transform constants grow with m (points 2, 4,
// 1/2 ... raised to growing powers), so error grows and higher-order
// engines would also pay in precision. Includes the quantised-datapath
// wordlength sweep (paper Section IV: "single precision floats ... for
// simplicity"; reference [12] uses 16-bit).
#include <cstdio>

#include "common/random.hpp"
#include "common/table.hpp"
#include "conv/spatial.hpp"
#include "quant/fixed_point.hpp"
#include "tensor/tensor.hpp"
#include "winograd/kernels.hpp"

int main() {
  using wino::common::TextTable;
  using wino::tensor::Tensor4f;

  wino::common::Rng rng(2024);
  Tensor4f input(1, 8, 24, 24);
  Tensor4f kernels(4, 8, 3, 3);
  rng.fill_uniform(input.flat());
  rng.fill_uniform(kernels.flat(), -0.5F, 0.5F);
  const Tensor4f ref =
      wino::conv::conv2d_spatial(input, kernels, {.pad = 1, .stride = 1});
  const float scale = wino::tensor::max_abs(ref);

  std::printf("Ablation B — fp32 Winograd error vs output tile size m\n");
  std::printf("(24x24x8 -> 4 kernels, uniform random data, relative to "
              "max |ref| = %.3f)\n\n", static_cast<double>(scale));

  TextTable t;
  t.header({"m", "max |err|", "rel err", "mults/output vs spatial"});
  for (int m = 2; m <= 7; ++m) {
    wino::winograd::WinogradConvOptions opt;
    opt.pad = 1;
    const Tensor4f got =
        wino::winograd::conv2d_winograd(input, kernels, m, opt);
    const float err = wino::tensor::max_abs_diff(got, ref);
    const double per_out = static_cast<double>((m + 2) * (m + 2)) /
                           static_cast<double>(m * m) / 9.0;
    t.row({std::to_string(m),
           TextTable::num(static_cast<double>(err), 7),
           TextTable::num(static_cast<double>(err / scale), 7),
           TextTable::num(per_out, 3)});
  }
  t.print();

  std::printf("\nFixed-point datapath (extension; Q(total, total-6)):\n\n");
  TextTable t2;
  t2.header({"bits", "m=2 rel err", "m=4 rel err"});
  for (const int bits : {10, 12, 14, 16, 20, 24}) {
    const wino::quant::FixedPointFormat fmt{bits, bits - 6};
    std::vector<std::string> row{std::to_string(bits)};
    for (const int m : {2, 4}) {
      const Tensor4f got = wino::quant::conv2d_winograd_quantized(
          input, kernels, m, fmt, 1);
      const auto e = wino::quant::compare(got, ref);
      row.push_back(TextTable::num(static_cast<double>(e.relative_max()), 6));
    }
    t2.row(std::move(row));
  }
  t2.print();
  std::printf("\nReading: error grows with m at fixed wordlength — the\n"
              "higher-order engines the DSE rejects on complexity grounds\n"
              "would also need wider datapaths.\n");
  return 0;
}
