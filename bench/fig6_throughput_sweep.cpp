// Reproduces Fig 6: steady-state throughput (GOPS) versus output tile size
// m for multiplier budgets of 256 / 512 / 1024 at 200 MHz (Eqs 8 and 10).
//
// Convention note (DESIGN.md): the paper's published bars floor P for the
// spatial entry and use the continuous relaxation of Eq 8 for the Winograd
// entries, scaling the 512/1024 columns linearly from the 256 column; the
// model reproduces this exactly.
#include <cstdio>

#include "common/table.hpp"
#include "dse/performance.hpp"

int main() {
  using wino::common::TextTable;

  std::printf("Fig 6 — throughput (GOPS) vs m and multiplier budget,\n");
  std::printf("200 MHz, r = 3 (paper Eqs 8-10)\n\n");

  const double paper[7][3] = {
      {100.80, 201.60, 403.20},  {230.40, 460.80, 921.59},
      {331.78, 663.50, 1327.11}, {409.60, 819.19, 1638.38},
      {470.21, 940.41, 1880.82}, {518.40, 1036.80, 2073.60},
      {557.56, 1115.11, 2230.23}};

  TextTable t;
  t.header({"Method", "256 mults", "paper", "512 mults", "paper",
            "1024 mults", "paper"});
  for (int m = 1; m <= 7; ++m) {
    std::vector<std::string> row;
    row.push_back(m == 1 ? "Spatial Conv"
                         : "F(" + std::to_string(m) + "x" +
                               std::to_string(m) + ",3x3)");
    int col = 0;
    for (const std::size_t mults : {256u, 512u, 1024u}) {
      row.push_back(TextTable::num(
          wino::dse::fig6_throughput_ops(m, 3, mults, 200e6) / 1e9, 2));
      row.push_back(TextTable::num(paper[m - 1][col++], 2));
    }
    t.row(std::move(row));
  }
  t.print();

  std::printf(
      "\nAlso shown in the paper's discussion: throughput is linear in the\n"
      "multiplier budget and quadratic in m at fixed budget.\n");
  return 0;
}
