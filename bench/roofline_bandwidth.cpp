// Roofline / bandwidth study: quantifies the paper's Section V-B
// assumption that "enough memory bandwidth is available to refill both
// buffers without having to wait" — per layer and per design, what is
// enough, and what happens to latency when it is not (cycle simulator).
#include <cstdio>

#include "common/table.hpp"
#include "dse/roofline.hpp"
#include "hw/winograd_engine.hpp"
#include "nn/network.hpp"

int main() {
  using wino::common::TextTable;
  const auto& net = wino::nn::vgg16_d();

  std::printf("Roofline — required DRAM bandwidth (GB/s) per VGG16-D layer\n");
  std::printf("for the three proposed designs at 200 MHz\n\n");

  struct Cfg {
    int m;
    std::size_t pes;
  };
  const Cfg cfgs[] = {{2, 43}, {3, 28}, {4, 19}};

  TextTable t;
  t.header({"Layer", "AI m=2 (op/B)", "BW m=2", "BW m=3", "BW m=4"});
  for (const auto& l : net.all_layers()) {
    std::vector<std::string> row{l.name};
    row.push_back(
        TextTable::num(wino::dse::arithmetic_intensity(l, 2), 1));
    for (const auto& c : cfgs) {
      row.push_back(TextTable::num(
          wino::dse::required_bandwidth(l, c.m, 3, c.pes, 200e6) / 1e9, 2));
    }
    t.row(std::move(row));
  }
  t.print();

  std::printf("\nLatency vs available bandwidth, ours m=4 (cycle sim):\n\n");
  TextTable t2;
  t2.header({"DRAM GB/s", "latency ms", "stall cycles", "vs ample"});
  wino::hw::EngineConfig cfg;
  cfg.m = 4;
  cfg.r = 3;
  cfg.parallel_pes = 19;
  cfg.dram_bytes_per_cycle = 1e18;
  const auto ample =
      wino::hw::WinogradEngine(cfg).run_workload_timing(net);
  for (const double gbs : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    cfg.dram_bytes_per_cycle = gbs * 1e9 / 200e6;
    const auto s = wino::hw::WinogradEngine(cfg).run_workload_timing(net);
    t2.row({TextTable::num(gbs, 0), TextTable::num(s.latency_s(200e6) * 1e3, 2),
            std::to_string(s.stall_cycles),
            TextTable::num(static_cast<double>(s.total_cycles) /
                               static_cast<double>(ample.total_cycles),
                           2) +
                "x"});
  }
  t2.print();
  std::printf("\nReading: the Section V-B assumption holds once DRAM\n"
              "bandwidth covers the worst layer's requirement; below that\n"
              "the engine is memory-bound and Eq 9 underestimates latency.\n");
  return 0;
}
