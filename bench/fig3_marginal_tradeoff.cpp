// Reproduces Fig 3: the marginal trade-off driving the paper's DSE
// conclusion — the percentage decrease in multiplication complexity and
// percentage increase in transform arithmetic complexity when stepping the
// output tile size m up by one.
//
// The paper's conclusion (Section III-C): the step to m = 4 is the last
// favourable one; from m = 5 the transform overhead outweighs the
// multiplier savings.
#include <cstdio>

#include "common/table.hpp"
#include "dse/complexity.hpp"
#include "nn/network.hpp"

int main() {
  using wino::common::TextTable;
  using wino::dse::TransformCosts;
  const auto& net = wino::nn::vgg16_d();

  std::printf(
      "Fig 3 — marginal %% decrease in Om vs %% increase in Ot, VGG16-D\n\n");

  // Paper bar values (m = 2..7). The first decrease bar is printed as
  // 56.25 in the paper; the successive-ratio definition that generates
  // every other bar gives 1 - 4/9 = 55.56 for the spatial -> F(2,3) step
  // (documented delta, see EXPERIMENTS.md).
  const double paper_dec[] = {56.25, 30.56, 19.00, 12.89, 9.30, 7.02};
  const double paper_inc[] = {0.00, 25.59, 5.58, 31.31, 11.68, 34.27};

  TextTable t;
  t.header({"Step", "Om dec %", "paper", "Ot inc %", "paper", "verdict"});
  double prev_om = static_cast<double>(wino::dse::mult_complexity(net, 1));
  double prev_ot = 0;
  for (int m = 2; m <= 7; ++m) {
    const double om = static_cast<double>(wino::dse::mult_complexity(net, m));
    const auto costs = TransformCosts::from_generated(m, 3);
    const double ot = wino::dse::transform_complexity(net, m, costs).total();
    const double dec = 100.0 * (1.0 - om / prev_om);
    const double inc =
        prev_ot == 0 ? 0.0 : 100.0 * (ot / prev_ot - 1.0);
    t.row({(m == 2 ? std::string("spatial->F(2)")
                   : "F(" + std::to_string(m - 1) + ")->F(" +
                         std::to_string(m) + ")"),
           TextTable::num(dec, 2), TextTable::num(paper_dec[m - 2], 2),
           TextTable::num(inc, 2), TextTable::num(paper_inc[m - 2], 2),
           dec > inc ? "favourable" : "unfavourable"});
    prev_om = om;
    prev_ot = ot;
  }
  t.print();

  std::printf(
      "\nShape check: in both the paper and the model the marginal gain\n"
      "last exceeds the marginal cost at the step to m = 4; every step to\n"
      "m >= 5 is unfavourable, which is why the paper implements m = 2..4.\n");
  return 0;
}
