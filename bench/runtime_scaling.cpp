// Single- vs multi-thread throughput of the runtime-threaded hot paths:
// nn::forward on a VGG-style conv stack (batch-parallel), one VGG conv
// layer per backend (channel-parallel), and the cycle-level hw engine
// (tile-parallel). Also asserts the determinism contract: every thread
// count must produce bit-identical outputs.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/random.hpp"
#include "common/table.hpp"
#include "hw/engine_config.hpp"
#include "hw/winograd_engine.hpp"
#include "nn/forward.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::tensor::Tensor4f;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Time one call of `fn`, which returns the output tensor for verification.
template <typename Fn>
std::pair<double, Tensor4f> timed(Fn&& fn) {
  const auto t0 = Clock::now();
  Tensor4f out = fn();
  return {seconds_since(t0), std::move(out)};
}

}  // namespace

int main() {
  const std::vector<std::size_t> thread_counts = {1, 2, 4};

  // --- Batch-parallel forward on a scaled VGG16-D stack ------------------
  const auto layers = wino::nn::vgg16_d_scaled(7, 8);  // 32x32 input
  const auto weights = wino::nn::random_weights(layers, 7);
  constexpr std::size_t kBatch = 8;
  wino::common::Rng rng(11);
  Tensor4f batch(kBatch, 3, 32, 32);
  rng.fill_uniform(batch.flat(), -1.0F, 1.0F);

  std::printf("runtime_scaling — threads vs throughput (1 CPU core caps\n");
  std::printf("real speedup at the machine's core count)\n\n");

  wino::common::TextTable fwd;
  fwd.header({"Threads", "forward img/s", "speedup", "max|diff| vs 1T"});
  double fwd_base = 0;
  Tensor4f fwd_ref;
  double fwd_speedup_at4 = 0;
  for (const std::size_t t : thread_counts) {
    wino::runtime::ThreadPool::set_global_threads(t);
    auto [sec, out] = timed([&] {
      return wino::nn::forward(layers, weights, batch,
                               wino::nn::ConvAlgo::kIm2col);
    });
    if (t == 1) {
      fwd_base = sec;
      fwd_ref = out;
    }
    const double diff = wino::tensor::max_abs_diff(fwd_ref, out);
    if (t == 4) fwd_speedup_at4 = fwd_base / sec;
    fwd.row({std::to_string(t),
             wino::common::TextTable::num(static_cast<double>(kBatch) / sec),
             wino::common::TextTable::num(fwd_base / sec),
             wino::common::TextTable::num(diff, 6)});
    if (diff != 0.0F) {
      std::printf("DETERMINISM VIOLATION at %zu threads\n", t);
      return 1;
    }
  }
  fwd.print();
  std::printf("\n");

  // --- Tile-parallel cycle-level engine on one VGG-ish layer -------------
  Tensor4f input(1, 32, 56, 56);
  Tensor4f kernels(32, 32, 3, 3);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  rng.fill_normal(kernels.flat(), 0.0F, 0.1F);
  wino::hw::EngineConfig cfg;
  cfg.m = 4;
  cfg.r = 3;
  cfg.parallel_pes = 8;
  const wino::hw::WinogradEngine engine(cfg);

  wino::common::TextTable hw;
  hw.header({"Threads", "engine runs/s", "speedup", "max|diff| vs 1T"});
  double hw_base = 0;
  Tensor4f hw_ref;
  for (const std::size_t t : thread_counts) {
    wino::runtime::ThreadPool::set_global_threads(t);
    auto [sec, out] = timed([&] {
      return engine.run_layer(input, kernels, 1).output;
    });
    if (t == 1) {
      hw_base = sec;
      hw_ref = out;
    }
    const double diff = wino::tensor::max_abs_diff(hw_ref, out);
    hw.row({std::to_string(t), wino::common::TextTable::num(1.0 / sec),
            wino::common::TextTable::num(hw_base / sec),
            wino::common::TextTable::num(diff, 6)});
    if (diff != 0.0F) {
      std::printf("DETERMINISM VIOLATION at %zu threads\n", t);
      return 1;
    }
  }
  hw.print();
  std::printf("\n");

  std::printf("forward speedup at 4 threads: %.2fx\n", fwd_speedup_at4);
  return 0;
}
