// Single- vs multi-thread throughput of the runtime-threaded hot paths:
// nn::forward on a VGG-style conv stack (batch-parallel), one VGG conv
// layer per backend (channel-parallel), and the cycle-level hw engine
// (tile-parallel). Also asserts the determinism contract: every thread
// count must produce bit-identical outputs.
//
// Usage: runtime_scaling [--out <path>]
//   Emits BENCH_runtime_scaling.json next to the binary (or at --out).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_io.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "hw/engine_config.hpp"
#include "hw/winograd_engine.hpp"
#include "nn/forward.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wino::tensor::Tensor4f;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Time one call of `fn`, which returns the output tensor for verification.
template <typename Fn>
std::pair<double, Tensor4f> timed(Fn&& fn) {
  const auto t0 = Clock::now();
  Tensor4f out = fn();
  return {seconds_since(t0), std::move(out)};
}

}  // namespace

int main(int argc, char** argv) {
  if (!wino::common::validate_bench_args(
          argc, argv, {}, "runtime_scaling [--out <path>]")) {
    return 2;
  }
  const std::vector<std::size_t> thread_counts = {1, 2, 4};
  struct Point {
    std::size_t threads;
    double rate;
    double speedup;
  };
  std::vector<Point> fwd_points;
  std::vector<Point> hw_points;

  // --- Batch-parallel forward on a scaled VGG16-D stack ------------------
  const auto layers = wino::nn::vgg16_d_scaled(7, 8);  // 32x32 input
  const auto weights = wino::nn::random_weights(layers, 7);
  constexpr std::size_t kBatch = 8;
  wino::common::Rng rng(11);
  Tensor4f batch(kBatch, 3, 32, 32);
  rng.fill_uniform(batch.flat(), -1.0F, 1.0F);

  std::printf("runtime_scaling — threads vs throughput (1 CPU core caps\n");
  std::printf("real speedup at the machine's core count)\n\n");

  wino::common::TextTable fwd;
  fwd.header({"Threads", "forward img/s", "speedup", "max|diff| vs 1T"});
  double fwd_base = 0;
  Tensor4f fwd_ref;
  double fwd_speedup_at4 = 0;
  for (const std::size_t t : thread_counts) {
    wino::runtime::ThreadPool::set_global_threads(t);
    auto [sec, out] = timed([&] {
      return wino::nn::forward(layers, weights, batch,
                               wino::nn::ConvAlgo::kIm2col);
    });
    if (t == 1) {
      fwd_base = sec;
      fwd_ref = out;
    }
    const double diff = wino::tensor::max_abs_diff(fwd_ref, out);
    if (t == 4) fwd_speedup_at4 = fwd_base / sec;
    fwd_points.push_back(
        {t, static_cast<double>(kBatch) / sec, fwd_base / sec});
    fwd.row({std::to_string(t),
             wino::common::TextTable::num(static_cast<double>(kBatch) / sec),
             wino::common::TextTable::num(fwd_base / sec),
             wino::common::TextTable::num(diff, 6)});
    if (diff != 0.0F) {
      std::printf("DETERMINISM VIOLATION at %zu threads\n", t);
      return 1;
    }
  }
  fwd.print();
  std::printf("\n");

  // --- Tile-parallel cycle-level engine on one VGG-ish layer -------------
  Tensor4f input(1, 32, 56, 56);
  Tensor4f kernels(32, 32, 3, 3);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  rng.fill_normal(kernels.flat(), 0.0F, 0.1F);
  wino::hw::EngineConfig cfg;
  cfg.m = 4;
  cfg.r = 3;
  cfg.parallel_pes = 8;
  const wino::hw::WinogradEngine engine(cfg);

  wino::common::TextTable hw;
  hw.header({"Threads", "engine runs/s", "speedup", "max|diff| vs 1T"});
  double hw_base = 0;
  Tensor4f hw_ref;
  for (const std::size_t t : thread_counts) {
    wino::runtime::ThreadPool::set_global_threads(t);
    auto [sec, out] = timed([&] {
      return engine.run_layer(input, kernels, 1).output;
    });
    if (t == 1) {
      hw_base = sec;
      hw_ref = out;
    }
    const double diff = wino::tensor::max_abs_diff(hw_ref, out);
    hw_points.push_back({t, 1.0 / sec, hw_base / sec});
    hw.row({std::to_string(t), wino::common::TextTable::num(1.0 / sec),
            wino::common::TextTable::num(hw_base / sec),
            wino::common::TextTable::num(diff, 6)});
    if (diff != 0.0F) {
      std::printf("DETERMINISM VIOLATION at %zu threads\n", t);
      return 1;
    }
  }
  hw.print();
  std::printf("\n");

  std::printf("forward speedup at 4 threads: %.2fx\n", fwd_speedup_at4);

  // --- BENCH_runtime_scaling.json ----------------------------------------
  const std::string json_path = wino::common::bench_output_path(
      argc, argv, "BENCH_runtime_scaling.json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not open %s for writing\n",
                json_path.c_str());
    return 0;
  }
  const auto emit_points = [json](const char* name,
                                  const std::vector<Point>& points,
                                  bool trailing_comma) {
    std::fprintf(json, "  \"%s\": [\n", name);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(json,
                   "    {\"threads\": %zu, \"rate_per_s\": %.4f, "
                   "\"speedup\": %.4f}%s\n",
                   points[i].threads, points[i].rate, points[i].speedup,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ]%s\n", trailing_comma ? "," : "");
  };
  std::fprintf(json, "{\n  \"bench\": \"runtime_scaling\",\n");
  emit_points("forward_img_per_s", fwd_points, true);
  emit_points("hw_engine_runs_per_s", hw_points, true);
  std::fprintf(json, "  \"deterministic\": true\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
