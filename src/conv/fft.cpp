#include "conv/fft.hpp"

#include <numbers>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace wino::conv {

using tensor::Tensor4f;
using Cplx = std::complex<double>;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2(std::span<Cplx> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_pow2: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Cplx u = data[i + j];
        const Cplx v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Cplx& x : data) x *= scale;
  }
}

void fft2d(std::span<Cplx> grid, std::size_t size, bool inverse) {
  if (grid.size() != size * size) {
    throw std::invalid_argument("fft2d: grid size mismatch");
  }
  // Rows in place.
  for (std::size_t r = 0; r < size; ++r) {
    fft_pow2(grid.subspan(r * size, size), inverse);
  }
  // Columns via gather/scatter.
  std::vector<Cplx> col(size);
  for (std::size_t c = 0; c < size; ++c) {
    for (std::size_t r = 0; r < size; ++r) col[r] = grid[r * size + c];
    fft_pow2(col, inverse);
    for (std::size_t r = 0; r < size; ++r) grid[r * size + c] = col[r];
  }
}

Tensor4f conv2d_fft(const Tensor4f& input, const Tensor4f& kernels,
                    const SpatialConvOptions& opt) {
  const auto& is = input.shape();
  const auto& ks = kernels.shape();
  if (ks.c != is.c) {
    throw std::invalid_argument("conv2d_fft: channel mismatch");
  }
  if (ks.h != ks.w) throw std::invalid_argument("conv2d_fft: non-square");
  const std::size_t r = ks.h;
  const int pad_h = opt.eff_pad_h();
  const int pad_w = opt.eff_pad_w();
  const std::size_t out_h = conv_out_extent(is.h, r, pad_h, opt.stride);
  const std::size_t out_w = conv_out_extent(is.w, r, pad_w, opt.stride);

  const std::size_t fft_size = next_pow2(std::max(is.h, is.w) + r - 1);
  const std::size_t grid = fft_size * fft_size;

  // Pre-transform all kernels, spatially flipped so the frequency-domain
  // product implements cross-correlation.
  std::vector<std::vector<Cplx>> kernel_f(ks.n * ks.c);
  runtime::parallel_for_each(ks.n * ks.c, [&](std::size_t kc) {
    const std::size_t k = kc / ks.c;
    const std::size_t c = kc % ks.c;
    auto& buf = kernel_f[kc];
    buf.assign(grid, Cplx{});
    for (std::size_t u = 0; u < r; ++u) {
      for (std::size_t v = 0; v < r; ++v) {
        buf[(r - 1 - u) * fft_size + (r - 1 - v)] =
            static_cast<double>(kernels(k, c, u, v));
      }
    }
    fft2d(buf, fft_size, false);
  });

  Tensor4f out(is.n, ks.n, out_h, out_w);
  std::vector<std::vector<Cplx>> input_f(is.c);
  for (std::size_t img = 0; img < is.n; ++img) {
    runtime::parallel_for_each(is.c, [&](std::size_t c) {
      auto& buf = input_f[c];
      buf.assign(grid, Cplx{});
      for (std::size_t y = 0; y < is.h; ++y) {
        for (std::size_t x = 0; x < is.w; ++x) {
          buf[y * fft_size + x] = static_cast<double>(input(img, c, y, x));
        }
      }
      fft2d(buf, fft_size, false);
    });
    // Output channels are independent; the accumulator is per-chunk scratch
    // and the channel reduction order inside each k is unchanged.
    runtime::parallel_for(ks.n, [&](std::size_t k_begin, std::size_t k_end) {
      std::vector<Cplx> acc(grid);
      for (std::size_t k = k_begin; k < k_end; ++k) {
        std::fill(acc.begin(), acc.end(), Cplx{});
        for (std::size_t c = 0; c < is.c; ++c) {
          const auto& df = input_f[c];
          const auto& gf = kernel_f[k * ks.c + c];
          for (std::size_t i = 0; i < grid; ++i) acc[i] += df[i] * gf[i];
        }
        fft2d(acc, fft_size, true);
        // Linear convolution with the flipped kernel puts correlation
        // output (0,0) at index (r-1-pad_h, r-1-pad_w).
        const std::ptrdiff_t off_y =
            static_cast<std::ptrdiff_t>(r) - 1 - pad_h;
        const std::ptrdiff_t off_x =
            static_cast<std::ptrdiff_t>(r) - 1 - pad_w;
        // Samples outside the linear-convolution support (possible when
        // pad > r-1) are zero, matching conv2d_spatial's zero padding.
        const auto bound = static_cast<std::ptrdiff_t>(fft_size);
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t iy =
                off_y + static_cast<std::ptrdiff_t>(oy) * opt.stride;
            const std::ptrdiff_t ix =
                off_x + static_cast<std::ptrdiff_t>(ox) * opt.stride;
            out(img, k, oy, ox) =
                (iy < 0 || iy >= bound || ix < 0 || ix >= bound)
                    ? 0.0F
                    : static_cast<float>(
                          acc[static_cast<std::size_t>(iy) * fft_size +
                              static_cast<std::size_t>(ix)]
                              .real());
          }
        }
      }
    });
  }
  return out;
}

}  // namespace wino::conv
