#include "conv/spatial.hpp"

#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace wino::conv {

using tensor::Tensor4f;

std::size_t conv_out_extent(std::size_t in, std::size_t kernel, int pad,
                            int stride) {
  if (stride < 1) throw std::invalid_argument("stride must be >= 1");
  const std::ptrdiff_t padded =
      static_cast<std::ptrdiff_t>(in) + 2 * pad -
      static_cast<std::ptrdiff_t>(kernel);
  if (padded < 0) throw std::invalid_argument("kernel larger than input");
  return static_cast<std::size_t>(padded) / static_cast<std::size_t>(stride) +
         1;
}

Tensor4f conv2d_spatial(const Tensor4f& input, const Tensor4f& kernels,
                        const SpatialConvOptions& opt) {
  const auto& is = input.shape();
  const auto& ks = kernels.shape();
  if (ks.c != is.c) {
    throw std::invalid_argument("conv2d_spatial: channel mismatch");
  }
  const int pad_h = opt.eff_pad_h();
  const int pad_w = opt.eff_pad_w();
  const std::size_t out_h = conv_out_extent(is.h, ks.h, pad_h, opt.stride);
  const std::size_t out_w = conv_out_extent(is.w, ks.w, pad_w, opt.stride);

  Tensor4f out(is.n, ks.n, out_h, out_w);
  // Each (image, output channel) pair writes a disjoint output plane, so the
  // flattened img*k loop is channel/batch parallel with unchanged numerics.
  runtime::parallel_for_each(is.n * ks.n, [&](std::size_t job) {
    const std::size_t img = job / ks.n;
    const std::size_t k = job % ks.n;
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = 0.0F;
        for (std::size_t c = 0; c < is.c; ++c) {
          for (std::size_t u = 0; u < ks.h; ++u) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy) * opt.stride +
                static_cast<std::ptrdiff_t>(u) - pad_h;
            for (std::size_t v = 0; v < ks.w; ++v) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox) * opt.stride +
                  static_cast<std::ptrdiff_t>(v) - pad_w;
              acc += input.padded(img, c, iy, ix) * kernels(k, c, u, v);
            }
          }
        }
        out(img, k, oy, ox) = acc;
      }
    }
  });
  return out;
}

}  // namespace wino::conv
