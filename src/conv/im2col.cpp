#include "conv/im2col.hpp"

#include <stdexcept>
#include <vector>

#include "runtime/gemm.hpp"
#include "runtime/thread_pool.hpp"

namespace wino::conv {

using tensor::Tensor4f;

void gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, std::size_t rows, std::size_t inner,
          std::size_t cols) {
  if (a.size() != rows * inner || b.size() != inner * cols ||
      c.size() != rows * cols) {
    throw std::invalid_argument("gemm: size mismatch");
  }
  runtime::sgemm(rows, cols, inner, 1.0F, a.data(), inner, b.data(), cols,
                 0.0F, c.data(), cols);
}

void im2col(const Tensor4f& input, std::size_t image, std::size_t r, int pad,
            int stride, std::span<float> out_patches) {
  im2col(input, image, r, pad, pad, stride, out_patches);
}

void im2col(const Tensor4f& input, std::size_t image, std::size_t r,
            int pad_h, int pad_w, int stride, std::span<float> out_patches) {
  im2col(tensor::Tensor4fView(input.shape(), input.flat()), image, r, pad_h,
         pad_w, stride, out_patches);
}

void im2col(const tensor::Tensor4fView& input, std::size_t image,
            std::size_t r, int pad_h, int pad_w, int stride,
            std::span<float> out_patches) {
  const auto& is = input.shape();
  const std::size_t out_h = conv_out_extent(is.h, r, pad_h, stride);
  const std::size_t out_w = conv_out_extent(is.w, r, pad_w, stride);
  const std::size_t patch_rows = is.c * r * r;
  const std::size_t patch_cols = out_h * out_w;
  if (out_patches.size() != patch_rows * patch_cols) {
    throw std::invalid_argument("im2col: output span size mismatch");
  }
  // One patch row per (c, u, v); rows write disjoint slices of the output.
  // The lowering itself lives in tensor::im2col_lower_row, shared with
  // tensor::pack so the panel layout has exactly one definition.
  runtime::parallel_for_each(patch_rows, [&](std::size_t row) {
    tensor::im2col_lower_row(
        input, image, r, pad_h, pad_w, stride, row, out_h, out_w,
        out_patches.subspan(row * patch_cols, patch_cols));
  });
}

Tensor4f conv2d_im2col(const Tensor4f& input, const Tensor4f& kernels,
                       const SpatialConvOptions& opt) {
  const auto& is = input.shape();
  const auto& ks = kernels.shape();
  if (ks.c != is.c) {
    throw std::invalid_argument("conv2d_im2col: channel mismatch");
  }
  if (ks.h != ks.w) {
    throw std::invalid_argument("conv2d_im2col: non-square kernel");
  }
  const std::size_t r = ks.h;
  const int pad_h = opt.eff_pad_h();
  const int pad_w = opt.eff_pad_w();
  const std::size_t out_h = conv_out_extent(is.h, r, pad_h, opt.stride);
  const std::size_t out_w = conv_out_extent(is.w, r, pad_w, opt.stride);
  const std::size_t inner = is.c * r * r;
  const std::size_t cols = out_h * out_w;

  // Kernel bank flattened as K x (C*r*r); kernels are stored KCrr
  // contiguously, so the flat view is already the GEMM A matrix.
  std::span<const float> a = kernels.flat();

  Tensor4f out(is.n, ks.n, out_h, out_w);
  auto run_images = [&](std::size_t begin, std::size_t end) {
    // One patch/result scratch pair per chunk, reused across every image
    // the chunk owns instead of reallocating per image.
    std::vector<float> patches(inner * cols);
    std::vector<float> result(ks.n * cols);
    for (std::size_t img = begin; img < end; ++img) {
      im2col(input, img, r, pad_h, pad_w, opt.stride, patches);
      gemm(a, patches, result, ks.n, inner, cols);
      for (std::size_t k = 0; k < ks.n; ++k) {
        for (std::size_t i = 0; i < cols; ++i) {
          out(img, k, i / out_w, i % out_w) = result[k * cols + i];
        }
      }
    }
  };
  // Images are independent outputs, but going image-parallel pins nested
  // im2col/sgemm parallel_for calls inline — so only split the batch when
  // it can occupy the whole pool; smaller batches keep the per-image
  // kernels parallel instead. Either way each image's values are the
  // thread-invariant per-image results, so the strategy switch cannot
  // change the output.
  if (is.n >= runtime::ThreadPool::global().threads()) {
    runtime::parallel_for(is.n, run_images);
  } else {
    run_images(0, is.n);
  }
  return out;
}

Tensor4f conv2d_im2col(const tensor::PackedActivation& panels,
                       const Tensor4f& kernels,
                       const SpatialConvOptions& opt) {
  const tensor::Layout& il = panels.layout;
  const auto& ks = kernels.shape();
  if (il.kind != tensor::LayoutKind::kIm2colPanel) {
    throw std::invalid_argument("conv2d_im2col: input is not a panel");
  }
  if (panels.data.size() != il.volume()) {
    throw std::invalid_argument(
        "conv2d_im2col: panel buffer size != layout volume");
  }
  if (ks.h != ks.w || il.patch_r != ks.h || il.shape.c != ks.c) {
    throw std::invalid_argument(
        "conv2d_im2col: panel was packed for a different kernel bank");
  }
  if (il.pad_h != opt.eff_pad_h() || il.pad_w != opt.eff_pad_w() ||
      il.stride != opt.stride) {
    throw std::invalid_argument(
        "conv2d_im2col: panel was packed for different conv options");
  }
  const std::size_t r = ks.h;
  const std::size_t out_h = il.panel_out_h();
  const std::size_t out_w = il.panel_out_w();
  const std::size_t inner = il.shape.c * r * r;
  const std::size_t cols = out_h * out_w;
  const std::size_t panel = inner * cols;

  std::span<const float> a = kernels.flat();
  Tensor4f out(il.shape.n, ks.n, out_h, out_w);
  auto run_images = [&](std::size_t begin, std::size_t end) {
    std::vector<float> result(ks.n * cols);
    for (std::size_t img = begin; img < end; ++img) {
      const std::span<const float> patches{panels.data.data() + img * panel,
                                           panel};
      gemm(a, patches, result, ks.n, inner, cols);
      for (std::size_t k = 0; k < ks.n; ++k) {
        for (std::size_t i = 0; i < cols; ++i) {
          out(img, k, i / out_w, i % out_w) = result[k * cols + i];
        }
      }
    }
  };
  if (il.shape.n >= runtime::ThreadPool::global().threads()) {
    runtime::parallel_for(il.shape.n, run_images);
  } else {
    run_images(0, il.shape.n);
  }
  return out;
}

}  // namespace wino::conv
