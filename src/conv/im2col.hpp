// im2col + GEMM convolution baseline: lowers the convolution to one matrix
// multiply per image, the classic approach used by GPU/CPU BLAS backends
// the paper contrasts fast algorithms with. The matrix multiply runs on
// the shared cache-blocked SIMD core in runtime/gemm.hpp (no BLAS
// dependency).
#pragma once

#include <span>

#include "conv/spatial.hpp"
#include "tensor/tensor.hpp"

namespace wino::conv {

/// C = A (rows x inner) * B (inner x cols), row-major, overwriting c.
/// Thin span-checked wrapper over runtime::sgemm.
void gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, std::size_t rows, std::size_t inner,
          std::size_t cols);

/// Lower one image of the NCHW input into the (C*r*r) x (outH*outW) patch
/// matrix. Exposed for tests.
void im2col(const tensor::Tensor4f& input, std::size_t image, std::size_t r,
            int pad, int stride, std::span<float> out_patches);

/// im2col with per-dimension (possibly asymmetric) padding.
void im2col(const tensor::Tensor4f& input, std::size_t image, std::size_t r,
            int pad_h, int pad_w, int stride, std::span<float> out_patches);

/// Convolution via im2col lowering; numerically equivalent to
/// conv2d_spatial up to float accumulation order.
tensor::Tensor4f conv2d_im2col(const tensor::Tensor4f& input,
                               const tensor::Tensor4f& kernels,
                               const SpatialConvOptions& opt = {});

}  // namespace wino::conv
