// im2col + GEMM convolution baseline: lowers the convolution to one matrix
// multiply per image, the classic approach used by GPU/CPU BLAS backends
// the paper contrasts fast algorithms with. The matrix multiply runs on
// the shared cache-blocked SIMD core in runtime/gemm.hpp (no BLAS
// dependency).
#pragma once

#include <span>

#include "conv/spatial.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"

namespace wino::conv {

/// C = A (rows x inner) * B (inner x cols), row-major, overwriting c.
/// Thin span-checked wrapper over runtime::sgemm.
void gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, std::size_t rows, std::size_t inner,
          std::size_t cols);

/// Lower one image of the NCHW input into the (C*r*r) x (outH*outW) patch
/// matrix. Exposed for tests.
void im2col(const tensor::Tensor4f& input, std::size_t image, std::size_t r,
            int pad, int stride, std::span<float> out_patches);

/// im2col with per-dimension (possibly asymmetric) padding.
void im2col(const tensor::Tensor4f& input, std::size_t image, std::size_t r,
            int pad_h, int pad_w, int stride, std::span<float> out_patches);

/// As above over a non-owning NCHW view — the core implementation; the
/// Tensor4f overloads delegate here. Lets the workspace executor lower
/// slab-backed activations without materialising an owning tensor.
void im2col(const tensor::Tensor4fView& input, std::size_t image,
            std::size_t r, int pad_h, int pad_w, int stride,
            std::span<float> out_patches);

/// Convolution via im2col lowering; numerically equivalent to
/// conv2d_spatial up to float accumulation order.
tensor::Tensor4f conv2d_im2col(const tensor::Tensor4f& input,
                               const tensor::Tensor4f& kernels,
                               const SpatialConvOptions& opt = {});

/// GEMM consumer over a pre-packed im2col panel activation: the input is
/// already in kIm2colPanel form (packed by tensor::pack with a layout
/// matching this conv's r/pad/stride — the layer planner in nn::forward
/// builds it once per boundary), so only the per-image GEMMs remain.
/// Bit-identical to conv2d_im2col on the NCHW equivalent: the panel holds
/// exactly the patch matrix im2col would build, and the same
/// runtime::sgemm call consumes it.
tensor::Tensor4f conv2d_im2col(const tensor::PackedActivation& panels,
                               const tensor::Tensor4f& kernels,
                               const SpatialConvOptions& opt = {});

}  // namespace wino::conv
