// FFT-based convolution baseline (the approach of Vasilache et al., the
// paper's reference [6]), built on an in-repo radix-2 complex FFT.
//
// The paper's argument for Winograd over FFT is that FFT savings only
// materialise for large kernels; this module lets the benchmarks make that
// comparison concrete (see bench/micro_conv_kernels.cpp).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "conv/spatial.hpp"
#include "tensor/tensor.hpp"

namespace wino::conv {

/// In-place iterative radix-2 decimation-in-time FFT. data.size() must be a
/// power of two. `inverse` applies the conjugate transform including the
/// 1/N scale.
void fft_pow2(std::span<std::complex<double>> data, bool inverse);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// 2-D FFT over a row-major size x size complex grid (size a power of two).
void fft2d(std::span<std::complex<double>> grid, std::size_t size,
           bool inverse);

/// Convolution computed per (image, k): accumulate over channels in the
/// frequency domain, one inverse FFT per output plane. Kernels are flipped
/// internally so the result matches cross-correlation conv2d_spatial for
/// any stride and (possibly asymmetric) padding. Kernel transforms, input
/// transforms and output channels run in parallel on the runtime's global
/// ThreadPool with unchanged numerics.
tensor::Tensor4f conv2d_fft(const tensor::Tensor4f& input,
                            const tensor::Tensor4f& kernels,
                            const SpatialConvOptions& opt = {});

}  // namespace wino::conv
