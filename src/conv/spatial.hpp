// Direct (spatial) convolution — the paper's Eq 1 and the ground truth
// every fast path in this library is validated against.
#pragma once

#include "tensor/tensor.hpp"

namespace wino::conv {

struct SpatialConvOptions {
  int pad = 0;     ///< symmetric zero padding
  int stride = 1;  ///< spatial stride (Winograd paths require stride 1)
  int pad_h = -1;  ///< vertical padding override; -1 means use `pad`
  int pad_w = -1;  ///< horizontal padding override; -1 means use `pad`

  /// Effective per-dimension padding (asymmetric when pad_h != pad_w).
  [[nodiscard]] int eff_pad_h() const { return pad_h >= 0 ? pad_h : pad; }
  [[nodiscard]] int eff_pad_w() const { return pad_w >= 0 ? pad_w : pad; }
};

/// Cross-correlation of an NCHW input with a KCrr kernel bank (CNN
/// convention, matching the paper's Eq 1):
///   Y[i,k,x,y] = sum_c sum_v sum_u D[i,c,x*s+u-pad,y*s+v-pad] G[k,c,u,v]
/// Out-of-range reads are zero. (image, output channel) pairs run in
/// parallel on the runtime's global ThreadPool; the per-element reduction
/// order is unchanged, so results are thread-count invariant.
tensor::Tensor4f conv2d_spatial(const tensor::Tensor4f& input,
                                const tensor::Tensor4f& kernels,
                                const SpatialConvOptions& opt = {});

/// Output spatial extent for given input extent / kernel / pad / stride;
/// throws if non-positive.
std::size_t conv_out_extent(std::size_t in, std::size_t kernel, int pad,
                            int stride);

}  // namespace wino::conv
