// Deterministic multi-threading substrate for the hot numeric paths.
//
// The pool is intentionally work-stealing-free: parallel_for splits an index
// range into at most thread-count contiguous chunks with statically computed
// boundaries, and every chunk runs the same sequential code it would run
// single-threaded. Parallelism is only ever applied across *independent
// outputs* (batch images, output channels, tiles), never across reduction
// dimensions, so results are bit-identical for any thread count — a property
// the runtime determinism tests pin down.
#pragma once

#include <cstddef>
#include <thread>
#include <vector>

namespace wino::runtime {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency(). The calling
  /// thread always participates, so `threads` is the total worker count
  /// (a pool of 1 runs everything inline and spawns nothing).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to a parallel_for (workers + caller).
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Run body(begin, end) over a static partition of [0, count) into at
  /// most threads() contiguous chunks. Blocks until every chunk finished.
  /// A nested call from inside a body runs inline (no re-entry deadlock),
  /// and concurrent calls from distinct application threads serialise on
  /// an internal job mutex rather than interleaving.
  /// The first exception thrown by any chunk is rethrown to the caller.
  ///
  /// The body is dispatched as a raw (context, function-pointer) pair, not
  /// a std::function — submitting a job performs no heap allocation, a
  /// requirement of the zero-allocation forward pass (the batched executor
  /// submits one job per forward call; pinned by tests/nn_memory_test.cpp).
  template <typename F>
  void parallel_for(std::size_t count, const F& body) {
    parallel_for_raw(
        count, const_cast<void*>(static_cast<const void*>(&body)),
        [](void* ctx, std::size_t begin, std::size_t end) {
          (*static_cast<const F*>(ctx))(begin, end);
        });
  }

  /// Type-erased core of parallel_for: fn(ctx, begin, end) per chunk.
  void parallel_for_raw(std::size_t count, void* ctx,
                        void (*fn)(void*, std::size_t, std::size_t));

  /// Chunk boundary helper: [chunk_begin(i), chunk_begin(i+1)) is chunk i of
  /// `count` items split into `chunks` near-equal contiguous ranges.
  [[nodiscard]] static std::size_t chunk_begin(std::size_t index,
                                               std::size_t count,
                                               std::size_t chunks) {
    return index * count / chunks;
  }

  /// Process-wide pool used by the free parallel_for. Created lazily with
  /// set_global_threads()'s last value, else WINO_THREADS, else hardware
  /// concurrency.
  static ThreadPool& global();

  /// Resize the global pool (tests and benches switch 1 <-> N threads).
  /// Must not race in-flight parallel work on the global pool: the old
  /// pool is destroyed, so call it only from a quiescent control thread.
  static void set_global_threads(std::size_t threads);

 private:
  struct State;
  void worker_loop(std::size_t worker_index);

  State* state_;
  std::vector<std::jthread> workers_;
};

/// parallel_for on the global pool.
template <typename F>
void parallel_for(std::size_t count, const F& body) {
  ThreadPool::global().parallel_for(count, body);
}

/// Convenience: body receives one index at a time (still chunked under the
/// hood, so per-chunk scratch reuse is the ThreadPool overload's job).
template <typename F>
void parallel_for_each(std::size_t count, const F& body) {
  ThreadPool::global().parallel_for(
      count, [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      });
}

}  // namespace wino::runtime
