// Deterministic multi-threading substrate for the hot numeric paths.
//
// The pool is intentionally work-stealing-free: parallel_for splits an index
// range into at most thread-count contiguous chunks with statically computed
// boundaries, and every chunk runs the same sequential code it would run
// single-threaded. Parallelism is only ever applied across *independent
// outputs* (batch images, output channels, tiles), never across reduction
// dimensions, so results are bit-identical for any thread count — a property
// the runtime determinism tests pin down.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace wino::runtime {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency(). The calling
  /// thread always participates, so `threads` is the total worker count
  /// (a pool of 1 runs everything inline and spawns nothing).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to a parallel_for (workers + caller).
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Run body(begin, end) over a static partition of [0, count) into at
  /// most threads() contiguous chunks. Blocks until every chunk finished.
  /// A nested call from inside a body runs inline (no re-entry deadlock),
  /// and concurrent calls from distinct application threads serialise on
  /// an internal job mutex rather than interleaving.
  /// The first exception thrown by any chunk is rethrown to the caller.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Chunk boundary helper: [chunk_begin(i), chunk_begin(i+1)) is chunk i of
  /// `count` items split into `chunks` near-equal contiguous ranges.
  [[nodiscard]] static std::size_t chunk_begin(std::size_t index,
                                               std::size_t count,
                                               std::size_t chunks) {
    return index * count / chunks;
  }

  /// Process-wide pool used by the free parallel_for. Created lazily with
  /// set_global_threads()'s last value, else WINO_THREADS, else hardware
  /// concurrency.
  static ThreadPool& global();

  /// Resize the global pool (tests and benches switch 1 <-> N threads).
  /// Must not race in-flight parallel work on the global pool: the old
  /// pool is destroyed, so call it only from a quiescent control thread.
  static void set_global_threads(std::size_t threads);

 private:
  struct State;
  void worker_loop(std::size_t worker_index);

  State* state_;
  std::vector<std::jthread> workers_;
};

/// parallel_for on the global pool.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Convenience: body receives one index at a time (still chunked under the
/// hood, so per-chunk scratch reuse is the ThreadPool overload's job).
void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& body);

}  // namespace wino::runtime
