// Int8 GEMM core for the quantized inference path.
//
// Computes C (int32, m x n) = A (int8, m x k) * B^T (int8, n x k): both
// operands are laid out K-contiguous (a dot-product / "NT" formulation).
// The quantized im2col path stores the weight matrix as [k_out][C*r*r]
// and the quantized patch panel as [pixels][C*r*r], so every output
// element is a contiguous int8 dot product — the friendliest shape for
// widening-multiply SIMD.
//
// Determinism contract (pinned by tests/runtime_igemm_test.cpp):
//  * Accumulation is exact: |a*b| <= 127*127 = 16129, so any k up to
//    kMaxInner products fits an int32 accumulator with no overflow and
//    therefore no rounding — accumulation ORDER cannot matter. SIMD vs
//    scalar and any thread count are bit-identical by construction, a
//    strictly stronger guarantee than the fp32 sgemm's ordered-rounding
//    contract.
//  * Threads only ever split independent output columns, never the K
//    reduction (the split would still be exact; keeping the rule mirrors
//    the fp32 GEMM and keeps TSan's picture simple).
//  * The SIMD kernels sign-extend both operands to int16 and use pmaddwd
//    (multiply-add-pairs into int32). The obvious one-instruction-shorter
//    vpmaddubsw path is deliberately NOT used: it saturates its pairwise
//    int16 sum (worst case 255*127 + 255*127 = 64770 > 32767), which
//    would silently clamp large products and break bit-identity with the
//    widening scalar reference. pmaddwd's pairwise int32 sum cannot
//    overflow (2 * 16129 << 2^31) and is exact.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wino::runtime {

/// Micro-kernel selection for igemm_nt. kAuto picks the best compiled-in
/// instruction set (AVX2 with -mavx2/-march=native, SSE2 on any x86-64,
/// scalar otherwise); kScalar forces the portable widening int16->int32
/// fallback. Both are bit-identical — integer accumulation is exact — so
/// the switch exists for benchmarking and for pinning that equivalence.
enum class IGemmKernel {
  kAuto,
  kScalar,
};

/// Largest supported reduction depth: 127 * 127 * kMaxInner must stay
/// below 2^31 so the int32 accumulator can never wrap. Far above any
/// im2col inner dimension this runtime produces (C*r*r <= 512*9 = 4608).
inline constexpr std::size_t kMaxInner = 130000;

/// \brief C = A * B^T with int8 operands and exact int32 accumulation.
///
/// Overwrites C. Parallelises over output columns on the global
/// ThreadPool; safe to call from inside a parallel_for body (runs
/// inline). Throws std::invalid_argument if k > kMaxInner.
///
/// \param m,n,k  extents: A is m x k, B is n x k (both K-contiguous),
///               C is m x n row-major.
/// \param a,lda  int8 A and its row stride in elements (lda >= k).
/// \param b,ldb  int8 B and its row stride in elements (ldb >= k); row j
///               of B holds output column j's reduction operand.
/// \param c,ldc  int32 C and its row stride in elements (ldc >= n).
/// \param kernel micro-kernel override; kAuto and kScalar are
///               bit-identical (exact integer accumulation).
void igemm_nt(std::size_t m, std::size_t n, std::size_t k,
              const std::int8_t* a, std::size_t lda, const std::int8_t* b,
              std::size_t ldb, std::int32_t* c, std::size_t ldc,
              IGemmKernel kernel = IGemmKernel::kAuto);

/// Single-threaded naive widening reference (int8 -> int32 per product,
/// ascending-k accumulation). The correctness oracle for igemm_nt: exact
/// integer arithmetic makes the two bit-identical for every shape.
void igemm_nt_ref(std::size_t m, std::size_t n, std::size_t k,
                  const std::int8_t* a, std::size_t lda, const std::int8_t* b,
                  std::size_t ldb, std::int32_t* c, std::size_t ldc);

/// Name of the micro-kernel kAuto dispatches to: "avx2", "sse2" or
/// "scalar". Fixed at compile time.
const char* igemm_kernel_name();

}  // namespace wino::runtime
