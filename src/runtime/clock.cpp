#include "runtime/clock.hpp"

#include <algorithm>

namespace wino::runtime {

ClockSource::~ClockSource() = default;

std::size_t ClockSource::add_wake_hook(std::function<void()> hook) {
  std::lock_guard lock(hooks_mutex_);
  const std::size_t token = next_token_++;
  hooks_.emplace_back(token, std::move(hook));
  return token;
}

void ClockSource::remove_wake_hook(std::size_t token) {
  std::lock_guard lock(hooks_mutex_);
  hooks_.erase(std::remove_if(hooks_.begin(), hooks_.end(),
                              [&](const auto& h) { return h.first == token; }),
               hooks_.end());
}

void ClockSource::fire_wake_hooks() {
  // Invoke under hooks_mutex_: once remove_wake_hook() returns, its hook
  // can never run again, so an owner may tear down whatever the hook
  // touches (the BoundedQueue behind a kick()) right after unregistering.
  // The lock-order consequence — hooks_mutex_ is taken before any mutex a
  // hook acquires — is safe because registration/removal callers never
  // hold those mutexes (documented on add_wake_hook).
  std::lock_guard lock(hooks_mutex_);
  for (const auto& [token, hook] : hooks_) hook();
}

ClockSource& steady_clock_source() {
  static SteadyClockSource source;
  return source;
}

}  // namespace wino::runtime
