// Bounded multi-producer / multi-consumer FIFO — the hand-off primitive
// between request submitters, the dynamic batcher and the batch workers in
// src/serve/. Classic mutex + two-condvar design: no lock-free cleverness,
// because the serving layer's throughput is dominated by the GEMMs behind
// it, and a mutexed deque is trivially correct under MPMC use.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "runtime/clock.hpp"

namespace wino::runtime {

/// \brief Bounded blocking MPMC queue.
///
/// Any number of producers and consumers may call concurrently. FIFO order
/// is global (a single popped sequence interleaves producers in lock
/// acquisition order). `close()` transitions the queue to a draining state:
/// further pushes fail, pops keep returning the remaining items and then
/// `std::nullopt` forever — consumers use that as their exit signal.
///
/// \tparam T element type; moved in and out, never copied.
template <typename T>
class BoundedQueue {
 public:
  /// \param capacity maximum queued elements (clamped to at least 1).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push: waits while the queue is full.
  /// \return false iff the queue was closed (the value is dropped).
  bool push(T value) {
    {
      std::unique_lock lock(mutex_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. \return false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an element or for close().
  /// \return the front element, or std::nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  /// Non-blocking pop. \return the front element, or std::nullopt when
  /// the queue is currently empty (closed or not).
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    return take(lock);
  }

  /// Pop with a timeout.
  /// \return the front element; std::nullopt on timeout or closed+drained
  /// (disambiguate with closed() if it matters).
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  /// Pop waiting until `deadline` *as measured by `clock`*. Against the
  /// steady source this is an ordinary cv wait_until; against a manual
  /// clock the wait is untimed and re-evaluates the deadline whenever the
  /// queue is kicked — callers must have registered kick() as a wake hook
  /// on the clock (serve::InferenceServer does), or a manual-clock
  /// deadline could only be noticed on the next push/close.
  /// \return the front element; std::nullopt once the clock reaches
  /// `deadline`, or on closed+drained.
  std::optional<T> pop_until(const ClockSource& clock,
                             ClockSource::time_point deadline) {
    std::unique_lock lock(mutex_);
    if (clock.manual()) {
      // kick() serialises on mutex_ after the clock moved, so the waiter
      // is either before this predicate check (and sees the new time) or
      // parked inside wait() (and receives the notify) — no lost wakeup.
      not_empty_.wait(lock, [&] {
        return closed_ || !items_.empty() || clock.now() >= deadline;
      });
    } else {
      not_empty_.wait_until(lock, deadline,
                            [&] { return closed_ || !items_.empty(); });
    }
    return take(lock);
  }

  /// Wake every blocked consumer for a spurious predicate re-check (used
  /// as a ManualClock wake hook so time-based pop_until predicates are
  /// re-evaluated when test time moves). Never changes queue contents.
  void kick() {
    { std::lock_guard lock(mutex_); }  // order after any in-flight check
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Close the queue: wakes every waiter; subsequent pushes fail, pops
  /// drain the remaining items. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Instantaneous element count (racy by nature; for stats/tests).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// Pop the front under `lock`, then unlock and wake one producer.
  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wino::runtime
