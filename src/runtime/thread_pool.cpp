#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace wino::runtime {

namespace {
// Set while a thread executes a parallel_for body; nested calls run inline.
thread_local bool t_in_parallel_region = false;
}  // namespace

struct ThreadPool::State {
  // Serialises whole parallel_for jobs: concurrent callers from distinct
  // application threads queue up rather than corrupting the job slot.
  // Never taken by pool workers (nested calls run inline), so it cannot
  // self-deadlock.
  std::mutex job_mutex;
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;

  // Job description for the current parallel_for, guarded by mutex.
  void* ctx = nullptr;
  void (*fn)(void*, std::size_t, std::size_t) = nullptr;
  std::size_t count = 0;
  std::size_t chunks = 0;
  std::uint64_t epoch = 0;
  std::size_t pending = 0;  ///< worker chunks not yet finished
  std::exception_ptr error;
  bool stopping = false;
};

ThreadPool::ThreadPool(std::size_t threads) : state_(new State) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(state_->mutex);
    state_->stopping = true;
  }
  state_->work_ready.notify_all();
  workers_.clear();  // joins
  delete state_;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  State& st = *state_;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    void* ctx = nullptr;
    void (*fn)(void*, std::size_t, std::size_t) = nullptr;
    std::size_t count = 0;
    std::size_t chunks = 0;
    {
      std::unique_lock lock(st.mutex);
      st.work_ready.wait(lock, [&] {
        return st.stopping || st.epoch != seen_epoch;
      });
      if (st.stopping) return;
      seen_epoch = st.epoch;
      ctx = st.ctx;
      fn = st.fn;
      count = st.count;
      chunks = st.chunks;
    }
    // Worker i owns chunk i + 1 (the caller runs chunk 0); workers past the
    // chunk count have nothing to do this round but still must check in.
    const std::size_t chunk = worker_index + 1;
    std::exception_ptr error;
    if (chunk < chunks) {
      const std::size_t begin = chunk_begin(chunk, count, chunks);
      const std::size_t end = chunk_begin(chunk + 1, count, chunks);
      t_in_parallel_region = true;
      try {
        fn(ctx, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      t_in_parallel_region = false;
    }
    {
      std::lock_guard lock(st.mutex);
      if (error && !st.error) st.error = error;
      if (--st.pending == 0) st.work_done.notify_all();
    }
  }
}

void ThreadPool::parallel_for_raw(std::size_t count, void* ctx,
                                  void (*fn)(void*, std::size_t,
                                             std::size_t)) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, threads());
  if (chunks <= 1 || t_in_parallel_region) {
    fn(ctx, 0, count);
    return;
  }

  std::lock_guard job_lock(state_->job_mutex);
  {
    std::lock_guard lock(state_->mutex);
    state_->ctx = ctx;
    state_->fn = fn;
    state_->count = count;
    state_->chunks = chunks;
    state_->pending = workers_.size();
    state_->error = nullptr;
    ++state_->epoch;
  }
  state_->work_ready.notify_all();

  // The caller is thread 0 and runs the first chunk.
  std::exception_ptr error;
  t_in_parallel_region = true;
  try {
    fn(ctx, 0, chunk_begin(1, count, chunks));
  } catch (...) {
    error = std::current_exception();
  }
  t_in_parallel_region = false;

  std::unique_lock lock(state_->mutex);
  state_->work_done.wait(lock, [&] { return state_->pending == 0; });
  state_->ctx = nullptr;
  state_->fn = nullptr;
  if (!state_->error && error) state_->error = error;
  if (state_->error) {
    std::exception_ptr rethrow = state_->error;
    state_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(rethrow);
  }
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

std::size_t default_global_threads() {
  if (const char* env = std::getenv("WINO_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(default_global_threads());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument("set_global_threads: need >= 1 thread");
  }
  std::lock_guard lock(g_global_mutex);
  if (g_global_pool && g_global_pool->threads() == threads) return;
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace wino::runtime
