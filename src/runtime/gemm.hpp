// Shared cache-blocked SIMD SGEMM core for every matmul in the repo.
//
// One kernel serves the im2col lowering, the (m+r-1)^2 batched transform-
// domain GEMMs of the Winograd formulation, the hw engine's batched inverse
// transforms and large common::Matrix<float> products. The design follows
// the BLIS decomposition: B is packed into NR-wide column panels per
// (Nc, Kc) block, A is packed into an MR-row panel held in L1, and an
// MR x NR register-tiled micro-kernel (AVX2 / NEON / portable scalar,
// selected at compile time) walks the Kc reduction.
//
// Determinism contract (pinned by tests/runtime_gemm_test.cpp):
//  * Every output element accumulates its K products in ascending-k order,
//    one rounding per multiply and per add (the translation unit is built
//    with -ffp-contract=off, so no FMA contraction reorders roundings).
//  * The reduction is bracketed into fixed Kc = 256 panels: the element
//    value is beta*C + alpha*panel_0 + alpha*panel_1 + ... regardless of
//    shape, thread count or instruction set. For K <= Kc this equals the
//    naive local-accumulator triple loop bit-for-bit.
//  * Threads only ever split independent output row-panels (and batch
//    entries), never the K reduction, so any thread count is bit-identical.
//  * The SIMD micro-kernels use mul+add (not fused multiply-add) so the
//    vector lanes round exactly like the scalar fallback: forcing
//    GemmKernel::kScalar reproduces the kAuto result bit-for-bit.
#pragma once

#include <cstddef>

namespace wino::runtime {

/// Micro-kernel selection. kAuto picks the best compiled-in instruction
/// set (AVX2 on x86 with -mavx2/-march=native, NEON on aarch64, scalar
/// otherwise); kScalar forces the portable fallback. Both produce
/// bit-identical results — the switch exists for benchmarking and for
/// pinning that equivalence in tests.
enum class GemmKernel {
  kAuto,
  kScalar,
};

/// \brief C = alpha * A * B + beta * C with the blocked/packed/SIMD core.
///
/// beta == 0 overwrites C (stale/NaN contents are ignored, BLAS-style).
/// Parallelises over C row-panels on the global ThreadPool; safe to call
/// from inside a parallel_for body (runs inline).
///
/// \param m,n,k  GEMM extents: A is m x k, B is k x n, C is m x n.
/// \param alpha  scale applied to every A*B product.
/// \param a,lda  row-major A and its row stride (lda >= k).
/// \param b,ldb  row-major B and its row stride (ldb >= n).
/// \param beta   scale applied to C's prior contents (0 = overwrite).
/// \param c,ldc  row-major C and its row stride (ldc >= n).
/// \param kernel micro-kernel override; kAuto and kScalar produce
///               bit-identical results (see the determinism contract).
void sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
           const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float beta, float* c, std::size_t ldc,
           GemmKernel kernel = GemmKernel::kAuto);

/// Single-threaded naive triple loop with a local per-element accumulator
/// over the full K range. The correctness reference and the benchmark
/// baseline. Bit-identical to sgemm whenever K <= the Kc blocking factor
/// (a single reduction panel); within rounding otherwise.
void sgemm_naive(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, std::size_t lda, const float* b,
                 std::size_t ldb, float beta, float* c, std::size_t ldc);

/// \brief `count` independent GEMMs of identical shape at fixed strides
/// between consecutive A/B/C operands (the Winograd transform-domain
/// layout).
///
/// Parallelises across the batch; each member is bit-identical to a lone
/// sgemm call on the same operands.
///
/// \param count                        number of GEMMs in the batch.
/// \param stride_a,stride_b,stride_c   element offsets between operand i
///                                     and operand i+1 of A, B and C.
/// The remaining parameters match sgemm() and apply to every member.
void sgemm_batched(std::size_t count, std::size_t m, std::size_t n,
                   std::size_t k, float alpha, const float* a,
                   std::size_t lda, std::size_t stride_a, const float* b,
                   std::size_t ldb, std::size_t stride_b, float beta,
                   float* c, std::size_t ldc, std::size_t stride_c,
                   GemmKernel kernel = GemmKernel::kAuto);

/// Name of the micro-kernel kAuto dispatches to: "avx2", "neon" or
/// "scalar". Fixed at compile time.
const char* sgemm_kernel_name();

/// The compile-time blocking parameters (micro-tile MR x NR, reduction
/// panel Kc, column block Nc), exposed for benches and docs.
struct GemmBlocking {
  std::size_t mr;
  std::size_t nr;
  std::size_t kc;
  std::size_t nc;
};
GemmBlocking sgemm_blocking();

}  // namespace wino::runtime
