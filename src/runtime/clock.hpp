// Injectable time source for the serving layer (and anything else whose
// behaviour depends on elapsed time). Production code runs on the
// process-wide steady_clock-backed source; tests inject a ManualClock and
// advance it explicitly, which makes every timeout/deadline path a pure
// function of the test script — no sleeps, no scheduler-dependent
// flakiness, deterministic under TSan. The serve timeout-flush tests had a
// flakiness history precisely because steady_clock was hardwired there
// (see tests/serve_test.cpp).
//
// The seam has two halves:
//   * now(): the current time.
//   * timed waits: a real clock maps a deadline wait onto
//     cv.wait_until(); a manual clock cannot (real time passing means
//     nothing), so waiters block untimed and the clock wakes them through
//     registered wake hooks whenever advance()/set_time() moves time.
//     BoundedQueue::pop_until() encapsulates the pattern for the batcher.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace wino::runtime {

/// \brief Abstract monotonic time source.
///
/// Implementations must be safe to call from any thread. Time points are
/// std::chrono::steady_clock time_points so callers keep using the
/// standard duration/time_point arithmetic and the production source is a
/// zero-cost passthrough.
class ClockSource {
 public:
  using clock = std::chrono::steady_clock;
  using time_point = clock::time_point;
  using duration = clock::duration;

  virtual ~ClockSource();

  [[nodiscard]] virtual time_point now() const = 0;

  /// True when time only moves under explicit test control. Timed waiters
  /// branch on this: against a manual clock a deadline in the future can
  /// never expire on its own, so they wait untimed and rely on the wake
  /// hooks below firing when the test moves time.
  [[nodiscard]] virtual bool manual() const { return false; }

  /// Register a hook invoked after every manual time change (advance/set).
  /// The steady source stores but never invokes hooks — registration is
  /// unconditional at the call sites so they need no clock-kind branches.
  /// Returns a token for remove_wake_hook(). Hooks run with the hook
  /// registry locked, so once remove_wake_hook() returns the hook will
  /// never run again (safe teardown of what it touches). Consequently a
  /// hook may acquire its own mutexes, but add/remove must never be
  /// called while holding a mutex some hook acquires.
  std::size_t add_wake_hook(std::function<void()> hook);
  void remove_wake_hook(std::size_t token);

 protected:
  /// Invoke every registered hook (manual clocks call this after moving
  /// time). Runs the hooks under hooks_mutex_ — see add_wake_hook for the
  /// teardown guarantee and the resulting locking rule.
  void fire_wake_hooks();

 private:
  mutable std::mutex hooks_mutex_;
  std::vector<std::pair<std::size_t, std::function<void()>>> hooks_;
  std::size_t next_token_ = 1;
};

/// The production time source: a stateless steady_clock passthrough.
/// steady_clock_source() returns the shared process-wide instance that
/// every component defaults to when no clock is injected.
class SteadyClockSource final : public ClockSource {
 public:
  [[nodiscard]] time_point now() const override { return clock::now(); }
};

[[nodiscard]] ClockSource& steady_clock_source();

/// \brief Test clock: time stands still until the test moves it.
///
/// advance()/set_time() update now() and then fire the wake hooks, so
/// components whose timed waits registered a hook (e.g. a BoundedQueue
/// waiter via pop_until) re-evaluate their deadlines immediately. Safe to
/// drive from any thread; a wake hook that locks the waiter's mutex (the
/// queue kick() pattern) serialises the time change against the waiter's
/// check-then-wait, so wakeups are never lost.
class ManualClock final : public ClockSource {
 public:
  /// Starts at an arbitrary fixed epoch (steady_clock-like: only
  /// differences mean anything).
  ManualClock() : now_(time_point{} + std::chrono::hours(1)) {}

  [[nodiscard]] time_point now() const override {
    std::lock_guard lock(mutex_);
    return now_;
  }

  [[nodiscard]] bool manual() const override { return true; }

  /// Move time forward by `d` (never backwards) and wake timed waiters.
  void advance(duration d) {
    {
      std::lock_guard lock(mutex_);
      if (d > duration::zero()) now_ += d;
    }
    fire_wake_hooks();
  }

  /// Jump to an absolute point (must not move backwards; ignored if it
  /// would) and wake timed waiters.
  void set_time(time_point t) {
    {
      std::lock_guard lock(mutex_);
      if (t > now_) now_ = t;
    }
    fire_wake_hooks();
  }

 private:
  mutable std::mutex mutex_;
  time_point now_;
};

}  // namespace wino::runtime
