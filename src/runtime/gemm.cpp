// See gemm.hpp for the design and determinism contract. This file must be
// compiled with -ffp-contract=off (CMake pins it): the contract promises
// one rounding per multiply and per add, and letting the compiler fuse
// mul+add into FMA — in the scalar loops or through the vector intrinsics —
// would break bit-equality between the SIMD and scalar micro-kernels.
#include "runtime/gemm.hpp"

#include <algorithm>
#include <vector>

#include "runtime/thread_pool.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace wino::runtime {

namespace {

// Micro-tile shape per instruction set. MR x NR accumulators must fit the
// register file next to one broadcast and two B vectors: AVX2 has 16 ymm
// registers -> 6 x 16 uses 12 + 3; NEON has 32 q registers -> 8 x 8 uses
// 16 + 3. Only Kc affects numerics (it brackets the reduction); MR/NR are
// free to differ per ISA.
#if defined(__AVX2__)
constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;
#elif defined(__ARM_NEON)
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 8;
#else
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 16;
#endif

// Reduction panel: part of the numeric contract (fixed bracketing), sized
// so an A row-panel (MR x Kc floats) plus a B panel slice (Kc x NR) stay
// L1-resident. Nc bounds the packed-B footprint (Kc x Nc = 2 MB fp32).
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 2048;

// Below this many multiply-adds (with K inside a single reduction panel,
// so the bracketing is unchanged) packing costs more than it saves and a
// direct loop runs instead — this also keeps the tiny transform-sized
// GEMMs of the hw engine allocation-free.
constexpr std::size_t kSmallMnk = 32 * 1024;

// --- Micro-kernels ---------------------------------------------------------
// Contract: acc[i * kNr + j] = sum over kk < kc of ap[kk*kMr + i] *
// bp[kk*kNr + j], accumulated in ascending kk with one rounding per
// multiply and per add. ap/bp are the packed panels (zero-padded edges).

// On x86 builds compiled with AVX enabled, pin the portable fallback to
// baseline x86-64 codegen: it keeps "blocked without SIMD" an honest
// benchmark baseline, and it sidesteps a gcc AVX-512 auto-vectorisation
// scheme (outer-loop gathers via vinsertps chains) that runs ~10x slower
// than the plain SSE2 vectorisation of these loops. Values are unaffected
// either way — the accumulation order is fixed by the source.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    defined(__AVX__)
__attribute__((target("arch=x86-64")))
#endif
void micro_scalar(std::size_t kc, const float* ap, const float* bp,
                  float* acc) {
  // One output row at a time: a row's NR accumulators live in vector
  // registers across the whole k loop once the compiler vectorises the j
  // loops (a full MR x NR local array would spill to the stack every
  // iteration; two NR/2 halves keep gcc's vectoriser on the j loops
  // instead of an outer-loop gather scheme it picks on AVX-512 targets).
  // Per-element accumulation order is identical to the SIMD micro-kernels:
  // ascending k, one rounding per multiply and per add.
  constexpr std::size_t kQuarter = kNr / 4;
  for (std::size_t i = 0; i < kMr; ++i) {
    float q0[kQuarter] = {};
    float q1[kQuarter] = {};
    float q2[kQuarter] = {};
    float q3[kQuarter] = {};
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const float ai = ap[kk * kMr + i];
      const float* b = bp + kk * kNr;
      for (std::size_t j = 0; j < kQuarter; ++j) q0[j] += ai * b[j];
      for (std::size_t j = 0; j < kQuarter; ++j) {
        q1[j] += ai * b[kQuarter + j];
      }
      for (std::size_t j = 0; j < kQuarter; ++j) {
        q2[j] += ai * b[2 * kQuarter + j];
      }
      for (std::size_t j = 0; j < kQuarter; ++j) {
        q3[j] += ai * b[3 * kQuarter + j];
      }
    }
    std::copy(q0, q0 + kQuarter, acc + i * kNr);
    std::copy(q1, q1 + kQuarter, acc + i * kNr + kQuarter);
    std::copy(q2, q2 + kQuarter, acc + i * kNr + 2 * kQuarter);
    std::copy(q3, q3 + kQuarter, acc + i * kNr + 3 * kQuarter);
  }
}

#if defined(__AVX2__)
void micro_avx2(std::size_t kc, const float* ap, const float* bp,
                float* acc) {
  __m256 c0[kMr];
  __m256 c1[kMr];
  for (std::size_t i = 0; i < kMr; ++i) {
    c0[i] = _mm256_setzero_ps();
    c1[i] = _mm256_setzero_ps();
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNr + 8);
    const float* a = ap + kk * kMr;
    for (std::size_t i = 0; i < kMr; ++i) {
      // mul + add, not _mm256_fmadd_ps: the extra rounding is the price of
      // bit-equality with the scalar fallback (see gemm.hpp).
      const __m256 ai = _mm256_broadcast_ss(a + i);
      c0[i] = _mm256_add_ps(c0[i], _mm256_mul_ps(ai, b0));
      c1[i] = _mm256_add_ps(c1[i], _mm256_mul_ps(ai, b1));
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    _mm256_storeu_ps(acc + i * kNr, c0[i]);
    _mm256_storeu_ps(acc + i * kNr + 8, c1[i]);
  }
}
#elif defined(__ARM_NEON)
void micro_neon(std::size_t kc, const float* ap, const float* bp,
                float* acc) {
  float32x4_t c0[kMr];
  float32x4_t c1[kMr];
  for (std::size_t i = 0; i < kMr; ++i) {
    c0[i] = vdupq_n_f32(0.0F);
    c1[i] = vdupq_n_f32(0.0F);
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float32x4_t b0 = vld1q_f32(bp + kk * kNr);
    const float32x4_t b1 = vld1q_f32(bp + kk * kNr + 4);
    const float* a = ap + kk * kMr;
    for (std::size_t i = 0; i < kMr; ++i) {
      // vmul + vadd, not vfmaq: same rounding as the scalar fallback.
      const float32x4_t ai = vdupq_n_f32(a[i]);
      c0[i] = vaddq_f32(c0[i], vmulq_f32(ai, b0));
      c1[i] = vaddq_f32(c1[i], vmulq_f32(ai, b1));
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    vst1q_f32(acc + i * kNr, c0[i]);
    vst1q_f32(acc + i * kNr + 4, c1[i]);
  }
}
#endif

using MicroFn = void (*)(std::size_t, const float*, const float*, float*);

MicroFn pick_micro(GemmKernel kernel) {
#if defined(__AVX2__)
  if (kernel == GemmKernel::kAuto) return micro_avx2;
#elif defined(__ARM_NEON)
  if (kernel == GemmKernel::kAuto) return micro_neon;
#endif
  (void)kernel;
  return micro_scalar;
}

// --- Shared epilogue -------------------------------------------------------
// Identical scalar code for every micro-kernel and the direct path, so the
// only per-ISA difference is the (bit-equal) panel accumulation above.

inline void store_tile(const float* acc, std::size_t acc_ld, float* c,
                       std::size_t ldc, std::size_t mb, std::size_t nb,
                       float alpha, float beta, bool first_panel) {
  for (std::size_t i = 0; i < mb; ++i) {
    const float* arow = acc + i * acc_ld;
    float* crow = c + i * ldc;
    if (!first_panel) {
      for (std::size_t j = 0; j < nb; ++j) crow[j] += alpha * arow[j];
    } else if (beta == 0.0F) {
      for (std::size_t j = 0; j < nb; ++j) crow[j] = alpha * arow[j];
    } else {
      for (std::size_t j = 0; j < nb; ++j) {
        crow[j] = alpha * arow[j] + beta * crow[j];
      }
    }
  }
}

// --- Small/direct path -----------------------------------------------------
// Requires k <= kKc so the single local accumulation per element is the
// same bracket the blocked path would produce. No packing, no allocation,
// no threading: callers in already-parallel regions hit this for the tiny
// transform-shaped GEMMs.

void sgemm_direct(std::size_t m, std::size_t n, std::size_t k, float alpha,
                  const float* a, std::size_t lda, const float* b,
                  std::size_t ldb, float beta, float* c, std::size_t ldc) {
  constexpr std::size_t kJb = 64;
  float acc[kJb];
  for (std::size_t j0 = 0; j0 < n; j0 += kJb) {
    const std::size_t nb = std::min(kJb, n - j0);
    for (std::size_t i = 0; i < m; ++i) {
      std::fill(acc, acc + nb, 0.0F);
      const float* arow = a + i * lda;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float ai = arow[kk];
        const float* brow = b + kk * ldb + j0;
        for (std::size_t j = 0; j < nb; ++j) acc[j] += ai * brow[j];
      }
      store_tile(acc, kJb, c + i * ldc + j0, ldc, 1, nb, alpha, beta,
                 /*first_panel=*/true);
    }
  }
}

// --- Blocked path ----------------------------------------------------------

void sgemm_blocked(std::size_t m, std::size_t n, std::size_t k, float alpha,
                   const float* a, std::size_t lda, const float* b,
                   std::size_t ldb, float beta, float* c, std::size_t ldc,
                   MicroFn micro) {
  const std::size_t ir_panels = (m + kMr - 1) / kMr;
  // Thread-local so the packing buffer is allocated once per thread and
  // reused across every blocked GEMM it issues (the hot-loop zero-alloc
  // contract); never nested on one thread (a nested sgemm would run inside
  // a parallel region and take the direct path). The local reference is
  // load-bearing: lambdas do not capture thread_locals, so pool workers
  // would otherwise resolve `bpack` to their own (empty) instance instead
  // of the submitting caller's buffer.
  static thread_local std::vector<float> bpack_tls;
  std::vector<float>& bpack = bpack_tls;
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    const std::size_t jr_panels = (nc + kNr - 1) / kNr;
    std::size_t panel_index = 0;
    for (std::size_t kb = 0; kb < k; kb += kKc, ++panel_index) {
      const std::size_t kc = std::min(kKc, k - kb);
      bpack.resize(jr_panels * kc * kNr);
      // Pack B(kb.., jc..) into NR-wide column panels, zero-padding the
      // ragged right edge (padded lanes are computed but never stored).
      // Pure copies, so the parallel split cannot affect values.
      parallel_for(jr_panels, [&](std::size_t pb, std::size_t pe) {
        for (std::size_t p = pb; p < pe; ++p) {
          float* dst = bpack.data() + p * kc * kNr;
          const std::size_t j0 = jc + p * kNr;
          const std::size_t nb = std::min(kNr, n - j0);
          for (std::size_t kk = 0; kk < kc; ++kk) {
            const float* src = b + (kb + kk) * ldb + j0;
            float* row = dst + kk * kNr;
            for (std::size_t j = 0; j < nb; ++j) row[j] = src[j];
            for (std::size_t j = nb; j < kNr; ++j) row[j] = 0.0F;
          }
        }
      });

      const bool first_panel = panel_index == 0;
      // Row-panels are independent outputs: the thread split varies with
      // the pool size but each panel's arithmetic does not, which is the
      // whole determinism argument.
      parallel_for(ir_panels, [&](std::size_t pb, std::size_t pe) {
        alignas(64) float apack[kMr * kKc];
        alignas(64) float acc[kMr * kNr];
        for (std::size_t p = pb; p < pe; ++p) {
          const std::size_t i0 = p * kMr;
          const std::size_t mb = std::min(kMr, m - i0);
          // Pack the A row-panel k-major (zero-padding short panels) so
          // the micro-kernel broadcasts walk contiguous memory.
          for (std::size_t kk = 0; kk < kc; ++kk) {
            float* dst = apack + kk * kMr;
            for (std::size_t i = 0; i < mb; ++i) {
              dst[i] = a[(i0 + i) * lda + kb + kk];
            }
            for (std::size_t i = mb; i < kMr; ++i) dst[i] = 0.0F;
          }
          for (std::size_t q = 0; q < jr_panels; ++q) {
            micro(kc, apack, bpack.data() + q * kc * kNr, acc);
            const std::size_t j0 = jc + q * kNr;
            const std::size_t nb = std::min(kNr, n - j0);
            store_tile(acc, kNr, c + i0 * ldc + j0, ldc, mb, nb, alpha,
                       beta, first_panel);
          }
        }
      });
    }
  }
}

}  // namespace

void sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
           const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float beta, float* c, std::size_t ldc, GemmKernel kernel) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0F) {
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      if (beta == 0.0F) {
        std::fill(crow, crow + n, 0.0F);
      } else {
        for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }
  if (k <= kKc && m * n * k <= kSmallMnk) {
    sgemm_direct(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  sgemm_blocked(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                pick_micro(kernel));
}

void sgemm_naive(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, std::size_t lda, const float* b,
                 std::size_t ldb, float beta, float* c, std::size_t ldc) {
  // Same degenerate-case semantics as sgemm (exact zeros, no -0.0F from
  // scaling a signed accumulator), so the bit-equality contract holds on
  // every path.
  if (k == 0 || alpha == 0.0F) {
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      if (beta == 0.0F) {
        std::fill(crow, crow + n, 0.0F);
      } else {
        for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a[i * lda + kk] * b[kk * ldb + j];
      }
      float* cj = c + i * ldc + j;
      *cj = beta == 0.0F ? alpha * acc : alpha * acc + beta * *cj;
    }
  }
}

void sgemm_batched(std::size_t count, std::size_t m, std::size_t n,
                   std::size_t k, float alpha, const float* a,
                   std::size_t lda, std::size_t stride_a, const float* b,
                   std::size_t ldb, std::size_t stride_b, float beta,
                   float* c, std::size_t ldc, std::size_t stride_c,
                   GemmKernel kernel) {
  if (count == 0) return;
  // Batch members are independent outputs; a nested sgemm runs its own
  // parallel_for inline, so each member is computed by the same sequential
  // code path no matter how the batch is split.
  parallel_for(count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t e = begin; e < end; ++e) {
      sgemm(m, n, k, alpha, a + e * stride_a, lda, b + e * stride_b, ldb,
            beta, c + e * stride_c, ldc, kernel);
    }
  });
}

const char* sgemm_kernel_name() {
#if defined(__AVX2__)
  return "avx2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

GemmBlocking sgemm_blocking() { return {kMr, kNr, kKc, kNc}; }

}  // namespace wino::runtime
