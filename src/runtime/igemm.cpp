#include "runtime/igemm.hpp"

#include <stdexcept>

#include "runtime/thread_pool.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#define WINO_IGEMM_AVX2 1
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define WINO_IGEMM_SSE2 1
#endif

namespace wino::runtime {
namespace {

// Widening scalar dot product: the reference semantics every SIMD kernel
// must reproduce bit-for-bit (trivial here — integer accumulation is
// exact, so there is nothing order-sensitive to reproduce).
inline std::int32_t dot_scalar(const std::int8_t* a, const std::int8_t* b,
                               std::size_t k) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

#if defined(WINO_IGEMM_AVX2)

inline std::int32_t dot_simd(const std::int8_t* a, const std::int8_t* b,
                             std::size_t k) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= k; i += 16) {
    // Sign-extend 16 int8 lanes to int16, then pmaddwd: each pair of
    // adjacent int16 products sums into one int32 lane — exact, since
    // 2 * 127 * 127 is far below 2^31.
    const __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i sum = _mm_add_epi32(lo, hi);
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  std::int32_t total = _mm_cvtsi128_si32(sum);
  for (; i < k; ++i) {
    total += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return total;
}

const char* const kKernelName = "avx2";

#elif defined(WINO_IGEMM_SSE2)

// SSE2 has no byte sign-extension instruction; interleave the vector with
// itself and arithmetic-shift each 16-bit lane right by 8 — the classic
// pre-SSE4.1 sign-extend.
inline std::int32_t dot_simd(const std::int8_t* a, const std::int8_t* b,
                             std::size_t k) {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i va_lo = _mm_srai_epi16(_mm_unpacklo_epi8(va, va), 8);
    const __m128i va_hi = _mm_srai_epi16(_mm_unpackhi_epi8(va, va), 8);
    const __m128i vb_lo = _mm_srai_epi16(_mm_unpacklo_epi8(vb, vb), 8);
    const __m128i vb_hi = _mm_srai_epi16(_mm_unpackhi_epi8(vb, vb), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(va_lo, vb_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(va_hi, vb_hi));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  std::int32_t total = _mm_cvtsi128_si32(acc);
  for (; i < k; ++i) {
    total += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return total;
}

const char* const kKernelName = "sse2";

#else

inline std::int32_t dot_simd(const std::int8_t* a, const std::int8_t* b,
                             std::size_t k) {
  return dot_scalar(a, b, k);
}

const char* const kKernelName = "scalar";

#endif

}  // namespace

void igemm_nt(std::size_t m, std::size_t n, std::size_t k,
              const std::int8_t* a, std::size_t lda, const std::int8_t* b,
              std::size_t ldb, std::int32_t* c, std::size_t ldc,
              IGemmKernel kernel) {
  if (k > kMaxInner) {
    throw std::invalid_argument(
        "igemm_nt: reduction depth exceeds the int32 exactness bound");
  }
  if (m == 0 || n == 0) return;
  // Columns are the large dimension in the im2col shape (output pixels);
  // splitting them keeps every thread's writes disjoint and leaves the
  // K reduction whole.
  parallel_for(n, [&](std::size_t col_begin, std::size_t col_end) {
    for (std::size_t i = 0; i < m; ++i) {
      const std::int8_t* arow = a + i * lda;
      std::int32_t* crow = c + i * ldc;
      if (kernel == IGemmKernel::kScalar) {
        for (std::size_t j = col_begin; j < col_end; ++j) {
          crow[j] = dot_scalar(arow, b + j * ldb, k);
        }
      } else {
        for (std::size_t j = col_begin; j < col_end; ++j) {
          crow[j] = dot_simd(arow, b + j * ldb, k);
        }
      }
    }
  });
}

void igemm_nt_ref(std::size_t m, std::size_t n, std::size_t k,
                  const std::int8_t* a, std::size_t lda, const std::int8_t* b,
                  std::size_t ldb, std::int32_t* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      c[i * ldc + j] = dot_scalar(a + i * lda, b + j * ldb, k);
    }
  }
}

const char* igemm_kernel_name() { return kKernelName; }

}  // namespace wino::runtime
