// Int8 symmetric-quantized convolution execution.
//
// The runtime half of the paper's complexity-vs-error trade: weights carry
// per-output-channel scales (computed once at model registration),
// activations carry one per-tensor scale (static, from calibration — or
// derived per image when no calibration exists), and the convolution
// reduces in exact int32 arithmetic before one dequantizing multiply per
// output element. Two forms exist:
//
//  * im2col form — lower the patch matrix in fp32, quantize it K-contiguous
//    and run the int8 GEMM (runtime/igemm.hpp).
//  * Winograd form — pre-transform the filter bank (V = G g G^T) and
//    quantize it in the TRANSFORM domain; per tile, transform the data in
//    fp32 (U = B^T d B), quantize U, reduce over channels in int32,
//    dequantize, and apply the fp32 inverse transform A^T M A. Only the
//    channel reduction — the O(C) hot loop — runs in int8; the transforms
//    (O(1) per tile) stay fp32, so quantization error does not compound
//    through B^T/A^T. Whether a given F(m, 3) is safe at a layer's dynamic
//    range is winograd::ErrorModel's call (see nn::predict_layer_rel_error
//    and docs/QUANTIZATION.md).
//
// Determinism: every step is either exact integer arithmetic or fp32 ops
// applied per-image / per-tile in a fixed order, and activation scales
// depend only on calibration constants (or on the single image being
// convolved) — never on batch composition or thread count. Outputs are
// bit-identical across batch sizes, thread counts and ISAs (pinned by
// tests/quant_plan_test.cpp and tests/runtime_igemm_test.cpp).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "winograd/kernels.hpp"

namespace wino::quant {

/// Round-to-nearest-even symmetric int8 quantization of one value.
/// `inv_scale` is 1 / scale (pass 0 to map everything to 0, the convention
/// for all-zero operands). Inputs are assumed finite — the quantized paths
/// quantize activations the fp32 path produced, which the runtime keeps
/// finite. Saturates to [-127, 127] (the symmetric grid; -128 is unused so
/// negation stays closed).
inline std::int8_t quantize_symmetric(float v, float inv_scale) {
  const float scaled = std::nearbyint(v * inv_scale);
  const float clamped = scaled < -127.0F ? -127.0F
                        : scaled > 127.0F ? 127.0F
                                          : scaled;
  return static_cast<std::int8_t>(clamped);
}

/// Symmetric scale for a tensor slice: max|v| / 127, or 0 for an all-zero
/// slice (its quantized form is all zeros and dequantizes exactly).
[[nodiscard]] float symmetric_scale(std::span<const float> values);

/// Spatial-domain quantized filter bank for the im2col form: kernel k's
/// weights as int8 rows of length C*r*r (matching the patch matrix's
/// K-contiguous layout) with a per-output-channel scale.
struct QuantizedFilter {
  std::vector<std::int8_t> data;  ///< [k][c*r*r], K-contiguous rows
  std::vector<float> scale;       ///< per output channel: max|w_k| / 127
  std::size_t kernels = 0;        ///< output channels K
  std::size_t channels = 0;       ///< input channels C
  std::size_t r = 0;              ///< kernel edge

  /// Reduction depth of one output element (the GEMM inner dimension).
  [[nodiscard]] std::size_t inner() const { return channels * r * r; }
};

/// Quantize a KCrr kernel bank for the im2col form. Scales are
/// per-output-channel (each kernel's dynamic range is independent; a
/// shared scale would waste grid resolution on small-norm channels).
[[nodiscard]] QuantizedFilter quantize_filters(
    const tensor::Tensor4f& kernels);

/// Transform-domain quantized filter bank for the Winograd form: V tiles
/// (G g G^T, computed in fp32) quantized per (output channel, tile
/// position). The channel reduction sums across c at a fixed position, so
/// each of the n*n positions can carry its own scale — essential because
/// the transform's Vandermonde structure spreads position magnitudes over
/// orders of magnitude, and one shared scale would starve the small
/// positions of quantization levels.
struct QuantizedWinogradKernels {
  std::vector<std::int8_t> data;  ///< [k][c][n*n] quantized V tiles
  std::vector<std::int8_t> pos;   ///< [k][n*n][c], same values re-ordered
  std::vector<float> scale;       ///< [k][n*n]: max_c |V_kc[i]| / 127
  std::size_t kernels = 0;        ///< output channels K
  std::size_t channels = 0;       ///< input channels C
  std::size_t tile_sq = 0;        ///< (m + r - 1)^2 values per tile

  /// Position-major view: all C channels of tile position `i` for kernel
  /// k, contiguous in c — streamed by the fused block executor's int32
  /// coordinate GEMM (see conv2d_winograd_int8_into).
  [[nodiscard]] std::span<const std::int8_t> v_pos(std::size_t k,
                                                   std::size_t i) const {
    return {pos.data() + (k * tile_sq + i) * channels, channels};
  }
};

/// Pre-transform and quantize a KCrr kernel bank for F(m x m, r x r) under
/// `xf`. Computed once per (weights version, layer, m) and cached by the
/// nn executor alongside the fp32 transform cache.
[[nodiscard]] QuantizedWinogradKernels quantize_winograd_kernels(
    const winograd::TileTransformer& xf, const tensor::Tensor4f& kernels);

/// Caller-provided scratch for conv2d_im2col_int8_into; carved from the
/// workspace slab by nn::carve_quant_im2col_scratch. Extents are validated
/// at entry (the single point keeping carver and consumer in sync).
struct QuantIm2colScratch {
  std::span<float> panel;         ///< inner x cols fp32 patch matrix
  std::span<std::int8_t> qpanel;  ///< cols x inner quantized transpose
  std::span<std::int32_t> acc;    ///< kernels x cols int32 GEMM output
};

/// Caller-provided scratch for conv2d_winograd_int8_into; carved by
/// nn::carve_quant_winograd_scratch. Extents validated at entry.
///
/// Mirrors winograd::WinogradScratch's two executor modes:
///  - per-tile: u_all / sv / uq_all / acc populated, blocked spans empty;
///  - fused tile-block pipeline: u_blk [n*n][C][B] fp32 bank, sv_blk
///    [n*n][B] per-position scales, uq_blk [n*n][C][B] quantized bank,
///    acc_blk [n*n][B] int32 accumulators (B = u_blk.size() / (C * n*n)
///    >= 2) — the per-tile spans must then be empty, and m_f doubles as
///    the transform staging / dequantized gather tile. Every per-tile
///    quantity (pos_max, sv, quantized values, int32 sums, dequant
///    products) depends only on that tile's own data, so the blocked walk
///    is bit-identical to the per-tile walk.
struct QuantWinogradScratch {
  std::span<float> d;             ///< n*n gathered input tile
  std::span<float> u_all;         ///< C * n*n fp32 transformed tiles
  std::span<float> sv;            ///< n*n per-position data scales
  std::span<std::int8_t> uq_all;  ///< C * n*n quantized transform tiles
  std::span<std::int32_t> acc;    ///< n*n int32 channel accumulator
  std::span<float> u_blk;           ///< [n*n][C][B] fp32 bank (fused)
  std::span<float> sv_blk;          ///< [n*n][B] data scales (fused)
  std::span<std::int8_t> uq_blk;    ///< [n*n][C][B] quantized bank (fused)
  std::span<std::int32_t> acc_blk;  ///< [n*n][B] accumulators (fused)
  std::span<float> m_f;           ///< n*n dequantized transform tile
  std::span<float> y;             ///< m*m inverse-transformed tile
};

/// \brief Allocation-free int8 im2col convolution over an NCHW batch view.
///
/// Per image: fp32 im2col lowering, transpose-quantize at the activation
/// scale, exact int8 GEMM against `qf`, per-output-channel dequantize into
/// `out` (NCHW), optionally fusing ReLU into the dequantizing store.
///
/// \param input     NCHW batch view (any n).
/// \param qf        quantized filter bank matching the input's channels.
/// \param pad       symmetric zero padding (stride is 1).
/// \param act_scale static per-tensor activation scale (max|x| / 127 from
///                  calibration); <= 0 derives the scale per image from
///                  that image's max|x| — still batch- and thread-
///                  deterministic, since it depends on one image only.
/// \param fuse_relu fold max(x, 0) into the dequantizing store.
/// \param out       NCHW output span, n * K * outH * outW floats.
/// \param scratch   spans sized per QuantIm2colScratch (validated).
void conv2d_im2col_int8_into(const tensor::Tensor4fView& input,
                             const QuantizedFilter& qf, int pad,
                             float act_scale, bool fuse_relu,
                             std::span<float> out,
                             const QuantIm2colScratch& scratch);

/// \brief Allocation-free int8 Winograd convolution over an NCHW batch
/// view (tile edge and r fixed by `xf`; input/output are NCHW — the
/// quantized path does not participate in tile-form handoffs).
///
/// Per output tile: fp32 data transform for every channel, then one scale
/// per tile position from the observed max across channels (the channel
/// reduction sums across c at a fixed position, so only c must share a
/// scale), int8 quantize, int32 channel reduction against `qk`,
/// per-position dequantize (sv[i] * qk.scale[k][i]), fp32 inverse
/// transform, bounds-checked scatter (optionally fusing ReLU). The
/// per-position scales track the transform's position-dependent dynamic
/// range; a single worst-case ||B^T||_inf^2 scale would leave F(4x4, 3x3)
/// only a few of the 127 levels at most positions.
///
/// \param input     NCHW batch view (any n).
/// \param qk        transform-domain bank built by quantize_winograd_kernels
///                  with a transformer equivalent to `xf`.
/// \param xf        the F(m x m, r x r) transformer.
/// \param pad       symmetric zero padding (stride is 1).
/// \param act_scale accepted for run_conv signature symmetry; the Winograd
///                  form self-calibrates per tile position and ignores it
///                  (the result is deterministic either way).
/// \param fuse_relu fold max(x, 0) into the output scatter.
/// \param out       NCHW output span, n * K * outH * outW floats.
/// \param scratch   spans sized per QuantWinogradScratch (validated).
void conv2d_winograd_int8_into(const tensor::Tensor4fView& input,
                               const QuantizedWinogradKernels& qk,
                               const winograd::TileTransformer& xf, int pad,
                               float act_scale, bool fuse_relu,
                               std::span<float> out,
                               const QuantWinogradScratch& scratch);

/// Allocating im2col-form wrapper (no fused ReLU): quantizes `kernels`,
/// allocates scratch and delegates to conv2d_im2col_int8_into — the two
/// cannot diverge numerically. \see conv2d_im2col_int8_into for act_scale.
[[nodiscard]] tensor::Tensor4f conv2d_im2col_int8(
    const tensor::Tensor4f& input, const tensor::Tensor4f& kernels, int pad,
    float act_scale = 0.0F);

/// As above with a prequantized bank (the executor/measurement path —
/// filter quantization priced once, not per call).
[[nodiscard]] tensor::Tensor4f conv2d_im2col_int8(
    const tensor::Tensor4f& input, const QuantizedFilter& qf, int pad,
    float act_scale = 0.0F);

/// Allocating Winograd-form wrapper (no fused ReLU) for F(m x m, 3 x 3).
/// \see conv2d_winograd_int8_into for act_scale semantics.
[[nodiscard]] tensor::Tensor4f conv2d_winograd_int8(
    const tensor::Tensor4f& input, const tensor::Tensor4f& kernels, int m,
    int pad, float act_scale = 0.0F);

/// As above with a prequantized transform-domain bank and transformer.
[[nodiscard]] tensor::Tensor4f conv2d_winograd_int8(
    const tensor::Tensor4f& input, const QuantizedWinogradKernels& qk,
    const winograd::TileTransformer& xf, int pad, float act_scale = 0.0F);

}  // namespace wino::quant
