#include "quant/int8.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "conv/im2col.hpp"
#include "runtime/igemm.hpp"

namespace wino::quant {
namespace {

// Largest |v| over a span; the numerator of every symmetric scale.
float span_max_abs(std::span<const float> values) {
  float worst = 0.0F;
  for (const float v : values) {
    const float m = v < 0.0F ? -v : v;
    if (m > worst) worst = m;
  }
  return worst;
}

void check_span(std::size_t got, std::size_t want, const char* name) {
  if (got != want) {
    throw std::invalid_argument(std::string("quant scratch span '") + name +
                                "': got " + std::to_string(got) +
                                " elements, need " + std::to_string(want));
  }
}

// Activation scale for one image: the static calibration scale when
// provided, else this image's own max|x| / 127. Never depends on other
// batch members, so batching cannot perturb results.
float image_act_scale(float act_scale, std::span<const float> image) {
  if (act_scale > 0.0F) return act_scale;
  return span_max_abs(image) / 127.0F;
}

}  // namespace

float symmetric_scale(std::span<const float> values) {
  return span_max_abs(values) / 127.0F;
}

QuantizedFilter quantize_filters(const tensor::Tensor4f& kernels) {
  const auto& ks = kernels.shape();
  QuantizedFilter qf;
  qf.kernels = ks.n;
  qf.channels = ks.c;
  qf.r = ks.h;
  if (ks.h != ks.w) {
    throw std::invalid_argument("quantize_filters: non-square kernels");
  }
  const std::size_t inner = qf.inner();
  qf.data.resize(qf.kernels * inner);
  qf.scale.resize(qf.kernels);
  const auto flat = kernels.flat();
  for (std::size_t k = 0; k < qf.kernels; ++k) {
    const auto row = flat.subspan(k * inner, inner);
    const float scale = symmetric_scale(row);
    qf.scale[k] = scale;
    const float inv = scale > 0.0F ? 1.0F / scale : 0.0F;
    for (std::size_t i = 0; i < inner; ++i) {
      qf.data[k * inner + i] = quantize_symmetric(row[i], inv);
    }
  }
  return qf;
}

QuantizedWinogradKernels quantize_winograd_kernels(
    const winograd::TileTransformer& xf, const tensor::Tensor4f& kernels) {
  const auto& ks = kernels.shape();
  if (ks.h != ks.w || static_cast<int>(ks.h) != xf.r()) {
    throw std::invalid_argument(
        "quantize_winograd_kernels: kernel size does not match transformer");
  }
  const std::size_t n_tile = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n_tile * n_tile;
  const std::size_t rsq = ks.h * ks.w;
  QuantizedWinogradKernels qk;
  qk.kernels = ks.n;
  qk.channels = ks.c;
  qk.tile_sq = nsq;
  qk.data.resize(qk.kernels * qk.channels * nsq);
  qk.scale.resize(qk.kernels * nsq);

  // Transform the whole bank in fp32 first, then pick one scale per
  // (output channel, tile position) over that position's C values: the
  // channel reduction sums across c at a fixed position, so only the c
  // axis must share a scale for the int32 sum to dequantize with a single
  // multiply — and per-position scales absorb the transform's
  // position-magnitude disparity.
  std::vector<float> v_bank(qk.kernels * qk.channels * nsq);
  const auto flat = kernels.flat();
  for (std::size_t k = 0; k < qk.kernels; ++k) {
    for (std::size_t c = 0; c < qk.channels; ++c) {
      xf.transform_filter(
          flat.subspan((k * qk.channels + c) * rsq, rsq),
          std::span<float>(v_bank.data() + (k * qk.channels + c) * nsq, nsq));
    }
  }
  for (std::size_t k = 0; k < qk.kernels; ++k) {
    const float* kbase = v_bank.data() + k * qk.channels * nsq;
    for (std::size_t i = 0; i < nsq; ++i) {
      float pos_max = 0.0F;
      for (std::size_t c = 0; c < qk.channels; ++c) {
        pos_max = std::max(pos_max, std::abs(kbase[c * nsq + i]));
      }
      const float scale = pos_max / 127.0F;
      qk.scale[k * nsq + i] = scale;
      const float inv = scale > 0.0F ? 1.0F / scale : 0.0F;
      for (std::size_t c = 0; c < qk.channels; ++c) {
        qk.data[(k * qk.channels + c) * nsq + i] =
            quantize_symmetric(kbase[c * nsq + i], inv);
      }
    }
  }
  qk.pos.resize(qk.data.size());
  for (std::size_t k = 0; k < qk.kernels; ++k) {
    for (std::size_t c = 0; c < qk.channels; ++c) {
      const std::int8_t* v_kc = qk.data.data() + (k * qk.channels + c) * nsq;
      for (std::size_t i = 0; i < nsq; ++i) {
        qk.pos[(k * nsq + i) * qk.channels + c] = v_kc[i];
      }
    }
  }
  return qk;
}

void conv2d_im2col_int8_into(const tensor::Tensor4fView& input,
                             const QuantizedFilter& qf, int pad,
                             float act_scale, bool fuse_relu,
                             std::span<float> out,
                             const QuantIm2colScratch& scratch) {
  const auto& is = input.shape();
  if (is.c != qf.channels) {
    throw std::invalid_argument("conv2d_im2col_int8: channel mismatch");
  }
  const std::size_t r = qf.r;
  const std::size_t oh = is.h + 2 * static_cast<std::size_t>(pad) - r + 1;
  const std::size_t ow = is.w + 2 * static_cast<std::size_t>(pad) - r + 1;
  const std::size_t cols = oh * ow;
  const std::size_t inner = qf.inner();
  check_span(scratch.panel.size(), inner * cols, "panel");
  check_span(scratch.qpanel.size(), cols * inner, "qpanel");
  check_span(scratch.acc.size(), qf.kernels * cols, "acc");
  check_span(out.size(), is.n * qf.kernels * cols, "out");

  const std::size_t image_volume = is.c * is.h * is.w;
  for (std::size_t img = 0; img < is.n; ++img) {
    conv::im2col(input, img, r, pad, pad, 1, scratch.panel);
    const float a_scale =
        image_act_scale(act_scale, input.flat().subspan(img * image_volume,
                                                        image_volume));
    const float inv = a_scale > 0.0F ? 1.0F / a_scale : 0.0F;
    // Transpose while quantizing: the panel is (inner x cols) but the
    // GEMM wants K-contiguous rows per output pixel.
    for (std::size_t j = 0; j < cols; ++j) {
      std::int8_t* qrow = scratch.qpanel.data() + j * inner;
      for (std::size_t kk = 0; kk < inner; ++kk) {
        qrow[kk] = quantize_symmetric(scratch.panel[kk * cols + j], inv);
      }
    }
    runtime::igemm_nt(qf.kernels, cols, inner, qf.data.data(), inner,
                      scratch.qpanel.data(), inner, scratch.acc.data(), cols);
    float* obase = out.data() + img * qf.kernels * cols;
    for (std::size_t k = 0; k < qf.kernels; ++k) {
      const float deq = qf.scale[k] * a_scale;
      const std::int32_t* arow = scratch.acc.data() + k * cols;
      float* orow = obase + k * cols;
      if (fuse_relu) {
        for (std::size_t j = 0; j < cols; ++j) {
          const float v = static_cast<float>(arow[j]) * deq;
          orow[j] = v > 0.0F ? v : 0.0F;
        }
      } else {
        for (std::size_t j = 0; j < cols; ++j) {
          orow[j] = static_cast<float>(arow[j]) * deq;
        }
      }
    }
  }
}

void conv2d_winograd_int8_into(const tensor::Tensor4fView& input,
                               const QuantizedWinogradKernels& qk,
                               const winograd::TileTransformer& xf, int pad,
                               float act_scale, bool fuse_relu,
                               std::span<float> out,
                               const QuantWinogradScratch& scratch) {
  const auto& is = input.shape();
  if (is.c != qk.channels) {
    throw std::invalid_argument("conv2d_winograd_int8: channel mismatch");
  }
  const std::size_t m = static_cast<std::size_t>(xf.m());
  const std::size_t r = static_cast<std::size_t>(xf.r());
  const std::size_t n_tile = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n_tile * n_tile;
  const std::size_t msq = m * m;
  if (nsq != qk.tile_sq) {
    throw std::invalid_argument(
        "conv2d_winograd_int8: bank tile area does not match transformer");
  }
  const std::size_t oh = is.h + 2 * static_cast<std::size_t>(pad) - r + 1;
  const std::size_t ow = is.w + 2 * static_cast<std::size_t>(pad) - r + 1;
  const std::size_t tiles_y = (oh + m - 1) / m;
  const std::size_t tiles_x = (ow + m - 1) / m;
  check_span(scratch.d.size(), nsq, "d");
  check_span(scratch.m_f.size(), nsq, "m_f");
  check_span(scratch.y.size(), msq, "y");
  check_span(out.size(), is.n * qk.kernels * oh * ow, "out");
  std::size_t block = 0;  // fused block size, 0 = per-tile walk
  if (scratch.u_blk.empty()) {
    check_span(scratch.u_all.size(), is.c * nsq, "u_all");
    check_span(scratch.sv.size(), nsq, "sv");
    check_span(scratch.uq_all.size(), is.c * nsq, "uq_all");
    check_span(scratch.acc.size(), nsq, "acc");
  } else {
    block = scratch.u_blk.size() / (is.c * nsq);
    if (block < 2 || !scratch.u_all.empty() || !scratch.sv.empty() ||
        !scratch.uq_all.empty() || !scratch.acc.empty()) {
      throw std::invalid_argument(
          "conv2d_winograd_int8: blocked scratch must replace the per-tile "
          "bank with B >= 2 columns");
    }
    check_span(scratch.u_blk.size(), is.c * nsq * block, "u_blk");
    check_span(scratch.sv_blk.size(), nsq * block, "sv_blk");
    check_span(scratch.uq_blk.size(), is.c * nsq * block, "uq_blk");
    check_span(scratch.acc_blk.size(), nsq * block, "acc_blk");
  }

  // The Winograd form self-calibrates in the transform domain: each tile
  // position takes its scale from the observed max across channels (the
  // channel reduction demands the c axis share a scale, nothing more) —
  // per-image/per-tile deterministic, so thread bit-identity is free. The
  // static act_scale is for the spatial-domain forms; ignore it here.
  (void)act_scale;

  // Gather one channel of the tile at (ty, tx) into scratch.d.
  const auto gather = [&](std::size_t img, std::size_t c, std::size_t ty,
                          std::size_t tx) {
    const std::ptrdiff_t base_h = static_cast<std::ptrdiff_t>(ty * m) - pad;
    const std::ptrdiff_t base_w = static_cast<std::ptrdiff_t>(tx * m) - pad;
    for (std::size_t i = 0; i < n_tile; ++i) {
      for (std::size_t j = 0; j < n_tile; ++j) {
        scratch.d[i * n_tile + j] =
            input.padded(img, c, base_h + static_cast<std::ptrdiff_t>(i),
                         base_w + static_cast<std::ptrdiff_t>(j));
      }
    }
  };
  // Inverse-transform scratch.m_f and scatter kernel k's tile at (ty, tx).
  const auto finish_tile = [&](float* obase, std::size_t k, std::size_t ty,
                               std::size_t tx) {
    xf.inverse(scratch.m_f, scratch.y);
    float* oplane = obase + k * oh * ow;
    const std::size_t lim_h = std::min(m, oh - ty * m);
    const std::size_t lim_w = std::min(m, ow - tx * m);
    for (std::size_t i = 0; i < lim_h; ++i) {
      for (std::size_t j = 0; j < lim_w; ++j) {
        float v = scratch.y[i * m + j];
        if (fuse_relu && v < 0.0F) v = 0.0F;
        oplane[(ty * m + i) * ow + tx * m + j] = v;
      }
    }
  };

  if (block == 0) {
    for (std::size_t img = 0; img < is.n; ++img) {
      float* obase = out.data() + img * qk.kernels * oh * ow;
      for (std::size_t ty = 0; ty < tiles_y; ++ty) {
        for (std::size_t tx = 0; tx < tiles_x; ++tx) {
          for (std::size_t c = 0; c < is.c; ++c) {
            gather(img, c, ty, tx);
            xf.transform_data(scratch.d,
                              scratch.u_all.subspan(c * nsq, nsq));
          }
          for (std::size_t i = 0; i < nsq; ++i) {
            float pos_max = 0.0F;
            for (std::size_t c = 0; c < is.c; ++c) {
              pos_max =
                  std::max(pos_max, std::abs(scratch.u_all[c * nsq + i]));
            }
            scratch.sv[i] = pos_max / 127.0F;
            const float inv = pos_max > 0.0F ? 127.0F / pos_max : 0.0F;
            for (std::size_t c = 0; c < is.c; ++c) {
              scratch.uq_all[c * nsq + i] =
                  quantize_symmetric(scratch.u_all[c * nsq + i], inv);
            }
          }
          for (std::size_t k = 0; k < qk.kernels; ++k) {
            std::fill(scratch.acc.begin(), scratch.acc.end(), 0);
            const std::int8_t* vbase =
                qk.data.data() + k * qk.channels * nsq;
            for (std::size_t c = 0; c < is.c; ++c) {
              const std::int8_t* uq = scratch.uq_all.data() + c * nsq;
              const std::int8_t* vq = vbase + c * nsq;
              for (std::size_t i = 0; i < nsq; ++i) {
                scratch.acc[i] += static_cast<std::int32_t>(uq[i]) *
                                  static_cast<std::int32_t>(vq[i]);
              }
            }
            const float* kscale = qk.scale.data() + k * nsq;
            for (std::size_t i = 0; i < nsq; ++i) {
              scratch.m_f[i] = static_cast<float>(scratch.acc[i]) *
                               (kscale[i] * scratch.sv[i]);
            }
            finish_tile(obase, k, ty, tx);
          }
        }
      }
    }
    return;
  }

  // Fused tile-block pipeline (see winograd::run_columns_fused for the
  // fp32 analogue): per block of B tiles, transform + self-calibrate +
  // quantize into the [n*n][C][B] banks, run one int32 coordinate GEMM
  // per (kernel, position) over the block's columns, then dequantize /
  // inverse / scatter per tile. Every per-tile quantity is computed from
  // that tile's own data by the same fp32 expressions (and the reduction
  // is exact int32), so the result is bit-identical to the per-tile walk.
  const std::size_t B = block;
  const std::size_t C = is.c;
  const std::size_t tiles_total = tiles_y * tiles_x;
  for (std::size_t img = 0; img < is.n; ++img) {
    float* obase = out.data() + img * qk.kernels * oh * ow;
    for (std::size_t base = 0; base < tiles_total; base += B) {
      const std::size_t bcols = std::min(B, tiles_total - base);
      for (std::size_t t = 0; t < bcols; ++t) {
        const std::size_t ty = (base + t) / tiles_x;
        const std::size_t tx = (base + t) % tiles_x;
        for (std::size_t c = 0; c < C; ++c) {
          gather(img, c, ty, tx);
          xf.transform_data(scratch.d, scratch.m_f);
          float* lane = scratch.u_blk.data() + c * B + t;
          for (std::size_t i = 0; i < nsq; ++i) {
            lane[i * C * B] = scratch.m_f[i];
          }
        }
      }
      for (std::size_t i = 0; i < nsq; ++i) {
        const float* ue = scratch.u_blk.data() + i * C * B;
        std::int8_t* qe = scratch.uq_blk.data() + i * C * B;
        float* sve = scratch.sv_blk.data() + i * B;
        for (std::size_t t = 0; t < bcols; ++t) {
          float pos_max = 0.0F;
          for (std::size_t c = 0; c < C; ++c) {
            pos_max = std::max(pos_max, std::abs(ue[c * B + t]));
          }
          sve[t] = pos_max / 127.0F;
          const float inv = pos_max > 0.0F ? 127.0F / pos_max : 0.0F;
          for (std::size_t c = 0; c < C; ++c) {
            qe[c * B + t] = quantize_symmetric(ue[c * B + t], inv);
          }
        }
      }
      for (std::size_t k = 0; k < qk.kernels; ++k) {
        constexpr std::size_t kRegCols = 8;
        for (std::size_t i = 0; i < nsq; ++i) {
          const std::int8_t* vp = qk.v_pos(k, i).data();
          const std::int8_t* qe = scratch.uq_blk.data() + i * C * B;
          std::int32_t* accrow = scratch.acc_blk.data() + i * B;
          std::size_t t = 0;
          for (; t + kRegCols <= bcols; t += kRegCols) {
            std::int32_t acc[kRegCols] = {};
            for (std::size_t c = 0; c < C; ++c) {
              const auto vv = static_cast<std::int32_t>(vp[c]);
              const std::int8_t* up = qe + c * B + t;
              for (std::size_t j = 0; j < kRegCols; ++j) {
                acc[j] += static_cast<std::int32_t>(up[j]) * vv;
              }
            }
            for (std::size_t j = 0; j < kRegCols; ++j) accrow[t + j] = acc[j];
          }
          for (; t < bcols; ++t) {
            std::int32_t a = 0;
            for (std::size_t c = 0; c < C; ++c) {
              a += static_cast<std::int32_t>(qe[c * B + t]) *
                   static_cast<std::int32_t>(vp[c]);
            }
            accrow[t] = a;
          }
        }
        const float* kscale = qk.scale.data() + k * nsq;
        for (std::size_t t = 0; t < bcols; ++t) {
          const std::size_t ty = (base + t) / tiles_x;
          const std::size_t tx = (base + t) % tiles_x;
          for (std::size_t i = 0; i < nsq; ++i) {
            scratch.m_f[i] = static_cast<float>(scratch.acc_blk[i * B + t]) *
                             (kscale[i] * scratch.sv_blk[i * B + t]);
          }
          finish_tile(obase, k, ty, tx);
        }
      }
    }
  }
}

namespace {

// Shared allocating-path scratch setup so the wrappers stay thin and the
// _into cores remain the single numerical definition.
tensor::Tensor4f run_im2col_int8(const tensor::Tensor4f& input,
                                 const QuantizedFilter& qf, int pad,
                                 float act_scale) {
  const auto& is = input.shape();
  const std::size_t oh = is.h + 2 * static_cast<std::size_t>(pad) - qf.r + 1;
  const std::size_t ow = is.w + 2 * static_cast<std::size_t>(pad) - qf.r + 1;
  const std::size_t cols = oh * ow;
  const std::size_t inner = qf.inner();
  std::vector<float> panel(inner * cols);
  std::vector<std::int8_t> qpanel(cols * inner);
  std::vector<std::int32_t> acc(qf.kernels * cols);
  tensor::Tensor4f out(is.n, qf.kernels, oh, ow);
  conv2d_im2col_int8_into(
      tensor::Tensor4fView(is, input.flat()), qf, pad, act_scale,
      /*fuse_relu=*/false, out.flat(),
      QuantIm2colScratch{panel, qpanel, acc});
  return out;
}

tensor::Tensor4f run_winograd_int8(const tensor::Tensor4f& input,
                                   const QuantizedWinogradKernels& qk,
                                   const winograd::TileTransformer& xf,
                                   int pad, float act_scale) {
  const auto& is = input.shape();
  const std::size_t r = static_cast<std::size_t>(xf.r());
  const std::size_t n_tile = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n_tile * n_tile;
  const std::size_t msq = static_cast<std::size_t>(xf.m() * xf.m());
  const std::size_t oh = is.h + 2 * static_cast<std::size_t>(pad) - r + 1;
  const std::size_t ow = is.w + 2 * static_cast<std::size_t>(pad) - r + 1;
  std::vector<float> d(nsq);
  std::vector<float> u_all(is.c * nsq);
  std::vector<float> sv(nsq);
  std::vector<std::int8_t> uq_all(is.c * nsq);
  std::vector<std::int32_t> acc(nsq);
  std::vector<float> m_f(nsq);
  std::vector<float> y(msq);
  tensor::Tensor4f out(is.n, qk.kernels, oh, ow);
  conv2d_winograd_int8_into(
      tensor::Tensor4fView(is, input.flat()), qk, xf, pad, act_scale,
      /*fuse_relu=*/false, out.flat(),
      QuantWinogradScratch{.d = d,
                           .u_all = u_all,
                           .sv = sv,
                           .uq_all = uq_all,
                           .acc = acc,
                           .u_blk = {},
                           .sv_blk = {},
                           .uq_blk = {},
                           .acc_blk = {},
                           .m_f = m_f,
                           .y = y});
  return out;
}

}  // namespace

tensor::Tensor4f conv2d_im2col_int8(const tensor::Tensor4f& input,
                                    const tensor::Tensor4f& kernels, int pad,
                                    float act_scale) {
  return run_im2col_int8(input, quantize_filters(kernels), pad, act_scale);
}

tensor::Tensor4f conv2d_im2col_int8(const tensor::Tensor4f& input,
                                    const QuantizedFilter& qf, int pad,
                                    float act_scale) {
  return run_im2col_int8(input, qf, pad, act_scale);
}

tensor::Tensor4f conv2d_winograd_int8(const tensor::Tensor4f& input,
                                      const tensor::Tensor4f& kernels, int m,
                                      int pad, float act_scale) {
  const winograd::TileTransformer xf(
      winograd::transforms(m, static_cast<int>(kernels.shape().h)));
  return run_winograd_int8(input, quantize_winograd_kernels(xf, kernels), xf,
                           pad, act_scale);
}

tensor::Tensor4f conv2d_winograd_int8(const tensor::Tensor4f& input,
                                      const QuantizedWinogradKernels& qk,
                                      const winograd::TileTransformer& xf,
                                      int pad, float act_scale) {
  return run_winograd_int8(input, qk, xf, pad, act_scale);
}

}  // namespace wino::quant
