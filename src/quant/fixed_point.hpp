// Fixed-point datapath simulation for the Winograd engine.
//
// The paper uses fp32 "without any quantization scheme for the sake of
// simplicity and high precision" (Section IV); real deployments (and the
// compared design [12], which is 16-bit) quantise. This module simulates a
// Q(total, frac) two's-complement datapath by rounding-and-saturating every
// pipeline stage boundary of the tile computation, enabling the
// wordlength-vs-accuracy ablation bench.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "winograd/cook_toom.hpp"

namespace wino::quant {

/// Two's-complement fixed point with `total_bits` including sign and
/// `frac_bits` fractional bits (e.g. Q16.12: total 16, frac 12).
struct FixedPointFormat {
  int total_bits = 16;
  int frac_bits = 8;

  [[nodiscard]] double scale() const {
    return static_cast<double>(std::int64_t{1} << frac_bits);
  }
  [[nodiscard]] double max_value() const {
    return (static_cast<double>(
                (std::int64_t{1} << (total_bits - 1)) - 1)) /
           scale();
  }
  [[nodiscard]] double min_value() const {
    return -static_cast<double>(std::int64_t{1} << (total_bits - 1)) /
           scale();
  }

  /// Round-to-nearest and saturate. Edge cases are pinned by
  /// tests/quant_test.cpp: +-inf saturate to max_value()/min_value(),
  /// NaN maps to 0 (not to the most negative code, which a naive
  /// min/max clamp would silently produce), and invalid widths
  /// (total_bits < 2 or > 32, frac_bits < 0 or >= total_bits) throw
  /// std::invalid_argument.
  [[nodiscard]] float quantize(float v) const;
};

/// Quantise every element in place.
void quantize_tensor(tensor::Tensor4f& t, const FixedPointFormat& fmt);

/// Winograd layer convolution with a simulated fixed-point datapath:
/// inputs, transformed kernels, the data-transform output U, the products
/// and the inverse-transform results are all rounded/saturated.
/// pad/stride semantics match winograd::conv2d_winograd (stride 1).
///
/// `guard_bits` widens the *internal* stages (U, V, products, accumulators)
/// beyond `fmt`, keeping the fractional precision: the B^T/A^T constants
/// grow with m (row magnitude sums of ~10 for F(4,3)), so intermediate
/// values need integer headroom that the external wordlength lacks —
/// exactly the wider internal datapath a real fixed-point engine carries.
tensor::Tensor4f conv2d_winograd_quantized(const tensor::Tensor4f& input,
                                           const tensor::Tensor4f& kernels,
                                           int m,
                                           const FixedPointFormat& fmt,
                                           int pad = 0,
                                           int guard_bits = 8);

/// Error summary of a quantised run against an fp32 reference.
struct QuantError {
  float max_abs = 0;
  float rms = 0;
  float ref_max_abs = 0;  ///< scale of the reference data
  [[nodiscard]] float relative_max() const {
    return ref_max_abs > 0 ? max_abs / ref_max_abs : 0;
  }
};

QuantError compare(const tensor::Tensor4f& quantized,
                   const tensor::Tensor4f& reference);

}  // namespace wino::quant
