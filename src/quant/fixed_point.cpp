#include "quant/fixed_point.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "winograd/kernels.hpp"

namespace wino::quant {

using tensor::Tensor4f;

float FixedPointFormat::quantize(float v) const {
  if (total_bits < 2 || total_bits > 32 || frac_bits < 0 ||
      frac_bits >= total_bits) {
    throw std::invalid_argument("FixedPointFormat: bad widths");
  }
  // NaN would silently compare its way through min/max to the most
  // negative code — a large-magnitude garbage value. Map it to zero, the
  // only code with no directional bias.
  if (std::isnan(v)) return 0.0F;
  const double scaled = std::nearbyint(static_cast<double>(v) * scale());
  const double lo = static_cast<double>(
      -(std::int64_t{1} << (total_bits - 1)));
  const double hi =
      static_cast<double>((std::int64_t{1} << (total_bits - 1)) - 1);
  // +-inf saturate like any out-of-range value: nearbyint keeps them
  // infinite and the clamp pins them to the format's extremes.
  const double clamped = std::min(hi, std::max(lo, scaled));
  return static_cast<float>(clamped / scale());
}

void quantize_tensor(Tensor4f& t, const FixedPointFormat& fmt) {
  for (float& v : t.flat()) v = fmt.quantize(v);
}

Tensor4f conv2d_winograd_quantized(const Tensor4f& input,
                                   const Tensor4f& kernels, int m,
                                   const FixedPointFormat& fmt, int pad,
                                   int guard_bits) {
  const auto& is = input.shape();
  const auto& ks = kernels.shape();
  if (ks.c != is.c) {
    throw std::invalid_argument("conv2d_winograd_quantized: channels");
  }
  if (guard_bits < 0 || fmt.total_bits + guard_bits > 32) {
    throw std::invalid_argument(
        "conv2d_winograd_quantized: guard bits out of range");
  }
  // Internal stage format: same fractional grid, wider integer headroom.
  const FixedPointFormat wide{fmt.total_bits + guard_bits, fmt.frac_bits};
  const winograd::TileTransformer xf(
      winograd::transforms(m, static_cast<int>(ks.h)));
  const auto mm = static_cast<std::size_t>(m);
  const auto n = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n * n;

  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            static_cast<std::ptrdiff_t>(ks.h) + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            static_cast<std::ptrdiff_t>(ks.w) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d_winograd_quantized: empty output");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;

  const auto q = [&wide](std::vector<float>& vals) {
    for (float& v : vals) v = wide.quantize(v);
  };

  // Pre-transform kernels, quantising V (they live in fixed-point kernel
  // buffers on chip).
  std::vector<float> g(ks.h * ks.w);
  std::vector<std::vector<float>> v_bank(ks.n * ks.c,
                                         std::vector<float>(nsq));
  for (std::size_t k = 0; k < ks.n; ++k) {
    for (std::size_t c = 0; c < ks.c; ++c) {
      for (std::size_t u = 0; u < ks.h; ++u) {
        for (std::size_t w2 = 0; w2 < ks.w; ++w2) {
          g[u * ks.w + w2] = fmt.quantize(kernels(k, c, u, w2));
        }
      }
      auto& v = v_bank[k * ks.c + c];
      xf.transform_filter(g, v);
      q(v);
    }
  }

  Tensor4f out(is.n, ks.n, out_h, out_w);
  std::vector<float> d(nsq);
  std::vector<float> u(nsq);
  std::vector<float> acc(nsq);
  std::vector<float> y(mm * mm);
  for (std::size_t img = 0; img < is.n; ++img) {
    for (std::size_t k = 0; k < ks.n; ++k) {
      for (std::size_t th = 0; th < tiles_h; ++th) {
        for (std::size_t tw = 0; tw < tiles_w; ++tw) {
          const std::ptrdiff_t y0 =
              static_cast<std::ptrdiff_t>(th * mm) - pad;
          const std::ptrdiff_t x0 =
              static_cast<std::ptrdiff_t>(tw * mm) - pad;
          std::fill(acc.begin(), acc.end(), 0.0F);
          for (std::size_t c = 0; c < is.c; ++c) {
            for (std::size_t i = 0; i < n; ++i) {
              for (std::size_t j = 0; j < n; ++j) {
                d[i * n + j] = fmt.quantize(input.padded(
                    img, c, y0 + static_cast<std::ptrdiff_t>(i),
                    x0 + static_cast<std::ptrdiff_t>(j)));
              }
            }
            xf.transform_data(d, u);
            q(u);  // U register stage (guard-bit width)
            const auto& v = v_bank[k * ks.c + c];
            for (std::size_t i = 0; i < nsq; ++i) {
              acc[i] += wide.quantize(u[i] * v[i]);  // M register stage
            }
          }
          q(acc);
          xf.inverse(acc, y);
          // Output registers narrow back to the external wordlength.
          for (float& v : y) v = fmt.quantize(v);
          for (std::size_t i = 0; i < mm; ++i) {
            const std::size_t oy = th * mm + i;
            if (oy >= out_h) break;
            for (std::size_t j = 0; j < mm; ++j) {
              const std::size_t ox = tw * mm + j;
              if (ox >= out_w) break;
              out(img, k, oy, ox) = y[i * mm + j];
            }
          }
        }
      }
    }
  }
  return out;
}

QuantError compare(const Tensor4f& quantized, const Tensor4f& reference) {
  if (!(quantized.shape() == reference.shape())) {
    throw std::invalid_argument("compare: shape mismatch");
  }
  QuantError e;
  double sq = 0;
  const auto qf = quantized.flat();
  const auto rf = reference.flat();
  for (std::size_t i = 0; i < qf.size(); ++i) {
    const float diff = std::abs(qf[i] - rf[i]);
    e.max_abs = std::max(e.max_abs, diff);
    sq += static_cast<double>(diff) * diff;
    e.ref_max_abs = std::max(e.ref_max_abs, std::abs(rf[i]));
  }
  e.rms = static_cast<float>(
      std::sqrt(sq / static_cast<double>(qf.size())));
  return e;
}

}  // namespace wino::quant
