// Performance models of Section III-D / IV-D: PE allocation (Eq 8), total
// latency (Eq 9), and system throughput (Eq 10).
#pragma once

#include <cstddef>

#include "nn/network.hpp"

namespace wino::dse {

/// Eq 8: parallelism for a multiplier budget. Each PE of F(m x m, r x r)
/// consumes (m + r - 1)^2 multipliers.
struct PeAllocation {
  int m = 0;
  int r = 0;
  std::size_t multipliers_total = 0;     ///< mT
  std::size_t multipliers_per_pe = 0;    ///< (m + r - 1)^2
  std::size_t parallel_pes = 0;          ///< P = floor(mT / per-PE)
  std::size_t multipliers_used = 0;      ///< P * per-PE
};

PeAllocation allocate_pes(int m, int r, std::size_t multipliers_total);

/// Continuous relaxation of Eq 8 (P = mT / (m+r-1)^2 without flooring).
/// The paper's Fig 6 Winograd series use this; its spatial series floors.
double allocate_pes_continuous(int m, int r, std::size_t multipliers_total);

/// Clock + pipeline model shared by the latency equations.
struct ClockModel {
  double frequency_hz = 200e6;        ///< paper designs run at 200 MHz
  std::size_t pipeline_depth = 12;    ///< Dp in Eq 9

  [[nodiscard]] double cycle_time_s() const { return 1.0 / frequency_hz; }
};

/// Eq 9 cycle count for one layer: N*H*W*C*K / (m^2 * P). The pipeline
/// fill (Dp - 1) is added once per layer invocation.
double layer_cycles(const nn::ConvLayerSpec& layer, int m,
                    std::size_t parallel_pes, std::size_t batch = 1);

/// Eq 9 latency in seconds for a layer / group / workload.
double layer_latency_s(const nn::ConvLayerSpec& layer, int m,
                       std::size_t parallel_pes, const ClockModel& clk,
                       std::size_t batch = 1);
double group_latency_s(const nn::ConvGroup& group, int m,
                       std::size_t parallel_pes, const ClockModel& clk,
                       std::size_t batch = 1);
double workload_latency_s(const nn::ConvWorkload& net, int m,
                          std::size_t parallel_pes, const ClockModel& clk,
                          std::size_t batch = 1);

/// Eq 10: throughput = O_S / Tt where O_S counts spatial-convolution
/// multiply+add ops (so all designs are compared on delivered convolution
/// work, not internal ops). Result in ops/second.
double throughput_ops(const nn::ConvWorkload& net, int m,
                      std::size_t parallel_pes, const ClockModel& clk,
                      std::size_t batch = 1);

/// Closed-form steady-state throughput of the engine (ignores pipeline
/// fill): 2 r^2 m^2 P f ops/s. Fig 6 is this quantity; `pe_parallelism`
/// may be fractional to reproduce the paper's continuous-P bars.
double steady_state_throughput_ops(int m, int r, double pe_parallelism,
                                   double frequency_hz);

/// One bar of the paper's Fig 6: Winograd entries (m >= 2) use continuous
/// P; the spatial entry (m == 1) uses floored P, matching the published
/// values (100.8 GOPS for 256 multipliers at 200 MHz, etc.).
double fig6_throughput_ops(int m, int r, std::size_t multipliers_total,
                           double frequency_hz);

}  // namespace wino::dse
