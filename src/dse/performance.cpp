#include "dse/performance.hpp"

#include <stdexcept>

namespace wino::dse {

PeAllocation allocate_pes(int m, int r, std::size_t multipliers_total) {
  if (m < 1 || r < 1) throw std::invalid_argument("allocate_pes: bad m/r");
  PeAllocation a;
  a.m = m;
  a.r = r;
  a.multipliers_total = multipliers_total;
  const auto tile = static_cast<std::size_t>(m + r - 1);
  a.multipliers_per_pe = tile * tile;
  a.parallel_pes = multipliers_total / a.multipliers_per_pe;
  a.multipliers_used = a.parallel_pes * a.multipliers_per_pe;
  return a;
}

double allocate_pes_continuous(int m, int r, std::size_t multipliers_total) {
  const auto tile = static_cast<double>(m + r - 1);
  return static_cast<double>(multipliers_total) / (tile * tile);
}

double layer_cycles(const nn::ConvLayerSpec& layer, int m,
                    std::size_t parallel_pes, std::size_t batch) {
  if (parallel_pes == 0) throw std::invalid_argument("layer_cycles: P = 0");
  const double nhwck = static_cast<double>(batch * layer.out_h() *
                                           layer.out_w() * layer.c * layer.k);
  const double m2 = static_cast<double>(m) * static_cast<double>(m);
  return nhwck / (m2 * static_cast<double>(parallel_pes));
}

double layer_latency_s(const nn::ConvLayerSpec& layer, int m,
                       std::size_t parallel_pes, const ClockModel& clk,
                       std::size_t batch) {
  const double cycles = layer_cycles(layer, m, parallel_pes, batch) +
                        static_cast<double>(clk.pipeline_depth) - 1.0;
  return cycles * clk.cycle_time_s();
}

double group_latency_s(const nn::ConvGroup& group, int m,
                       std::size_t parallel_pes, const ClockModel& clk,
                       std::size_t batch) {
  double total = 0;
  for (const auto& l : group.layers) {
    total += layer_latency_s(l, m, parallel_pes, clk, batch);
  }
  return total;
}

double workload_latency_s(const nn::ConvWorkload& net, int m,
                          std::size_t parallel_pes, const ClockModel& clk,
                          std::size_t batch) {
  double total = 0;
  for (const auto& g : net.groups) {
    total += group_latency_s(g, m, parallel_pes, clk, batch);
  }
  return total;
}

double throughput_ops(const nn::ConvWorkload& net, int m,
                      std::size_t parallel_pes, const ClockModel& clk,
                      std::size_t batch) {
  const double os = static_cast<double>(net.spatial_ops(batch));
  const double tt = workload_latency_s(net, m, parallel_pes, clk, batch);
  return os / tt;
}

double steady_state_throughput_ops(int m, int r, double pe_parallelism,
                                   double frequency_hz) {
  // Each PE delivers m^2 outputs per cycle; each output is worth
  // 2 r^2 spatial ops (multiply + accumulate).
  return 2.0 * static_cast<double>(r) * static_cast<double>(r) *
         static_cast<double>(m) * static_cast<double>(m) * pe_parallelism *
         frequency_hz;
}

double fig6_throughput_ops(int m, int r, std::size_t multipliers_total,
                           double frequency_hz) {
  // The paper computes the 256-multiplier column (floored P for spatial,
  // continuous P for Winograd) and scales the 512/1024 columns linearly
  // from it — its spatial value at 1024 multipliers is 4 x 100.8 = 403.2
  // GOPS, not the 406.8 GOPS that flooring 1024/9 would give.
  constexpr std::size_t kBaseMultipliers = 256;
  const double base_p =
      m == 1 ? static_cast<double>(
                   allocate_pes(1, r, kBaseMultipliers).parallel_pes)
             : allocate_pes_continuous(m, r, kBaseMultipliers);
  const double scale = static_cast<double>(multipliers_total) /
                       static_cast<double>(kBaseMultipliers);
  return steady_state_throughput_ops(m, r, base_p * scale, frequency_hz);
}

}  // namespace wino::dse
