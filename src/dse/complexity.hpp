// Arithmetic-complexity models of Section III: multiplication complexity of
// the element-wise stage (Eq 4) and transform complexities (Eqs 5-7).
#pragma once

#include <cstddef>

#include "nn/network.hpp"
#include "winograd/op_report.hpp"

namespace wino::dse {

/// Per-tile transform operation counts feeding Eq 5. Defaults come from the
/// generated transform programs; the struct is separable so published
/// counts (e.g. Lavin's beta = 32 for F(2,3)) can be injected for
/// paper-exact comparisons.
struct TransformCosts {
  std::size_t beta = 0;   ///< ops per 2-D data-transform tile
  std::size_t gamma = 0;  ///< ops per 2-D filter-transform tile
  std::size_t delta = 0;  ///< ops per 2-D inverse-transform tile

  static TransformCosts from_generated(int m, int r, bool optimised = true);

  /// Lavin's published per-tile instruction counts for F(2x2, 3x3)
  /// (beta 32, gamma 28, delta 24) — the values behind the paper's
  /// Section IV-C "1.5x vs 2.33x" comparison.
  static TransformCosts lavin_f2x2_3x3();
};

/// Element-wise multiplication complexity (Eq 4):
///   Om = N*H*W*C*K/m^2 * (m+r-1)^2
/// evaluated with the layer's output extent for H*W. Spatial convolution is
/// the m = 1 case, giving N*H*W*C*K*r^2.
std::size_t mult_complexity(const nn::ConvLayerSpec& layer, int m,
                            std::size_t batch = 1);
std::size_t mult_complexity(const nn::ConvGroup& group, int m,
                            std::size_t batch = 1);
std::size_t mult_complexity(const nn::ConvWorkload& net, int m,
                            std::size_t batch = 1);

/// Exact-tiling variant of Eq 4 for the per-layer execution planner:
/// counts ceil(out/m)^2 tiles of (m+r-1)^2 multiplications each, so ragged
/// edge tiles (out_h % m, out_w % m) are charged in full instead of being
/// averaged away by the paper's continuous H*W/m^2 model. Equal to
/// mult_complexity() whenever m divides both output extents; strictly
/// larger otherwise — the effect that makes large m a loss on small late-
/// network feature maps and the best F(m, r) genuinely layer-dependent.
std::size_t mult_complexity_tiled(const nn::ConvLayerSpec& layer, int m,
                                  std::size_t batch = 1);

/// Transform complexities of Eq 5 for one layer (batch N):
///   T(D) = beta/m^2  * N*H*W*C
///   T(F) = gamma     * C*K
///   T(I) = delta/m^2 * N*H*W*K
struct TransformComplexity {
  double data = 0;
  double filter = 0;
  double inverse = 0;
  [[nodiscard]] double total() const { return data + filter + inverse; }
};

TransformComplexity transform_complexity(const nn::ConvLayerSpec& layer,
                                         int m, const TransformCosts& costs,
                                         std::size_t batch = 1);
TransformComplexity transform_complexity(const nn::ConvWorkload& net, int m,
                                         const TransformCosts& costs,
                                         std::size_t batch = 1);

/// Eq 5 with the same exact tile counts as mult_complexity_tiled:
/// T(D) = tiles*C*beta and T(I) = tiles*K*delta per image. The filter
/// transform (gamma) is still reported but is excluded by the runtime
/// cost model — forward() reads filter transforms from the cross-call
/// cache, matching the paper's "filter transforms are assumed to be
/// precomputed".
TransformComplexity transform_complexity_tiled(const nn::ConvLayerSpec& layer,
                                               int m,
                                               const TransformCosts& costs,
                                               std::size_t batch = 1);

/// Implementation transform complexity of the proposed design (Eq 7):
///   OT = N*H*W*C*K/m^2 * (beta/P + delta)
/// The data transform is shared across P PEs (the paper's first
/// contribution); filter transforms are precomputed and excluded.
double implementation_transform_complexity(const nn::ConvWorkload& net,
                                           int m, const TransformCosts& costs,
                                           std::size_t parallel_pes,
                                           std::size_t batch = 1);

/// The same quantity for the reference design of [3], where every PE
/// computes its own data transform (beta not amortised):
///   OT_ref = N*H*W*C*K/m^2 * (beta + delta)
double reference_transform_complexity(const nn::ConvWorkload& net, int m,
                                      const TransformCosts& costs,
                                      std::size_t batch = 1);

/// Section IV-C overhead ratio: transform work per output relative to the
/// multiplication count of spatial convolution,
///   (beta/P_eff + gamma + delta) / (m^2 r^2),
/// with P_eff = parallel_pes when the data transform is shared (the
/// proposed design) and 1 when each PE recomputes it ([3]). With Lavin's
/// F(2,3) counts and P = 16 this reproduces the paper's 1.5 (shared)
/// versus 2.33 (per-PE) exactly.
double transform_overhead_ratio(int m, int r, const TransformCosts& costs,
                                std::size_t parallel_pes,
                                bool shared_data_transform);

}  // namespace wino::dse
