// End-to-end design-point evaluation: ties the complexity, performance,
// resource and power models together, producing exactly the quantities the
// paper's Table II reports, plus Pareto-frontier selection over the swept
// space.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dse/complexity.hpp"
#include "dse/performance.hpp"
#include "fpga/power.hpp"
#include "fpga/resources.hpp"
#include "nn/network.hpp"

namespace wino::dse {

/// A candidate accelerator configuration.
struct DesignPoint {
  int m = 2;
  int r = 3;
  std::size_t parallel_pes = 0;  ///< 0 = fit as many as the device allows
  fpga::EngineStyle style = fpga::EngineStyle::kSharedDataTransform;
  double frequency_hz = 200e6;
};

/// Everything the paper's Table II reports for one design, per conv group
/// and overall.
struct DesignEvaluation {
  DesignPoint point;
  std::size_t parallel_pes = 0;
  std::size_t multipliers = 0;
  std::vector<double> group_latency_s;  ///< per ConvGroup
  double total_latency_s = 0;
  double throughput_ops = 0;            ///< GOPS when divided by 1e9
  double mult_efficiency = 0;           ///< ops/s per multiplier
  fpga::ResourceReport resources;
  double power_w = 0;
  double power_efficiency = 0;          ///< ops/s per watt
};

/// Evaluation context bundling the workload and calibrated models.
class DesignSpaceExplorer {
 public:
  DesignSpaceExplorer(const nn::ConvWorkload& workload,
                      const fpga::FpgaDevice& device,
                      std::size_t pipeline_depth = 12);

  [[nodiscard]] DesignEvaluation evaluate(const DesignPoint& point) const;

  /// Sweep m over [m_lo, m_hi] with device-fitted PE counts; returns one
  /// evaluation per m.
  [[nodiscard]] std::vector<DesignEvaluation> sweep_m(int m_lo,
                                                      int m_hi) const;

  /// Non-dominated subset under (maximise throughput, maximise power
  /// efficiency). Ties kept.
  [[nodiscard]] static std::vector<DesignEvaluation> pareto_front(
      const std::vector<DesignEvaluation>& evals);

  [[nodiscard]] const fpga::ResourceEstimator& estimator() const {
    return estimator_;
  }
  [[nodiscard]] const fpga::PowerModel& power_model() const {
    return power_;
  }
  [[nodiscard]] const nn::ConvWorkload& workload() const { return workload_; }

 private:
  const nn::ConvWorkload& workload_;
  const fpga::FpgaDevice& device_;
  fpga::ResourceEstimator estimator_;
  fpga::PowerModel power_;
  std::size_t pipeline_depth_;
};

}  // namespace wino::dse
