#include "dse/complexity.hpp"

#include <stdexcept>

namespace wino::dse {

TransformCosts TransformCosts::from_generated(int m, int r, bool optimised) {
  const auto rep = winograd::transform_op_report(m, r, optimised);
  return TransformCosts{rep.beta(), rep.gamma(), rep.delta()};
}

TransformCosts TransformCosts::lavin_f2x2_3x3() {
  return TransformCosts{32, 28, 24};
}

std::size_t mult_complexity(const nn::ConvLayerSpec& layer, int m,
                            std::size_t batch) {
  if (m < 1) throw std::invalid_argument("mult_complexity: m must be >= 1");
  const auto mu = static_cast<std::size_t>(m);
  const std::size_t tile = mu + layer.r - 1;
  // Tile count per output plane, computed exactly for divisible extents and
  // as the paper's continuous H*W/m^2 model otherwise (VGG extents divide
  // all m in {1,2,4,7}; for others the difference is edge tiles, which the
  // cycle simulator accounts for separately).
  const std::size_t outputs = layer.out_h() * layer.out_w();
  return batch * outputs * layer.c * layer.k * tile * tile / (mu * mu);
}

std::size_t mult_complexity_tiled(const nn::ConvLayerSpec& layer, int m,
                                  std::size_t batch) {
  if (m < 1) {
    throw std::invalid_argument("mult_complexity_tiled: m must be >= 1");
  }
  const auto mu = static_cast<std::size_t>(m);
  const std::size_t tile = mu + layer.r - 1;
  const std::size_t tiles = ((layer.out_h() + mu - 1) / mu) *
                            ((layer.out_w() + mu - 1) / mu);
  return batch * tiles * tile * tile * layer.c * layer.k;
}

TransformComplexity transform_complexity_tiled(const nn::ConvLayerSpec& layer,
                                               int m,
                                               const TransformCosts& costs,
                                               std::size_t batch) {
  if (m < 1) throw std::invalid_argument("transform_complexity_tiled: bad m");
  const auto mu = static_cast<std::size_t>(m);
  const double tiles =
      static_cast<double>(batch * ((layer.out_h() + mu - 1) / mu) *
                          ((layer.out_w() + mu - 1) / mu));
  TransformComplexity t;
  t.data = tiles * static_cast<double>(costs.beta) *
           static_cast<double>(layer.c);
  t.filter = static_cast<double>(costs.gamma) *
             static_cast<double>(layer.c * layer.k);
  t.inverse = tiles * static_cast<double>(costs.delta) *
              static_cast<double>(layer.k);
  return t;
}

std::size_t mult_complexity(const nn::ConvGroup& group, int m,
                            std::size_t batch) {
  std::size_t total = 0;
  for (const auto& l : group.layers) total += mult_complexity(l, m, batch);
  return total;
}

std::size_t mult_complexity(const nn::ConvWorkload& net, int m,
                            std::size_t batch) {
  std::size_t total = 0;
  for (const auto& g : net.groups) total += mult_complexity(g, m, batch);
  return total;
}

TransformComplexity transform_complexity(const nn::ConvLayerSpec& layer,
                                         int m, const TransformCosts& costs,
                                         std::size_t batch) {
  if (m < 1) throw std::invalid_argument("transform_complexity: bad m");
  const double m2 = static_cast<double>(m) * static_cast<double>(m);
  const double nhw =
      static_cast<double>(batch * layer.out_h() * layer.out_w());
  TransformComplexity t;
  t.data = static_cast<double>(costs.beta) / m2 * nhw *
           static_cast<double>(layer.c);
  t.filter = static_cast<double>(costs.gamma) *
             static_cast<double>(layer.c * layer.k);
  t.inverse = static_cast<double>(costs.delta) / m2 * nhw *
              static_cast<double>(layer.k);
  return t;
}

TransformComplexity transform_complexity(const nn::ConvWorkload& net, int m,
                                         const TransformCosts& costs,
                                         std::size_t batch) {
  TransformComplexity total;
  for (const auto& l : net.all_layers()) {
    const TransformComplexity t = transform_complexity(l, m, costs, batch);
    total.data += t.data;
    total.filter += t.filter;
    total.inverse += t.inverse;
  }
  return total;
}

double implementation_transform_complexity(const nn::ConvWorkload& net,
                                           int m, const TransformCosts& costs,
                                           std::size_t parallel_pes,
                                           std::size_t batch) {
  if (parallel_pes == 0) {
    throw std::invalid_argument("implementation_transform_complexity: P = 0");
  }
  const double m2 = static_cast<double>(m) * static_cast<double>(m);
  double total = 0;
  for (const auto& l : net.all_layers()) {
    const double nhwck = static_cast<double>(
        batch * l.out_h() * l.out_w() * l.c * l.k);
    total += nhwck / m2 *
             (static_cast<double>(costs.beta) /
                  static_cast<double>(parallel_pes) +
              static_cast<double>(costs.delta));
  }
  return total;
}

double reference_transform_complexity(const nn::ConvWorkload& net, int m,
                                      const TransformCosts& costs,
                                      std::size_t batch) {
  return implementation_transform_complexity(net, m, costs, 1, batch);
}

double transform_overhead_ratio(int m, int r, const TransformCosts& costs,
                                std::size_t parallel_pes,
                                bool shared_data_transform) {
  if (parallel_pes == 0) {
    throw std::invalid_argument("transform_overhead_ratio: P = 0");
  }
  const double p_eff =
      shared_data_transform ? static_cast<double>(parallel_pes) : 1.0;
  const double per_tile = static_cast<double>(costs.beta) / p_eff +
                          static_cast<double>(costs.gamma) +
                          static_cast<double>(costs.delta);
  return per_tile / (static_cast<double>(m) * static_cast<double>(m) *
                     static_cast<double>(r) * static_cast<double>(r));
}

}  // namespace wino::dse
