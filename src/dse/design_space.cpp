#include "dse/design_space.hpp"

#include <algorithm>
#include <stdexcept>

namespace wino::dse {

DesignSpaceExplorer::DesignSpaceExplorer(const nn::ConvWorkload& workload,
                                         const fpga::FpgaDevice& device,
                                         std::size_t pipeline_depth)
    : workload_(workload), device_(device), estimator_(device),
      power_(estimator_), pipeline_depth_(pipeline_depth) {}

DesignEvaluation DesignSpaceExplorer::evaluate(
    const DesignPoint& point) const {
  DesignEvaluation ev;
  ev.point = point;
  ev.parallel_pes = point.parallel_pes != 0
                        ? point.parallel_pes
                        : estimator_.max_pes(point.m, point.r, point.style);
  if (ev.parallel_pes == 0) {
    throw std::invalid_argument("evaluate: design does not fit the device");
  }
  const auto tile = static_cast<std::size_t>(point.m + point.r - 1);
  ev.multipliers = ev.parallel_pes * tile * tile;

  const ClockModel clk{point.frequency_hz, pipeline_depth_};
  for (const auto& g : workload_.groups) {
    ev.group_latency_s.push_back(
        group_latency_s(g, point.m, ev.parallel_pes, clk));
  }
  ev.total_latency_s =
      workload_latency_s(workload_, point.m, ev.parallel_pes, clk);
  ev.throughput_ops =
      static_cast<double>(workload_.spatial_ops()) / ev.total_latency_s;
  ev.mult_efficiency =
      ev.throughput_ops / static_cast<double>(ev.multipliers);
  ev.resources =
      estimator_.estimate(point.m, point.r, ev.parallel_pes, point.style);
  ev.power_w = power_.predict_w(ev.resources, point.frequency_hz);
  ev.power_efficiency = ev.throughput_ops / ev.power_w;
  return ev;
}

std::vector<DesignEvaluation> DesignSpaceExplorer::sweep_m(int m_lo,
                                                           int m_hi) const {
  std::vector<DesignEvaluation> out;
  for (int m = m_lo; m <= m_hi; ++m) {
    DesignPoint p;
    p.m = m;
    if (estimator_.max_pes(m, p.r, p.style) == 0) continue;
    out.push_back(evaluate(p));
  }
  return out;
}

std::vector<DesignEvaluation> DesignSpaceExplorer::pareto_front(
    const std::vector<DesignEvaluation>& evals) {
  std::vector<DesignEvaluation> front;
  for (const auto& cand : evals) {
    const bool dominated = std::any_of(
        evals.begin(), evals.end(), [&](const DesignEvaluation& other) {
          const bool geq =
              other.throughput_ops >= cand.throughput_ops &&
              other.power_efficiency >= cand.power_efficiency;
          const bool gt =
              other.throughput_ops > cand.throughput_ops ||
              other.power_efficiency > cand.power_efficiency;
          return geq && gt;
        });
    if (!dominated) front.push_back(cand);
  }
  return front;
}

}  // namespace wino::dse
