// Roofline model for the Winograd engine: attainable throughput as the
// minimum of the compute roof (Eq 10 steady state) and the memory roof
// (arithmetic intensity x DRAM bandwidth).
//
// The paper assumes "enough memory bandwidth is available to refill both
// buffers" (Section V-B); the roofline quantifies exactly how much is
// enough, and the cycle simulator (src/hw) exposes the stalls when it is
// not.
#pragma once

#include "nn/network.hpp"

namespace wino::dse {

/// Data-movement model for one layer pass through the engine with
/// double-buffered image and kernel buffers:
///  * input feature map read once: N*H*W*C elements,
///  * pre-transformed kernels read once per layer: K*C*(m+r-1)^2 elements
///    (they stream into the kernel buffers per K/P group),
///  * output feature map written once: N*outH*outW*K.
struct TrafficModel {
  double bytes_in = 0;
  double bytes_kernels = 0;
  double bytes_out = 0;
  [[nodiscard]] double total() const {
    return bytes_in + bytes_kernels + bytes_out;
  }
};

TrafficModel layer_traffic(const nn::ConvLayerSpec& layer, int m,
                           std::size_t bytes_per_element = 4,
                           std::size_t batch = 1);

/// Delivered spatial-equivalent ops per byte moved.
double arithmetic_intensity(const nn::ConvLayerSpec& layer, int m,
                            std::size_t bytes_per_element = 4,
                            std::size_t batch = 1);

struct RooflinePoint {
  double intensity = 0;        ///< ops/byte
  double compute_roof = 0;     ///< ops/s
  double memory_roof = 0;      ///< ops/s at this intensity
  double attainable = 0;       ///< min of the two
  bool memory_bound = false;
};

/// Evaluate a layer against an engine configuration.
RooflinePoint roofline(const nn::ConvLayerSpec& layer, int m, int r,
                       std::size_t parallel_pes, double frequency_hz,
                       double dram_bytes_per_s,
                       std::size_t bytes_per_element = 4,
                       std::size_t batch = 1);

/// Minimum DRAM bandwidth (bytes/s) for the layer to stay compute-bound.
double required_bandwidth(const nn::ConvLayerSpec& layer, int m, int r,
                          std::size_t parallel_pes, double frequency_hz,
                          std::size_t bytes_per_element = 4,
                          std::size_t batch = 1);

}  // namespace wino::dse
