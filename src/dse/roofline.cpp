#include "dse/roofline.hpp"

#include "dse/performance.hpp"

namespace wino::dse {

TrafficModel layer_traffic(const nn::ConvLayerSpec& layer, int m,
                           std::size_t bytes_per_element, std::size_t batch) {
  const auto b = static_cast<double>(bytes_per_element);
  const auto tile = static_cast<double>(m + static_cast<int>(layer.r) - 1);
  TrafficModel t;
  t.bytes_in = static_cast<double>(batch * layer.h * layer.w * layer.c) * b;
  t.bytes_kernels =
      static_cast<double>(layer.k * layer.c) * tile * tile * b;
  t.bytes_out =
      static_cast<double>(batch * layer.out_h() * layer.out_w() * layer.k) *
      b;
  return t;
}

double arithmetic_intensity(const nn::ConvLayerSpec& layer, int m,
                            std::size_t bytes_per_element,
                            std::size_t batch) {
  const double ops = static_cast<double>(layer.spatial_ops(batch));
  return ops / layer_traffic(layer, m, bytes_per_element, batch).total();
}

RooflinePoint roofline(const nn::ConvLayerSpec& layer, int m, int r,
                       std::size_t parallel_pes, double frequency_hz,
                       double dram_bytes_per_s,
                       std::size_t bytes_per_element, std::size_t batch) {
  RooflinePoint p;
  p.intensity = arithmetic_intensity(layer, m, bytes_per_element, batch);
  p.compute_roof = steady_state_throughput_ops(
      m, r, static_cast<double>(parallel_pes), frequency_hz);
  p.memory_roof = p.intensity * dram_bytes_per_s;
  p.memory_bound = p.memory_roof < p.compute_roof;
  p.attainable = p.memory_bound ? p.memory_roof : p.compute_roof;
  return p;
}

double required_bandwidth(const nn::ConvLayerSpec& layer, int m, int r,
                          std::size_t parallel_pes, double frequency_hz,
                          std::size_t bytes_per_element, std::size_t batch) {
  const double compute = steady_state_throughput_ops(
      m, r, static_cast<double>(parallel_pes), frequency_hz);
  return compute /
         arithmetic_intensity(layer, m, bytes_per_element, batch);
}

}  // namespace wino::dse
