// FPGA device resource models. The paper synthesises on a Xilinx Virtex-7
// part with 303,600 LUTs / 607,200 registers / 2,800 DSP48 slices (the
// "Available resources" row of Table I) and treats one single-precision
// floating-point multiplier as 4 DSP slices (684 multipliers <-> 2,736
// DSPs throughout Tables I and II).
#pragma once

#include <cstddef>
#include <string>

namespace wino::fpga {

struct FpgaDevice {
  std::string name;
  std::size_t luts = 0;
  std::size_t registers = 0;
  std::size_t dsps = 0;
  std::size_t bram_kb = 0;

  /// DSP slices consumed by one fp32 multiplier on this family.
  std::size_t dsps_per_fp32_mult = 4;

  /// fp32 multipliers realisable from the DSP budget.
  [[nodiscard]] std::size_t fp32_multipliers() const {
    return dsps / dsps_per_fp32_mult;
  }
};

/// The paper's target (Table I "Available resources"): 303,600 LUTs,
/// 607,200 FFs, 2,800 DSPs -> 700 fp32 multipliers.
const FpgaDevice& virtex7_485t();

/// Larger Virtex-7 for headroom studies.
const FpgaDevice& virtex7_690t();

/// Altera Stratix V GT-class model (the platform of reference [3]).
const FpgaDevice& stratix_v_gt();

/// A small Zynq-class device (reference [12] uses an embedded platform).
const FpgaDevice& zynq_7045();

}  // namespace wino::fpga
