#include "fpga/bram.hpp"

namespace wino::fpga {

namespace {
constexpr std::size_t kBytesPerElement = 4;  // fp32
constexpr std::size_t kBram36Bytes = 36 * 1024 / 8;
}  // namespace

BufferReport buffer_requirements(int m, int r, std::size_t parallel_pes,
                                 const nn::ConvLayerSpec& layer) {
  const auto n = static_cast<std::size_t>(m + r - 1);
  const auto mm = static_cast<std::size_t>(m);
  BufferReport b;
  b.image_bytes = n * layer.w * layer.c * kBytesPerElement;
  b.kernel_bytes =
      2 * parallel_pes * layer.c * n * n * kBytesPerElement;
  b.accum_bytes = 2 * parallel_pes * mm * mm * kBytesPerElement;
  return b;
}

BufferReport worst_buffer_requirements(int m, int r,
                                       std::size_t parallel_pes,
                                       const nn::ConvWorkload& net) {
  BufferReport worst;
  for (const auto& l : net.all_layers()) {
    const BufferReport b = buffer_requirements(m, r, parallel_pes, l);
    if (b.total() > worst.total()) worst = b;
  }
  return worst;
}

std::size_t bram36_blocks(std::size_t bytes) {
  return (bytes + kBram36Bytes - 1) / kBram36Bytes;
}

bool buffers_fit(const FpgaDevice& device, int m, int r,
                 std::size_t parallel_pes, const nn::ConvWorkload& net) {
  const BufferReport worst =
      worst_buffer_requirements(m, r, parallel_pes, net);
  const std::size_t device_bytes = device.bram_kb * 1024 / 8;
  return worst.total() <= device_bytes;
}

}  // namespace wino::fpga
