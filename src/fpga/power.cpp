#include "fpga/power.hpp"

#include <cmath>
#include <stdexcept>

namespace wino::fpga {

namespace {

std::array<double, 4> features(const ResourceReport& r) {
  return {1.0, static_cast<double>(r.luts) / 1e3,
          static_cast<double>(r.registers) / 1e3,
          static_cast<double>(r.dsps) / 1e3};
}

/// Solve the 4x4 linear system a x = b by Gaussian elimination with
/// partial pivoting. Rows corresponding to `frozen` coefficients are
/// replaced by identity pins at zero.
std::array<double, 4> solve_normal_equations(
    const std::vector<std::array<double, 4>>& rows,
    const std::vector<double>& rhs, const std::array<bool, 4>& frozen) {
  constexpr std::size_t kN = 4;
  double a[kN][kN] = {};
  double b[kN] = {};
  for (std::size_t s = 0; s < rows.size(); ++s) {
    for (std::size_t i = 0; i < kN; ++i) {
      b[i] += rows[s][i] * rhs[s];
      for (std::size_t j = 0; j < kN; ++j) a[i][j] += rows[s][i] * rows[s][j];
    }
  }
  for (std::size_t i = 0; i < kN; ++i) {
    if (frozen[i]) {
      for (std::size_t j = 0; j < kN; ++j) {
        a[i][j] = i == j ? 1.0 : 0.0;
        a[j][i] = i == j ? 1.0 : 0.0;
      }
      b[i] = 0.0;
    }
  }
  // Elimination.
  std::array<std::size_t, kN> perm{0, 1, 2, 3};
  for (std::size_t col = 0; col < kN; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < kN; ++r) {
      if (std::abs(a[perm[r]][col]) > std::abs(a[perm[piv]][col])) piv = r;
    }
    std::swap(perm[col], perm[piv]);
    const double diag = a[perm[col]][col];
    if (std::abs(diag) < 1e-12) {
      throw std::logic_error("power fit: singular normal equations");
    }
    for (std::size_t r = 0; r < kN; ++r) {
      if (r == col) continue;
      const double f = a[perm[r]][col] / diag;
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < kN; ++c) a[perm[r]][c] -= f * a[perm[col]][c];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  std::array<double, 4> x{};
  for (std::size_t i = 0; i < kN; ++i) x[i] = b[perm[i]] / a[perm[i]][i];
  return x;
}

}  // namespace

std::vector<PowerSample> paper_power_samples(
    const ResourceEstimator& estimator) {
  struct Point {
    int m;
    std::size_t pes;
    EngineStyle style;
    double watts;
  };
  // The three power figures the authors synthesised themselves (their
  // proposed designs on the Virtex-7). Table II's other power entries are
  // citations from other platforms ([3] on Stratix V, [12] on Zynq) or the
  // paper's own multiplier-count normalisation ([3]a = 8.04 W * 688/256 =
  // 21.61 W, see scaled_reference_power_w) and are not fitted here.
  const Point points[] = {
      {2, 43, EngineStyle::kSharedDataTransform, 13.03},
      {3, 28, EngineStyle::kSharedDataTransform, 23.96},
      {4, 19, EngineStyle::kSharedDataTransform, 36.32},
  };
  std::vector<PowerSample> samples;
  // Static-power anchor: an idle Virtex-7 class device draws on the order
  // of 1.5 W; pinning the zero-utilisation point keeps the intercept
  // physical (the three design points alone extrapolate to a negative
  // static power).
  samples.push_back({ResourceReport{}, 1.5});
  for (const auto& p : points) {
    samples.push_back(
        {estimator.estimate(p.m, 3, p.pes, p.style), p.watts});
  }
  return samples;
}

double scaled_reference_power_w(std::size_t multipliers) {
  return 8.04 * static_cast<double>(multipliers) / 256.0;
}

PowerModel::PowerModel(const ResourceEstimator& estimator)
    : PowerModel(paper_power_samples(estimator)) {}

PowerModel::PowerModel(const std::vector<PowerSample>& samples) {
  if (samples.size() < 4) {
    throw std::invalid_argument("PowerModel: need >= 4 samples");
  }
  calibration_ = samples;
  fit(samples);
}

void PowerModel::fit(const std::vector<PowerSample>& samples) {
  std::vector<std::array<double, 4>> rows;
  std::vector<double> rhs;
  for (const auto& s : samples) {
    rows.push_back(features(s.resources));
    rhs.push_back(s.watts);
  }
  std::array<bool, 4> frozen{false, false, false, false};
  for (int iter = 0; iter < 4; ++iter) {
    coef_ = solve_normal_equations(rows, rhs, frozen);
    bool clamped = false;
    for (std::size_t i = 0; i < coef_.size(); ++i) {
      if (coef_[i] < 0.0 && !frozen[i]) {
        frozen[i] = true;
        clamped = true;
      }
    }
    if (!clamped) return;
  }
  coef_ = solve_normal_equations(rows, rhs, frozen);
}

double PowerModel::predict_w(const ResourceReport& r,
                             double frequency_hz) const {
  const auto f = features(r);
  const double dynamic =
      coef_[1] * f[1] + coef_[2] * f[2] + coef_[3] * f[3];
  return coef_[0] + dynamic * (frequency_hz / 200e6);
}

double PowerModel::max_calibration_rel_error() const {
  double worst = 0;
  for (const auto& s : calibration_) {
    if (s.resources.luts == 0 && s.resources.dsps == 0) {
      continue;  // synthetic static-power anchor, not a design point
    }
    const double pred = predict_w(s.resources);
    worst = std::max(worst, std::abs(pred - s.watts) / s.watts);
  }
  return worst;
}

}  // namespace wino::fpga
