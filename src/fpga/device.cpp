#include "fpga/device.hpp"

namespace wino::fpga {

const FpgaDevice& virtex7_485t() {
  static const FpgaDevice d{"Virtex-7 485T", 303600, 607200, 2800, 37080, 4};
  return d;
}

const FpgaDevice& virtex7_690t() {
  static const FpgaDevice d{"Virtex-7 690T", 433200, 866400, 3600, 52920, 4};
  return d;
}

const FpgaDevice& stratix_v_gt() {
  // ALM counts mapped onto the LUT/FF slots; DSP blocks on Stratix V
  // implement one fp32 multiply per block pair.
  static const FpgaDevice d{"Stratix V GT", 234720, 938880, 512, 51200, 2};
  return d;
}

const FpgaDevice& zynq_7045() {
  static const FpgaDevice d{"Zynq-7045", 218600, 437200, 900, 19080, 4};
  return d;
}

}  // namespace wino::fpga
