// On-chip buffer sizing and BRAM accounting for the engine of Fig 7.
//
// The analytic performance model assumes the image, kernel and
// accumulation buffers exist; this model says how big they are for a given
// layer and design point, how many 36 Kb BRAM blocks they consume, and
// whether the design still fits the device — the third resource dimension
// (after LUT/FF and DSP) of the design space.
#pragma once

#include <cstddef>

#include "fpga/device.hpp"
#include "nn/network.hpp"

namespace wino::fpga {

/// Byte sizes of the engine's on-chip buffers for one layer (fp32).
struct BufferReport {
  /// Line-buffered image window: (m+r-1) rows x W x C elements — the
  /// engine revisits the same tile for every channel before moving on, so
  /// the window must hold all channels of those rows.
  std::size_t image_bytes = 0;
  /// Kernel (V) buffers: 2 banks (double buffering) x P x C x (m+r-1)^2.
  std::size_t kernel_bytes = 0;
  /// Accumulation buffers: P x m^2, double-buffered for writeback overlap.
  std::size_t accum_bytes = 0;

  [[nodiscard]] std::size_t total() const {
    return image_bytes + kernel_bytes + accum_bytes;
  }
};

/// Buffer requirement of F(m x m, r x r) with P PEs on `layer`.
BufferReport buffer_requirements(int m, int r, std::size_t parallel_pes,
                                 const nn::ConvLayerSpec& layer);

/// The worst (largest total) buffer requirement across a workload.
BufferReport worst_buffer_requirements(int m, int r,
                                       std::size_t parallel_pes,
                                       const nn::ConvWorkload& net);

/// 36 Kb block-RAM count for a byte requirement (ceil per buffer bank).
std::size_t bram36_blocks(std::size_t bytes);

/// True when the worst-case buffers of the workload fit the device's
/// BRAM capacity (device.bram_kb is in Kbit).
bool buffers_fit(const FpgaDevice& device, int m, int r,
                 std::size_t parallel_pes, const nn::ConvWorkload& net);

}  // namespace wino::fpga
