// Power model for the synthesised engines.
//
// Substitution note (DESIGN.md section 2): the paper reports board-level
// power from synthesis; with no board we fit a linear utilisation model
//   P(W) = c_static + c_lut * LUT + c_ff * FF + c_dsp * DSP
// (coefficients per kilo-resource, at the paper's 200 MHz) by least squares
// over the five fp32 design points whose power Table II publishes:
//   [3]  m=2 P=16 : 8.04 W      [3]a m=2 P=43 : 21.61 W
//   ours m=2 P=43 : 13.03 W     ours m=3 P=28 : 23.96 W
//   ours m=4 P=19 : 36.32 W
// Resource vectors come from the calibrated ResourceEstimator. Negative
// coefficients are clamped to zero and the fit repeated (tiny NNLS), so
// predictions are monotone in utilisation. Dynamic terms scale linearly
// with clock frequency around the 200 MHz calibration point.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "fpga/resources.hpp"

namespace wino::fpga {

/// One calibration or evaluation point.
struct PowerSample {
  ResourceReport resources;
  double watts = 0;  ///< published value (calibration) or prediction
};

class PowerModel {
 public:
  /// Fit against the paper's five published design points using the given
  /// estimator for their resource vectors.
  explicit PowerModel(const ResourceEstimator& estimator);

  /// Fit from explicit samples (>= number of free coefficients).
  explicit PowerModel(const std::vector<PowerSample>& samples);

  /// Predicted power in watts at `frequency_hz` (calibrated at 200 MHz).
  [[nodiscard]] double predict_w(const ResourceReport& r,
                                 double frequency_hz = 200e6) const;

  /// Coefficients: {static W, W per kLUT, W per kFF, W per kDSP}.
  [[nodiscard]] const std::array<double, 4>& coefficients() const {
    return coef_;
  }

  /// Largest relative error across the calibration samples; documented in
  /// EXPERIMENTS.md as the model's fidelity bound.
  [[nodiscard]] double max_calibration_rel_error() const;

 private:
  void fit(const std::vector<PowerSample>& samples);

  std::array<double, 4> coef_{};
  std::vector<PowerSample> calibration_;
};

/// The four genuinely measured published calibration points (resources
/// estimated with `estimator`, watts from Table II).
std::vector<PowerSample> paper_power_samples(
    const ResourceEstimator& estimator);

/// The paper's normalisation rule for the scaled reference design [3]a:
/// power scales with multiplier count from the measured 256-multiplier
/// point (8.04 W * 688/256 = 21.61 W in Table II).
double scaled_reference_power_w(std::size_t multipliers);

}  // namespace wino::fpga
