// Resource estimation for Winograd convolution engines.
//
// Substitution note (DESIGN.md section 2): with no Vivado available, the
// estimator is an analytic model driven by the *operation counts of the
// generated transform programs* and calibrated once against the two
// synthesis points the paper publishes (Table I: the proposed and the
// reference design at F(4x4, 3x3), 19 PEs). The calibration solves for
//   * LUTs per transform operation (adders/constant multipliers),
//   * LUTs per element-wise fp32 multiplier (DSP-assisted glue),
//   * FFs per transform operation (pipeline registers),
// so that both Table I rows are matched exactly; every other (m, r, P)
// configuration is then a prediction of the same model.
#pragma once

#include <cstddef>

#include "fpga/device.hpp"

namespace wino::fpga {

/// Architectural variant being estimated.
enum class EngineStyle {
  kSharedDataTransform,  ///< proposed: one data-transform block feeds P PEs
  kPerPeDataTransform    ///< reference [3]: each PE owns a data transform
};

struct ResourceReport {
  std::size_t luts = 0;
  std::size_t registers = 0;
  std::size_t dsps = 0;
  std::size_t fp32_multipliers = 0;
  std::size_t luts_per_pe = 0;       ///< marginal LUT cost of one more PE
  std::size_t registers_per_pe = 0;  ///< marginal FF cost of one more PE
};

/// Estimator for F(m x m, r x r) engines with P parallel PEs.
class ResourceEstimator {
 public:
  /// Calibrates against the paper's Table I (see file comment). The device
  /// supplies the DSP-per-multiplier policy.
  explicit ResourceEstimator(const FpgaDevice& device = virtex7_485t());

  [[nodiscard]] ResourceReport estimate(int m, int r, std::size_t pes,
                                        EngineStyle style) const;

  /// Maximum PEs that fit the device for F(m x m, r x r) under the given
  /// style, considering DSPs, LUTs and FFs. For the paper's device this
  /// gives 43 / 28 / 19 PEs for m = 2 / 3 / 4 (Table II).
  [[nodiscard]] std::size_t max_pes(int m, int r, EngineStyle style) const;

  /// Calibrated coefficients (exposed for tests / documentation).
  [[nodiscard]] double luts_per_op() const { return luts_per_op_; }
  [[nodiscard]] double luts_per_mult() const { return luts_per_mult_; }
  [[nodiscard]] double ffs_per_op() const { return ffs_per_op_; }
  [[nodiscard]] double ffs_per_mult() const { return ffs_per_mult_; }

 private:
  const FpgaDevice& device_;
  double luts_per_op_ = 0;    ///< LUTs per transform add/const-mult
  double luts_per_mult_ = 0;  ///< LUT glue per fp32 multiplier
  double ffs_per_op_ = 0;     ///< FFs per transform op (pipeline regs)
  double ffs_per_mult_ = 0;   ///< FFs per fp32 multiplier
  double ffs_fixed_ = 0;      ///< buffers/control FFs independent of P
};

}  // namespace wino::fpga
