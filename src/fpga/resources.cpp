#include "fpga/resources.hpp"

#include <cmath>
#include <stdexcept>

#include "winograd/op_report.hpp"

namespace wino::fpga {

namespace {

// Published synthesis points (paper Table I, 19 PEs, F(4x4, 3x3), fp32).
constexpr double kTable1Pes = 19.0;
constexpr double kOursLuts = 107839.0;
constexpr double kRefLuts = 232256.0;
constexpr double kOursRegs = 76500.0;
constexpr double kRefRegs = 97052.0;
// Fixed buffer/control register allowance (image/kernel buffer pointers,
// FSM state); everything else is explained by per-op/per-mult terms.
constexpr double kFixedRegs = 2048.0;

struct TileOps {
  double data = 0;     ///< 2-D data transform ops per tile
  double inverse = 0;  ///< 2-D inverse transform ops per tile
  double mults = 0;    ///< element-wise fp32 multiplies per tile
};

TileOps tile_ops(int m, int r) {
  const auto rep = winograd::transform_op_report(m, r, /*optimised=*/true);
  const auto n = static_cast<double>(m + r - 1);
  // hw_ops: adders and generic constant multipliers consume logic; +-2^k
  // scalings are exponent shifts (the paper's "shifters") and are folded
  // into the adjacent adder's input stage.
  return TileOps{static_cast<double>(rep.data_2d.hw_ops()),
                 static_cast<double>(rep.inverse_2d.hw_ops()), n * n};
}

}  // namespace

ResourceEstimator::ResourceEstimator(const FpgaDevice& device)
    : device_(device) {
  const TileOps f43 = tile_ops(4, 3);

  // LUTs: the ref design instantiates the data transform in all P PEs, the
  // proposed design once; the difference isolates LUTs-per-transform-op.
  const double lut_data_block = (kRefLuts - kOursLuts) / (kTable1Pes - 1.0);
  luts_per_op_ = lut_data_block / f43.data;
  luts_per_mult_ =
      (kOursLuts - lut_data_block - kTable1Pes * f43.inverse * luts_per_op_) /
      (kTable1Pes * f43.mults);

  // Registers: same structure, with a fixed buffer/control allowance.
  const double ff_data_block = (kRefRegs - kOursRegs) / (kTable1Pes - 1.0);
  ffs_per_op_ = ff_data_block / f43.data;
  ffs_per_mult_ = (kOursRegs - kFixedRegs - ff_data_block -
                   kTable1Pes * f43.inverse * ffs_per_op_) /
                  (kTable1Pes * f43.mults);
  ffs_fixed_ = kFixedRegs;

  if (luts_per_op_ <= 0 || luts_per_mult_ <= 0 || ffs_per_op_ <= 0 ||
      ffs_per_mult_ <= 0) {
    throw std::logic_error(
        "ResourceEstimator calibration produced non-physical coefficients");
  }
}

ResourceReport ResourceEstimator::estimate(int m, int r, std::size_t pes,
                                           EngineStyle style) const {
  if (pes == 0) throw std::invalid_argument("estimate: pes must be > 0");
  const TileOps ops = tile_ops(m, r);
  const double p = static_cast<double>(pes);

  const double data_block_luts = ops.data * luts_per_op_;
  const double data_block_ffs = ops.data * ffs_per_op_;
  double pe_luts = ops.mults * luts_per_mult_ + ops.inverse * luts_per_op_;
  double pe_ffs = ops.mults * ffs_per_mult_ + ops.inverse * ffs_per_op_;
  double shared_luts = data_block_luts;
  double shared_ffs = data_block_ffs + ffs_fixed_;
  if (style == EngineStyle::kPerPeDataTransform) {
    pe_luts += data_block_luts;
    pe_ffs += data_block_ffs;
    shared_luts = 0;
    shared_ffs = ffs_fixed_;
  }

  ResourceReport rep;
  rep.luts = static_cast<std::size_t>(std::llround(p * pe_luts + shared_luts));
  rep.registers =
      static_cast<std::size_t>(std::llround(p * pe_ffs + shared_ffs));
  rep.fp32_multipliers =
      pes * static_cast<std::size_t>(ops.mults);
  rep.dsps = rep.fp32_multipliers * device_.dsps_per_fp32_mult;
  rep.luts_per_pe = static_cast<std::size_t>(std::llround(pe_luts));
  rep.registers_per_pe = static_cast<std::size_t>(std::llround(pe_ffs));
  return rep;
}

std::size_t ResourceEstimator::max_pes(int m, int r,
                                       EngineStyle style) const {
  const auto tile = static_cast<std::size_t>(m + r - 1);
  const std::size_t by_dsp =
      device_.dsps / (device_.dsps_per_fp32_mult * tile * tile);
  std::size_t best = 0;
  for (std::size_t p = 1; p <= by_dsp; ++p) {
    const ResourceReport rep = estimate(m, r, p, style);
    if (rep.luts > device_.luts || rep.registers > device_.registers ||
        rep.dsps > device_.dsps) {
      break;
    }
    best = p;
  }
  return best;
}

}  // namespace wino::fpga
