#include "serve/inference_server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <unordered_map>
#include <utility>

namespace wino::serve {

using tensor::Tensor4f;

namespace {

ServerConfig sanitized(ServerConfig config) {
  config.max_batch = std::max<std::size_t>(1, config.max_batch);
  config.max_inflight = std::max<std::size_t>(1, config.max_inflight);
  config.worker_threads = std::max<std::size_t>(1, config.worker_threads);
  return config;
}

double microseconds_between(std::chrono::steady_clock::time_point from,
                            std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(ServerConfig config)
    : config_(sanitized(std::move(config))),
      queue_(config_.max_inflight),
      batch_queue_(config_.max_inflight),
      stats_(config_.max_batch) {
  batcher_ = std::thread(&InferenceServer::batcher_loop, this);
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back(&InferenceServer::worker_loop, this);
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

ModelId InferenceServer::add_model(std::string name,
                                   std::vector<nn::LayerSpec> layers,
                                   nn::WeightBank weights, nn::ConvAlgo algo) {
  return add_model(std::move(name), nn::uniform_plan(layers, algo),
                   std::move(weights));
}

ModelId InferenceServer::add_model(std::string name, nn::ExecutionPlan plan,
                                   nn::WeightBank weights) {
  if (plan.layers.empty()) {
    throw std::invalid_argument("add_model: empty layer stack");
  }
  if (plan.steps.size() != plan.layers.size()) {
    throw std::invalid_argument(
        "add_model: plan steps do not match its layer stack");
  }
  // Size execution state at registration, not first request: filter
  // transforms into the cross-call cache, and one workspace slab per pool
  // participant from MemoryPlan.peak_bytes — per-request memory becomes a
  // planned constant under the configured max_batch.
  nn::prewarm_workspaces(plan, weights, config_.max_batch);
  auto model = std::make_shared<const Model>(
      Model{std::move(name), std::move(plan), std::move(weights)});
  std::lock_guard lock(models_mutex_);
  models_.push_back(std::move(model));
  return models_.size() - 1;
}

ModelId InferenceServer::add_model_planned(std::string name,
                                           std::vector<nn::LayerSpec> layers,
                                           nn::WeightBank weights,
                                           const nn::PlannerOptions& options) {
  return add_model(std::move(name), nn::plan_execution(layers, options),
                   std::move(weights));
}

std::shared_ptr<const InferenceServer::Model> InferenceServer::find_model(
    ModelId model) const {
  std::lock_guard lock(models_mutex_);
  if (model >= models_.size()) {
    throw std::invalid_argument("InferenceServer: unknown model id");
  }
  return models_[model];
}

std::future<Tensor4f> InferenceServer::submit(ModelId model,
                                              Tensor4f image) {
  const auto session = find_model(model);
  const auto& shape = image.shape();
  if (shape.n != 1) {
    throw std::invalid_argument(
        "InferenceServer::submit: expected a single image (n == 1); batching "
        "is the server's job");
  }
  // Validate the shape as far as the first layer determines it, so one
  // malformed request cannot poison the whole batch it gets coalesced
  // into (stack_images would throw on the worker, failing every future).
  const auto& layers = session->plan.layers;
  if (layers.front().kind == nn::LayerKind::kConv) {
    const auto& conv = layers.front().conv;
    if (shape.c != conv.c || shape.h != conv.h || shape.w != conv.w) {
      throw std::invalid_argument(
          "InferenceServer::submit: image shape does not match model '" +
          session->name + "' input");
    }
  } else if (layers.front().kind == nn::LayerKind::kFullyConnected) {
    if (shape.c * shape.h * shape.w != layers.front().fc_in) {
      throw std::invalid_argument(
          "InferenceServer::submit: image volume does not match model '" +
          session->name + "' fc input");
    }
  }

  // Admission control: bound submitted-but-not-completed requests.
  {
    std::unique_lock lock(inflight_mutex_);
    if (!accepting_) {
      throw std::runtime_error(
          "InferenceServer::submit: server is shut down");
    }
    if (inflight_ >= config_.max_inflight) {
      if (config_.backpressure == BackpressurePolicy::kReject) {
        stats_.on_reject();
        throw ServerOverloaded("InferenceServer::submit: " +
                               std::to_string(inflight_) +
                               " requests in flight (max_inflight reached)");
      }
      // Counted so shutdown() can wait until every parked submitter has
      // left this wait before the destructor tears the cv/mutex down.
      ++blocked_submitters_;
      inflight_cv_.wait(lock, [&] {
        return !accepting_ || inflight_ < config_.max_inflight;
      });
      --blocked_submitters_;
      if (!accepting_) {
        lock.unlock();
        inflight_cv_.notify_all();  // let shutdown() observe the decrement
        // Not counted as rejected: that counter is the kReject policy's
        // alone. This request simply never made it in before shutdown.
        throw ServerOverloaded(
            "InferenceServer::submit: server shut down while blocked on "
            "backpressure");
      }
    }
    ++inflight_;
  }

  Request request;
  request.model = model;
  request.image = std::move(image);
  request.enqueue = Clock::now();
  std::future<Tensor4f> result = request.promise.get_future();
  if (!queue_.push(std::move(request))) {
    // shutdown() closed the queue between admission and the push; the
    // request never reached the batcher, so undo its in-flight slot.
    // (on_submit deliberately hasn't fired yet: the counters must keep
    // submitted == completed + rejected + inflight reconcilable.)
    finish_requests(1);
    throw ServerOverloaded(
        "InferenceServer::submit: server shut down during submit");
  }
  stats_.on_submit();
  return result;
}

void InferenceServer::batcher_loop() {
  struct Pending {
    std::vector<Request> requests;
    Clock::time_point deadline{};
  };
  std::unordered_map<ModelId, Pending> pending;
  const auto max_wait = std::chrono::microseconds(config_.max_wait_us);

  const auto flush = [&](ModelId model, Pending& p) {
    stats_.on_batch(p.requests.size());
    Batch batch{model, std::move(p.requests)};
    batch_queue_.push(std::move(batch));  // only this thread closes it
  };
  const auto flush_expired = [&](Clock::time_point now) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->second.deadline <= now) {
        flush(it->first, it->second);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (;;) {
    std::optional<Request> request;
    if (pending.empty()) {
      request = queue_.pop();
    } else {
      auto earliest = Clock::time_point::max();
      for (const auto& [model, p] : pending) {
        earliest = std::min(earliest, p.deadline);
      }
      const auto now = Clock::now();
      if (earliest <= now) {
        flush_expired(now);
        continue;
      }
      request = queue_.pop_for(earliest - now);
    }

    if (request) {
      Pending& p = pending[request->model];
      if (p.requests.empty()) p.deadline = Clock::now() + max_wait;
      const ModelId model = request->model;
      p.requests.push_back(std::move(*request));
      if (p.requests.size() >= config_.max_batch) {
        flush(model, p);
        pending.erase(model);
      }
    } else if (queue_.closed()) {
      // Drained after shutdown: dispatch whatever is still pending so no
      // admitted future is dropped, then stop the workers.
      for (auto& [model, p] : pending) flush(model, p);
      pending.clear();
      break;
    }
    flush_expired(Clock::now());
  }
  batch_queue_.close();
}

void InferenceServer::worker_loop() {
  while (auto batch = batch_queue_.pop()) {
    execute(std::move(*batch));
  }
}

void InferenceServer::execute(Batch batch, bool is_retry) {
  const std::size_t count = batch.requests.size();
  try {
    // Inside the try: a throwing observer fails this batch's futures
    // instead of escaping the worker thread (std::terminate) — and the
    // in-flight slots are still released below. Retries are internal
    // salvage dispatches, not new batches: the observer (like
    // stats().batches) sees each flushed batch exactly once.
    if (config_.batch_observer && !is_retry) {
      config_.batch_observer(batch.model, batch.requests.size());
    }
    const auto model = find_model(batch.model);
    std::vector<const Tensor4f*> images;
    images.reserve(count);
    for (const Request& r : batch.requests) images.push_back(&r.image);
    const Tensor4f input = nn::stack_images(images);
    const Tensor4f output = nn::forward(model->plan, model->weights, input);
    std::vector<Tensor4f> outputs = nn::unstack_images(output);

    const auto now = Clock::now();
    for (std::size_t i = 0; i < count; ++i) {
      // Stats before set_value: the moment the future resolves, a client
      // may read stats() and must find its own request counted (pinned by
      // serve_test under the TSan CI job, whose scheduling jitter caught
      // the reversed order).
      stats_.on_complete(microseconds_between(batch.requests[i].enqueue, now));
      batch.requests[i].promise.set_value(std::move(outputs[i]));
    }
  } catch (...) {
    if (count > 1) {
      // One request must not poison its batch-mates (e.g. a malformed
      // image submit() could not fully validate failing stack_images for
      // everyone): retry each request alone so only the culprit fails.
      for (Request& r : batch.requests) {
        Batch single;
        single.model = batch.model;
        single.requests.push_back(std::move(r));
        execute(std::move(single), /*is_retry=*/true);
      }
      return;  // the per-request retries released the in-flight slots
    }
    const auto error = std::current_exception();
    const auto now = Clock::now();
    for (Request& r : batch.requests) {
      stats_.on_complete(microseconds_between(r.enqueue, now));
      r.promise.set_exception(error);
    }
  }
  finish_requests(count);
}

void InferenceServer::finish_requests(std::size_t count) {
  {
    std::lock_guard lock(inflight_mutex_);
    inflight_ -= std::min(count, inflight_);
  }
  inflight_cv_.notify_all();
}

void InferenceServer::drain() {
  std::unique_lock lock(inflight_mutex_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void InferenceServer::shutdown() {
  std::lock_guard shutdown_lock(shutdown_mutex_);
  {
    std::unique_lock lock(inflight_mutex_);
    accepting_ = false;
    inflight_cv_.notify_all();  // wake submitters blocked on backpressure
    // Wait for every parked submitter to leave its cv wait: returning
    // earlier would let the destructor destroy the cv/mutex under them.
    inflight_cv_.wait(lock, [&] { return blocked_submitters_ == 0; });
  }
  queue_.close();  // batcher drains, flushes pending, stops workers
  if (batcher_.joinable()) batcher_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServerStats InferenceServer::stats() const {
  std::size_t inflight = 0;
  {
    std::lock_guard lock(inflight_mutex_);
    inflight = inflight_;
  }
  return stats_.snapshot(queue_.size(), inflight);
}

const nn::WeightBank& InferenceServer::model_weights(ModelId model) const {
  // The shared_ptr keeps the Model alive for the server's lifetime;
  // handing out a reference is safe because models are never removed.
  return find_model(model)->weights;
}

const std::vector<nn::LayerSpec>& InferenceServer::model_layers(
    ModelId model) const {
  return find_model(model)->plan.layers;
}

const nn::ExecutionPlan& InferenceServer::model_plan(ModelId model) const {
  return find_model(model)->plan;
}

}  // namespace wino::serve
