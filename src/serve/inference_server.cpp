#include "serve/inference_server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <unordered_map>
#include <utility>

#include "nn/calibration_io.hpp"

namespace wino::serve {

using tensor::Tensor4f;

namespace {

ServerConfig sanitized(ServerConfig config) {
  config.max_batch = std::max<std::size_t>(1, config.max_batch);
  config.max_inflight = std::max<std::size_t>(1, config.max_inflight);
  config.worker_threads = std::max<std::size_t>(1, config.worker_threads);
  return config;
}

double microseconds_between(runtime::ClockSource::time_point from,
                            runtime::ClockSource::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(ServerConfig config)
    : config_(sanitized(std::move(config))),
      clock_(config_.clock ? config_.clock : &runtime::steady_clock_source()),
      queue_(config_.max_inflight),
      batch_queue_(config_.max_inflight),
      stats_(config_.max_batch, clock_) {
  if (!config_.calibration_cache_path.empty()) {
    // Warm nn's measured-calibration + layer-timing caches before any
    // planning happens; a stale/corrupt/foreign file simply loads nothing
    // and the first add_model_planned() probes as usual.
    nn::load_measured_state(config_.calibration_cache_path);
  }
  // The batcher's deadline waits (pop_until) are driven by this hook when
  // the clock is a ManualClock: every test advance() re-evaluates the
  // wait predicates. Against the steady source the hook never fires.
  wake_hook_token_ = clock_->add_wake_hook([this] { queue_.kick(); });
  batcher_ = std::thread(&InferenceServer::batcher_loop, this);
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back(&InferenceServer::worker_loop, this);
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

ModelId InferenceServer::add_model(std::string name,
                                   std::vector<nn::LayerSpec> layers,
                                   nn::WeightBank weights, nn::ConvAlgo algo) {
  return add_model(std::move(name), nn::uniform_plan(layers, algo),
                   std::move(weights));
}

ModelId InferenceServer::add_model(std::string name, nn::ExecutionPlan plan,
                                   nn::WeightBank weights) {
  if (plan.layers.empty()) {
    throw std::invalid_argument("add_model: empty layer stack");
  }
  if (plan.steps.size() != plan.layers.size()) {
    throw std::invalid_argument(
        "add_model: plan steps do not match its layer stack");
  }
  // Size execution state at registration, not first request: filter
  // transforms into the cross-call cache, and one workspace slab per pool
  // participant from MemoryPlan.peak_bytes — per-request memory becomes a
  // planned constant under the model's effective batch cap (the plan's
  // cache-derived ceiling clamped by the configured max_batch).
  const std::size_t warm_batch =
      plan.batch_ceiling > 0 ? std::min(plan.batch_ceiling, config_.max_batch)
                             : config_.max_batch;
  nn::prewarm_workspaces(plan, weights, warm_batch);
  auto model = std::make_shared<const Model>(
      Model{std::move(name), std::move(plan), std::move(weights)});
  std::lock_guard lock(models_mutex_);
  models_.push_back(std::move(model));
  return models_.size() - 1;
}

ModelId InferenceServer::add_model_planned(std::string name,
                                           std::vector<nn::LayerSpec> layers,
                                           nn::WeightBank weights,
                                           const nn::PlannerOptions& options) {
  const ModelId id = add_model(std::move(name),
                               nn::plan_execution(layers, options),
                               std::move(weights));
  if (!config_.calibration_cache_path.empty()) {
    // Persist whatever planning just measured (calibration probe anchors +
    // per-layer timings) so the next server process skips the probe and
    // registers this architecture near-instantly.
    nn::save_measured_state(config_.calibration_cache_path);
  }
  return id;
}

ModelId InferenceServer::add_model_quantized(
    std::string name, std::vector<nn::LayerSpec> layers,
    nn::WeightBank weights, const Tensor4f& calibration_sample,
    double max_rel_error, nn::PlannerOptions options) {
  options.quant = nn::calibrate_activations(layers, weights,
                                            calibration_sample);
  options.constraints.max_rel_error = max_rel_error;
  for (const nn::ConvAlgo algo : nn::quantized_candidates()) {
    if (std::find(options.candidates.begin(), options.candidates.end(),
                  algo) == options.candidates.end()) {
      options.candidates.push_back(algo);
    }
  }
  return add_model_planned(std::move(name), std::move(layers),
                           std::move(weights), options);
}

std::shared_ptr<const InferenceServer::Model> InferenceServer::find_model(
    ModelId model) const {
  std::lock_guard lock(models_mutex_);
  if (model >= models_.size()) {
    throw std::invalid_argument("InferenceServer: unknown model id");
  }
  return models_[model];
}

std::future<Tensor4f> InferenceServer::submit(ModelId model, Tensor4f image,
                                              SubmitOptions options) {
  const auto session = find_model(model);
  const auto& shape = image.shape();
  if (shape.n != 1) {
    throw std::invalid_argument(
        "InferenceServer::submit: expected a single image (n == 1); batching "
        "is the server's job");
  }
  // Validate the shape as far as the first layer determines it, so one
  // malformed request cannot poison the whole batch it gets coalesced
  // into (stack_images would throw on the worker, failing every future).
  const auto& layers = session->plan.layers;
  if (layers.front().kind == nn::LayerKind::kConv) {
    const auto& conv = layers.front().conv;
    if (shape.c != conv.c || shape.h != conv.h || shape.w != conv.w) {
      throw std::invalid_argument(
          "InferenceServer::submit: image shape does not match model '" +
          session->name + "' input");
    }
  } else if (layers.front().kind == nn::LayerKind::kFullyConnected) {
    if (shape.c * shape.h * shape.w != layers.front().fc_in) {
      throw std::invalid_argument(
          "InferenceServer::submit: image volume does not match model '" +
          session->name + "' fc input");
    }
  }

  const double predicted_ms = session->plan.predicted_total_ms;
  std::uint64_t seq = 0;

  // Admission control: bound submitted-but-not-completed requests, and —
  // when a cost budget is configured — bound the *predicted* backlog too.
  {
    std::unique_lock lock(inflight_mutex_);
    if (!accepting_) {
      throw std::runtime_error(
          "InferenceServer::submit: server is shut down");
    }
    if (inflight_ >= config_.max_inflight) {
      if (config_.backpressure == BackpressurePolicy::kReject) {
        stats_.on_reject();
        throw ServerOverloaded("InferenceServer::submit: " +
                               std::to_string(inflight_) +
                               " requests in flight (max_inflight reached)");
      }
      // Counted so shutdown() can wait until every parked submitter has
      // left this wait before the destructor tears the cv/mutex down.
      ++blocked_submitters_;
      inflight_cv_.wait(lock, [&] {
        return !accepting_ || inflight_ < config_.max_inflight;
      });
      --blocked_submitters_;
      if (!accepting_) {
        lock.unlock();
        inflight_cv_.notify_all();  // let shutdown() observe the decrement
        // Not counted as rejected: that counter is the kReject policy's
        // alone. This request simply never made it in before shutdown.
        throw ServerOverloaded(
            "InferenceServer::submit: server shut down while blocked on "
            "backpressure");
      }
    }
    // Cost-based admission, checked after a capacity slot is secured so a
    // kBlock submitter re-evaluates against the backlog it actually joins.
    if (config_.scheduling == SchedulingPolicy::kEdf &&
        config_.admission_budget_ms > 0.0 &&
        backlog_predicted_ms_ + predicted_ms > config_.admission_budget_ms) {
      stats_.on_admission_reject();
      throw AdmissionRejected(
          "InferenceServer::submit: predicted backlog " +
          std::to_string(backlog_predicted_ms_ + predicted_ms) +
          " ms exceeds admission budget for model '" + session->name + "'");
    }
    ++inflight_;
    backlog_predicted_ms_ += predicted_ms;
    seq = next_seq_++;
  }

  Request request;
  request.model = model;
  request.image = std::move(image);
  request.enqueue = clock_->now();
  if (options.deadline_us > 0) {
    request.deadline =
        request.enqueue + std::chrono::microseconds(options.deadline_us);
    request.has_deadline = true;
  }
  request.priority = options.priority;
  request.predicted_ms = predicted_ms;
  request.batch_cap = session->plan.batch_ceiling > 0
                          ? std::min(session->plan.batch_ceiling,
                                     config_.max_batch)
                          : config_.max_batch;
  request.seq = seq;
  request.tag = options.tag;
  std::future<Tensor4f> result = request.promise.get_future();
  if (!queue_.push(std::move(request))) {
    // shutdown() closed the queue between admission and the push; the
    // request never reached the batcher, so undo its in-flight slot.
    // (on_submit deliberately hasn't fired yet: the counters must keep
    // submitted == completed + shed + inflight reconcilable.)
    finish_requests(1, predicted_ms);
    throw ServerOverloaded(
        "InferenceServer::submit: server shut down during submit");
  }
  stats_.on_submit();
  return result;
}

bool InferenceServer::starved(const Request& r, Clock::time_point now) const {
  return config_.starvation_bound_us > 0 &&
         now - r.enqueue >=
             std::chrono::microseconds(config_.starvation_bound_us);
}

bool InferenceServer::schedule_before(const Request& a, const Request& b,
                                      Clock::time_point now) const {
  if (config_.scheduling == SchedulingPolicy::kFifo) return a.seq < b.seq;
  // Starvation promotion outranks every class: among promoted requests,
  // arrival order (they are all equally overdue by policy).
  const bool sa = starved(a, now);
  const bool sb = starved(b, now);
  if (sa != sb) return sa;
  if (sa) return a.seq < b.seq;
  if (a.priority != b.priority) return a.priority > b.priority;
  // EDF within the class; deadline-less requests sort last (time_point::max
  // from construction), ties broken by admission order for determinism.
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.seq < b.seq;
}

void InferenceServer::batcher_loop() {
  const bool edf = config_.scheduling == SchedulingPolicy::kEdf;
  const auto max_wait = std::chrono::microseconds(config_.max_wait_us);
  std::unordered_map<ModelId, Pool> pools;

  const auto absorb = [&](Request&& r) {
    Pool& pool = pools[r.model];
    const ModelId model = r.model;
    pool.cap = r.batch_cap;  // per-model constant (plan is frozen)
    pool.requests.push_back(std::move(r));
    if (config_.pending_observer) {
      config_.pending_observer(model, pool.requests.size());
    }
  };

  // Fail every pool request that can no longer make its deadline:
  // predicted to finish past it — strict inequality throughout, so a
  // request that would finish exactly on time still runs (and a zero-cost
  // request dispatched exactly at its deadline counts as on time). The
  // pure "deadline already passed" hard shed is the predicted_ms == 0
  // special case. kEdf only; kFifo never sheds.
  const auto shed_sweep = [&](Clock::time_point now) {
    for (auto& [model, pool] : pools) {
      auto& rs = pool.requests;
      for (auto it = rs.begin(); it != rs.end();) {
        const bool infeasible =
            it->has_deadline &&
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          it->predicted_ms)) >
                it->deadline;
        if (infeasible) {
          shed_request(*it);
          it = rs.erase(it);
        } else {
          ++it;
        }
      }
    }
  };

  // Dispatch up to the pool's cap (the model's plan-derived batch
  // ceiling clamped by max_batch) in schedule order, then trade batch
  // size against the tightest member's slack: grow the batch in schedule
  // order accumulating predicted cost, and stop before the member whose
  // admission would push the batch's predicted completion past the
  // tightest deadline taken so far — strict comparison, matching the shed
  // sweep, so finishing exactly on time still ships. The head request
  // always dispatches (shedding is the sweep's job, not assembly's).
  const auto assemble = [&](ModelId model, Pool& pool, Clock::time_point now) {
    auto& rs = pool.requests;
    std::stable_sort(rs.begin(), rs.end(),
                     [&](const Request& a, const Request& b) {
                       return schedule_before(a, b, now);
                     });
    const std::size_t cap =
        pool.cap > 0 ? std::min(pool.cap, rs.size()) : rs.size();
    std::size_t take = 0;
    if (edf) {
      double cost_ms = 0.0;
      auto tightest = Clock::time_point::max();
      while (take < cap) {
        const Request& r = rs[take];
        const auto cand_tightest =
            r.has_deadline ? std::min(tightest, r.deadline) : tightest;
        const double cand_cost = cost_ms + r.predicted_ms;
        if (take > 0 && cand_tightest != Clock::time_point::max() &&
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(cand_cost)) >
                cand_tightest) {
          break;
        }
        tightest = cand_tightest;
        cost_ms = cand_cost;
        ++take;
      }
      take = std::max<std::size_t>(take, 1);
    } else {
      take = cap;
    }
    Batch batch;
    batch.model = model;
    batch.requests.reserve(take);
    std::move(rs.begin(), rs.begin() + static_cast<std::ptrdiff_t>(take),
              std::back_inserter(batch.requests));
    rs.erase(rs.begin(), rs.begin() + static_cast<std::ptrdiff_t>(take));
    stats_.on_batch(batch.requests.size());
    if (config_.batch_detail_observer) {
      std::vector<BatchRequestInfo> info;
      info.reserve(batch.requests.size());
      for (const Request& r : batch.requests) {
        info.push_back({r.tag, r.priority, r.has_deadline, r.seq});
      }
      config_.batch_detail_observer(model, info);
    }
    batch_queue_.push(std::move(batch));  // only this thread closes it
  };

  // A pool is due when it holds a full batch, its oldest request has
  // waited max_wait, or (kEdf) some request has reached its launch-by
  // point — deadline minus predicted cost — so waiting any longer would
  // turn a meetable deadline into a (predictive) shed.
  const auto launch_by = [&](const Request& r) {
    return r.deadline - std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                r.predicted_ms));
  };
  const auto pool_due_at = [&](const Pool& pool) {
    auto due = Clock::time_point::max();
    for (const Request& r : pool.requests) {
      due = std::min(due, r.enqueue + max_wait);
      if (edf && r.has_deadline) due = std::min(due, launch_by(r));
    }
    return due;
  };
  const auto dispatch_ready = [&](Clock::time_point now) {
    for (auto it = pools.begin(); it != pools.end();) {
      Pool& pool = it->second;
      const std::size_t full =
          pool.cap > 0 ? pool.cap : config_.max_batch;
      while (pool.requests.size() >= full) {
        assemble(it->first, pool, now);
      }
      if (!pool.requests.empty() && pool_due_at(pool) <= now) {
        assemble(it->first, pool, now);
      }
      it = pool.requests.empty() ? pools.erase(it) : ++it;
    }
  };

  for (;;) {
    // Eager drain: coalesce everything already queued before looking at
    // the clock, so a burst of concurrent submits forms full batches.
    while (auto r = queue_.try_pop()) absorb(std::move(*r));

    const auto now = clock_->now();
    if (edf) shed_sweep(now);
    dispatch_ready(now);

    std::optional<Request> request;
    if (pools.empty()) {
      request = queue_.pop();
    } else {
      auto wake = Clock::time_point::max();
      for (const auto& [model, pool] : pools) {
        wake = std::min(wake, pool_due_at(pool));
      }
      if (wake <= now) continue;  // a sweep just changed what is due
      request = queue_.pop_until(*clock_, wake);
    }

    if (request) {
      absorb(std::move(*request));
    } else if (queue_.closed()) {
      // Drained after shutdown: dispatch whatever is still pending so no
      // admitted future is dropped (expired requests still shed — their
      // futures resolve with DeadlineMissed), then stop the workers.
      while (auto r = queue_.try_pop()) absorb(std::move(*r));
      const auto end = clock_->now();
      if (edf) shed_sweep(end);
      for (auto& [model, pool] : pools) {
        while (!pool.requests.empty()) assemble(model, pool, end);
      }
      pools.clear();
      break;
    }
    // else: a timed wait elapsed (or a kick fired); loop re-evaluates.
  }
  batch_queue_.close();
}

void InferenceServer::worker_loop() {
  while (auto batch = batch_queue_.pop()) {
    execute(std::move(*batch));
  }
}

void InferenceServer::shed_request(Request& request) {
  stats_.on_shed();
  request.promise.set_exception(std::make_exception_ptr(DeadlineMissed(
      "InferenceServer: request shed — deadline unmeetable before "
      "execution")));
  finish_requests(1, request.predicted_ms);
}

void InferenceServer::execute(Batch batch, bool is_retry) {
  // Hard shed at the execution edge: time kept moving while the batch sat
  // in the dispatch queue, so requests whose deadline passed since
  // assembly are failed here instead of burning compute. (Assembly-time
  // feasibility used the predictive check; here only certainty sheds.)
  if (config_.scheduling == SchedulingPolicy::kEdf && !is_retry) {
    const auto now = clock_->now();
    auto& rs = batch.requests;
    for (auto it = rs.begin(); it != rs.end();) {
      if (it->has_deadline && now > it->deadline) {
        shed_request(*it);
        it = rs.erase(it);
      } else {
        ++it;
      }
    }
    if (rs.empty()) return;  // whole batch expired in the dispatch queue
  }
  const std::size_t count = batch.requests.size();
  double batch_predicted_ms = 0.0;
  for (const Request& r : batch.requests) batch_predicted_ms += r.predicted_ms;
  try {
    // Inside the try: a throwing observer fails this batch's futures
    // instead of escaping the worker thread (std::terminate) — and the
    // in-flight slots are still released below. Retries are internal
    // salvage dispatches, not new batches: the observer (like
    // stats().batches) sees each flushed batch exactly once.
    if (config_.batch_observer && !is_retry) {
      config_.batch_observer(batch.model, batch.requests.size());
    }
    const auto model = find_model(batch.model);
    std::vector<const Tensor4f*> images;
    images.reserve(count);
    for (const Request& r : batch.requests) images.push_back(&r.image);
    const Tensor4f input = nn::stack_images(images);
    const Tensor4f output = nn::forward(model->plan, model->weights, input);
    std::vector<Tensor4f> outputs = nn::unstack_images(output);

    const auto now = clock_->now();
    for (std::size_t i = 0; i < count; ++i) {
      Request& r = batch.requests[i];
      // Stats before set_value: the moment the future resolves, a client
      // may read stats() and must find its own request counted (pinned by
      // serve_test under the TSan CI job, whose scheduling jitter caught
      // the reversed order).
      stats_.on_complete(microseconds_between(r.enqueue, now),
                         r.has_deadline && now > r.deadline);
      r.promise.set_value(std::move(outputs[i]));
    }
  } catch (...) {
    if (count > 1) {
      // One request must not poison its batch-mates (e.g. a malformed
      // image submit() could not fully validate failing stack_images for
      // everyone): retry each request alone so only the culprit fails.
      for (Request& r : batch.requests) {
        Batch single;
        single.model = batch.model;
        single.requests.push_back(std::move(r));
        execute(std::move(single), /*is_retry=*/true);
      }
      return;  // the per-request retries released the in-flight slots
    }
    const auto error = std::current_exception();
    const auto now = clock_->now();
    for (Request& r : batch.requests) {
      stats_.on_complete(microseconds_between(r.enqueue, now),
                         r.has_deadline && now > r.deadline);
      r.promise.set_exception(error);
    }
  }
  finish_requests(count, batch_predicted_ms);
}

void InferenceServer::finish_requests(std::size_t count, double predicted_ms) {
  {
    std::lock_guard lock(inflight_mutex_);
    inflight_ -= std::min(count, inflight_);
    backlog_predicted_ms_ =
        std::max(0.0, backlog_predicted_ms_ - predicted_ms);
    if (inflight_ == 0) backlog_predicted_ms_ = 0.0;  // kill fp drift
  }
  inflight_cv_.notify_all();
}

void InferenceServer::drain() {
  std::unique_lock lock(inflight_mutex_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void InferenceServer::shutdown() {
  std::lock_guard shutdown_lock(shutdown_mutex_);
  {
    std::unique_lock lock(inflight_mutex_);
    accepting_ = false;
    inflight_cv_.notify_all();  // wake submitters blocked on backpressure
    // Wait for every parked submitter to leave its cv wait: returning
    // earlier would let the destructor destroy the cv/mutex under them.
    inflight_cv_.wait(lock, [&] { return blocked_submitters_ == 0; });
  }
  queue_.close();  // batcher drains, flushes pending, stops workers
  if (batcher_.joinable()) batcher_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (wake_hook_token_ != 0) {
    // After this returns the hook can never run again (fire_wake_hooks
    // holds the registry lock), so destroying queue_ is safe even while a
    // test thread keeps advancing the ManualClock.
    clock_->remove_wake_hook(wake_hook_token_);
    wake_hook_token_ = 0;
  }
}

ServerStats InferenceServer::stats() const {
  std::size_t inflight = 0;
  std::size_t blocked = 0;
  double backlog_ms = 0.0;
  {
    std::lock_guard lock(inflight_mutex_);
    inflight = inflight_;
    blocked = blocked_submitters_;
    backlog_ms = backlog_predicted_ms_;
  }
  return stats_.snapshot(queue_.size(), inflight, blocked, backlog_ms);
}

const nn::WeightBank& InferenceServer::model_weights(ModelId model) const {
  // The shared_ptr keeps the Model alive for the server's lifetime;
  // handing out a reference is safe because models are never removed.
  return find_model(model)->weights;
}

const std::vector<nn::LayerSpec>& InferenceServer::model_layers(
    ModelId model) const {
  return find_model(model)->plan.layers;
}

const nn::ExecutionPlan& InferenceServer::model_plan(ModelId model) const {
  return find_model(model)->plan;
}

}  // namespace wino::serve
