// Serving-side observability: per-request latency percentiles, batch-size
// histogram, throughput, queue depth and the scheduling outcome counters
// (rejections, admission rejections, deadline sheds, late completions)
// for the InferenceServer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/clock.hpp"

namespace wino::serve {

/// \brief Immutable snapshot of a server's aggregate statistics.
///
/// Produced by InferenceServer::stats(); all counters are cumulative since
/// server construction. Latency percentiles are computed over every
/// completed request (up to an internal sample cap) at snapshot time.
///
/// Outcome taxonomy (every submitted request ends in exactly one):
///   completed          future resolved with a value (or the forward
///                      pass's own exception) — `completed_late` counts
///                      the subset that finished past their deadline;
///   rejected           refused at submit by the kReject backpressure
///                      policy (ServerOverloaded);
///   admission_rejected refused at submit because the predicted backlog
///                      exceeded admission_budget_ms (AdmissionRejected);
///   shed               admitted but failed with DeadlineMissed because
///                      the deadline passed (or the predicted completion
///                      missed it) before execution.
struct ServerStats {
  std::uint64_t submitted = 0;  ///< requests admitted past backpressure
  std::uint64_t rejected = 0;   ///< requests refused by the kReject policy
  std::uint64_t admission_rejected = 0;  ///< refused by the cost budget
  std::uint64_t completed = 0;  ///< futures fulfilled (values or errors)
  std::uint64_t completed_late = 0;  ///< completions past their deadline
  std::uint64_t shed = 0;       ///< admitted, then failed DeadlineMissed
  std::uint64_t batches = 0;    ///< batches dispatched to workers

  /// Requests sitting in the submission queue right now (excludes requests
  /// already pulled into the batcher's pending window or executing).
  std::size_t queue_depth = 0;
  /// Submitted-but-not-completed requests right now (queued + batching +
  /// executing) — the quantity the backpressure policy bounds.
  std::size_t inflight = 0;
  /// Submitters currently parked in the kBlock backpressure wait.
  std::size_t blocked_submitters = 0;
  /// Sum of ExecutionPlan.predicted_total_ms over in-flight requests —
  /// the signal cost-based admission compares against admission_budget_ms.
  double backlog_predicted_ms = 0.0;

  /// histogram[s] counts dispatched batches of size s; index 0 is unused.
  std::vector<std::uint64_t> batch_size_histogram;
  double mean_batch_size = 0.0;

  // Submit-to-completion wall latency over completed requests.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double p999_latency_us = 0.0;
  double max_latency_us = 0.0;

  /// completed / elapsed, where elapsed spans first submit to last
  /// completion (0 until the first request completes).
  double throughput_rps = 0.0;
  double elapsed_s = 0.0;
};

/// \brief Thread-safe recorder behind ServerStats.
///
/// Writers (submit path, batcher, workers) call the on_* hooks; snapshot()
/// assembles a consistent ServerStats. Latencies are kept exactly up to
/// kMaxLatencySamples and further samples are dropped from the percentile
/// set (counters keep counting) — serving benches stay well below the
/// cap, and the cap bounds how long snapshot() holds the mutex copying
/// the sample set out (the copy stalls the serving hot path's hooks).
///
/// Timestamps (first submit / last completion, for throughput) come from
/// the injected ClockSource, so a server on a ManualClock reports fully
/// deterministic elapsed/throughput numbers.
class StatsRecorder {
 public:
  /// \param max_batch sizes the batch histogram (indices 0..max_batch).
  /// \param clock time source for the elapsed/throughput window; must
  ///              outlive the recorder.
  explicit StatsRecorder(std::size_t max_batch,
                         const runtime::ClockSource* clock =
                             &runtime::steady_clock_source());

  void on_submit();
  void on_reject();
  void on_admission_reject();
  void on_shed();
  /// \param batch_size number of requests in a dispatched batch.
  void on_batch(std::size_t batch_size);
  /// \param latency_us submit-to-completion latency of one request.
  /// \param late       the request had a deadline and missed it.
  void on_complete(double latency_us, bool late = false);

  /// \param queue_depth current submission-queue occupancy.
  /// \param inflight current submitted-but-not-completed count.
  /// \param blocked_submitters submitters parked in the kBlock wait.
  /// \param backlog_predicted_ms current predicted-cost backlog.
  [[nodiscard]] ServerStats snapshot(std::size_t queue_depth,
                                     std::size_t inflight,
                                     std::size_t blocked_submitters = 0,
                                     double backlog_predicted_ms = 0.0) const;

 private:
  static constexpr std::size_t kMaxLatencySamples = 1u << 16;

  const runtime::ClockSource* clock_;
  mutable std::mutex mutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t admission_rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t completed_late_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_requests_ = 0;
  std::vector<std::uint64_t> histogram_;
  std::vector<double> latencies_us_;
  runtime::ClockSource::time_point first_submit_{};
  runtime::ClockSource::time_point last_complete_{};
  bool any_submit_ = false;
  bool any_complete_ = false;
};

}  // namespace wino::serve
