// Serving-side observability: per-request latency percentiles, batch-size
// histogram, throughput and queue depth for the InferenceServer.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace wino::serve {

/// \brief Immutable snapshot of a server's aggregate statistics.
///
/// Produced by InferenceServer::stats(); all counters are cumulative since
/// server construction. Latency percentiles are computed over every
/// completed request (up to an internal sample cap) at snapshot time.
struct ServerStats {
  std::uint64_t submitted = 0;  ///< requests admitted past backpressure
  std::uint64_t rejected = 0;   ///< requests refused by the kReject policy
  std::uint64_t completed = 0;  ///< futures fulfilled (values or errors)
  std::uint64_t batches = 0;    ///< batches dispatched to workers

  /// Requests sitting in the submission queue right now (excludes requests
  /// already pulled into the batcher's pending window or executing).
  std::size_t queue_depth = 0;
  /// Submitted-but-not-completed requests right now (queued + batching +
  /// executing) — the quantity the backpressure policy bounds.
  std::size_t inflight = 0;

  /// histogram[s] counts dispatched batches of size s; index 0 is unused.
  std::vector<std::uint64_t> batch_size_histogram;
  double mean_batch_size = 0.0;

  // Submit-to-completion wall latency over completed requests.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;

  /// completed / elapsed, where elapsed spans first submit to last
  /// completion (0 until the first request completes).
  double throughput_rps = 0.0;
  double elapsed_s = 0.0;
};

/// \brief Thread-safe recorder behind ServerStats.
///
/// Writers (submit path, batcher, workers) call the on_* hooks; snapshot()
/// assembles a consistent ServerStats. Latencies are kept exactly up to
/// kMaxLatencySamples and further samples are dropped from the percentile
/// set (counters keep counting) — serving benches stay well below the
/// cap, and the cap bounds how long snapshot() holds the mutex copying
/// the sample set out (the copy stalls the serving hot path's hooks).
class StatsRecorder {
 public:
  /// \param max_batch sizes the batch histogram (indices 0..max_batch).
  explicit StatsRecorder(std::size_t max_batch);

  void on_submit();
  void on_reject();
  /// \param batch_size number of requests in a dispatched batch.
  void on_batch(std::size_t batch_size);
  /// \param latency_us submit-to-completion latency of one request.
  void on_complete(double latency_us);

  /// \param queue_depth current submission-queue occupancy.
  /// \param inflight current submitted-but-not-completed count.
  [[nodiscard]] ServerStats snapshot(std::size_t queue_depth,
                                     std::size_t inflight) const;

 private:
  static constexpr std::size_t kMaxLatencySamples = 1u << 16;

  using Clock = std::chrono::steady_clock;

  mutable std::mutex mutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_requests_ = 0;
  std::vector<std::uint64_t> histogram_;
  std::vector<double> latencies_us_;
  Clock::time_point first_submit_{};
  Clock::time_point last_complete_{};
  bool any_submit_ = false;
  bool any_complete_ = false;
};

}  // namespace wino::serve
