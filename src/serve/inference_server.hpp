// Traffic-serving front end over nn::forward: a bounded MPMC submission
// queue, a dynamic batcher that coalesces concurrently submitted
// single-image requests into batches, and worker threads that dispatch
// each batch to the batch-parallel forward pass — where the PR 2
// cross-call transformed-kernel cache amortises Winograd filter
// transforms across every request that shares a WeightBank.
//
// The numerical contract carries over unchanged: every image is computed
// independently (batch-parallel fan-out, per-image reductions), so a
// served result is bit-identical to running nn::forward on that image
// alone, whatever batch its request happened to be coalesced into.
// tests/serve_test.cpp pins this.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "nn/forward.hpp"
#include "nn/network.hpp"
#include "nn/plan.hpp"
#include "runtime/bounded_queue.hpp"
#include "serve/stats.hpp"
#include "tensor/tensor.hpp"

namespace wino::serve {

/// Opaque handle returned by InferenceServer::add_model and passed to
/// submit() to pick the model session.
using ModelId = std::size_t;

/// What submit() does when the server already holds max_inflight
/// submitted-but-not-completed requests.
enum class BackpressurePolicy {
  kBlock,   ///< wait until capacity frees up (or the server shuts down)
  kReject,  ///< throw ServerOverloaded immediately
};

/// Thrown by submit() under the kReject policy when the server is at
/// capacity, and by blocked submitters woken by shutdown().
class ServerOverloaded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// \brief Tuning knobs for an InferenceServer.
struct ServerConfig {
  /// Largest batch the dynamic batcher assembles; a pending batch is
  /// dispatched as soon as it reaches this size.
  std::size_t max_batch = 8;

  /// How long the oldest request in a pending batch may wait for
  /// companions before the partial batch is dispatched anyway. This is
  /// the knob trading latency (low values) for batching efficiency.
  std::uint64_t max_wait_us = 2000;

  /// Bound on submitted-but-not-completed requests (queued + pending in
  /// the batcher + executing). Admission control applies the backpressure
  /// policy at this bound; it also caps the submission queue itself.
  std::size_t max_inflight = 256;

  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// Threads executing batches. Each worker runs nn::forward, which
  /// itself fans out on the process-global ThreadPool, so 1 is usually
  /// right; >1 overlaps batch setup/teardown with compute.
  std::size_t worker_threads = 1;

  /// Observability/test hook: called on the worker thread with
  /// (model, batch size) immediately before a batch executes. Blocking
  /// here stalls that worker — tests use this to freeze the pipeline and
  /// make backpressure deterministic.
  std::function<void(ModelId, std::size_t)> batch_observer;
};

/// \brief Multi-model inference server with dynamic request batching.
///
/// Usage:
/// \code
///   serve::InferenceServer server(cfg);
///   auto id = server.add_model("vgg", layers, std::move(weights),
///                              nn::ConvAlgo::kWinograd2);
///   auto future = server.submit(id, image);   // image is (1, c, h, w)
///   tensor::Tensor4f out = future.get();
///   server.shutdown();                        // drains, never drops futures
/// \endcode
///
/// Threading model: submit() may be called from any number of client
/// threads. One batcher thread pops requests from the bounded submission
/// queue into a per-model pending window and flushes a model's window
/// when it reaches max_batch or its oldest request has waited max_wait_us;
/// worker threads execute flushed batches via nn::forward and fulfil the
/// per-request promises. Requests are only ever batched with requests for
/// the same model, so each batch hits one WeightBank's cached transforms.
class InferenceServer {
 public:
  explicit InferenceServer(ServerConfig config = {});

  /// Joins all threads; equivalent to shutdown().
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Register a model session. Thread-safe; may be called while serving.
  /// The session's ExecutionPlan is built once here — the trivial uniform
  /// plan for `algo` — and reused by every batch the session ever
  /// executes.
  /// \param name    label used in errors and stats output.
  /// \param layers  layer stack executed per request.
  /// \param weights weights for the stack; the WeightBank's version keys
  ///                the process-wide transformed-kernel cache, giving this
  ///                session its own cached transforms.
  /// \param algo    convolution algorithm (Winograd variants engage the
  ///                transform cache).
  /// \return handle to pass to submit().
  ModelId add_model(std::string name, std::vector<nn::LayerSpec> layers,
                    nn::WeightBank weights,
                    nn::ConvAlgo algo = nn::ConvAlgo::kWinograd2);

  /// Register a model session under a caller-supplied execution plan —
  /// typically nn::plan_execution's cost-model-driven per-layer mix. The
  /// plan carries its own copy of the layer stack; every batch dispatched
  /// to this session runs the plan-driven forward.
  ModelId add_model(std::string name, nn::ExecutionPlan plan,
                    nn::WeightBank weights);

  /// Register a planned session: score the stack with the cost model
  /// (nn::plan_execution, one-shot calibration probe cached per process)
  /// and serve the resulting per-layer mix.
  ModelId add_model_planned(std::string name,
                            std::vector<nn::LayerSpec> layers,
                            nn::WeightBank weights,
                            const nn::PlannerOptions& options = {});

  /// Submit one image for inference.
  /// \param model handle from add_model().
  /// \param image single-image tensor, shape (1, c, h, w) matching the
  ///              model's first layer.
  /// \return future resolving to the model's output activation for this
  ///         image (or to an exception if the forward pass throws). If a
  ///         batch fails as a whole, its requests are retried one by one,
  ///         so a malformed request never fails its batch-mates.
  /// \throws ServerOverloaded under kReject at capacity, or when a
  ///         kBlock wait is interrupted by shutdown().
  /// \throws std::invalid_argument on unknown model or shape mismatch.
  /// \throws std::runtime_error if the server is already shut down.
  std::future<tensor::Tensor4f> submit(ModelId model,
                                       tensor::Tensor4f image);

  /// Block until every admitted request has completed. Does not stop the
  /// server — new submits are still accepted (and can extend the wait).
  void drain();

  /// Stop accepting submissions, flush every pending batch, complete all
  /// admitted requests, and join all threads. No admitted future is ever
  /// dropped. Idempotent; blocked submitters are woken with
  /// ServerOverloaded.
  void shutdown();

  /// Consistent snapshot of the aggregate serving statistics.
  [[nodiscard]] ServerStats stats() const;

  /// The registered model's weights (e.g. for cross-checking served
  /// outputs against direct nn::forward in tests).
  [[nodiscard]] const nn::WeightBank& model_weights(ModelId model) const;

  /// The registered model's layer stack.
  [[nodiscard]] const std::vector<nn::LayerSpec>& model_layers(
      ModelId model) const;

  /// The execution plan the session runs every batch with.
  [[nodiscard]] const nn::ExecutionPlan& model_plan(ModelId model) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Model {
    std::string name;
    /// Built at registration, reused by every batch: the layer stack
    /// lives inside the plan (plan.layers).
    nn::ExecutionPlan plan;
    nn::WeightBank weights;
  };

  struct Request {
    ModelId model = 0;
    tensor::Tensor4f image;
    std::promise<tensor::Tensor4f> promise;
    Clock::time_point enqueue{};
  };

  struct Batch {
    ModelId model = 0;
    std::vector<Request> requests;
  };

  [[nodiscard]] std::shared_ptr<const Model> find_model(ModelId model) const;
  void batcher_loop();
  void worker_loop();
  void execute(Batch batch, bool is_retry = false);
  void finish_requests(std::size_t count);

  ServerConfig config_;

  mutable std::mutex models_mutex_;
  std::vector<std::shared_ptr<const Model>> models_;

  runtime::BoundedQueue<Request> queue_;
  runtime::BoundedQueue<Batch> batch_queue_;

  // Admission control + drain bookkeeping.
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;
  std::size_t blocked_submitters_ = 0;  ///< parked in submit()'s cv wait
  bool accepting_ = true;

  StatsRecorder stats_;

  std::mutex shutdown_mutex_;  ///< serialises concurrent shutdown() calls
  std::thread batcher_;
  std::vector<std::thread> workers_;
};

}  // namespace wino::serve
