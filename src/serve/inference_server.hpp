// Traffic-serving front end over nn::forward: a bounded MPMC submission
// queue, a deadline-aware dynamic batcher that coalesces concurrently
// submitted single-image requests into batches, and worker threads that
// dispatch each batch to the batch-parallel forward pass — where the PR 2
// cross-call transformed-kernel cache amortises Winograd filter
// transforms across every request that shares a WeightBank.
//
// Scheduling model (PR 8): requests carry {priority, deadline}. Under the
// default kEdf policy the batcher assembles each batch
// earliest-deadline-first within priority class (deadline-less requests
// sort last in their class; a configurable starvation bound promotes any
// request that has waited too long to the front). Requests whose deadline
// has already passed — or whose predicted completion, estimated from the
// session ExecutionPlan's predicted_total_ms, would miss it — are shed
// with the distinct DeadlineMissed outcome instead of wasting compute.
// Cost-based admission control (admission_budget_ms) rejects at submit
// time when the predicted-ms backlog of in-flight requests exceeds the
// budget. kFifo preserves the PR 3 arrival-order batcher (no reordering,
// no shedding) as the A/B baseline for bench/traffic_replay.
//
// All time flows through an injectable runtime::ClockSource, so every
// timeout/deadline behaviour is deterministic under a test ManualClock
// (tests/serve_test.cpp runs the flush/deadline scenarios without sleeps).
//
// The numerical contract carries over unchanged: every image is computed
// independently (batch-parallel fan-out, per-image reductions), so a
// served result is bit-identical to running nn::forward on that image
// alone, whatever batch its request happened to be coalesced into — and
// whatever position EDF assembly gave it. tests/serve_test.cpp pins this.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "nn/forward.hpp"
#include "nn/network.hpp"
#include "nn/plan.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/clock.hpp"
#include "serve/stats.hpp"
#include "tensor/tensor.hpp"

namespace wino::serve {

/// Opaque handle returned by InferenceServer::add_model and passed to
/// submit() to pick the model session.
using ModelId = std::size_t;

/// What submit() does when the server already holds max_inflight
/// submitted-but-not-completed requests.
enum class BackpressurePolicy {
  kBlock,   ///< wait until capacity frees up (or the server shuts down)
  kReject,  ///< throw ServerOverloaded immediately
};

/// How the batcher orders requests into batches.
enum class SchedulingPolicy {
  /// Earliest-deadline-first within priority class, deadline shedding and
  /// (when configured) cost-based admission. With no priorities/deadlines
  /// in play this degenerates to exact arrival order, so it is the
  /// default.
  kEdf,
  /// PR 3 behaviour: strict arrival order, never sheds, ignores
  /// priorities/deadlines for ordering. The A/B baseline the traffic
  /// replay bench compares EDF against.
  kFifo,
};

/// Thrown by submit() under the kReject policy when the server is at
/// capacity, and by blocked submitters woken by shutdown().
class ServerOverloaded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by submit() when cost-based admission is enabled and admitting
/// this request would push the predicted backlog past admission_budget_ms.
/// Distinct from ServerOverloaded (capacity) so callers can separate
/// "queue full" from "queue predicted too slow" — but derived from it, so
/// a generic overload handler catches both.
class AdmissionRejected : public ServerOverloaded {
 public:
  using ServerOverloaded::ServerOverloaded;
};

/// Failure delivered through a request's future when the scheduler shed it:
/// its deadline passed (or the predicted completion missed it) before
/// execution. The distinct type is the client's signal to degrade/retry
/// rather than treat the miss as a model error.
class DeadlineMissed : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-request scheduling parameters for submit().
struct SubmitOptions {
  /// Higher runs first; requests only ever compete within their model's
  /// batches. Default 0.
  int priority = 0;
  /// Completion deadline relative to submit time, in microseconds; 0
  /// means best-effort (no deadline, never shed, sorts after deadline'd
  /// requests of the same priority).
  std::uint64_t deadline_us = 0;
  /// Opaque client tag echoed in BatchRequestInfo (tests/benches identify
  /// individual requests in assembled batches with it).
  std::uint64_t tag = 0;
};

/// One request's scheduling metadata as seen at batch assembly, echoed to
/// ServerConfig::batch_detail_observer in assembly order.
struct BatchRequestInfo {
  std::uint64_t tag = 0;
  int priority = 0;
  bool has_deadline = false;
  std::uint64_t seq = 0;  ///< admission order (process of one server)
};

/// \brief Tuning knobs for an InferenceServer.
struct ServerConfig {
  /// Largest batch the dynamic batcher assembles; a pending batch is
  /// dispatched as soon as it reaches this size. Per model, the effective
  /// cap is min(max_batch, the session plan's cache-derived batch_ceiling)
  /// — a model whose Winograd working set only keeps N images cache-
  /// resident is batched to N, not to the global knob (see
  /// nn::plan_batch_ceiling). EDF assembly may further trim a batch so
  /// the tightest member's deadline survives the members queued ahead of
  /// it (slack trading; see batcher_loop).
  std::size_t max_batch = 8;

  /// How long the oldest request in a pending batch may wait for
  /// companions before the partial batch is dispatched anyway. This is
  /// the knob trading latency (low values) for batching efficiency.
  std::uint64_t max_wait_us = 2000;

  /// Bound on submitted-but-not-completed requests (queued + pending in
  /// the batcher + executing). Admission control applies the backpressure
  /// policy at this bound; it also caps the submission queue itself.
  std::size_t max_inflight = 256;

  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  SchedulingPolicy scheduling = SchedulingPolicy::kEdf;

  /// Cost-based admission (kEdf only): reject a submit with
  /// AdmissionRejected when the sum of predicted_total_ms over in-flight
  /// requests, plus this request's own predicted cost, would exceed the
  /// budget. 0 disables the check. The per-request cost is the session
  /// ExecutionPlan's predicted_total_ms (the PR 5 planner's estimate; 0
  /// for plans built without scoring, which makes those requests free).
  double admission_budget_ms = 0.0;

  /// Starvation bound (kEdf only): a pending request that has waited this
  /// long is promoted ahead of every priority class at the next assembly,
  /// in arrival order among promoted peers — so best-effort (deadline 0,
  /// priority 0) traffic is never starved indefinitely by a stream of
  /// urgent requests. 0 disables promotion.
  std::uint64_t starvation_bound_us = 0;

  /// Time source for every timeout/deadline decision and latency stat.
  /// Null selects the process-wide steady clock; tests inject a
  /// runtime::ManualClock to script time. Must outlive the server.
  runtime::ClockSource* clock = nullptr;

  /// Calibration/plan-cache persistence: when non-empty, the constructor
  /// warms nn's measured-calibration and per-layer timing caches from
  /// this file (if it exists and matches the local CPU signature + code
  /// hash), and add_model_planned() persists the updated caches back
  /// after planning. A restarted server therefore skips the
  /// microbenchmark probe entirely. See nn/calibration_io.hpp.
  std::string calibration_cache_path;

  /// Threads executing batches. Each worker runs nn::forward, which
  /// itself fans out on the process-global ThreadPool, so 1 is usually
  /// right; >1 overlaps batch setup/teardown with compute.
  std::size_t worker_threads = 1;

  /// Observability/test hook: called on the worker thread with
  /// (model, batch size) immediately before a batch executes. Blocking
  /// here stalls that worker — tests use this to freeze the pipeline and
  /// make backpressure deterministic.
  std::function<void(ModelId, std::size_t)> batch_observer;

  /// Observability/test hook: called on the batcher thread at batch
  /// assembly with the batch's requests in assembly (execution) order —
  /// the EDF ordering tests read priorities/tags from here.
  std::function<void(ModelId, const std::vector<BatchRequestInfo>&)>
      batch_detail_observer;

  /// Observability/test hook: called on the batcher thread after a
  /// request enters its model's pending pool, with the pool's new size.
  /// Deterministic-clock tests use it as the "requests have reached the
  /// scheduler" barrier before advancing the ManualClock.
  std::function<void(ModelId, std::size_t)> pending_observer;
};

/// \brief Multi-model inference server with deadline-aware dynamic
/// request batching.
///
/// Usage:
/// \code
///   serve::InferenceServer server(cfg);
///   auto id = server.add_model("vgg", layers, std::move(weights),
///                              nn::ConvAlgo::kWinograd2);
///   auto future = server.submit(id, image, {.priority = 1,
///                                           .deadline_us = 20'000});
///   tensor::Tensor4f out = future.get();  // throws DeadlineMissed if shed
///   server.shutdown();                    // drains, never drops futures
/// \endcode
///
/// Threading model: submit() may be called from any number of client
/// threads. One batcher thread pops requests from the bounded submission
/// queue into per-model pending pools and assembles a model's batch when
/// the pool reaches max_batch, its oldest request has waited max_wait_us,
/// or a deadline'd request reaches its launch-by point (deadline minus
/// predicted cost); worker threads execute assembled batches via
/// nn::forward and fulfil the per-request promises. Requests are only
/// ever batched with requests for the same model, so each batch hits one
/// WeightBank's cached transforms.
class InferenceServer {
 public:
  explicit InferenceServer(ServerConfig config = {});

  /// Joins all threads; equivalent to shutdown().
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Register a model session. Thread-safe; may be called while serving.
  /// The session's ExecutionPlan is built once here — the trivial uniform
  /// plan for `algo` — and reused by every batch the session ever
  /// executes.
  /// \param name    label used in errors and stats output.
  /// \param layers  layer stack executed per request.
  /// \param weights weights for the stack; the WeightBank's version keys
  ///                the process-wide transformed-kernel cache, giving this
  ///                session its own cached transforms.
  /// \param algo    convolution algorithm (Winograd variants engage the
  ///                transform cache).
  /// \return handle to pass to submit().
  ModelId add_model(std::string name, std::vector<nn::LayerSpec> layers,
                    nn::WeightBank weights,
                    nn::ConvAlgo algo = nn::ConvAlgo::kWinograd2);

  /// Register a model session under a caller-supplied execution plan —
  /// typically nn::plan_execution's cost-model-driven per-layer mix. The
  /// plan carries its own copy of the layer stack; every batch dispatched
  /// to this session runs the plan-driven forward. The plan's
  /// predicted_total_ms doubles as the request cost for admission control
  /// and deadline feasibility.
  ModelId add_model(std::string name, nn::ExecutionPlan plan,
                    nn::WeightBank weights);

  /// Register a planned session: score the stack with the cost model
  /// (nn::plan_execution, one-shot calibration probe cached per process)
  /// and serve the resulting per-layer mix. With
  /// ServerConfig::calibration_cache_path set and warm, the scoring
  /// measurements come from the persisted cache and this is near-instant.
  ModelId add_model_planned(std::string name,
                            std::vector<nn::LayerSpec> layers,
                            nn::WeightBank weights,
                            const nn::PlannerOptions& options = {});

  /// Register a mixed-precision session under an accuracy budget: calibrate
  /// each conv layer's activation range on `calibration_sample` (any batch
  /// of representative inputs matching the first layer), extend the
  /// candidate set with the int8 algorithms (unless the caller's options
  /// already list them), and plan with
  /// PlanConstraints::max_rel_error = `max_rel_error` — so int8 runs
  /// exactly where nn::predict_layer_rel_error deems it safe, and fp32
  /// holds the rest. Persists measured planning state like
  /// add_model_planned.
  /// \throws std::invalid_argument when no candidate fits the budget at
  ///         some layer (from nn::plan_execution).
  ModelId add_model_quantized(std::string name,
                              std::vector<nn::LayerSpec> layers,
                              nn::WeightBank weights,
                              const tensor::Tensor4f& calibration_sample,
                              double max_rel_error,
                              nn::PlannerOptions options = {});

  /// Submit one image for inference.
  /// \param model handle from add_model().
  /// \param image single-image tensor, shape (1, c, h, w) matching the
  ///              model's first layer.
  /// \param options priority / relative deadline / client tag.
  /// \return future resolving to the model's output activation for this
  ///         image (or to an exception if the forward pass throws, or to
  ///         DeadlineMissed if the scheduler shed the request). If a
  ///         batch fails as a whole, its requests are retried one by one,
  ///         so a malformed request never fails its batch-mates.
  /// \throws ServerOverloaded under kReject at capacity, or when a
  ///         kBlock wait is interrupted by shutdown().
  /// \throws AdmissionRejected when cost-based admission is enabled and
  ///         the predicted backlog exceeds admission_budget_ms.
  /// \throws std::invalid_argument on unknown model or shape mismatch.
  /// \throws std::runtime_error if the server is already shut down.
  std::future<tensor::Tensor4f> submit(ModelId model, tensor::Tensor4f image,
                                       SubmitOptions options = {});

  /// Block until every admitted request has completed. Does not stop the
  /// server — new submits are still accepted (and can extend the wait).
  void drain();

  /// Stop accepting submissions, flush every pending batch, complete all
  /// admitted requests, and join all threads. No admitted future is ever
  /// dropped. Idempotent; blocked submitters are woken with
  /// ServerOverloaded.
  void shutdown();

  /// Consistent snapshot of the aggregate serving statistics.
  [[nodiscard]] ServerStats stats() const;

  /// The registered model's weights (e.g. for cross-checking served
  /// outputs against direct nn::forward in tests).
  [[nodiscard]] const nn::WeightBank& model_weights(ModelId model) const;

  /// The registered model's layer stack.
  [[nodiscard]] const std::vector<nn::LayerSpec>& model_layers(
      ModelId model) const;

  /// The execution plan the session runs every batch with.
  [[nodiscard]] const nn::ExecutionPlan& model_plan(ModelId model) const;

 private:
  using Clock = runtime::ClockSource;

  struct Model {
    std::string name;
    /// Built at registration, reused by every batch: the layer stack
    /// lives inside the plan (plan.layers).
    nn::ExecutionPlan plan;
    nn::WeightBank weights;
  };

  struct Request {
    ModelId model = 0;
    tensor::Tensor4f image;
    std::promise<tensor::Tensor4f> promise;
    Clock::time_point enqueue{};
    /// Absolute deadline; time_point::max() when best-effort.
    Clock::time_point deadline = Clock::time_point::max();
    bool has_deadline = false;
    int priority = 0;
    /// Session predicted_total_ms at admission — the admission/shedding
    /// cost signal, released when the request finishes.
    double predicted_ms = 0.0;
    /// Effective batch cap for this request's model: the session plan's
    /// cache-derived batch_ceiling clamped by config max_batch (just
    /// max_batch when the plan has no ceiling). Carried per request so
    /// the batcher needs no model lookup.
    std::size_t batch_cap = 0;
    std::uint64_t seq = 0;
    std::uint64_t tag = 0;
  };

  struct Batch {
    ModelId model = 0;
    std::vector<Request> requests;
  };

  /// One model's pending requests inside the batcher (unsorted; EDF order
  /// is imposed at assembly).
  struct Pool {
    std::vector<Request> requests;
    /// Model batch cap (Request::batch_cap of its members).
    std::size_t cap = 0;
  };

  [[nodiscard]] std::shared_ptr<const Model> find_model(ModelId model) const;
  void batcher_loop();
  void worker_loop();
  void execute(Batch batch, bool is_retry = false);
  /// Fail one admitted request with DeadlineMissed and release its slot.
  void shed_request(Request& request);
  void finish_requests(std::size_t count, double predicted_ms);

  [[nodiscard]] bool starved(const Request& r, Clock::time_point now) const;
  /// Assembly order: starvation-promoted first (arrival order), then
  /// priority desc, deadline asc (none last), admission seq.
  [[nodiscard]] bool schedule_before(const Request& a, const Request& b,
                                     Clock::time_point now) const;

  ServerConfig config_;
  runtime::ClockSource* clock_;  ///< never null after construction
  std::size_t wake_hook_token_ = 0;

  mutable std::mutex models_mutex_;
  std::vector<std::shared_ptr<const Model>> models_;

  runtime::BoundedQueue<Request> queue_;
  runtime::BoundedQueue<Batch> batch_queue_;

  // Admission control + drain bookkeeping.
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;
  double backlog_predicted_ms_ = 0.0;   ///< admission signal
  std::size_t blocked_submitters_ = 0;  ///< parked in submit()'s cv wait
  std::uint64_t next_seq_ = 0;
  bool accepting_ = true;

  StatsRecorder stats_;

  std::mutex shutdown_mutex_;  ///< serialises concurrent shutdown() calls
  std::thread batcher_;
  std::vector<std::thread> workers_;
};

}  // namespace wino::serve
