#include "serve/stats.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace wino::serve {

namespace {

/// Nearest-rank percentile, in place (nth_element reorders `samples`, so
/// callers share one scratch copy across quantiles instead of copying the
/// sample set per call); q in [0, 1]. An empty sample set — a snapshot
/// taken before any request completed — reports 0.0 rather than reading
/// samples[0] of an empty vector (pinned by tests/serve_test.cpp).
double percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

}  // namespace

StatsRecorder::StatsRecorder(std::size_t max_batch,
                             const runtime::ClockSource* clock)
    : clock_(clock), histogram_(max_batch + 1, 0) {}

void StatsRecorder::on_submit() {
  std::lock_guard lock(mutex_);
  ++submitted_;
  if (!any_submit_) {
    first_submit_ = clock_->now();
    any_submit_ = true;
  }
}

void StatsRecorder::on_reject() {
  std::lock_guard lock(mutex_);
  ++rejected_;
}

void StatsRecorder::on_admission_reject() {
  std::lock_guard lock(mutex_);
  ++admission_rejected_;
}

void StatsRecorder::on_shed() {
  std::lock_guard lock(mutex_);
  ++shed_;
}

void StatsRecorder::on_batch(std::size_t batch_size) {
  std::lock_guard lock(mutex_);
  ++batches_;
  batched_requests_ += batch_size;
  if (batch_size >= histogram_.size()) histogram_.resize(batch_size + 1, 0);
  ++histogram_[batch_size];
}

void StatsRecorder::on_complete(double latency_us, bool late) {
  std::lock_guard lock(mutex_);
  ++completed_;
  if (late) ++completed_late_;
  last_complete_ = clock_->now();
  any_complete_ = true;
  if (latencies_us_.size() < kMaxLatencySamples) {
    latencies_us_.push_back(latency_us);
  }
}

ServerStats StatsRecorder::snapshot(std::size_t queue_depth,
                                    std::size_t inflight,
                                    std::size_t blocked_submitters,
                                    double backlog_predicted_ms) const {
  std::unique_lock lock(mutex_);
  ServerStats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.admission_rejected = admission_rejected_;
  s.completed = completed_;
  s.completed_late = completed_late_;
  s.shed = shed_;
  s.batches = batches_;
  s.queue_depth = queue_depth;
  s.inflight = inflight;
  s.blocked_submitters = blocked_submitters;
  s.backlog_predicted_ms = backlog_predicted_ms;
  s.batch_size_histogram = histogram_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batched_requests_) /
                          static_cast<double>(batches_);
  std::vector<double> latencies = latencies_us_;
  if (any_submit_ && any_complete_) {
    s.elapsed_s =
        std::chrono::duration<double>(last_complete_ - first_submit_).count();
    if (s.elapsed_s > 0.0) {
      s.throughput_rps = static_cast<double>(completed_) / s.elapsed_s;
    }
  }
  lock.unlock();

  s.p50_latency_us = percentile(latencies, 0.50);
  s.p99_latency_us = percentile(latencies, 0.99);
  s.p999_latency_us = percentile(latencies, 0.999);
  if (!latencies.empty()) {
    s.max_latency_us = *std::max_element(latencies.begin(), latencies.end());
  }
  return s;
}

}  // namespace wino::serve
