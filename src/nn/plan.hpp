// Per-layer execution planning: the cost-model-driven replacement for the
// single global ConvAlgo.
//
// The paper's central result is that the best Winograd F(m, r) trades
// multiplication complexity (Eq 4) against transform complexity (Eq 5)
// *per layer*: the balance shifts with each layer's H/W/C/K, so one m for
// the whole network leaves performance behind. This header turns that
// observation into the runtime's execution model. A planner scores every
// candidate algorithm (spatial / im2col / FFT / Winograd m in {2, 3, 4})
// for every conv layer with the dse:: complexity equations — evaluated
// with exact ragged-tile counts, which is what makes the best m genuinely
// layer-dependent on small late-network maps — calibrated against GFLOP/s
// measured once per process by a microbenchmark probe. The result is an
// ExecutionPlan: one decision record per layer {algo, output layout,
// fused ReLU}, executed by the plan-driven nn::forward(ExecutionPlan)
// overload (src/nn/forward.cpp).
//
// Layout handling generalises the PR 4 single-algo pass (plan_layouts) to
// mixed m: a W4 layer hands tiles straight to a W2 layer — the consumer's
// gather reads any producer tile edge, so no repack materialises (the
// tensor::repack utility exists for consumers that do need re-blocking) —
// and the tiled maxpool (maxpool2x2_packed) pools 2x2/s2 directly on tile
// form, so conv -> pool -> conv chains never round-trip through NCHW.
//
// Determinism contract: forward(plan) is bit-identical to composing the
// same per-layer algorithms through the always-NCHW reference path
// (forward_reference), at every batch size and thread count — layouts are
// pure permutations, the tiled maxpool takes the same maxes in the same
// order, and fused ReLU is the same formula on the same values. Pinned by
// tests/nn_plan_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/forward.hpp"
#include "nn/memory_plan.hpp"
#include "nn/network.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"

namespace wino::nn {

/// One layer's execution decision.
struct LayerPlan {
  /// Convolution algorithm (kConv layers only; ignored for pool/FC).
  ConvAlgo algo = ConvAlgo::kIm2col;
  /// Layout this layer's output is handed to the next layer in.
  tensor::LayoutKind output_kind = tensor::LayoutKind::kNCHW;
  /// Tile edge of the output when output_kind == kWinogradTile: the conv's
  /// own m for Winograd layers, the downstream conv's m for pools.
  std::size_t out_tile_m = 0;
  /// ReLU folded into the conv output scatter (Winograd and int8 layers).
  bool fused_relu = false;
  /// Cost-model estimate for this layer (conv layers; 0 otherwise).
  double predicted_ms = 0;
  /// Static per-tensor activation scale for int8 conv layers (max|x| / 127
  /// from calibration); <= 0 means "derive per image" — the value run_conv
  /// and the plan executor hand to the quant:: kernels. 0 for fp32 layers.
  float act_scale = 0;

  friend bool operator==(const LayerPlan&, const LayerPlan&) = default;
};

/// A fully resolved execution recipe for one layer stack: the stack itself
/// plus one LayerPlan per layer and summary counters. Built once (per
/// model session in serving), executed by forward(plan, weights, input)
/// any number of times.
struct ExecutionPlan {
  std::vector<LayerSpec> layers;
  std::vector<LayerPlan> steps;  ///< same length as layers

  /// Slab assignment for the plan's buffers, built by the layout pass when
  /// the input shape is derivable from the first layer; empty otherwise
  /// (forward() then builds one from the live input shape).
  MemoryPlan memory;

  std::size_t boundaries = 0;        ///< layer -> layer handoffs
  std::size_t nchw_boundaries = 0;   ///< handoffs that materialise NCHW
  std::size_t mixed_m_handoffs = 0;  ///< tiled handoffs with differing m
  std::size_t int8_layers = 0;       ///< conv layers running a kInt8* algo
  double predicted_total_ms = 0;     ///< sum of conv predicted_ms
  /// Largest predict_layer_rel_error over the chosen conv algorithms; only
  /// filled when the plan was built under an error budget
  /// (PlanConstraints::max_rel_error > 0), else 0.
  double predicted_max_rel_error = 0;
  /// Per-model batch ceiling from the plan's transform-domain working
  /// sets (plan_batch_ceiling): the largest image count a worker chunk
  /// marches through the stack while the fattest Winograd layer's
  /// expanded activations stay cache-resident. 0 = no Winograd layer, no
  /// cache-derived ceiling. serve:: clamps dynamic batches to it instead
  /// of using the one global max_batch knob for every model.
  std::size_t batch_ceiling = 0;

  /// True when every conv layer runs the same algorithm.
  [[nodiscard]] bool uniform() const;

  /// Human-readable per-layer dump for benches and debugging.
  [[nodiscard]] std::string to_string() const;
};

/// Measured delivered rate of one backend class at two probe scales. A
/// backend's effective GFLOP/s (against the dse:: op counts — packing /
/// lowering / transform overheads folded in) is strongly work-size
/// dependent: the GEMM behind im2col runs near peak on a big feature map
/// and collapses on a 2x2 one, Winograd tiles amortise differently, and a
/// single rate per family makes the planner extrapolate tiny late-network
/// layers from big-map behaviour. Two anchors — a compute-bound "big"
/// probe and an overhead-bound "small" one — with log-work interpolation
/// in between keep the prediction exact at both probe shapes and honest
/// between them.
struct AlgoCalibration {
  double ops_small = 1e5;      ///< modelled ops of the small probe layer
  double gflops_small = 1.0;   ///< delivered rate there
  double ops_big = 5e6;        ///< modelled ops of the big probe layer
  double gflops_big = 1.0;     ///< delivered rate there

  /// Rate for a layer of `ops` modelled ops: log-linear between the two
  /// anchors, clamped outside them.
  [[nodiscard]] double gflops_at(double ops) const;

  friend bool operator==(const AlgoCalibration&,
                         const AlgoCalibration&) = default;
};

/// The measured half of the cost model: one AlgoCalibration per backend
/// class. Winograd is calibrated per tile edge — the m's differ in
/// measured efficiency (bigger tiles pay denser transform sandwiches per
/// delivered op), so a shared rate would let the op-count model alone
/// pick m and mispredict.
struct Calibration {
  AlgoCalibration spatial;
  AlgoCalibration im2col;
  AlgoCalibration fft;
  AlgoCalibration winograd2;
  AlgoCalibration winograd3;
  AlgoCalibration winograd4;

  /// The calibration entry for `algo` (winograd selected by its m).
  [[nodiscard]] const AlgoCalibration& entry(ConvAlgo algo) const;

  friend bool operator==(const Calibration&, const Calibration&) = default;
};

/// Deterministic fallback rates (also the documentation of the ratios the
/// planner assumes when no probe has run): GEMM-backed im2col well above
/// spatial, Winograd between them per delivered op, flat across work
/// sizes (gflops_small == gflops_big).
[[nodiscard]] Calibration default_calibration();

/// Measure the calibration with a one-shot microbenchmark probe: each
/// backend runs two small conv layers (a compute-bound big-map shape and
/// an overhead-bound tiny-map shape) a few times and the best wall-clocks
/// turn into the two delivered-GFLOP/s anchors. The probe runs once per
/// process and the result is cached (so repeated planning — the serving
/// registration path — is cheap and deterministic within a process). A
/// calibration injected via import_measured_state() (e.g. loaded from the
/// on-disk cache, nn/calibration_io.hpp) preempts the probe entirely.
[[nodiscard]] const Calibration& measured_calibration();

/// One cached per-layer timing — the export/import unit of the
/// measure_layer_ms cache (keys mirror its geometry key).
struct MeasuredLayerTime {
  std::size_t h = 0, w = 0, c = 0, k = 0, r = 0;
  int pad = 0;
  ConvAlgo algo = ConvAlgo::kSpatial;
  double seconds = 0.0;

  friend bool operator==(const MeasuredLayerTime&,
                         const MeasuredLayerTime&) = default;
};

/// Everything the measuring paths have learned this process: the probe
/// calibration (if any resident) and the per-layer timing cache. The
/// serialisable snapshot behind calibration persistence.
struct MeasuredState {
  std::optional<Calibration> calibration;
  /// Sorted by (h, w, c, k, r, pad, algo) for deterministic output.
  std::vector<MeasuredLayerTime> layer_times;
};

/// Introspection counters for the measured-state caches; tests pin
/// "warm start skips the probe" with these.
struct PlanCacheStats {
  std::uint64_t calibration_probes = 0;  ///< full probe runs this process
  std::uint64_t layer_measurements = 0;  ///< individual layer timings run
  std::size_t layer_entries = 0;         ///< timings currently cached
  bool calibration_loaded = false;       ///< a calibration is resident
};
[[nodiscard]] PlanCacheStats plan_cache_stats();

/// Snapshot the measured caches (thread-safe, non-destructive).
[[nodiscard]] MeasuredState export_measured_state();

/// Seed the measured caches: the calibration (when present) preempts the
/// probe in measured_calibration(), and every layer timing preempts its
/// measure_layer_ms measurement. Existing layer entries with the same key
/// are overwritten; others are kept.
void import_measured_state(const MeasuredState& state);

/// Drop both caches — the next measured_calibration() probes again and
/// every measure_layer_ms re-measures. Test hook for cold-cache paths.
void clear_measured_state();

/// Accuracy constraints the planner enforces per conv layer.
struct PlanConstraints {
  /// Maximum tolerated relative output error (max-abs error over the
  /// output's dynamic range) per conv layer. 0 disables the check; > 0
  /// makes plan_execution reject every candidate whose
  /// predict_layer_rel_error exceeds it — the gate that demotes int8
  /// Winograd to int8 im2col to fp32 as the budget tightens, and throws
  /// std::invalid_argument when no candidate fits at all.
  double max_rel_error = 0.0;

  friend bool operator==(const PlanConstraints&,
                         const PlanConstraints&) = default;
};

/// Observed dynamic range of one conv layer's input activation, recorded
/// by calibrate_activations over a representative sample.
struct LayerActivationStats {
  double max_abs = 0;  ///< max |x| — the per-tensor int8 scale is this / 127
  double rms = 0;      ///< root-mean-square of x (error-spread denominator)

  friend bool operator==(const LayerActivationStats&,
                         const LayerActivationStats&) = default;
};

/// Per-model activation calibration: one stats record per conv layer, in
/// conv-layer order. Feeds the planner's error model (which int8 form is
/// safe where) and the static activation scales the plan carries.
struct QuantCalibration {
  std::vector<LayerActivationStats> conv_inputs;

  friend bool operator==(const QuantCalibration&,
                         const QuantCalibration&) = default;
};

/// Record each conv layer's input dynamic range by walking `sample`
/// through the fp32 reference stack (im2col convs, exact NCHW data flow).
/// `sample` must match the first layer like forward()'s input; any batch
/// size works and all images contribute to the stats.
[[nodiscard]] QuantCalibration calibrate_activations(
    const std::vector<LayerSpec>& layers, const WeightBank& weights,
    const tensor::Tensor4f& sample);

/// Predicted relative output error (max-abs error / output dynamic range)
/// of one conv layer under `algo` — the quality half of the cost model,
/// derived from winograd::ErrorModel and the int8 grid step:
///
///  * fp32 direct forms charge accumulated rounding, sqrt(C * r^2) * 2^-24;
///  * fp32 Winograd charges ErrorModel::fp32_error_estimate (kappa_2d
///    amplification of fp32 roundoff);
///  * int8 im2col charges the quantization grid step 2/127 times the
///    layer's spread factor max_abs / (rms * sqrt(3)) — how much wider the
///    tensor's range is than a uniform distribution of the same RMS, i.e.
///    how much grid resolution its outliers waste;
///  * int8 Winograd additionally multiplies the transform-domain
///    amplification max(1, kappa_1d / 3) — an upper bound on what
///    quantizing U = B^T d B and V = G g G^T costs: the forward
///    transforms widen the per-position dynamic range and the inverse
///    amplifies the grid noise. The kernel scales every tile position at
///    its observed max, which absorbs about one dimension of that
///    inflation — hence the 1-D kappa rather than kappa_2d. F(2x2, 3x3)
///    (kappa_1d = 9) stays cheap; F(4x4, 3x3) (kappa_1d = 200) is priced
///    as numerically unsafe, matching its observed behaviour.
///
/// `stats` may be null: fp32 predictions don't need it; int8 predictions
/// without calibration return +infinity, so a budgeted planner never
/// selects int8 blind. Pinned by tests/quant_plan_test.cpp.
[[nodiscard]] double predict_layer_rel_error(const ConvLayerSpec& layer,
                                             ConvAlgo algo,
                                             const LayerActivationStats* stats);

/// The quantized candidate set, fastest-first: {kInt8Winograd4,
/// kInt8Winograd2, kInt8Im2col}. Append to PlannerOptions::candidates to
/// let a budgeted planner mix precisions.
[[nodiscard]] std::vector<ConvAlgo> quantized_candidates();

/// Planner knobs.
struct PlannerOptions {
  /// Candidate algorithms, tried in order; ties keep the earliest listed.
  std::vector<ConvAlgo> candidates = {
      ConvAlgo::kWinograd2, ConvAlgo::kWinograd3, ConvAlgo::kWinograd4,
      ConvAlgo::kIm2col,    ConvAlgo::kFft,       ConvAlgo::kSpatial};
  /// How candidates are scored. nullopt (the default): every candidate is
  /// *measured* at each conv layer's own geometry by the microbenchmark
  /// probe (measure_layer_ms — cached per process, so planning many
  /// sessions over the same architecture re-measures nothing). With a
  /// Calibration injected, scoring is the pure analytic model
  /// (predict_layer_ms) — deterministic and timing-free, which is what
  /// the cost-model unit tests pin.
  std::optional<Calibration> calibration;
  /// Batch size the plan is optimised for (scales every candidate alike
  /// under this model, so it rarely changes the argmin; kept explicit for
  /// cost reporting).
  std::size_t batch = 1;
  /// Accuracy budget; constraints.max_rel_error > 0 activates the error
  /// model as a per-layer candidate filter.
  PlanConstraints constraints;
  /// Activation calibration (calibrate_activations). Required for int8
  /// candidates to pass an active error budget, and the source of the
  /// static act_scale attached to chosen int8 layers; without it int8
  /// layers fall back to per-image dynamic scales.
  std::optional<QuantCalibration> quant;
};

/// Cost model: predicted milliseconds for one conv layer under `algo`.
/// Winograd candidates charge 2 * dse::mult_complexity_tiled plus the
/// data + inverse transform ops of dse::transform_complexity_tiled (filter
/// transforms come from the cross-call cache and are excluded); spatial /
/// im2col charge the delivered spatial op count; FFT charges a padded
/// pointwise + FFT op model. All divided by the calibrated rate of the
/// backend's class.
[[nodiscard]] double predict_layer_ms(const ConvLayerSpec& layer,
                                      ConvAlgo algo, const Calibration& cal,
                                      std::size_t batch = 1);

/// Measured per-image milliseconds of one conv layer under `algo`, the
/// planner's default scoring source: the backend runs the layer's exact
/// geometry the way forward() executes it (Winograd with precomputed
/// filter transforms through the layout-aware kernel; im2col/spatial/FFT
/// through run_conv) and the best of a few reps is kept. Results are
/// cached per process keyed by (H, W, C, K, r, pad, algo), so planning
/// re-measures nothing for repeated shapes — VGG's towers of identical
/// layers, or many sessions over the same architecture.
[[nodiscard]] double measure_layer_ms(const ConvLayerSpec& layer,
                                      ConvAlgo algo);

/// Score every candidate for every conv layer and assemble the cheapest
/// per-layer mix, then run the layout pass: Winograd convs emit tile form
/// whenever the consumer (conv or maxpool) can gather it, pools consume
/// tile form and emit tiles sized for the next Winograd conv, and every
/// boundary into FC / non-Winograd conv / the final output is NCHW.
/// Deterministic: same layers + same calibration -> same plan.
[[nodiscard]] ExecutionPlan plan_execution(
    const std::vector<LayerSpec>& layers, const PlannerOptions& options = {});

/// Re-run the layout pass over a plan whose per-layer algorithms were
/// edited (tests and tools build bespoke mixed plans this way): recomputes
/// every output_kind / out_tile_m / fused_relu decision and the summary
/// counters from the current algo assignments.
void replan_layouts(ExecutionPlan& plan);

/// The plan's cache-derived batch ceiling (see ExecutionPlan::
/// batch_ceiling): largest worker-chunk image count whose worst Winograd
/// transform-domain working set fits the shared cache budget
/// (winograd::kFusedCacheBudgetBytes), or 0 when no layer runs a Winograd
/// form. Same math as the executor's sub-batch split, so the serve-side
/// ceiling and the forward-side chunking cannot disagree.
[[nodiscard]] std::size_t plan_batch_ceiling(const ExecutionPlan& plan);

/// The trivial plan the legacy forward(..., ConvAlgo, ...) overload wraps:
/// every conv layer runs `algo`, with the same layout pass as
/// plan_execution (under LayoutPolicy::kAlwaysNCHW every boundary is NCHW
/// and nothing fuses — the legacy reference data flow).
[[nodiscard]] ExecutionPlan uniform_plan(
    const std::vector<LayerSpec>& layers, ConvAlgo algo,
    LayoutPolicy policy = LayoutPolicy::kAuto);

/// Execute a plan. Batches fan out image-parallel on the global
/// ThreadPool in cache-budgeted sub-batches exactly like the uniform-algo
/// forward (bit-identical for any thread count / chunking); Winograd
/// layers read filter transforms from the cross-call cache, prewarmed per
/// plan so worker chunks never serialise on a cold cache.
tensor::Tensor4f forward(const ExecutionPlan& plan, const WeightBank& weights,
                         const tensor::Tensor4f& input);

/// As above into a caller-provided output tensor (reshaped as needed):
/// the zero-allocation serving form — with the plan's MemoryPlan matching
/// the input and per-thread workspaces warm, the hot loop performs no heap
/// allocation (pinned by tests/nn_memory_test.cpp).
void forward(const ExecutionPlan& plan, const WeightBank& weights,
             const tensor::Tensor4f& input, tensor::Tensor4f& out);

/// Warm the execution state a plan needs so the first real forward pays no
/// setup: filter transforms into the cross-call cache, and every pool
/// worker's (plus the caller's) thread-local workspace slab sized for
/// chunks of up to `max_images`. serve::InferenceServer calls this at
/// model registration, making per-request memory a planned constant.
void prewarm_workspaces(const ExecutionPlan& plan, const WeightBank& weights,
                        std::size_t max_images);

/// Slab bytes owned by the calling thread's workspace (0 before it ever
/// executed a plan). Test/introspection hook.
[[nodiscard]] std::size_t thread_workspace_bytes();

/// The memcmp oracle for forward(plan): compose the same per-layer
/// algorithms through the always-NCHW data flow (run_conv + separate ReLU
/// pass + NCHW maxpool), one layer at a time. Slow; exists for tests and
/// the bit-identity verdict in bench/ablation_per_layer_m.
tensor::Tensor4f forward_reference(const ExecutionPlan& plan,
                                   const WeightBank& weights,
                                   const tensor::Tensor4f& input);

/// 2x2 stride-2 max pooling on a packed activation: input may be NCHW or
/// Winograd-tile form (any tile edge), and the output is produced directly
/// in `out_kind` (kWinogradTile tiles have edge `out_tile_m` and keep the
/// zero ragged fill). Takes exactly the maxes of maxpool2x2 in the same
/// order, so the result is bit-identical to unpacking, pooling in NCHW and
/// repacking — for every odd/even extent and ragged tile edge (pinned by
/// tests/nn_plan_test.cpp). Plane-parallel on the global ThreadPool;
/// bit-identical for any thread count.
[[nodiscard]] tensor::PackedActivation maxpool2x2_packed(
    const tensor::PackedActivation& input, tensor::LayoutKind out_kind,
    std::size_t out_tile_m = 0);

/// Allocation-free core of maxpool2x2_packed: same maxes in the same
/// order, reading/writing caller-provided flat buffers, with the
/// tile-form column maps in caller-provided spans (sized per
/// carve_pool_scratch; empty for NCHW sides). The workspace executor runs
/// every pool step through this; the allocating wrapper delegates here.
void maxpool2x2_packed_into(const tensor::Layout& il,
                            std::span<const float> in,
                            const tensor::Layout& ol, std::span<float> out,
                            std::span<std::size_t> in_col,
                            std::span<std::size_t> out_col);

}  // namespace wino::nn
