// Numerical forward pass with a pluggable convolution algorithm.
//
// Lets the examples and tests run (scaled) CNN inference where every conv
// layer is computed by spatial / im2col / FFT / Winograd-F(m) and the
// results are cross-checked — the software analogue of swapping the
// paper's convolution engine in and out of the datapath.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"

namespace wino::nn {

/// Which algorithm computes each convolution. The kInt8* family is the
/// quantized execution mode (see docs/QUANTIZATION.md): symmetric int8
/// operands, exact int32 accumulation, fp32 dequantize — selected per
/// layer by the planner under an accuracy budget (PlanConstraints).
enum class ConvAlgo {
  kSpatial,
  kIm2col,
  kFft,
  kWinograd2,      ///< F(2x2, 3x3)
  kWinograd3,      ///< F(3x3, 3x3)
  kWinograd4,      ///< F(4x4, 3x3)
  kInt8Im2col,     ///< int8 im2col GEMM (runtime/igemm.hpp)
  kInt8Winograd2,  ///< int8 transform-domain F(2x2, 3x3)
  kInt8Winograd4,  ///< int8 transform-domain F(4x4, 3x3)
};

[[nodiscard]] std::string to_string(ConvAlgo algo);

/// Inverse of to_string(ConvAlgo), also accepting the short command-line
/// spellings: "spatial", "im2col", "fft", "winograd2" / "w2" (likewise 3,
/// 4), "int8" / "int8-im2col", "i8w2" / "i8w4" and the canonical
/// "winograd-F(2x2,3x3)" forms. The shared parser for every bench/example
/// algo flag — binaries must not grow their own if/else ladders. Throws
/// std::invalid_argument on an unknown name.
[[nodiscard]] ConvAlgo parse_conv_algo(const std::string& name);

/// F(m) output-tile edge of the fp32 Winograd algos; 0 for every other
/// algorithm (the "has a tiled form" predicate the layout and execution
/// planners branch on). Deliberately 0 for the int8 Winograd algos: the
/// quantized path consumes and produces NCHW, so it never participates in
/// tile-form handoffs — int8_winograd_m() exposes its tile edge instead.
[[nodiscard]] int winograd_m(ConvAlgo algo);

/// True for the quantized (kInt8*) algorithms.
[[nodiscard]] bool is_int8(ConvAlgo algo);

/// F(m) output-tile edge of the int8 Winograd algos; 0 for every other
/// algorithm (including kInt8Im2col).
[[nodiscard]] int int8_winograd_m(ConvAlgo algo);

/// Dispatch one convolution (stride 1) with the chosen algorithm.
tensor::Tensor4f run_conv(ConvAlgo algo, const tensor::Tensor4f& input,
                          const tensor::Tensor4f& kernels, int pad);

/// As above with an explicit activation scale for the int8 algorithms
/// (ignored by the fp32 ones): act_scale > 0 is the static per-tensor
/// calibration scale a plan carries (LayerPlan::act_scale); <= 0 derives
/// the scale per image. The 4-argument overload forwards act_scale = 0.
tensor::Tensor4f run_conv(ConvAlgo algo, const tensor::Tensor4f& input,
                          const tensor::Tensor4f& kernels, int pad,
                          float act_scale);

/// Elementwise max(x, 0).
void relu_inplace(tensor::Tensor4f& t);

/// 2x2 max pooling with stride 2 (VGG's pooling).
tensor::Tensor4f maxpool2x2(const tensor::Tensor4f& input);

/// y = W x + b per image; x is the flattened CHW volume.
tensor::Tensor4f fully_connected(const tensor::Tensor4f& input,
                                 const std::vector<float>& weights,
                                 const std::vector<float>& bias,
                                 std::size_t out_features);

/// Monotonic id used to tag WeightBank contents for the transformed-kernel
/// cache. Every call returns a fresh, process-unique value.
std::uint64_t next_weight_version();

/// Weight bank for a network: one KCrr tensor per conv layer plus FC
/// weight/bias arrays, initialised from a deterministic seed.
struct WeightBank {
  std::vector<tensor::Tensor4f> conv_kernels;
  std::vector<std::vector<float>> fc_weights;
  std::vector<std::vector<float>> fc_bias;

  /// Identity of the weight *values*, keying the cross-call transformed-
  /// kernel cache (copies legitimately share it — same values, same
  /// transforms). Call bump_version() after mutating any kernel in place,
  /// or the cache will serve transforms of the old values.
  std::uint64_t version = next_weight_version();

  void bump_version() { version = next_weight_version(); }
};

/// Allocate random weights for `layers` (He-style scaled normal).
WeightBank random_weights(const std::vector<LayerSpec>& layers,
                          std::uint64_t seed = 1);

/// How forward() carries activations between layers.
enum class LayoutPolicy {
  /// Plan per-layer activation layouts from each backend's preference and
  /// elide the unpack -> repack pair when consecutive layers agree:
  /// chains of Winograd conv layers hand off in m x m tile form with ReLU
  /// fused into the (post-inverse) output scatter, and im2col layers
  /// consume explicitly packed patch panels. Bit-identical to
  /// kAlwaysNCHW — layouts are pure permutations and ReLU is the same
  /// formula on the same values (pinned by tests/nn_forward_test.cpp).
  kAuto,
  /// Legacy data flow: every layer boundary materialises the NCHW tensor
  /// and ReLU runs as a separate full-tensor pass.
  kAlwaysNCHW,
};

[[nodiscard]] std::string to_string(LayoutPolicy policy);

/// The layout decisions forward(kAuto) makes for one (layers, algo) pair:
/// the layout each layer's output is handed to the next layer in, plus
/// summary counters for benches and tests.
struct LayoutPlan {
  /// Per layer: the layout of that layer's output activation.
  std::vector<tensor::LayoutKind> output_kind;
  /// conv -> conv boundaries whose NCHW round-trip was elided.
  std::size_t elided = 0;
  /// Total layer -> layer boundaries (layers.size() - 1).
  std::size_t boundaries = 0;
  /// Per-image activation floats that never materialise in NCHW thanks to
  /// the elisions (the sum of the elided boundaries' feature-map volumes).
  std::uint64_t nchw_floats_elided = 0;
};

/// Walk the layer graph and pick each boundary's handoff layout from the
/// backends' preferences: a Winograd conv layer followed by another conv
/// layer under a Winograd algo keeps its output in tile form; any boundary
/// into a maxpool / fully-connected / non-Winograd conv layer (and the
/// final output) is NCHW.
///
/// Legacy single-algo reporting pass, kept for the layout bench and its
/// tests: execution itself now derives layouts from the per-layer
/// ExecutionPlan (nn/plan.hpp), whose rules extend these with mixed-m
/// handoffs and tiled maxpool boundaries.
[[nodiscard]] LayoutPlan plan_layouts(const std::vector<LayerSpec>& layers,
                                      ConvAlgo algo);

/// Run the layer stack; conv layers use `algo`. Input must match the first
/// layer's (c, h, w). Returns the final activation tensor.
///
/// Under kAuto this is a thin wrapper over the per-layer execution engine:
/// it builds the trivial uniform plan (every conv layer runs `algo`; see
/// nn/plan.hpp) and executes it with the plan-driven forward(ExecutionPlan)
/// overload. The cost-model planner (plan_execution) produces mixed
/// per-layer plans for the same executor.
///
/// Batches run image-parallel on the runtime's global ThreadPool; every
/// layer treats images independently, so the result is bit-identical for
/// any thread count (see tests/runtime_test.cpp) — and each image's output
/// is bit-identical to running that image through forward() alone,
/// whatever batch it rides in (the property the serving layer's dynamic
/// batcher relies on; pinned by tests/serve_test.cpp).
///
/// \param layers  the layer stack (conv / maxpool / fully-connected).
/// \param weights weights produced by random_weights() for the same stack.
/// \param input   NCHW activation batch matching the first layer.
/// \param algo    convolution algorithm for every conv layer.
/// \param policy  activation layout handling; kAuto (the default) plans
///                layouts per plan_layouts() and is bit-identical to
///                kAlwaysNCHW at every element.
tensor::Tensor4f forward(const std::vector<LayerSpec>& layers,
                         const WeightBank& weights,
                         const tensor::Tensor4f& input, ConvAlgo algo,
                         LayoutPolicy policy = LayoutPolicy::kAuto);

/// Batch-entry API: pack independently owned image tensors into one
/// contiguous NCHW batch for forward(). Every entry must share the same
/// (c, h, w); entries may themselves be mini-batches (n >= 1) and are
/// concatenated along n in order. Used by serve::InferenceServer to
/// coalesce queued single-image requests into a batched forward call.
///
/// \param images non-empty list of non-null tensors of identical
///               per-image shape.
/// \return batch of shape (sum of n_i, c, h, w).
tensor::Tensor4f stack_images(
    const std::vector<const tensor::Tensor4f*>& images);

/// Inverse of stack_images for single-image consumers: split a batched
/// activation into one (1, c, h, w) tensor per image, preserving order.
std::vector<tensor::Tensor4f> unstack_images(const tensor::Tensor4f& batch);

/// Counters for the process-wide transformed-kernel cache that forward()
/// consults for Winograd conv layers (keyed by layer index, m, r and the
/// WeightBank version): repeated forward calls over the same weights — the
/// serving-workload shape — reuse the filter transforms instead of
/// recomputing them per image and per call.
struct TransformCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};

[[nodiscard]] TransformCacheStats transform_cache_stats();

/// Drop every cached transform (and zero the hit/miss counters).
void clear_transform_cache();

/// A spatially scaled-down VGG16-D-like stack (same channel progression,
/// reduced resolution) so end-to-end inference is test-sized. `scale`
/// divides the 224 x 224 input (must divide 224 and keep >= 32 px... the
/// standard choice is scale = 7 -> 32 x 32 input).
std::vector<LayerSpec> vgg16_d_scaled(std::size_t scale,
                                      std::size_t channel_div = 8);

}  // namespace wino::nn
