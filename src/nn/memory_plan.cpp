#include "nn/memory_plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "nn/plan.hpp"

namespace wino::nn {

using tensor::Layout;
using tensor::LayoutKind;
using tensor::Shape4;

namespace {

std::size_t align_up(std::size_t n) {
  return (n + kSlabAlign - 1) / kSlabAlign * kSlabAlign;
}

std::uint64_t next_plan_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Planned output Layout of one step at shape.n == 1; validates the plan
/// only emits layouts the workspace executor can write.
Layout step_output_layout(const LayerPlan& step, Shape4 out) {
  switch (step.output_kind) {
    case LayoutKind::kNCHW:
      return Layout::nchw(out);
    case LayoutKind::kWinogradTile:
      return Layout::winograd_tile(out, step.out_tile_m);
    default:
      throw std::invalid_argument(
          "build_memory_plan: unsupported planned output layout");
  }
}

}  // namespace

winograd::WinogradScratch carve_winograd_scratch(ByteCarver& carver,
                                                 std::size_t channels,
                                                 std::size_t n_tile,
                                                 std::size_t m,
                                                 std::size_t block_columns) {
  const std::size_t nsq = n_tile * n_tile;
  winograd::WinogradScratch s;
  s.d = carver.take<float>(nsq);
  if (block_columns > 1) {
    // Fused tile-block layout: the [n*n][C][B] bank and its accumulators
    // replace the per-tile bank + product tile. At B == 1 the two
    // compositions carve identical bytes, so the block size only ever
    // grows a step's scratch, never shrinks it below the per-tile cost.
    s.u_blk = carver.take<float>(channels * nsq * block_columns);
    s.acc_blk = carver.take<float>(nsq * block_columns);
  } else {
    s.u_all = carver.take<float>(channels * nsq);
    s.prod = carver.take<float>(nsq);
  }
  s.acc_m = carver.take<float>(nsq);
  s.y = carver.take<float>(m * m);
  s.acc_y = carver.take<float>(m * m);
  s.row_tile = carver.take<std::size_t>(n_tile);
  s.row_in = carver.take<std::size_t>(n_tile);
  s.col_off = carver.take<std::size_t>(n_tile);
  return s;
}

quant::QuantIm2colScratch carve_quant_im2col_scratch(ByteCarver& carver,
                                                     std::size_t inner,
                                                     std::size_t cols,
                                                     std::size_t kcount) {
  quant::QuantIm2colScratch s;
  s.panel = carver.take<float>(inner * cols);
  s.qpanel = carver.take<std::int8_t>(cols * inner);
  s.acc = carver.take<std::int32_t>(kcount * cols);
  return s;
}

quant::QuantWinogradScratch carve_quant_winograd_scratch(
    ByteCarver& carver, std::size_t channels, std::size_t n_tile,
    std::size_t m, std::size_t block_columns) {
  const std::size_t nsq = n_tile * n_tile;
  quant::QuantWinogradScratch s;
  s.d = carver.take<float>(nsq);
  if (block_columns > 1) {
    s.u_blk = carver.take<float>(channels * nsq * block_columns);
    s.sv_blk = carver.take<float>(nsq * block_columns);
    s.uq_blk = carver.take<std::int8_t>(channels * nsq * block_columns);
    s.acc_blk = carver.take<std::int32_t>(nsq * block_columns);
  } else {
    s.u_all = carver.take<float>(channels * nsq);
    s.sv = carver.take<float>(nsq);
    s.uq_all = carver.take<std::int8_t>(channels * nsq);
    s.acc = carver.take<std::int32_t>(nsq);
  }
  s.m_f = carver.take<float>(nsq);
  s.y = carver.take<float>(m * m);
  return s;
}

PoolScratch carve_pool_scratch(ByteCarver& carver, const Layout& il,
                               const Layout& ol) {
  PoolScratch s;
  s.in_col = carver.take<std::size_t>(
      il.kind == LayoutKind::kWinogradTile ? il.shape.w : 0);
  s.out_col = carver.take<std::size_t>(
      ol.kind == LayoutKind::kWinogradTile ? ol.shape.w : 0);
  return s;
}

namespace {

/// One Winograd conv step recorded during the plan walk, for the fused
/// block sizing pass: enough geometry to re-measure its scratch at any
/// block size.
struct WinoStepRecord {
  std::size_t step = 0;       ///< step index (for step_block_columns)
  std::size_t buffer = 0;     ///< buffers index of the scratch
  std::size_t channels = 0;
  std::size_t n_tile = 0;
  std::size_t m = 0;
  std::size_t tiles = 0;      ///< output tiles per image
  bool is_int8 = false;
};

std::size_t measure_wino_scratch(const WinoStepRecord& ws,
                                 std::size_t block_columns) {
  ByteCarver measure;
  if (ws.is_int8) {
    (void)carve_quant_winograd_scratch(measure, ws.channels, ws.n_tile, ws.m,
                                       block_columns);
  } else {
    (void)carve_winograd_scratch(measure, ws.channels, ws.n_tile, ws.m,
                                 block_columns);
  }
  return measure.used();
}

}  // namespace

MemoryPlan build_memory_plan(const ExecutionPlan& plan, Shape4 input,
                             bool fuse_blocks) {
  if (plan.steps.size() != plan.layers.size()) {
    throw std::invalid_argument(
        "build_memory_plan: plan steps do not match its layer stack");
  }
  input.n = 1;
  if (input.volume() == 0) {
    throw std::invalid_argument("build_memory_plan: empty input shape");
  }
  MemoryPlan mp;
  mp.input_shape = input;
  mp.plan_id = next_plan_id();
  const auto& layers = plan.layers;
  if (layers.empty()) return mp;
  const std::size_t last = layers.size() - 1;
  mp.step_activation.reserve(layers.size());
  mp.step_scratch.reserve(layers.size());
  mp.step_block_columns.assign(layers.size(), 1);
  mp.act_layout.reserve(layers.size());
  std::vector<WinoStepRecord> wino_steps;

  Shape4 cur = input;
  Layout cur_layout = Layout::nchw(cur);
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const LayerSpec& l = layers[li];
    const LayerPlan& step = plan.steps[li];
    Shape4 out{};
    std::size_t scratch_bytes = 0;
    switch (l.kind) {
      case LayerKind::kConv: {
        const std::size_t r = l.conv.r;
        const int pad = l.conv.pad;
        const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(cur.h) +
                                  2 * pad - static_cast<std::ptrdiff_t>(r) +
                                  1;
        const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(cur.w) +
                                  2 * pad - static_cast<std::ptrdiff_t>(r) +
                                  1;
        if (oh <= 0 || ow <= 0) {
          throw std::invalid_argument(
              "build_memory_plan: conv output would be empty");
        }
        out = {1, l.conv.k, static_cast<std::size_t>(oh),
               static_cast<std::size_t>(ow)};
        const auto record_wino = [&](std::size_t mw, bool is_int8) {
          const std::size_t tiles = ((out.h + mw - 1) / mw) *
                                    ((out.w + mw - 1) / mw);
          wino_steps.push_back(WinoStepRecord{.step = li,
                                              .buffer = 0,  // patched below
                                              .channels = cur.c,
                                              .n_tile = mw + r - 1,
                                              .m = mw,
                                              .tiles = tiles,
                                              .is_int8 = is_int8});
        };
        if (const int m = winograd_m(step.algo); m > 0) {
          ByteCarver measure;
          (void)carve_winograd_scratch(
              measure, cur.c, static_cast<std::size_t>(m) + r - 1,
              static_cast<std::size_t>(m));
          scratch_bytes = measure.used();
          record_wino(static_cast<std::size_t>(m), /*is_int8=*/false);
        } else if (step.algo == ConvAlgo::kIm2col) {
          const Layout panel = Layout::im2col_panel(
              {1, cur.c, cur.h, cur.w}, r, pad, pad, /*stride=*/1);
          ByteCarver measure;
          (void)measure.take<float>(panel.volume());
          scratch_bytes = measure.used();
        } else if (step.algo == ConvAlgo::kInt8Im2col) {
          ByteCarver measure;
          (void)carve_quant_im2col_scratch(
              measure, cur.c * r * r,
              static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow),
              l.conv.k);
          scratch_bytes = measure.used();
        } else if (const int qm = int8_winograd_m(step.algo); qm > 0) {
          ByteCarver measure;
          (void)carve_quant_winograd_scratch(
              measure, cur.c, static_cast<std::size_t>(qm) + r - 1,
              static_cast<std::size_t>(qm));
          scratch_bytes = measure.used();
          record_wino(static_cast<std::size_t>(qm), /*is_int8=*/true);
        }
        // Spatial/FFT conv steps keep their allocating kernels (the plan
        // executor materialises an NCHW tensor for them); no planned
        // scratch.
        break;
      }
      case LayerKind::kMaxPool: {
        if (cur.h < 2 || cur.w < 2) {
          throw std::invalid_argument(
              "build_memory_plan: maxpool input too small");
        }
        out = {1, cur.c, cur.h / 2, cur.w / 2};
        ByteCarver measure;
        (void)carve_pool_scratch(measure, cur_layout,
                                 step_output_layout(step, out));
        scratch_bytes = measure.used();
        break;
      }
      case LayerKind::kFullyConnected: {
        out = {1, l.fc_out, 1, 1};
        break;
      }
    }
    const Layout ol = step_output_layout(step, out);
    if (li == last && ol.kind != LayoutKind::kNCHW) {
      throw std::invalid_argument(
          "build_memory_plan: the final step's output must be NCHW");
    }
    if (li != last) {
      mp.step_activation.push_back(
          static_cast<std::ptrdiff_t>(mp.buffers.size()));
      mp.buffers.push_back(PlannedBuffer{
          .step_first = li,
          .step_last = li + 1,
          .per_image_bytes = ol.volume() * sizeof(float),
          .fixed_bytes = 0});
    } else {
      // The last activation is the caller's output buffer, not slab space.
      mp.step_activation.push_back(-1);
    }
    if (scratch_bytes > 0) {
      if (!wino_steps.empty() && wino_steps.back().step == li) {
        wino_steps.back().buffer = mp.buffers.size();
      }
      mp.step_scratch.push_back(
          static_cast<std::ptrdiff_t>(mp.buffers.size()));
      mp.buffers.push_back(PlannedBuffer{.step_first = li,
                                         .step_last = li,
                                         .per_image_bytes = 0,
                                         .fixed_bytes = scratch_bytes});
    } else {
      mp.step_scratch.push_back(-1);
    }
    mp.act_layout.push_back(ol);
    cur = out;
    cur_layout = ol;
  }

  // Fused block sizing pass: grow each Winograd step's scratch to the
  // largest block the cache budget allows WITHOUT raising the slab peak at
  // 1 or 8 images over the per-tile plan — the fused pipeline's locality
  // win must not cost a byte of planned peak (the bench gate pins it).
  // First-fit interval packing is not monotone in a buffer's size, so each
  // candidate is verified by re-resolving the whole plan; the binary
  // search just orders the probes.
  if (fuse_blocks && !wino_steps.empty()) {
    const std::size_t peak1 = mp.peak_bytes(1);
    const std::size_t peak8 = mp.peak_bytes(8);
    for (const WinoStepRecord& ws : wino_steps) {
      const std::size_t cache_cap = winograd::fused_block_columns(
          ws.channels, ws.n_tile, winograd::kFusedCacheBudgetBytes);
      // Column supply: the executor walks chunk_images * tiles columns per
      // call; chunks max out at 8 images, so a bigger block is pure waste.
      const std::size_t cap = std::min(cache_cap, ws.tiles * 8);
      // Blocks narrower than the coordinate GEMM's register tile run all
      // columns through the scalar tail and lose to the per-tile walk.
      if (cap < winograd::kFusedMinBlockColumns) continue;
      PlannedBuffer& buf = mp.buffers[ws.buffer];
      const std::size_t unfused_bytes = buf.fixed_bytes;
      const auto fits = [&](std::size_t block) {
        buf.fixed_bytes = measure_wino_scratch(ws, block);
        return mp.peak_bytes(1) <= peak1 && mp.peak_bytes(8) <= peak8;
      };
      std::size_t best = 1;
      std::size_t lo = winograd::kFusedMinBlockColumns, hi = cap;
      while (lo <= hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (fits(mid)) {
          best = mid;
          lo = mid + 1;
        } else {
          hi = mid - 1;
        }
      }
      if (best >= 2 && fits(best)) {
        mp.step_block_columns[ws.step] = best;
      } else {
        buf.fixed_bytes = unfused_bytes;
      }
    }
  }
  return mp;
}

MemoryPlan build_memory_plan(const ExecutionPlan& plan, bool fuse_blocks) {
  if (plan.layers.empty()) {
    throw std::invalid_argument("build_memory_plan: empty layer stack");
  }
  const LayerSpec& first = plan.layers.front();
  switch (first.kind) {
    case LayerKind::kConv:
      return build_memory_plan(
          plan, Shape4{1, first.conv.c, first.conv.h, first.conv.w},
          fuse_blocks);
    case LayerKind::kFullyConnected:
      // FC consumes the flattened volume; plan as a flat channel vector
      // (forward() rebuilds locally for other factorisations of fc_in).
      return build_memory_plan(plan, Shape4{1, first.fc_in, 1, 1},
                               fuse_blocks);
    case LayerKind::kMaxPool:
      break;
  }
  throw std::invalid_argument(
      "build_memory_plan: input shape not derivable from a pool-first "
      "stack");
}

void MemoryPlan::resolve(std::size_t images, Resolved& out) const {
  const std::size_t count = buffers.size();
  out.offsets.resize(count);
  out.sizes.resize(count);
  out.live.clear();
  out.peak_bytes = 0;
  // Buffers are registered in nondecreasing step_first order, so a single
  // forward scan with expiry is the classic linear-scan interval
  // allocation: everything whose last step precedes this buffer's first
  // step is dead and its range is reusable.
  for (std::uint32_t b = 0; b < count; ++b) {
    const PlannedBuffer& pb = buffers[b];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < out.live.size(); ++i) {
      if (buffers[out.live[i]].step_last >= pb.step_first) {
        out.live[keep++] = out.live[i];
      }
    }
    out.live.resize(keep);
    const std::size_t size =
        align_up(pb.per_image_bytes * images + pb.fixed_bytes);
    // First fit: walk the live list (sorted by offset) for the lowest gap
    // that holds `size` bytes.
    std::size_t offset = 0;
    std::size_t insert_at = out.live.size();
    for (std::size_t i = 0; i < out.live.size(); ++i) {
      const std::size_t live_off = out.offsets[out.live[i]];
      if (offset + size <= live_off) {
        insert_at = i;
        break;
      }
      offset = std::max(offset, live_off + out.sizes[out.live[i]]);
    }
    out.offsets[b] = offset;
    out.sizes[b] = size;
    out.live.insert(out.live.begin() + static_cast<std::ptrdiff_t>(insert_at),
                    b);
    out.peak_bytes = std::max(out.peak_bytes, offset + size);
  }
}

MemoryPlan::Resolved MemoryPlan::resolve(std::size_t images) const {
  Resolved out;
  resolve(images, out);
  return out;
}

std::size_t MemoryPlan::peak_bytes(std::size_t images) const {
  Resolved out;
  resolve(images, out);
  return out.peak_bytes;
}

void Workspace::prepare(const MemoryPlan& plan, std::size_t images) {
  if (prepared_ && plan_id_ == plan.plan_id && images_ == images) return;
  plan.resolve(images, resolved_);
  if (resolved_.peak_bytes > 0) {
    // Over-allocate by one alignment unit so base_ can be aligned manually
    // (operator new gives no 64-byte guarantee). Growth is monotonic: a
    // smaller follow-up plan reuses the big slab.
    const std::size_t need = resolved_.peak_bytes + kSlabAlign - 1;
    if (slab_.size() < need) slab_.resize(need);
    const auto addr = reinterpret_cast<std::uintptr_t>(slab_.data());
    base_ = slab_.data() + ((kSlabAlign - addr % kSlabAlign) % kSlabAlign);
  } else {
    base_ = nullptr;
  }
  plan_id_ = plan.plan_id;
  images_ = images;
  prepared_ = true;
}

}  // namespace wino::nn
