#include "nn/network.hpp"

namespace wino::nn {

std::size_t ConvLayerSpec::spatial_mults(std::size_t n) const {
  return n * out_h() * out_w() * c * k * r * r;
}

std::size_t ConvLayerSpec::spatial_ops(std::size_t n) const {
  return 2 * spatial_mults(n);
}

std::size_t ConvGroup::spatial_mults(std::size_t n) const {
  std::size_t total = 0;
  for (const auto& l : layers) total += l.spatial_mults(n);
  return total;
}

std::size_t ConvGroup::spatial_ops(std::size_t n) const {
  std::size_t total = 0;
  for (const auto& l : layers) total += l.spatial_ops(n);
  return total;
}

std::vector<ConvLayerSpec> ConvWorkload::all_layers() const {
  std::vector<ConvLayerSpec> out;
  for (const auto& g : groups) {
    out.insert(out.end(), g.layers.begin(), g.layers.end());
  }
  return out;
}

std::size_t ConvWorkload::spatial_mults(std::size_t n) const {
  std::size_t total = 0;
  for (const auto& g : groups) total += g.spatial_mults(n);
  return total;
}

std::size_t ConvWorkload::spatial_ops(std::size_t n) const {
  std::size_t total = 0;
  for (const auto& g : groups) total += g.spatial_ops(n);
  return total;
}

namespace {

ConvLayerSpec conv(std::string name, std::size_t hw, std::size_t c,
                   std::size_t k) {
  ConvLayerSpec l;
  l.name = std::move(name);
  l.h = hw;
  l.w = hw;
  l.c = c;
  l.k = k;
  l.r = 3;
  l.pad = 1;
  return l;
}

ConvWorkload make_vgg16_d() {
  ConvWorkload w;
  w.name = "VGG16-D";
  w.groups = {
      {"Conv1", {conv("conv1_1", 224, 3, 64), conv("conv1_2", 224, 64, 64)}},
      {"Conv2",
       {conv("conv2_1", 112, 64, 128), conv("conv2_2", 112, 128, 128)}},
      {"Conv3",
       {conv("conv3_1", 56, 128, 256), conv("conv3_2", 56, 256, 256),
        conv("conv3_3", 56, 256, 256)}},
      {"Conv4",
       {conv("conv4_1", 28, 256, 512), conv("conv4_2", 28, 512, 512),
        conv("conv4_3", 28, 512, 512)}},
      {"Conv5",
       {conv("conv5_1", 14, 512, 512), conv("conv5_2", 14, 512, 512),
        conv("conv5_3", 14, 512, 512)}},
  };
  return w;
}

}  // namespace

const ConvWorkload& vgg16_d() {
  static const ConvWorkload w = make_vgg16_d();
  return w;
}

namespace {

ConvLayerSpec conv_full(std::string name, std::size_t hw, std::size_t c,
                        std::size_t k, std::size_t r, int pad, int stride) {
  ConvLayerSpec l;
  l.name = std::move(name);
  l.h = hw;
  l.w = hw;
  l.c = c;
  l.k = k;
  l.r = r;
  l.pad = pad;
  l.stride = stride;
  return l;
}

ConvWorkload make_alexnet() {
  ConvWorkload w;
  w.name = "AlexNet";
  w.groups = {
      {"Conv1", {conv_full("conv1", 227, 3, 96, 11, 0, 4)}},
      {"Conv2", {conv_full("conv2", 27, 96, 256, 5, 2, 1)}},
      {"Conv3", {conv_full("conv3", 13, 256, 384, 3, 1, 1)}},
      {"Conv4", {conv_full("conv4", 13, 384, 384, 3, 1, 1)}},
      {"Conv5", {conv_full("conv5", 13, 384, 256, 3, 1, 1)}},
  };
  return w;
}

}  // namespace

const ConvWorkload& alexnet() {
  static const ConvWorkload w = make_alexnet();
  return w;
}

std::vector<LayerSpec> vgg16_d_full() {
  std::vector<LayerSpec> layers;
  const auto pool = [] {
    LayerSpec l;
    l.kind = LayerKind::kMaxPool;
    l.pool_size = 2;
    return l;
  };
  for (const auto& group : vgg16_d().groups) {
    for (const auto& c : group.layers) {
      LayerSpec l;
      l.kind = LayerKind::kConv;
      l.conv = c;
      layers.push_back(l);
    }
    layers.push_back(pool());
  }
  const auto fc = [](std::size_t in, std::size_t out) {
    LayerSpec l;
    l.kind = LayerKind::kFullyConnected;
    l.fc_in = in;
    l.fc_out = out;
    return l;
  };
  layers.push_back(fc(512 * 7 * 7, 4096));
  layers.push_back(fc(4096, 4096));
  layers.push_back(fc(4096, 1000));
  return layers;
}

}  // namespace wino::nn
