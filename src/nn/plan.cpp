#include "nn/plan.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "common/random.hpp"
#include "dse/complexity.hpp"
#include "quant/int8.hpp"
#include "runtime/thread_pool.hpp"
#include "winograd/error_model.hpp"
#include "winograd/kernels.hpp"

namespace wino::nn {

using tensor::Layout;
using tensor::LayoutKind;
using tensor::PackedActivation;
using tensor::Shape4;
using tensor::Tensor4f;

namespace {

/// The fp32 algorithm whose op count / calibration family an int8 algo
/// shares: the quantized forms run the same dataflow (im2col GEMM, F(m)
/// transform sandwich) with cheaper multiplies, so they reuse the family's
/// modelled ops and calibrated rate, adjusted by kInt8AnalyticSpeedup in
/// the analytic model (measured scoring times them directly).
ConvAlgo fp32_family(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kInt8Im2col:
      return ConvAlgo::kIm2col;
    case ConvAlgo::kInt8Winograd2:
      return ConvAlgo::kWinograd2;
    case ConvAlgo::kInt8Winograd4:
      return ConvAlgo::kWinograd4;
    default:
      return algo;
  }
}

/// Analytic-model throughput factor of int8 over its fp32 family: int8
/// operands halve the memory traffic and the widening-multiply-accumulate
/// runs 2x the lanes per vector op. Deliberately conservative — default
/// (measured) scoring times the int8 kernels directly and ignores this.
constexpr double kInt8AnalyticSpeedup = 2.0;

/// Modelled op count of one conv layer under `algo` (the numerator the
/// calibrated GFLOP/s divides). Winograd: Eq 4 + Eq 5 data/inverse with
/// exact ragged tiles, filter transforms excluded (cross-call cache).
/// Spatial/im2col: delivered spatial multiply+add ops. FFT: padded-grid
/// transform + complex pointwise model matching conv::conv2d_fft's shape
/// (fft_size = next_pow2(max(H, W) + r - 1)). Int8 algos share their fp32
/// family's counts (same dataflow, cheaper multiplies).
double modelled_ops(const ConvLayerSpec& layer, ConvAlgo algo,
                    std::size_t batch) {
  algo = fp32_family(algo);
  const int m = winograd_m(algo);
  if (m > 0) {
    const auto costs = dse::TransformCosts::from_generated(
        m, static_cast<int>(layer.r));
    const auto t = dse::transform_complexity_tiled(layer, m, costs, batch);
    return 2.0 * static_cast<double>(
                     dse::mult_complexity_tiled(layer, m, batch)) +
           t.data + t.inverse;
  }
  if (algo == ConvAlgo::kFft) {
    std::size_t fft_size = 1;
    while (fft_size < std::max(layer.h, layer.w) + layer.r - 1) {
      fft_size <<= 1;
    }
    const double grid = static_cast<double>(fft_size * fft_size);
    // One 2-D FFT = 2 * L length-L line FFTs at ~5 L log2 L real ops.
    const double f2d = 10.0 * grid * std::log2(static_cast<double>(fft_size));
    const double n = static_cast<double>(batch);
    const double c = static_cast<double>(layer.c);
    const double k = static_cast<double>(layer.k);
    return c * k * f2d           // kernel transforms (per call)
           + n * c * f2d         // data transforms
           + n * k * f2d         // inverse transforms
           + n * c * k * grid * 8.0;  // complex pointwise multiply-accumulate
  }
  return static_cast<double>(layer.spatial_ops(batch));
}

/// Best-of-3 wall clock of `fn` after one warm-up run, in seconds.
template <typename Fn>
double best_seconds(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return std::max(best, 1e-9);
}

/// One probe layer's measurement for every backend class.
struct ProbePoint {
  ConvLayerSpec layer;
  double ops[6];     // modelled ops, indexed as `kProbeAlgos`
  double gflops[6];  // delivered rate
};

constexpr ConvAlgo kProbeAlgos[6] = {
    ConvAlgo::kSpatial,   ConvAlgo::kIm2col,    ConvAlgo::kFft,
    ConvAlgo::kWinograd2, ConvAlgo::kWinograd3, ConvAlgo::kWinograd4};

/// Time one conv layer under `algo` the way forward() executes it: the
/// Winograd backends get precomputed filter transforms (the executor
/// reads them from the cross-call cache and the op model excludes them)
/// and run the layout-aware kernel the plan walk dispatches; everything
/// else runs through run_conv. One warm-up, best of 3, single image.
double measure_layer_seconds(const ConvLayerSpec& layer, ConvAlgo algo) {
  Tensor4f input(1, layer.c, layer.h, layer.w);
  Tensor4f kernels(layer.k, layer.c, layer.r, layer.r);
  common::Rng rng(123);
  rng.fill_uniform(input.flat(), -1.0F, 1.0F);
  rng.fill_normal(kernels.flat(), 0.0F, 0.1F);

  if (const int m = winograd_m(algo); m > 0) {
    const winograd::TileTransformer xf(
        winograd::transforms(m, static_cast<int>(layer.r)));
    const winograd::TransformedKernels tk(xf, kernels);
    winograd::WinogradConvOptions wopt;
    wopt.pad = layer.pad;
    const PackedActivation act = PackedActivation::from_nchw(std::move(input));
    return best_seconds([&] {
      (void)winograd::conv2d_winograd_layout(act, tk, xf, wopt,
                                             LayoutKind::kNCHW,
                                             /*fuse_relu=*/false);
    });
  }
  // The int8 forms time against prequantized banks, mirroring the executor
  // (which reads them from its cross-call cache): filter quantization is a
  // registration-time cost, not a per-forward one.
  if (const int qm = int8_winograd_m(algo); qm > 0) {
    const winograd::TileTransformer xf(
        winograd::transforms(qm, static_cast<int>(layer.r)));
    const quant::QuantizedWinogradKernels qk =
        quant::quantize_winograd_kernels(xf, kernels);
    return best_seconds([&] {
      (void)quant::conv2d_winograd_int8(input, qk, xf, layer.pad);
    });
  }
  if (algo == ConvAlgo::kInt8Im2col) {
    const quant::QuantizedFilter qf = quant::quantize_filters(kernels);
    return best_seconds(
        [&] { (void)quant::conv2d_im2col_int8(input, qf, layer.pad); });
  }
  return best_seconds(
      [&] { (void)run_conv(algo, input, kernels, layer.pad); });
}

/// Per-process cache of measured per-layer timings keyed by the layer
/// geometry: repeated shapes (VGG's towers of identical layers, repeated
/// session registrations over one architecture) measure once. Entries can
/// be bulk-imported from a persisted MeasuredState (warm server start) and
/// exported back out; `measurements()` counts actual microbenchmark runs,
/// which is how tests pin that a warm cache measures nothing.
class LayerTimeCache {
 public:
  double seconds(const ConvLayerSpec& layer, ConvAlgo algo) {
    const Key key{layer.h, layer.w, layer.c, layer.k, layer.r, layer.pad,
                  algo};
    {
      std::lock_guard lock(mutex_);
      if (const auto it = map_.find(key); it != map_.end()) {
        return it->second;
      }
    }
    // Measure outside the lock (concurrent registrations may redundantly
    // measure the same shape; last write wins with an identical meaning).
    const double secs = measure_layer_seconds(layer, algo);
    std::lock_guard lock(mutex_);
    ++measurements_;
    return map_.emplace(key, secs).first->second;
  }

  void import_entries(const std::vector<MeasuredLayerTime>& entries) {
    std::lock_guard lock(mutex_);
    for (const MeasuredLayerTime& e : entries) {
      map_[Key{e.h, e.w, e.c, e.k, e.r, e.pad, e.algo}] = e.seconds;
    }
  }

  [[nodiscard]] std::vector<MeasuredLayerTime> export_entries() const {
    std::vector<MeasuredLayerTime> out;
    {
      std::lock_guard lock(mutex_);
      out.reserve(map_.size());
      for (const auto& [k, secs] : map_) {
        out.push_back({k.h, k.w, k.c, k.k, k.r, k.pad, k.algo, secs});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const MeasuredLayerTime& a, const MeasuredLayerTime& b) {
                return std::tie(a.h, a.w, a.c, a.k, a.r, a.pad, a.algo) <
                       std::tie(b.h, b.w, b.c, b.k, b.r, b.pad, b.algo);
              });
    return out;
  }

  void clear() {
    std::lock_guard lock(mutex_);
    map_.clear();
  }

  [[nodiscard]] std::uint64_t measurements() const {
    std::lock_guard lock(mutex_);
    return measurements_;
  }

  [[nodiscard]] std::size_t entries() const {
    std::lock_guard lock(mutex_);
    return map_.size();
  }

 private:
  struct Key {
    std::size_t h, w, c, k, r;
    int pad;
    ConvAlgo algo;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = k.h;
      for (const std::size_t v :
           {k.w, k.c, k.k, k.r, static_cast<std::size_t>(k.pad),
            static_cast<std::size_t>(k.algo)}) {
        h = h * 1315423911u ^ v;
      }
      return h;
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, double, KeyHash> map_;
  std::uint64_t measurements_ = 0;
};

LayerTimeCache& layer_time_cache() {
  static LayerTimeCache cache;
  return cache;
}

ProbePoint probe_point(std::size_t hw, std::size_t channels) {
  ProbePoint p;
  p.layer.h = hw;
  p.layer.w = hw;
  p.layer.c = channels;
  p.layer.k = channels;
  p.layer.r = 3;
  p.layer.pad = 1;
  for (int a = 0; a < 6; ++a) {
    p.ops[a] = modelled_ops(p.layer, kProbeAlgos[a], 1);
    p.gflops[a] =
        p.ops[a] / layer_time_cache().seconds(p.layer, kProbeAlgos[a]) / 1e9;
  }
  return p;
}

Calibration probe_calibration() {
  // Big anchor: a mid-network-ish layer where every backend is compute
  // bound. Small anchor: a late-network tiny map where per-call overheads
  // (panel packing, tile setup, tiny GEMMs) dominate — the regime where a
  // big-map rate would wildly overrate the GEMM backends.
  const ProbePoint big = probe_point(/*hw=*/16, /*channels=*/32);
  const ProbePoint small = probe_point(/*hw=*/2, /*channels=*/64);

  Calibration cal;
  AlgoCalibration* entries[6] = {&cal.spatial,   &cal.im2col,
                                 &cal.fft,       &cal.winograd2,
                                 &cal.winograd3, &cal.winograd4};
  for (int a = 0; a < 6; ++a) {
    entries[a]->ops_big = big.ops[a];
    entries[a]->gflops_big = big.gflops[a];
    entries[a]->ops_small = small.ops[a];
    entries[a]->gflops_small = small.gflops[a];
  }
  return cal;
}

bool degenerate(const AlgoCalibration& c) {
  return !(c.gflops_small > 0) || !(c.gflops_big > 0) ||
         !(c.ops_small > 0) || !(c.ops_big > c.ops_small);
}

/// Owns the process's resident Calibration. Replaces the old
/// function-local static so a persisted calibration can be imported
/// (preempting the probe — the warm-server-start path) and tests can
/// clear it to force cold behaviour. `probes()` counts actual probe runs.
class CalibrationStore {
 public:
  const Calibration& get() {
    std::lock_guard lock(mutex_);
    if (!have_) {
      // Probe under the lock: concurrent first callers block instead of
      // racing duplicate probes; the probe only touches layer_time_cache's
      // own mutex, so there is no ordering cycle.
      cal_ = sanitized_probe();
      have_ = true;
      ++probes_;
    }
    // The reference stays valid for the process lifetime (cal_ is a
    // member of a leaked-singleton store); an import() after this returns
    // changes the referenced values, matching "latest resident
    // calibration" semantics.
    return cal_;
  }

  void import(const Calibration& cal) {
    std::lock_guard lock(mutex_);
    cal_ = cal;
    have_ = true;
  }

  void clear() {
    std::lock_guard lock(mutex_);
    have_ = false;
  }

  [[nodiscard]] bool loaded() const {
    std::lock_guard lock(mutex_);
    return have_;
  }

  [[nodiscard]] std::optional<Calibration> snapshot() const {
    std::lock_guard lock(mutex_);
    if (!have_) return std::nullopt;
    return cal_;
  }

  [[nodiscard]] std::uint64_t probes() const {
    std::lock_guard lock(mutex_);
    return probes_;
  }

 private:
  static Calibration sanitized_probe() {
    Calibration c = probe_calibration();
    // A degenerate probe point (clock glitch returning a zero or negative
    // rate) would make a candidate look free; fall back to the
    // deterministic default for that family instead.
    const Calibration fallback = default_calibration();
    if (degenerate(c.spatial)) c.spatial = fallback.spatial;
    if (degenerate(c.im2col)) c.im2col = fallback.im2col;
    if (degenerate(c.fft)) c.fft = fallback.fft;
    if (degenerate(c.winograd2)) c.winograd2 = fallback.winograd2;
    if (degenerate(c.winograd3)) c.winograd3 = fallback.winograd3;
    if (degenerate(c.winograd4)) c.winograd4 = fallback.winograd4;
    return c;
  }

  mutable std::mutex mutex_;
  Calibration cal_;
  bool have_ = false;
  std::uint64_t probes_ = 0;
};

CalibrationStore& calibration_store() {
  static CalibrationStore store;
  return store;
}

}  // namespace

double AlgoCalibration::gflops_at(double ops) const {
  if (ops <= ops_small) return gflops_small;
  if (ops >= ops_big) return gflops_big;
  const double t = (std::log(ops) - std::log(ops_small)) /
                   (std::log(ops_big) - std::log(ops_small));
  return gflops_small + t * (gflops_big - gflops_small);
}

const AlgoCalibration& Calibration::entry(ConvAlgo algo) const {
  // Int8 algos share their fp32 family's entry: the probe set (and the
  // "winocal 1" persistence format) stays six entries, and the analytic
  // model layers kInt8AnalyticSpeedup on top in predict_layer_ms.
  algo = fp32_family(algo);
  switch (winograd_m(algo)) {
    case 2:
      return winograd2;
    case 3:
      return winograd3;
    case 4:
      return winograd4;
    default:
      break;
  }
  switch (algo) {
    case ConvAlgo::kSpatial:
      return spatial;
    case ConvAlgo::kIm2col:
      return im2col;
    case ConvAlgo::kFft:
      return fft;
    default:
      return spatial;
  }
}

Calibration default_calibration() {
  Calibration cal;
  const auto flat = [](double gflops) {
    AlgoCalibration c;
    c.gflops_small = gflops;
    c.gflops_big = gflops;
    return c;
  };
  cal.spatial = flat(1.0);
  cal.im2col = flat(8.0);
  cal.fft = flat(1.0);
  cal.winograd2 = flat(4.0);
  cal.winograd3 = flat(4.0);
  cal.winograd4 = flat(4.0);
  return cal;
}

const Calibration& measured_calibration() { return calibration_store().get(); }

PlanCacheStats plan_cache_stats() {
  PlanCacheStats s;
  s.calibration_probes = calibration_store().probes();
  s.layer_measurements = layer_time_cache().measurements();
  s.layer_entries = layer_time_cache().entries();
  s.calibration_loaded = calibration_store().loaded();
  return s;
}

MeasuredState export_measured_state() {
  MeasuredState state;
  state.calibration = calibration_store().snapshot();
  state.layer_times = layer_time_cache().export_entries();
  return state;
}

void import_measured_state(const MeasuredState& state) {
  if (state.calibration) calibration_store().import(*state.calibration);
  layer_time_cache().import_entries(state.layer_times);
}

void clear_measured_state() {
  calibration_store().clear();
  layer_time_cache().clear();
}

double measure_layer_ms(const ConvLayerSpec& layer, ConvAlgo algo) {
  return layer_time_cache().seconds(layer, algo) * 1e3;
}

double predict_layer_ms(const ConvLayerSpec& layer, ConvAlgo algo,
                        const Calibration& cal, std::size_t batch) {
  // The rate anchor is selected on per-image work (sub-batches walk the
  // stack one cache-budgeted chunk at a time, so per-call work scales with
  // the layer, not the whole batch); the charged time scales with batch.
  const double per_image = modelled_ops(layer, algo, 1);
  double rate = cal.entry(algo).gflops_at(per_image);
  if (is_int8(algo)) rate *= kInt8AnalyticSpeedup;
  return per_image * static_cast<double>(batch) / (rate * 1e9) * 1e3;
}

double predict_layer_rel_error(const ConvLayerSpec& layer, ConvAlgo algo,
                               const LayerActivationStats* stats) {
  constexpr double kFp32Roundoff = 5.9604644775390625e-8;  // 2^-24
  if (!is_int8(algo)) {
    if (const int m = winograd_m(algo); m > 0) {
      return winograd::error_model(m, static_cast<int>(layer.r))
          .fp32_error_estimate(1.0);
    }
    // Direct forms accumulate one fp32 rounding per reduction step; RMS
    // growth over the C * r^2 reduction is sqrt(depth).
    const double depth = static_cast<double>(layer.c) *
                         static_cast<double>(layer.r * layer.r);
    return std::sqrt(depth) * kFp32Roundoff;
  }
  if (stats == nullptr) {
    // No calibration: the int8 error is unbounded as far as the planner
    // can prove, so a budgeted plan never selects int8 blind.
    return std::numeric_limits<double>::infinity();
  }
  if (!(stats->max_abs > 0)) return 0.0;  // all-zero input quantizes exactly
  if (!(stats->rms > 0)) return std::numeric_limits<double>::infinity();
  // Grid step of the symmetric scheme is 2 * max_abs / 254 ~= max_abs/127;
  // relative to the tensor's typical magnitude that is (2/127) * spread,
  // where spread >= 1 measures how far the range outruns a uniform
  // distribution of the same RMS (uniform: max = rms * sqrt(3)).
  const double spread =
      std::max(1.0, stats->max_abs / (stats->rms * std::sqrt(3.0)));
  double err = (2.0 / 127.0) * spread;
  if (const int qm = int8_winograd_m(algo); qm > 0) {
    // Transform-domain quantization noise rides the full 1-D pipeline
    // amplification kappa_1d = ||B^T|| * ||G|| * ||A^T||: the data and
    // filter transforms widen the per-position dynamic range and the
    // inverse transform amplifies the grid noise. Per-position scaling
    // absorbs roughly one dimension's worth of that inflation, so the 1-D
    // kappa (not kappa_2d) is the empirically sound bound; /3 normalizes
    // F(2x2, 3x3) — the best-conditioned form — to a 3x grid-step cost.
    // Observed errors sit below this bound (tests/quant_plan_test.cpp).
    const winograd::ErrorModel em =
        winograd::error_model(qm, static_cast<int>(layer.r));
    err *= std::max(1.0, em.kappa_1d / 3.0);
  }
  return err;
}

std::vector<ConvAlgo> quantized_candidates() {
  return {ConvAlgo::kInt8Winograd4, ConvAlgo::kInt8Winograd2,
          ConvAlgo::kInt8Im2col};
}

QuantCalibration calibrate_activations(const std::vector<LayerSpec>& layers,
                                       const WeightBank& weights,
                                       const Tensor4f& sample) {
  QuantCalibration cal;
  Tensor4f act = sample;
  std::size_t conv_idx = 0;
  std::size_t fc_idx = 0;
  for (const LayerSpec& l : layers) {
    switch (l.kind) {
      case LayerKind::kConv: {
        if (conv_idx >= weights.conv_kernels.size()) {
          throw std::invalid_argument(
              "calibrate_activations: missing conv weights");
        }
        LayerActivationStats stats;
        double sum_sq = 0;
        const auto flat = act.flat();
        for (const float v : flat) {
          const double d = static_cast<double>(v);
          stats.max_abs = std::max(stats.max_abs, std::abs(d));
          sum_sq += d * d;
        }
        stats.rms = flat.empty()
                        ? 0.0
                        : std::sqrt(sum_sq / static_cast<double>(flat.size()));
        cal.conv_inputs.push_back(stats);
        act = run_conv(ConvAlgo::kIm2col, act, weights.conv_kernels[conv_idx],
                       l.conv.pad);
        ++conv_idx;
        relu_inplace(act);
        break;
      }
      case LayerKind::kMaxPool:
        act = maxpool2x2(act);
        break;
      case LayerKind::kFullyConnected: {
        if (fc_idx >= weights.fc_weights.size()) {
          throw std::invalid_argument(
              "calibrate_activations: missing fc weights");
        }
        act = fully_connected(act, weights.fc_weights[fc_idx],
                              weights.fc_bias[fc_idx], l.fc_out);
        ++fc_idx;
        if (fc_idx < weights.fc_weights.size()) relu_inplace(act);
        break;
      }
    }
  }
  return cal;
}

bool ExecutionPlan::uniform() const {
  const LayerPlan* first = nullptr;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != LayerKind::kConv) continue;
    if (first == nullptr) {
      first = &steps[i];
    } else if (steps[i].algo != first->algo) {
      return false;
    }
  }
  return true;
}

std::string ExecutionPlan::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerPlan& s = steps[i];
    out += "  [" + std::to_string(i) + "] ";
    switch (layers[i].kind) {
      case LayerKind::kConv:
        out += "conv " + nn::to_string(s.algo) +
               (s.fused_relu ? " +relu" : "") + " (" +
               std::to_string(static_cast<long long>(s.predicted_ms * 1e3)) +
               "us)";
        break;
      case LayerKind::kMaxPool:
        out += "maxpool2x2";
        break;
      case LayerKind::kFullyConnected:
        out += "fc";
        break;
    }
    out += " -> " + tensor::to_string(s.output_kind);
    if (s.output_kind == LayoutKind::kWinogradTile) {
      out += "(m=" + std::to_string(s.out_tile_m) + ")";
    }
    out += "\n";
  }
  return out;
}

/// The shared layout pass: pick each boundary's handoff form from the
/// per-layer algorithm decisions and fill the summary counters. Winograd
/// convs emit their own m's tiles whenever the consumer gathers tile form
/// (another conv under a Winograd algo — any m, the gather handles
/// mismatched edges without a repack — or a maxpool); pools emit tiles
/// sized for the next Winograd conv; FC / non-Winograd conv / the final
/// output force NCHW.
void replan_layouts(ExecutionPlan& plan) {
  const auto& layers = plan.layers;
  plan.boundaries = layers.empty() ? 0 : layers.size() - 1;
  plan.nchw_boundaries = 0;
  plan.mixed_m_handoffs = 0;
  plan.int8_layers = 0;
  const auto wino_conv = [&](std::size_t i) {
    return layers[i].kind == LayerKind::kConv &&
           winograd_m(plan.steps[i].algo) > 0;
  };
  const auto int8_conv = [&](std::size_t i) {
    return layers[i].kind == LayerKind::kConv && is_int8(plan.steps[i].algo);
  };
  for (std::size_t i = 0; i < layers.size(); ++i) {
    LayerPlan& step = plan.steps[i];
    step.output_kind = LayoutKind::kNCHW;
    step.out_tile_m = 0;
    // Winograd and int8 convs fold ReLU into their output scatter /
    // dequantizing store (int8 winograd_m is 0, so int8 layers keep NCHW
    // boundaries below).
    step.fused_relu = wino_conv(i) || int8_conv(i);
    if (int8_conv(i)) ++plan.int8_layers;
    if (i + 1 >= layers.size()) continue;  // final output is NCHW
    const bool consumer_conv = wino_conv(i + 1);
    const bool consumer_pool = layers[i + 1].kind == LayerKind::kMaxPool;
    if (wino_conv(i) && (consumer_conv || consumer_pool)) {
      // Conv scatters its own m's tiles; the consumer gathers any edge.
      step.output_kind = LayoutKind::kWinogradTile;
      step.out_tile_m =
          static_cast<std::size_t>(winograd_m(step.algo));
      if (consumer_conv &&
          step.out_tile_m !=
              static_cast<std::size_t>(winograd_m(plan.steps[i + 1].algo))) {
        ++plan.mixed_m_handoffs;
      }
    } else if (layers[i].kind == LayerKind::kMaxPool && consumer_conv) {
      // The tiled maxpool writes tiles sized for its consumer.
      step.output_kind = LayoutKind::kWinogradTile;
      step.out_tile_m =
          static_cast<std::size_t>(winograd_m(plan.steps[i + 1].algo));
    }
  }
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    if (plan.steps[i].output_kind == LayoutKind::kNCHW) {
      ++plan.nchw_boundaries;
    }
  }
  plan.memory = MemoryPlan{};
  try {
    plan.memory = build_memory_plan(plan);
  } catch (const std::exception&) {
    // Input shape not derivable at plan time (pool-first stacks) or the
    // walk rejects the geometry; forward() rebuilds from the live input.
  }
  plan.batch_ceiling = plan_batch_ceiling(plan);
}

ExecutionPlan plan_execution(const std::vector<LayerSpec>& layers,
                             const PlannerOptions& options) {
  if (options.candidates.empty()) {
    throw std::invalid_argument("plan_execution: no candidate algorithms");
  }
  ExecutionPlan plan;
  plan.layers = layers;
  plan.steps.assign(layers.size(), LayerPlan{});
  plan.predicted_total_ms = 0;
  plan.predicted_max_rel_error = 0;
  const double budget = options.constraints.max_rel_error;
  std::size_t conv_ordinal = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != LayerKind::kConv) continue;
    LayerPlan& step = plan.steps[i];
    const LayerActivationStats* stats = nullptr;
    if (options.quant && conv_ordinal < options.quant->conv_inputs.size()) {
      stats = &options.quant->conv_inputs[conv_ordinal];
    }
    double best = 0;
    bool first = true;
    for (const ConvAlgo algo : options.candidates) {
      // Quality gate first: with an active budget, a candidate whose
      // predicted error breaches it never enters the speed race — the
      // mechanism that demotes int8 Winograd to int8 im2col to fp32 as
      // the budget tightens.
      if (budget > 0 &&
          predict_layer_rel_error(layers[i].conv, algo, stats) > budget) {
        continue;
      }
      // Default scoring measures the candidate at this layer's exact
      // geometry (cached per process); an injected calibration switches
      // to the pure analytic model.
      const double ms =
          options.calibration
              ? predict_layer_ms(layers[i].conv, algo, *options.calibration,
                                 options.batch)
              : measure_layer_ms(layers[i].conv, algo) *
                    static_cast<double>(options.batch);
      // Strict less-than: ties keep the earliest listed candidate, so the
      // plan is deterministic for any scoring source (measurements are
      // cached, so re-planning sees identical numbers).
      if (first || ms < best) {
        best = ms;
        step.algo = algo;
        first = false;
      }
    }
    if (first) {
      throw std::invalid_argument(
          "plan_execution: no candidate algorithm fits the error budget at "
          "conv layer " +
          std::to_string(conv_ordinal));
    }
    if (is_int8(step.algo) && stats != nullptr) {
      // Attach the static per-tensor activation scale the calibration
      // implies; without stats the executor derives it per image.
      step.act_scale = static_cast<float>(stats->max_abs / 127.0);
    }
    if (budget > 0) {
      plan.predicted_max_rel_error =
          std::max(plan.predicted_max_rel_error,
                   predict_layer_rel_error(layers[i].conv, step.algo, stats));
    }
    step.predicted_ms = best;
    plan.predicted_total_ms += best;
    ++conv_ordinal;
  }
  replan_layouts(plan);
  return plan;
}

ExecutionPlan uniform_plan(const std::vector<LayerSpec>& layers,
                           ConvAlgo algo, LayoutPolicy policy) {
  ExecutionPlan plan;
  plan.layers = layers;
  plan.steps.assign(layers.size(), LayerPlan{});
  for (std::size_t i = 0; i < layers.size(); ++i) {
    // Conv layers only: pool/FC steps keep the default (their algo field
    // is never read), matching plan_execution's output shape exactly.
    if (layers[i].kind == LayerKind::kConv) plan.steps[i].algo = algo;
  }
  if (policy == LayoutPolicy::kAuto) {
    replan_layouts(plan);
  } else {
    plan.boundaries = layers.empty() ? 0 : layers.size() - 1;
    plan.nchw_boundaries = plan.boundaries;
    try {
      plan.memory = build_memory_plan(plan);
    } catch (const std::exception&) {
      // Same fallback as replan_layouts: forward() rebuilds as needed.
    }
    plan.batch_ceiling = plan_batch_ceiling(plan);
  }
  return plan;
}

Tensor4f forward_reference(const ExecutionPlan& plan,
                           const WeightBank& weights, const Tensor4f& input) {
  Tensor4f act = input;
  std::size_t conv_idx = 0;
  std::size_t fc_idx = 0;
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    const auto& l = plan.layers[i];
    switch (l.kind) {
      case LayerKind::kConv: {
        if (conv_idx >= weights.conv_kernels.size()) {
          throw std::invalid_argument(
              "forward_reference: missing conv weights");
        }
        act = run_conv(plan.steps[i].algo, act,
                       weights.conv_kernels[conv_idx], l.conv.pad,
                       plan.steps[i].act_scale);
        ++conv_idx;
        relu_inplace(act);
        break;
      }
      case LayerKind::kMaxPool:
        act = maxpool2x2(act);
        break;
      case LayerKind::kFullyConnected: {
        if (fc_idx >= weights.fc_weights.size()) {
          throw std::invalid_argument(
              "forward_reference: missing fc weights");
        }
        act = fully_connected(act, weights.fc_weights[fc_idx],
                              weights.fc_bias[fc_idx], l.fc_out);
        ++fc_idx;
        if (fc_idx < weights.fc_weights.size()) relu_inplace(act);
        break;
      }
    }
  }
  return act;
}

PackedActivation maxpool2x2_packed(const PackedActivation& input,
                                   LayoutKind out_kind,
                                   std::size_t out_tile_m) {
  const Layout& il = input.layout;
  if (il.kind != LayoutKind::kNCHW &&
      il.kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "maxpool2x2_packed: input must be NCHW or Winograd-tile form");
  }
  if (out_kind != LayoutKind::kNCHW &&
      out_kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "maxpool2x2_packed: output must be NCHW or Winograd-tile form");
  }
  if (input.data.size() != il.volume()) {
    throw std::invalid_argument(
        "maxpool2x2_packed: buffer size != layout volume");
  }
  const auto& s = il.shape;
  if (s.h < 2 || s.w < 2) {
    throw std::invalid_argument("maxpool2x2_packed: input too small");
  }
  const Shape4 os{s.n, s.c, s.h / 2, s.w / 2};
  const Layout ol = out_kind == LayoutKind::kNCHW
                        ? Layout::nchw(os)
                        : Layout::winograd_tile(os, out_tile_m);
  PackedActivation out{ol, std::vector<float>(ol.volume())};
  std::vector<std::size_t> in_col(
      il.kind == LayoutKind::kWinogradTile ? s.w : 0);
  std::vector<std::size_t> out_col(
      out_kind == LayoutKind::kWinogradTile ? os.w : 0);
  maxpool2x2_packed_into(il, input.data, ol, out.data, in_col, out_col);
  return out;
}

void maxpool2x2_packed_into(const Layout& il, std::span<const float> in,
                            const Layout& ol, std::span<float> out,
                            std::span<std::size_t> in_col,
                            std::span<std::size_t> out_col) {
  if (il.kind != LayoutKind::kNCHW &&
      il.kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "maxpool2x2_packed: input must be NCHW or Winograd-tile form");
  }
  const LayoutKind out_kind = ol.kind;
  if (out_kind != LayoutKind::kNCHW &&
      out_kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "maxpool2x2_packed: output must be NCHW or Winograd-tile form");
  }
  if (in.size() != il.volume()) {
    throw std::invalid_argument(
        "maxpool2x2_packed: buffer size != layout volume");
  }
  const auto& s = il.shape;
  if (s.h < 2 || s.w < 2) {
    throw std::invalid_argument("maxpool2x2_packed: input too small");
  }
  const Shape4 os{s.n, s.c, s.h / 2, s.w / 2};
  if (!(ol.shape == os)) {
    throw std::invalid_argument(
        "maxpool2x2_packed: output layout does not match this pool");
  }
  if (out.size() != ol.volume()) {
    throw std::invalid_argument(
        "maxpool2x2_packed: output buffer size != layout volume");
  }

  const bool in_tiled = il.kind == LayoutKind::kWinogradTile;
  const bool out_tiled = out_kind == LayoutKind::kWinogradTile;
  const std::size_t sm = in_tiled ? il.tile_m : 0;
  const std::size_t sth = in_tiled ? il.tiles_h() : 0;
  const std::size_t stw = in_tiled ? il.tiles_w() : 0;
  const std::size_t dm = out_tiled ? ol.tile_m : 0;
  const std::size_t dth = out_tiled ? ol.tiles_h() : 0;
  const std::size_t dtw = out_tiled ? ol.tiles_w() : 0;
  if (in_col.size() != (in_tiled ? s.w : 0) ||
      out_col.size() != (out_tiled ? os.w : 0)) {
    throw std::invalid_argument(
        "maxpool2x2_packed: column-map span size mismatch");
  }

  // Zero-fill first so the tile layout's ragged-fill invariant holds on a
  // dirty (slab-reused) output buffer; only in-map output pixels are
  // written below.
  std::fill(out.begin(), out.end(), 0.0F);

  // Column maps, shared read-only across planes: input column x -> offset
  // of (·, x) within a tile row block, output column ox likewise. Rows are
  // resolved per y below, so the inner loop is indexed loads/stores with
  // no division.
  for (std::size_t x = 0; x < in_col.size(); ++x) {
    in_col[x] = (x / sm) * sm * sm + x % sm;
  }
  for (std::size_t x = 0; x < out_col.size(); ++x) {
    out_col[x] = (x / dm) * dm * dm + x % dm;
  }

  const float* src = in.data();
  float* dst = out.data();
  const std::size_t planes = s.n * s.c;
  runtime::parallel_for(planes, [&](std::size_t begin, std::size_t end) {
    for (std::size_t plane = begin; plane < end; ++plane) {
      const float* in_plane =
          in_tiled ? src + plane * sth * stw * sm * sm
                   : src + plane * s.h * s.w;
      float* out_plane = out_tiled ? dst + plane * dth * dtw * dm * dm
                                   : dst + plane * os.h * os.w;
      for (std::size_t oy = 0; oy < os.h; ++oy) {
        const std::size_t y = 2 * oy;
        const float* row0 =
            in_tiled ? in_plane + (y / sm) * stw * sm * sm + (y % sm) * sm
                     : in_plane + y * s.w;
        const float* row1 = in_tiled ? in_plane +
                                           ((y + 1) / sm) * stw * sm * sm +
                                           ((y + 1) % sm) * sm
                                     : row0 + s.w;
        float* orow = out_tiled ? out_plane + (oy / dm) * dtw * dm * dm +
                                      (oy % dm) * dm
                                : out_plane + oy * os.w;
        for (std::size_t ox = 0; ox < os.w; ++ox) {
          const std::size_t x = 2 * ox;
          // Exactly maxpool2x2's maxes in maxpool2x2's order, so the
          // result is bit-identical to pooling in NCHW (incl. NaN
          // propagation, which depends on operand order).
          float a;
          float b;
          float c;
          float d;
          if (in_tiled) {
            a = row0[in_col[x]];
            b = row0[in_col[x + 1]];
            c = row1[in_col[x]];
            d = row1[in_col[x + 1]];
          } else {
            a = row0[x];
            b = row0[x + 1];
            c = row1[x];
            d = row1[x + 1];
          }
          const float m0 = std::max(a, b);
          const float m1 = std::max(c, d);
          if (out_tiled) {
            orow[out_col[ox]] = std::max(m0, m1);
          } else {
            orow[ox] = std::max(m0, m1);
          }
        }
      }
    }
  });
}

}  // namespace wino::nn
