// Plan-time memory planning: one slab per forward pass.
//
// The execution planner (nn/plan.hpp) decides *what* each layer runs; this
// header decides *where its bytes live*. A MemoryPlan walks the plan's
// layer sequence once, records every buffer the executor will need — each
// activation in its planned Layout, plus per-layer scratch (Winograd tile
// workspaces, im2col panels, tiled-maxpool column maps) — with its lifetime
// interval over the step index, and assigns overlap-free offsets into a
// single slab by classic linear-scan interval reuse: a buffer whose last
// reader has passed frees its range for the next buffer at the same offset.
//
// Sizes are split into a per-image part (activations scale with the
// sub-batch the executor marches through the stack) and a fixed part
// (per-layer scratch is image-independent), so one MemoryPlan resolves to
// concrete offsets for any chunk size without replanning. peak_bytes is the
// slab high-water mark — the planned per-worker memory cost of a forward
// pass, which serve::InferenceServer uses to size one workspace per worker
// at model registration instead of discovering the cost at first request.
//
// Memory planning never changes arithmetic: the executor runs the same
// kernels on the same values in the same order, only out of slab-backed
// spans instead of freshly allocated Tensor4f buffers (the determinism
// contract in docs/ARCHITECTURE.md is unaffected; pinned by
// tests/nn_memory_test.cpp and the bit-identity sweeps in
// tests/nn_plan_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "quant/int8.hpp"
#include "tensor/layout.hpp"
#include "winograd/kernels.hpp"

namespace wino::nn {

struct ExecutionPlan;

/// Slab alignment of every planned buffer (cache-line sized; also covers
/// the strictest alignment of the element types carved out of it).
inline constexpr std::size_t kSlabAlign = 64;

/// Sequential carver over a byte range, or — default-constructed — a pure
/// measuring pass: take<T>(count) advances an aligned cursor either way,
/// so the builder (measuring scratch sizes at plan time) and the executor
/// (carving the same scratch out of the workspace at run time) share one
/// definition of each layer's scratch composition and cannot drift.
class ByteCarver {
 public:
  ByteCarver() = default;  ///< measure mode: spans come back null
  explicit ByteCarver(std::span<std::byte> bytes)
      : base_(bytes.data()), capacity_(bytes.size()), carving_(true) {}

  template <typename T>
  std::span<T> take(std::size_t count) {
    static_assert(alignof(T) <= kSlabAlign);
    used_ = align_up(used_);
    const std::size_t bytes = count * sizeof(T);
    T* ptr = nullptr;
    if (carving_) {
      if (used_ + bytes > capacity_) {
        throw std::logic_error("ByteCarver: scratch overflow");
      }
      ptr = reinterpret_cast<T*>(base_ + used_);
    }
    used_ += bytes;
    return {ptr, count};
  }

  /// Bytes consumed so far, rounded up to the slab alignment.
  [[nodiscard]] std::size_t used() const { return align_up(used_); }

 private:
  [[nodiscard]] static std::size_t align_up(std::size_t n) {
    return (n + kSlabAlign - 1) / kSlabAlign * kSlabAlign;
  }

  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  bool carving_ = false;
};

/// One buffer the executor needs, with its lifetime over step indices
/// (inclusive on both ends) and its size model: activations carry
/// per_image_bytes (they scale with the chunk), scratch carries fixed
/// bytes (it does not).
struct PlannedBuffer {
  std::size_t step_first = 0;
  std::size_t step_last = 0;
  std::size_t per_image_bytes = 0;
  std::size_t fixed_bytes = 0;
};

/// The resolved slab assignment of an ExecutionPlan: buffer list in
/// creation (step_first) order, per-step indices into it, and the planned
/// Layout of every step's output activation at shape.n == 1.
struct MemoryPlan {
  std::vector<PlannedBuffer> buffers;
  /// Per step: buffers index of the output activation, or -1 for the
  /// final step (the executor writes the caller's output buffer directly).
  std::vector<std::ptrdiff_t> step_activation;
  /// Per step: buffers index of the layer's scratch, or -1 when none.
  std::vector<std::ptrdiff_t> step_scratch;
  /// Per step: fused tile-block columns for Winograd conv steps (fp32 or
  /// int8), 1 for the per-tile walk and for every other layer kind. Sized
  /// so the blocked scratch fits the cache budget WITHOUT raising the
  /// slab's peak bytes at 1 or 8 images over the unfused plan (the planner
  /// shrinks the block until the peak is neutral; a zero-slack step simply
  /// stays at 1).
  std::vector<std::size_t> step_block_columns;
  /// Per step: planned Layout of the output activation with shape.n == 1.
  std::vector<tensor::Layout> act_layout;
  /// Per-image input shape the walk assumed (n == 1). forward() rebuilds
  /// the plan locally when the live input disagrees (fc-first models
  /// accept any factorisation of fc_in; pool-first stacks have no
  /// plan-time shape at all).
  tensor::Shape4 input_shape{};
  /// Process-unique id so per-thread workspaces can cache their last
  /// resolution; rebuilt plans get fresh ids.
  std::uint64_t plan_id = 0;

  [[nodiscard]] bool empty() const { return act_layout.empty(); }

  /// Concrete offsets for one chunk size. Vectors are reused across calls
  /// (capacity is plan-determined), so re-resolving an already-resolved
  /// plan at a different image count performs no heap allocation.
  struct Resolved {
    std::vector<std::size_t> offsets;  ///< per buffer, kSlabAlign-aligned
    std::vector<std::size_t> sizes;    ///< per buffer, kSlabAlign multiple
    std::size_t peak_bytes = 0;        ///< slab high-water mark

    // Linear-scan state (live buffers sorted by offset), kept here so a
    // warm re-resolve allocates nothing.
    std::vector<std::uint32_t> live;
  };

  void resolve(std::size_t images, Resolved& out) const;
  [[nodiscard]] Resolved resolve(std::size_t images) const;

  /// Slab bytes a workspace needs for a chunk of `images`.
  [[nodiscard]] std::size_t peak_bytes(std::size_t images) const;
};

/// Build the memory plan for an ExecutionPlan, deriving the per-image
/// input shape from the first layer (conv: its spec's c/h/w; FC: fc_in as
/// a flat channel vector). Throws std::invalid_argument when the shape is
/// not derivable (pool-first stacks) or a layer's output would be empty.
/// `fuse_blocks` enables the peak-neutral fused block sizing pass
/// (step_block_columns); false plans every Winograd step per-tile.
[[nodiscard]] MemoryPlan build_memory_plan(const ExecutionPlan& plan,
                                           bool fuse_blocks = true);

/// As above with an explicit per-image input shape (n is forced to 1) —
/// the runtime fallback for inputs the plan-time walk could not assume.
[[nodiscard]] MemoryPlan build_memory_plan(const ExecutionPlan& plan,
                                           tensor::Shape4 input,
                                           bool fuse_blocks = true);

/// Carve (or measure) the scratch of one Winograd conv layer: the data
/// tile, transform bank, accumulator tiles and the tile-form gather maps
/// of winograd::conv2d_winograd_layout_into. `n_tile` is the transformer's
/// m + r - 1 edge. `block_columns` > 1 carves the fused tile-block layout
/// (u_blk/acc_blk) instead of the per-tile bank (u_all/prod); at 1 the
/// composition — and therefore the carved byte count — is exactly the
/// per-tile layout's.
[[nodiscard]] winograd::WinogradScratch carve_winograd_scratch(
    ByteCarver& carver, std::size_t channels, std::size_t n_tile,
    std::size_t m, std::size_t block_columns = 1);

/// Carve (or measure) the scratch of one int8 im2col conv layer: the fp32
/// patch panel, its quantized K-contiguous transpose and the int32 GEMM
/// accumulator of quant::conv2d_im2col_int8_into.
/// \param inner  reduction depth C*r*r.
/// \param cols   output pixels outH*outW.
/// \param kcount output channels K.
[[nodiscard]] quant::QuantIm2colScratch carve_quant_im2col_scratch(
    ByteCarver& carver, std::size_t inner, std::size_t cols,
    std::size_t kcount);

/// Carve (or measure) the scratch of one int8 Winograd conv layer: the
/// gathered/transformed/quantized tiles and accumulators of
/// quant::conv2d_winograd_int8_into. `n_tile` is the transformer's
/// m + r - 1 edge. `block_columns` as in carve_winograd_scratch.
[[nodiscard]] quant::QuantWinogradScratch carve_quant_winograd_scratch(
    ByteCarver& carver, std::size_t channels, std::size_t n_tile,
    std::size_t m, std::size_t block_columns = 1);

/// Carve (or measure) the tiled-maxpool column maps for an input/output
/// layout pair (empty spans for NCHW sides).
struct PoolScratch {
  std::span<std::size_t> in_col;
  std::span<std::size_t> out_col;
};
[[nodiscard]] PoolScratch carve_pool_scratch(ByteCarver& carver,
                                             const tensor::Layout& il,
                                             const tensor::Layout& ol);

/// A per-thread execution arena: one aligned slab plus the offset table of
/// the plan it was last prepared for. prepare() is a no-op when the
/// (plan, images) pair is unchanged; otherwise it re-resolves (allocation-
/// free once warm) and grows the slab monotonically if the new peak
/// exceeds it. Not thread-safe — each worker owns its own instance.
class Workspace {
 public:
  void prepare(const MemoryPlan& plan, std::size_t images);

  /// Byte range of buffer `id` in the prepared slab.
  [[nodiscard]] std::span<std::byte> buffer_bytes(std::size_t id) {
    return {base_ + resolved_.offsets[id], resolved_.sizes[id]};
  }

  /// Typed view over buffer `id`; count * sizeof(T) must fit its range.
  template <typename T>
  [[nodiscard]] std::span<T> span_of(std::size_t id, std::size_t count) {
    static_assert(alignof(T) <= kSlabAlign);
    if (count * sizeof(T) > resolved_.sizes[id]) {
      throw std::logic_error("Workspace: buffer smaller than requested view");
    }
    return {reinterpret_cast<T*>(base_ + resolved_.offsets[id]), count};
  }

  /// Bytes of slab currently owned (>= the last prepared peak).
  [[nodiscard]] std::size_t slab_bytes() const { return slab_.size(); }

 private:
  std::vector<std::byte> slab_;
  std::byte* base_ = nullptr;
  MemoryPlan::Resolved resolved_;
  std::uint64_t plan_id_ = 0;
  std::size_t images_ = 0;
  bool prepared_ = false;
};

}  // namespace wino::nn
