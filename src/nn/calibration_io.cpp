#include "nn/calibration_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace wino::nn {

namespace {

/// Compile-time ISA tag: measurements made with wider vectors enabled do
/// not transfer to a build (or machine) without them.
const char* isa_tag() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE4_2__)
  return "sse42";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "generic";
#endif
}

std::string cpu_model_name() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        auto name = line.substr(colon + 1);
        const auto first = name.find_first_not_of(" \t");
        if (first != std::string::npos) return name.substr(first);
      }
    }
  }
  return "unknown-cpu";
}

/// Exact-round-trip double formatting (C hexfloat).
std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// strtod parses hexfloat input (istream >> double does not); the token
/// must be consumed entirely.
bool parse_double(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && std::isfinite(out);
}

bool parse_size(const std::string& token, std::size_t& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// The six calibration entries in their fixed serialisation order.
std::vector<AlgoCalibration*> entry_order(Calibration& cal) {
  return {&cal.spatial,   &cal.im2col,    &cal.fft,
          &cal.winograd2, &cal.winograd3, &cal.winograd4};
}

bool plausible(const AlgoCalibration& c) {
  return c.gflops_small > 0 && c.gflops_big > 0 && c.ops_small > 0 &&
         c.ops_big > c.ops_small;
}

}  // namespace

std::string calibration_cpu_signature() {
  std::ostringstream sig;
  sig << cpu_model_name() << " | cores=" << std::thread::hardware_concurrency()
      << " | isa=" << isa_tag();
  return sig.str();
}

std::string calibration_code_hash() {
  // "planner-v2": bump when probe shapes / timing methodology / cost-model
  // semantics change (v2: int8 algos entered the layer-time key space).
  // __VERSION__ folds the compiler in — different codegen, different
  // measured rates.
  return std::string("planner-v2 | ") + __VERSION__;
}

bool save_measured_state(const std::string& path) {
  const MeasuredState state = export_measured_state();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "winocal 1\n";
    out << "cpu " << calibration_cpu_signature() << '\n';
    out << "code " << calibration_code_hash() << '\n';
    if (state.calibration) {
      Calibration cal = *state.calibration;
      out << "cal";
      for (const AlgoCalibration* e : entry_order(cal)) {
        out << ' ' << hexfloat(e->ops_small) << ' ' << hexfloat(e->gflops_small)
            << ' ' << hexfloat(e->ops_big) << ' ' << hexfloat(e->gflops_big);
      }
      out << '\n';
    }
    for (const MeasuredLayerTime& t : state.layer_times) {
      out << "layer " << t.h << ' ' << t.w << ' ' << t.c << ' ' << t.k << ' '
          << t.r << ' ' << t.pad << ' ' << static_cast<int>(t.algo) << ' '
          << hexfloat(t.seconds) << '\n';
    }
    out << "end\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_measured_state(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;

  std::string line;
  if (!std::getline(in, line) || line != "winocal 1") return false;
  if (!std::getline(in, line) ||
      line != "cpu " + calibration_cpu_signature()) {
    return false;
  }
  if (!std::getline(in, line) || line != "code " + calibration_code_hash()) {
    return false;
  }

  // Parse everything before importing anything: a corrupt tail must not
  // leave a half-imported state behind.
  MeasuredState state;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "cal") {
      Calibration cal;
      for (AlgoCalibration* e : entry_order(cal)) {
        std::string t1, t2, t3, t4;
        if (!(fields >> t1 >> t2 >> t3 >> t4)) return false;
        if (!parse_double(t1, e->ops_small) ||
            !parse_double(t2, e->gflops_small) ||
            !parse_double(t3, e->ops_big) ||
            !parse_double(t4, e->gflops_big)) {
          return false;
        }
        if (!plausible(*e)) return false;
      }
      state.calibration = cal;
    } else if (kind == "layer") {
      MeasuredLayerTime t;
      std::string sh, sw, sc, sk, sr, spad, salgo, ssecs;
      if (!(fields >> sh >> sw >> sc >> sk >> sr >> spad >> salgo >> ssecs)) {
        return false;
      }
      std::size_t pad = 0;
      std::size_t algo = 0;
      if (!parse_size(sh, t.h) || !parse_size(sw, t.w) ||
          !parse_size(sc, t.c) || !parse_size(sk, t.k) ||
          !parse_size(sr, t.r) || !parse_size(spad, pad) ||
          !parse_size(salgo, algo) || !parse_double(ssecs, t.seconds)) {
        return false;
      }
      if (algo > static_cast<std::size_t>(ConvAlgo::kInt8Winograd4)) {
        return false;
      }
      if (!(t.seconds > 0)) return false;
      t.pad = static_cast<int>(pad);
      t.algo = static_cast<ConvAlgo>(algo);
      state.layer_times.push_back(t);
    } else {
      return false;
    }
  }
  if (!saw_end) return false;

  import_measured_state(state);
  return true;
}

}  // namespace wino::nn
