// On-disk persistence for the measured half of the cost model: the probe
// Calibration plus the per-layer timing cache (nn::MeasuredState). A
// server that persisted its measurements can restart, load them back, and
// register planned sessions without running a single microbenchmark —
// add_model_planned() drops from seconds to near-instant.
//
// Timings only transfer between identical machines running identical
// code, so the file is keyed: it embeds a CPU signature (model name +
// core count + ISA tag) and a code hash (planner revision + compiler
// version), and load_measured_state() refuses a file whose key does not
// match the running process. Stale or foreign measurements silently fall
// back to a fresh probe — never to wrong plans.
//
// File format ("winocal", version 1) — line-oriented text:
//   winocal 1
//   cpu <cpu signature>
//   code <code hash>
//   cal <6 entries x 4 hexfloat fields>   (omitted when no calibration)
//   layer <h> <w> <c> <k> <r> <pad> <algo> <hexfloat seconds>  (0..n lines)
//   end
// Doubles are printed as C hexfloats (%a): exact bit round-trip, no
// locale or precision surprises. The trailing "end" sentinel rejects
// truncated files. Writes go through a .tmp sibling + atomic rename so a
// crash mid-write never leaves a half-valid cache.
#pragma once

#include <string>

#include "nn/plan.hpp"

namespace wino::nn {

/// Identity of this machine for calibration keying: CPU model name (from
/// /proc/cpuinfo where available), core count and compile-time ISA tag.
[[nodiscard]] std::string calibration_cpu_signature();

/// Identity of this build's measurement semantics: bump the embedded
/// revision whenever the probe shapes, the timing methodology or the cost
/// model change meaning; the compiler version rides along since codegen
/// changes move the measured rates.
[[nodiscard]] std::string calibration_code_hash();

/// Serialise the current nn::export_measured_state() to `path` (atomic
/// replace). \return false on any I/O failure (never throws).
bool save_measured_state(const std::string& path);

/// Load `path` and import it via nn::import_measured_state(). Missing
/// file, key mismatch (CPU signature / code hash / format version) and
/// corruption all \return false and import nothing — the caller's next
/// planning call probes fresh. Never throws.
bool load_measured_state(const std::string& path);

}  // namespace wino::nn
