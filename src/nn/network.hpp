// CNN workload description: layer specs, shape inference, and the VGG16-D
// model the paper uses for all of its design space exploration.
//
// The DSE models (src/dse) consume only the static layer geometry; the
// forward-pass engine (src/nn/forward.hpp) additionally executes layers
// numerically with a pluggable convolution algorithm.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wino::nn {

/// A convolutional layer: C input channels, K kernels of r x r, unit
/// stride, symmetric padding (VGG uses pad 1 so H, W are preserved).
struct ConvLayerSpec {
  std::string name;
  std::size_t h = 0;  ///< input feature map height
  std::size_t w = 0;  ///< input feature map width
  std::size_t c = 0;  ///< input channels
  std::size_t k = 0;  ///< output channels (number of kernels)
  std::size_t r = 3;  ///< kernel size
  int pad = 1;
  int stride = 1;     ///< spatial stride (Winograd paths require 1)

  /// Multiplications of spatial convolution for batch n (Eq 4 with m = 1):
  /// N*H*W*C*K*r^2, using the output extent for H*W (pad 1, stride 1 keeps
  /// them equal for VGG).
  [[nodiscard]] std::size_t spatial_mults(std::size_t n = 1) const;

  /// Total arithmetic ops of spatial convolution (multiply + accumulate
  /// counted separately), the paper's throughput numerator O_S (Eq 10).
  [[nodiscard]] std::size_t spatial_ops(std::size_t n = 1) const;

  [[nodiscard]] std::size_t out_h() const {
    return (h + 2 * static_cast<std::size_t>(pad) - r) /
               static_cast<std::size_t>(stride) +
           1;
  }
  [[nodiscard]] std::size_t out_w() const {
    return (w + 2 * static_cast<std::size_t>(pad) - r) /
               static_cast<std::size_t>(stride) +
           1;
  }
};

/// Pooling/FC layers are carried for completeness of the model definition
/// (examples run them); the paper's evaluation concerns conv layers only.
enum class LayerKind { kConv, kMaxPool, kFullyConnected };

struct LayerSpec {
  LayerKind kind = LayerKind::kConv;
  ConvLayerSpec conv;           ///< valid when kind == kConv
  std::size_t pool_size = 2;    ///< kMaxPool
  std::size_t fc_in = 0;        ///< kFullyConnected
  std::size_t fc_out = 0;
};

/// A named group of consecutive conv layers sharing spatial extent
/// (VGG16-D's Conv1..Conv5 as reported in the paper's Fig 1 / Table II).
struct ConvGroup {
  std::string name;
  std::vector<ConvLayerSpec> layers;

  [[nodiscard]] std::size_t spatial_mults(std::size_t n = 1) const;
  [[nodiscard]] std::size_t spatial_ops(std::size_t n = 1) const;
};

/// Static model of a CNN's convolutional workload.
struct ConvWorkload {
  std::string name;
  std::vector<ConvGroup> groups;

  [[nodiscard]] std::vector<ConvLayerSpec> all_layers() const;
  [[nodiscard]] std::size_t spatial_mults(std::size_t n = 1) const;
  [[nodiscard]] std::size_t spatial_ops(std::size_t n = 1) const;
};

/// VGG16 configuration D (Simonyan & Zisserman), 13 conv layers in 5
/// groups, all 3x3 kernels with pad 1 — the paper's CNN of choice.
const ConvWorkload& vgg16_d();

/// AlexNet's convolutional stack (Krizhevsky et al., the paper's [2]) —
/// mixed kernel sizes (11, 5, 3), used by the kernel-size study that
/// substantiates the paper's Section II-C argument that Winograd suits
/// small kernels where FFT does not pay off. Stride-4 conv1 is recorded
/// with its output extent so complexity counts stay exact.
const ConvWorkload& alexnet();

/// Full VGG16-D layer list including pools and the 3 FC layers, for the
/// end-to-end inference example.
std::vector<LayerSpec> vgg16_d_full();

}  // namespace wino::nn
