#include "nn/forward.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/random.hpp"
#include "conv/fft.hpp"
#include "conv/im2col.hpp"
#include "conv/spatial.hpp"
#include "runtime/thread_pool.hpp"
#include "winograd/kernels.hpp"

namespace wino::nn {

using tensor::Tensor4f;

std::string to_string(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kSpatial:
      return "spatial";
    case ConvAlgo::kIm2col:
      return "im2col";
    case ConvAlgo::kFft:
      return "fft";
    case ConvAlgo::kWinograd2:
      return "winograd-F(2x2,3x3)";
    case ConvAlgo::kWinograd3:
      return "winograd-F(3x3,3x3)";
    case ConvAlgo::kWinograd4:
      return "winograd-F(4x4,3x3)";
  }
  return "unknown";
}

Tensor4f run_conv(ConvAlgo algo, const Tensor4f& input,
                  const Tensor4f& kernels, int pad) {
  const conv::SpatialConvOptions sopt{.pad = pad, .stride = 1};
  winograd::WinogradConvOptions wopt;
  wopt.pad = pad;
  switch (algo) {
    case ConvAlgo::kSpatial:
      return conv::conv2d_spatial(input, kernels, sopt);
    case ConvAlgo::kIm2col:
      return conv::conv2d_im2col(input, kernels, sopt);
    case ConvAlgo::kFft:
      return conv::conv2d_fft(input, kernels, sopt);
    case ConvAlgo::kWinograd2:
      return winograd::conv2d_winograd(input, kernels, 2, wopt);
    case ConvAlgo::kWinograd3:
      return winograd::conv2d_winograd(input, kernels, 3, wopt);
    case ConvAlgo::kWinograd4:
      return winograd::conv2d_winograd(input, kernels, 4, wopt);
  }
  throw std::invalid_argument("run_conv: unknown algorithm");
}

void relu_inplace(Tensor4f& t) {
  for (float& v : t.flat()) v = v > 0.0F ? v : 0.0F;
}

Tensor4f maxpool2x2(const Tensor4f& input) {
  const auto& s = input.shape();
  if (s.h < 2 || s.w < 2) {
    throw std::invalid_argument("maxpool2x2: input too small");
  }
  Tensor4f out(s.n, s.c, s.h / 2, s.w / 2);
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t c = 0; c < s.c; ++c) {
      for (std::size_t y = 0; y + 1 < s.h; y += 2) {
        for (std::size_t x = 0; x + 1 < s.w; x += 2) {
          const float m0 = std::max(input(n, c, y, x), input(n, c, y, x + 1));
          const float m1 =
              std::max(input(n, c, y + 1, x), input(n, c, y + 1, x + 1));
          out(n, c, y / 2, x / 2) = std::max(m0, m1);
        }
      }
    }
  }
  return out;
}

Tensor4f fully_connected(const Tensor4f& input,
                         const std::vector<float>& weights,
                         const std::vector<float>& bias,
                         std::size_t out_features) {
  const auto& s = input.shape();
  const std::size_t in_features = s.c * s.h * s.w;
  if (weights.size() != in_features * out_features ||
      bias.size() != out_features) {
    throw std::invalid_argument("fully_connected: weight size mismatch");
  }
  Tensor4f out(s.n, out_features, 1, 1);
  for (std::size_t n = 0; n < s.n; ++n) {
    const std::span<const float> x =
        input.flat().subspan(n * in_features, in_features);
    for (std::size_t o = 0; o < out_features; ++o) {
      float acc = bias[o];
      const float* wrow = &weights[o * in_features];
      for (std::size_t i = 0; i < in_features; ++i) acc += wrow[i] * x[i];
      out(n, o, 0, 0) = acc;
    }
  }
  return out;
}

WeightBank random_weights(const std::vector<LayerSpec>& layers,
                          std::uint64_t seed) {
  common::Rng rng(seed);
  WeightBank bank;
  for (const auto& l : layers) {
    if (l.kind == LayerKind::kConv) {
      const auto& c = l.conv;
      Tensor4f k(c.k, c.c, c.r, c.r);
      const float stddev =
          std::sqrt(2.0F / static_cast<float>(c.c * c.r * c.r));
      rng.fill_normal(k.flat(), 0.0F, stddev);
      bank.conv_kernels.push_back(std::move(k));
    } else if (l.kind == LayerKind::kFullyConnected) {
      std::vector<float> w(l.fc_in * l.fc_out);
      std::vector<float> b(l.fc_out);
      const float stddev = std::sqrt(2.0F / static_cast<float>(l.fc_in));
      rng.fill_normal(w, 0.0F, stddev);
      rng.fill_uniform(b, -0.1F, 0.1F);
      bank.fc_weights.push_back(std::move(w));
      bank.fc_bias.push_back(std::move(b));
    }
  }
  return bank;
}

namespace {

/// Sequential layer-stack evaluation (any batch size).
Tensor4f forward_sequential(const std::vector<LayerSpec>& layers,
                            const WeightBank& weights, const Tensor4f& input,
                            ConvAlgo algo) {
  Tensor4f act = input;
  std::size_t conv_idx = 0;
  std::size_t fc_idx = 0;
  for (const auto& l : layers) {
    switch (l.kind) {
      case LayerKind::kConv: {
        if (conv_idx >= weights.conv_kernels.size()) {
          throw std::invalid_argument("forward: missing conv weights");
        }
        act = run_conv(algo, act, weights.conv_kernels[conv_idx++], l.conv.pad);
        relu_inplace(act);
        break;
      }
      case LayerKind::kMaxPool:
        act = maxpool2x2(act);
        break;
      case LayerKind::kFullyConnected: {
        if (fc_idx >= weights.fc_weights.size()) {
          throw std::invalid_argument("forward: missing fc weights");
        }
        act = fully_connected(act, weights.fc_weights[fc_idx],
                              weights.fc_bias[fc_idx], l.fc_out);
        ++fc_idx;
        if (fc_idx < weights.fc_weights.size()) relu_inplace(act);
        break;
      }
    }
  }
  return act;
}

}  // namespace

Tensor4f forward(const std::vector<LayerSpec>& layers,
                 const WeightBank& weights, const Tensor4f& input,
                 ConvAlgo algo) {
  const auto& is = input.shape();
  // Batch-parallel: every layer treats images independently, so running a
  // contiguous sub-batch through the stack alone reproduces the batched
  // result bit-for-bit. Splitting into per-thread sub-batches (not single
  // images) keeps per-call kernel preprocessing — FFT kernel transforms,
  // Winograd TransformedKernels — to at most thread-count repeats.
  if (is.n <= 1) return forward_sequential(layers, weights, input, algo);

  const std::size_t image_volume = is.c * is.h * is.w;
  std::vector<Tensor4f> per_chunk(is.n);
  std::vector<std::size_t> chunk_first(is.n, 0);
  runtime::parallel_for(is.n, [&](std::size_t begin, std::size_t end) {
    Tensor4f sub(end - begin, is.c, is.h, is.w);
    const auto src =
        input.flat().subspan(begin * image_volume, sub.size());
    std::copy(src.begin(), src.end(), sub.flat().begin());
    per_chunk[begin] = forward_sequential(layers, weights, sub, algo);
    chunk_first[begin] = 1;
  });

  // Chunk results are keyed by their first image index; stitch in order.
  const Tensor4f* first = nullptr;
  for (std::size_t i = 0; i < is.n && !first; ++i) {
    if (chunk_first[i]) first = &per_chunk[i];
  }
  const auto& os = first->shape();
  Tensor4f out(is.n, os.c, os.h, os.w);
  const std::size_t out_volume = os.c * os.h * os.w;
  for (std::size_t i = 0; i < is.n; ++i) {
    if (!chunk_first[i]) continue;
    const auto src = per_chunk[i].flat();
    auto dst = out.flat().subspan(i * out_volume, src.size());
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

std::vector<LayerSpec> vgg16_d_scaled(std::size_t scale,
                                      std::size_t channel_div) {
  if (scale == 0 || 224 % scale != 0) {
    throw std::invalid_argument("vgg16_d_scaled: scale must divide 224");
  }
  if (channel_div == 0) {
    throw std::invalid_argument("vgg16_d_scaled: channel_div must be > 0");
  }
  std::vector<LayerSpec> layers;
  std::size_t hw = 224 / scale;
  std::size_t prev_c = 3;
  for (const auto& group : vgg16_d().groups) {
    for (const auto& c : group.layers) {
      LayerSpec l;
      l.kind = LayerKind::kConv;
      l.conv = c;
      l.conv.h = hw;
      l.conv.w = hw;
      l.conv.c = prev_c;
      l.conv.k = std::max<std::size_t>(1, c.k / channel_div);
      prev_c = l.conv.k;
      layers.push_back(l);
    }
    if (hw >= 2) {
      LayerSpec pool;
      pool.kind = LayerKind::kMaxPool;
      layers.push_back(pool);
      hw /= 2;
    }
  }
  LayerSpec fc;
  fc.kind = LayerKind::kFullyConnected;
  fc.fc_in = prev_c * hw * hw;
  fc.fc_out = 10;
  layers.push_back(fc);
  return layers;
}

}  // namespace wino::nn
