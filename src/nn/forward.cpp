#include "nn/forward.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "common/random.hpp"
#include "conv/fft.hpp"
#include "conv/im2col.hpp"
#include "conv/spatial.hpp"
#include "nn/plan.hpp"
#include "quant/int8.hpp"
#include "runtime/thread_pool.hpp"
#include "winograd/kernels.hpp"

namespace wino::nn {

using tensor::Tensor4f;

int winograd_m(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kWinograd2:
      return 2;
    case ConvAlgo::kWinograd3:
      return 3;
    case ConvAlgo::kWinograd4:
      return 4;
    default:
      return 0;
  }
}

bool is_int8(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kInt8Im2col:
    case ConvAlgo::kInt8Winograd2:
    case ConvAlgo::kInt8Winograd4:
      return true;
    default:
      return false;
  }
}

int int8_winograd_m(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kInt8Winograd2:
      return 2;
    case ConvAlgo::kInt8Winograd4:
      return 4;
    default:
      return 0;
  }
}

namespace {

/// One cached per-layer Winograd prep: the compiled F(m x m, r x r)
/// transformer plus the transformed kernel bank V = G g G^T for every
/// (k, c). Immutable after construction, shared read-only across threads.
struct CachedTransforms {
  winograd::TileTransformer xf;
  winograd::TransformedKernels tk;

  CachedTransforms(int m, const Tensor4f& kernels)
      : xf(winograd::transforms(m, static_cast<int>(kernels.shape().h))),
        tk(xf, kernels) {}
};

struct TransformKey {
  std::uint64_t version;
  std::size_t layer;
  int m;
  std::size_t r;

  friend bool operator==(const TransformKey&, const TransformKey&) = default;
};

struct TransformKeyHash {
  std::size_t operator()(const TransformKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(k.version);
    h = h * 1315423911u ^ std::hash<std::size_t>{}(k.layer);
    h = h * 1315423911u ^ std::hash<int>{}(k.m);
    return h * 1315423911u ^ std::hash<std::size_t>{}(k.r);
  }
};

/// Process-wide cache of filter transforms keyed by (weights version,
/// layer, m, r). Serving workloads call forward() many times over frozen
/// weights; without this every call re-transforms every filter of every
/// layer, per sub-batch. Bounded FIFO so abandoned weight versions age
/// out.
class TransformCache {
 public:
  std::shared_ptr<const CachedTransforms> get(const TransformKey& key,
                                              const Tensor4f& kernels) {
    std::lock_guard lock(mutex_);
    if (auto it = map_.find(key); it != map_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    auto entry = std::make_shared<const CachedTransforms>(key.m, kernels);
    map_.emplace(key, entry);
    order_.push_back(key);
    while (order_.size() > kMaxEntries) {
      map_.erase(order_.front());
      order_.pop_front();
    }
    return entry;
  }

  TransformCacheStats stats() {
    std::lock_guard lock(mutex_);
    return {hits_, misses_, map_.size()};
  }

  void clear() {
    std::lock_guard lock(mutex_);
    map_.clear();
    order_.clear();
    hits_ = misses_ = 0;
  }

 private:
  // Generous for one serving model (VGG-16 has 13 conv layers) while
  // bounding memory when weight versions churn.
  static constexpr std::size_t kMaxEntries = 256;

  std::mutex mutex_;
  std::unordered_map<TransformKey, std::shared_ptr<const CachedTransforms>,
                     TransformKeyHash>
      map_;
  std::deque<TransformKey> order_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

TransformCache& transform_cache() {
  static TransformCache cache;
  return cache;
}

/// One cached per-layer quantized kernel prep: the spatial-domain int8
/// bank (m == 0, the im2col form) or the transform-domain int8 bank plus
/// its transformer (m > 0). Immutable after construction, shared
/// read-only across threads — the quantized sibling of CachedTransforms.
struct CachedQuantKernels {
  // Exactly one of {filter} / {xf, wino} is engaged, by key.m.
  std::unique_ptr<const quant::QuantizedFilter> filter;
  std::unique_ptr<const winograd::TileTransformer> xf;
  std::unique_ptr<const quant::QuantizedWinogradKernels> wino;

  CachedQuantKernels(int m, const Tensor4f& kernels) {
    if (m == 0) {
      filter = std::make_unique<const quant::QuantizedFilter>(
          quant::quantize_filters(kernels));
    } else {
      xf = std::make_unique<const winograd::TileTransformer>(
          winograd::transforms(m, static_cast<int>(kernels.shape().h)));
      wino = std::make_unique<const quant::QuantizedWinogradKernels>(
          quant::quantize_winograd_kernels(*xf, kernels));
    }
  }
};

/// Process-wide cache of quantized kernel banks, keyed like the fp32
/// transform cache: (weights version, layer, m-or-0, r). Weight
/// quantization happens once per frozen model, not per forward call —
/// the "per-channel weight scales computed at model registration"
/// contract (prewarm_transforms warms this at add_model time).
class QuantKernelCache {
 public:
  std::shared_ptr<const CachedQuantKernels> get(const TransformKey& key,
                                                const Tensor4f& kernels) {
    std::lock_guard lock(mutex_);
    if (auto it = map_.find(key); it != map_.end()) return it->second;
    auto entry = std::make_shared<const CachedQuantKernels>(key.m, kernels);
    map_.emplace(key, entry);
    order_.push_back(key);
    while (order_.size() > kMaxEntries) {
      map_.erase(order_.front());
      order_.pop_front();
    }
    return entry;
  }

  void clear() {
    std::lock_guard lock(mutex_);
    map_.clear();
    order_.clear();
  }

 private:
  static constexpr std::size_t kMaxEntries = 256;

  std::mutex mutex_;
  std::unordered_map<TransformKey, std::shared_ptr<const CachedQuantKernels>,
                     TransformKeyHash>
      map_;
  std::deque<TransformKey> order_;
};

QuantKernelCache& quant_cache() {
  static QuantKernelCache cache;
  return cache;
}

}  // namespace

std::uint64_t next_weight_version() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

TransformCacheStats transform_cache_stats() {
  return transform_cache().stats();
}

void clear_transform_cache() {
  transform_cache().clear();
  quant_cache().clear();
}

std::string to_string(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kSpatial:
      return "spatial";
    case ConvAlgo::kIm2col:
      return "im2col";
    case ConvAlgo::kFft:
      return "fft";
    case ConvAlgo::kWinograd2:
      return "winograd-F(2x2,3x3)";
    case ConvAlgo::kWinograd3:
      return "winograd-F(3x3,3x3)";
    case ConvAlgo::kWinograd4:
      return "winograd-F(4x4,3x3)";
    case ConvAlgo::kInt8Im2col:
      return "int8-im2col";
    case ConvAlgo::kInt8Winograd2:
      return "int8-winograd-F(2x2,3x3)";
    case ConvAlgo::kInt8Winograd4:
      return "int8-winograd-F(4x4,3x3)";
  }
  return "unknown";
}

ConvAlgo parse_conv_algo(const std::string& name) {
  for (const ConvAlgo algo :
       {ConvAlgo::kSpatial, ConvAlgo::kIm2col, ConvAlgo::kFft,
        ConvAlgo::kWinograd2, ConvAlgo::kWinograd3, ConvAlgo::kWinograd4,
        ConvAlgo::kInt8Im2col, ConvAlgo::kInt8Winograd2,
        ConvAlgo::kInt8Winograd4}) {
    if (name == to_string(algo)) return algo;
  }
  if (name == "winograd2" || name == "w2") return ConvAlgo::kWinograd2;
  if (name == "winograd3" || name == "w3") return ConvAlgo::kWinograd3;
  if (name == "winograd4" || name == "w4") return ConvAlgo::kWinograd4;
  if (name == "int8" || name == "i8") return ConvAlgo::kInt8Im2col;
  if (name == "int8-winograd2" || name == "i8w2") {
    return ConvAlgo::kInt8Winograd2;
  }
  if (name == "int8-winograd4" || name == "i8w4") {
    return ConvAlgo::kInt8Winograd4;
  }
  throw std::invalid_argument(
      "parse_conv_algo: unknown algorithm '" + name +
      "' (expected spatial, im2col, fft, winograd2/3/4, int8, or "
      "int8-winograd2/4)");
}

Tensor4f run_conv(ConvAlgo algo, const Tensor4f& input,
                  const Tensor4f& kernels, int pad, float act_scale) {
  const conv::SpatialConvOptions sopt{.pad = pad, .stride = 1};
  winograd::WinogradConvOptions wopt;
  wopt.pad = pad;
  switch (algo) {
    case ConvAlgo::kSpatial:
      return conv::conv2d_spatial(input, kernels, sopt);
    case ConvAlgo::kIm2col:
      return conv::conv2d_im2col(input, kernels, sopt);
    case ConvAlgo::kFft:
      return conv::conv2d_fft(input, kernels, sopt);
    case ConvAlgo::kWinograd2:
      return winograd::conv2d_winograd(input, kernels, 2, wopt);
    case ConvAlgo::kWinograd3:
      return winograd::conv2d_winograd(input, kernels, 3, wopt);
    case ConvAlgo::kWinograd4:
      return winograd::conv2d_winograd(input, kernels, 4, wopt);
    case ConvAlgo::kInt8Im2col:
      return quant::conv2d_im2col_int8(input, kernels, pad, act_scale);
    case ConvAlgo::kInt8Winograd2:
      return quant::conv2d_winograd_int8(input, kernels, 2, pad, act_scale);
    case ConvAlgo::kInt8Winograd4:
      return quant::conv2d_winograd_int8(input, kernels, 4, pad, act_scale);
  }
  throw std::invalid_argument("run_conv: unknown algorithm");
}

Tensor4f run_conv(ConvAlgo algo, const Tensor4f& input,
                  const Tensor4f& kernels, int pad) {
  return run_conv(algo, input, kernels, pad, 0.0F);
}

void relu_inplace(Tensor4f& t) {
  for (float& v : t.flat()) v = v > 0.0F ? v : 0.0F;
}

Tensor4f maxpool2x2(const Tensor4f& input) {
  const auto& s = input.shape();
  if (s.h < 2 || s.w < 2) {
    throw std::invalid_argument("maxpool2x2: input too small");
  }
  Tensor4f out(s.n, s.c, s.h / 2, s.w / 2);
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t c = 0; c < s.c; ++c) {
      for (std::size_t y = 0; y + 1 < s.h; y += 2) {
        for (std::size_t x = 0; x + 1 < s.w; x += 2) {
          const float m0 = std::max(input(n, c, y, x), input(n, c, y, x + 1));
          const float m1 =
              std::max(input(n, c, y + 1, x), input(n, c, y + 1, x + 1));
          out(n, c, y / 2, x / 2) = std::max(m0, m1);
        }
      }
    }
  }
  return out;
}

Tensor4f fully_connected(const Tensor4f& input,
                         const std::vector<float>& weights,
                         const std::vector<float>& bias,
                         std::size_t out_features) {
  const auto& s = input.shape();
  const std::size_t in_features = s.c * s.h * s.w;
  if (weights.size() != in_features * out_features ||
      bias.size() != out_features) {
    throw std::invalid_argument("fully_connected: weight size mismatch");
  }
  Tensor4f out(s.n, out_features, 1, 1);
  for (std::size_t n = 0; n < s.n; ++n) {
    const std::span<const float> x =
        input.flat().subspan(n * in_features, in_features);
    for (std::size_t o = 0; o < out_features; ++o) {
      float acc = bias[o];
      const float* wrow = &weights[o * in_features];
      for (std::size_t i = 0; i < in_features; ++i) acc += wrow[i] * x[i];
      out(n, o, 0, 0) = acc;
    }
  }
  return out;
}

WeightBank random_weights(const std::vector<LayerSpec>& layers,
                          std::uint64_t seed) {
  common::Rng rng(seed);
  WeightBank bank;
  for (const auto& l : layers) {
    if (l.kind == LayerKind::kConv) {
      const auto& c = l.conv;
      Tensor4f k(c.k, c.c, c.r, c.r);
      const float stddev =
          std::sqrt(2.0F / static_cast<float>(c.c * c.r * c.r));
      rng.fill_normal(k.flat(), 0.0F, stddev);
      bank.conv_kernels.push_back(std::move(k));
    } else if (l.kind == LayerKind::kFullyConnected) {
      std::vector<float> w(l.fc_in * l.fc_out);
      std::vector<float> b(l.fc_out);
      const float stddev = std::sqrt(2.0F / static_cast<float>(l.fc_in));
      rng.fill_normal(w, 0.0F, stddev);
      rng.fill_uniform(b, -0.1F, 0.1F);
      bank.fc_weights.push_back(std::move(w));
      bank.fc_bias.push_back(std::move(b));
    }
  }
  return bank;
}

namespace {

/// Legacy data flow (LayoutPolicy::kAlwaysNCHW): every layer boundary
/// materialises the NCHW tensor and ReLU runs as a separate pass. Kept
/// verbatim as the reference the layout-planned path is pinned
/// bit-identical against.
Tensor4f forward_sequential_nchw(const std::vector<LayerSpec>& layers,
                                 const WeightBank& weights,
                                 const Tensor4f& input, ConvAlgo algo) {
  Tensor4f act = input;
  std::size_t conv_idx = 0;
  std::size_t fc_idx = 0;
  for (const auto& l : layers) {
    switch (l.kind) {
      case LayerKind::kConv: {
        if (conv_idx >= weights.conv_kernels.size()) {
          throw std::invalid_argument("forward: missing conv weights");
        }
        const Tensor4f& kern = weights.conv_kernels[conv_idx];
        if (const int m = winograd_m(algo); m > 0) {
          // Serving path: filter transforms come from the cross-call
          // cache instead of being recomputed per image and per call.
          const auto entry = transform_cache().get(
              {weights.version, conv_idx, m, kern.shape().h}, kern);
          winograd::WinogradConvOptions wopt;
          wopt.pad = l.conv.pad;
          act = winograd::conv2d_winograd(act, entry->tk, entry->xf, wopt);
        } else {
          act = run_conv(algo, act, kern, l.conv.pad);
        }
        ++conv_idx;
        relu_inplace(act);
        break;
      }
      case LayerKind::kMaxPool:
        act = maxpool2x2(act);
        break;
      case LayerKind::kFullyConnected: {
        if (fc_idx >= weights.fc_weights.size()) {
          throw std::invalid_argument("forward: missing fc weights");
        }
        act = fully_connected(act, weights.fc_weights[fc_idx],
                              weights.fc_bias[fc_idx], l.fc_out);
        ++fc_idx;
        if (fc_idx < weights.fc_weights.size()) relu_inplace(act);
        break;
      }
    }
  }
  return act;
}

/// The calling thread's execution arena. Pool worker threads and serve
/// worker threads each get their own; slabs grow monotonically and live
/// for the thread's lifetime, so the steady state allocates nothing.
Workspace& thread_workspace() {
  static thread_local Workspace ws;
  return ws;
}

/// Materialise the current activation as an owning NCHW tensor — the
/// bridge into the allocating fallback kernels (spatial/FFT convs, and
/// defensively any layout the planned kernels do not cover).
Tensor4f materialize_nchw(const tensor::Layout& cur_layout,
                          std::span<const float> cur) {
  if (cur_layout.kind == tensor::LayoutKind::kNCHW) {
    Tensor4f t(cur_layout.shape);
    std::copy(cur.begin(), cur.end(), t.flat().begin());
    return t;
  }
  tensor::PackedActivation packed{
      cur_layout, std::vector<float>(cur.begin(), cur.end())};
  return tensor::unpack(packed);
}

/// Store an owning NCHW tensor into the planned output buffer, packing
/// first when the plan wants tile form (defensive: the layout pass only
/// plans NCHW outputs for fallback layers).
void store_activation(const Tensor4f& t, const tensor::Layout& ol,
                      std::span<float> obuf) {
  if (!(t.shape() == ol.shape)) {
    throw std::invalid_argument("forward: plan layer geometry mismatch");
  }
  if (ol.kind == tensor::LayoutKind::kNCHW) {
    const auto src = t.flat();
    std::copy(src.begin(), src.end(), obuf.begin());
    return;
  }
  const tensor::PackedActivation packed = tensor::pack(t, ol);
  std::copy(packed.data.begin(), packed.data.end(), obuf.begin());
}

/// Plan-driven data flow over one contiguous sub-batch, executing against
/// a prepared per-thread Workspace: each layer's algorithm, handoff layout
/// and ReLU fusion come from its LayerPlan, activations and scratch live
/// at the MemoryPlan's slab offsets, and the final layer writes the
/// caller's output span directly. Winograd conv layers scatter straight
/// into the planned output layout (the consumer's gather accepts any
/// producer tile edge, so mixed-m boundaries need no repack); the tiled
/// maxpool pools directly on whatever form arrives; im2col layers lower
/// into a slab-carved panel and GEMM straight into the output activation;
/// spatial/FFT convs keep their allocating kernels behind a materialise/
/// store bridge. Bit-identical to forward_reference (the per-layer
/// always-NCHW composition): conversions are value-preserving
/// permutations and all arithmetic runs in the same order on the same
/// values (pinned by tests/nn_forward_test.cpp and tests/nn_plan_test.cpp).
void forward_plan_ws(const ExecutionPlan& plan, const MemoryPlan& mp,
                     const WeightBank& weights, std::size_t images,
                     std::span<const float> in, std::span<float> out,
                     Workspace& ws) {
  using tensor::Layout;
  using tensor::LayoutKind;
  const std::vector<LayerSpec>& layers = plan.layers;
  const std::size_t last = layers.size() - 1;
  std::span<const float> cur = in;
  Layout cur_layout = Layout::nchw(
      {images, mp.input_shape.c, mp.input_shape.h, mp.input_shape.w});
  std::size_t conv_idx = 0;
  std::size_t fc_idx = 0;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const auto& l = layers[li];
    const LayerPlan& step = plan.steps[li];
    Layout ol = mp.act_layout[li];
    ol.shape.n = images;  // every layout's volume scales linearly in n
    const std::span<float> obuf =
        li == last ? out
                   : ws.span_of<float>(
                         static_cast<std::size_t>(mp.step_activation[li]),
                         ol.volume());
    switch (l.kind) {
      case LayerKind::kConv: {
        if (conv_idx >= weights.conv_kernels.size()) {
          throw std::invalid_argument("forward: missing conv weights");
        }
        const Tensor4f& kern = weights.conv_kernels[conv_idx];
        const int m = winograd_m(step.algo);
        if (m > 0) {
          const auto entry = transform_cache().get(
              {weights.version, conv_idx, m, kern.shape().h}, kern);
          winograd::WinogradConvOptions wopt;
          wopt.pad = l.conv.pad;
          ByteCarver carver(ws.buffer_bytes(
              static_cast<std::size_t>(mp.step_scratch[li])));
          const std::size_t blk = li < mp.step_block_columns.size()
                                      ? mp.step_block_columns[li]
                                      : 1;
          const winograd::WinogradScratch scratch = carve_winograd_scratch(
              carver, cur_layout.shape.c,
              static_cast<std::size_t>(entry->xf.tile()),
              static_cast<std::size_t>(m), blk);
          winograd::conv2d_winograd_layout_into(cur_layout, cur, entry->tk,
                                                entry->xf, wopt, ol, obuf,
                                                step.fused_relu, scratch);
          if (!step.fused_relu) {
            // Same values as relu_inplace on the NCHW tensor: the packed
            // buffer is a permutation (plus zero ragged fill, fixed by
            // max(0, .)).
            for (float& v : obuf) v = v > 0.0F ? v : 0.0F;
          }
        } else if (step.algo == ConvAlgo::kIm2col &&
                   cur_layout.kind == LayoutKind::kNCHW &&
                   ol.kind == LayoutKind::kNCHW) {
          // Lower one image at a time into the slab-carved panel — one
          // panel alive per walk, sized once per layer — and GEMM each
          // image's rows directly into its output slice: the legacy
          // scatter out(img, k, i / out_w, i % out_w) = result[k * cols
          // + i] is the identity copy on flat NCHW storage, so writing C
          // in place is the same values at the same offsets (sgemm with
          // beta = 0 never reads C, making dirty slab memory safe).
          const auto& shp = cur_layout.shape;
          const conv::SpatialConvOptions sopt{.pad = l.conv.pad,
                                              .stride = 1};
          const std::size_t r = kern.shape().h;
          const Layout panel_layout = Layout::im2col_panel(
              {1, shp.c, shp.h, shp.w}, r, sopt.eff_pad_h(),
              sopt.eff_pad_w(), sopt.stride);
          ByteCarver carver(ws.buffer_bytes(
              static_cast<std::size_t>(mp.step_scratch[li])));
          const std::span<float> panel =
              carver.take<float>(panel_layout.volume());
          const tensor::Tensor4fView view(shp, cur);
          const std::size_t kcount = kern.shape().n;
          const std::size_t inner = shp.c * r * r;
          const std::size_t cols =
              panel_layout.panel_out_h() * panel_layout.panel_out_w();
          for (std::size_t img = 0; img < images; ++img) {
            // conv::im2col and tensor::pack share one lowering kernel
            // (tensor::im2col_lower_row), so this per-image fill is the
            // panel pack, minus the per-image input slicing.
            conv::im2col(view, img, r, sopt.eff_pad_h(), sopt.eff_pad_w(),
                         sopt.stride, panel);
            conv::gemm(kern.flat(), panel,
                       obuf.subspan(img * kcount * cols, kcount * cols),
                       kcount, inner, cols);
          }
          for (float& v : obuf) v = v > 0.0F ? v : 0.0F;
        } else if (is_int8(step.algo) &&
                   cur_layout.kind == LayoutKind::kNCHW &&
                   ol.kind == LayoutKind::kNCHW) {
          // Quantized fast path: the int8 banks come from the cross-call
          // quant cache (weights quantized once per frozen model), the
          // int8 cores read the slab-backed NCHW activation through a
          // view and dequantize straight into the output activation with
          // ReLU fused into the store — max(0, x) on the same value the
          // unfused composition would produce. The activation scale is
          // the plan's static calibration scale (or per-image when the
          // plan carries none), so batching and threading cannot perturb
          // results.
          const auto entry = quant_cache().get(
              {weights.version, conv_idx, int8_winograd_m(step.algo),
               kern.shape().h},
              kern);
          ByteCarver carver(ws.buffer_bytes(
              static_cast<std::size_t>(mp.step_scratch[li])));
          const tensor::Tensor4fView view(cur_layout.shape, cur);
          if (step.algo == ConvAlgo::kInt8Im2col) {
            const quant::QuantIm2colScratch scratch =
                carve_quant_im2col_scratch(carver, entry->filter->inner(),
                                           ol.shape.h * ol.shape.w,
                                           entry->filter->kernels);
            quant::conv2d_im2col_int8_into(view, *entry->filter, l.conv.pad,
                                           step.act_scale, /*fuse_relu=*/true,
                                           obuf, scratch);
          } else {
            const std::size_t blk = li < mp.step_block_columns.size()
                                        ? mp.step_block_columns[li]
                                        : 1;
            const quant::QuantWinogradScratch scratch =
                carve_quant_winograd_scratch(
                    carver, cur_layout.shape.c,
                    static_cast<std::size_t>(entry->xf->tile()),
                    static_cast<std::size_t>(entry->xf->m()), blk);
            quant::conv2d_winograd_int8_into(view, *entry->wino, *entry->xf,
                                             l.conv.pad, step.act_scale,
                                             /*fuse_relu=*/true, obuf,
                                             scratch);
          }
        } else {
          const Tensor4f in_t = materialize_nchw(cur_layout, cur);
          Tensor4f out_t =
              run_conv(step.algo, in_t, kern, l.conv.pad, step.act_scale);
          relu_inplace(out_t);
          store_activation(out_t, ol, obuf);
        }
        ++conv_idx;
        break;
      }
      case LayerKind::kMaxPool: {
        // The tiled maxpool reads NCHW or any tile edge and writes the
        // planned output form directly, so conv -> pool -> conv chains
        // stay in tile form end to end.
        PoolScratch ps;
        if (mp.step_scratch[li] >= 0) {
          ByteCarver carver(ws.buffer_bytes(
              static_cast<std::size_t>(mp.step_scratch[li])));
          ps = carve_pool_scratch(carver, cur_layout, ol);
        }
        maxpool2x2_packed_into(cur_layout, cur, ol, obuf, ps.in_col,
                               ps.out_col);
        break;
      }
      case LayerKind::kFullyConnected: {
        if (fc_idx >= weights.fc_weights.size()) {
          throw std::invalid_argument("forward: missing fc weights");
        }
        if (cur_layout.kind != LayoutKind::kNCHW) {
          // Defensive: the layout pass always plans NCHW into FC.
          const Tensor4f in_t = materialize_nchw(cur_layout, cur);
          Tensor4f out_t =
              fully_connected(in_t, weights.fc_weights[fc_idx],
                              weights.fc_bias[fc_idx], l.fc_out);
          ++fc_idx;
          if (fc_idx < weights.fc_weights.size()) relu_inplace(out_t);
          store_activation(out_t, ol, obuf);
          break;
        }
        // fully_connected's loop verbatim, reading/writing flat spans.
        const auto& s = cur_layout.shape;
        const std::size_t in_features = s.c * s.h * s.w;
        const std::vector<float>& wts = weights.fc_weights[fc_idx];
        const std::vector<float>& bias = weights.fc_bias[fc_idx];
        if (wts.size() != in_features * l.fc_out ||
            bias.size() != l.fc_out) {
          throw std::invalid_argument(
              "fully_connected: weight size mismatch");
        }
        for (std::size_t n = 0; n < images; ++n) {
          const std::span<const float> x =
              cur.subspan(n * in_features, in_features);
          float* orow = obuf.data() + n * l.fc_out;
          for (std::size_t o = 0; o < l.fc_out; ++o) {
            float acc = bias[o];
            const float* wrow = &wts[o * in_features];
            for (std::size_t i = 0; i < in_features; ++i) {
              acc += wrow[i] * x[i];
            }
            orow[o] = acc;
          }
        }
        ++fc_idx;
        if (fc_idx < weights.fc_weights.size()) {
          for (float& v : obuf) v = v > 0.0F ? v : 0.0F;
        }
        break;
      }
    }
    cur = obuf;
    cur_layout = ol;
  }
}

/// Populate the transform cache for every conv layer before the batch
/// fans out, so worker chunks never serialise on a cold cache (the cache
/// mutex would make them take turns building the same entry's siblings).
void prewarm_transforms(const std::vector<LayerSpec>& layers,
                        const WeightBank& weights, ConvAlgo algo) {
  const int m = winograd_m(algo);
  if (m == 0) return;
  std::size_t conv_idx = 0;
  for (const auto& l : layers) {
    if (l.kind != LayerKind::kConv) continue;
    if (conv_idx >= weights.conv_kernels.size()) break;
    const Tensor4f& kern = weights.conv_kernels[conv_idx];
    transform_cache().get({weights.version, conv_idx, m, kern.shape().h},
                          kern);
    ++conv_idx;
  }
}

/// Plan-aware prewarm: the cache key already carries a per-layer m, so a
/// mixed-m plan simply warms each conv layer's own (layer, m, r) entry.
/// Quantized layers warm the int8 bank cache instead — this is where
/// "per-channel weight scales computed at model registration" happens
/// (serve::InferenceServer::add_model calls prewarm_workspaces, which
/// lands here before the first request).
void prewarm_transforms(const ExecutionPlan& plan, const WeightBank& weights) {
  std::size_t conv_idx = 0;
  for (std::size_t li = 0; li < plan.layers.size(); ++li) {
    if (plan.layers[li].kind != LayerKind::kConv) continue;
    if (conv_idx >= weights.conv_kernels.size()) break;
    const Tensor4f& kern = weights.conv_kernels[conv_idx];
    if (const int m = winograd_m(plan.steps[li].algo); m > 0) {
      transform_cache().get({weights.version, conv_idx, m, kern.shape().h},
                            kern);
    } else if (is_int8(plan.steps[li].algo)) {
      quant_cache().get({weights.version, conv_idx,
                         int8_winograd_m(plan.steps[li].algo),
                         kern.shape().h},
                        kern);
    }
    ++conv_idx;
  }
}

// Roughly half a typical L2 slice, leaving room for kernels + scratch:
// the budget the transform-domain working set of a worker chunk must fit.
// One definition shared with the fused tile-block sizing in
// winograd/kernels.hpp so the two locality decisions cannot drift apart.
constexpr std::size_t kSubbatchCacheBudget =
    winograd::kFusedCacheBudgetBytes;

/// Per-image transform-domain working set of one Winograd conv layer:
/// the (m+r-1)^2 / m^2 expansion over its input + output activations.
std::size_t winograd_layer_bytes(const ConvLayerSpec& l, int m) {
  const auto mu = static_cast<std::size_t>(m);
  const std::size_t alpha = mu + l.r - 1;
  return l.h * l.w * (l.c + l.k) * sizeof(float) * (alpha * alpha) /
         (mu * mu);
}

/// Images a worker chunk marches through the stack together when filter
/// transforms come from the cross-call cache. Larger sub-batches feed the
/// Winograd coordinate GEMMs more rows (packing amortised over the batch),
/// but multiply the transform-domain working set — (m+r-1)²/m² times the
/// fattest layer's activations per image — so the size is capped to keep
/// that set cache-resident. Chunk composition never changes results
/// (image independence; pinned by tests/serve_test.cpp).
std::size_t cached_subbatch(const std::vector<LayerSpec>& layers, int m) {
  std::size_t worst_bytes = 1;
  for (const auto& l : layers) {
    if (l.kind != LayerKind::kConv) continue;
    worst_bytes = std::max(worst_bytes, winograd_layer_bytes(l.conv, m));
  }
  return std::max<std::size_t>(1, kSubbatchCacheBudget / worst_bytes);
}

/// cached_subbatch generalised to a mixed-m plan: each Winograd layer's
/// transform-domain working set is sized with that layer's own m. Plans
/// with no Winograd layer have no cross-call cached transforms, so the
/// whole range stays one chunk per thread — `batch` (the full range)
/// comes back rather than an unbounded sentinel, keeping the caller's
/// `i += cap` chunk walk overflow-free.
///
/// Known trade-off: in a plan mixing Winograd with an FFT layer, the
/// Winograd cache budget wins and the FFT layer re-derives its per-call
/// kernel FFTs once per sub-batch instead of the legacy once per thread
/// chunk. Deliberate: the measured planner picks kFft only where FFT
/// actually wins the layer (rare at r = 3), while every Winograd layer
/// in the plan benefits from cache-resident chunks on every batch.
/// Cross-call FFT kernel caching would dissolve the tension if such
/// plans become common.
std::size_t plan_subbatch(const ExecutionPlan& plan, std::size_t batch) {
  std::size_t worst_bytes = 0;
  for (std::size_t li = 0; li < plan.layers.size(); ++li) {
    if (plan.layers[li].kind != LayerKind::kConv) continue;
    int m = winograd_m(plan.steps[li].algo);
    if (m == 0) m = int8_winograd_m(plan.steps[li].algo);
    if (m == 0) continue;
    worst_bytes =
        std::max(worst_bytes, winograd_layer_bytes(plan.layers[li].conv, m));
  }
  if (worst_bytes == 0) return batch;
  return std::max<std::size_t>(1, kSubbatchCacheBudget / worst_bytes);
}

/// Output shape of the layer stack for an input shape — the legacy
/// batched path preallocates the full batch output from this and workers
/// write their chunks straight into it. Throws the kernels' own
/// invalid_argument messages when the geometry is impossible, before any
/// work fans out.
tensor::Shape4 walk_output_shape(const std::vector<LayerSpec>& layers,
                                 tensor::Shape4 s) {
  for (const auto& l : layers) {
    switch (l.kind) {
      case LayerKind::kConv: {
        const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(s.h) +
                                  2 * l.conv.pad -
                                  static_cast<std::ptrdiff_t>(l.conv.r) + 1;
        const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(s.w) +
                                  2 * l.conv.pad -
                                  static_cast<std::ptrdiff_t>(l.conv.r) + 1;
        if (oh <= 0 || ow <= 0) {
          throw std::invalid_argument("forward: conv output would be empty");
        }
        s = {s.n, l.conv.k, static_cast<std::size_t>(oh),
             static_cast<std::size_t>(ow)};
        break;
      }
      case LayerKind::kMaxPool:
        if (s.h < 2 || s.w < 2) {
          throw std::invalid_argument("maxpool2x2: input too small");
        }
        s = {s.n, s.c, s.h / 2, s.w / 2};
        break;
      case LayerKind::kFullyConnected:
        s = {s.n, l.fc_out, 1, 1};
        break;
    }
  }
  return s;
}

}  // namespace

std::string to_string(LayoutPolicy policy) {
  switch (policy) {
    case LayoutPolicy::kAuto:
      return "auto-layout";
    case LayoutPolicy::kAlwaysNCHW:
      return "always-nchw";
  }
  return "unknown";
}

LayoutPlan plan_layouts(const std::vector<LayerSpec>& layers,
                        ConvAlgo algo) {
  LayoutPlan plan;
  plan.output_kind.assign(layers.size(), tensor::LayoutKind::kNCHW);
  plan.boundaries = layers.empty() ? 0 : layers.size() - 1;
  const int m = winograd_m(algo);
  if (m == 0) return plan;  // only the Winograd backends have a tiled form
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    // Elision rule: a Winograd conv feeding another conv layer of the same
    // algo (same m by construction — the algo is per-call) keeps its
    // output in tile form; the consumer's gather reads tiles directly.
    // Maxpool / FC / the final output force NCHW, so those boundaries
    // stay at the lattice top.
    if (layers[i].kind != LayerKind::kConv) continue;
    if (layers[i + 1].kind != LayerKind::kConv) continue;
    plan.output_kind[i] = tensor::LayoutKind::kWinogradTile;
    ++plan.elided;
    const auto& c = layers[i].conv;
    plan.nchw_floats_elided +=
        static_cast<std::uint64_t>(c.k) * c.out_h() * c.out_w();
  }
  return plan;
}

std::size_t plan_batch_ceiling(const ExecutionPlan& plan) {
  // plan_subbatch with batch = 0: plans with no Winograd layer return the
  // 0 sentinel (no cache-derived ceiling — their working set does not
  // inflate by (m+r-1)^2/m^2), everything else returns the largest image
  // count whose transform-domain working set fits the cache budget.
  return plan_subbatch(plan, 0);
}

void forward(const ExecutionPlan& plan, const WeightBank& weights,
             const Tensor4f& input, Tensor4f& out) {
  if (plan.steps.size() != plan.layers.size()) {
    throw std::invalid_argument(
        "forward: plan steps do not match its layer stack");
  }
  const auto& is = input.shape();
  if (plan.layers.empty()) {
    out = input;
    return;
  }
  // Use the plan's memory plan when it matches the live per-image input;
  // rebuild locally otherwise (fc-first models accept any factorisation
  // of fc_in, pool-first stacks have no plan-time shape at all).
  MemoryPlan local;
  const MemoryPlan* mp = &plan.memory;
  const tensor::Shape4 per_img{1, is.c, is.h, is.w};
  if (mp->empty() || !(mp->input_shape == per_img)) {
    local = build_memory_plan(plan, per_img);
    mp = &local;
  }
  const auto& fl = mp->act_layout.back();
  const tensor::Shape4 os{is.n, fl.shape.c, fl.shape.h, fl.shape.w};
  if (!(out.shape() == os)) out = Tensor4f(os);
  if (is.n == 0) return;
  prewarm_transforms(plan, weights);
  const std::span<const float> in_flat = input.flat();
  const std::span<float> out_flat = out.flat();
  // Batch-parallel: every layer treats images independently, so running a
  // contiguous sub-batch through the stack alone reproduces the batched
  // result bit-for-bit. Winograd layers read their filter transforms from
  // the cross-call cache (prewarmed above), so chunks walk the batch in
  // cache-budgeted sub-batches (see plan_subbatch) — bit-identical either
  // way.
  if (is.n <= 1) {
    Workspace& ws = thread_workspace();
    ws.prepare(*mp, 1);
    forward_plan_ws(plan, *mp, weights, 1, in_flat, out_flat, ws);
    return;
  }
  const std::size_t cap = plan_subbatch(plan, is.n);
  const std::size_t ivol = is.c * is.h * is.w;
  const std::size_t ovol = os.c * os.h * os.w;
  runtime::parallel_for(is.n, [&](std::size_t begin, std::size_t end) {
    Workspace& ws = thread_workspace();
    for (std::size_t i = begin; i < end; i += cap) {
      const std::size_t count = std::min(cap, end - i);
      ws.prepare(*mp, count);
      forward_plan_ws(plan, *mp, weights, count,
                      in_flat.subspan(i * ivol, count * ivol),
                      out_flat.subspan(i * ovol, count * ovol), ws);
    }
  });
}

Tensor4f forward(const ExecutionPlan& plan, const WeightBank& weights,
                 const Tensor4f& input) {
  Tensor4f out;
  forward(plan, weights, input, out);
  return out;
}

void prewarm_workspaces(const ExecutionPlan& plan, const WeightBank& weights,
                        std::size_t max_images) {
  if (plan.steps.size() != plan.layers.size()) {
    throw std::invalid_argument(
        "forward: plan steps do not match its layer stack");
  }
  prewarm_transforms(plan, weights);
  if (plan.memory.empty()) return;
  const std::size_t imgs = std::max<std::size_t>(1, max_images);
  const std::size_t chunk = std::min(plan_subbatch(plan, imgs), imgs);
  // One chunk per pool participant (count == threads), so every worker
  // thread plus the caller sizes its own slab before the first request.
  // Serve worker threads warm on their first batch instead; see
  // docs/ARCHITECTURE.md.
  runtime::parallel_for(runtime::ThreadPool::global().threads(),
                        [&](std::size_t, std::size_t) {
                          thread_workspace().prepare(plan.memory, chunk);
                        });
}

std::size_t thread_workspace_bytes() {
  return thread_workspace().slab_bytes();
}

Tensor4f forward(const std::vector<LayerSpec>& layers,
                 const WeightBank& weights, const Tensor4f& input,
                 ConvAlgo algo, LayoutPolicy policy) {
  if (policy == LayoutPolicy::kAuto) {
    // The uniform-algo entry is a thin wrapper over the plan executor.
    return forward(uniform_plan(layers, algo), weights, input);
  }
  // Legacy reference flow: NCHW at every boundary, separate ReLU pass.
  // For algorithms with real per-call kernel preprocessing (FFT kernel
  // transforms) the split is per-thread sub-batches, keeping that prep to
  // at most thread-count repeats; Winograd chunks are cache-budgeted as in
  // the planned path.
  prewarm_transforms(layers, weights, algo);
  const auto& is = input.shape();
  if (is.n <= 1) {
    return forward_sequential_nchw(layers, weights, input, algo);
  }
  const int wino_m = winograd_m(algo);
  const std::size_t cap =
      wino_m > 0 ? cached_subbatch(layers, wino_m) : is.n;
  // Chunked fan-out into a preallocated batch output: each worker still
  // copies its sub-batch into a local owning tensor (the legacy kernels
  // take Tensor4f), but results land straight in the batch output instead
  // of every chunk staying alive until a final stitch pass.
  const tensor::Shape4 os = walk_output_shape(layers, is);
  Tensor4f out(os);
  const std::size_t ivol = is.c * is.h * is.w;
  const std::size_t ovol = os.c * os.h * os.w;
  const std::span<const float> in_flat = input.flat();
  const std::span<float> out_flat = out.flat();
  runtime::parallel_for(is.n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; i += cap) {
      const std::size_t count = std::min(cap, end - i);
      Tensor4f sub(count, is.c, is.h, is.w);
      const auto src = in_flat.subspan(i * ivol, count * ivol);
      std::copy(src.begin(), src.end(), sub.flat().begin());
      const Tensor4f res =
          forward_sequential_nchw(layers, weights, sub, algo);
      if (res.size() != count * ovol) {
        throw std::logic_error("forward: unexpected chunk output size");
      }
      const auto rsrc = res.flat();
      std::copy(rsrc.begin(), rsrc.end(),
                out_flat.begin() + static_cast<std::ptrdiff_t>(i * ovol));
    }
  });
  return out;
}

Tensor4f stack_images(const std::vector<const Tensor4f*>& images) {
  if (images.empty()) {
    throw std::invalid_argument("stack_images: no images");
  }
  for (const Tensor4f* img : images) {
    if (img == nullptr) {
      throw std::invalid_argument("stack_images: null image");
    }
  }
  std::size_t total = 0;
  const auto& first = images.front()->shape();
  for (const Tensor4f* img : images) {
    const auto& s = img->shape();
    if (s.c != first.c || s.h != first.h || s.w != first.w) {
      throw std::invalid_argument("stack_images: mismatched image shapes");
    }
    total += s.n;
  }
  Tensor4f batch(total, first.c, first.h, first.w);
  auto dst = batch.flat();
  std::size_t offset = 0;
  for (const Tensor4f* img : images) {
    const auto src = img->flat();
    std::copy(src.begin(), src.end(), dst.begin() + offset);
    offset += src.size();
  }
  return batch;
}

std::vector<Tensor4f> unstack_images(const Tensor4f& batch) {
  const auto& s = batch.shape();
  const std::size_t volume = s.c * s.h * s.w;
  std::vector<Tensor4f> images;
  images.reserve(s.n);
  for (std::size_t n = 0; n < s.n; ++n) {
    Tensor4f img(1, s.c, s.h, s.w);
    const auto src = batch.flat().subspan(n * volume, volume);
    std::copy(src.begin(), src.end(), img.flat().begin());
    images.push_back(std::move(img));
  }
  return images;
}

std::vector<LayerSpec> vgg16_d_scaled(std::size_t scale,
                                      std::size_t channel_div) {
  if (scale == 0 || 224 % scale != 0) {
    throw std::invalid_argument("vgg16_d_scaled: scale must divide 224");
  }
  if (channel_div == 0) {
    throw std::invalid_argument("vgg16_d_scaled: channel_div must be > 0");
  }
  std::vector<LayerSpec> layers;
  std::size_t hw = 224 / scale;
  std::size_t prev_c = 3;
  for (const auto& group : vgg16_d().groups) {
    for (const auto& c : group.layers) {
      LayerSpec l;
      l.kind = LayerKind::kConv;
      l.conv = c;
      l.conv.h = hw;
      l.conv.w = hw;
      l.conv.c = prev_c;
      l.conv.k = std::max<std::size_t>(1, c.k / channel_div);
      prev_c = l.conv.k;
      layers.push_back(l);
    }
    if (hw >= 2) {
      LayerSpec pool;
      pool.kind = LayerKind::kMaxPool;
      layers.push_back(pool);
      hw /= 2;
    }
  }
  LayerSpec fc;
  fc.kind = LayerKind::kFullyConnected;
  fc.fc_in = prev_c * hw * hw;
  fc.fc_out = 10;
  layers.push_back(fc);
  return layers;
}

}  // namespace wino::nn
