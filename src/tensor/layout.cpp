#include "tensor/layout.hpp"

#include <stdexcept>

namespace wino::tensor {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Conv output extent (input + both pads, kernel r, stride s); throws when
/// the window never fits. Mirrors conv::conv_out_extent, restated here so
/// the tensor layer stays at the bottom of the dependency stack.
std::size_t out_extent(std::size_t in, std::size_t r, int pad, int stride) {
  const std::ptrdiff_t padded =
      static_cast<std::ptrdiff_t>(in) + 2 * pad - static_cast<std::ptrdiff_t>(r);
  if (padded < 0 || stride < 1) {
    throw std::invalid_argument("Layout: im2col window never fits input");
  }
  return static_cast<std::size_t>(padded) / static_cast<std::size_t>(stride) +
         1;
}

}  // namespace

std::string to_string(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kNCHW:
      return "nchw";
    case LayoutKind::kWinogradTile:
      return "winograd-tile";
    case LayoutKind::kIm2colPanel:
      return "im2col-panel";
  }
  return "unknown";
}

std::string to_string(const Layout& layout) {
  std::string s = to_string(layout.kind);
  if (layout.kind == LayoutKind::kWinogradTile) {
    s += "(m=" + std::to_string(layout.tile_m) + ")";
  } else if (layout.kind == LayoutKind::kIm2colPanel) {
    s += "(r=" + std::to_string(layout.patch_r) +
         ",pad=" + std::to_string(layout.pad_h) + "x" +
         std::to_string(layout.pad_w) +
         ",stride=" + std::to_string(layout.stride) + ")";
  }
  return s;
}

Layout Layout::nchw(Shape4 shape) {
  Layout l;
  l.kind = LayoutKind::kNCHW;
  l.shape = shape;
  return l;
}

Layout Layout::winograd_tile(Shape4 shape, std::size_t m) {
  if (m == 0) {
    throw std::invalid_argument("Layout::winograd_tile: m must be > 0");
  }
  Layout l;
  l.kind = LayoutKind::kWinogradTile;
  l.shape = shape;
  l.tile_m = m;
  return l;
}

Layout Layout::im2col_panel(Shape4 shape, std::size_t r, int pad_h,
                            int pad_w, int stride) {
  if (r == 0 || stride < 1 || pad_h < 0 || pad_w < 0) {
    throw std::invalid_argument("Layout::im2col_panel: bad parameters");
  }
  Layout l;
  l.kind = LayoutKind::kIm2colPanel;
  l.shape = shape;
  l.patch_r = r;
  l.pad_h = pad_h;
  l.pad_w = pad_w;
  l.stride = stride;
  (void)l.panel_out_h();  // validate the window fits now, not at pack time
  (void)l.panel_out_w();
  return l;
}

std::size_t Layout::tiles_h() const { return ceil_div(shape.h, tile_m); }
std::size_t Layout::tiles_w() const { return ceil_div(shape.w, tile_m); }

std::size_t Layout::panel_out_h() const {
  return out_extent(shape.h, patch_r, pad_h, stride);
}
std::size_t Layout::panel_out_w() const {
  return out_extent(shape.w, patch_r, pad_w, stride);
}

std::size_t Layout::volume() const {
  switch (kind) {
    case LayoutKind::kNCHW:
      return shape.volume();
    case LayoutKind::kWinogradTile:
      return shape.n * shape.c * tiles_h() * tiles_w() * tile_m * tile_m;
    case LayoutKind::kIm2colPanel:
      return shape.n * shape.c * patch_r * patch_r * panel_out_h() *
             panel_out_w();
  }
  return 0;
}

PackedActivation PackedActivation::from_nchw(Tensor4f&& t) {
  const Shape4 shape = t.shape();
  return {Layout::nchw(shape), std::move(t).release()};
}

namespace {

void pack_winograd_tiles(const Tensor4f& src, const Layout& l,
                         std::vector<float>& dst) {
  const auto& s = l.shape;
  const std::size_t m = l.tile_m;
  const std::size_t th_n = l.tiles_h();
  const std::size_t tw_n = l.tiles_w();
  const auto flat = src.flat();
  std::size_t out = 0;  // dst is walked in exactly layout order
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t c = 0; c < s.c; ++c) {
      const std::size_t plane = (n * s.c + c) * s.h * s.w;
      for (std::size_t th = 0; th < th_n; ++th) {
        for (std::size_t tw = 0; tw < tw_n; ++tw) {
          for (std::size_t i = 0; i < m; ++i) {
            const std::size_t y = th * m + i;
            for (std::size_t j = 0; j < m; ++j) {
              const std::size_t x = tw * m + j;
              dst[out++] = (y < s.h && x < s.w)
                               ? flat[plane + y * s.w + x]
                               : 0.0F;
            }
          }
        }
      }
    }
  }
}

void unpack_winograd_tiles(const PackedActivation& src, Tensor4f& dst) {
  const Layout& l = src.layout;
  const auto& s = l.shape;
  const std::size_t m = l.tile_m;
  const std::size_t th_n = l.tiles_h();
  const std::size_t tw_n = l.tiles_w();
  auto flat = dst.flat();
  std::size_t in = 0;
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t c = 0; c < s.c; ++c) {
      const std::size_t plane = (n * s.c + c) * s.h * s.w;
      for (std::size_t th = 0; th < th_n; ++th) {
        for (std::size_t tw = 0; tw < tw_n; ++tw) {
          for (std::size_t i = 0; i < m; ++i) {
            const std::size_t y = th * m + i;
            for (std::size_t j = 0; j < m; ++j, ++in) {
              const std::size_t x = tw * m + j;
              if (y < s.h && x < s.w) flat[plane + y * s.w + x] = src.data[in];
            }
          }
        }
      }
    }
  }
}

void pack_im2col_panel(const Tensor4f& src, const Layout& l,
                       std::vector<float>& dst) {
  const auto& s = l.shape;
  const std::size_t r = l.patch_r;
  const std::size_t out_h = l.panel_out_h();
  const std::size_t out_w = l.panel_out_w();
  const std::size_t rows = s.c * r * r;
  const std::size_t cols = out_h * out_w;
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t row = 0; row < rows; ++row) {
      im2col_lower_row(src, n, r, l.pad_h, l.pad_w, l.stride, row, out_h,
                       out_w,
                       {dst.data() + (n * rows + row) * cols, cols});
    }
  }
}

void unpack_im2col_panel(const PackedActivation& src, Tensor4f& dst) {
  const Layout& l = src.layout;
  const auto& s = l.shape;
  const std::size_t r = l.patch_r;
  const std::size_t out_h = l.panel_out_h();
  const std::size_t out_w = l.panel_out_w();
  const std::size_t panel = s.c * r * r * out_h * out_w;
  // Every patch element writes back to its source pixel; pixels sampled by
  // several overlapping patches receive the same value several times, and
  // pixels no patch samples (possible only for stride > 1) stay at the
  // zero initialisation.
  for (std::size_t n = 0; n < s.n; ++n) {
    std::size_t in = n * panel;
    for (std::size_t c = 0; c < s.c; ++c) {
      for (std::size_t u = 0; u < r; ++u) {
        for (std::size_t v = 0; v < r; ++v) {
          for (std::size_t oy = 0; oy < out_h; ++oy) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy) * l.stride +
                static_cast<std::ptrdiff_t>(u) - l.pad_h;
            for (std::size_t ox = 0; ox < out_w; ++ox, ++in) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox) * l.stride +
                  static_cast<std::ptrdiff_t>(v) - l.pad_w;
              if (iy >= 0 && ix >= 0 &&
                  static_cast<std::size_t>(iy) < s.h &&
                  static_cast<std::size_t>(ix) < s.w) {
                dst(n, c, static_cast<std::size_t>(iy),
                    static_cast<std::size_t>(ix)) = src.data[in];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

PackedActivation pack(const Tensor4f& nchw, const Layout& target) {
  if (!(nchw.shape() == target.shape)) {
    throw std::invalid_argument("pack: tensor shape != layout shape");
  }
  PackedActivation out{target, std::vector<float>(target.volume())};
  switch (target.kind) {
    case LayoutKind::kNCHW: {
      const auto flat = nchw.flat();
      std::copy(flat.begin(), flat.end(), out.data.begin());
      break;
    }
    case LayoutKind::kWinogradTile:
      pack_winograd_tiles(nchw, target, out.data);
      break;
    case LayoutKind::kIm2colPanel:
      pack_im2col_panel(nchw, target, out.data);
      break;
  }
  return out;
}

Tensor4f unpack(const PackedActivation& packed) {
  if (packed.data.size() != packed.layout.volume()) {
    throw std::invalid_argument("unpack: buffer size != layout volume");
  }
  switch (packed.layout.kind) {
    case LayoutKind::kNCHW:
      return Tensor4f(packed.layout.shape, std::vector<float>(packed.data));
    case LayoutKind::kWinogradTile: {
      Tensor4f out(packed.layout.shape);
      unpack_winograd_tiles(packed, out);
      return out;
    }
    case LayoutKind::kIm2colPanel: {
      Tensor4f out(packed.layout.shape);
      unpack_im2col_panel(packed, out);
      return out;
    }
  }
  throw std::invalid_argument("unpack: unknown layout kind");
}

PackedActivation repack(const PackedActivation& src, const Layout& target) {
  if (!(src.layout.shape == target.shape)) {
    throw std::invalid_argument("repack: layouts disagree on logical shape");
  }
  if (src.data.size() != src.layout.volume()) {
    throw std::invalid_argument("repack: buffer size != layout volume");
  }
  if (src.layout == target) return src;
  if (src.layout.kind != LayoutKind::kWinogradTile ||
      target.kind != LayoutKind::kWinogradTile) {
    return pack(unpack(src), target);
  }
  // Direct tile -> tile re-blocking: walk the destination in layout order
  // and resolve each in-map element to its source tile; ragged positions
  // keep the layout's zero-fill invariant.
  const Layout& sl = src.layout;
  const auto& s = target.shape;
  const std::size_t sm = sl.tile_m;
  const std::size_t stw = sl.tiles_w();
  const std::size_t dm = target.tile_m;
  const std::size_t dth = target.tiles_h();
  const std::size_t dtw = target.tiles_w();
  PackedActivation out{target, std::vector<float>(target.volume())};
  std::size_t di = 0;
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t c = 0; c < s.c; ++c) {
      const std::size_t chan = (n * s.c + c) * sl.tiles_h();
      for (std::size_t th = 0; th < dth; ++th) {
        for (std::size_t tw = 0; tw < dtw; ++tw) {
          for (std::size_t i = 0; i < dm; ++i) {
            const std::size_t y = th * dm + i;
            for (std::size_t j = 0; j < dm; ++j, ++di) {
              const std::size_t x = tw * dm + j;
              if (y >= s.h || x >= s.w) continue;  // stays zero
              out.data[di] =
                  src.data[((chan + y / sm) * stw + x / sm) * sm * sm +
                           (y % sm) * sm + x % sm];
            }
          }
        }
      }
    }
  }
  return out;
}

bool im2col_covers_input(const Layout& layout) {
  if (layout.kind != LayoutKind::kIm2colPanel) {
    throw std::invalid_argument("im2col_covers_input: not an im2col layout");
  }
  if (layout.stride == 1) return true;
  // The last window starts at s*(out-1) - pad and spans r pixels; every
  // pixel before it is covered because consecutive windows overlap or abut
  // whenever r >= stride. Pixels at or beyond start+r are never sampled.
  const auto covers = [&](std::size_t extent, int pad, std::size_t out) {
    if (layout.patch_r < static_cast<std::size_t>(layout.stride)) {
      return extent + static_cast<std::size_t>(pad) <= layout.patch_r;
    }
    const std::ptrdiff_t last_start =
        static_cast<std::ptrdiff_t>(layout.stride) *
            (static_cast<std::ptrdiff_t>(out) - 1) -
        pad;
    return last_start + static_cast<std::ptrdiff_t>(layout.patch_r) >=
           static_cast<std::ptrdiff_t>(extent);
  };
  return covers(layout.shape.h, layout.pad_h, layout.panel_out_h()) &&
         covers(layout.shape.w, layout.pad_w, layout.panel_out_w());
}

}  // namespace wino::tensor
