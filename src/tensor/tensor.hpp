// NCHW 4-D tensor substrate for feature maps and kernel banks.
//
// Every convolution path in the library (spatial, im2col, FFT, Winograd,
// cycle-level hardware simulation) operates on Tensor4<float>, so numerical
// cross-checks between algorithms are direct element comparisons.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace wino::tensor {

/// Shape of an NCHW tensor. For kernel banks the mapping is
/// (n, c, h, w) == (output channels K, input channels C, r, r).
struct Shape4 {
  std::size_t n = 0;
  std::size_t c = 0;
  std::size_t h = 0;
  std::size_t w = 0;

  [[nodiscard]] std::size_t volume() const { return n * c * h * w; }
  friend bool operator==(const Shape4&, const Shape4&) = default;
};

/// Dense NCHW tensor with contiguous row-major storage (w fastest).
template <typename T>
class Tensor4 {
 public:
  Tensor4() = default;
  explicit Tensor4(Shape4 shape, T init = T{})
      : shape_(shape), data_(shape.volume(), init) {}
  Tensor4(std::size_t n, std::size_t c, std::size_t h, std::size_t w,
          T init = T{})
      : Tensor4(Shape4{n, c, h, w}, init) {}

  /// Adopt an existing flat NCHW buffer without copying (the layout
  /// pipeline moves activations between NCHW and packed forms; a
  /// full-feature-map copy per layer boundary would defeat the point).
  Tensor4(Shape4 shape, std::vector<T>&& data)
      : shape_(shape), data_(std::move(data)) {
    if (data_.size() != shape_.volume()) {
      throw std::invalid_argument("Tensor4: buffer size != shape volume");
    }
  }

  [[nodiscard]] const Shape4& shape() const { return shape_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T& operator()(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[index(n, c, h, w)];
  }
  const T& operator()(std::size_t n, std::size_t c, std::size_t h,
                      std::size_t w) const {
    return data_[index(n, c, h, w)];
  }

  T& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    check(n, c, h, w);
    return data_[index(n, c, h, w)];
  }
  const T& at(std::size_t n, std::size_t c, std::size_t h,
              std::size_t w) const {
    check(n, c, h, w);
    return data_[index(n, c, h, w)];
  }

  /// Value at (n, c, h, w) treating coordinates outside the spatial extent
  /// as zero padding. h and w are signed to allow negative halo reads.
  [[nodiscard]] T padded(std::size_t n, std::size_t c, std::ptrdiff_t h,
                         std::ptrdiff_t w) const {
    if (h < 0 || w < 0 || static_cast<std::size_t>(h) >= shape_.h ||
        static_cast<std::size_t>(w) >= shape_.w) {
      return T{};
    }
    return (*this)(n, c, static_cast<std::size_t>(h),
                   static_cast<std::size_t>(w));
  }

  [[nodiscard]] std::span<T> flat() { return data_; }
  [[nodiscard]] std::span<const T> flat() const { return data_; }

  /// Move the flat buffer out (the inverse of the adopting constructor);
  /// the tensor is left empty with a zero shape.
  [[nodiscard]] std::vector<T> release() && {
    shape_ = Shape4{};
    return std::move(data_);
  }

  friend bool operator==(const Tensor4& a, const Tensor4& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t n, std::size_t c, std::size_t h,
                                  std::size_t w) const {
    return ((n * shape_.c + c) * shape_.h + h) * shape_.w + w;
  }
  void check(std::size_t n, std::size_t c, std::size_t h,
             std::size_t w) const {
    if (n >= shape_.n || c >= shape_.c || h >= shape_.h || w >= shape_.w) {
      throw std::out_of_range("Tensor4 index out of range");
    }
  }

  Shape4 shape_{};
  std::vector<T> data_;
};

using Tensor4f = Tensor4<float>;
using Tensor4d = Tensor4<double>;

/// Non-owning read view over a flat NCHW buffer with Tensor4's indexing
/// semantics. Lets the workspace executor hand slab-backed activations to
/// kernels written against Tensor4 (im2col lowering in particular) without
/// materialising an owning tensor.
template <typename T>
class Tensor4View {
 public:
  Tensor4View(Shape4 shape, std::span<const T> data)
      : shape_(shape), data_(data) {
    if (data_.size() != shape_.volume()) {
      throw std::invalid_argument(
          "Tensor4View: buffer size != shape volume");
    }
  }

  [[nodiscard]] const Shape4& shape() const { return shape_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  const T& operator()(std::size_t n, std::size_t c, std::size_t h,
                      std::size_t w) const {
    return data_[((n * shape_.c + c) * shape_.h + h) * shape_.w + w];
  }

  /// Zero-padded read; same semantics as Tensor4::padded.
  [[nodiscard]] T padded(std::size_t n, std::size_t c, std::ptrdiff_t h,
                         std::ptrdiff_t w) const {
    if (h < 0 || w < 0 || static_cast<std::size_t>(h) >= shape_.h ||
        static_cast<std::size_t>(w) >= shape_.w) {
      return T{};
    }
    return (*this)(n, c, static_cast<std::size_t>(h),
                   static_cast<std::size_t>(w));
  }

  [[nodiscard]] std::span<const T> flat() const { return data_; }

 private:
  Shape4 shape_{};
  std::span<const T> data_;
};

using Tensor4fView = Tensor4View<float>;

/// Maximum absolute elementwise difference; throws if shapes differ.
template <typename T>
T max_abs_diff(const Tensor4<T>& a, const Tensor4<T>& b) {
  if (!(a.shape() == b.shape())) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  T worst{};
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const T d = fa[i] > fb[i] ? fa[i] - fb[i] : fb[i] - fa[i];
    if (d > worst) worst = d;
  }
  return worst;
}

/// Largest absolute element; used to express errors relative to data range.
template <typename T>
T max_abs(const Tensor4<T>& a) {
  T worst{};
  for (const T& v : a.flat()) {
    const T m = v < T{} ? -v : v;
    if (m > worst) worst = m;
  }
  return worst;
}

}  // namespace wino::tensor
