// Activation layouts and the pack/unpack conversion kernels between them.
//
// Every conv backend in the library has a preferred in-memory form for its
// input: the spatial/FFT paths read plain NCHW, the im2col GEMM consumes a
// (C*r*r) x (outH*outW) patch panel, and the Winograd paths walk m x m
// output tiles. Historically each layer converted NCHW -> its form on
// entry and back to NCHW on exit, so every layer boundary paid the
// conversion twice. This header makes the layout an explicit, first-class
// property of an activation (`Layout` + `PackedActivation`) so the layer
// planner in nn::forward can hand activations between layers in the packed
// form and elide the unpack -> repack pair when consecutive layers agree.
//
// The three layouts form a tiny lattice with NCHW at the top (every layout
// packs from and unpacks to NCHW losslessly; packed forms do not convert
// directly to each other):
//
//                  kNCHW
//               ┌────┴────┐
//        kWinogradTile  kIm2colPanel
//
//  * kNCHW          dense (n, c, h, w), w fastest — Tensor4f's layout.
//  * kWinogradTile  m x m spatial blocking: [n][c][th][tw][m*m] with
//                   tiles_h = ceil(h/m) rows of tiles; ragged edge tiles
//                   are zero-filled beyond the feature map. A pure
//                   permutation-plus-padding of NCHW, so pack/unpack are
//                   exact inverses for every shape.
//  * kIm2colPanel   the im2col lowering [n][c*r*r][outH*outW] for a given
//                   (r, pad_h, pad_w, stride). Exact inverse whenever
//                   every input pixel is sampled by at least one patch
//                   (always for stride 1; see im2col_covers_input()).
//
// All conversions are value-preserving: packing then unpacking returns the
// original tensor bit-for-bit (tests/tensor_layout_test.cpp sweeps ragged
// edges, stride > 1 and asymmetric padding), which is what lets the layout
// planner elide conversions without touching the numerics contract.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace wino::tensor {

enum class LayoutKind {
  kNCHW,          ///< dense (n, c, h, w) — the interchange layout
  kWinogradTile,  ///< m x m spatial tiles: [n][c][th][tw][m*m]
  kIm2colPanel,   ///< im2col patch panel: [n][c*r*r][outH*outW]
};

[[nodiscard]] std::string to_string(LayoutKind kind);

/// Full description of an activation's in-memory form: the logical NCHW
/// shape it represents plus the parameters of the packing applied to it.
struct Layout {
  LayoutKind kind = LayoutKind::kNCHW;
  Shape4 shape{};          ///< logical NCHW shape of the activation

  std::size_t tile_m = 0;  ///< kWinogradTile: tile edge m

  std::size_t patch_r = 0; ///< kIm2colPanel: kernel size r
  int pad_h = 0;           ///< kIm2colPanel: vertical padding
  int pad_w = 0;           ///< kIm2colPanel: horizontal padding
  int stride = 1;          ///< kIm2colPanel: spatial stride

  [[nodiscard]] static Layout nchw(Shape4 shape);
  [[nodiscard]] static Layout winograd_tile(Shape4 shape, std::size_t m);
  [[nodiscard]] static Layout im2col_panel(Shape4 shape, std::size_t r,
                                           int pad_h, int pad_w, int stride);

  /// kWinogradTile: tile grid extents, ceil(h/m) x ceil(w/m).
  [[nodiscard]] std::size_t tiles_h() const;
  [[nodiscard]] std::size_t tiles_w() const;

  /// kIm2colPanel: the conv output extents the panel columns enumerate.
  [[nodiscard]] std::size_t panel_out_h() const;
  [[nodiscard]] std::size_t panel_out_w() const;

  /// Physical floats of storage this layout occupies (>= shape.volume()
  /// for kWinogradTile ragged padding and im2col patch overlap).
  [[nodiscard]] std::size_t volume() const;

  friend bool operator==(const Layout&, const Layout&) = default;
};

[[nodiscard]] std::string to_string(const Layout& layout);

/// An activation tensor in an explicit layout: flat storage plus the
/// Layout describing how to read it. For kNCHW the data is exactly a
/// Tensor4f's flat buffer (and moves in/out of one without copying).
struct PackedActivation {
  Layout layout;
  std::vector<float> data;

  /// Wrap an NCHW tensor without copying.
  [[nodiscard]] static PackedActivation from_nchw(Tensor4f&& t);
};

/// Convert an NCHW tensor into `target` (whose shape must match). Packing
/// to kNCHW is a plain move-free copy of the buffer.
[[nodiscard]] PackedActivation pack(const Tensor4f& nchw,
                                    const Layout& target);

/// Convert back to NCHW. Exact inverse of pack() for kNCHW and
/// kWinogradTile always, and for kIm2colPanel whenever the panel samples
/// every input pixel (see im2col_covers_input); unsampled pixels — only
/// possible with stride > 1 — come back as zero.
[[nodiscard]] Tensor4f unpack(const PackedActivation& packed);

/// Convert a packed activation directly into another layout over the same
/// logical shape. kWinogradTile -> kWinogradTile (e.g. a W4 producer's
/// m = 4 tiles re-blocked to a consumer's m = 2 edge) runs as a single
/// direct permutation without materialising the NCHW intermediate; every
/// other pair routes through unpack -> pack. Value-preserving for every
/// pair whose unpack is exact (see unpack()), so tile(m_a) -> tile(m_b) ->
/// tile(m_a) round-trips bit-for-bit including the zero ragged fill
/// (pinned by tests/nn_plan_test.cpp). Note the mixed-m *executor* usually
/// doesn't need this: conv2d_winograd_layout and the tiled maxpool gather
/// from any producer tile edge directly.
[[nodiscard]] PackedActivation repack(const PackedActivation& src,
                                      const Layout& target);

/// True when every input pixel of `layout.shape` appears in at least one
/// im2col patch, i.e. pack -> unpack through kIm2colPanel is the identity.
/// Always true for stride 1; with stride s > 1 the trailing edge can fall
/// between patch windows when (extent + pads - r) is not a multiple of s.
[[nodiscard]] bool im2col_covers_input(const Layout& layout);

/// Flat offset of tile (n, c, th, tw) in a kWinogradTile buffer; the tile
/// body is tile_m * tile_m floats, row-major within the tile.
[[nodiscard]] inline std::size_t winograd_tile_offset(const Layout& l,
                                                      std::size_t n,
                                                      std::size_t c,
                                                      std::size_t th,
                                                      std::size_t tw) {
  return (((n * l.shape.c + c) * l.tiles_h() + th) * l.tiles_w() + tw) *
         l.tile_m * l.tile_m;
}

/// Lower one patch row — a fixed (c, u, v) = (row / r², (row / r) % r,
/// row % r) — of one image into out_row[outH * outW]. The single source
/// of truth for the im2col patch enumeration order and padding handling:
/// tensor::pack walks rows serially through it and conv::im2col fans the
/// same call out row-parallel, so the two panels are byte-identical by
/// construction (the determinism contract the panel conv consumer
/// relies on). Templated over the tensor type so owning Tensor4f and
/// non-owning Tensor4fView (slab-backed activations in the workspace
/// executor) lower through the identical code path.
template <typename TensorLike>
inline void im2col_lower_row(const TensorLike& input, std::size_t image,
                             std::size_t r, int pad_h, int pad_w, int stride,
                             std::size_t row, std::size_t out_h,
                             std::size_t out_w, std::span<float> out_row) {
  const std::size_t c = row / (r * r);
  const std::size_t u = (row / r) % r;
  const std::size_t v = row % r;
  std::size_t col = 0;
  for (std::size_t oy = 0; oy < out_h; ++oy) {
    const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy) * stride +
                              static_cast<std::ptrdiff_t>(u) - pad_h;
    for (std::size_t ox = 0; ox < out_w; ++ox, ++col) {
      const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox) * stride +
                                static_cast<std::ptrdiff_t>(v) - pad_w;
      out_row[col] = input.padded(image, c, iy, ix);
    }
  }
}

}  // namespace wino::tensor
