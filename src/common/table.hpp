// Minimal fixed-width text table writer used by the bench harnesses to print
// paper tables/figures as aligned rows. Kept dependency-free so every bench
// binary renders identically.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace wino::common {

/// Accumulates rows of string cells and prints them with per-column widths.
/// First row added via header() is separated from the body by a rule.
class TextTable {
 public:
  void header(std::vector<std::string> cells) {
    header_ = std::move(cells);
    grow_widths(header_);
  }

  void row(std::vector<std::string> cells) {
    grow_widths(cells);
    rows_.push_back(std::move(cells));
  }

  /// Format a double with fixed precision; convenience for numeric cells.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    if (!header_.empty()) {
      print_row(os, header_);
      std::size_t total = 0;
      for (std::size_t w : widths_) total += w + 2;
      os << std::string(total, '-') << '\n';
    }
    for (const auto& r : rows_) print_row(os, r);
  }

 private:
  void grow_widths(const std::vector<std::string>& cells) {
    if (widths_.size() < cells.size()) widths_.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
  }

  void print_row(std::ostream& os,
                 const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths_[i]) + 2)
         << cells[i];
    }
    os << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

}  // namespace wino::common
