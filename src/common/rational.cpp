#include "common/rational.hpp"

#include <limits>

namespace wino::common {

namespace {

using Wide = __int128;

std::int64_t narrow_checked(Wide value, const char* context) {
  if (value > std::numeric_limits<std::int64_t>::max() ||
      value < std::numeric_limits<std::int64_t>::min()) {
    throw RationalError(std::string("rational overflow in ") + context);
  }
  return static_cast<std::int64_t>(value);
}

Wide wide_gcd(Wide a, Wide b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Wide t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

void Rational::normalize() {
  if (den_ == 0) {
    throw RationalError("zero denominator");
  }
  if (den_ < 0) {
    if (num_ == std::numeric_limits<std::int64_t>::min() ||
        den_ == std::numeric_limits<std::int64_t>::min()) {
      throw RationalError("rational overflow negating INT64_MIN");
    }
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

bool Rational::is_pow2_scaled() const {
  if (num_ == 0) return false;
  const auto is_pow2 = [](std::int64_t v) {
    return v > 0 && (v & (v - 1)) == 0;
  };
  const std::int64_t n = num_ < 0 ? -num_ : num_;
  // den_ > 0 by invariant; exactly one of numerator/denominator may carry a
  // non-trivial power of two because the fraction is reduced.
  return is_pow2(n) && is_pow2(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = narrow_checked(-static_cast<Wide>(num_), "negation");
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& rhs) {
  const Wide n = static_cast<Wide>(num_) * rhs.den_ +
                 static_cast<Wide>(rhs.num_) * den_;
  const Wide d = static_cast<Wide>(den_) * rhs.den_;
  const Wide g = wide_gcd(n, d);
  if (g > 1) {
    num_ = narrow_checked(n / g, "addition");
    den_ = narrow_checked(d / g, "addition");
  } else {
    num_ = narrow_checked(n, "addition");
    den_ = narrow_checked(d, "addition");
  }
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) { return *this += -rhs; }

Rational& Rational::operator*=(const Rational& rhs) {
  const Wide n = static_cast<Wide>(num_) * rhs.num_;
  const Wide d = static_cast<Wide>(den_) * rhs.den_;
  const Wide g = wide_gcd(n, d);
  if (g > 1) {
    num_ = narrow_checked(n / g, "multiplication");
    den_ = narrow_checked(d / g, "multiplication");
  } else {
    num_ = narrow_checked(n, "multiplication");
    den_ = narrow_checked(d, "multiplication");
  }
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.num_ == 0) throw RationalError("division by zero");
  return *this *= rhs.reciprocal();
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  const Wide lhs = static_cast<Wide>(a.num_) * b.den_;
  const Wide rhs = static_cast<Wide>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Rational Rational::reciprocal() const {
  if (num_ == 0) throw RationalError("reciprocal of zero");
  return Rational(den_, num_);
}

Rational Rational::abs() const { return num_ < 0 ? -*this : *this; }

Rational Rational::pow(int exponent) const {
  if (exponent < 0) {
    throw RationalError("negative exponent; use reciprocal().pow(-e)");
  }
  Rational result(1);
  Rational base = *this;
  for (int e = exponent; e > 0; e >>= 1) {
    if (e & 1) result *= base;
    if (e > 1) base *= base;
  }
  return result;
}

}  // namespace wino::common
