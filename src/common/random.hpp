// Deterministic pseudo-random generators shared by tests, examples and
// benches. A fixed default seed keeps every reproduction run bit-identical.
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace wino::common {

/// Thin wrapper over a mersenne twister with convenience fills. Not
/// thread-safe; create one per thread.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = kDefaultSeed) : engine_(seed) {}

  static constexpr std::uint64_t kDefaultSeed = 0x5EEDu;

  /// Uniform float in [lo, hi).
  float uniform(float lo = -1.0F, float hi = 1.0F) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal.
  float normal(float mean = 0.0F, float stddev = 1.0F) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  void fill_uniform(std::span<float> out, float lo = -1.0F, float hi = 1.0F) {
    for (float& v : out) v = uniform(lo, hi);
  }

  void fill_normal(std::span<float> out, float mean = 0.0F,
                   float stddev = 1.0F) {
    for (float& v : out) v = normal(mean, stddev);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wino::common
