// Small dense row-major matrix template over an arbitrary field element.
//
// Used with wino::common::Rational for exact Cook-Toom transform
// construction and with float/double for runtime kernels. This is a
// deliberately small linear-algebra substrate: the transform matrices are at
// most ~10x10, so clarity and exactness beat BLAS-style tuning here. The
// one concession (and the one dependency on runtime/) is that large float
// products dispatch to the shared blocked SIMD GEMM core, so callers that
// outgrow transform-sized matrices are not silently cubic-slow.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "runtime/gemm.hpp"

namespace wino::common {

/// Dense ROWSxCOLS matrix with value semantics. Dimensions are fixed at
/// construction; element access is bounds-checked via at() and unchecked via
/// operator().
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Construct from nested initializer lists; all rows must have equal
  /// length.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      if (row.size() != cols_) {
        throw std::invalid_argument("ragged matrix initializer");
      }
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    }
    return t;
  }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols_ != b.rows_) {
      throw std::invalid_argument("matrix product dimension mismatch");
    }
    Matrix out(a.rows_, b.cols_);
    // Large float products route to the shared cache-blocked SIMD GEMM
    // core; the exact-arithmetic types (Rational) and the small transform
    // matrices keep the clear triple loop.
    if constexpr (std::is_same_v<T, float>) {
      constexpr std::size_t kGemmMnkThreshold = 64 * 64 * 64;
      if (a.rows_ * a.cols_ * b.cols_ >= kGemmMnkThreshold) {
        wino::runtime::sgemm(a.rows_, b.cols_, a.cols_, 1.0F,
                             a.data_.data(), a.cols_, b.data_.data(),
                             b.cols_, 0.0F, out.data_.data(), b.cols_);
        return out;
      }
    }
    for (std::size_t i = 0; i < a.rows_; ++i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T& aik = a(i, k);
        for (std::size_t j = 0; j < b.cols_; ++j) {
          out(i, j) += aik * b(k, j);
        }
      }
    }
    return out;
  }

  friend Matrix operator+(const Matrix& a, const Matrix& b) {
    if (a.rows_ != b.rows_ || a.cols_ != b.cols_) {
      throw std::invalid_argument("matrix sum dimension mismatch");
    }
    Matrix out = a;
    for (std::size_t i = 0; i < out.data_.size(); ++i) {
      out.data_[i] += b.data_[i];
    }
    return out;
  }

  /// Identity matrix of order n (requires T constructible from 0 and 1).
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  /// Exact inverse via Gauss-Jordan elimination with partial row search for
  /// a non-zero pivot. Intended for field types (Rational); throws on
  /// singular input.
  [[nodiscard]] Matrix inverse() const {
    if (rows_ != cols_) {
      throw std::invalid_argument("inverse of non-square matrix");
    }
    const std::size_t n = rows_;
    Matrix a = *this;
    Matrix inv = identity(n);
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t pivot = col;
      while (pivot < n && a(pivot, col) == T{}) ++pivot;
      if (pivot == n) throw std::invalid_argument("singular matrix");
      if (pivot != col) {
        for (std::size_t j = 0; j < n; ++j) {
          std::swap(a(pivot, j), a(col, j));
          std::swap(inv(pivot, j), inv(col, j));
        }
      }
      const T scale = T{1} / a(col, col);
      for (std::size_t j = 0; j < n; ++j) {
        a(col, j) *= scale;
        inv(col, j) *= scale;
      }
      for (std::size_t row = 0; row < n; ++row) {
        if (row == col) continue;
        const T factor = a(row, col);
        if (factor == T{}) continue;
        for (std::size_t j = 0; j < n; ++j) {
          a(row, j) -= factor * a(col, j);
          inv(row, j) -= factor * inv(col, j);
        }
      }
    }
    return inv;
  }

  /// Elementwise conversion to another scalar type via a projection
  /// functor, e.g. Rational -> double.
  template <typename U, typename Fn>
  [[nodiscard]] Matrix<U> map(Fn&& fn) const {
    Matrix<U> out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) out(r, c) = fn((*this)(r, c));
    }
    return out;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("matrix index out of range");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace wino::common
