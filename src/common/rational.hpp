// Exact rational arithmetic over 64-bit integers with overflow checking.
//
// The Cook-Toom construction of Winograd minimal-filtering transforms
// (src/winograd/cook_toom.hpp) requires exact arithmetic: Vandermonde-style
// systems over small rational interpolation points (0, +-1, +-2, +-1/2, ...)
// must be inverted without rounding so that the generated transform matrices
// are the canonical integer/rational matrices of Lavin's paper, not floating
// point approximations. All intermediates are computed in __int128 and
// checked before narrowing back to int64, so any overflow is a hard error
// rather than silent corruption.
#pragma once

#include <cstdint>
#include <compare>
#include <numeric>
#include <stdexcept>
#include <string>

namespace wino::common {

/// Thrown when a rational operation would overflow its 64-bit representation
/// or divide by zero.
class RationalError : public std::runtime_error {
 public:
  explicit RationalError(const std::string& what) : std::runtime_error(what) {}
};

/// An exact rational number p/q with q > 0 and gcd(|p|, q) == 1.
///
/// Invariants are re-established after every operation; default construction
/// yields 0/1. The class is a regular value type (copyable, comparable,
/// hashable via num()/den()).
class Rational {
 public:
  constexpr Rational() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // promotion from integers, mirroring built-in arithmetic.
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}
  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    normalize();
  }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] constexpr bool is_zero() const { return num_ == 0; }
  [[nodiscard]] constexpr bool is_one() const {
    return num_ == 1 && den_ == 1;
  }
  [[nodiscard]] constexpr bool is_integer() const { return den_ == 1; }

  /// True when |value| is an integral power of two (including 2^0 == 1) or
  /// the reciprocal of one; such constants are realisable as shifts in
  /// hardware and are costed differently by the transform-program builder.
  [[nodiscard]] bool is_pow2_scaled() const;

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] std::string to_string() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend Rational operator-(Rational lhs, const Rational& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend Rational operator*(Rational lhs, const Rational& rhs) {
    lhs *= rhs;
    return lhs;
  }
  friend Rational operator/(Rational lhs, const Rational& rhs) {
    lhs /= rhs;
    return lhs;
  }

  friend constexpr bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b);

  /// Exact reciprocal; throws RationalError on zero.
  [[nodiscard]] Rational reciprocal() const;

  /// |this|.
  [[nodiscard]] Rational abs() const;

  /// this^e for e >= 0 (0^0 == 1 by convention, matching Vandermonde rows).
  [[nodiscard]] Rational pow(int exponent) const;

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace wino::common
