// Where bench binaries put their BENCH_*.json artifacts.
//
// The seed benches wrote to the current working directory, so the artifact
// location depended on where CI happened to invoke the binary. Benches now
// resolve an explicit `--out <path>` flag first and otherwise write next to
// the binary itself, so `build/bench/BENCH_*.json` is a stable pattern for
// artifact collection regardless of cwd.
#pragma once

#include <cstdio>
#include <filesystem>
#include <initializer_list>
#include <string>

namespace wino::common {

/// True when `flag` appears anywhere in argv[1..argc).
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Validate a bench binary's command line: every argument must be one of
/// `flags`, one of `value_flags` followed by a value, or `--out <path>`.
/// On the first malformed argument the offender and `usage` go to stderr
/// and false comes back so the caller exits non-zero — a mistyped flag in
/// a CI smoke invocation (e.g. `--qiuck`) must fail the job loudly, not
/// silently run the full sweep and pass.
inline bool validate_bench_args(int argc, char** argv,
                                std::initializer_list<const char*> flags,
                                std::initializer_list<const char*> value_flags,
                                const char* usage) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool takes_value = arg == "--out";
    for (const char* f : value_flags) {
      if (arg == f) {
        takes_value = true;
        break;
      }
    }
    if (takes_value) {
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "error: %s requires a value\nusage: %s\n",
                     arg.c_str(), usage);
        return false;
      }
      ++i;
      continue;
    }
    bool known = false;
    for (const char* f : flags) {
      if (arg == f) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown argument '%s'\nusage: %s\n",
                   arg.c_str(), usage);
      return false;
    }
  }
  return true;
}

inline bool validate_bench_args(int argc, char** argv,
                                std::initializer_list<const char*> flags,
                                const char* usage) {
  return validate_bench_args(argc, argv, flags, {}, usage);
}

/// Value of `flag` (the argument following it), or `fallback` when the
/// flag is absent. Call only after validate_bench_args accepted the
/// command line (which guarantees the value exists).
inline std::string flag_value(int argc, char** argv, const std::string& flag,
                              const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return fallback;
}

/// Resolve the output path for a bench artifact named `default_name`:
/// 1. an explicit `--out <path>` argument wins verbatim;
/// 2. otherwise the file lands in the running binary's directory
///    (via /proc/self/exe, falling back to argv[0]);
/// 3. otherwise (binary path unresolvable) the bare name, i.e. the cwd.
/// The bare-`--out` warning below is a defensive fallback only: every
/// bench main runs validate_bench_args() first, which rejects a
/// malformed `--out` with exit 2 before this function is reached.
inline std::string bench_output_path(int argc, char** argv,
                                     const std::string& default_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--out") continue;
    if (i + 1 < argc) return argv[i + 1];
    std::fprintf(stderr,
                 "warning: --out requires a path; writing %s next to the "
                 "binary instead\n",
                 default_name.c_str());
    break;
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path exe = fs::read_symlink("/proc/self/exe", ec);
  if (ec) exe = argc > 0 ? fs::path(argv[0]) : fs::path();
  if (exe.has_parent_path()) {
    return (exe.parent_path() / default_name).string();
  }
  return default_name;
}

}  // namespace wino::common
