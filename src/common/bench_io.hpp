// Where bench binaries put their BENCH_*.json artifacts.
//
// The seed benches wrote to the current working directory, so the artifact
// location depended on where CI happened to invoke the binary. Benches now
// resolve an explicit `--out <path>` flag first and otherwise write next to
// the binary itself, so `build/bench/BENCH_*.json` is a stable pattern for
// artifact collection regardless of cwd.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

namespace wino::common {

/// True when `flag` appears anywhere in argv[1..argc).
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Resolve the output path for a bench artifact named `default_name`:
/// 1. an explicit `--out <path>` argument wins verbatim;
/// 2. otherwise the file lands in the running binary's directory
///    (via /proc/self/exe, falling back to argv[0]);
/// 3. otherwise (binary path unresolvable) the bare name, i.e. the cwd.
inline std::string bench_output_path(int argc, char** argv,
                                     const std::string& default_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--out") continue;
    if (i + 1 < argc) return argv[i + 1];
    std::fprintf(stderr,
                 "warning: --out requires a path; writing %s next to the "
                 "binary instead\n",
                 default_name.c_str());
    break;
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path exe = fs::read_symlink("/proc/self/exe", ec);
  if (ec) exe = argc > 0 ? fs::path(argv[0]) : fs::path();
  if (exe.has_parent_path()) {
    return (exe.parent_path() / default_name).string();
  }
  return default_name;
}

}  // namespace wino::common
