// Structural RTL netlist for the transform datapaths.
//
// A LinearProgram (src/winograd/program.hpp) is lowered to a fixed-point
// netlist: every program op becomes a signed add/sub/negate, an arithmetic
// shift (power-of-two scaling), or a constant multiply-and-shift (generic
// rational constant rounded to `constant_frac_bits`). The netlist can be
//   * evaluated bit-exactly in C++ (the verification path: tests compare
//     it against the double-precision program within the quantisation
//     error bound), and
//   * emitted as synthesisable Verilog (src/rtl/verilog.hpp).
// This is the path from the paper's Fig 4 schematic to actual RTL.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "winograd/program.hpp"

namespace wino::rtl {

/// Fixed-point geometry of the datapath. Values are signed two's
/// complement, `width` bits, with `frac_bits` fractional bits. Constants
/// are quantised to `constant_frac_bits`.
struct FixedFormat {
  int width = 24;
  int frac_bits = 10;
  int constant_frac_bits = 12;
};

enum class NodeOp {
  kInput,     ///< external port
  kAdd,       ///< a + b
  kSub,       ///< a - b
  kNeg,       ///< -a
  kShl,       ///< a << amount          (multiply by 2^amount)
  kAshr,      ///< a >>> amount          (multiply by 2^-amount, rounding off)
  kMulConst,  ///< (a * constant) >>> constant_frac_bits
  kAlias      ///< wire rename (program copies / output hookup)
};

struct Node {
  NodeOp op = NodeOp::kInput;
  std::string name;          ///< wire name in the emitted Verilog
  std::size_t a = 0;         ///< operand node index
  std::size_t b = 0;         ///< second operand (kAdd / kSub)
  int amount = 0;            ///< shift amount
  std::int64_t constant = 0; ///< quantised constant (kMulConst)
  double constant_real = 0;  ///< the exact constant, for comments
};

/// A lowered datapath: nodes in topological order, with designated input
/// and output nodes.
class Netlist {
 public:
  /// Lower a linear transform program into a fixed-point netlist.
  /// `name_prefix` seeds wire names (x0.., t0.., y0..).
  static Netlist from_program(const winograd::LinearProgram& program,
                              const FixedFormat& format);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::size_t>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::size_t>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] const FixedFormat& format() const { return format_; }

  /// Bit-exact evaluation with wrap-around at `width` bits (as the
  /// hardware would). Inputs/outputs are raw fixed-point integers.
  void evaluate(std::span<const std::int64_t> in,
                std::span<std::int64_t> out) const;

  /// Convenience: evaluate on real values (quantise in, dequantise out).
  void evaluate_real(std::span<const double> in,
                     std::span<double> out) const;

  /// Resource summary for cross-checking against the fpga estimator.
  struct Summary {
    std::size_t adders = 0;      ///< kAdd + kSub + kNeg
    std::size_t shifters = 0;    ///< kShl + kAshr
    std::size_t multipliers = 0; ///< kMulConst
  };
  [[nodiscard]] Summary summary() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::size_t> inputs_;
  std::vector<std::size_t> outputs_;
  FixedFormat format_;
};

}  // namespace wino::rtl
