// Verilog emission for the transform datapaths and the PE structure —
// turning the paper's Fig 4/5 schematics into synthesisable RTL.
//
// Emitted modules:
//  * transform module: combinational signed fixed-point datapath for one
//    1-D transform program (B^T, G or A^T), one assign per netlist node;
//  * PE module: element-wise multiplier array + two chained inverse
//    transform passes (the 2-D nesting of Fig 5), with a validity
//    pipeline matching the configured stage latencies;
//  * engine top: shared data-transform instance feeding P PE instances
//    via a generate loop (Fig 7).
//
// The text targets Verilog-2001 and is deliberately simple: one wire per
// node, no inferred state except the explicit pipeline registers.
#pragma once

#include <string>

#include "hw/engine_config.hpp"
#include "rtl/netlist.hpp"

namespace wino::rtl {

/// Emit one combinational transform module from a lowered netlist.
/// Ports: in_0..in_{n-1}, out_0..out_{m-1}, all signed [width-1:0].
std::string emit_transform_module(const std::string& module_name,
                                  const Netlist& netlist);

/// Emit the PE for F(m x m, r x r): n*n multiplier array followed by the
/// row/column inverse-transform instances; includes the required
/// `emit_transform_module` for A^T. Fixed-point per `format`.
std::string emit_pe_module(const std::string& module_name, int m, int r,
                           const FixedFormat& format);

/// Emit the engine top: data transform (row/column B^T instances) shared
/// across a generate loop of P PEs. Includes all submodules; the returned
/// string is a self-contained .v file.
std::string emit_engine(const hw::EngineConfig& config,
                        const FixedFormat& format);

/// Emit a self-checking testbench for a transform module: drives
/// `vector_count` deterministic fixed-point stimuli, compares each output
/// against the expectation computed by the bit-exact netlist evaluator,
/// and finishes with "TB PASS" (or $fatal on mismatch). Appendable to the
/// emit_transform_module output to form a simulable file.
std::string emit_transform_testbench(const std::string& module_name,
                                     const Netlist& netlist,
                                     std::size_t vector_count = 16,
                                     std::uint64_t seed = 1);

}  // namespace wino::rtl
