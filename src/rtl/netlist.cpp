#include "rtl/netlist.hpp"

#include <cmath>
#include <stdexcept>

namespace wino::rtl {

namespace {

/// Sign-extending wrap to `width` bits — the behaviour of a signed wire.
std::int64_t wrap(std::int64_t v, int width) {
  const std::uint64_t mask = width >= 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << width) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  if (width < 64 && (u & sign)) u |= ~mask;
  return static_cast<std::int64_t>(u);
}

/// Is |r| an exact power of two (2^k, k may be negative)? Returns k.
bool pow2_exponent(const common::Rational& r, int& k) {
  const common::Rational a = r.abs();
  if (!a.is_pow2_scaled() || a.is_zero()) return false;
  int e = 0;
  for (std::int64_t n = a.num(); n > 1; n >>= 1) ++e;
  for (std::int64_t d = a.den(); d > 1; d >>= 1) --e;
  k = e;
  return true;
}

}  // namespace

Netlist Netlist::from_program(const winograd::LinearProgram& program,
                              const FixedFormat& format) {
  if (format.width < 2 || format.width > 48 || format.frac_bits < 0 ||
      format.constant_frac_bits < 1 || format.constant_frac_bits > 30) {
    throw std::invalid_argument("Netlist: bad fixed format");
  }
  Netlist nl;
  nl.format_ = format;

  // slot -> node index; ~0 marks "never written" (reads as the zero node).
  constexpr auto kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> slot_node(program.slot_count(), kUnset);

  for (std::size_t i = 0; i < program.inputs(); ++i) {
    Node n;
    n.op = NodeOp::kInput;
    n.name = "x";
    n.name += std::to_string(i);
    nl.inputs_.push_back(nl.nodes_.size());
    slot_node[i] = nl.nodes_.size();
    nl.nodes_.push_back(std::move(n));
  }

  // Constant-zero wire for structurally zero rows.
  const std::size_t zero_node = nl.nodes_.size();
  {
    Node n;
    n.op = NodeOp::kMulConst;  // 0 * x0, folded by the evaluator/emitter
    n.name = "zero";
    n.a = nl.inputs_.empty() ? 0 : nl.inputs_[0];
    n.constant = 0;
    n.constant_real = 0.0;
    nl.nodes_.push_back(std::move(n));
  }

  const auto resolve = [&](std::size_t slot) -> std::size_t {
    const std::size_t n = slot_node[slot];
    return n == kUnset ? zero_node : n;
  };

  std::size_t tmp = 0;
  const auto fresh = [&tmp] {
    std::string name = "t";
    name += std::to_string(tmp++);
    return name;
  };

  for (const auto& op : program.ops()) {
    using winograd::OpKind;
    switch (op.kind) {
      case OpKind::kAdd:
      case OpKind::kSub: {
        Node n;
        n.op = op.kind == OpKind::kAdd ? NodeOp::kAdd : NodeOp::kSub;
        n.name = fresh();
        n.a = resolve(op.src_a);
        n.b = resolve(op.src_b);
        slot_node[op.dst] = nl.nodes_.size();
        nl.nodes_.push_back(std::move(n));
        break;
      }
      case OpKind::kNeg: {
        Node n;
        n.op = NodeOp::kNeg;
        n.name = fresh();
        n.a = resolve(op.src_a);
        slot_node[op.dst] = nl.nodes_.size();
        nl.nodes_.push_back(std::move(n));
        break;
      }
      case OpKind::kCopy: {
        slot_node[op.dst] = resolve(op.src_a);
        break;
      }
      case OpKind::kShiftMul:
      case OpKind::kConstMul: {
        const common::Rational c = op.constant;
        std::size_t value;
        int k = 0;
        if (pow2_exponent(c, k)) {
          if (k == 0) {
            value = resolve(op.src_a);  // *1: pure wire
          } else {
            Node n;
            n.op = k > 0 ? NodeOp::kShl : NodeOp::kAshr;
            n.name = fresh();
            n.a = resolve(op.src_a);
            n.amount = k > 0 ? k : -k;
            value = nl.nodes_.size();
            nl.nodes_.push_back(std::move(n));
          }
        } else {
          Node n;
          n.op = NodeOp::kMulConst;
          n.name = fresh();
          n.a = resolve(op.src_a);
          n.constant_real = c.abs().to_double();
          n.constant = std::llround(
              n.constant_real *
              std::pow(2.0, format.constant_frac_bits));
          value = nl.nodes_.size();
          nl.nodes_.push_back(std::move(n));
        }
        if (c < common::Rational(0)) {
          Node n;
          n.op = NodeOp::kNeg;
          n.name = fresh();
          n.a = value;
          value = nl.nodes_.size();
          nl.nodes_.push_back(std::move(n));
        }
        slot_node[op.dst] = value;
        break;
      }
    }
  }

  for (std::size_t r = 0; r < program.outputs(); ++r) {
    Node n;
    n.op = NodeOp::kAlias;
    n.name = "y";
    n.name += std::to_string(r);
    n.a = resolve(program.output_slots()[r]);
    nl.outputs_.push_back(nl.nodes_.size());
    nl.nodes_.push_back(std::move(n));
  }
  return nl;
}

void Netlist::evaluate(std::span<const std::int64_t> in,
                       std::span<std::int64_t> out) const {
  if (in.size() != inputs_.size() || out.size() != outputs_.size()) {
    throw std::invalid_argument("Netlist::evaluate size mismatch");
  }
  std::vector<std::int64_t> value(nodes_.size(), 0);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.op) {
      case NodeOp::kInput:
        value[i] = wrap(in[next_input++], format_.width);
        break;
      case NodeOp::kAdd:
        value[i] = wrap(value[n.a] + value[n.b], format_.width);
        break;
      case NodeOp::kSub:
        value[i] = wrap(value[n.a] - value[n.b], format_.width);
        break;
      case NodeOp::kNeg:
        value[i] = wrap(-value[n.a], format_.width);
        break;
      case NodeOp::kShl:
        value[i] = wrap(value[n.a] << n.amount, format_.width);
        break;
      case NodeOp::kAshr:
        value[i] = wrap(value[n.a] >> n.amount, format_.width);
        break;
      case NodeOp::kMulConst:
        value[i] = wrap((value[n.a] * n.constant) >>
                            format_.constant_frac_bits,
                        format_.width);
        break;
      case NodeOp::kAlias:
        value[i] = value[n.a];
        break;
    }
  }
  for (std::size_t r = 0; r < outputs_.size(); ++r) {
    out[r] = value[outputs_[r]];
  }
}

void Netlist::evaluate_real(std::span<const double> in,
                            std::span<double> out) const {
  std::vector<std::int64_t> fi(in.size());
  std::vector<std::int64_t> fo(out.size());
  const double scale = std::pow(2.0, format_.frac_bits);
  for (std::size_t i = 0; i < in.size(); ++i) {
    fi[i] = std::llround(in[i] * scale);
  }
  evaluate(fi, fo);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<double>(fo[i]) / scale;
  }
}

Netlist::Summary Netlist::summary() const {
  Summary s;
  for (const Node& n : nodes_) {
    switch (n.op) {
      case NodeOp::kAdd:
      case NodeOp::kSub:
      case NodeOp::kNeg:
        ++s.adders;
        break;
      case NodeOp::kShl:
      case NodeOp::kAshr:
        ++s.shifters;
        break;
      case NodeOp::kMulConst:
        if (n.constant != 0) ++s.multipliers;  // fold the zero wire
        break;
      default:
        break;
    }
  }
  return s;
}

}  // namespace wino::rtl
