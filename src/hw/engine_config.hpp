// Configuration of the simulated Winograd convolution engine (the paper's
// Fig 4/5/7 architecture).
//
// The engine processes, every cycle, one (m+r-1)^2 input tile for one
// channel: the shared data-transform stage produces U, which is broadcast
// to P parallel PEs; PE p multiplies U element-wise with its pre-loaded
// kernel transform V[k_p][c] and inverse-transforms; per-PE accumulation
// buffers sum over the C channels (post-inverse accumulation, as drawn in
// Fig 7). Kernel groups of P are processed in ceil(K/P) passes with
// double-buffered kernel/image buffers.
#pragma once

#include <cstddef>

#include "fpga/resources.hpp"
#include "winograd/op_report.hpp"

namespace wino::hw {

struct EngineConfig {
  int m = 3;
  int r = 3;
  std::size_t parallel_pes = 4;
  double frequency_hz = 200e6;

  /// Architectural variant; affects resources (and the per-PE data
  /// transform wastes logic), not timing — the paper's Table II shows
  /// identical latency for both styles at equal multiplier count.
  fpga::EngineStyle style = fpga::EngineStyle::kSharedDataTransform;

  /// Pipeline stage latencies in cycles. Zero means "derive from the
  /// transform program DAG depth" (one register level per DAG level).
  std::size_t data_transform_latency = 0;
  std::size_t ewmult_latency = 3;  ///< fp32 multiplier pipeline
  std::size_t inverse_latency = 0;
  std::size_t accumulate_latency = 1;

  /// Off-chip bandwidth in bytes per cycle (fp32 elements are 4 bytes).
  /// Default models the paper's Section V-B assumption of "enough memory
  /// bandwidth ... without having to wait".
  double dram_bytes_per_cycle = 1e18;

  /// When true (the paper's assumption), kernel/image buffer refills for
  /// the next kernel group overlap compute of the current one and only
  /// the excess stalls; when false every refill serialises with compute.
  bool double_buffering = true;

  [[nodiscard]] std::size_t tile() const {
    return static_cast<std::size_t>(m + r - 1);
  }

  /// Total pipeline depth Dp of Eq 9 (fill cycles before the first output).
  [[nodiscard]] std::size_t pipeline_depth() const;

  /// Stage latencies with zeros replaced by DAG-depth defaults.
  [[nodiscard]] EngineConfig resolved() const;
};

/// The engine of the paper's proposed design for a given order m, sized to
/// the device's multiplier budget via Eq 8.
EngineConfig proposed_engine(int m, std::size_t total_multipliers,
                             double frequency_hz = 200e6);

/// The reference engine of [3]: F(2x2, 3x3) with per-PE data transforms.
EngineConfig reference_engine(std::size_t total_multipliers,
                              double frequency_hz = 200e6);

}  // namespace wino::hw
