// Pipeline scheduling and stepped (per-cycle) simulation.
//
// asap_schedule() bins a transform program's operations into ASAP levels —
// the register stages a pipelined hardware mapping needs — giving the
// per-stage register counts behind the FF estimates and the exact stage
// count behind Dp in Eq 9.
//
// SteppedPipeline advances the engine's macro-pipeline one cycle at a
// time with explicit occupancy and backpressure: issue -> data transform
// (latency Ld) -> PE stage (latency Lp) -> bounded output FIFO ->
// writeback port of limited width. The analytic simulator
// (hw::WinogradEngine) fast-forwards assuming an uncontended writeback;
// the stepped model verifies that assumption and quantifies the stall
// when the port is narrower than the PE array's output rate.
#pragma once

#include <cstdint>
#include <vector>

#include "winograd/program.hpp"

namespace wino::hw {

/// ASAP schedule of a straight-line program: operation levels and the
/// values that must be registered at each stage boundary.
struct StageSchedule {
  std::size_t stages = 0;                  ///< pipeline depth in registers
  std::vector<std::size_t> ops_per_stage;  ///< arithmetic ops per level
  std::vector<std::size_t> regs_per_stage; ///< live values crossing each
                                           ///< stage boundary

  [[nodiscard]] std::size_t total_registers() const {
    std::size_t total = 0;
    for (const std::size_t r : regs_per_stage) total += r;
    return total;
  }
};

StageSchedule asap_schedule(const winograd::LinearProgram& program);

/// Per-cycle engine pipeline with bounded buffering.
class SteppedPipeline {
 public:
  struct Config {
    std::uint64_t issue_count = 0;        ///< data-transform issues (tiles*C*groups)
    std::size_t dt_latency = 4;           ///< data-transform stage cycles
    std::size_t pe_latency = 8;           ///< EW-mult + inverse cycles
    std::size_t outputs_per_issue = 4;    ///< m^2 * P words leaving per slot
    std::size_t fifo_depth = 64;          ///< output FIFO capacity (words)
    std::size_t writeback_width = 16;     ///< words the port drains per cycle
  };

  struct Result {
    std::uint64_t cycles = 0;
    std::uint64_t issue_stall_cycles = 0;  ///< issue blocked on FIFO space
    std::uint64_t fifo_peak = 0;           ///< max FIFO occupancy observed
  };

  /// Run to completion (all issues drained through writeback).
  static Result run(const Config& config);
};

}  // namespace wino::hw
