#include "hw/engine_config.hpp"

#include <stdexcept>

#include "dse/performance.hpp"

namespace wino::hw {

EngineConfig EngineConfig::resolved() const {
  EngineConfig c = *this;
  const auto rep = winograd::transform_op_report(c.m, c.r);
  // A 2-D transform is two chained 1-D passes; each DAG level is one
  // pipeline register stage, with at least one stage per pass.
  if (c.data_transform_latency == 0) {
    c.data_transform_latency = 2 * std::max<std::size_t>(1, rep.data_depth);
  }
  if (c.inverse_latency == 0) {
    c.inverse_latency = 2 * std::max<std::size_t>(1, rep.inverse_depth);
  }
  return c;
}

std::size_t EngineConfig::pipeline_depth() const {
  const EngineConfig c = resolved();
  return c.data_transform_latency + c.ewmult_latency + c.inverse_latency +
         c.accumulate_latency;
}

EngineConfig proposed_engine(int m, std::size_t total_multipliers,
                             double frequency_hz) {
  const auto alloc = dse::allocate_pes(m, 3, total_multipliers);
  if (alloc.parallel_pes == 0) {
    throw std::invalid_argument(
        "proposed_engine: multiplier budget below one PE");
  }
  EngineConfig c;
  c.m = m;
  c.r = 3;
  c.parallel_pes = alloc.parallel_pes;
  c.frequency_hz = frequency_hz;
  c.style = fpga::EngineStyle::kSharedDataTransform;
  return c.resolved();
}

EngineConfig reference_engine(std::size_t total_multipliers,
                              double frequency_hz) {
  EngineConfig c = proposed_engine(2, total_multipliers, frequency_hz);
  c.style = fpga::EngineStyle::kPerPeDataTransform;
  return c;
}

}  // namespace wino::hw
