// Micro-architecture components of the engine front end (the paper's
// Fig 7 "Image Buffer"): a line buffer that converts a row-streamed input
// feature map into the overlapping (m+r-1)^2 tiles the data-transform
// stage consumes, and the double-buffer controller that sequences
// kernel-group refills.
//
// These model the blocks the analytic model (Eq 9) abstracts away. Tests
// verify the line buffer emits exactly the tiles the layer convolution
// gathers (padding included) and that the double buffer never exposes a
// half-loaded bank.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wino::hw {

/// Streaming line buffer. The host pushes one image row per call (width
/// W, single channel); the buffer retains the last (m + r - 1) rows and
/// can emit every horizontal tile whose bottom row has arrived. Vertical
/// stride is m (adjacent output tiles overlap by r - 1 rows), matching
/// the engine's tiling.
class LineBuffer {
 public:
  /// `pad`: symmetric zero padding applied virtually on all sides.
  LineBuffer(std::size_t width, int m, int r, int pad);

  /// Push the next image row (y = 0, 1, ... in image coordinates).
  /// row.size() must equal the configured width.
  void push_row(std::span<const float> row);

  /// Number of complete tile rows available so far.
  [[nodiscard]] std::size_t tile_rows_ready() const;

  /// Total tile rows for an image of `height` rows (after full streaming).
  [[nodiscard]] std::size_t tile_rows_total(std::size_t height) const;

  /// Tiles per tile row.
  [[nodiscard]] std::size_t tiles_per_row() const;

  /// Extract tile (tile_row, tile_col) into `out` (size n*n, row-major).
  /// Only valid for tile_row < tile_rows_ready().
  void extract_tile(std::size_t tile_row, std::size_t tile_col,
                    std::span<float> out) const;

  /// On-chip storage requirement in elements: n rows of padded width (the
  /// BRAM the estimator charges for the image buffer).
  [[nodiscard]] std::size_t storage_elements() const;

 private:
  std::size_t width_;
  std::size_t n_;    ///< tile extent m + r - 1
  std::size_t m_;
  int pad_;
  std::size_t rows_pushed_ = 0;
  // Retained rows, oldest first; bounded to the window the tiles need.
  std::vector<std::vector<float>> window_;
  std::size_t window_start_ = 0;  ///< image row index of window_[0]
};

/// Double-buffer controller for the kernel (V) buffers: one bank serves
/// the PE array while the other loads the next kernel group. Models the
/// paper's Section V-B double-buffering assumption as an explicit state
/// machine with cycle accounting.
class DoubleBufferController {
 public:
  /// `load_cycles`: cycles to fill one bank; `compute_cycles`: cycles one
  /// group occupies the PE array.
  DoubleBufferController(std::uint64_t load_cycles,
                         std::uint64_t compute_cycles);

  /// Run `groups` kernel groups; returns total cycles including the
  /// initial fill and any stalls where compute finished before the next
  /// bank was ready.
  [[nodiscard]] std::uint64_t run(std::size_t groups) const;

  /// Stall cycles per steady-state group (0 when load <= compute).
  [[nodiscard]] std::uint64_t steady_stall() const;

 private:
  std::uint64_t load_cycles_;
  std::uint64_t compute_cycles_;
};

}  // namespace wino::hw
