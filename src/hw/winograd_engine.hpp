// Cycle-level simulator of the pipelined Winograd convolution engine.
//
// Substitution note (DESIGN.md section 2): this stands in for the RTL the
// paper synthesises. It executes the exact datapath of Figs 4/5/7 — shared
// data transform, P parallel PEs (element-wise multipliers + inverse
// transform), per-PE channel accumulation buffers, double-buffered kernel
// groups — with cycle accounting that reduces to the paper's Eq 9 when
// bandwidth is ample, and exposes stall cycles when it is not. In
// functional mode the simulated hardware computes the actual arithmetic,
// so its output tensor is compared against spatial convolution in the
// tests (the datapath is *verified*, not assumed).
#pragma once

#include <cstdint>

#include "hw/engine_config.hpp"
#include "nn/network.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"

namespace wino::hw {

/// Cycle accounting for one simulated layer.
struct SimStats {
  std::uint64_t issue_cycles = 0;      ///< data-transform issue slots used
  std::uint64_t stall_cycles = 0;      ///< waiting on DRAM refills
  std::uint64_t pipeline_fill = 0;     ///< Dp - 1 drain/fill cycles
  std::uint64_t total_cycles = 0;      ///< issue + stall + fill
  std::uint64_t tiles = 0;             ///< tile positions processed
  std::uint64_t kernel_groups = 0;     ///< ceil(K / P) passes
  std::uint64_t ew_mult_ops = 0;       ///< fp32 mults issued to PEs
  std::uint64_t wasted_pe_slots = 0;   ///< idle PEs in the last group
  double dram_bytes = 0;               ///< total off-chip traffic
  double pe_utilization = 0;           ///< useful mults / peak mult slots

  [[nodiscard]] double latency_s(double frequency_hz) const {
    return static_cast<double>(total_cycles) / frequency_hz;
  }
};

struct SimResult {
  tensor::Tensor4f output;  ///< empty in timing-only mode
  SimStats stats;
};

/// What the simulator computes.
enum class SimMode {
  kFunctional,  ///< full arithmetic + cycle accounting (small layers)
  kTimingOnly   ///< cycle accounting only (whole-VGG capable)
};

class WinogradEngine {
 public:
  explicit WinogradEngine(const EngineConfig& config);

  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Simulate one stride-1 convolution layer. In functional mode `input`
  /// is NCHW and `kernels` KCrr; the result tensor matches
  /// conv::conv2d_spatial up to fp32 rounding. Tile positions within a
  /// kernel group execute in parallel on the runtime's global ThreadPool;
  /// per-tile arithmetic keeps hardware order, so the output is
  /// bit-identical for any thread count.
  SimResult run_layer(const tensor::Tensor4f& input,
                      const tensor::Tensor4f& kernels, int pad,
                      SimMode mode = SimMode::kFunctional) const;

  /// Layout-aware entry for activations coming out of the software
  /// pipeline in a packed form (see tensor/layout.hpp): the activation is
  /// converted to the NCHW stream the simulated DMA ingests — the modelled
  /// hardware reads NCHW feature maps from DRAM, so the unpack here *is*
  /// the host-side re-layout a real deployment would perform before
  /// enqueueing the DMA descriptor. Numerically identical to calling the
  /// NCHW overload on the unpacked tensor.
  SimResult run_layer(const tensor::PackedActivation& input,
                      const tensor::Tensor4f& kernels, int pad,
                      SimMode mode = SimMode::kFunctional) const;

  /// A copy of this engine re-tiled to F(m x m, r): the multiplier budget
  /// (parallel_pes x tile^2) is re-divided into (m + r - 1)^2-wide PEs (at
  /// least one), every other knob — clock, bandwidth, style, stage
  /// latencies in their "derive from the DAG" defaults — carries over.
  /// The hook the per-layer execution planner uses to drive one simulated
  /// chip at each layer's planned m (nn/plan.hpp), modelling a
  /// reconfigurable or multi-engine deployment of the paper's datapath.
  [[nodiscard]] WinogradEngine retiled(int m) const;

  /// run_layer under the plan's per-layer m: retiled(m).run_layer(...).
  SimResult run_layer(const tensor::PackedActivation& input,
                      const tensor::Tensor4f& kernels, int pad, int m,
                      SimMode mode = SimMode::kFunctional) const;

  /// Timing-only simulation driven by a layer spec (no tensors).
  SimStats run_layer_timing(const nn::ConvLayerSpec& layer,
                            std::size_t batch = 1) const;

  /// Timing-only simulation of a whole workload; returns per-group-summed
  /// stats (pipeline fill counted per layer, as in Eq 9).
  SimStats run_workload_timing(const nn::ConvWorkload& net,
                               std::size_t batch = 1) const;

 private:
  SimStats simulate_timing(std::size_t out_h, std::size_t out_w,
                           std::size_t channels, std::size_t kernels,
                           std::size_t in_h, std::size_t in_w,
                           std::size_t batch) const;

  EngineConfig config_;
};

}  // namespace wino::hw
