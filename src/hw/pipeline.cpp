#include "hw/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace wino::hw {

StageSchedule asap_schedule(const winograd::LinearProgram& program) {
  using winograd::OpKind;
  const auto& ops = program.ops();

  // Level of each value slot: inputs at level 0, each op one level after
  // its latest operand.
  std::vector<std::size_t> level(program.slot_count(), 0);
  std::size_t depth = 0;
  std::vector<std::size_t> op_level(ops.size(), 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& op = ops[i];
    std::size_t l = level[op.src_a];
    if (op.kind == OpKind::kAdd || op.kind == OpKind::kSub) {
      l = std::max(l, level[op.src_b]);
    }
    const std::size_t out_level =
        op.kind == OpKind::kCopy ? l : l + 1;  // wiring costs no stage
    level[op.dst] = out_level;
    op_level[i] = out_level;
    depth = std::max(depth, out_level);
  }

  StageSchedule s;
  s.stages = depth;
  s.ops_per_stage.assign(depth, 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kCopy) continue;
    if (op_level[i] >= 1) ++s.ops_per_stage[op_level[i] - 1];
  }

  // Live values crossing each stage boundary: a value produced at level p
  // and last used at level q is registered at boundaries p..q-1. Outputs
  // are live through the final boundary.
  std::vector<std::size_t> last_use(program.slot_count(), 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& op = ops[i];
    last_use[op.src_a] = std::max(last_use[op.src_a], op_level[i]);
    if (op.kind == OpKind::kAdd || op.kind == OpKind::kSub) {
      last_use[op.src_b] = std::max(last_use[op.src_b], op_level[i]);
    }
  }
  for (const std::size_t out : program.output_slots()) {
    last_use[out] = std::max(last_use[out], depth);
  }
  s.regs_per_stage.assign(depth, 0);
  for (std::size_t slot = 0; slot < program.slot_count(); ++slot) {
    for (std::size_t b = level[slot]; b < last_use[slot] && b < depth; ++b) {
      ++s.regs_per_stage[b];
    }
  }
  return s;
}

SteppedPipeline::Result SteppedPipeline::run(const Config& c) {
  if (c.fifo_depth < c.outputs_per_issue) {
    throw std::invalid_argument(
        "SteppedPipeline: FIFO smaller than one issue's outputs");
  }
  const std::size_t latency = c.dt_latency + c.pe_latency;
  // Ring of arrivals: words landing in the FIFO `latency` cycles after
  // their issue.
  std::vector<std::size_t> arrivals(latency + 1, 0);

  Result r;
  std::uint64_t issued = 0;
  std::size_t fifo = 0;
  std::size_t pending = 0;  // words in flight (credit-reserved)
  std::uint64_t cycle = 0;
  while (issued < c.issue_count || fifo > 0 || pending > 0) {
    const std::size_t slot = static_cast<std::size_t>(cycle % (latency + 1));
    // 1. Arrivals scheduled for this cycle land in the FIFO.
    fifo += arrivals[slot];
    pending -= arrivals[slot];
    arrivals[slot] = 0;
    // 2. Writeback drains.
    const std::size_t drained = std::min(fifo, c.writeback_width);
    fifo -= drained;
    // 3. Issue if work remains and credit is available.
    if (issued < c.issue_count) {
      if (fifo + pending + c.outputs_per_issue <= c.fifo_depth) {
        arrivals[static_cast<std::size_t>((cycle + latency) % (latency + 1))] +=
            c.outputs_per_issue;
        pending += c.outputs_per_issue;
        ++issued;
      } else {
        ++r.issue_stall_cycles;
      }
    }
    r.fifo_peak = std::max<std::uint64_t>(r.fifo_peak, fifo);
    ++cycle;
  }
  r.cycles = cycle;
  return r;
}

}  // namespace wino::hw
