#include "hw/winograd_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "runtime/gemm.hpp"
#include "runtime/thread_pool.hpp"
#include "winograd/kernels.hpp"

namespace wino::hw {

using tensor::Tensor4f;

WinogradEngine::WinogradEngine(const EngineConfig& config)
    : config_(config.resolved()) {
  if (config_.parallel_pes == 0) {
    throw std::invalid_argument("WinogradEngine: need at least one PE");
  }
  if (config_.m < 1 || config_.r < 1) {
    throw std::invalid_argument("WinogradEngine: bad m/r");
  }
}

SimStats WinogradEngine::simulate_timing(std::size_t out_h, std::size_t out_w,
                                         std::size_t channels,
                                         std::size_t kernels,
                                         std::size_t in_h, std::size_t in_w,
                                         std::size_t batch) const {
  const auto mm = static_cast<std::size_t>(config_.m);
  const std::size_t n = config_.tile();
  const std::size_t p = config_.parallel_pes;
  constexpr double kBytes = 4.0;  // fp32

  SimStats s;
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;
  s.tiles = tiles_h * tiles_w * batch;
  s.kernel_groups = (kernels + p - 1) / p;

  const std::uint64_t issue_per_group = s.tiles * channels;
  s.issue_cycles = issue_per_group * s.kernel_groups;
  s.pipeline_fill = config_.pipeline_depth() - 1;

  // Off-chip traffic per kernel group: the input feature map streams
  // through the line-buffered image buffer once per group, the group's
  // pre-transformed kernels load once, and its outputs write back.
  const double input_bytes =
      static_cast<double>(batch * in_h * in_w * channels) * kBytes;
  for (std::size_t g = 0; g < s.kernel_groups; ++g) {
    const std::size_t group_kernels = std::min(p, kernels - g * p);
    const double kernel_bytes =
        static_cast<double>(group_kernels * channels * n * n) * kBytes;
    const double output_bytes =
        static_cast<double>(batch * out_h * out_w * group_kernels) * kBytes;
    const double group_bytes = input_bytes + kernel_bytes + output_bytes;
    s.dram_bytes += group_bytes;
    const double io_cycles =
        std::ceil(group_bytes / config_.dram_bytes_per_cycle);
    if (config_.double_buffering) {
      const double excess = io_cycles - static_cast<double>(issue_per_group);
      if (excess > 0) s.stall_cycles += static_cast<std::uint64_t>(excess);
    } else {
      s.stall_cycles += static_cast<std::uint64_t>(io_cycles);
    }
  }

  s.ew_mult_ops = static_cast<std::uint64_t>(s.tiles) * channels * n * n *
                  kernels;
  s.wasted_pe_slots =
      (s.kernel_groups * p - kernels) * s.tiles * channels;
  s.pe_utilization = static_cast<double>(kernels) /
                     static_cast<double>(s.kernel_groups * p);
  s.total_cycles = s.issue_cycles + s.stall_cycles + s.pipeline_fill;
  return s;
}

SimStats WinogradEngine::run_layer_timing(const nn::ConvLayerSpec& layer,
                                          std::size_t batch) const {
  if (static_cast<int>(layer.r) != config_.r) {
    throw std::invalid_argument("run_layer_timing: kernel size mismatch");
  }
  return simulate_timing(layer.out_h(), layer.out_w(), layer.c, layer.k,
                         layer.h, layer.w, batch);
}

SimStats WinogradEngine::run_workload_timing(const nn::ConvWorkload& net,
                                             std::size_t batch) const {
  SimStats total;
  for (const auto& layer : net.all_layers()) {
    const SimStats s = run_layer_timing(layer, batch);
    total.issue_cycles += s.issue_cycles;
    total.stall_cycles += s.stall_cycles;
    total.pipeline_fill += s.pipeline_fill;
    total.total_cycles += s.total_cycles;
    total.tiles += s.tiles;
    total.kernel_groups += s.kernel_groups;
    total.ew_mult_ops += s.ew_mult_ops;
    total.wasted_pe_slots += s.wasted_pe_slots;
    total.dram_bytes += s.dram_bytes;
  }
  const double peak = static_cast<double>(total.issue_cycles) *
                      static_cast<double>(config_.parallel_pes);
  total.pe_utilization =
      peak > 0 ? (peak - static_cast<double>(total.wasted_pe_slots)) / peak
               : 0.0;
  return total;
}

SimResult WinogradEngine::run_layer(const tensor::PackedActivation& input,
                                    const Tensor4f& kernels, int pad,
                                    SimMode mode) const {
  return run_layer(tensor::unpack(input), kernels, pad, mode);
}

WinogradEngine WinogradEngine::retiled(int m) const {
  if (m < 1) {
    throw std::invalid_argument("WinogradEngine::retiled: m must be >= 1");
  }
  EngineConfig cfg = config_;
  const std::size_t budget = cfg.parallel_pes * cfg.tile() * cfg.tile();
  cfg.m = m;
  cfg.parallel_pes = std::max<std::size_t>(
      1, budget / (cfg.tile() * cfg.tile()));
  // Stage latencies were resolved for the old tile; re-derive them from
  // the new transform program's DAG depth.
  cfg.data_transform_latency = 0;
  cfg.inverse_latency = 0;
  return WinogradEngine(cfg);
}

SimResult WinogradEngine::run_layer(const tensor::PackedActivation& input,
                                    const Tensor4f& kernels, int pad, int m,
                                    SimMode mode) const {
  if (m == config_.m) return run_layer(input, kernels, pad, mode);
  return retiled(m).run_layer(input, kernels, pad, mode);
}

SimResult WinogradEngine::run_layer(const Tensor4f& input,
                                    const Tensor4f& kernels, int pad,
                                    SimMode mode) const {
  const auto& is = input.shape();
  const auto& ks = kernels.shape();
  if (ks.c != is.c) {
    throw std::invalid_argument("run_layer: channel mismatch");
  }
  if (ks.h != static_cast<std::size_t>(config_.r) || ks.h != ks.w) {
    throw std::invalid_argument("run_layer: kernel size mismatch");
  }
  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            config_.r + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            config_.r + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("run_layer: output would be empty");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);

  SimResult result;
  result.stats =
      simulate_timing(out_h, out_w, is.c, ks.n, is.h, is.w, is.n);
  if (mode == SimMode::kTimingOnly) return result;

  // Functional execution of the datapath, in hardware order: kernel
  // groups -> tiles -> channels, with the shared data transform recomputed
  // per group exactly as the streaming engine would.
  const winograd::TileTransformer xf(
      winograd::transforms(config_.m, config_.r));
  const winograd::TransformedKernels tk(xf, kernels);

  const auto mm = static_cast<std::size_t>(config_.m);
  const std::size_t n = config_.tile();
  const std::size_t nsq = n * n;
  const std::size_t p = config_.parallel_pes;
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;

  result.output = Tensor4f(is.n, ks.n, out_h, out_w);
  Tensor4f& output = result.output;

  // Dense float copies of A^T (m x n) and A (n x m) so the per-PE inverse
  // transforms Y_pe = A^T M_pe A of one kernel group batch into two skinny
  // GEMMs on the shared runtime core: concatenating the M_pe tiles
  // horizontally gives A^T [M_0 | ... | M_{P-1}] in one multiply, and
  // stacking the halves vertically gives [T_0; ...; T_{P-1}] A in a
  // second. GEMM rows/columns are independent, so this equals the per-PE
  // loop; the shared core's ascending-k accumulation matches the tiny
  // sandwich products' order element for element.
  const winograd::FMatrix& at = xf.at_matrix();
  std::vector<float> at_row(mm * n);
  std::vector<float> a_col(n * mm);
  for (std::size_t i = 0; i < mm; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      at_row[i * n + j] = at(i, j);
      a_col[j * mm + i] = at(i, j);
    }
  }

  for (std::size_t img = 0; img < is.n; ++img) {
    for (std::size_t g = 0; g * p < ks.n; ++g) {
      const std::size_t group_kernels = std::min(p, ks.n - g * p);
      const std::size_t gk = group_kernels;
      // Tile positions are independent within a kernel group — each writes
      // a disjoint out_h x out_w patch per kernel — so the flattened tile
      // loop is parallel with per-chunk scratch. Per-tile arithmetic stays
      // in hardware order (channels -> PEs), keeping numerics identical to
      // the single-threaded engine.
      runtime::parallel_for(
          tiles_h * tiles_w,
          [&](std::size_t tile_begin, std::size_t tile_end) {
            std::vector<float> d(nsq);
            std::vector<float> u(nsq);
            // Elementwise PE products, concatenated as the n x (gk * n)
            // matrix [M_0 | ... | M_{gk-1}], and the two GEMM stages.
            std::vector<float> cat(n * gk * n);
            std::vector<float> tmp(mm * gk * n);
            std::vector<float> stacked(gk * mm * n);
            std::vector<float> yb(gk * mm * mm);
            // Per-PE post-inverse accumulation buffers (Fig 7 "Accumulation
            // Buffers").
            std::vector<std::vector<float>> acc(
                p, std::vector<float>(mm * mm));
            for (std::size_t t = tile_begin; t < tile_end; ++t) {
              const std::size_t th = t / tiles_w;
              const std::size_t tw = t % tiles_w;
              for (auto& a : acc) std::fill(a.begin(), a.end(), 0.0F);
              const std::ptrdiff_t y0 =
                  static_cast<std::ptrdiff_t>(th * mm) - pad;
              const std::ptrdiff_t x0 =
                  static_cast<std::ptrdiff_t>(tw * mm) - pad;
              for (std::size_t c = 0; c < is.c; ++c) {
                // Shared data transform: once per (tile, channel) slot.
                for (std::size_t i = 0; i < n; ++i) {
                  for (std::size_t j = 0; j < n; ++j) {
                    d[i * n + j] = input.padded(
                        img, c, y0 + static_cast<std::ptrdiff_t>(i),
                        x0 + static_cast<std::ptrdiff_t>(j));
                  }
                }
                xf.transform_data(d, u);
                // Broadcast U to the PE array: M_pe = U . V_pe.
                for (std::size_t pe = 0; pe < gk; ++pe) {
                  const auto v = tk.v(g * p + pe, c);
                  for (std::size_t i = 0; i < n; ++i) {
                    for (std::size_t j = 0; j < n; ++j) {
                      cat[i * (gk * n) + pe * n + j] =
                          u[i * n + j] * v[i * n + j];
                    }
                  }
                }
                // Stage 1: [T_0 | ... ] = A^T x [M_0 | ... ].
                runtime::sgemm(mm, gk * n, n, 1.0F, at_row.data(), n,
                               cat.data(), gk * n, 0.0F, tmp.data(),
                               gk * n);
                // Restack T_pe halves vertically for stage 2.
                for (std::size_t pe = 0; pe < gk; ++pe) {
                  for (std::size_t i = 0; i < mm; ++i) {
                    const float* src = tmp.data() + i * (gk * n) + pe * n;
                    float* dst = stacked.data() + (pe * mm + i) * n;
                    std::copy(src, src + n, dst);
                  }
                }
                // Stage 2: Y_pe = T_pe x A, all PEs in one multiply.
                runtime::sgemm(gk * mm, mm, n, 1.0F, stacked.data(), n,
                               a_col.data(), mm, 0.0F, yb.data(), mm);
                // Post-inverse accumulation, channel by channel, exactly
                // as the hardware's accumulation buffers sum.
                for (std::size_t pe = 0; pe < gk; ++pe) {
                  auto& a = acc[pe];
                  const float* ys = yb.data() + pe * mm * mm;
                  for (std::size_t i = 0; i < mm * mm; ++i) a[i] += ys[i];
                }
              }
              // Writeback with edge clipping.
              for (std::size_t pe = 0; pe < gk; ++pe) {
                const std::size_t k = g * p + pe;
                for (std::size_t i = 0; i < mm; ++i) {
                  const std::size_t oy = th * mm + i;
                  if (oy >= out_h) break;
                  for (std::size_t j = 0; j < mm; ++j) {
                    const std::size_t ox = tw * mm + j;
                    if (ox >= out_w) break;
                    output(img, k, oy, ox) = acc[pe][i * mm + j];
                  }
                }
              }
            }
          });
    }
  }
  return result;
}

}  // namespace wino::hw
