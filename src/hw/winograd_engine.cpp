#include "hw/winograd_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/layout.hpp"
#include "winograd/kernels.hpp"

namespace wino::hw {

using tensor::Tensor4f;

WinogradEngine::WinogradEngine(const EngineConfig& config)
    : config_(config.resolved()) {
  if (config_.parallel_pes == 0) {
    throw std::invalid_argument("WinogradEngine: need at least one PE");
  }
  if (config_.m < 1 || config_.r < 1) {
    throw std::invalid_argument("WinogradEngine: bad m/r");
  }
}

SimStats WinogradEngine::simulate_timing(std::size_t out_h, std::size_t out_w,
                                         std::size_t channels,
                                         std::size_t kernels,
                                         std::size_t in_h, std::size_t in_w,
                                         std::size_t batch) const {
  const auto mm = static_cast<std::size_t>(config_.m);
  const std::size_t n = config_.tile();
  const std::size_t p = config_.parallel_pes;
  constexpr double kBytes = 4.0;  // fp32

  SimStats s;
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;
  s.tiles = tiles_h * tiles_w * batch;
  s.kernel_groups = (kernels + p - 1) / p;

  const std::uint64_t issue_per_group = s.tiles * channels;
  s.issue_cycles = issue_per_group * s.kernel_groups;
  s.pipeline_fill = config_.pipeline_depth() - 1;

  // Off-chip traffic per kernel group: the input feature map streams
  // through the line-buffered image buffer once per group, the group's
  // pre-transformed kernels load once, and its outputs write back.
  const double input_bytes =
      static_cast<double>(batch * in_h * in_w * channels) * kBytes;
  for (std::size_t g = 0; g < s.kernel_groups; ++g) {
    const std::size_t group_kernels = std::min(p, kernels - g * p);
    const double kernel_bytes =
        static_cast<double>(group_kernels * channels * n * n) * kBytes;
    const double output_bytes =
        static_cast<double>(batch * out_h * out_w * group_kernels) * kBytes;
    const double group_bytes = input_bytes + kernel_bytes + output_bytes;
    s.dram_bytes += group_bytes;
    const double io_cycles =
        std::ceil(group_bytes / config_.dram_bytes_per_cycle);
    if (config_.double_buffering) {
      const double excess = io_cycles - static_cast<double>(issue_per_group);
      if (excess > 0) s.stall_cycles += static_cast<std::uint64_t>(excess);
    } else {
      s.stall_cycles += static_cast<std::uint64_t>(io_cycles);
    }
  }

  s.ew_mult_ops = static_cast<std::uint64_t>(s.tiles) * channels * n * n *
                  kernels;
  s.wasted_pe_slots =
      (s.kernel_groups * p - kernels) * s.tiles * channels;
  s.pe_utilization = static_cast<double>(kernels) /
                     static_cast<double>(s.kernel_groups * p);
  s.total_cycles = s.issue_cycles + s.stall_cycles + s.pipeline_fill;
  return s;
}

SimStats WinogradEngine::run_layer_timing(const nn::ConvLayerSpec& layer,
                                          std::size_t batch) const {
  if (static_cast<int>(layer.r) != config_.r) {
    throw std::invalid_argument("run_layer_timing: kernel size mismatch");
  }
  return simulate_timing(layer.out_h(), layer.out_w(), layer.c, layer.k,
                         layer.h, layer.w, batch);
}

SimStats WinogradEngine::run_workload_timing(const nn::ConvWorkload& net,
                                             std::size_t batch) const {
  SimStats total;
  for (const auto& layer : net.all_layers()) {
    const SimStats s = run_layer_timing(layer, batch);
    total.issue_cycles += s.issue_cycles;
    total.stall_cycles += s.stall_cycles;
    total.pipeline_fill += s.pipeline_fill;
    total.total_cycles += s.total_cycles;
    total.tiles += s.tiles;
    total.kernel_groups += s.kernel_groups;
    total.ew_mult_ops += s.ew_mult_ops;
    total.wasted_pe_slots += s.wasted_pe_slots;
    total.dram_bytes += s.dram_bytes;
  }
  const double peak = static_cast<double>(total.issue_cycles) *
                      static_cast<double>(config_.parallel_pes);
  total.pe_utilization =
      peak > 0 ? (peak - static_cast<double>(total.wasted_pe_slots)) / peak
               : 0.0;
  return total;
}

SimResult WinogradEngine::run_layer(const tensor::PackedActivation& input,
                                    const Tensor4f& kernels, int pad,
                                    SimMode mode) const {
  return run_layer(tensor::unpack(input), kernels, pad, mode);
}

WinogradEngine WinogradEngine::retiled(int m) const {
  if (m < 1) {
    throw std::invalid_argument("WinogradEngine::retiled: m must be >= 1");
  }
  EngineConfig cfg = config_;
  const std::size_t budget = cfg.parallel_pes * cfg.tile() * cfg.tile();
  cfg.m = m;
  cfg.parallel_pes = std::max<std::size_t>(
      1, budget / (cfg.tile() * cfg.tile()));
  // Stage latencies were resolved for the old tile; re-derive them from
  // the new transform program's DAG depth.
  cfg.data_transform_latency = 0;
  cfg.inverse_latency = 0;
  return WinogradEngine(cfg);
}

SimResult WinogradEngine::run_layer(const tensor::PackedActivation& input,
                                    const Tensor4f& kernels, int pad, int m,
                                    SimMode mode) const {
  if (m == config_.m) return run_layer(input, kernels, pad, mode);
  return retiled(m).run_layer(input, kernels, pad, mode);
}

SimResult WinogradEngine::run_layer(const Tensor4f& input,
                                    const Tensor4f& kernels, int pad,
                                    SimMode mode) const {
  const auto& is = input.shape();
  const auto& ks = kernels.shape();
  if (ks.c != is.c) {
    throw std::invalid_argument("run_layer: channel mismatch");
  }
  if (ks.h != static_cast<std::size_t>(config_.r) || ks.h != ks.w) {
    throw std::invalid_argument("run_layer: kernel size mismatch");
  }
  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            config_.r + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            config_.r + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("run_layer: output would be empty");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);

  SimResult result;
  result.stats =
      simulate_timing(out_h, out_w, is.c, ks.n, is.h, is.w, is.n);
  if (mode == SimMode::kTimingOnly) return result;

  // Functional execution through the shared tile walk. The hardware's
  // datapath — shared data transform, elementwise PE products, per-PE
  // inverse, then the Fig 7 accumulation buffers summing channel by
  // channel in ascending order — is exactly
  // winograd::conv2d_winograd_layout with post-inverse accumulation: the
  // same gather, the same transforms, the same channel-ascending sums
  // after each tile's inverse. Kernel grouping only affects timing (the
  // per-group stats above), never values, so the engine delegates to the
  // one shared executor instead of keeping a private copy of the tile
  // loop. Output remains bit-identical for any thread count (the shared
  // wrapper confines each accumulator chain to one tile column).
  const winograd::TileTransformer xf(
      winograd::transforms(config_.m, config_.r));
  const winograd::TransformedKernels tk(xf, kernels);
  const winograd::WinogradConvOptions opt{
      pad, winograd::AccumulationOrder::kPostInverse};
  result.output = tensor::unpack(winograd::conv2d_winograd_layout(
      tensor::PackedActivation::from_nchw(Tensor4f(input)), tk, xf, opt,
      tensor::LayoutKind::kNCHW, /*fuse_relu=*/false));
  return result;
}

}  // namespace wino::hw
