#include "hw/line_buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace wino::hw {

LineBuffer::LineBuffer(std::size_t width, int m, int r, int pad)
    : width_(width), n_(static_cast<std::size_t>(m + r - 1)),
      m_(static_cast<std::size_t>(m)), pad_(pad) {
  if (width == 0 || m < 1 || r < 1 || pad < 0 || pad >= r) {
    throw std::invalid_argument("LineBuffer: bad geometry");
  }
}

void LineBuffer::push_row(std::span<const float> row) {
  if (row.size() != width_) {
    throw std::invalid_argument("LineBuffer::push_row: width mismatch");
  }
  window_.emplace_back(row.begin(), row.end());
  ++rows_pushed_;
  // Retain only the n most recent rows — the vertical working set of the
  // current tile row (stride m overlaps r - 1 rows between tile rows).
  while (window_.size() > n_) {
    window_.erase(window_.begin());
    ++window_start_;
  }
}

std::size_t LineBuffer::tile_rows_ready() const {
  // Tile row tr needs image rows up to tr*m - pad + n - 1.
  std::size_t ready = 0;
  while (true) {
    const std::ptrdiff_t bottom =
        static_cast<std::ptrdiff_t>(ready * m_) - pad_ +
        static_cast<std::ptrdiff_t>(n_) - 1;
    if (bottom >= static_cast<std::ptrdiff_t>(rows_pushed_)) break;
    ++ready;
  }
  return ready;
}

std::size_t LineBuffer::tile_rows_total(std::size_t height) const {
  const std::size_t out_h = height + 2 * static_cast<std::size_t>(pad_) -
                            (n_ - m_);  // H + 2p - r + 1 with n = m + r - 1
  return (out_h + m_ - 1) / m_;
}

std::size_t LineBuffer::tiles_per_row() const {
  const std::size_t out_w =
      width_ + 2 * static_cast<std::size_t>(pad_) - (n_ - m_);
  return (out_w + m_ - 1) / m_;
}

void LineBuffer::extract_tile(std::size_t tile_row, std::size_t tile_col,
                              std::span<float> out) const {
  if (out.size() != n_ * n_) {
    throw std::invalid_argument("LineBuffer::extract_tile: bad out size");
  }
  for (std::size_t i = 0; i < n_; ++i) {
    const std::ptrdiff_t y = static_cast<std::ptrdiff_t>(tile_row * m_) -
                             pad_ + static_cast<std::ptrdiff_t>(i);
    for (std::size_t j = 0; j < n_; ++j) {
      const std::ptrdiff_t x = static_cast<std::ptrdiff_t>(tile_col * m_) -
                               pad_ + static_cast<std::ptrdiff_t>(j);
      float v = 0.0F;
      if (y >= 0 && x >= 0 && static_cast<std::size_t>(x) < width_ &&
          static_cast<std::size_t>(y) < rows_pushed_) {
        const auto yu = static_cast<std::size_t>(y);
        if (yu < window_start_) {
          throw std::logic_error(
              "LineBuffer::extract_tile: row evicted (non-sequential "
              "access)");
        }
        v = window_[yu - window_start_][static_cast<std::size_t>(x)];
      }
      out[i * n_ + j] = v;
    }
  }
}

std::size_t LineBuffer::storage_elements() const { return n_ * width_; }

DoubleBufferController::DoubleBufferController(std::uint64_t load_cycles,
                                               std::uint64_t compute_cycles)
    : load_cycles_(load_cycles), compute_cycles_(compute_cycles) {}

std::uint64_t DoubleBufferController::run(std::size_t groups) const {
  std::uint64_t compute_end = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    // The loader streams banks back to back; bank g is ready once g + 1
    // loads have completed.
    const std::uint64_t bank_ready =
        (static_cast<std::uint64_t>(g) + 1) * load_cycles_;
    const std::uint64_t start = std::max(compute_end, bank_ready);
    compute_end = start + compute_cycles_;
  }
  return compute_end;
}

std::uint64_t DoubleBufferController::steady_stall() const {
  return load_cycles_ > compute_cycles_ ? load_cycles_ - compute_cycles_
                                        : 0;
}

}  // namespace wino::hw
