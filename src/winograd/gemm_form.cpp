#include "winograd/gemm_form.hpp"

#include <stdexcept>
#include <vector>

#include "runtime/gemm.hpp"
#include "runtime/thread_pool.hpp"

namespace wino::winograd {

using tensor::Tensor4f;

Tensor4f conv2d_winograd_gemm(const Tensor4f& input, const Tensor4f& kernels,
                              int m, const WinogradConvOptions& opt) {
  const auto& is = input.shape();
  const auto& ks = kernels.shape();
  if (ks.c != is.c) {
    throw std::invalid_argument("conv2d_winograd_gemm: channel mismatch");
  }
  const TileTransformer xf(transforms(m, static_cast<int>(ks.h)));
  const auto mm = static_cast<std::size_t>(m);
  const auto n = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n * n;
  const int pad = opt.pad;

  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            static_cast<std::ptrdiff_t>(ks.h) + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            static_cast<std::ptrdiff_t>(ks.w) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d_winograd_gemm: empty output");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;
  const std::size_t tiles = tiles_h * tiles_w * is.n;

  // Scatter phase: pack the transformed kernels and data into the
  // per-coordinate matrices U[(xi,nu)] = [K x C] and V[(xi,nu)] =
  // [C x tiles] once per call — the layer-level packing the batched GEMMs
  // below consume (filter transforms themselves are cached across forward
  // calls at the nn layer, see nn/forward.cpp).
  const TransformedKernels tk(xf, kernels);
  std::vector<float> scattered_v(nsq * ks.n * ks.c);
  for (std::size_t k = 0; k < ks.n; ++k) {
    for (std::size_t c = 0; c < ks.c; ++c) {
      const auto v = tk.v(k, c);
      for (std::size_t e = 0; e < nsq; ++e) {
        scattered_v[(e * ks.n + k) * ks.c + c] = v[e];
      }
    }
  }

  const std::size_t tiles_per_img = tiles_h * tiles_w;
  std::vector<float> scattered_u(nsq * is.c * tiles);
  // Tiles are independent and write disjoint columns of every U matrix,
  // so the flattened (img, th, tw) loop is parallel with per-chunk
  // scratch.
  runtime::parallel_for(tiles, [&](std::size_t begin, std::size_t end) {
    std::vector<float> d(nsq);
    std::vector<float> u(nsq);
    for (std::size_t tile_idx = begin; tile_idx < end; ++tile_idx) {
      const std::size_t img = tile_idx / tiles_per_img;
      const std::size_t th = (tile_idx % tiles_per_img) / tiles_w;
      const std::size_t tw = tile_idx % tiles_w;
      const std::ptrdiff_t y0 = static_cast<std::ptrdiff_t>(th * mm) - pad;
      const std::ptrdiff_t x0 = static_cast<std::ptrdiff_t>(tw * mm) - pad;
      for (std::size_t c = 0; c < is.c; ++c) {
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            d[i * n + j] =
                input.padded(img, c, y0 + static_cast<std::ptrdiff_t>(i),
                             x0 + static_cast<std::ptrdiff_t>(j));
          }
        }
        xf.transform_data(d, u);
        for (std::size_t e = 0; e < nsq; ++e) {
          scattered_u[(e * is.c + c) * tiles + tile_idx] = u[e];
        }
      }
    }
  });

  // GEMM phase: nsq independent [K x C] x [C x tiles] products, batched
  // onto the shared blocked/SIMD core (Lavin & Gray's mapping of the
  // channel reduction onto dense GEMMs, executed by a fast kernel).
  std::vector<float> products(nsq * ks.n * tiles);
  runtime::sgemm_batched(nsq, ks.n, tiles, ks.c, 1.0F, scattered_v.data(),
                         ks.c, ks.n * ks.c, scattered_u.data(), tiles,
                         is.c * tiles, 0.0F, products.data(), tiles,
                         ks.n * tiles);

  // Gather phase: per (k, tile), collect the nsq products and inverse-
  // transform into the output tile. Output channels are independent.
  Tensor4f out(is.n, ks.n, out_h, out_w);
  runtime::parallel_for(ks.n, [&](std::size_t kb, std::size_t ke) {
    std::vector<float> m_tile(nsq);
    std::vector<float> y(mm * mm);
    for (std::size_t k = kb; k < ke; ++k) {
      std::size_t tile_idx = 0;
      for (std::size_t img = 0; img < is.n; ++img) {
        for (std::size_t th = 0; th < tiles_h; ++th) {
          for (std::size_t tw = 0; tw < tiles_w; ++tw, ++tile_idx) {
            for (std::size_t e = 0; e < nsq; ++e) {
              m_tile[e] = products[(e * ks.n + k) * tiles + tile_idx];
            }
            xf.inverse(m_tile, y);
            for (std::size_t i = 0; i < mm; ++i) {
              const std::size_t oy = th * mm + i;
              if (oy >= out_h) break;
              for (std::size_t j = 0; j < mm; ++j) {
                const std::size_t ox = tw * mm + j;
                if (ox >= out_w) break;
                out(img, k, oy, ox) = y[i * mm + j];
              }
            }
          }
        }
      }
    }
  });
  return out;
}

}  // namespace wino::winograd
